# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(vplint.all_workloads "/root/repo/build/tools/vplint" "--all")
set_tests_properties(vplint.all_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
