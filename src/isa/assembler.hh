/**
 * @file
 * A two-pass assembler for the vpsim ISA. Workload kernels are written
 * as embedded assembly strings; the assembler resolves labels, expands
 * pseudo-instructions (li/mv/b/ret/subi), and produces a binary Program
 * image ready to load into simulated memory.
 */

#ifndef VPSIM_ISA_ASSEMBLER_HH
#define VPSIM_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "sim/types.hh"

namespace vpsim
{

/** An assembled binary image plus its symbol table. */
struct Program
{
    /** Load address of words[0]. */
    Addr base = 0;
    /** Binary instruction/data words in ascending address order. */
    std::vector<uint32_t> words;
    /** Label name -> absolute address. */
    std::map<std::string, Addr> symbols;

    /** Address one past the final word. */
    Addr end() const { return base + words.size() * instBytes; }

    /** Address of a label; fatal() if undefined. */
    Addr symbol(const std::string &name) const;
};

/**
 * Assemble @p source at load address @p base.
 *
 * Accepted syntax (one statement per line, '#' or ';' comments):
 *   label:
 *       addi r1, r0, 100
 *       ld   r2, 8(r1)          loads:  rd, offset(base)
 *       sd   r2, 8(r1)          stores: data, offset(base)
 *       beq  r1, r2, label
 *       jal  r31, label
 *       fadd f1, f2, f3
 *       li   r5, 0x1234567890   pseudo: expands to a constant build
 *       mv   r1, r2             pseudo: addi r1, r2, 0
 *       b    label              pseudo: beq r0, r0, label
 *       subi r1, r2, 4          pseudo: addi r1, r2, -4
 *       .word 0x12345678        32-bit literal data
 *       .dword 0x123456789abc   64-bit literal data (two words, LE)
 *
 * @return the program, or std::nullopt with @p error set.
 */
std::optional<Program> assembleOrError(const std::string &source,
                                       Addr base, std::string &error);

/** Assemble; fatal() with the error message on failure. */
Program assemble(const std::string &source, Addr base = 0x1000);

} // namespace vpsim

#endif // VPSIM_ISA_ASSEMBLER_HH
