#include "isa/assembler.hh"

#include <cctype>
#include <sstream>

#include "isa/isa.hh"
#include "sim/logging.hh"

namespace vpsim
{

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

namespace
{

/** One parsed source statement (after label extraction). */
struct Statement
{
    std::string mnemonic;
    std::vector<std::string> operands;
    int line = 0;
};

class AsmError
{
  public:
    AsmError(int line, std::string msg)
        : text(csprintf("line %d: %s", line, msg.c_str()))
    {}
    std::string text;
};

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

bool
validLabelName(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
        s[0] != '.')
        return false;
    for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.')
            return false;
    }
    return true;
}

/** Parse "r5"/"f12"/"zero" to a logical register number, or -1. */
int
parseReg(const std::string &tok)
{
    if (tok == "zero")
        return 0;
    if (tok.size() < 2)
        return -1;
    char kind = tok[0];
    if (kind != 'r' && kind != 'f')
        return -1;
    int num = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(tok[i])))
            return -1;
        num = num * 10 + (tok[i] - '0');
        if (num > 31)
            return -1;
    }
    return kind == 'f' ? num + numIntRegs : num;
}

bool
parseImmediate(const std::string &tok, int64_t &out)
{
    if (tok.empty())
        return false;
    size_t pos = 0;
    try {
        out = std::stoll(tok, &pos, 0);
        return pos == tok.size();
    } catch (const std::out_of_range &) {
        // Values in [2^63, 2^64) are accepted as raw bit patterns.
        try {
            out = static_cast<int64_t>(std::stoull(tok, &pos, 0));
            return pos == tok.size();
        } catch (const std::exception &) {
            return false;
        }
    } catch (const std::exception &) {
        return false;
    }
}

/** Split "8(r1)" into offset and base register. */
bool
parseMemOperand(const std::string &tok, int64_t &offset, int &base)
{
    size_t open = tok.find('(');
    size_t close = tok.find(')');
    if (open == std::string::npos || close != tok.size() - 1 ||
        close <= open + 1) {
        return false;
    }
    std::string offStr = trim(tok.substr(0, open));
    if (offStr.empty())
        offStr.push_back('0');
    if (!parseImmediate(offStr, offset))
        return false;
    base = parseReg(trim(tok.substr(open + 1, close - open - 1)));
    return base >= 0 && base < numIntRegs;
}

/** Number of instruction words a "li rd, imm" pseudo expands to. */
int
liLength(int64_t imm)
{
    if (imm >= -32768 && imm <= 32767)
        return 1;
    uint64_t v = static_cast<uint64_t>(imm);
    int top = 3;
    while (top > 0 && ((v >> (16 * top)) & 0xffffu) == 0)
        --top;
    return 1 + 2 * top;
}

class Assembler
{
  public:
    Assembler(const std::string &source, Addr base) : _base(base)
    {
        parseSource(source);
    }

    Program
    run()
    {
        layout();
        emit();
        Program prog;
        prog.base = _base;
        prog.words = std::move(_words);
        prog.symbols = std::move(_symbols);
        return prog;
    }

  private:
    /** Words occupied by one statement (pass 1). */
    int
    statementLength(const Statement &st)
    {
        if (st.mnemonic == ".word")
            return 1;
        if (st.mnemonic == ".dword")
            return 2;
        if (st.mnemonic == "li") {
            requireOperands(st, 2);
            int64_t imm;
            if (!parseImmediate(st.operands[1], imm))
                throw AsmError(st.line, "li needs a literal immediate");
            return liLength(imm);
        }
        return 1;
    }

    void
    parseSource(const std::string &source)
    {
        std::istringstream in(source);
        std::string raw;
        int lineNo = 0;
        while (std::getline(in, raw)) {
            ++lineNo;
            size_t cut = raw.find_first_of("#;");
            if (cut != std::string::npos)
                raw = raw.substr(0, cut);
            std::string line = trim(raw);

            // Peel leading labels.
            for (;;) {
                size_t colon = line.find(':');
                if (colon == std::string::npos)
                    break;
                std::string label = trim(line.substr(0, colon));
                if (!validLabelName(label))
                    throw AsmError(lineNo, "bad label '" + label + "'");
                _pendingLabels.emplace_back(label, _statements.size(),
                                            lineNo);
                line = trim(line.substr(colon + 1));
            }
            if (line.empty())
                continue;

            Statement st;
            st.line = lineNo;
            size_t sp = line.find_first_of(" \t");
            if (sp == std::string::npos) {
                st.mnemonic = line;
            } else {
                st.mnemonic = line.substr(0, sp);
                std::string rest = line.substr(sp + 1);
                size_t start = 0;
                while (start <= rest.size()) {
                    size_t comma = rest.find(',', start);
                    std::string piece =
                        comma == std::string::npos
                            ? rest.substr(start)
                            : rest.substr(start, comma - start);
                    piece = trim(piece);
                    if (piece.empty()) {
                        throw AsmError(lineNo, "empty operand");
                    }
                    st.operands.push_back(piece);
                    if (comma == std::string::npos)
                        break;
                    start = comma + 1;
                }
            }
            _statements.push_back(std::move(st));
        }
    }

    void
    layout()
    {
        std::vector<Addr> addrs;
        Addr pc = _base;
        size_t labelIdx = 0;
        for (size_t i = 0; i < _statements.size(); ++i) {
            while (labelIdx < _pendingLabels.size() &&
                   std::get<1>(_pendingLabels[labelIdx]) == i) {
                defineLabel(labelIdx, pc);
                ++labelIdx;
            }
            addrs.push_back(pc);
            pc += static_cast<Addr>(statementLength(_statements[i])) *
                  instBytes;
        }
        while (labelIdx < _pendingLabels.size()) {
            defineLabel(labelIdx, pc);
            ++labelIdx;
        }
        _addrs = std::move(addrs);
    }

    void
    defineLabel(size_t idx, Addr pc)
    {
        const auto &[name, stIdx, line] = _pendingLabels[idx];
        (void)stIdx;
        if (_symbols.count(name))
            throw AsmError(line, "duplicate label '" + name + "'");
        _symbols[name] = pc;
    }

    void
    requireOperands(const Statement &st, size_t n)
    {
        if (st.operands.size() != n) {
            throw AsmError(st.line,
                           csprintf("'%s' expects %zu operands, got %zu",
                                    st.mnemonic.c_str(), n,
                                    st.operands.size()));
        }
    }

    int
    reg(const Statement &st, size_t idx, bool wantFp)
    {
        int r = parseReg(st.operands[idx]);
        if (r < 0) {
            throw AsmError(st.line,
                           "bad register '" + st.operands[idx] + "'");
        }
        if (wantFp != isFpReg(r)) {
            throw AsmError(st.line, csprintf("operand %zu of '%s' must be "
                                             "an %s register",
                                             idx + 1, st.mnemonic.c_str(),
                                             wantFp ? "fp" : "int"));
        }
        return r;
    }

    int64_t
    imm(const Statement &st, size_t idx)
    {
        int64_t v;
        if (!parseImmediate(st.operands[idx], v)) {
            throw AsmError(st.line,
                           "bad immediate '" + st.operands[idx] + "'");
        }
        return v;
    }

    /** Branch/jump target operand: label or literal address. */
    int64_t
    targetOffset(const Statement &st, size_t idx, Addr pc, int bits)
    {
        Addr target;
        const std::string &tok = st.operands[idx];
        auto it = _symbols.find(tok);
        if (it != _symbols.end()) {
            target = it->second;
        } else {
            int64_t lit;
            if (!parseImmediate(tok, lit))
                throw AsmError(st.line, "undefined label '" + tok + "'");
            target = static_cast<Addr>(lit);
        }
        int64_t delta = static_cast<int64_t>(target) -
                        static_cast<int64_t>(pc + instBytes);
        if (delta % static_cast<int64_t>(instBytes) != 0)
            throw AsmError(st.line, "misaligned branch target");
        int64_t words = delta / static_cast<int64_t>(instBytes);
        int64_t lim = int64_t{1} << (bits - 1);
        if (words < -lim || words >= lim)
            throw AsmError(st.line, "branch target out of range");
        return words;
    }

    void
    emitInst(const DecodedInst &inst)
    {
        _words.push_back(encode(inst));
    }

    void
    emitLi(int rd, int64_t value)
    {
        if (value >= -32768 && value <= 32767) {
            emitInst({Opcode::ADDI, rd, 0, -1, -1, value});
            return;
        }
        uint64_t v = static_cast<uint64_t>(value);
        int top = 3;
        while (top > 0 && ((v >> (16 * top)) & 0xffffu) == 0)
            --top;
        emitInst({Opcode::ORI, rd, 0, -1, -1,
                  static_cast<int64_t>((v >> (16 * top)) & 0xffffu)});
        for (int chunk = top - 1; chunk >= 0; --chunk) {
            emitInst({Opcode::SLLI, rd, rd, -1, -1, 16});
            emitInst({Opcode::ORI, rd, rd, -1, -1,
                      static_cast<int64_t>((v >> (16 * chunk)) & 0xffffu)});
        }
    }

    void
    emitStatement(const Statement &st, Addr pc)
    {
        const std::string &m = st.mnemonic;

        // Directives and pseudo-instructions first.
        if (m == ".word") {
            requireOperands(st, 1);
            _words.push_back(static_cast<uint32_t>(imm(st, 0)));
            return;
        }
        if (m == ".dword") {
            requireOperands(st, 1);
            uint64_t v = static_cast<uint64_t>(imm(st, 0));
            _words.push_back(static_cast<uint32_t>(v));
            _words.push_back(static_cast<uint32_t>(v >> 32));
            return;
        }
        if (m == "li") {
            requireOperands(st, 2);
            emitLi(reg(st, 0, false), imm(st, 1));
            return;
        }
        if (m == "mv") {
            requireOperands(st, 2);
            emitInst({Opcode::ADDI, reg(st, 0, false), reg(st, 1, false),
                      -1, -1, 0});
            return;
        }
        if (m == "subi") {
            requireOperands(st, 3);
            emitInst({Opcode::ADDI, reg(st, 0, false), reg(st, 1, false),
                      -1, -1, -imm(st, 2)});
            return;
        }
        if (m == "b") {
            requireOperands(st, 1);
            emitInst({Opcode::BEQ, -1, 0, 0, -1,
                      targetOffset(st, 0, pc, 16)});
            return;
        }
        if (m == "ret") {
            requireOperands(st, 0);
            emitInst({Opcode::JALR, 0, 31, -1, -1, 0});
            return;
        }

        Opcode op = opcodeFromName(m);
        if (op == Opcode::NUM_OPCODES)
            throw AsmError(st.line, "unknown mnemonic '" + m + "'");

        DecodedInst inst;
        inst.op = op;
        switch (op) {
          // R-type integer.
          case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
          case Opcode::DIVQ: case Opcode::REM: case Opcode::AND:
          case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
          case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
          case Opcode::SLTU:
            requireOperands(st, 3);
            inst.rd = reg(st, 0, false);
            inst.rs1 = reg(st, 1, false);
            inst.rs2 = reg(st, 2, false);
            break;
          // I-type integer.
          case Opcode::ADDI: case Opcode::ANDI: case Opcode::ORI:
          case Opcode::XORI: case Opcode::SLLI: case Opcode::SRLI:
          case Opcode::SRAI: case Opcode::SLTI:
            requireOperands(st, 3);
            inst.rd = reg(st, 0, false);
            inst.rs1 = reg(st, 1, false);
            inst.imm = imm(st, 2);
            break;
          case Opcode::LUI:
            requireOperands(st, 2);
            inst.rd = reg(st, 0, false);
            inst.imm = imm(st, 1);
            break;
          // Loads.
          case Opcode::LD: case Opcode::LW: case Opcode::LBU:
          case Opcode::FLD: {
            requireOperands(st, 2);
            inst.rd = reg(st, 0, op == Opcode::FLD);
            int base;
            if (!parseMemOperand(st.operands[1], inst.imm, base)) {
                throw AsmError(st.line, "bad memory operand '" +
                                        st.operands[1] + "'");
            }
            inst.rs1 = base;
            break;
          }
          // Stores.
          case Opcode::SD: case Opcode::SW: case Opcode::SB:
          case Opcode::FSD: {
            requireOperands(st, 2);
            inst.rs2 = reg(st, 0, op == Opcode::FSD);
            int base;
            if (!parseMemOperand(st.operands[1], inst.imm, base)) {
                throw AsmError(st.line, "bad memory operand '" +
                                        st.operands[1] + "'");
            }
            inst.rs1 = base;
            break;
          }
          // Branches.
          case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
          case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
            requireOperands(st, 3);
            inst.rs1 = reg(st, 0, false);
            inst.rs2 = reg(st, 1, false);
            inst.imm = targetOffset(st, 2, pc, 16);
            break;
          case Opcode::JAL:
            requireOperands(st, 2);
            inst.rd = reg(st, 0, false);
            inst.imm = targetOffset(st, 1, pc, 21);
            break;
          case Opcode::JALR:
            requireOperands(st, 3);
            inst.rd = reg(st, 0, false);
            inst.rs1 = reg(st, 1, false);
            inst.imm = imm(st, 2);
            break;
          // FP three-operand.
          case Opcode::FADD: case Opcode::FSUB: case Opcode::FMUL:
          case Opcode::FDIV: case Opcode::FMIN: case Opcode::FMAX:
          case Opcode::FMA:
            requireOperands(st, 3);
            inst.rd = reg(st, 0, true);
            inst.rs1 = reg(st, 1, true);
            inst.rs2 = reg(st, 2, true);
            if (op == Opcode::FMA)
                inst.rs3 = inst.rd;
            break;
          // FP two-operand.
          case Opcode::FSQRT: case Opcode::FMOV:
            requireOperands(st, 2);
            inst.rd = reg(st, 0, true);
            inst.rs1 = reg(st, 1, true);
            break;
          case Opcode::FCVTDL: case Opcode::FMVDX:
            requireOperands(st, 2);
            inst.rd = reg(st, 0, true);
            inst.rs1 = reg(st, 1, false);
            break;
          case Opcode::FCVTLD: case Opcode::FMVXD:
            requireOperands(st, 2);
            inst.rd = reg(st, 0, false);
            inst.rs1 = reg(st, 1, true);
            break;
          case Opcode::FEQ: case Opcode::FLT: case Opcode::FLE:
            requireOperands(st, 3);
            inst.rd = reg(st, 0, false);
            inst.rs1 = reg(st, 1, true);
            inst.rs2 = reg(st, 2, true);
            break;
          case Opcode::NOP: case Opcode::HALT:
            requireOperands(st, 0);
            break;
          case Opcode::NUM_OPCODES:
            throw AsmError(st.line, "unknown mnemonic");
        }

        // Writing r0 is a no-op; normalize like decode() does.
        if (inst.rd == 0)
            inst.rd = -1;
        emitInst(inst);
    }

    void
    emit()
    {
        for (size_t i = 0; i < _statements.size(); ++i) {
            size_t before = _words.size();
            emitStatement(_statements[i], _addrs[i]);
            size_t expect =
                static_cast<size_t>(statementLength(_statements[i]));
            if (_words.size() - before != expect) {
                throw AsmError(_statements[i].line,
                               "internal: pass1/pass2 size mismatch");
            }
        }
    }

    Addr _base;
    std::vector<Statement> _statements;
    std::vector<std::tuple<std::string, size_t, int>> _pendingLabels;
    std::vector<Addr> _addrs;
    std::vector<uint32_t> _words;
    std::map<std::string, Addr> _symbols;
};

} // namespace

std::optional<Program>
assembleOrError(const std::string &source, Addr base, std::string &error)
{
    try {
        Assembler as(source, base);
        return as.run();
    } catch (const AsmError &e) {
        error = e.text;
        return std::nullopt;
    }
}

Program
assemble(const std::string &source, Addr base)
{
    std::string error;
    auto prog = assembleOrError(source, base, error);
    if (!prog)
        fatal("assembly failed: %s", error.c_str());
    return *prog;
}

} // namespace vpsim
