#include "isa/disasm.hh"

#include <sstream>

#include "sim/logging.hh"

namespace vpsim
{

std::string
disassemble(const DecodedInst &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);

    auto r = [](int reg) { return regName(reg); };

    if (inst.isLoad()) {
        os << ' ' << r(inst.rd) << ", " << inst.imm << '(' << r(inst.rs1)
           << ')';
    } else if (inst.isStore()) {
        os << ' ' << r(inst.rs2) << ", " << inst.imm << '(' << r(inst.rs1)
           << ')';
    } else if (inst.isBranch()) {
        os << ' ' << r(inst.rs1) << ", " << r(inst.rs2) << ", "
           << (inst.imm >= 0 ? "+" : "") << inst.imm;
    } else if (inst.op == Opcode::JAL) {
        os << ' ' << r(inst.rd) << ", " << (inst.imm >= 0 ? "+" : "")
           << inst.imm;
    } else if (inst.op == Opcode::JALR) {
        os << ' ' << r(inst.rd) << ", " << r(inst.rs1) << ", " << inst.imm;
    } else if (inst.op == Opcode::NOP || inst.op == Opcode::HALT) {
        // Mnemonic only.
    } else {
        bool first = true;
        auto emit = [&](const std::string &s) {
            os << (first ? " " : ", ") << s;
            first = false;
        };
        if (inst.rd >= 0)
            emit(r(inst.rd));
        else
            emit("r0");
        if (inst.rs1 >= 0)
            emit(r(inst.rs1));
        if (inst.rs2 >= 0 && inst.op != Opcode::FMA)
            emit(r(inst.rs2));
        if (inst.op == Opcode::FMA)
            emit(r(inst.rs2));
        bool hasImm = inst.op == Opcode::ADDI || inst.op == Opcode::ANDI ||
                      inst.op == Opcode::ORI || inst.op == Opcode::XORI ||
                      inst.op == Opcode::SLLI || inst.op == Opcode::SRLI ||
                      inst.op == Opcode::SRAI || inst.op == Opcode::SLTI ||
                      inst.op == Opcode::LUI;
        if (hasImm)
            emit(std::to_string(inst.imm));
    }
    return os.str();
}

std::string
disassemble(uint32_t word)
{
    return disassemble(decode(word));
}

} // namespace vpsim
