/**
 * @file
 * The vpsim RISC ISA: a 64-bit load/store architecture with 32 integer
 * and 32 floating-point registers and a fixed 32-bit instruction word.
 *
 * The ISA exists so workloads can be genuinely *executed* (value
 * prediction needs real load values, and value-misspeculated threads must
 * really run down wrong paths). It is deliberately small; the paper's
 * mechanisms are ISA-agnostic.
 *
 * Encoding (32 bits):
 *   [31:26] opcode   [25:21] rd   [20:16] rs1   [15:11] rs2
 *   [15:0]  imm16 (I-format; overlaps rs2)
 *   [20:0]  imm21 (J-format; overlaps rs1/rs2/imm16)
 * Branch/jump immediates are signed word offsets relative to pc + 4.
 */

#ifndef VPSIM_ISA_ISA_HH
#define VPSIM_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace vpsim
{

/** Number of architectural integer (and, separately, FP) registers. */
inline constexpr int numIntRegs = 32;
inline constexpr int numFpRegs = 32;
/** Total logical register namespace (int 0..31, fp 32..63). */
inline constexpr int numLogicalRegs = numIntRegs + numFpRegs;
/** Bytes per instruction word. */
inline constexpr Addr instBytes = 4;

/** All opcodes. Order is part of the binary encoding; append only. */
enum class Opcode : uint8_t
{
    // Integer register-register.
    ADD, SUB, MUL, DIVQ, REM, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    // Integer register-immediate.
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, LUI,
    // Memory.
    LD, LW, LBU, SD, SW, SB, FLD, FSD,
    // Control.
    BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL, JALR,
    // Floating point.
    FADD, FSUB, FMUL, FDIV, FSQRT, FMIN, FMAX, FMA,
    FCVTDL, FCVTLD, FEQ, FLT, FLE, FMOV, FMVDX, FMVXD,
    // Misc.
    NOP, HALT,

    NUM_OPCODES,
};

/** Functional-unit class an instruction issues to. */
enum class OpClass : uint8_t
{
    IntAlu,   ///< 1-cycle integer ops and branches.
    IntMul,   ///< Integer multiply / divide.
    FpAdd,    ///< FP add/compare/convert.
    FpMul,    ///< FP multiply / divide / sqrt / fma.
    Load,     ///< Memory read.
    Store,    ///< Memory write.
};

/** Static (decode-time) properties of one instruction. */
struct DecodedInst
{
    Opcode op = Opcode::NOP;
    /** Destination logical register (int space 0..31, fp 32..63); -1 none. */
    int rd = -1;
    /** Source logical registers; -1 means unused. */
    int rs1 = -1;
    int rs2 = -1;
    /** Third source for FMA / stores-data is rs2; FMA accumulates rd. */
    int rs3 = -1;
    /** Sign-extended immediate. */
    int64_t imm = 0;

    bool isLoad() const;
    bool isStore() const;
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const;       ///< Conditional branches only.
    bool isJump() const;         ///< JAL / JALR.
    bool isControl() const { return isBranch() || isJump(); }
    bool isFp() const;           ///< Issues to an FP unit.
    bool isHalt() const { return op == Opcode::HALT; }
    /** True if the instruction produces a register result (r0 excluded). */
    bool writesReg() const { return rd > 0; }

    /** Functional-unit class. */
    OpClass opClass() const;
    /** Execution latency in cycles (memory excludes cache time). */
    int execLatency() const;
    /** Bytes accessed by a memory op (0 for non-memory). */
    int memBytes() const;
};

/** Encode a decoded instruction to its 32-bit binary form. */
uint32_t encode(const DecodedInst &inst);

/** Decode a 32-bit binary word. Unknown opcodes decode as NOP. */
DecodedInst decode(uint32_t word);

/** Mnemonic for an opcode ("add", "fld", ...). */
const char *opcodeName(Opcode op);

/** Parse a mnemonic; returns NUM_OPCODES when unknown. */
Opcode opcodeFromName(const std::string &name);

/** True if @p r is in the FP half of the logical register space. */
inline bool
isFpReg(int r)
{
    return r >= numIntRegs && r < numLogicalRegs;
}

/** Render a logical register as "r5" / "f12". */
std::string regName(int r);

} // namespace vpsim

#endif // VPSIM_ISA_ISA_HH
