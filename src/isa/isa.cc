#include "isa/isa.hh"

#include <array>

#include "sim/logging.hh"

namespace vpsim
{

namespace
{

/** Instruction formats drive encode/decode field placement. */
enum class Format : uint8_t
{
    R,      ///< rd, rs1, rs2
    RFp,    ///< FP rd, rs1, rs2 (register numbers offset by 32)
    R2Fp,   ///< FP rd, rs1 (unary FP)
    I,      ///< rd, rs1, imm16
    IU,     ///< rd, imm16 (LUI)
    LdInt,  ///< int rd, imm16(rs1)
    LdFp,   ///< fp rd, imm16(rs1)
    StInt,  ///< int data (rd field), imm16(rs1)
    StFp,   ///< fp data (rd field), imm16(rs1)
    Br,     ///< rs1 (rd field), rs2 (rs1 field), imm16
    Jal,    ///< rd, imm21
    Jalr,   ///< rd, rs1, imm16
    FpCvtToFp,   ///< fp rd, int rs1
    FpCvtToInt,  ///< int rd, fp rs1
    FpCmp,  ///< int rd, fp rs1, fp rs2
    Fma,    ///< fp rd (also source rs3), fp rs1, fp rs2
    None,   ///< no operands (NOP, HALT)
};

struct OpInfo
{
    const char *name;
    Format format;
    OpClass opClass;
    int latency;
};

constexpr int numOpcodes = static_cast<int>(Opcode::NUM_OPCODES);

const std::array<OpInfo, numOpcodes> opTable = {{
    {"add",    Format::R,    OpClass::IntAlu, 1},
    {"sub",    Format::R,    OpClass::IntAlu, 1},
    {"mul",    Format::R,    OpClass::IntMul, 3},
    {"divq",   Format::R,    OpClass::IntMul, 12},
    {"rem",    Format::R,    OpClass::IntMul, 12},
    {"and",    Format::R,    OpClass::IntAlu, 1},
    {"or",     Format::R,    OpClass::IntAlu, 1},
    {"xor",    Format::R,    OpClass::IntAlu, 1},
    {"sll",    Format::R,    OpClass::IntAlu, 1},
    {"srl",    Format::R,    OpClass::IntAlu, 1},
    {"sra",    Format::R,    OpClass::IntAlu, 1},
    {"slt",    Format::R,    OpClass::IntAlu, 1},
    {"sltu",   Format::R,    OpClass::IntAlu, 1},
    {"addi",   Format::I,    OpClass::IntAlu, 1},
    {"andi",   Format::I,    OpClass::IntAlu, 1},
    {"ori",    Format::I,    OpClass::IntAlu, 1},
    {"xori",   Format::I,    OpClass::IntAlu, 1},
    {"slli",   Format::I,    OpClass::IntAlu, 1},
    {"srli",   Format::I,    OpClass::IntAlu, 1},
    {"srai",   Format::I,    OpClass::IntAlu, 1},
    {"slti",   Format::I,    OpClass::IntAlu, 1},
    {"lui",    Format::IU,   OpClass::IntAlu, 1},
    {"ld",     Format::LdInt, OpClass::Load,  1},
    {"lw",     Format::LdInt, OpClass::Load,  1},
    {"lbu",    Format::LdInt, OpClass::Load,  1},
    {"sd",     Format::StInt, OpClass::Store, 1},
    {"sw",     Format::StInt, OpClass::Store, 1},
    {"sb",     Format::StInt, OpClass::Store, 1},
    {"fld",    Format::LdFp,  OpClass::Load,  1},
    {"fsd",    Format::StFp,  OpClass::Store, 1},
    {"beq",    Format::Br,   OpClass::IntAlu, 1},
    {"bne",    Format::Br,   OpClass::IntAlu, 1},
    {"blt",    Format::Br,   OpClass::IntAlu, 1},
    {"bge",    Format::Br,   OpClass::IntAlu, 1},
    {"bltu",   Format::Br,   OpClass::IntAlu, 1},
    {"bgeu",   Format::Br,   OpClass::IntAlu, 1},
    {"jal",    Format::Jal,  OpClass::IntAlu, 1},
    {"jalr",   Format::Jalr, OpClass::IntAlu, 1},
    {"fadd",   Format::RFp,  OpClass::FpAdd,  4},
    {"fsub",   Format::RFp,  OpClass::FpAdd,  4},
    {"fmul",   Format::RFp,  OpClass::FpMul,  4},
    {"fdiv",   Format::RFp,  OpClass::FpMul,  16},
    {"fsqrt",  Format::R2Fp, OpClass::FpMul,  20},
    {"fmin",   Format::RFp,  OpClass::FpAdd,  2},
    {"fmax",   Format::RFp,  OpClass::FpAdd,  2},
    {"fma",    Format::Fma,  OpClass::FpMul,  5},
    {"fcvtdl", Format::FpCvtToFp,  OpClass::FpAdd, 2},
    {"fcvtld", Format::FpCvtToInt, OpClass::FpAdd, 2},
    {"feq",    Format::FpCmp, OpClass::FpAdd, 2},
    {"flt",    Format::FpCmp, OpClass::FpAdd, 2},
    {"fle",    Format::FpCmp, OpClass::FpAdd, 2},
    {"fmov",   Format::R2Fp,  OpClass::FpAdd, 2},
    {"fmvdx",  Format::FpCvtToFp,  OpClass::FpAdd, 2},
    {"fmvxd",  Format::FpCvtToInt, OpClass::FpAdd, 2},
    {"nop",    Format::None, OpClass::IntAlu, 1},
    {"halt",   Format::None, OpClass::IntAlu, 1},
}};

const OpInfo &
info(Opcode op)
{
    int idx = static_cast<int>(op);
    vpsim_assert(idx >= 0 && idx < numOpcodes);
    return opTable[static_cast<size_t>(idx)];
}

Format
formatOf(Opcode op)
{
    return info(op).format;
}

uint32_t
field(int value, int shift, int bits)
{
    uint32_t mask = (1u << bits) - 1;
    return (static_cast<uint32_t>(value) & mask) << shift;
}

int
extract(uint32_t word, int shift, int bits)
{
    return static_cast<int>((word >> shift) & ((1u << bits) - 1));
}

int64_t
signExtend(uint32_t value, int bits)
{
    uint64_t v = value & ((1ull << bits) - 1);
    uint64_t sign = 1ull << (bits - 1);
    return static_cast<int64_t>((v ^ sign) - sign);
}

int
fpField(int logical)
{
    if (logical < 0)
        return 0; // Normalized "no destination" encodes as f0.
    vpsim_assert(isFpReg(logical), "fp operand expected, got %d", logical);
    return logical - numIntRegs;
}

int
intField(int logical)
{
    if (logical < 0)
        return 0; // Normalized "no destination" encodes as r0.
    vpsim_assert(logical < numIntRegs, "int operand expected, got %d",
                 logical);
    return logical;
}

} // namespace

bool
DecodedInst::isLoad() const
{
    return info(op).opClass == OpClass::Load;
}

bool
DecodedInst::isStore() const
{
    return info(op).opClass == OpClass::Store;
}

bool
DecodedInst::isBranch() const
{
    return formatOf(op) == Format::Br;
}

bool
DecodedInst::isJump() const
{
    return op == Opcode::JAL || op == Opcode::JALR;
}

bool
DecodedInst::isFp() const
{
    OpClass c = info(op).opClass;
    return c == OpClass::FpAdd || c == OpClass::FpMul;
}

OpClass
DecodedInst::opClass() const
{
    return info(op).opClass;
}

int
DecodedInst::execLatency() const
{
    return info(op).latency;
}

int
DecodedInst::memBytes() const
{
    switch (op) {
      case Opcode::LD:
      case Opcode::SD:
      case Opcode::FLD:
      case Opcode::FSD:
        return 8;
      case Opcode::LW:
      case Opcode::SW:
        return 4;
      case Opcode::LBU:
      case Opcode::SB:
        return 1;
      default:
        return 0;
    }
}

uint32_t
encode(const DecodedInst &inst)
{
    uint32_t word = field(static_cast<int>(inst.op), 26, 6);
    uint32_t imm16 = static_cast<uint32_t>(inst.imm) & 0xffffu;

    switch (formatOf(inst.op)) {
      case Format::R:
        word |= field(intField(inst.rd), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        word |= field(intField(inst.rs2), 11, 5);
        break;
      case Format::RFp:
        word |= field(fpField(inst.rd), 21, 5);
        word |= field(fpField(inst.rs1), 16, 5);
        word |= field(fpField(inst.rs2), 11, 5);
        break;
      case Format::R2Fp:
        word |= field(fpField(inst.rd), 21, 5);
        word |= field(fpField(inst.rs1), 16, 5);
        break;
      case Format::I:
        word |= field(intField(inst.rd), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        word |= imm16;
        break;
      case Format::IU:
        word |= field(intField(inst.rd), 21, 5);
        word |= imm16;
        break;
      case Format::LdInt:
        word |= field(intField(inst.rd), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        word |= imm16;
        break;
      case Format::LdFp:
        word |= field(fpField(inst.rd), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        word |= imm16;
        break;
      case Format::StInt:
        word |= field(intField(inst.rs2), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        word |= imm16;
        break;
      case Format::StFp:
        word |= field(fpField(inst.rs2), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        word |= imm16;
        break;
      case Format::Br:
        word |= field(intField(inst.rs1), 21, 5);
        word |= field(intField(inst.rs2), 16, 5);
        word |= imm16;
        break;
      case Format::Jal:
        word |= field(intField(inst.rd), 21, 5);
        word |= static_cast<uint32_t>(inst.imm) & 0x1fffffu;
        break;
      case Format::Jalr:
        word |= field(intField(inst.rd), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        word |= imm16;
        break;
      case Format::FpCvtToFp:
        word |= field(fpField(inst.rd), 21, 5);
        word |= field(intField(inst.rs1), 16, 5);
        break;
      case Format::FpCvtToInt:
        word |= field(intField(inst.rd), 21, 5);
        word |= field(fpField(inst.rs1), 16, 5);
        break;
      case Format::FpCmp:
        word |= field(intField(inst.rd), 21, 5);
        word |= field(fpField(inst.rs1), 16, 5);
        word |= field(fpField(inst.rs2), 11, 5);
        break;
      case Format::Fma:
        word |= field(fpField(inst.rd), 21, 5);
        word |= field(fpField(inst.rs1), 16, 5);
        word |= field(fpField(inst.rs2), 11, 5);
        break;
      case Format::None:
        break;
    }
    return word;
}

DecodedInst
decode(uint32_t word)
{
    DecodedInst inst;
    int opNum = extract(word, 26, 6);
    if (opNum >= numOpcodes) {
        inst.op = Opcode::NOP;
        return inst;
    }
    inst.op = static_cast<Opcode>(opNum);

    int fA = extract(word, 21, 5);
    int fB = extract(word, 16, 5);
    int fC = extract(word, 11, 5);
    int64_t imm16 = signExtend(word & 0xffffu, 16);

    switch (formatOf(inst.op)) {
      case Format::R:
        inst.rd = fA;
        inst.rs1 = fB;
        inst.rs2 = fC;
        break;
      case Format::RFp:
        inst.rd = fA + numIntRegs;
        inst.rs1 = fB + numIntRegs;
        inst.rs2 = fC + numIntRegs;
        break;
      case Format::R2Fp:
        inst.rd = fA + numIntRegs;
        inst.rs1 = fB + numIntRegs;
        break;
      case Format::I:
        inst.rd = fA;
        inst.rs1 = fB;
        // Logical immediates and shift amounts are zero-extended;
        // arithmetic immediates are sign-extended.
        switch (inst.op) {
          case Opcode::ANDI:
          case Opcode::ORI:
          case Opcode::XORI:
          case Opcode::SLLI:
          case Opcode::SRLI:
          case Opcode::SRAI:
            inst.imm = static_cast<int64_t>(word & 0xffffu);
            break;
          default:
            inst.imm = imm16;
            break;
        }
        break;
      case Format::IU:
        inst.rd = fA;
        inst.imm = imm16;
        break;
      case Format::LdInt:
        inst.rd = fA;
        inst.rs1 = fB;
        inst.imm = imm16;
        break;
      case Format::LdFp:
        inst.rd = fA + numIntRegs;
        inst.rs1 = fB;
        inst.imm = imm16;
        break;
      case Format::StInt:
        inst.rs2 = fA;
        inst.rs1 = fB;
        inst.imm = imm16;
        break;
      case Format::StFp:
        inst.rs2 = fA + numIntRegs;
        inst.rs1 = fB;
        inst.imm = imm16;
        break;
      case Format::Br:
        inst.rs1 = fA;
        inst.rs2 = fB;
        inst.imm = imm16;
        break;
      case Format::Jal:
        inst.rd = fA;
        inst.imm = signExtend(word & 0x1fffffu, 21);
        break;
      case Format::Jalr:
        inst.rd = fA;
        inst.rs1 = fB;
        inst.imm = imm16;
        break;
      case Format::FpCvtToFp:
        inst.rd = fA + numIntRegs;
        inst.rs1 = fB;
        break;
      case Format::FpCvtToInt:
        inst.rd = fA;
        inst.rs1 = fB + numIntRegs;
        break;
      case Format::FpCmp:
        inst.rd = fA;
        inst.rs1 = fB + numIntRegs;
        inst.rs2 = fC + numIntRegs;
        break;
      case Format::Fma:
        inst.rd = fA + numIntRegs;
        inst.rs1 = fB + numIntRegs;
        inst.rs2 = fC + numIntRegs;
        inst.rs3 = inst.rd;
        break;
      case Format::None:
        break;
    }

    // Writes to r0 are architectural no-ops; normalize so the pipeline
    // never allocates a rename mapping for them.
    if (inst.rd == 0)
        inst.rd = -1;
    return inst;
}

const char *
opcodeName(Opcode op)
{
    return info(op).name;
}

Opcode
opcodeFromName(const std::string &name)
{
    for (int i = 0; i < numOpcodes; ++i) {
        if (name == opTable[static_cast<size_t>(i)].name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NUM_OPCODES;
}

std::string
regName(int r)
{
    if (r < 0)
        return "-";
    if (isFpReg(r))
        return csprintf("f%d", r - numIntRegs);
    return csprintf("r%d", r);
}

} // namespace vpsim
