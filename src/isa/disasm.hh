/**
 * @file
 * Disassembler: renders decoded instructions back to assembler syntax
 * (used by trace/debug output and round-trip tests).
 */

#ifndef VPSIM_ISA_DISASM_HH
#define VPSIM_ISA_DISASM_HH

#include <string>

#include "isa/isa.hh"

namespace vpsim
{

/** Render @p inst in the assembler's input syntax. Branch targets are
 *  shown as relative word offsets (labels are gone after assembly). */
std::string disassemble(const DecodedInst &inst);

/** Decode and render a raw instruction word. */
std::string disassemble(uint32_t word);

} // namespace vpsim

#endif // VPSIM_ISA_DISASM_HH
