/**
 * @file
 * SPECfp2000 mimic kernels. Floating-point data is initialized with the
 * value-locality structure real FP programs exhibit (plateaus of equal
 * values, many zeros, small sets of distinct coefficients) — the paper's
 * Section 1/5 point is precisely that FP codes have abundant value
 * locality that single-threaded VP fails to exploit but MTVP can.
 */

#include "workloads/workload.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace vpsim
{

namespace
{

constexpr Addr dataBase = 0x100000;

void
reg(std::vector<const Workload *> &keep, std::string name,
    std::string desc, std::string source, AsmWorkload::DataInit init)
{
    auto *w = new AsmWorkload(std::move(name), BenchCategory::Fp,
                              std::move(desc), std::move(source),
                              std::move(init));
    keep.push_back(w);
    registerWorkload(w);
}

/** Fill doubles with plateaus: runs of @p runLen equal values drawn
 *  from @p distinct choices (plus zeros) — high value locality. */
void
fillPlateaus(MainMemory &mem, Addr base, size_t count, Rng &rng,
             size_t runLen, int distinct, double zeroFrac = 0.25)
{
    size_t i = 0;
    while (i < count) {
        double v;
        if (rng.nextBool(zeroFrac)) {
            v = 0.0;
        } else {
            v = 0.5 + static_cast<double>(rng.nextBounded(
                          static_cast<uint64_t>(distinct))) *
                          0.25;
        }
        for (size_t j = 0; j < runLen && i < count; ++j, ++i)
            mem.writeFp(base + i * 8, v);
    }
}

// -------------------------------------------------------------------
// wupwise: dense matrix-vector product, matrix streamed from memory.
// -------------------------------------------------------------------

std::string
wupwiseSource()
{
    const Addr matrix = dataBase;              // 8 MB of doubles
    const Addr vec = dataBase + 0x900000;      // 8 KB vector
    return csprintf(R"(
        li   r1, %llu          # matrix
        li   r2, %llu          # x vector (L1 resident)
        li   r3, %llu          # permuted row list (BLAS tiling order)
        li   r9, 9000          # row visits
        fcvtdl f1, r0          # accumulators
        fcvtdl f4, r0
    rowv:
        ld   r5, 0(r3)         # row id (permuted over 1024 rows)
        slli r5, r5, 13        # * 8192 bytes per row
        add  r6, r1, r5
        andi r7, r9, 255
        slli r7, r7, 3
        add  r8, r2, r7        # x element for this visit
        fld  f2, 0(r6)         # two matrix elements of the row
        fld  f3, 8(r6)
        fld  f5, 0(r8)
        fma  f1, f2, f5
        fma  f4, f3, f5
        addi r3, r3, 8
        subi r9, r9, 1
        bne  r9, r0, rowv
        halt
    )",
                    static_cast<unsigned long long>(matrix),
                    static_cast<unsigned long long>(vec),
                    static_cast<unsigned long long>(dataBase +
                                                    0x920000ull));
}

void
wupwiseData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x777570);
    fillPlateaus(mem, dataBase, 1 << 20, rng, 384, 6);
    for (size_t i = 0; i < 1024; ++i)
        mem.writeFp(dataBase + 0x900000 + i * 8, 1.0);
    // Permuted row-visit order (blocked/tiled BLAS walk).
    std::vector<uint64_t> order;
    for (uint64_t r = 0; r < 1024; ++r)
        order.push_back(r);
    for (size_t i = order.size() - 1; i > 0; --i)
        std::swap(order[i], order[rng.nextBounded(i + 1)]);
    for (size_t rep = 0; rep < 9; ++rep) {
        for (size_t i = 0; i < order.size(); ++i) {
            mem.write64(dataBase + 0x920000 +
                            (rep * order.size() + i) * 8,
                        order[i]);
        }
    }
}

// -------------------------------------------------------------------
// swim: shallow-water 2D stencil over three large grids.
// -------------------------------------------------------------------

std::string
swimSource()
{
    const Addr u = dataBase;                  // 4 MB each
    const Addr v = dataBase + 0x400000;
    const Addr w = dataBase + 0x800000;
    return csprintf(R"(
        li   r1, %llu          # u
        li   r2, %llu          # v
        li   r3, %llu          # unew
        li   r4, 40000         # points
        addi r5, r0, 2
        fcvtdl f5, r5          # 2.0
        addi r5, r0, 8
        fcvtdl f6, r5
        fdiv f5, f5, f6        # c1 = 0.25
    point:
        # nine-point / two-field stencil: ~10 concurrent streams, more
        # than the 8 stream buffers (as in the real shallow-water loops)
        fld  f1, 0(r1)
        fld  f2, 8(r1)
        fld  f3, 8192(r1)      # next row (1024-wide)
        fld  f4, 16384(r1)     # row after
        fld  f7, 0(r2)
        fld  f8, 8(r2)
        fld  f9, 8192(r2)
        fld  f10, 16384(r2)
        fld  f11, 24(r3)       # previous unew (in-place flavour)
        fadd f1, f1, f2
        fadd f3, f3, f4
        fadd f7, f7, f8
        fadd f9, f9, f10
        fadd f1, f1, f3
        fadd f7, f7, f9
        fmul f1, f1, f5
        fmul f7, f7, f5
        fadd f1, f1, f7
        fadd f1, f1, f11
        fsd  f1, 0(r3)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 8
        subi r4, r4, 1
        bne  r4, r0, point
        halt
    )",
                    static_cast<unsigned long long>(u),
                    static_cast<unsigned long long>(v),
                    static_cast<unsigned long long>(w));
}

void
swimData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x7377696d);
    fillPlateaus(mem, dataBase, 1 << 19, rng, 512, 5);
    fillPlateaus(mem, dataBase + 0x400000, 1 << 19, rng, 512, 5);
}

// -------------------------------------------------------------------
// mgrid: multigrid-style multi-stride stencil.
// -------------------------------------------------------------------

std::string
mgridSource()
{
    const Addr u = dataBase;              // 8 MB
    const Addr out = dataBase + 0x900000;
    return csprintf(R"(
        li   r1, %llu
        li   r2, %llu
        li   r3, 30000         # points
        addi r4, r0, 8
        fcvtdl f7, r4
    point:
        # 27-point-flavoured stencil: three rows in three planes plus
        # the output stream — ten concurrent streams.
        fld  f1, 0(r1)
        fld  f2, 8(r1)
        fld  f3, 512(r1)       # next row (64-wide)
        fld  f4, 520(r1)
        fld  f5, 1024(r1)      # row after
        fld  f6, 32760(r1)     # next plane
        fld  f8, 32768(r1)
        fld  f9, 16384(r1)     # mid plane
        fld  f10, 16392(r1)
        fadd f1, f1, f2
        fadd f3, f3, f4
        fadd f5, f5, f6
        fadd f8, f8, f9
        fadd f1, f1, f3
        fadd f5, f5, f8
        fadd f1, f1, f5
        fadd f1, f1, f10
        fdiv f1, f1, f7
        fsd  f1, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        subi r3, r3, 1
        bne  r3, r0, point
        halt
    )",
                    static_cast<unsigned long long>(u),
                    static_cast<unsigned long long>(out));
}

void
mgridData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x6d67);
    fillPlateaus(mem, dataBase, 1 << 20, rng, 640, 4);
}

// -------------------------------------------------------------------
// applu: SSOR-style sweep with a recurrence flavor.
// -------------------------------------------------------------------

std::string
appluSource()
{
    const Addr u = dataBase;               // 8 MB
    const Addr rhs = dataBase + 0x900000;  // 8 MB
    return csprintf(R"(
        li   r1, %llu          # u
        li   r2, %llu          # rhs
        li   r3, 45000         # points
        addi r4, r0, 2
        fcvtdl f6, r4          # 2.0
        addi r4, r0, 3
        fcvtdl f7, r4
        fdiv f6, f6, f7        # omega ~ 0.667
    sweep:
        fld  f1, 0(r1)
        fld  f2, 8(r1)
        fld  f3, 1024(r1)      # next line (128-wide)
        fld  f8, 2048(r1)      # line after
        fld  f9, 16384(r1)     # next plane
        fld  f10, 17408(r1)
        fld  f4, 0(r2)         # right-hand side
        fld  f11, 8(r2)
        fadd f2, f2, f3
        fadd f8, f8, f9
        fadd f10, f10, f11
        fadd f2, f2, f8
        fadd f2, f2, f10
        fmul f2, f2, f6
        fsub f5, f4, f2
        fadd f1, f1, f5
        fsd  f1, 0(r1)         # in-place update
        addi r1, r1, 8
        addi r2, r2, 8
        subi r3, r3, 1
        bne  r3, r0, sweep
        halt
    )",
                    static_cast<unsigned long long>(u),
                    static_cast<unsigned long long>(rhs));
}

void
appluData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x61706c75);
    fillPlateaus(mem, dataBase, 1 << 20, rng, 448, 5);
    fillPlateaus(mem, dataBase + 0x900000, 1 << 20, rng, 448, 5);
}

// -------------------------------------------------------------------
// apsi: meso-scale weather stencil variant (divides, two fields).
// -------------------------------------------------------------------

std::string
apsiSource()
{
    const Addr t = dataBase;              // temperature, 6 MB
    const Addr q = dataBase + 0x700000;   // moisture, 6 MB
    return csprintf(R"(
        li   r1, %llu
        li   r2, %llu
        li   r3, 40000
        addi r4, r0, 1
        fcvtdl f7, r4          # 1.0
    cell:
        fld  f1, 0(r1)
        fld  f2, 8(r1)
        fld  f3, 0(r2)
        fadd f4, f1, f2
        fadd f5, f3, f7
        fdiv f4, f4, f5        # moist convection ratio
        fsd  f4, 0(r2)
        addi r1, r1, 8
        addi r2, r2, 8
        subi r3, r3, 1
        bne  r3, r0, cell
        halt
    )",
                    static_cast<unsigned long long>(t),
                    static_cast<unsigned long long>(q));
}

void
apsiData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x61707369);
    fillPlateaus(mem, dataBase, 768 * 1024, rng, 512, 4);
    fillPlateaus(mem, dataBase + 0x700000, 768 * 1024, rng, 512, 4);
}

// -------------------------------------------------------------------
// art: neural-net recognition — a huge weight matrix with very few
// distinct values, streamed repeatedly. The paper's FP showcase.
// -------------------------------------------------------------------

std::string
artSource(int blocks)
{
    const Addr weights = dataBase; // 8 MB: 32K chained 256B blocks
    return csprintf(R"(
        li   r10, %d           # weight blocks to visit
        li   r6, %llu          # first block
        fcvtdl f1, r0
        fcvtdl f2, r0
        fcvtdl f3, r0
        fcvtdl f4, r0
    block:
        ld   r5, 0(r6)         # next-block link: serial L3 miss whose
                               # value is mostly stride (VP-friendly)
        li   r7, 7             # quads of weights per block
        addi r8, r6, 8
    quad:
        fld  f5, 0(r8)         # weights: tiny distinct-value set
        fld  f6, 8(r8)
        fld  f7, 16(r8)
        fld  f8, 24(r8)
        fma  f1, f5, f5        # four independent accumulators
        fma  f2, f6, f6
        fma  f3, f7, f7
        fma  f4, f8, f8
        addi r8, r8, 32
        subi r7, r7, 1
        bne  r7, r0, quad
        mv   r6, r5
        subi r10, r10, 1
        bne  r10, r0, block
        halt
    )",
                    blocks, static_cast<unsigned long long>(weights));
}

void
artData(MainMemory &mem, uint64_t seed, int distinct)
{
    Rng rng(seed ^ 0x617274);
    // Weights drawn from a handful of values, long runs: near-perfect
    // value locality even on cold L3 misses.
    fillPlateaus(mem, dataBase, 1 << 20, rng, 256, distinct, 0.4);
    // Chain the 256-byte blocks: the winner-take-all scan's next-block
    // dependence is serial; most links advance by one block (so the
    // link's *value* is stride-predictable), some jump.
    const uint64_t numBlocks = 32768;
    for (uint64_t b = 0; b < numBlocks; ++b) {
        uint64_t next;
        if (rng.nextBool(0.96))
            next = (b + 1) % numBlocks;
        else
            next = rng.nextBounded(numBlocks);
        mem.write64(dataBase + b * 256, dataBase + next * 256);
    }
}

// -------------------------------------------------------------------
// equake: sparse matrix-vector product (CSR with indirect loads).
// -------------------------------------------------------------------

std::string
equakeSource()
{
    const Addr vals = dataBase;              // 4 MB values
    const Addr cols = dataBase + 0x400000;   // 4 MB column indices
    const Addr x = dataBase + 0x800000;      // 4 MB vector
    return csprintf(R"(
        li   r1, %llu          # values
        li   r2, %llu          # column indices
        li   r3, %llu          # x vector
        li   r4, 40000         # nonzeros
        fcvtdl f1, r0          # y accumulator
    nz:
        fld  f2, 0(r1)         # matrix value (plateaus)
        ld   r5, 0(r2)         # column index (semi-random)
        slli r5, r5, 3
        add  r5, r3, r5
        fld  f3, 0(r5)         # x[col] — indirect, cache-hostile
        fma  f1, f2, f3
        addi r1, r1, 8
        addi r2, r2, 8
        subi r4, r4, 1
        bne  r4, r0, nz
        halt
    )",
                    static_cast<unsigned long long>(vals),
                    static_cast<unsigned long long>(cols),
                    static_cast<unsigned long long>(x));
}

void
equakeData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x6571);
    fillPlateaus(mem, dataBase, 1 << 19, rng, 320, 5);
    const size_t vecEntries = 1 << 19;
    size_t col = 0;
    for (size_t i = 0; i < (1u << 19); ++i) {
        // Banded sparsity: mostly near-diagonal, occasional far column.
        if (rng.nextBool(0.85))
            col = (col + 1 + rng.nextBounded(3)) % vecEntries;
        else
            col = rng.nextBounded(vecEntries);
        mem.write64(dataBase + 0x400000 + i * 8, col);
    }
    fillPlateaus(mem, dataBase + 0x800000, vecEntries, rng, 256, 6);
}

// -------------------------------------------------------------------
// facerec: template correlation against a large image.
// -------------------------------------------------------------------

std::string
facerecSource()
{
    const Addr image = dataBase;             // 4 MB image
    const Addr tile = dataBase + 0x480000;   // 8 KB template
    return csprintf(R"(
        li   r1, %llu          # image
        li   r2, %llu          # template
        li   r3, 500           # probe positions
        li   r7, 88172645463325252
        li   r15, 409600
        fcvtdl f1, r0
    probe:
        # pseudo-random image offset
        slli r8, r7, 13
        xor  r7, r7, r8
        srli r8, r7, 7
        xor  r7, r7, r8
        srli r9, r7, 9
        rem  r9, r9, r15
        slli r9, r9, 3
        add  r9, r1, r9        # image window
        mv   r10, r2
        li   r11, 64           # window length
    corr:
        fld  f2, 0(r9)
        fld  f3, 0(r10)
        fma  f1, f2, f3
        addi r9, r9, 8
        addi r10, r10, 8
        subi r11, r11, 1
        bne  r11, r0, corr
        subi r3, r3, 1
        bne  r3, r0, probe
        halt
    )",
                    static_cast<unsigned long long>(image),
                    static_cast<unsigned long long>(tile));
}

void
facerecData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x66616365);
    fillPlateaus(mem, dataBase, 1 << 19, rng, 128, 8);
    fillPlateaus(mem, dataBase + 0x480000, 1024, rng, 16, 4);
}

// -------------------------------------------------------------------
// fma3d: finite-element struct-of-fields element sweep.
// -------------------------------------------------------------------

std::string
fma3dSource()
{
    const Addr elems = dataBase;              // 128K elements x 64 B
    const Addr conn = dataBase + 0x900000;    // connectivity indices
    return csprintf(R"(
        li   r1, %llu          # element pool
        li   r4, %llu          # connectivity list (mesh order)
        li   r2, 14000         # elements
        addi r3, r0, 2
        fcvtdl f7, r3          # dt-ish constant
    elem:
        ld   r5, 0(r4)         # element id via connectivity
        slli r5, r5, 6
        add  r6, r1, r5
        fld  f1, 0(r6)         # stress
        fld  f2, 8(r6)         # strain
        fld  f3, 16(r6)        # velocity
        fld  f4, 24(r6)        # mass (near-constant)
        fmul f5, f2, f7
        fadd f1, f1, f5
        fdiv f6, f1, f4
        fadd f3, f3, f6
        fsd  f1, 0(r6)
        fsd  f3, 16(r6)
        addi r4, r4, 8
        subi r2, r2, 1
        bne  r2, r0, elem
        halt
    )",
                    static_cast<unsigned long long>(elems),
                    static_cast<unsigned long long>(conn));
}

void
fma3dData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x666d61);
    const size_t elems = 128 * 1024;
    for (size_t i = 0; i < elems; ++i) {
        Addr a = dataBase + i * 64;
        mem.writeFp(a, 0.0);
        mem.writeFp(a + 8,
                    0.25 * static_cast<double>(rng.nextBounded(4)));
        mem.writeFp(a + 16, 0.0);
        mem.writeFp(a + 24, 2.0); // constant mass
    }
    // Mesh-renumbered connectivity: mostly local steps, occasional jump.
    size_t cur = 0;
    for (size_t i = 0; i < 16 * 1024; ++i) {
        if (rng.nextBool(0.75))
            cur = (cur + 1 + rng.nextBounded(6)) % elems;
        else
            cur = rng.nextBounded(elems);
        mem.write64(dataBase + 0x900000 + i * 8, cur);
    }
}

// -------------------------------------------------------------------
// galgel: blocked dense linear algebra, mostly cache-resident.
// -------------------------------------------------------------------

std::string
galgelSource()
{
    const Addr a = dataBase;               // 128 KB block
    const Addr b = dataBase + 0x40000;     // 128 KB block
    return csprintf(R"(
        li   r9, 18            # block sweeps
    sweepg:
        li   r1, %llu
        li   r2, %llu
        li   r3, 2048          # elements per sweep
        fcvtdl f1, r0
    cellg:
        fld  f2, 0(r1)
        fld  f3, 0(r2)
        fmul f4, f2, f3
        fadd f1, f1, f4
        fld  f5, 8(r1)
        fma  f1, f5, f3
        fsd  f1, 0(r2)
        addi r1, r1, 16
        addi r2, r2, 8
        subi r3, r3, 1
        bne  r3, r0, cellg
        subi r9, r9, 1
        bne  r9, r0, sweepg
        halt
    )",
                    static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
}

void
galgelData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x67616c);
    fillPlateaus(mem, dataBase, 16 * 1024, rng, 64, 6);
    fillPlateaus(mem, dataBase + 0x40000, 16 * 1024, rng, 64, 6);
}

// -------------------------------------------------------------------
// lucas: FFT-style butterflies with power-of-two strides.
// -------------------------------------------------------------------

std::string
lucasSource()
{
    const Addr x = dataBase;              // 4 MB signal
    const Addr tw = dataBase + 0x480000;  // 2 KB twiddles
    return csprintf(R"(
        li   r1, %llu          # signal
        li   r2, %llu          # twiddles
        li   r3, 25000         # butterflies
        addi r4, r0, 0         # index
        li   r15, 262143       # half mask
    fly:
        and  r5, r4, r15
        slli r6, r5, 3
        add  r6, r1, r6
        fld  f1, 0(r6)         # x[i]
        fld  f2, 16384(r6)     # x[i + 2048]
        andi r7, r4, 255
        slli r7, r7, 3
        add  r7, r2, r7
        fld  f3, 0(r7)         # twiddle (256 distinct, L1 resident)
        fmul f4, f2, f3
        fadd f5, f1, f4
        fsub f6, f1, f4
        fsd  f5, 0(r6)
        fsd  f6, 16384(r6)
        addi r4, r4, 7         # stride through the signal
        subi r3, r3, 1
        bne  r3, r0, fly
        halt
    )",
                    static_cast<unsigned long long>(x),
                    static_cast<unsigned long long>(tw));
}

void
lucasData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x6c75);
    fillPlateaus(mem, dataBase, 1 << 19, rng, 384, 5);
    for (size_t i = 0; i < 256; ++i)
        mem.writeFp(dataBase + 0x480000 + i * 8,
                    0.125 * static_cast<double>(1 + rng.nextBounded(8)));
}

// -------------------------------------------------------------------
// mesa: span rasterization — interpolation, small footprint.
// -------------------------------------------------------------------

std::string
mesaSource()
{
    const Addr fb = dataBase; // 512 KB framebuffer
    return csprintf(R"(
        li   r1, %llu          # framebuffer
        li   r2, 600           # spans
        addi r3, r0, 3
        fcvtdl f2, r3
        addi r3, r0, 100
        fcvtdl f3, r3
        fdiv f2, f2, f3        # dz = 0.03
    span:
        fcvtdl f1, r2          # z start
        li   r4, 64            # pixels per span
        mv   r5, r1
    pixel:
        fadd f1, f1, f2        # interpolate depth
        fld  f4, 0(r5)         # old depth
        flt  r6, f1, f4
        beq  r6, r0, skip
        fsd  f1, 0(r5)         # depth-test passed: write
    skip:
        addi r5, r5, 8
        subi r4, r4, 1
        bne  r4, r0, pixel
        subi r2, r2, 1
        bne  r2, r0, span
        halt
    )",
                    static_cast<unsigned long long>(fb));
}

void
mesaData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x6d657361);
    // Far depth plane with per-pixel jitter (keeps builds seed-unique).
    for (size_t i = 0; i < 64 * 1024; ++i)
        mem.writeFp(dataBase + i * 8, 1e9 + rng.nextDouble());
}

// -------------------------------------------------------------------
// sixtrack: particle tracking — tiny footprint, sqrt/divide bound.
// -------------------------------------------------------------------

std::string
sixtrackSource()
{
    const Addr particles = dataBase; // 2K particles x 32 B = 64 KB
    return csprintf(R"(
        li   r9, 12            # turns
    turn:
        li   r1, %llu
        li   r2, 800           # particles per turn
    part:
        fld  f1, 0(r1)         # x
        fld  f2, 8(r1)         # px
        fmul f3, f1, f1
        fmul f4, f2, f2
        fadd f3, f3, f4
        fsqrt f5, f3           # amplitude
        fadd f6, f5, f3
        fdiv f7, f1, f6        # kick
        fadd f2, f2, f7
        fsd  f2, 8(r1)
        addi r1, r1, 32
        subi r2, r2, 1
        bne  r2, r0, part
        subi r9, r9, 1
        bne  r9, r0, turn
        halt
    )",
                    static_cast<unsigned long long>(particles));
}

void
sixtrackData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x736978);
    for (size_t i = 0; i < 2048; ++i) {
        Addr a = dataBase + i * 32;
        mem.writeFp(a, 1.0 + rng.nextDouble());
        mem.writeFp(a + 8, rng.nextDouble() * 0.1);
    }
}

// -------------------------------------------------------------------
// ammp: molecular-dynamics neighbour-list force loop.
// -------------------------------------------------------------------

std::string
ammpSource()
{
    const Addr atoms = dataBase;              // 128K atoms x 64 B = 8 MB
    const Addr nbr = dataBase + 0x900000;     // neighbour index list
    return csprintf(R"(
        li   r1, %llu          # atoms
        li   r2, %llu          # neighbour list
        li   r3, 22000         # pairs
        fcvtdl f9, r0          # energy
        addi r4, r0, 1
        fcvtdl f8, r4          # 1.0
    pair:
        ld   r5, 0(r2)         # atom A index
        ld   r6, 8(r2)         # atom B index
        slli r5, r5, 6
        slli r6, r6, 6
        add  r5, r1, r5
        add  r6, r1, r6
        fld  f1, 0(r5)         # xA
        fld  f2, 0(r6)         # xB
        fld  f3, 8(r5)         # charge A (few distinct values)
        fld  f4, 8(r6)         # charge B
        fsub f5, f1, f2
        fmul f5, f5, f5        # r^2
        fadd f5, f5, f8
        fmul f6, f3, f4
        fdiv f7, f6, f5        # coulomb term
        fadd f9, f9, f7
        addi r2, r2, 16
        subi r3, r3, 1
        bne  r3, r0, pair
        halt
    )",
                    static_cast<unsigned long long>(atoms),
                    static_cast<unsigned long long>(nbr));
}

void
ammpData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x616d6d70);
    const size_t atoms = 128 * 1024;
    for (size_t i = 0; i < atoms; ++i) {
        Addr a = dataBase + i * 64;
        mem.writeFp(a, static_cast<double>(i % 256) * 0.5);
        // Charges from a 5-value set: classic MD value locality.
        mem.writeFp(a + 8,
                    -0.5 + 0.25 * static_cast<double>(rng.nextBounded(5)));
    }
    // Neighbour list: mostly spatially-local pairs, sequential-ish walk.
    size_t cur = 0;
    for (size_t p = 0; p < 32 * 1024; ++p) {
        Addr a = dataBase + 0x900000 + p * 16;
        if (rng.nextBool(0.8))
            cur = (cur + 1 + rng.nextBounded(4)) % atoms;
        else
            cur = rng.nextBounded(atoms);
        size_t other = (cur + 1 + rng.nextBounded(16)) % atoms;
        mem.write64(a, cur);
        mem.write64(a + 8, other);
    }
}

} // namespace

void
registerFpWorkloadsImpl()
{
    static std::vector<const Workload *> keep;

    reg(keep, "ammp", "MD neighbour-list force loop over 8MB",
        ammpSource(), ammpData);
    reg(keep, "applu", "SSOR sweep with in-place updates",
        appluSource(), appluData);
    reg(keep, "apsi", "weather stencil with divides", apsiSource(),
        apsiData);
    reg(keep, "art.1", "neural-net weight blocks, input 1",
        artSource(2400),
        [](MainMemory &m, uint64_t s) { artData(m, s, 3); });
    reg(keep, "art.4", "neural-net weight blocks, input 4",
        artSource(2000),
        [](MainMemory &m, uint64_t s) { artData(m, s, 2); });
    reg(keep, "equake", "CSR sparse matrix-vector product",
        equakeSource(), equakeData);
    reg(keep, "facerec", "template correlation over a 4MB image",
        facerecSource(), facerecData);
    reg(keep, "fma3d", "finite-element struct sweep", fma3dSource(),
        fma3dData);
    reg(keep, "galgel", "blocked dense kernels, cache resident",
        galgelSource(), galgelData);
    reg(keep, "lucas", "FFT butterflies, power-of-two strides",
        lucasSource(), lucasData);
    reg(keep, "mesa", "span rasterizer with depth test", mesaSource(),
        mesaData);
    reg(keep, "mgrid", "multigrid multi-stride stencil", mgridSource(),
        mgridData);
    reg(keep, "sixtrack", "particle tracking, sqrt/div bound",
        sixtrackSource(), sixtrackData);
    reg(keep, "swim", "shallow-water stencil over 12MB", swimSource(),
        swimData);
    reg(keep, "wupwise", "dense mat-vec streaming an 8MB matrix",
        wupwiseSource(), wupwiseData);
}

} // namespace vpsim
