#include "workloads/workload.hh"

#include <algorithm>

#include "isa/assembler.hh"
#include "sim/logging.hh"

namespace vpsim
{

namespace
{

std::vector<const Workload *> &
registry()
{
    // Intentionally immortal: registered workloads must stay reachable
    // through static destruction so leak checkers see them as roots.
    static auto *workloads = new std::vector<const Workload *>;
    return *workloads;
}

} // namespace

// Defined in int_workloads.cc / fp_workloads.cc.
void registerIntWorkloadsImpl();
void registerFpWorkloadsImpl();

void
registerWorkload(const Workload *w)
{
    vpsim_assert(w != nullptr);
    registry().push_back(w);
}

const std::vector<const Workload *> &
allWorkloads()
{
    // Magic-static initialization: thread-safe even when the first two
    // lookups race on different pool workers (a plain `bool` flag here
    // would let both run the registrations).
    static const bool initialized = [] {
        registerIntWorkloadsImpl();
        registerFpWorkloadsImpl();
        return true;
    }();
    (void)initialized;
    return registry();
}

std::vector<const Workload *>
workloadsByCategory(BenchCategory cat)
{
    std::vector<const Workload *> out;
    for (const Workload *w : allWorkloads()) {
        if (w->category() == cat)
            out.push_back(w);
    }
    return out;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload *w : allWorkloads()) {
        if (w->name() == name)
            return w;
    }
    return nullptr;
}

AsmWorkload::AsmWorkload(std::string name, BenchCategory cat,
                         std::string desc, std::string source,
                         DataInit init)
    : _name(std::move(name)),
      _cat(cat),
      _desc(std::move(desc)),
      _source(std::move(source)),
      _init(std::move(init))
{
}

Addr
AsmWorkload::build(MainMemory &mem, uint64_t seed) const
{
    Program prog = assemble(_source, workloadCodeBase);
    mem.loadProgram(prog);
    if (_init)
        _init(mem, seed);
    return prog.base;
}

} // namespace vpsim
