/**
 * @file
 * Workload interface and registry.
 *
 * The paper evaluates SPEC CPU2000 with SimPoint regions; SPEC is
 * proprietary, so each benchmark is substituted by a synthetic kernel
 * (written in vpsim assembly with a generated data set) engineered to
 * mimic the original's two properties that matter to threaded value
 * prediction: how often its loads miss to memory, and how predictable
 * the missing loads' *values* are. See DESIGN.md's substitution table.
 */

#ifndef VPSIM_WORKLOADS_WORKLOAD_HH
#define VPSIM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "emu/memory.hh"
#include "sim/types.hh"

namespace vpsim
{

/** SPEC-style benchmark category. */
enum class BenchCategory
{
    Int,
    Fp,
};

/** A runnable benchmark: program text plus data-set construction. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Registry key, e.g. "mcf" or "gzip.g". */
    virtual std::string name() const = 0;
    virtual BenchCategory category() const = 0;
    /** One-line note on what the kernel mimics. */
    virtual std::string description() const = 0;

    /**
     * Assemble the program and generate the data set into @p mem.
     * @return the entry PC.
     */
    virtual Addr build(MainMemory &mem, uint64_t seed) const = 0;
};

/** All registered workloads, INT first, stable order. */
const std::vector<const Workload *> &allWorkloads();

/** Workloads of one category, registry order. */
std::vector<const Workload *> workloadsByCategory(BenchCategory cat);

/** Find by name; nullptr when unknown. */
const Workload *findWorkload(const std::string &name);

/**
 * Concrete helper: a workload defined by an assembly string (assembled
 * at 0x1000) and a data-initialization callback.
 */
class AsmWorkload : public Workload
{
  public:
    using DataInit = std::function<void(MainMemory &, uint64_t seed)>;

    AsmWorkload(std::string name, BenchCategory cat, std::string desc,
                std::string source, DataInit init);

    std::string name() const override { return _name; }
    BenchCategory category() const override { return _cat; }
    std::string description() const override { return _desc; }
    Addr build(MainMemory &mem, uint64_t seed) const override;

  private:
    std::string _name;
    BenchCategory _cat;
    std::string _desc;
    std::string _source;
    DataInit _init;
};

/** Registration hook used by the int/fp workload translation units. */
void registerWorkload(const Workload *w);

/** Base address where workload programs are assembled. */
inline constexpr Addr workloadCodeBase = 0x1000;

} // namespace vpsim

#endif // VPSIM_WORKLOADS_WORKLOAD_HH
