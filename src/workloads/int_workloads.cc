/**
 * @file
 * SPECint2000 mimic kernels (see DESIGN.md substitution table). Each
 * kernel reproduces the original benchmark's memory-boundedness and
 * load-value locality, the two properties threaded value prediction is
 * sensitive to. Variants (gzip.g/gzip.r, gcc.1/2/e/i, bzip.g/bzip.p)
 * differ in data-set construction, mirroring the paper's use of several
 * reference inputs per benchmark.
 */

#include "workloads/workload.hh"

#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace vpsim
{

namespace
{

constexpr Addr dataBase = 0x100000;

void
reg(std::vector<const Workload *> &keep, std::string name,
    std::string desc, std::string source, AsmWorkload::DataInit init)
{
    auto *w = new AsmWorkload(std::move(name), BenchCategory::Int,
                              std::move(desc), std::move(source),
                              std::move(init));
    keep.push_back(w);
    registerWorkload(w);
}

// -------------------------------------------------------------------
// gzip: LZ77-style hash-chain matcher over a byte buffer.
// -------------------------------------------------------------------

std::string
gzipSource()
{
    const Addr text = dataBase;              // 1 MB byte buffer
    const Addr head = dataBase + 0x200000;   // 64K-entry chain heads
    return csprintf(R"(
        li   r1, %llu          # text base
        li   r2, %llu          # head table
        li   r3, 14000         # positions to process
        addi r4, r0, 0         # i
    loop:
        add  r5, r1, r4
        lbu  r6, 0(r5)
        lbu  r7, 1(r5)
        slli r8, r6, 8
        or   r8, r8, r7        # 16-bit hash
        slli r9, r8, 3
        add  r9, r2, r9
        ld   r10, 0(r9)        # previous occurrence (chain head)
        sd   r4, 0(r9)
        add  r11, r1, r10
        addi r12, r0, 8        # match up to 8 bytes
        mv   r15, r5
    match:
        lbu  r13, 0(r15)
        lbu  r14, 0(r11)
        bne  r13, r14, nomatch
        addi r15, r15, 1
        addi r11, r11, 1
        subi r12, r12, 1
        bne  r12, r0, match
    nomatch:
        addi r4, r4, 1
        subi r3, r3, 1
        bne  r3, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(text),
                    static_cast<unsigned long long>(head));
}

void
gzipData(MainMemory &mem, uint64_t seed, bool graphic)
{
    Rng rng(seed ^ 0x677a6970);
    const Addr text = dataBase;
    const size_t bytes = 1 << 20;
    if (graphic) {
        // Long runs of identical bytes (raster-image-like): highly
        // compressible, short hash chains, very regular values.
        size_t i = 0;
        while (i < bytes) {
            uint8_t value = static_cast<uint8_t>(rng.nextBounded(16));
            size_t run = 8 + rng.nextBounded(56);
            for (size_t j = 0; j < run && i < bytes; ++j, ++i)
                mem.write8(text + i, value);
        }
    } else {
        // "Source"-like: words from a small alphabet with repeats.
        for (size_t i = 0; i < bytes; ++i)
            mem.write8(text + i,
                       static_cast<uint8_t>(97 + rng.nextBounded(26)));
    }
}

// -------------------------------------------------------------------
// vpr: maze-router-style walk over a large 2D cost grid.
// -------------------------------------------------------------------

std::string
vprSource()
{
    const Addr grid = dataBase; // 1024x1024 int64 costs = 8 MB (> L3)
    return csprintf(R"(
        li   r1, %llu          # grid base
        li   r2, 16000         # steps
        li   r3, 524797        # walk position (index)
        addi r4, r0, 0         # accumulated cost
        li   r14, 1048575      # index mask (2^20 - 1)
    loop:
        slli r5, r3, 3
        add  r5, r1, r5
        ld   r6, 0(r5)         # cost at position (small ints)
        ld   r7, 8(r5)         # east neighbour
        ld   r8, 8192(r5)      # south neighbour (1024 entries away)
        add  r4, r4, r6
        blt  r7, r8, east
        addi r3, r3, 1024      # move south
        b    next
    east:
        addi r3, r3, 1
    next:
        # pseudo-random rip-up: occasionally jump far away
        andi r9, r4, 63
        bne  r9, r0, stay
        mul  r10, r3, r3
        srli r10, r10, 5
        add  r3, r3, r10
    stay:
        and  r3, r3, r14
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(grid));
}

void
vprData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x767072);
    const size_t entries = 1 << 20;
    for (size_t i = 0; i < entries; ++i) {
        // Costs are tiny, heavily skewed integers: strong value
        // locality on cold misses.
        mem.write64(dataBase + i * 8,
                    rng.nextBool(0.95) ? 1 : 1 + rng.nextBounded(4));
    }
}

// -------------------------------------------------------------------
// gcc: IR-walk interpreter with a branchy opcode dispatch.
// -------------------------------------------------------------------

std::string
gccSource()
{
    const Addr nodes = dataBase; // 64K nodes x 24 bytes
    return csprintf(R"(
        li   r1, %llu          # node array
        li   r2, 30000         # nodes to interpret
        addi r3, r0, 0         # node index
        addi r4, r0, 1         # accumulator
        li   r15, 65535        # node count mask
    loop:
        mul  r5, r3, r4        # data-dependent next-node scramble
        and  r5, r3, r15
        slli r6, r5, 3
        add  r7, r6, r5
        slli r7, r7, 1         # idx * 24 ... approx: idx*16 + idx*8
        slli r8, r5, 4
        slli r9, r5, 3
        add  r8, r8, r9        # idx * 24
        add  r8, r1, r8
        ld   r10, 0(r8)        # opcode (0..7, skewed)
        ld   r11, 8(r8)        # operand 1
        ld   r12, 16(r8)       # operand 2
        addi r13, r0, 0
        bne  r10, r13, not0
        add  r4, r4, r11
        b    next
    not0:
        addi r13, r0, 1
        bne  r10, r13, not1
        sub  r4, r4, r12
        b    next
    not1:
        addi r13, r0, 2
        bne  r10, r13, not2
        xor  r4, r4, r11
        b    next
    not2:
        addi r13, r0, 3
        bne  r10, r13, not3
        and  r4, r4, r12
        b    next
    not3:
        addi r13, r0, 4
        bne  r10, r13, not4
        mul  r4, r4, r11
        b    next
    not4:
        or   r4, r4, r12
    next:
        addi r3, r3, 1
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(nodes));
}

void
gccData(MainMemory &mem, uint64_t seed, int variant)
{
    Rng rng(seed ^ (0x676363u + static_cast<uint64_t>(variant)));
    const size_t nodes = 1 << 16;
    for (size_t i = 0; i < nodes; ++i) {
        Addr a = dataBase + i * 24;
        // Variants skew the opcode mix (branch behaviour changes).
        uint64_t op;
        switch (variant) {
          case 0: op = rng.nextBounded(6); break;
          case 1: op = rng.nextBounded(3); break;             // biased
          case 2: op = rng.nextBool(0.7) ? 0 : rng.nextBounded(6); break;
          default: op = rng.nextBool(0.5) ? 4 : rng.nextBounded(6); break;
        }
        mem.write64(a, op);
        mem.write64(a + 8, rng.nextBounded(1 << 12));
        mem.write64(a + 16, rng.nextBounded(1 << 12));
    }
}

// -------------------------------------------------------------------
// mcf: network-simplex-style pointer chase over a >L3 node pool with
// mostly-stride successor pointers and near-constant flag fields. The
// canonical MTVP winner: long-miss loads with predictable values.
// -------------------------------------------------------------------

std::string
mcfSource(uint64_t steps)
{
    const Addr nodes = dataBase; // 256K nodes x 64 B = 16 MB
    return csprintf(R"(
        li   r1, %llu          # current node pointer
        li   r2, %llu          # chase steps
        addi r3, r0, 0         # flagged count
        addi r4, r0, 0         # cost sum
    loop:
        ld   r5, 0(r1)         # next pointer (80%% stride: VP-friendly)
        ld   r6, 8(r1)         # flag (mostly 0)
        ld   r7, 16(r1)        # cost (small)
        add  r4, r4, r7
        beq  r6, r0, notflag
        addi r3, r3, 1
    notflag:
        mv   r1, r5
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(nodes),
                    static_cast<unsigned long long>(steps));
}

void
mcfData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x6d6366);
    const size_t count = 1 << 18; // 256K nodes, 64 B apart.
    for (size_t i = 0; i < count; ++i) {
        Addr a = dataBase + i * 64;
        Addr next;
        if (rng.nextBool(0.97)) {
            next = dataBase + ((i + 1) % count) * 64; // stride successor
        } else {
            next = dataBase + rng.nextBounded(count) * 64;
        }
        mem.write64(a, next);
        mem.write64(a + 8, rng.nextBool(0.05) ? 1 : 0); // flag
        mem.write64(a + 16, rng.nextBool(0.94) ? 2 : 3);  // cost
    }
}

// -------------------------------------------------------------------
// crafty: bitboard manipulation — cache-resident, ALU/branch heavy.
// -------------------------------------------------------------------

std::string
craftySource()
{
    const Addr tables = dataBase; // 64 x 8 B attack masks
    return csprintf(R"(
        li   r1, %llu          # attack tables
        li   r14, %llu         # 16K-entry history table (128 KB)
        li   r2, 20000         # positions evaluated
        li   r3, 0x123456789abcdef
        li   r13, 16383        # history mask
        addi r4, r0, 0         # score
    loop:
        andi r5, r3, 63        # square
        slli r6, r5, 3
        add  r6, r1, r6
        ld   r7, 0(r6)         # attack mask
        and  r8, r7, r3        # attacked pieces
        # popcount via shift-and-add loop (branchy)
        addi r9, r0, 0
        addi r10, r0, 16
    pop:
        andi r11, r8, 1
        add  r9, r9, r11
        srli r8, r8, 1
        subi r10, r10, 1
        bne  r10, r0, pop
        add  r4, r4, r9
        # history-heuristic bump (L2-resident table)
        and  r11, r3, r13
        slli r11, r11, 3
        add  r11, r14, r11
        ld   r12, 0(r11)
        addi r12, r12, 1
        sd   r12, 0(r11)
        # evolve the board hash
        slli r12, r3, 13
        xor  r3, r3, r12
        srli r12, r3, 7
        xor  r3, r3, r12
        slli r12, r3, 17
        xor  r3, r3, r12
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(tables),
                    static_cast<unsigned long long>(dataBase + 0x1000));
}

void
craftyData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x637261);
    for (int i = 0; i < 64; ++i)
        mem.write64(dataBase + static_cast<Addr>(i) * 8, rng.next());
    // History table: initialized with small skewed counts.
    for (int i = 0; i < 16384; ++i) {
        mem.write64(dataBase + 0x1000 + static_cast<Addr>(i) * 8,
                    rng.nextBounded(3));
    }
}

// -------------------------------------------------------------------
// parser: dictionary hash-bucket chains over a medium pool.
// -------------------------------------------------------------------

std::string
parserSource()
{
    const Addr buckets = dataBase;            // 512K buckets x 8 B = 4 MB
    const Addr pool = dataBase + 0x800000;    // node pool
    (void)pool;
    return csprintf(R"(
        li   r1, %llu          # bucket array
        li   r2, 16000         # words to look up
        li   r3, 88172645463325252
        addi r4, r0, 0         # hits
        li   r15, 524287       # bucket mask
    loop:
        # xorshift word hash
        slli r5, r3, 13
        xor  r3, r3, r5
        srli r5, r3, 7
        xor  r3, r3, r5
        and  r6, r3, r15
        slli r6, r6, 3
        add  r6, r1, r6
        ld   r7, 0(r6)         # chain head (often 0: value locality)
        beq  r7, r0, miss
    chase:
        ld   r8, 0(r7)         # node key
        ld   r9, 8(r7)         # node next
        beq  r8, r3, found
        mv   r7, r9
        bne  r7, r0, chase
        b    miss
    found:
        addi r4, r4, 1
    miss:
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(buckets));
}

void
parserData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x706172);
    const Addr buckets = dataBase;
    const Addr pool = dataBase + 0x800000;
    const size_t numBuckets = 512 * 1024;
    const size_t numNodes = 128 * 1024; // 16-byte nodes, 2 MB pool
    // ~25% of buckets occupied; chains of length 1-3.
    size_t node = 0;
    for (size_t b = 0; b < numBuckets && node < numNodes; ++b) {
        if (!rng.nextBool(0.25))
            continue;
        size_t len = 1 + rng.nextBounded(3);
        Addr headAddr = buckets + b * 8;
        Addr prev = 0;
        for (size_t k = 0; k < len && node < numNodes; ++k, ++node) {
            Addr n = pool + node * 16;
            mem.write64(n, rng.next());  // key
            mem.write64(n + 8, prev);    // next
            prev = n;
        }
        mem.write64(headAddr, prev);
    }
}

// -------------------------------------------------------------------
// eon: ray/grid stepping — small footprint, mixed int + FP compute.
// -------------------------------------------------------------------

std::string
eonSource()
{
    const Addr cells = dataBase; // 32K cells x 8 B = 256 KB
    return csprintf(R"(
        li   r1, %llu          # cell occupancy
        li   r2, 9000          # rays
        li   r3, 6364136223846793005
        li   r15, 32767
        addi r4, r0, 0
        fcvtdl f1, r0          # accumulated brightness = 0
        addi r5, r0, 3
        fcvtdl f2, r5          # 3.0
        addi r5, r0, 4
        fcvtdl f3, r5          # 4.0
        fdiv f2, f2, f3        # step attenuation 0.75
    loop:
        # advance ray position hash
        li   r6, 1442695040888963407
        mul  r3, r3, r6
        srli r7, r3, 33
        and  r7, r7, r15
        slli r7, r7, 3
        add  r7, r1, r7
        ld   r8, 0(r7)         # cell density (small int)
        fcvtdl f4, r8
        fmul f4, f4, f2
        fadd f1, f1, f4
        fsqrt f5, f4
        fadd f1, f1, f5
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(cells));
}

void
eonData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x656f6e);
    for (size_t i = 0; i < 32768; ++i)
        mem.write64(dataBase + i * 8, rng.nextBounded(5));
}

// -------------------------------------------------------------------
// perlbmk: string hashing + table lookups + byte copies.
// -------------------------------------------------------------------

std::string
perlSource()
{
    const Addr strings = dataBase;           // 2 MB string pool
    const Addr table = dataBase + 0x400000;  // 128K-entry symbol table
    const Addr out = dataBase + 0x600000;    // copy target
    return csprintf(R"(
        li   r1, %llu          # string pool
        li   r2, %llu          # symbol table
        li   r3, %llu          # output buffer
        li   r4, 7000          # strings to process
        addi r5, r0, 0         # pool offset
        li   r15, 131071       # table mask
    loop:
        add  r6, r1, r5
        addi r7, r0, 0         # hash
        addi r8, r0, 16        # string length
        mv   r9, r6
    hash:
        lbu  r10, 0(r9)
        slli r11, r7, 5
        add  r7, r11, r7
        add  r7, r7, r10
        addi r9, r9, 1
        subi r8, r8, 1
        bne  r8, r0, hash
        and  r12, r7, r15
        slli r12, r12, 3
        add  r12, r2, r12
        ld   r13, 0(r12)       # symbol count (mostly small)
        addi r13, r13, 1
        sd   r13, 0(r12)
        # copy the string to the output buffer
        addi r8, r0, 16
        mv   r9, r6
        add  r14, r3, r5
    copy:
        lbu  r10, 0(r9)
        sb   r10, 0(r14)
        addi r9, r9, 1
        addi r14, r14, 1
        subi r8, r8, 1
        bne  r8, r0, copy
        addi r5, r5, 16
        subi r4, r4, 1
        bne  r4, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(strings),
                    static_cast<unsigned long long>(table),
                    static_cast<unsigned long long>(out));
}

void
perlData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x7065726c);
    for (size_t i = 0; i < (2u << 20); ++i)
        mem.write8(dataBase + i,
                   static_cast<uint8_t>(32 + rng.nextBounded(96)));
}

// -------------------------------------------------------------------
// gap: big-integer addition with carry propagation (streaming limbs).
// -------------------------------------------------------------------

std::string
gapSource()
{
    const Addr numA = dataBase;
    const Addr numB = dataBase + 0x100000;
    const Addr numC = dataBase + 0x200000;
    return csprintf(R"(
        li   r10, 10           # passes
    pass:
        li   r1, %llu
        li   r2, %llu
        li   r3, %llu
        li   r4, 4096          # limbs per pass (32 KB per array)
        addi r5, r0, 0         # carry
    limb:
        ld   r6, 0(r1)
        ld   r7, 0(r2)
        add  r8, r6, r7
        sltu r9, r8, r6        # carry-out of a+b
        add  r8, r8, r5
        sltu r11, r8, r5       # carry-out of +carry
        or   r5, r9, r11
        sd   r8, 0(r3)
        addi r1, r1, 8
        addi r2, r2, 8
        addi r3, r3, 8
        subi r4, r4, 1
        bne  r4, r0, limb
        subi r10, r10, 1
        bne  r10, r0, pass
        halt
    )",
                    static_cast<unsigned long long>(numA),
                    static_cast<unsigned long long>(numB),
                    static_cast<unsigned long long>(numC));
}

void
gapData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x676170);
    for (size_t i = 0; i < 4096; ++i) {
        mem.write64(dataBase + i * 8, rng.next());
        mem.write64(dataBase + 0x100000 + i * 8, rng.next());
    }
}

// -------------------------------------------------------------------
// vortex: object-database record traversal — large heap, repetitive
// field values (another strong MTVP candidate).
// -------------------------------------------------------------------

std::string
vortexSource()
{
    const Addr heap = dataBase; // 96K records x 128 B = 12 MB
    return csprintf(R"(
        li   r1, %llu          # record heap
        li   r2, 18000         # transactions
        li   r3, 2862933555777941757
        addi r4, r0, 0         # checksum
        li   r15, 98303        # record count - 1 (mask via rem)
    loop:
        # next record id (linear congruential walk)
        li   r5, 3037000493
        mul  r3, r3, r5
        addi r3, r3, 1
        srli r6, r3, 17
        rem  r6, r6, r15
        slli r7, r6, 7         # * 128
        add  r7, r1, r7
        ld   r8, 0(r7)         # type tag (few distinct values)
        ld   r9, 8(r7)         # status (near-constant)
        ld   r10, 16(r7)       # payload
        ld   r11, 24(r7)       # access counter
        add  r4, r4, r10
        add  r4, r4, r8
        add  r4, r4, r9
        addi r11, r11, 1
        sd   r11, 24(r7)
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(heap));
}

void
vortexData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x766f72);
    const size_t records = 96 * 1024;
    for (size_t i = 0; i < records; ++i) {
        Addr a = dataBase + i * 128;
        mem.write64(a, rng.nextBool(0.9) ? 1 : rng.nextBounded(4)); // type tag
        mem.write64(a + 8, 1);                     // status: constant
        mem.write64(a + 16, rng.nextBool(0.85) ? 7 : rng.nextBounded(256)); // payload
        mem.write64(a + 24, 0);                    // access counter
    }
}

// -------------------------------------------------------------------
// bzip2: move-to-front coding with a byte histogram.
// -------------------------------------------------------------------

std::string
bzipSource()
{
    const Addr text = dataBase;              // 1 MB input
    const Addr mtf = dataBase + 0x200000;    // 256-entry MTF list
    const Addr hist = dataBase + 0x201000;   // 256-entry histogram
    return csprintf(R"(
        li   r1, %llu          # text
        li   r2, %llu          # mtf list
        li   r3, %llu          # histogram
        li   r4, 9000          # bytes to code
        addi r5, r0, 0         # offset
    loop:
        add  r6, r1, r5
        lbu  r7, 0(r6)         # input byte
        # find rank of byte in MTF list
        addi r8, r0, 0         # rank
    scan:
        add  r9, r2, r8
        lbu  r10, 0(r9)
        beq  r10, r7, foundit
        addi r8, r8, 1
        b    scan
    foundit:
        # shift list entries [0, rank) up by one, put byte at front
        mv   r11, r8
    shift:
        beq  r11, r0, placed
        subi r12, r11, 1
        add  r13, r2, r12
        lbu  r14, 0(r13)
        add  r13, r2, r11
        sb   r14, 0(r13)
        mv   r11, r12
        b    shift
    placed:
        sb   r7, 0(r2)
        # histogram of emitted ranks
        slli r9, r8, 3
        add  r9, r3, r9
        ld   r10, 0(r9)
        addi r10, r10, 1
        sd   r10, 0(r9)
        addi r5, r5, 1
        subi r4, r4, 1
        bne  r4, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(text),
                    static_cast<unsigned long long>(mtf),
                    static_cast<unsigned long long>(hist));
}

void
bzipData(MainMemory &mem, uint64_t seed, bool graphic)
{
    Rng rng(seed ^ 0x627a32);
    const size_t bytes = 1 << 20;
    for (size_t i = 0; i < bytes; ++i) {
        uint8_t b;
        if (graphic) {
            // Heavily skewed distribution: short MTF scans.
            b = static_cast<uint8_t>(rng.nextBool(0.8)
                                         ? rng.nextBounded(4)
                                         : rng.nextBounded(32));
        } else {
            b = static_cast<uint8_t>(rng.nextBounded(64));
        }
        mem.write8(dataBase + i, b);
    }
    // MTF list initialized to the identity permutation.
    for (int v = 0; v < 256; ++v)
        mem.write8(dataBase + 0x200000 + static_cast<Addr>(v),
                   static_cast<uint8_t>(v));
}

// -------------------------------------------------------------------
// twolf: simulated-annealing cell swaps over a large placement array.
// -------------------------------------------------------------------

std::string
twolfSource()
{
    const Addr cells = dataBase; // 96K cells x 64 B = 6 MB
    return csprintf(R"(
        li   r1, %llu          # cell array
        li   r2, 14000         # proposed moves
        li   r3, 88172645463325252
        addi r4, r0, 0         # accepted moves
        li   r15, 98303
    loop:
        # two pseudo-random cells
        slli r5, r3, 13
        xor  r3, r3, r5
        srli r5, r3, 7
        xor  r3, r3, r5
        srli r6, r3, 3
        rem  r6, r6, r15
        srli r7, r3, 21
        rem  r7, r7, r15
        slli r6, r6, 6
        slli r7, r7, 6
        add  r6, r1, r6
        add  r7, r1, r7
        ld   r8, 0(r6)         # cell A x-coordinate
        ld   r9, 0(r7)         # cell B x-coordinate
        ld   r10, 8(r6)        # cell A wire count (small int)
        ld   r11, 8(r7)
        sub  r12, r8, r9
        mul  r13, r12, r10
        mul  r14, r12, r11
        sub  r13, r14, r13     # cost delta
        blt  r13, r0, reject
        sd   r9, 0(r6)         # accept: swap positions
        sd   r8, 0(r7)
        addi r4, r4, 1
    reject:
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )",
                    static_cast<unsigned long long>(cells));
}

void
twolfData(MainMemory &mem, uint64_t seed)
{
    Rng rng(seed ^ 0x74776f);
    const size_t cells = 96 * 1024;
    for (size_t i = 0; i < cells; ++i) {
        Addr a = dataBase + i * 64;
        mem.write64(a, rng.nextBounded(4096));     // x coordinate
        mem.write64(a + 8, rng.nextBool(0.93) ? 2 : 3); // wire count
    }
}

} // namespace

void
registerIntWorkloadsImpl()
{
    static std::vector<const Workload *> keep;

    reg(keep, "gzip.g", "LZ77 hash-chain matcher, graphic input",
        gzipSource(),
        [](MainMemory &m, uint64_t s) { gzipData(m, s, true); });
    reg(keep, "gzip.r", "LZ77 hash-chain matcher, source input",
        gzipSource(),
        [](MainMemory &m, uint64_t s) { gzipData(m, s, false); });
    reg(keep, "vpr.r", "maze-router walk over an 8MB cost grid",
        vprSource(), vprData);
    reg(keep, "gcc.1", "branchy IR interpreter, mix 1", gccSource(),
        [](MainMemory &m, uint64_t s) { gccData(m, s, 0); });
    reg(keep, "gcc.2", "branchy IR interpreter, mix 2", gccSource(),
        [](MainMemory &m, uint64_t s) { gccData(m, s, 1); });
    reg(keep, "gcc.e", "branchy IR interpreter, expr-heavy mix",
        gccSource(),
        [](MainMemory &m, uint64_t s) { gccData(m, s, 2); });
    reg(keep, "gcc.i", "branchy IR interpreter, integrate mix",
        gccSource(),
        [](MainMemory &m, uint64_t s) { gccData(m, s, 3); });
    reg(keep, "mcf", "16MB pointer chase, stride-heavy successors",
        mcfSource(30000), mcfData);
    // Long-run variant for fast-forward/sampling experiments (~13M
    // dynamic insts); benches exclude ".long" names from category sets
    // so the paper figures and their expected scoreboards are
    // unaffected.
    reg(keep, "mcf.long", "mcf pointer chase, ~13M-inst long-run variant",
        mcfSource(1600000), mcfData);
    reg(keep, "crafty", "bitboard popcount/attack evaluation",
        craftySource(), craftyData);
    reg(keep, "parser", "dictionary hash-bucket chains", parserSource(),
        parserData);
    reg(keep, "perlbmk", "string hashing + symbol table + copies",
        perlSource(), perlData);
    reg(keep, "eon.r", "ray/grid stepping, small footprint",
        eonSource(), eonData);
    reg(keep, "gap", "big-integer addition with carries", gapSource(),
        gapData);
    reg(keep, "vortex", "object DB record traversal over 12MB",
        vortexSource(), vortexData);
    reg(keep, "bzip.g", "move-to-front coder, skewed bytes",
        bzipSource(),
        [](MainMemory &m, uint64_t s) { bzipData(m, s, true); });
    reg(keep, "bzip.p", "move-to-front coder, program-like bytes",
        bzipSource(),
        [](MainMemory &m, uint64_t s) { bzipData(m, s, false); });
    reg(keep, "twolf", "annealing swaps over a 6MB placement",
        twolfSource(), twolfData);
}

} // namespace vpsim
