#include "sim/run_ledger.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"

namespace vpsim
{

const char *
toString(LedgerEventKind k)
{
    switch (k) {
      case LedgerEventKind::RunStart: return "run-start";
      case LedgerEventKind::Submit: return "submit";
      case LedgerEventKind::CacheHit: return "cache-hit";
      case LedgerEventKind::Start: return "start";
      case LedgerEventKind::Finish: return "finish";
      case LedgerEventKind::Stuck: return "stuck";
    }
    return "?";
}

bool
ledgerEventKind(const std::string &s, LedgerEventKind &out)
{
    for (LedgerEventKind k :
         {LedgerEventKind::RunStart, LedgerEventKind::Submit,
          LedgerEventKind::CacheHit, LedgerEventKind::Start,
          LedgerEventKind::Finish, LedgerEventKind::Stuck}) {
        if (s == toString(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::string
ledgerEventJson(const LedgerEvent &e)
{
    std::ostringstream os;
    os << "{\"ev\": ";
    jsonQuote(os, toString(e.kind));
    os << ", \"ms\": ";
    jsonNumber(os, e.unixMs);
    auto field = [&os](const char *name, const std::string &v) {
        if (v.empty())
            return;
        os << ", \"" << name << "\": ";
        jsonQuote(os, v);
    };
    field("job", e.job);
    field("workload", e.workload);
    field("figure", e.figure);
    field("worker", e.worker);
    field("outcome", e.outcome);
    if (e.kind == LedgerEventKind::Finish ||
        e.kind == LedgerEventKind::Stuck) {
        os << ", \"wallSeconds\": ";
        jsonNumber(os, roundSig(e.wallSeconds, 6));
    }
    if (e.insts != 0)
        os << ", \"insts\": " << e.insts;
    if (e.cycles != 0)
        os << ", \"cycles\": " << e.cycles;
    os << "}";
    return os.str();
}

// ---------------------------------------------------------------------
// RunLedger (writer)
// ---------------------------------------------------------------------

RunLedger::~RunLedger()
{
    if (_f != nullptr)
        std::fclose(_f);
}

RunLedger &
RunLedger::global()
{
    // Intentionally immortal (workers may record during static
    // vplint:allow(global-state) teardown); all access is mutexed.
    static RunLedger *l = new RunLedger;
    static std::once_flag once;
    std::call_once(once, [] {
        const char *path = std::getenv("MTVP_LEDGER");
        if (path != nullptr && *path != '\0')
            l->open(path);
        const char *figure = std::getenv("MTVP_LEDGER_FIGURE");
        if (figure != nullptr)
            l->setFigure(figure);
    });
    return *l;
}

void
RunLedger::open(const std::string &path)
{
    std::lock_guard<std::mutex> lk(_m);
    if (_f != nullptr) {
        std::fclose(_f);
        _f = nullptr;
    }
    _path = path;
    if (_path.empty())
        return;
    // Append mode: every figure process sharing this ledger lands whole
    // lines via O_APPEND; the kernel serializes the writes.
    _f = std::fopen(_path.c_str(), "a");
    if (_f == nullptr) {
        warn("run ledger: cannot open '%s' for append", _path.c_str());
        _path.clear();
    }
}

bool
RunLedger::enabled() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _f != nullptr;
}

void
RunLedger::setFigure(const std::string &figure)
{
    std::lock_guard<std::mutex> lk(_m);
    _figure = figure;
}

std::string
RunLedger::figure() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _figure;
}

void
RunLedger::record(LedgerEvent e)
{
    std::lock_guard<std::mutex> lk(_m);
    if (_f == nullptr)
        return;
    if (e.figure.empty())
        e.figure = _figure;
    if (e.unixMs == 0.0) {
        e.unixMs = static_cast<double>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
    }
    std::string line = ledgerEventJson(e);
    line += '\n';
    // One fwrite per line (not per field): appends from concurrent
    // processes interleave at line granularity.
    std::fwrite(line.data(), 1, line.size(), _f);
    std::fflush(_f);
}

// ---------------------------------------------------------------------
// Reader / replay
// ---------------------------------------------------------------------

bool
loadLedger(const std::string &path, std::vector<LedgerEvent> &out,
           std::vector<std::string> *warnings)
{
    std::ifstream is(path);
    if (!is)
        return false;
    auto note = [&](const std::string &msg) {
        if (warnings != nullptr)
            warnings->push_back(msg);
    };
    std::string line;
    size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        json::Value v;
        std::string err;
        if (!json::parse(line, v, &err) || !v.isObject()) {
            // A torn final line of a crashed writer parses as garbage;
            // mid-file corruption is equally survivable.
            note(path + ":" + std::to_string(lineNo) +
                 ": skipping unparseable ledger line");
            continue;
        }
        LedgerEvent e;
        if (!ledgerEventKind(v.stringOr("ev", ""), e.kind)) {
            note(path + ":" + std::to_string(lineNo) +
                 ": skipping ledger line with unknown event '" +
                 v.stringOr("ev", "") + "'");
            continue;
        }
        e.unixMs = v.numberOr("ms", 0.0);
        e.job = v.stringOr("job", "");
        e.workload = v.stringOr("workload", "");
        e.figure = v.stringOr("figure", "");
        e.worker = v.stringOr("worker", "");
        e.outcome = v.stringOr("outcome", "");
        e.wallSeconds = v.numberOr("wallSeconds", 0.0);
        e.insts = static_cast<uint64_t>(v.numberOr("insts", 0.0));
        e.cycles = static_cast<uint64_t>(v.numberOr("cycles", 0.0));
        out.push_back(std::move(e));
    }
    return true;
}

const char *
toString(LedgerJobState::State s)
{
    switch (s) {
      case LedgerJobState::State::Queued: return "queued";
      case LedgerJobState::State::Running: return "running";
      case LedgerJobState::State::Finished: return "finished";
      case LedgerJobState::State::CacheHit: return "cache-hit";
      case LedgerJobState::State::Failed: return "failed";
    }
    return "?";
}

void
LedgerState::apply(const LedgerEvent &e)
{
    if (e.unixMs != 0.0) {
        if (firstMs == 0.0 || e.unixMs < firstMs)
            firstMs = e.unixMs;
        if (e.unixMs > lastMs)
            lastMs = e.unixMs;
    }
    if (e.kind == LedgerEventKind::RunStart || e.job.empty())
        return;

    LedgerJobState &j =
        jobs[e.figure.empty() ? e.job : e.figure + "/" + e.job];
    j.job = e.job;
    if (!e.workload.empty())
        j.workload = e.workload;
    if (!e.figure.empty())
        j.figure = e.figure;
    switch (e.kind) {
      case LedgerEventKind::Submit:
        ++submitted;
        j.submitMs = e.unixMs;
        break;
      case LedgerEventKind::CacheHit:
        // No ++submitted: the engine journals Submit first and then
        // CacheHit for the same job; counting both would double-count.
        ++cacheHits;
        j.state = LedgerJobState::State::CacheHit;
        j.submitMs = j.endMs = e.unixMs;
        break;
      case LedgerEventKind::Start:
        ++started;
        j.state = LedgerJobState::State::Running;
        j.worker = e.worker;
        j.startMs = e.unixMs;
        break;
      case LedgerEventKind::Finish:
        ++finished;
        j.state = e.outcome == "ok" ? LedgerJobState::State::Finished
                                    : LedgerJobState::State::Failed;
        if (j.state == LedgerJobState::State::Failed)
            ++failed;
        if (!e.worker.empty())
            j.worker = e.worker;
        j.outcome = e.outcome;
        j.wallSeconds = e.wallSeconds;
        j.insts = e.insts;
        j.cycles = e.cycles;
        j.endMs = e.unixMs;
        totalInsts += e.insts;
        totalBusySeconds += e.wallSeconds;
        break;
      case LedgerEventKind::Stuck:
        ++stuckFlags;
        j.stuckFlagged = true;
        break;
      case LedgerEventKind::RunStart:
        break;
    }
}

uint64_t
LedgerState::queued() const
{
    uint64_t n = 0;
    for (const auto &[key, j] : jobs)
        n += j.state == LedgerJobState::State::Queued ? 1 : 0;
    return n;
}

uint64_t
LedgerState::running() const
{
    uint64_t n = 0;
    for (const auto &[key, j] : jobs)
        n += j.state == LedgerJobState::State::Running ? 1 : 0;
    return n;
}

uint64_t
LedgerState::done() const
{
    uint64_t n = 0;
    for (const auto &[key, j] : jobs) {
        switch (j.state) {
          case LedgerJobState::State::Finished:
          case LedgerJobState::State::CacheHit:
          case LedgerJobState::State::Failed:
            ++n;
            break;
          case LedgerJobState::State::Queued:
          case LedgerJobState::State::Running:
            break;
        }
    }
    return n;
}

LedgerState
replayLedger(const std::vector<LedgerEvent> &events)
{
    LedgerState st;
    for (const LedgerEvent &e : events)
        st.apply(e);
    return st;
}

namespace
{

/** Per-figure rollup used by the report and the progress renderer. */
struct FigureRoll
{
    uint64_t queued = 0, running = 0, finished = 0, cacheHits = 0,
             failed = 0, stuck = 0;
    uint64_t insts = 0;
    double busySeconds = 0.0;

    uint64_t total() const
    {
        return queued + running + finished + cacheHits + failed;
    }
};

std::map<std::string, FigureRoll>
rollupByFigure(const LedgerState &st)
{
    std::map<std::string, FigureRoll> by;
    for (const auto &[key, j] : st.jobs) {
        FigureRoll &r = by[j.figure.empty() ? "(none)" : j.figure];
        switch (j.state) {
          case LedgerJobState::State::Queued: ++r.queued; break;
          case LedgerJobState::State::Running: ++r.running; break;
          case LedgerJobState::State::Finished: ++r.finished; break;
          case LedgerJobState::State::CacheHit: ++r.cacheHits; break;
          case LedgerJobState::State::Failed: ++r.failed; break;
        }
        r.stuck += j.stuckFlagged ? 1 : 0;
        r.insts += j.insts;
        r.busySeconds += j.wallSeconds;
    }
    return by;
}

/** Latency percentile over finished jobs (exact, report-side). */
double
latencyPercentile(const LedgerState &st, double q)
{
    std::vector<double> lat;
    for (const auto &[key, j] : st.jobs) {
        if (j.state == LedgerJobState::State::Finished)
            lat.push_back(j.wallSeconds);
    }
    if (lat.empty())
        return 0.0;
    std::sort(lat.begin(), lat.end());
    size_t i = static_cast<size_t>(q * static_cast<double>(lat.size()));
    if (i >= lat.size())
        i = lat.size() - 1;
    return lat[i];
}

} // namespace

void
writeLedgerReport(std::ostream &os, const LedgerState &st)
{
    os << "run ledger: " << st.jobs.size() << " jobs ("
       << st.submitted << " submitted, " << st.cacheHits
       << " cache hits, " << st.finished << " finished, " << st.failed
       << " failed, " << st.queued() << " still queued, "
       << st.running() << " still running";
    if (st.stuckFlags != 0)
        os << ", " << st.stuckFlags << " watchdog flags";
    os << ")\n";
    if (st.lastMs > st.firstMs) {
        double span = (st.lastMs - st.firstMs) / 1000.0;
        os << "  span " << roundSig(span, 4) << "s, busy "
           << roundSig(st.totalBusySeconds, 4) << "s, "
           << st.totalInsts << " insts";
        if (span > 0.0) {
            os << " (" << roundSig(static_cast<double>(st.totalInsts) /
                                       span, 4)
               << " insts/s aggregate)";
        }
        os << "\n";
    }
    if (st.finished > 0) {
        os << "  job latency p50/p95/max "
           << roundSig(latencyPercentile(st, 0.50), 4) << "s / "
           << roundSig(latencyPercentile(st, 0.95), 4) << "s / "
           << roundSig(latencyPercentile(st, 1.0), 4) << "s\n";
    }

    os << "  figure                      jobs   done    hit    run  "
          "queue   fail  stuck\n";
    for (const auto &[figure, r] : rollupByFigure(st)) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  %-26s %5llu  %5llu  %5llu  %5llu  %5llu  "
                      "%5llu  %5llu\n",
                      figure.c_str(),
                      static_cast<unsigned long long>(r.total()),
                      static_cast<unsigned long long>(r.finished),
                      static_cast<unsigned long long>(r.cacheHits),
                      static_cast<unsigned long long>(r.running),
                      static_cast<unsigned long long>(r.queued),
                      static_cast<unsigned long long>(r.failed),
                      static_cast<unsigned long long>(r.stuck));
        os << line;
    }
}

std::string
ledgerJobsJson(const LedgerState &st)
{
    std::ostringstream os;
    os << "{\n  \"submitted\": " << st.submitted
       << ",\n  \"finished\": " << st.finished
       << ",\n  \"cacheHits\": " << st.cacheHits
       << ",\n  \"failed\": " << st.failed
       << ",\n  \"queued\": " << st.queued()
       << ",\n  \"running\": " << st.running()
       << ",\n  \"stuckFlags\": " << st.stuckFlags
       << ",\n  \"totalInsts\": " << st.totalInsts
       << ",\n  \"totalBusySeconds\": ";
    jsonNumber(os, roundSig(st.totalBusySeconds, 6));
    os << ",\n  \"jobs\": [";
    bool first = true;
    for (const auto &[key, j] : st.jobs) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"job\": ";
        jsonQuote(os, j.job);
        os << ", \"state\": ";
        jsonQuote(os, toString(j.state));
        os << ", \"workload\": ";
        jsonQuote(os, j.workload);
        os << ", \"figure\": ";
        jsonQuote(os, j.figure);
        os << ", \"worker\": ";
        jsonQuote(os, j.worker);
        os << ", \"stuck\": " << (j.stuckFlagged ? "true" : "false");
        os << ", \"wallSeconds\": ";
        jsonNumber(os, roundSig(j.wallSeconds, 6));
        os << ", \"insts\": " << j.insts;
        os << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

// ---------------------------------------------------------------------
// ProgressModel
// ---------------------------------------------------------------------

void
ProgressModel::apply(const LedgerEvent &e)
{
    _st.apply(e);
    if (!e.worker.empty())
        ++_workersSeen[e.worker];
    if (e.kind == LedgerEventKind::Finish && e.wallSeconds > 0.0) {
        // EWMA over per-job latency: recent jobs dominate the ETA, so
        // a sweep whose points grow (or a warm cache) tracks quickly.
        constexpr double alpha = 0.25;
        _ewmaJobSeconds = _ewmaValid
                              ? alpha * e.wallSeconds +
                                    (1.0 - alpha) * _ewmaJobSeconds
                              : e.wallSeconds;
        _ewmaValid = true;
    }
}

std::string
ProgressModel::renderLine(double nowMs) const
{
    // Derive done/total from the job table (not the raw event
    // counters) so the line stays consistent even on a ledger with
    // replayed or duplicated event lines.
    const uint64_t done = _st.done();
    const uint64_t pendingJobs = _st.queued() + _st.running();
    std::ostringstream os;
    os << "[sweep] " << done << "/" << _st.jobs.size() << " jobs";
    if (_st.cacheHits > 0)
        os << " (" << _st.cacheHits << " cached)";
    if (_st.running() > 0)
        os << ", " << _st.running() << " running";
    if (_st.failed > 0)
        os << ", " << _st.failed << " FAILED";
    if (_st.stuckFlags > 0)
        os << ", " << _st.stuckFlags << " flagged";

    double elapsed = _st.firstMs > 0.0 && nowMs > _st.firstMs
                         ? (nowMs - _st.firstMs) / 1000.0
                         : 0.0;
    if (elapsed > 0.0 && _st.totalInsts > 0) {
        os << ", " << roundSig(static_cast<double>(_st.totalInsts) /
                                   elapsed / 1.0e6, 3)
           << "M insts/s";
    }
    if (pendingJobs > 0 && _ewmaValid) {
        size_t workers = _workersSeen.empty() ? 1 : _workersSeen.size();
        double eta = _ewmaJobSeconds *
                     static_cast<double>(pendingJobs) /
                     static_cast<double>(workers);
        os << ", ETA " << roundSig(eta, 3) << "s";
    }
    return os.str();
}

std::string
ProgressModel::renderFigures() const
{
    std::ostringstream os;
    for (const auto &[figure, r] : rollupByFigure(_st)) {
        os << "  " << figure << ": " << r.finished + r.cacheHits << "/"
           << r.total() << " done";
        if (r.cacheHits > 0)
            os << " (" << r.cacheHits << " cached)";
        if (r.running > 0)
            os << ", " << r.running << " running";
        if (r.queued > 0)
            os << ", " << r.queued << " queued";
        if (r.failed > 0)
            os << ", " << r.failed << " FAILED";
        if (r.stuck > 0)
            os << ", " << r.stuck << " flagged";
        os << "\n";
    }
    return os.str();
}

void
ProgressModel::exportMetrics() const
{
    MetricsRegistry &mr = MetricsRegistry::instance();
    auto stateGauge = [&mr](const char *state) -> Gauge & {
        return mr.gauge("vpsim_sweep_jobs",
                        "Ledger-derived job count by final state",
                        {{"state", state}});
    };
    stateGauge("queued").set(static_cast<int64_t>(_st.queued()));
    stateGauge("running").set(static_cast<int64_t>(_st.running()));
    stateGauge("finished").set(static_cast<int64_t>(_st.finished));
    stateGauge("cache_hit").set(static_cast<int64_t>(_st.cacheHits));
    stateGauge("failed").set(static_cast<int64_t>(_st.failed));
    mr.gauge("vpsim_sweep_stuck_flags",
             "Watchdog flags observed in the ledger")
        .set(static_cast<int64_t>(_st.stuckFlags));

    Counter &insts = mr.counter("vpsim_sweep_insts_total",
                                "Simulated instructions finished jobs "
                                "reported via the ledger");
    uint64_t cur = insts.value();
    if (_st.totalInsts > cur)
        insts.inc(_st.totalInsts - cur);
}

} // namespace vpsim
