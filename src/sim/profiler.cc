#include "sim/profiler.hh"

#include <atomic>
#include <sstream>

#include "sim/stats.hh"

namespace vpsim
{

namespace
{

struct AtomicEntry
{
    std::atomic<uint64_t> nanos{0};
    std::atomic<uint64_t> calls{0};
};

// vplint:allow(global-state) every element is std::atomic
std::array<AtomicEntry, numProfSections> globalEntries;
std::atomic<bool> globalAny{false};

} // namespace

const char *
profSectionName(ProfSection s)
{
    switch (s) {
      case ProfSection::Fetch: return "fetch";
      case ProfSection::Dispatch: return "dispatch";
      case ProfSection::Issue: return "issue";
      case ProfSection::Commit: return "commit";
      case ProfSection::Resolve: return "resolve";
      case ProfSection::Drain: return "drain";
      case ProfSection::CacheData: return "cacheData";
      case ProfSection::CacheInst: return "cacheInst";
      case ProfSection::VpredPredict: return "vpredPredict";
      case ProfSection::VpredTrain: return "vpredTrain";
      case ProfSection::Wakeup: return "wakeup";
      case ProfSection::TimeSkip: return "timeSkip";
      case ProfSection::Warmup: return "warmup";
      case ProfSection::Checkpoint: return "checkpoint";
      case ProfSection::Sampling: return "sampling";
      case ProfSection::NumSections: break;
    }
    return "?";
}

HostProfiler::~HostProfiler()
{
    if (!_enabled)
        return;
    bool contributed = false;
    for (unsigned i = 0; i < numProfSections; ++i) {
        const ProfEntry &e = _entries[i];
        if (e.calls == 0)
            continue;
        globalEntries[i].nanos.fetch_add(e.nanos,
                                         std::memory_order_relaxed);
        globalEntries[i].calls.fetch_add(e.calls,
                                         std::memory_order_relaxed);
        contributed = true;
    }
    if (contributed)
        globalAny.store(true, std::memory_order_relaxed);
}

uint64_t
HostProfiler::totalStageNanos() const
{
    // The six pipeline-stage sections partition tick(); the cache and
    // predictor sections are nested inside them.
    uint64_t total = 0;
    for (ProfSection s : {ProfSection::Fetch, ProfSection::Dispatch,
                          ProfSection::Issue, ProfSection::Commit,
                          ProfSection::Resolve, ProfSection::Drain}) {
        total += entry(s).nanos;
    }
    return total;
}

namespace
{

void
printTable(std::ostream &os,
           const std::array<ProfEntry, numProfSections> &entries)
{
    os << "host-time profile (stage sections partition tick; cache/"
          "predictor sections nest inside them)\n";
    char line[128];
    std::snprintf(line, sizeof(line), "%-14s %12s %12s %10s\n",
                  "section", "ms", "calls", "ns/call");
    os << line;
    for (unsigned i = 0; i < numProfSections; ++i) {
        const ProfEntry &e = entries[i];
        double perCall =
            e.calls != 0
                ? static_cast<double>(e.nanos) /
                      static_cast<double>(e.calls)
                : 0.0;
        std::snprintf(line, sizeof(line), "%-14s %12.3f %12llu %10.1f\n",
                      profSectionName(static_cast<ProfSection>(i)),
                      static_cast<double>(e.nanos) / 1e6,
                      static_cast<unsigned long long>(e.calls), perCall);
        os << line;
    }
}

void
dumpEntriesJson(std::ostream &os,
                const std::array<ProfEntry, numProfSections> &entries)
{
    os << '{';
    for (unsigned i = 0; i < numProfSections; ++i) {
        if (i > 0)
            os << ", ";
        jsonQuote(os, profSectionName(static_cast<ProfSection>(i)));
        os << ": {\"ms\": ";
        jsonNumber(os, roundSig(static_cast<double>(entries[i].nanos) /
                                    1e6,
                                6));
        os << ", \"calls\": " << entries[i].calls << '}';
    }
    os << '}';
}

} // namespace

void
HostProfiler::printReport(std::ostream &os) const
{
    printTable(os, _entries);
}

void
HostProfiler::dumpJson(std::ostream &os) const
{
    dumpEntriesJson(os, _entries);
}

std::array<ProfEntry, numProfSections>
GlobalProfile::snapshot()
{
    std::array<ProfEntry, numProfSections> out{};
    for (unsigned i = 0; i < numProfSections; ++i) {
        out[i].nanos = globalEntries[i].nanos.load(
            std::memory_order_relaxed);
        out[i].calls = globalEntries[i].calls.load(
            std::memory_order_relaxed);
    }
    return out;
}

bool
GlobalProfile::any()
{
    return globalAny.load(std::memory_order_relaxed);
}

std::string
GlobalProfile::snapshotJson()
{
    std::ostringstream os;
    dumpEntriesJson(os, snapshot());
    return os.str();
}

void
GlobalProfile::reset()
{
    for (AtomicEntry &e : globalEntries) {
        e.nanos.store(0, std::memory_order_relaxed);
        e.calls.store(0, std::memory_order_relaxed);
    }
    globalAny.store(false, std::memory_order_relaxed);
}

} // namespace vpsim
