#include "sim/metrics_http.hh"

#include <atomic>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define VPSIM_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define VPSIM_HAVE_SOCKETS 0
#endif

#include "sim/logging.hh"

namespace vpsim
{

#if VPSIM_HAVE_SOCKETS

namespace
{

void
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
        if (n <= 0)
            return;
        off += static_cast<size_t>(n);
    }
}

std::string
httpResponse(int code, const char *status, const std::string &contentType,
             const std::string &body)
{
    std::string out = "HTTP/1.1 " + std::to_string(code) + " " + status +
                      "\r\nContent-Type: " + contentType +
                      "\r\nContent-Length: " +
                      std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

} // namespace

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

bool
MetricsHttpServer::start(int port, Handler metricsBody, Handler jobsBody)
{
    if (_fd >= 0)
        stop();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("metrics endpoint: socket() failed: %s",
             std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        warn("metrics endpoint: cannot bind 127.0.0.1:%d: %s", port,
             std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::listen(fd, 4) != 0) {
        warn("metrics endpoint: listen() failed: %s",
             std::strerror(errno));
        ::close(fd);
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
    _port = ntohs(addr.sin_port);
    _fd = fd;
    _metricsBody = std::move(metricsBody);
    _jobsBody = std::move(jobsBody);
    _thread = std::thread([this] { serveLoop(); });
    return true;
}

void
MetricsHttpServer::stop()
{
    if (_fd < 0)
        return;
    int fd = _fd;
    _fd = -1; // serveLoop observes this and exits after its poll tick.
    ::shutdown(fd, SHUT_RDWR);
    if (_thread.joinable())
        _thread.join();
    ::close(fd);
}

void
MetricsHttpServer::serveLoop()
{
    int fd = _fd;
    while (_fd == fd) {
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int r = ::poll(&pfd, 1, 200 /* ms */);
        if (_fd != fd)
            break;
        if (r <= 0 || (pfd.revents & POLLIN) == 0)
            continue;
        int conn = ::accept(fd, nullptr, nullptr);
        if (conn < 0)
            continue;

        char buf[2048];
        ssize_t n = ::recv(conn, buf, sizeof(buf) - 1, 0);
        if (n <= 0) {
            ::close(conn);
            continue;
        }
        buf[n] = '\0';
        std::string req(buf);
        std::string line = req.substr(0, req.find('\r'));

        std::string method, target;
        {
            size_t sp1 = line.find(' ');
            size_t sp2 =
                sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
            if (sp1 != std::string::npos && sp2 != std::string::npos) {
                method = line.substr(0, sp1);
                target = line.substr(sp1 + 1, sp2 - sp1 - 1);
            }
        }
        size_t q = target.find('?');
        if (q != std::string::npos)
            target = target.substr(0, q);

        std::string resp;
        if (method != "GET") {
            resp = httpResponse(405, "Method Not Allowed", "text/plain",
                                "GET only\n");
        } else if (target == "/metrics") {
            resp = httpResponse(
                200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                _metricsBody ? _metricsBody() : "");
        } else if (target == "/jobs") {
            resp = httpResponse(200, "OK", "application/json",
                                _jobsBody ? _jobsBody() : "{}\n");
        } else if (target == "/") {
            resp = httpResponse(
                200, "OK", "text/plain",
                "vpsim experiment engine: /metrics (Prometheus text), "
                "/jobs (JSON job table)\n");
        } else {
            resp = httpResponse(404, "Not Found", "text/plain",
                                "routes: /metrics /jobs\n");
        }
        sendAll(conn, resp);
        ::close(conn);
    }
}

#else // !VPSIM_HAVE_SOCKETS

MetricsHttpServer::~MetricsHttpServer() {}

bool
MetricsHttpServer::start(int, Handler, Handler)
{
    warn("metrics endpoint: no socket support on this platform");
    return false;
}

void
MetricsHttpServer::stop()
{
}

void
MetricsHttpServer::serveLoop()
{
}

#endif // VPSIM_HAVE_SOCKETS

} // namespace vpsim
