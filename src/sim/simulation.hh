/**
 * @file
 * Top-level simulation driver: builds a workload into fresh memory,
 * runs a Cpu over it, and returns the headline numbers plus named stats.
 * This is the entry point examples, tests, and benches use.
 */

#ifndef VPSIM_SIM_SIMULATION_HH
#define VPSIM_SIM_SIMULATION_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace vpsim
{

class Workload;

/** Headline results of one simulation run. */
struct SimResult
{
    std::string workload;
    Cycle cycles = 0;
    uint64_t usefulInsts = 0;
    double usefulIpc = 0.0;
    bool halted = false; ///< The program's HALT committed usefully.
    /** Every named statistic from the run (see Cpu's StatGroup). */
    std::map<std::string, double> stats;

    double stat(const std::string &name) const;
};

/** Run @p workload under @p cfg; fatal() if the name is unknown. */
SimResult runWorkload(const SimConfig &cfg, const std::string &workload);

/** Run an already-resolved workload. */
SimResult runWorkload(const SimConfig &cfg, const Workload &workload);

/**
 * Percent speedup of useful IPC: 100 * (test/base - 1).
 */
double percentSpeedup(const SimResult &base, const SimResult &test);

/** Geometric-mean percent speedup over paired runs. */
double geomeanSpeedup(const std::vector<double> &percentSpeedups);

} // namespace vpsim

#endif // VPSIM_SIM_SIMULATION_HH
