#include "sim/config.hh"

#include <sstream>
#include <tuple>

#include "sim/logging.hh"

namespace vpsim
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

VpMode
parseVpMode(const std::string &v)
{
    if (v == "none") return VpMode::None;
    if (v == "stvp") return VpMode::Stvp;
    if (v == "mtvp") return VpMode::Mtvp;
    if (v == "spawnonly") return VpMode::SpawnOnly;
    fatal("unknown vpMode '%s'", v.c_str());
}

PredictorKind
parsePredictor(const std::string &v)
{
    if (v == "oracle") return PredictorKind::Oracle;
    if (v == "wf") return PredictorKind::WangFranklin;
    if (v == "dfcm") return PredictorKind::Dfcm;
    if (v == "stride") return PredictorKind::Stride;
    if (v == "lastvalue") return PredictorKind::LastValue;
    fatal("unknown predictor '%s'", v.c_str());
}

SelectorKind
parseSelector(const std::string &v)
{
    if (v == "ilp") return SelectorKind::IlpPred;
    if (v == "cacheoracle") return SelectorKind::CacheOracle;
    if (v == "always") return SelectorKind::Always;
    fatal("unknown selector '%s'", v.c_str());
}

FetchPolicy
parseFetchPolicy(const std::string &v)
{
    if (v == "sfp") return FetchPolicy::SingleFetchPath;
    if (v == "nostall") return FetchPolicy::NoStall;
    fatal("unknown fetchPolicy '%s'", v.c_str());
}

uint64_t
parseU64(const std::string &key, const std::string &v)
{
    try {
        size_t pos = 0;
        uint64_t r = std::stoull(v, &pos, 0);
        if (pos != v.size())
            fatal("bad numeric value '%s' for %s", v.c_str(), key.c_str());
        return r;
    } catch (const std::exception &) {
        fatal("bad numeric value '%s' for %s", v.c_str(), key.c_str());
    }
}

} // namespace

void
SimConfig::set(const std::string &key, const std::string &value)
{
    auto num = [&] { return parseU64(key, value); };

    if (key == "vpMode") vpMode = parseVpMode(value);
    else if (key == "predictor") predictor = parsePredictor(value);
    else if (key == "selector") selector = parseSelector(value);
    else if (key == "fetchPolicy") fetchPolicy = parseFetchPolicy(value);
    else if (key == "numContexts") numContexts = static_cast<int>(num());
    else if (key == "spawnLatency") spawnLatency = static_cast<int>(num());
    else if (key == "storeBufferSize")
        storeBufferSize = static_cast<int>(num());
    else if (key == "maxValuesPerSpawn")
        maxValuesPerSpawn = static_cast<int>(num());
    else if (key == "confidenceThreshold")
        confidenceThreshold = static_cast<int>(num());
    else if (key == "multiValueThreshold")
        multiValueThreshold = static_cast<int>(num());
    else if (key == "wideWindow") wideWindow = num() != 0;
    else if (key == "prefetchEnabled") prefetchEnabled = num() != 0;
    else if (key == "maxInsts") maxInsts = num();
    else if (key == "maxCycles") maxCycles = num();
    else if (key == "seed") seed = num();
    else if (key == "ffInsts") ffInsts = num();
    else if (key == "sampleIntervals")
        sampleIntervals = static_cast<int>(num());
    else if (key == "sampleIntervalInsts") sampleIntervalInsts = num();
    else if (key == "sampleWarmupInsts") sampleWarmupInsts = num();
    else if (key == "checkpointDir") checkpointDir = value;
    else if (key == "memLatency") memLatency = static_cast<int>(num());
    else if (key == "robSize") robSize = static_cast<int>(num());
    else if (key == "renameRegs") renameRegs = static_cast<int>(num());
    else if (key == "iqSize") iqSize = static_cast<int>(num());
    else if (key == "fqSize") fqSize = static_cast<int>(num());
    else if (key == "mqSize") mqSize = static_cast<int>(num());
    else if (key == "fetchWidth") fetchWidth = static_cast<int>(num());
    else if (key == "issueWidth") issueWidth = static_cast<int>(num());
    else if (key == "frontEndDepth") frontEndDepth = static_cast<int>(num());
    else if (key == "l3Size") l3Size = static_cast<uint32_t>(num());
    else if (key == "dcacheSize") dcacheSize = static_cast<uint32_t>(num());
    else if (key == "traceFlags") traceFlags = value;
    else if (key == "traceStart") traceStart = num();
    else if (key == "traceEnd") traceEnd = num();
    else if (key == "traceFile") traceFile = value;
    else if (key == "pipeView") pipeView = value;
    else if (key == "statsJson") statsJson = value;
    else if (key == "samplePeriod") samplePeriod = num();
    else if (key == "sampleStats") sampleStats = value;
    else if (key == "sampleFile") sampleFile = value;
    else if (key == "cpiStack") cpiStack = value;
    else if (key == "profile") profile = num() != 0;
    else if (key == "perfettoTrace") perfettoTrace = value;
    else if (key == "analytics") analytics = value;
    else if (key == "metricsJson") metricsJson = value;
    else if (key == "timeSkip") timeSkip = num();
    else
        fatal("unknown config key '%s'", key.c_str());
}

std::string
SimConfig::toString() const
{
    std::ostringstream os;
    os << "pipelineDepth=" << pipelineDepth
       << " fetch=" << fetchWidth << "/" << fetchLines << "lines"
       << " issue=" << issueWidth
       << " rob=" << effRobSize()
       << " renameRegs=" << effRenameRegs()
       << " iq/fq/mq=" << effIqSize() << "/" << effFqSize() << "/"
       << effMqSize() << "\n"
       << "caches: I=" << icacheSize / 1024 << "KB/" << icacheAssoc
       << "w/" << icacheLatency << "c"
       << " D=" << dcacheSize / 1024 << "KB/" << dcacheAssoc
       << "w/" << dcacheLatency << "c"
       << " L2=" << l2Size / 1024 << "KB/" << l2Assoc << "w/" << l2Latency
       << "c"
       << " L3=" << l3Size / 1024 << "KB/" << l3Assoc << "w/" << l3Latency
       << "c"
       << " mem=" << memLatency << "c\n"
       << "vp: mode=" << vpsim::toString(vpMode)
       << " predictor=" << vpsim::toString(predictor)
       << " selector=" << vpsim::toString(selector)
       << " fetchPolicy=" << vpsim::toString(fetchPolicy)
       << " contexts=" << numContexts
       << " spawnLatency=" << spawnLatency
       << " storeBuffer=" << storeBufferSize
       << " multiValue=" << maxValuesPerSpawn;
    return os.str();
}

std::string
SimConfig::canonicalKey() const
{
    std::ostringstream os;
    os << "pipelineDepth=" << pipelineDepth
       << ";frontEndDepth=" << frontEndDepth
       << ";fetchWidth=" << fetchWidth
       << ";fetchLines=" << fetchLines
       << ";fetchThreads=" << fetchThreads
       << ";dispatchWidth=" << dispatchWidth
       << ";issueWidth=" << issueWidth
       << ";intIssue=" << intIssue
       << ";fpIssue=" << fpIssue
       << ";memIssue=" << memIssue
       << ";commitWidth=" << commitWidth
       << ";robSize=" << robSize
       << ";renameRegs=" << renameRegs
       << ";iqSize=" << iqSize
       << ";fqSize=" << fqSize
       << ";mqSize=" << mqSize
       << ";bpredMetaEntries=" << bpredMetaEntries
       << ";bpredGshareEntries=" << bpredGshareEntries
       << ";bpredBimodalEntries=" << bpredBimodalEntries
       << ";btbEntries=" << btbEntries
       << ";rasEntries=" << rasEntries
       << ";lineSize=" << lineSize
       << ";icacheSize=" << icacheSize
       << ";icacheAssoc=" << icacheAssoc
       << ";icacheLatency=" << icacheLatency
       << ";dcacheSize=" << dcacheSize
       << ";dcacheAssoc=" << dcacheAssoc
       << ";dcacheLatency=" << dcacheLatency
       << ";l2Size=" << l2Size
       << ";l2Assoc=" << l2Assoc
       << ";l2Latency=" << l2Latency
       << ";l3Size=" << l3Size
       << ";l3Assoc=" << l3Assoc
       << ";l3Latency=" << l3Latency
       << ";memLatency=" << memLatency
       << ";prefetchEnabled=" << prefetchEnabled
       << ";prefetchEntries=" << prefetchEntries
       << ";streamBuffers=" << streamBuffers
       << ";streamBufferDepth=" << streamBufferDepth
       << ";vpMode=" << vpsim::toString(vpMode)
       << ";predictor=" << vpsim::toString(predictor)
       << ";selector=" << vpsim::toString(selector)
       << ";fetchPolicy=" << vpsim::toString(fetchPolicy)
       << ";numContexts=" << numContexts
       << ";spawnLatency=" << spawnLatency
       << ";storeBufferSize=" << storeBufferSize
       << ";maxValuesPerSpawn=" << maxValuesPerSpawn
       << ";confidenceThreshold=" << confidenceThreshold
       << ";confidenceMax=" << confidenceMax
       << ";confidenceUp=" << confidenceUp
       << ";confidenceDown=" << confidenceDown
       << ";multiValueThreshold=" << multiValueThreshold
       << ";wideWindow=" << wideWindow
       << ";maxInsts=" << maxInsts
       << ";maxCycles=" << maxCycles
       << ";seed=" << seed
       << ";ffInsts=" << ffInsts
       << ";sampleIntervals=" << sampleIntervals
       << ";sampleIntervalInsts=" << sampleIntervalInsts
       << ";sampleWarmupInsts=" << sampleWarmupInsts;
    return os.str();
}

std::string
SimConfig::warmupKey() const
{
    // Only fields that shape fast-forward warm state. Pipeline widths,
    // latencies, vpMode/selector/fetchPolicy, numContexts, and the
    // confidence *use* threshold deliberately do not appear: a baseline,
    // STVP, and MTVP sweep over one workload share a single checkpoint.
    std::ostringstream os;
    os << "bpredMetaEntries=" << bpredMetaEntries
       << ";bpredGshareEntries=" << bpredGshareEntries
       << ";bpredBimodalEntries=" << bpredBimodalEntries
       << ";btbEntries=" << btbEntries
       << ";rasEntries=" << rasEntries
       << ";lineSize=" << lineSize
       << ";icacheSize=" << icacheSize
       << ";icacheAssoc=" << icacheAssoc
       << ";dcacheSize=" << dcacheSize
       << ";dcacheAssoc=" << dcacheAssoc
       << ";l2Size=" << l2Size
       << ";l2Assoc=" << l2Assoc
       << ";l3Size=" << l3Size
       << ";l3Assoc=" << l3Assoc
       << ";prefetchEnabled=" << prefetchEnabled
       << ";prefetchEntries=" << prefetchEntries
       << ";streamBuffers=" << streamBuffers
       << ";streamBufferDepth=" << streamBufferDepth
       << ";predictor=" << vpsim::toString(predictor)
       << ";confidenceMax=" << confidenceMax
       << ";confidenceUp=" << confidenceUp
       << ";confidenceDown=" << confidenceDown
       << ";seed=" << seed;
    return os.str();
}

void
SimConfig::validate() const
{
    if (numContexts < 1 || numContexts > 64)
        fatal("numContexts must be in [1,64], got %d", numContexts);
    if (vpMode == VpMode::Mtvp && numContexts < 2)
        fatal("MTVP requires at least 2 contexts");
    if (vpMode == VpMode::SpawnOnly && numContexts < 2)
        fatal("spawn-only mode requires at least 2 contexts");
    if (maxValuesPerSpawn < 1)
        fatal("maxValuesPerSpawn must be >= 1");
    if (maxValuesPerSpawn > 1 && vpMode != VpMode::Mtvp)
        fatal("multiple-value prediction requires vpMode=mtvp");
    if (spawnLatency < 0)
        fatal("spawnLatency must be >= 0");
    if (storeBufferSize < 0)
        fatal("storeBufferSize must be >= 0 (0 means unbounded)");
    if (!isPow2(lineSize))
        fatal("lineSize must be a power of two");
    auto checkCache = [&](uint32_t size, uint32_t assoc, const char *what) {
        if (size % (assoc * lineSize) != 0 ||
            !isPow2(size / (assoc * lineSize))) {
            fatal("%s geometry invalid: size=%u assoc=%u line=%u", what,
                  size, assoc, lineSize);
        }
    };
    checkCache(icacheSize, icacheAssoc, "icache");
    checkCache(dcacheSize, dcacheAssoc, "dcache");
    checkCache(l2Size, l2Assoc, "l2");
    checkCache(l3Size, l3Assoc, "l3");
    if (fetchWidth < 1 || dispatchWidth < 1 || issueWidth < 1)
        fatal("pipeline widths must be >= 1");
    if (traceEnd != 0 && traceEnd <= traceStart)
        fatal("traceEnd (%llu) must be after traceStart (%llu)",
              static_cast<unsigned long long>(traceEnd),
              static_cast<unsigned long long>(traceStart));
    if (!sampleFile.empty() && samplePeriod == 0)
        fatal("sampleFile requires samplePeriod > 0");
    if (ffInsts > 0 && maxInsts == 0)
        fatal("ffInsts requires maxInsts > 0");
    if (ffInsts > 0 && ffInsts >= maxInsts)
        fatal("ffInsts (%llu) must leave detailed instructions below "
              "maxInsts (%llu)",
              static_cast<unsigned long long>(ffInsts),
              static_cast<unsigned long long>(maxInsts));
    if (sampleIntervals < 0)
        fatal("sampleIntervals must be >= 0");
    if (sampleIntervals > 0) {
        if (maxInsts == 0)
            fatal("interval sampling requires maxInsts > 0");
        if (sampleIntervalInsts == 0)
            fatal("sampleIntervalInsts must be >= 1");
        uint64_t region = maxInsts - ffInsts;
        uint64_t stride = region / static_cast<uint64_t>(sampleIntervals);
        if (stride < sampleWarmupInsts + sampleIntervalInsts)
            fatal("sampling schedule does not fit: (maxInsts-ffInsts)/"
                  "sampleIntervals = %llu < warmup %llu + interval %llu",
                  static_cast<unsigned long long>(stride),
                  static_cast<unsigned long long>(sampleWarmupInsts),
                  static_cast<unsigned long long>(sampleIntervalInsts));
    }
}

const char *
toString(VpMode m)
{
    switch (m) {
      case VpMode::None: return "none";
      case VpMode::Stvp: return "stvp";
      case VpMode::Mtvp: return "mtvp";
      case VpMode::SpawnOnly: return "spawnonly";
    }
    return "?";
}

const char *
toString(PredictorKind k)
{
    switch (k) {
      case PredictorKind::Oracle: return "oracle";
      case PredictorKind::WangFranklin: return "wf";
      case PredictorKind::Dfcm: return "dfcm";
      case PredictorKind::Stride: return "stride";
      case PredictorKind::LastValue: return "lastvalue";
    }
    return "?";
}

const char *
toString(SelectorKind k)
{
    switch (k) {
      case SelectorKind::IlpPred: return "ilp";
      case SelectorKind::CacheOracle: return "cacheoracle";
      case SelectorKind::Always: return "always";
    }
    return "?";
}

const char *
toString(FetchPolicy p)
{
    switch (p) {
      case FetchPolicy::SingleFetchPath: return "sfp";
      case FetchPolicy::NoStall: return "nostall";
    }
    return "?";
}

} // namespace vpsim
