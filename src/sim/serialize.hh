/**
 * @file
 * Binary checkpoint serialization primitives. Checkpoints are written
 * little-endian regardless of host byte order so a bench-cache/ can be
 * shared between machines. The writer streams to any std::ostream; the
 * reader works over an in-memory buffer so a truncated or concurrently
 * evicted file is detected before any simulator state is mutated.
 */

#ifndef VPSIM_SIM_SERIALIZE_HH
#define VPSIM_SIM_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>
#include <string_view>

namespace vpsim
{

/** Streams checkpoint fields little-endian onto an ostream. */
class CheckpointWriter
{
  public:
    explicit CheckpointWriter(std::ostream &os) : _os(os) {}

    void
    u8(uint8_t v)
    {
        _os.put(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        _os.write(s.data(), static_cast<std::streamsize>(s.size()));
    }

    /** Raw byte block (caller knows the length on both sides). */
    void
    bytes(const void *data, size_t n)
    {
        _os.write(static_cast<const char *>(data),
                  static_cast<std::streamsize>(n));
    }

    bool good() const { return _os.good(); }

  private:
    std::ostream &_os;
};

/**
 * Reads checkpoint fields back from an in-memory buffer. Running past
 * the end sets a sticky failure flag and returns zeros instead of
 * touching out-of-bounds memory; callers check good() when done.
 */
class CheckpointReader
{
  public:
    explicit CheckpointReader(std::string_view buf) : _buf(buf) {}

    uint8_t
    u8()
    {
        if (_pos + 1 > _buf.size()) {
            _ok = false;
            return 0;
        }
        return static_cast<uint8_t>(_buf[_pos++]);
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(u8()) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(u8()) << (8 * i);
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    bool b() { return u8() != 0; }

    std::string
    str()
    {
        uint64_t n = u64();
        if (!_ok || _pos + n > _buf.size()) {
            _ok = false;
            return {};
        }
        std::string s(_buf.substr(_pos, n));
        _pos += n;
        return s;
    }

    void
    bytes(void *data, size_t n)
    {
        if (_pos + n > _buf.size()) {
            _ok = false;
            std::memset(data, 0, n);
            return;
        }
        std::memcpy(data, _buf.data() + _pos, n);
        _pos += n;
    }

    bool good() const { return _ok; }
    bool atEnd() const { return _ok && _pos == _buf.size(); }
    size_t pos() const { return _pos; }

  private:
    std::string_view _buf;
    size_t _pos = 0;
    bool _ok = true;
};

} // namespace vpsim

#endif // VPSIM_SIM_SERIALIZE_HH
