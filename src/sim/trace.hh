/**
 * @file
 * Tracing and telemetry in the gem5 idiom.
 *
 * Three cooperating facilities:
 *
 *  - A **debug-flag registry** behind the DPRINTF(Flag, fmt, ...) macro:
 *    per-subsystem flags (Fetch, Dispatch, Issue, Commit, VPred, MTVP,
 *    Cache, StoreBuffer) selectable by name or glob ("MTVP,Commit",
 *    "St*", "*") with an optional cycle window. When a flag is off the
 *    macro costs one mask test; format arguments are not evaluated.
 *    Messages are prefixed with the current cycle and thread context.
 *
 *  - An **InstTracer** that emits gem5-O3PipeView-compatible pipeline
 *    traces (per-instruction fetch/decode/dispatch/issue/complete/retire
 *    timestamps) viewable in Konata.
 *
 *  - A **StatSampler** that snapshots selected statistics every N cycles
 *    into an in-memory time series dumpable as JSON or CSV, so IPC and
 *    miss-rate trajectories around MTVP spawns become plottable.
 *
 * Flag, window, and output state is thread-local: each simulation job
 * runs wholly on one thread (see sim/sim_pool.hh), so parallel sims
 * trace independently without synchronizing on every DPRINTF gate. The
 * Cpu applies its SimConfig's trace settings at construction.
 */

#ifndef VPSIM_SIM_TRACE_HH
#define VPSIM_SIM_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

namespace trace
{

/** One debug flag per traceable subsystem. */
enum class Flag : unsigned
{
    Fetch,
    Dispatch,
    Issue,
    Commit,
    VPred,
    MTVP,
    Cache,
    StoreBuffer,
    NumFlags,
};

inline constexpr unsigned numFlags =
    static_cast<unsigned>(Flag::NumFlags);

namespace detail
{
/** Flags effectively on right now (requested mask gated by the cycle
 *  window). Read inline on every DPRINTF site; written on setCycle.
 *  Thread-local so concurrently running simulations never share it. */
extern thread_local uint32_t activeMask;
/** Thread context printed in message prefixes (invalidCtx = none). */
extern thread_local CtxId curCtx;
} // namespace detail

/** Near-zero-cost gate: one load + mask test when tracing is off. */
inline bool
enabled(Flag f)
{
    return (detail::activeMask >> static_cast<unsigned>(f)) & 1u;
}

inline bool anyEnabled() { return detail::activeMask != 0; }

/** Set the context prefixed to subsequent messages (one int store). */
inline void setContext(CtxId id) { detail::curCtx = id; }

/** Canonical name of @p f ("Fetch", "MTVP", ...). */
const char *flagName(Flag f);

/**
 * Select flags from a comma-separated list of names or globs
 * ("MTVP,Commit", "St*", "*"). Matching is case-insensitive; '*' and
 * '?' wildcard. Empty spec turns everything off. fatal() on a token
 * that matches no flag.
 */
void setFlags(const std::string &spec);

/** Mask of flags requested by setFlags (before window gating). */
uint32_t requestedMask();

/** Restrict tracing to cycles [start, end); end == 0 means no end. */
void setWindow(Cycle start, Cycle end);

/** Advance the tracer's clock (the Cpu calls this once per tick);
 *  applies the cycle window to the active mask. */
void setCycle(Cycle now);

Cycle currentCycle();

/** Redirect DPRINTF output to @p path; empty restores stderr. */
void setOutputFile(const std::string &path);

/** Everything off, window cleared, output to stderr, cycle 0. */
void reset();

/** Case-insensitive glob match ('*' and '?'). */
bool globMatch(const std::string &pattern, const std::string &name);

/** Emit one trace line: "<cycle>: t<ctx>: <Flag>: <message>". */
void print(Flag f, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

// ---------------------------------------------------------------------
// Per-instruction pipeline tracing (gem5 O3PipeView / Konata format)
// ---------------------------------------------------------------------

/** Stage timestamps of one retired (or squashed) instruction. */
struct InstTraceRecord
{
    InstSeqNum seq = 0;
    Addr pc = 0;
    Cycle fetch = 0;
    Cycle decode = 0;   ///< Front-end exit (decode == rename here).
    Cycle dispatch = 0;
    Cycle issue = 0;    ///< 0 when the instruction never issued.
    Cycle complete = 0; ///< 0 when no result was ever produced.
    Cycle retire = 0;   ///< 0 marks a squashed instruction.
    std::string disasm; ///< Disassembly plus #stvp/#mtvp/#squash notes.
};

/**
 * Streams O3PipeView records to a file. One record (seven lines) per
 * instruction, emitted at retire or squash time. The output loads
 * directly in Konata and in gem5's util/o3-pipeview.py.
 */
class InstTracer
{
  public:
    /** Open @p path for writing; fatal() if it cannot be created. */
    explicit InstTracer(const std::string &path);
    ~InstTracer();

    InstTracer(const InstTracer &) = delete;
    InstTracer &operator=(const InstTracer &) = delete;

    void record(const InstTraceRecord &r);

    uint64_t recorded() const { return _recorded; }

    /** The exact text record() writes (exposed for golden tests). */
    static std::string format(const InstTraceRecord &r);

  private:
    std::FILE *_out = nullptr;
    uint64_t _recorded = 0;
};

// ---------------------------------------------------------------------
// Periodic statistics sampling
// ---------------------------------------------------------------------

/**
 * Snapshots selected stats from a StatGroup every @p period cycles into
 * an in-memory time series. Values are the stats' running (cumulative)
 * values at the sample cycle; rates are a post-processing subtraction.
 */
class StatSampler
{
  public:
    /**
     * Track the stats of @p group whose names match @p spec (comma
     * separated names/globs; empty means every stat). fatal() on a
     * token that matches nothing or a non-positive period.
     */
    StatSampler(const StatGroup &group, const std::string &spec,
                Cycle period);

    /** Cheap per-tick hook; samples when @p now crosses the next edge. */
    void
    maybeSample(Cycle now)
    {
        if (now >= _next)
            takeSample(now);
    }

    Cycle period() const { return _period; }

    /** Next cycle at which a sample is due. The time-skip engine caps
     *  jumps here so the tick that crosses the boundary samples at the
     *  same cycle (with the same values) as the per-cycle loop. */
    Cycle nextSampleAt() const { return _next; }
    const std::vector<std::string> &names() const { return _names; }
    size_t sampleCount() const { return _cycles.size(); }
    /** Value of tracked stat @p stat at sample @p sample. */
    double valueAt(size_t sample, size_t stat) const;

    void dumpCsv(std::ostream &os) const;
    void dumpJson(std::ostream &os) const;
    /** Write to @p path; ".json" suffix selects JSON, else CSV. */
    void dumpToFile(const std::string &path) const;

  private:
    void takeSample(Cycle now);

    std::vector<const StatBase *> _tracked;
    std::vector<std::string> _names;
    Cycle _period = 0;
    Cycle _next = 0;
    std::vector<Cycle> _cycles;
    std::vector<double> _values; ///< Row-major, _tracked.size() per row.
};

} // namespace trace

} // namespace vpsim

/**
 * Runtime-gated debug print. Arguments are evaluated only when the flag
 * is on, so call sites may disassemble / format freely.
 */
#define DPRINTF(flag, ...)                                               \
    do {                                                                 \
        if (::vpsim::trace::enabled(::vpsim::trace::Flag::flag))         \
            ::vpsim::trace::print(::vpsim::trace::Flag::flag,            \
                                  __VA_ARGS__);                          \
    } while (0)

#endif // VPSIM_SIM_TRACE_HH
