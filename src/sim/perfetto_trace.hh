/**
 * @file
 * Chrome trace-event ("Perfetto") export. Two kinds of tracks share
 * one JSON file, kept apart by their process id:
 *
 *   pid 0 — simulated time. One track per hardware context, built
 *     from the Analytics timeline: spawn lifetimes as complete ("X")
 *     spans named by the spawning load PC, squash windows as instants,
 *     and time-skip bulk advances as spans on their own track. The
 *     timestamp unit is the simulated cycle (rendered as µs, which
 *     chrome://tracing and ui.perfetto.dev treat as a plain number).
 *
 *   pid 1 — host time. One track per SimPool worker, recorded by the
 *     process-wide HostTraceRecorder when the MTVP_PERFETTO
 *     environment variable names an output file: a span per simulation
 *     job (labelled with the workload) and an instant per result-cache
 *     hit. This is the scheduling companion to the self-profiler's
 *     aggregates — it shows *when* workers ran, not just for how long.
 *
 * The per-run sim trace is written by runWorkload when the
 * `perfettoTrace=` config key names a file; any host events recorded
 * by then are appended so a combined file renders both track groups.
 * The emitted object is `{"traceEvents": [...]}` — directly loadable
 * in chrome://tracing and parseable by sim/json.hh (tested).
 *
 * This file is on the vplint wallclock allowlist: HostTraceRecorder
 * is the only component outside the self-profiler that may read host
 * clocks, and only ever for host-side (never simulated) tracks.
 */

#ifndef VPSIM_SIM_PERFETTO_TRACE_HH
#define VPSIM_SIM_PERFETTO_TRACE_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vpsim
{

class Analytics;

/** An in-memory trace-event JSON document under construction. */
class PerfettoTrace
{
  public:
    using Args = std::vector<std::pair<std::string, std::string>>;

    /** Emit a process_name metadata event for @p pid. */
    void setProcessName(int pid, const std::string &name);
    /** Emit a thread_name metadata event for (@p pid, @p tid). */
    void setThreadName(int pid, int tid, const std::string &name);
    /** Complete ("X") event: [@p tsUs, @p tsUs + @p durUs). String
     *  arg values are JSON-quoted at write time. */
    void addSpan(int pid, int tid, const std::string &name, double tsUs,
                 double durUs, Args args = {});
    /** Thread-scoped instant ("i") event at @p tsUs. */
    void addInstant(int pid, int tid, const std::string &name,
                    double tsUs, Args args = {});

    size_t numEvents() const { return _events.size(); }

    /** Write the whole `{"traceEvents": [...]}` document. */
    void write(std::ostream &os) const;

  private:
    struct Event
    {
        char phase;
        int pid;
        int tid;
        double ts;
        double dur;
        std::string name;
        Args args;
    };
    std::vector<Event> _events;
};

/** Build the pid-0 simulated-time tracks from @p an's timeline (plus
 *  any host events already recorded) and write the document. */
void writeSimTrace(std::ostream &os, const Analytics &an,
                   int numContexts);

/**
 * Process-wide host-time event recorder, the GlobalProfile analogue
 * for scheduling: enabled when MTVP_PERFETTO names an output file, a
 * no-op otherwise (one predicted branch per hook). Thread-safe; the
 * singleton writes its own host-only trace file at process exit.
 */
class HostTraceRecorder
{
  public:
    static HostTraceRecorder &instance();

    bool enabled() const { return _enabled; }
    bool anyEvents() const;

    /** RAII span on the calling worker's track; label it with the
     *  workload being simulated. Inactive when recording is off. */
    class JobScope
    {
      public:
        explicit JobScope(const std::string &label);
        ~JobScope();
        JobScope(const JobScope &) = delete;
        JobScope &operator=(const JobScope &) = delete;

      private:
        bool _active;
        int _tid = 0;
        uint64_t _t0 = 0;
        std::string _label;
    };

    /** A result-cache hit for @p label (instant on the cache track). */
    void recordCacheHit(const std::string &label);

    /** Append every recorded host event as pid-1 tracks on @p out. */
    void appendTo(PerfettoTrace &out) const;

    ~HostTraceRecorder();

  private:
    HostTraceRecorder();

    struct HostEvent
    {
        bool span; ///< span when true, instant otherwise
        int tid;
        double tsUs;
        double durUs;
        std::string name;
    };

    int workerTid();

    bool _enabled = false;
    std::string _path;
    uint64_t _originNs = 0;
    int _nextWorker = 1;
    mutable std::mutex _mu; ///< guards _events and _nextWorker
    std::vector<HostEvent> _events;
};

} // namespace vpsim

#endif // VPSIM_SIM_PERFETTO_TRACE_HH
