#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace vpsim
{

namespace
{

bool verboseEnabled = true;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
emit(const char *prefix, const char *fmt, va_list ap)
{
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d%s%s\n",
                 cond, file, line, msg.empty() ? "" : ": ", msg.c_str());
    std::abort();
}

} // namespace vpsim
