#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace vpsim
{

namespace
{

/** Atomic: pool workers read it on every inform() while a bench main
 *  may toggle verbosity around a sweep. */
std::atomic<bool> verboseEnabled{true};

/** The one message sink; nullptr means stderr. Configured before any
 *  parallel simulation starts (bench mains / test fixtures), so workers
 *  only ever read it; the FILE itself is internally locked. Atomic so
 *  a concurrent reader can never observe a torn pointer. */
std::atomic<std::FILE *> logSink{nullptr};
/** Only touched by setLogFile() on the configuration path, before any
 *  SimPool worker exists (see logSink above).
 *  vplint:allow(global-state) single-threaded configuration path */
std::string logSinkPath;

/** Live simulation cycle; messages are cycle-prefixed while non-null.
 *  Thread-local: each pool worker's messages carry the cycle of the
 *  simulation *it* is running, and registering/clearing the source in
 *  Cpu's ctor/dtor stays race-free under parallel sweeps. */
thread_local const uint64_t *cycleSource = nullptr;

std::FILE *
sink()
{
    std::FILE *f = logSink.load(std::memory_order_acquire);
    return f != nullptr ? f : stderr;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
writeLine(std::FILE *out, const char *prefix, const std::string &msg)
{
    if (cycleSource != nullptr) {
        std::fprintf(out, "[%llu] %s: %s\n",
                     static_cast<unsigned long long>(*cycleSource), prefix,
                     msg.c_str());
    } else {
        std::fprintf(out, "%s: %s\n", prefix, msg.c_str());
    }
}

/** Every warn/inform/panic/fatal message funnels through here. */
void
emit(const char *prefix, const char *fmt, va_list ap, bool mirrorStderr)
{
    std::string msg = vformat(fmt, ap);
    writeLine(sink(), prefix, msg);
    if (mirrorStderr && logSink.load(std::memory_order_acquire) != nullptr)
        writeLine(stderr, prefix, msg);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap, true);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap, true);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap, false);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled.load(std::memory_order_relaxed))
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap, false);
    va_end(ap);
}

void
setVerbose(bool verbose)
{
    verboseEnabled.store(verbose, std::memory_order_relaxed);
}

void
setLogFile(const std::string &path)
{
    if (path == logSinkPath)
        return;
    std::FILE *old = logSink.exchange(nullptr, std::memory_order_release);
    if (old != nullptr)
        std::fclose(old);
    logSinkPath = path;
    if (path.empty())
        return;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        logSinkPath.clear();
        fatal("cannot open log file '%s'", path.c_str());
    }
    logSink.store(f, std::memory_order_release);
}

void
setLogCycleSource(const uint64_t *cycle)
{
    cycleSource = cycle;
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

std::string
vcsprintf(const char *fmt, va_list ap)
{
    return vformat(fmt, ap);
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::string full = csprintf("assertion '%s' failed at %s:%d%s%s", cond,
                                file, line, msg.empty() ? "" : ": ",
                                msg.c_str());
    writeLine(sink(), "panic", full);
    if (logSink.load(std::memory_order_acquire) != nullptr)
        writeLine(stderr, "panic", full);
    std::abort();
}

} // namespace vpsim
