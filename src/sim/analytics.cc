#include "sim/analytics.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"
#include "vpred/vp_attribution.hh"

namespace vpsim
{

const char *
spawnOutcomeName(SpawnOutcome o)
{
    switch (o) {
      case SpawnOutcome::Promoted: return "promoted";
      case SpawnOutcome::ValueMispredict: return "valueMispredict";
      case SpawnOutcome::UpstreamSquash: return "upstreamSquash";
      case SpawnOutcome::Starved: return "starved";
      case SpawnOutcome::AbortedAtDrain: return "abortedAtDrain";
      case SpawnOutcome::NumOutcomes: break;
    }
    return "?";
}

const char *
spawnOutcomeDesc(SpawnOutcome o)
{
    switch (o) {
      case SpawnOutcome::Promoted:
        return "spawns that won their load's resolution and were "
               "promoted";
      case SpawnOutcome::ValueMispredict:
        return "spawns killed because their speculated value was wrong";
      case SpawnOutcome::UpstreamSquash:
        return "spawns killed by an upstream squash cascade before "
               "their own value was judged";
      case SpawnOutcome::Starved:
        return "spawns killed before committing any instruction";
      case SpawnOutcome::AbortedAtDrain:
        return "spawns still speculative when the run drained";
      case SpawnOutcome::NumOutcomes:
        break;
    }
    return "?";
}

Analytics::Analytics(StatGroup &stats, int numContexts, bool timeline)
    : _timeline(timeline),
      _active(static_cast<size_t>(numContexts))
{
    vpsim_assert(numContexts >= 1);
    for (unsigned o = 0; o < numSpawnOutcomes; ++o) {
        SpawnOutcome oc = static_cast<SpawnOutcome>(o);
        const uint64_t *count = &_counts[o];
        const uint64_t *cycles = &_cycles[o];
        const uint64_t *insts = &_insts[o];
        _formulas.push_back(std::make_unique<Formula>(
            stats, csprintf("analytics.spawns.%s", spawnOutcomeName(oc)),
            spawnOutcomeDesc(oc),
            [count] { return static_cast<double>(*count); }));
        _formulas.push_back(std::make_unique<Formula>(
            stats,
            csprintf("analytics.spawnCycles.%s", spawnOutcomeName(oc)),
            csprintf("lifetime cycles of %s", spawnOutcomeDesc(oc)),
            [cycles] { return static_cast<double>(*cycles); }));
        _formulas.push_back(std::make_unique<Formula>(
            stats,
            csprintf("analytics.spawnInsts.%s", spawnOutcomeName(oc)),
            csprintf("committed instructions of %s",
                     spawnOutcomeDesc(oc)),
            [insts] { return static_cast<double>(*insts); }));
    }
    _formulas.push_back(std::make_unique<Formula>(
        stats, "analytics.spawnPcs",
        "distinct static load PCs that spawned at least once",
        [this] { return static_cast<double>(_pcTable.size()); }));
    _formulas.push_back(std::make_unique<Formula>(
        stats, "analytics.squashWindows",
        "squash windows observed (promotions and thread kills)",
        [this] { return static_cast<double>(_squashWindows); }));
    _formulas.push_back(std::make_unique<Formula>(
        stats, "analytics.squashedInsts",
        "in-flight instructions discarded across all squash windows",
        [this] { return static_cast<double>(_squashedInsts); }));
}

uint64_t
Analytics::recordSpawn(CtxId child, CtxId parent, Addr pc, Cycle now)
{
    vpsim_assert(child >= 0 &&
                 static_cast<size_t>(child) < _active.size());
    vpsim_assert(parent != child);
    Active &a = _active[static_cast<size_t>(child)];
    vpsim_assert(!a.open, "ctx %d spawned while already tracked", child);
    a.open = true;
    a.id = _nextId++;
    a.pc = pc;
    a.start = now;
    ++_pcTable[pc].spawns;
    return a.id;
}

void
Analytics::close(CtxId ctx, SpawnOutcome outcome, Cycle now,
                 uint64_t committedInsts)
{
    Active &a = _active[static_cast<size_t>(ctx)];
    vpsim_assert(a.open, "ctx %d closed with no open spawn", ctx);
    vpsim_assert(now >= a.start);
    uint64_t life = now - a.start;
    unsigned o = static_cast<unsigned>(outcome);
    ++_counts[o];
    _cycles[o] += life;
    _insts[o] += committedInsts;
    SpawnPcEntry &pc = _pcTable[a.pc];
    pc.cycles += life;
    pc.insts += committedInsts;
    switch (outcome) {
      case SpawnOutcome::Promoted:
        ++pc.promoted;
        break;
      case SpawnOutcome::AbortedAtDrain:
        ++pc.aborted;
        break;
      default:
        ++pc.killed;
        pc.squashCycles += life;
        break;
    }
    if (_timeline)
        _spans.push_back({a.id, ctx, a.pc, a.start, now, outcome,
                          committedInsts});
    a.open = false;
}

uint64_t
Analytics::recordKill(CtxId child, SpawnOutcome why, Cycle now,
                      uint64_t committedInsts)
{
    vpsim_assert(why == SpawnOutcome::ValueMispredict ||
                 why == SpawnOutcome::UpstreamSquash);
    Cycle start = _active[static_cast<size_t>(child)].start;
    if (committedInsts == 0)
        why = SpawnOutcome::Starved;
    close(child, why, now, committedInsts);
    return now - start;
}

void
Analytics::recordPromote(CtxId winner, Cycle now, uint64_t committedInsts)
{
    close(winner, SpawnOutcome::Promoted, now, committedInsts);
}

void
Analytics::transferSpawn(CtxId from, CtxId to)
{
    Active &src = _active[static_cast<size_t>(from)];
    if (!src.open)
        return;
    Active &dst = _active[static_cast<size_t>(to)];
    vpsim_assert(!dst.open,
                 "spawn transfer onto ctx %d with an open record", to);
    dst = src;
    src.open = false;
}

bool
Analytics::hasOpenSpawn(CtxId ctx) const
{
    return _active[static_cast<size_t>(ctx)].open;
}

void
Analytics::recordAbortAtDrain(CtxId ctx, Cycle now,
                              uint64_t committedInsts)
{
    close(ctx, SpawnOutcome::AbortedAtDrain, now, committedInsts);
}

void
Analytics::recordSquash(CtxId ctx, Cycle now, uint64_t insts,
                        const char *why)
{
    ++_squashWindows;
    _squashedInsts += insts;
    if (_timeline)
        _squashLog.push_back({ctx, now, insts, why});
}

void
Analytics::recordTimeSkip(Cycle from, Cycle to)
{
    if (_timeline)
        _skips.push_back({from, to});
}

uint64_t
Analytics::outcomeCount(SpawnOutcome o) const
{
    return _counts[static_cast<unsigned>(o)];
}

uint64_t
Analytics::outcomeCycles(SpawnOutcome o) const
{
    return _cycles[static_cast<unsigned>(o)];
}

uint64_t
Analytics::outcomeInsts(SpawnOutcome o) const
{
    return _insts[static_cast<unsigned>(o)];
}

void
Analytics::printReport(std::ostream &os, size_t topN) const
{
    char line[192];
    os << "Spawn lifecycle ("
       << static_cast<unsigned long long>(totalSpawns())
       << " spawns; every spawn lands in exactly one outcome)\n";
    std::snprintf(line, sizeof(line), "  %-16s %10s %12s %12s\n",
                  "outcome", "spawns", "cycles", "insts");
    os << line;
    for (unsigned o = 0; o < numSpawnOutcomes; ++o) {
        SpawnOutcome oc = static_cast<SpawnOutcome>(o);
        std::snprintf(line, sizeof(line),
                      "  %-16s %10llu %12llu %12llu\n",
                      spawnOutcomeName(oc),
                      static_cast<unsigned long long>(outcomeCount(oc)),
                      static_cast<unsigned long long>(outcomeCycles(oc)),
                      static_cast<unsigned long long>(outcomeInsts(oc)));
        os << line;
    }
    std::snprintf(line, sizeof(line),
                  "  squash windows: %llu (%llu insts discarded)\n",
                  static_cast<unsigned long long>(_squashWindows),
                  static_cast<unsigned long long>(_squashedInsts));
    os << line;

    std::vector<std::pair<Addr, SpawnPcEntry>> rows(_pcTable.begin(),
                                                    _pcTable.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.spawns > b.second.spawns;
                     });
    if (rows.size() > topN)
        rows.resize(topN);
    os << "Top spawn PCs by spawn count\n";
    std::snprintf(line, sizeof(line),
                  "  %-12s %8s %8s %8s %8s %12s %12s\n", "pc", "spawns",
                  "promote", "killed", "aborted", "cycles",
                  "squashCyc");
    os << line;
    for (const auto &[pc, e] : rows) {
        std::snprintf(line, sizeof(line),
                      "  %#-12llx %8llu %8llu %8llu %8llu %12llu "
                      "%12llu\n",
                      static_cast<unsigned long long>(pc),
                      static_cast<unsigned long long>(e.spawns),
                      static_cast<unsigned long long>(e.promoted),
                      static_cast<unsigned long long>(e.killed),
                      static_cast<unsigned long long>(e.aborted),
                      static_cast<unsigned long long>(e.cycles),
                      static_cast<unsigned long long>(e.squashCycles));
        os << line;
    }
}

void
writeAnalyticsReport(std::ostream &os, const Analytics &an,
                     const VpAttribution &vp, size_t topN)
{
    os << "==== Provenance analytics ====\n";
    an.printReport(os, topN);
    vp.printReport(os, topN);
}

} // namespace vpsim
