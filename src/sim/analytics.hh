/**
 * @file
 * Spawn-lifecycle provenance analytics. Every MTVP spawn gets a
 * monotonic id when it is created (core/dispatch.cc) and exactly one
 * terminal outcome when it dies or wins (core/commit.cc, end-of-run
 * drain in core/cpu.cc), so the per-outcome counters partition
 * `mtvp.spawns` exactly: promoted spawns equal `mtvp.promotes`, killed
 * spawns equal `mtvp.kills`, and whatever is still live when the run
 * drains is aborted-at-drain. Alongside the outcome, each closing
 * spawn charges its lifetime cycles and committed instructions, which
 * yields the per-outcome cost table the paper-forensics report and
 * the `analytics.*` stats expose.
 *
 * Promotion renames contexts (the winner inherits its parent's
 * identity), so a spawn record follows the rename: when a speculative
 * parent is promoted over, its still-open record transfers to the
 * winning child. With that transfer the records tile context activity
 * exactly, giving the tested identity
 *
 *     sum over outcomes of analytics.spawnCycles.<outcome>
 *         == sum over ctx of (cycles - cpi.t<ctx>.idle) - cycles
 *
 * i.e. total spawn-lifetime cycles equal total non-idle context
 * cycles minus the architectural thread's share (see
 * tests/analytics_test.cc).
 *
 * A per-spawn-PC table aggregates the same data by the PC of the load
 * that spawned, and an optional timeline (enabled only when a
 * Perfetto trace is requested, so the always-on cost stays at a few
 * counter adds) keeps the individual spans, squash windows, and
 * time-skip jumps for sim/perfetto_trace.{hh,cc} to export.
 */

#ifndef VPSIM_SIM_ANALYTICS_HH
#define VPSIM_SIM_ANALYTICS_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

class VpAttribution;

/** Terminal outcome of one spawn (exactly one per spawn). */
enum class SpawnOutcome : unsigned
{
    Promoted,       ///< Won its load's resolution; committed useful work.
    ValueMispredict,///< Killed because its speculated value was wrong.
    UpstreamSquash, ///< Killed by an upstream squash cascade (parent
                    ///< mispredict, ancestor kill, or pending-spawn
                    ///< cancellation) — its own value was never judged.
    Starved,        ///< Killed before committing a single instruction
                    ///< (refines the two kill outcomes above).
    AbortedAtDrain, ///< Still speculative when the run drained.
    NumOutcomes,
};

inline constexpr unsigned numSpawnOutcomes =
    static_cast<unsigned>(SpawnOutcome::NumOutcomes);

/** Canonical outcome name used in stat names ("promoted", ...). */
const char *spawnOutcomeName(SpawnOutcome o);

/** One-line description of an outcome (stat descriptions, reports). */
const char *spawnOutcomeDesc(SpawnOutcome o);

/**
 * Aggregation point for spawn provenance. The Cpu owns one instance
 * and calls the record* hooks from dispatch (spawn), commit
 * (promote/kill/squash), and the end-of-run drain; everything here is
 * bookkeeping — no pipeline state, no policy.
 */
class Analytics
{
  public:
    /** Register `analytics.*` stats on @p stats. @p timeline enables
     *  the per-event span/instant log consumed by the Perfetto
     *  exporter; aggregates are always on. */
    Analytics(StatGroup &stats, int numContexts, bool timeline);

    Analytics(const Analytics &) = delete;
    Analytics &operator=(const Analytics &) = delete;

    /** A spawn was created on context @p child by @p parent for the
     *  load at @p pc. Returns the spawn's monotonic id. */
    uint64_t recordSpawn(CtxId child, CtxId parent, Addr pc, Cycle now);

    /** The spawn currently held by @p child was killed. @p why is the
     *  cause at the kill site; kills that committed nothing are
     *  refined to Starved here. Returns the spawn's lifetime cycles
     *  (for per-PC squash-cost attribution). */
    uint64_t recordKill(CtxId child, SpawnOutcome why, Cycle now,
                        uint64_t committedInsts);

    /** The spawn held by @p winner won its load's resolution. */
    void recordPromote(CtxId winner, Cycle now, uint64_t committedInsts);

    /** Promotion renamed @p from into @p to: move @p from's still-open
     *  spawn record (if any) onto @p to. No-op when @p from holds no
     *  open record (the architectural root never does). */
    void transferSpawn(CtxId from, CtxId to);

    /** Does @p ctx currently hold an open (unresolved) spawn record? */
    bool hasOpenSpawn(CtxId ctx) const;

    /** Close @p ctx's open spawn as AbortedAtDrain at end of run. */
    void recordAbortAtDrain(CtxId ctx, Cycle now, uint64_t committedInsts);

    /** @p insts instructions of @p ctx were squashed at @p now for
     *  reason @p why ("promote", "threadKill"). Always counted; the
     *  individual window is kept only when the timeline is on. */
    void recordSquash(CtxId ctx, Cycle now, uint64_t insts,
                      const char *why);

    /** The time-skip engine bulk-advanced from @p from to @p to.
     *  Timeline-only; skips never change the aggregates. */
    void recordTimeSkip(Cycle from, Cycle to);

    bool timelineEnabled() const { return _timeline; }

    // ----- aggregate accessors (always valid) -----
    uint64_t totalSpawns() const { return _nextId; }
    uint64_t outcomeCount(SpawnOutcome o) const;
    uint64_t outcomeCycles(SpawnOutcome o) const;
    uint64_t outcomeInsts(SpawnOutcome o) const;
    uint64_t squashWindows() const { return _squashWindows; }
    uint64_t squashedInsts() const { return _squashedInsts; }

    /** Per-spawn-PC aggregate (keyed by the spawning load's PC). */
    struct SpawnPcEntry
    {
        uint64_t spawns = 0;       ///< spawns created at this PC
        uint64_t promoted = 0;     ///< ... that won their resolution
        uint64_t killed = 0;       ///< ... killed (any kill outcome)
        uint64_t aborted = 0;      ///< ... still live at drain
        uint64_t cycles = 0;       ///< summed lifetime cycles
        uint64_t insts = 0;        ///< summed committed instructions
        uint64_t squashCycles = 0; ///< lifetime cycles of killed spawns
    };
    const std::map<Addr, SpawnPcEntry> &spawnPcTable() const
    {
        return _pcTable;
    }

    // ----- timeline accessors (non-empty only when enabled) -----
    struct SpawnSpan
    {
        uint64_t id;
        CtxId ctx;          ///< context holding the record at close
        Addr pc;
        Cycle start;
        Cycle end;
        SpawnOutcome outcome;
        uint64_t insts;
    };
    struct SquashWindow
    {
        CtxId ctx;
        Cycle at;
        uint64_t insts;
        const char *why;
    };
    struct SkipJump
    {
        Cycle from;
        Cycle to;
    };
    const std::vector<SpawnSpan> &spawnSpans() const { return _spans; }
    const std::vector<SquashWindow> &squashWindowLog() const
    {
        return _squashLog;
    }
    const std::vector<SkipJump> &skipJumps() const { return _skips; }

    /** Spawn-side half of the forensics report (outcome table plus
     *  top-@p topN spawn PCs by spawn count). */
    void printReport(std::ostream &os, size_t topN) const;

  private:
    struct Active
    {
        bool open = false;
        uint64_t id = 0;
        Addr pc = 0;
        Cycle start = 0;
    };

    void close(CtxId ctx, SpawnOutcome outcome, Cycle now,
               uint64_t committedInsts);

    bool _timeline;
    uint64_t _nextId = 0;
    std::vector<Active> _active;             ///< [ctx] open record
    uint64_t _counts[numSpawnOutcomes] = {}; ///< spawns per outcome
    uint64_t _cycles[numSpawnOutcomes] = {}; ///< lifetime cycles "
    uint64_t _insts[numSpawnOutcomes] = {};  ///< committed insts "
    uint64_t _squashWindows = 0;
    uint64_t _squashedInsts = 0;
    std::map<Addr, SpawnPcEntry> _pcTable;
    std::vector<SpawnSpan> _spans;
    std::vector<SquashWindow> _squashLog;
    std::vector<SkipJump> _skips;
    std::vector<std::unique_ptr<Formula>> _formulas;
};

/** Full forensics report: spawn-lifecycle table (Analytics) followed
 *  by the per-PC value-prediction attribution table (VpAttribution).
 *  This is what the `analytics=` config key and `vpsim_cli
 *  --analytics` print. */
void writeAnalyticsReport(std::ostream &os, const Analytics &an,
                          const VpAttribution &vp, size_t topN);

} // namespace vpsim

#endif // VPSIM_SIM_ANALYTICS_HH
