/**
 * @file
 * Append-only, crash-tolerant job journal for the experiment engine.
 *
 * Every job the engine processes leaves a trail of single-line JSON
 * events in one JSONL file: `submit` when a (config, workload) point
 * enters the job graph, `cache-hit` when the persistent result cache
 * answers it, `start`/`finish` around an actual simulation (with the
 * executing worker, wall time, outcome, and headline insts/cycles),
 * and `stuck` when the watchdog flags a job as suspiciously slow.
 * Lines are appended with O_APPEND semantics and flushed per event, so
 * multiple figure processes can share one ledger (run_all spawns them
 * with the same MTVP_LEDGER) and a crash loses at most the final,
 * possibly-truncated line — which the reader tolerates by design.
 *
 * The journal is replayable: replayLedger() folds the event stream
 * into the final job-state table (queued/running/finished/cache-hit/
 * failed per job, plus aggregate counters), reconstructing engine
 * state exactly — tests assert this identity. run_all consumes it
 * three ways: `--ledger-report` (post-mortem summary), `--progress`
 * (live tail + EWMA ETA via ProgressModel), and `/jobs` on the
 * embedded metrics endpoint (ledgerJobsJson).
 *
 * Timestamps are host-side wall-clock by design (this is telemetry,
 * not simulation; vplint allowlists this file), and nothing in here is
 * reachable from simulated state: a run with the ledger enabled is
 * bit-identical to one without.
 */

#ifndef VPSIM_SIM_RUN_LEDGER_HH
#define VPSIM_SIM_RUN_LEDGER_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vpsim
{

/** One journal event kind; serialized as the "ev" field. */
enum class LedgerEventKind
{
    RunStart, ///< run_all (or a test) opened a fresh ledger.
    Submit,   ///< A job entered the job graph (post graph-level dedup).
    CacheHit, ///< The persistent result cache answered the job.
    Start,    ///< A worker began simulating the job.
    Finish,   ///< The simulation completed (outcome ok|error).
    Stuck,    ///< The watchdog flagged the job as suspiciously slow.
};

const char *toString(LedgerEventKind k);
bool ledgerEventKind(const std::string &s, LedgerEventKind &out);

/** One journal line. Fields not meaningful for a kind stay empty/0. */
struct LedgerEvent
{
    LedgerEventKind kind = LedgerEventKind::Submit;
    std::string job;      ///< 16-hex canonical job key (resultKey()).
    std::string workload;
    std::string figure;   ///< Figure label (MTVP_LEDGER_FIGURE), "" ok.
    std::string worker;   ///< Executing worker ("simpool/3", "main").
    std::string outcome;  ///< finish: "ok"|"error"; stuck: reason.
    double wallSeconds = 0.0; ///< finish: job latency; stuck: elapsed.
    double unixMs = 0.0;  ///< Host timestamp (ms since the epoch).
    uint64_t insts = 0;   ///< finish: useful instructions simulated.
    uint64_t cycles = 0;  ///< finish: simulated cycles.
};

/** Serialize one event as a single JSON line (no trailing newline). */
std::string ledgerEventJson(const LedgerEvent &e);

/**
 * Appending journal writer. The process-wide instance (global()) is
 * configured once from MTVP_LEDGER / MTVP_LEDGER_FIGURE and shared by
 * the SimJobGraph, the watchdog, and the bench harness; a disabled
 * ledger (no path) drops every record() at a single branch.
 */
class RunLedger
{
  public:
    RunLedger() = default;
    ~RunLedger();

    RunLedger(const RunLedger &) = delete;
    RunLedger &operator=(const RunLedger &) = delete;

    /** The process-wide ledger, lazily configured from MTVP_LEDGER. */
    static RunLedger &global();

    /** (Re)open @p path for appending; "" closes/disables. */
    void open(const std::string &path);
    bool enabled() const;
    const std::string &path() const { return _path; }

    /** Figure label stamped on every event ("" = none). */
    void setFigure(const std::string &figure);
    std::string figure() const;

    /** Append one event (fills unixMs if 0) and flush. Thread-safe. */
    void record(LedgerEvent e);

  private:
    mutable std::mutex _m;
    std::string _path;
    std::string _figure;
    std::FILE *_f = nullptr;
};

/**
 * Parse a JSONL ledger. Corrupt or truncated lines — including the
 * torn final line of a crashed run — are skipped with a warning pushed
 * to @p warnings (when non-null), never an error. Returns false only
 * when the file cannot be opened at all.
 */
bool loadLedger(const std::string &path, std::vector<LedgerEvent> &out,
                std::vector<std::string> *warnings = nullptr);

/** Final state of one job after replay. */
struct LedgerJobState
{
    enum class State { Queued, Running, Finished, CacheHit, Failed };

    State state = State::Queued;
    std::string job; ///< Bare 16-hex job key (table keys add figure).
    std::string workload;
    std::string figure;
    std::string worker;
    std::string outcome;
    bool stuckFlagged = false;
    double wallSeconds = 0.0;
    uint64_t insts = 0;
    uint64_t cycles = 0;
    double submitMs = 0.0;
    double startMs = 0.0;
    double endMs = 0.0;
};

const char *toString(LedgerJobState::State s);

/** Replayed engine state: the job table plus aggregate counters. */
struct LedgerState
{
    /**
     * "figure/jobkey" -> final state (std::map: deterministic
     * iteration). The key is figure-qualified because sibling figure
     * processes legitimately run the same canonical job key (shared
     * baseline points), and those are distinct jobs in the sweep.
     */
    std::map<std::string, LedgerJobState> jobs;

    uint64_t submitted = 0;
    uint64_t started = 0;
    uint64_t finished = 0;
    uint64_t cacheHits = 0;
    uint64_t failed = 0;
    uint64_t stuckFlags = 0;
    uint64_t totalInsts = 0;
    double totalBusySeconds = 0.0;
    double firstMs = 0.0; ///< Earliest event timestamp (0 = none).
    double lastMs = 0.0;  ///< Latest event timestamp.

    /** Fold one event into the state (replay in file order). */
    void apply(const LedgerEvent &e);

    uint64_t queued() const;
    uint64_t running() const;
    /** Jobs in a terminal state (finished, cache-hit, or failed). */
    uint64_t done() const;
};

/** Fold a whole event stream (loadLedger order) into a LedgerState. */
LedgerState replayLedger(const std::vector<LedgerEvent> &events);

/** Human-readable `--ledger-report` summary. */
void writeLedgerReport(std::ostream &os, const LedgerState &st);

/** `/jobs` endpoint payload: the job table + aggregates as JSON. */
std::string ledgerJobsJson(const LedgerState &st);

/**
 * Incremental consumer for the live `--progress` view: feed events as
 * they are tailed from the ledger, render a one-line status with
 * per-figure job states, aggregate insts/s, and an EWMA-based ETA.
 */
class ProgressModel
{
  public:
    void apply(const LedgerEvent &e);

    const LedgerState &state() const { return _st; }

    /** One status line (no newline); @p nowMs from the caller so this
     *  file's reader side stays wall-clock-free. */
    std::string renderLine(double nowMs) const;

    /** Multi-line per-figure breakdown for the final summary. */
    std::string renderFigures() const;

    /** Publish queue/state gauges + latency histogram snapshots into
     *  the process-wide MetricsRegistry (the /metrics payload). */
    void exportMetrics() const;

  private:
    LedgerState _st;
    double _ewmaJobSeconds = 0.0; ///< EWMA of per-job latency.
    bool _ewmaValid = false;
    std::map<std::string, int> _workersSeen;
};

} // namespace vpsim

#endif // VPSIM_SIM_RUN_LEDGER_HH
