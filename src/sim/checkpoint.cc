#include "sim/checkpoint.hh"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

#include "core/cpu.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/result_cache.hh"
#include "sim/serialize.hh"

namespace vpsim
{

namespace
{

/** Bump on any change to the checkpoint payload layout (what
 *  Cpu::saveCheckpoint serializes, or any subsystem's saveState). Old
 *  entries then miss by construction instead of restoring garbage. */
constexpr const char *ckptSchemaVersion = "vpsim-ckpt-v1";

/** File magic: rejects non-checkpoint files immediately. */
constexpr const char *ckptMagic = "VPCK";

bool
makeDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    return false;
}

} // namespace

CheckpointStore::CheckpointStore(std::string dir) : _dir(std::move(dir))
{
}

std::string
CheckpointStore::keyString(const SimConfig &cfg,
                           const std::string &workload)
{
    std::string key;
    key.reserve(512);
    key += "ckpt-schema=";
    key += ckptSchemaVersion;
    key += ";warmup=";
    key += cfg.warmupKey();
    key += ";workload=";
    key += workload;
    key += ";ffInsts=";
    key += std::to_string(cfg.ffInsts);
    return key;
}

std::string
CheckpointStore::entryPath(const SimConfig &cfg,
                           const std::string &workload) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016" PRIx64,
                  fnv1a64(keyString(cfg, workload)));
    return _dir + "/" + name + ".ckpt";
}

bool
CheckpointStore::load(const SimConfig &cfg, const std::string &workload,
                      Cpu &cpu) const
{
    if (!enabled() || cfg.ffInsts == 0)
        return false;
    // Slurp the whole file first: a concurrently evicted or truncated
    // entry is then detected by the reader's bounds checks before any
    // simulator state is mutated.
    Counter &missed = MetricsRegistry::instance().counter(
        "vpsim_checkpoint_misses_total",
        "Checkpoint-store loads that missed (absent or stale entry)");
    std::ifstream is(entryPath(cfg, workload), std::ios::binary);
    if (!is) {
        missed.inc();
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string data = buf.str();

    CheckpointReader cr(data);
    char magic[4] = {};
    cr.bytes(magic, sizeof(magic));
    if (!cr.good() || std::memcmp(magic, ckptMagic, sizeof(magic)) != 0) {
        missed.inc();
        return false;
    }
    if (cr.str() != keyString(cfg, workload)) {
        missed.inc();
        return false; // Hash collision or stale schema: miss.
    }

    MetricsRegistry::instance()
        .counter("vpsim_checkpoint_hits_total",
                 "Fast-forward phases answered by a stored checkpoint")
        .inc();
    cpu.restoreCheckpoint(cr);
    if (!cr.good() || !cr.atEnd()) {
        // The payload was the wrong shape for this geometry; the
        // subsystem asserts catch size mismatches before this, so the
        // only way here is a truncated file race.
        fatal("checkpoint '%s' is truncated",
              entryPath(cfg, workload).c_str());
    }
    return true;
}

void
CheckpointStore::save(const SimConfig &cfg, const std::string &workload,
                      Cpu &cpu) const
{
    if (!enabled() || cfg.ffInsts == 0)
        return;
    if (!makeDir(_dir)) {
        warn("checkpoint store: cannot create '%s': %s", _dir.c_str(),
             std::strerror(errno));
        return;
    }

    const std::string path = entryPath(cfg, workload);
    char pidbuf[32];
    std::snprintf(pidbuf, sizeof(pidbuf), ".tmp.%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + pidbuf;
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os) {
            warn("checkpoint store: cannot write '%s': %s", tmp.c_str(),
                 std::strerror(errno));
            return;
        }
        CheckpointWriter cw(os);
        cw.bytes(ckptMagic, 4);
        cw.str(keyString(cfg, workload));
        cpu.saveCheckpoint(cw);
        if (!cw.good()) {
            warn("checkpoint store: write to '%s' failed", tmp.c_str());
            os.close();
            std::remove(tmp.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("checkpoint store: cannot finalize '%s'", path.c_str());
        std::remove(tmp.c_str());
        return;
    }
    MetricsRegistry::instance()
        .counter("vpsim_checkpoint_saves_total",
                 "Checkpoints written by fast-forward phases")
        .inc();
}

} // namespace vpsim
