#include "sim/simulation.hh"

#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/cpu.hh"
#include "emu/memory.hh"
#include "sim/analytics.hh"
#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/perfetto_trace.hh"
#include "workloads/workload.hh"

namespace vpsim
{

namespace
{
/** Rows per table in the analytics= forensics report. */
constexpr size_t analyticsTopN = 20;
} // namespace

double
SimResult::stat(const std::string &name) const
{
    auto it = stats.find(name);
    if (it == stats.end()) {
        std::string alias = legacyStatAlias(name);
        if (!alias.empty())
            it = stats.find(alias);
    }
    if (it == stats.end())
        fatal("run of '%s' has no stat '%s'", workload.c_str(),
              name.c_str());
    return it->second;
}

SimResult
runWorkload(const SimConfig &cfg, const std::string &workload)
{
    const Workload *w = findWorkload(workload);
    if (w == nullptr)
        fatal("unknown workload '%s'", workload.c_str());
    return runWorkload(cfg, *w);
}

SimResult
runWorkload(const SimConfig &cfg, const Workload &workload)
{
    cfg.validate();
    MainMemory mem;
    Addr entry = workload.build(mem, cfg.seed);
    Cpu cpu(cfg, mem, entry);
    if (cfg.ffInsts > 0) {
        // Restore the shared post-fast-forward state if a sweep sibling
        // already produced it; otherwise fast-forward live and publish.
        CheckpointStore store(cfg.checkpointDir);
        if (!store.load(cfg, workload.name(), cpu)) {
            MetricsRegistry::instance()
                .counter("vpsim_fastforward_phases_total",
                         "Fast-forward phases executed live (no stored "
                         "checkpoint)")
                .inc();
            MetricsRegistry::instance()
                .counter("vpsim_fastforward_insts_total",
                         "Instructions emulated by live fast-forward "
                         "phases")
                .inc(cfg.ffInsts);
            cpu.fastForward(cfg.ffInsts);
            store.save(cfg, workload.name(), cpu);
        }
    }
    cpu.run();

    SimResult r;
    r.workload = workload.name();
    r.cycles = cpu.cycles();
    r.usefulInsts = cpu.usefulInsts();
    r.usefulIpc = cpu.usefulIpc();
    r.halted = cpu.haltedUsefully();
    for (const StatBase *s : cpu.stats().stats())
        r.stats[s->name()] = s->value();

    // Engine-side run accounting (registry metrics, never SimResult).
    MetricsRegistry::instance()
        .counter("vpsim_runs_total",
                 "Simulations completed (measured phase ran to its end)")
        .inc();
    MetricsRegistry::instance()
        .counter("vpsim_simulated_insts_total",
                 "Useful instructions committed across completed runs")
        .inc(r.usefulInsts);
    MetricsRegistry::instance()
        .counter("vpsim_simulated_cycles_total",
                 "Simulated cycles across completed runs")
        .inc(r.cycles);

    // Telemetry outputs that need the live Cpu (stats objects, sampler).
    if (!cfg.statsJson.empty()) {
        std::ofstream os(cfg.statsJson);
        if (!os)
            fatal("cannot open stats JSON file '%s'",
                  cfg.statsJson.c_str());
        cpu.stats().dumpJson(os);
    }
    if (!cfg.sampleFile.empty() && cpu.sampler() != nullptr)
        cpu.sampler()->dumpToFile(cfg.sampleFile);
    if (!cfg.cpiStack.empty()) {
        if (cfg.cpiStack == "-") {
            cpu.cpiStack().printReport(std::cout);
        } else {
            std::ofstream os(cfg.cpiStack);
            if (!os)
                fatal("cannot open CPI-stack report file '%s'",
                      cfg.cpiStack.c_str());
            cpu.cpiStack().printReport(os);
        }
    }
    if (!cfg.analytics.empty()) {
        if (cfg.analytics == "-") {
            writeAnalyticsReport(std::cout, cpu.analytics(),
                                 cpu.vpAttribution(), analyticsTopN);
        } else {
            std::ofstream os(cfg.analytics);
            if (!os)
                fatal("cannot open analytics report file '%s'",
                      cfg.analytics.c_str());
            writeAnalyticsReport(os, cpu.analytics(),
                                 cpu.vpAttribution(), analyticsTopN);
        }
    }
    if (!cfg.perfettoTrace.empty()) {
        std::ofstream os(cfg.perfettoTrace);
        if (!os)
            fatal("cannot open Perfetto trace file '%s'",
                  cfg.perfettoTrace.c_str());
        writeSimTrace(os, cpu.analytics(), cfg.numContexts);
    }
    if (!cfg.metricsJson.empty()) {
        // Engine-telemetry snapshot (the registry, not the sim stats);
        // written post-run so it reflects this run's contribution.
        std::ofstream os(cfg.metricsJson);
        if (!os)
            fatal("cannot open metrics JSON file '%s'",
                  cfg.metricsJson.c_str());
        MetricsRegistry::instance().writeJson(os);
    }

    return r;
}

double
percentSpeedup(const SimResult &base, const SimResult &test)
{
    vpsim_assert(base.usefulIpc > 0.0);
    return 100.0 * (test.usefulIpc / base.usefulIpc - 1.0);
}

double
geomeanSpeedup(const std::vector<double> &percentSpeedups)
{
    if (percentSpeedups.empty())
        return 0.0;
    double logSum = 0.0;
    for (double p : percentSpeedups) {
        double ratio = 1.0 + p / 100.0;
        vpsim_assert(ratio > 0.0);
        logSum += std::log(ratio);
    }
    double mean = std::exp(logSum /
                           static_cast<double>(percentSpeedups.size()));
    return 100.0 * (mean - 1.0);
}

} // namespace vpsim
