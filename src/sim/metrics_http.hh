/**
 * @file
 * Minimal embedded HTTP endpoint for live engine telemetry.
 *
 * `run_all --metrics-port N` (or MTVP_METRICS_PORT) starts one of these
 * for the lifetime of the sweep. It is deliberately tiny: a single
 * listener thread, one connection served at a time, GET-only, two
 * routes:
 *
 *   /metrics  Prometheus text exposition (version 0.0.4) of the
 *             process-wide MetricsRegistry.
 *   /jobs     JSON job table replayed from the run ledger.
 *
 * Bodies are produced by caller-supplied closures at request time, so
 * the server knows nothing about registries or ledgers. Port 0 binds an
 * ephemeral port (tests); port() reports the bound one. Loopback only —
 * this is a progress peephole, not a service.
 *
 * Entirely host-side and outside the simulated machine: whether the
 * endpoint is up has no effect on any simulation result.
 */

#ifndef VPSIM_SIM_METRICS_HTTP_HH
#define VPSIM_SIM_METRICS_HTTP_HH

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace vpsim
{

class MetricsHttpServer
{
  public:
    /** Returns the body + content type for one route. */
    using Handler = std::function<std::string()>;

    MetricsHttpServer() = default;
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start serving
     * GET /metrics via @p metricsBody and GET /jobs via @p jobsBody.
     * Returns false (with a warning) if the socket cannot be bound.
     */
    bool start(int port, Handler metricsBody, Handler jobsBody);

    /** Stop the listener and join the thread; idempotent. */
    void stop();

    bool running() const { return _fd >= 0; }

    /** The actually bound port (after start with port 0). */
    int port() const { return _port; }

  private:
    void serveLoop();

    Handler _metricsBody;
    Handler _jobsBody;
    std::thread _thread;
    std::atomic<int> _fd{-1}; ///< Listener; -1 signals the thread out.
    int _port = 0;
};

} // namespace vpsim

#endif // VPSIM_SIM_METRICS_HTTP_HH
