#include "sim/watchdog.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/run_ledger.hh"

namespace vpsim
{

namespace
{

int64_t
nowNanos()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The job-latency histogram the monitor derives its p95 from — the
 *  same series sim_pool.cc observes into (single source of truth). */
Histogram &
jobSecondsHistogram()
{
    // 1ms .. ~9.3h in 25 doubling buckets.
    return MetricsRegistry::instance().histogram(
        "vpsim_pool_job_seconds",
        "Wall-clock latency of executed simulation jobs", 0.001, 2.0,
        25);
}

/** One watched thread; registered once, reused across jobs. */
struct Slot
{
    std::mutex m;            ///< Guards the strings below.
    std::string workerLabel = "main";
    std::string jobKey;
    std::string workload;

    /** steady_clock nanos at job start; 0 = no job in flight. */
    std::atomic<int64_t> startNanos{0};
    std::atomic<bool> flagged{false};
    std::atomic<bool> dumpRequested{false};
};

thread_local Slot *tlsSlot = nullptr;
thread_local std::function<void()> *tlsProbe = nullptr;

/** Heartbeat monitor; an intentionally immortal singleton (the thread
 *  outlives static destruction, touching only leaked state). */
class Monitor
{
  public:
    static Monitor &
    instance()
    {
        // vplint:allow(global-state) immortal; all access mutexed
        static Monitor *m = new Monitor;
        return *m;
    }

    void
    setLimits(const WatchdogLimits &l)
    {
        std::lock_guard<std::mutex> lk(_m);
        _limits = l;
    }

    WatchdogLimits
    limits()
    {
        std::lock_guard<std::mutex> lk(_m);
        return _limits;
    }

    Slot &
    registerThread()
    {
        // Slots are leaked on purpose: pool workers live for the
        // process, and the monitor may scan during late teardown.
        Slot *s = new Slot;
        std::lock_guard<std::mutex> lk(_m);
        _slots.push_back(s);
        return *s;
    }

    /** Start the heartbeat thread on first watched job. */
    void
    ensureRunning()
    {
        std::lock_guard<std::mutex> lk(_m);
        if (_running)
            return;
        _running = true;
        std::thread t([this] { loop(); });
#if defined(__linux__)
        pthread_setname_np(t.native_handle(), "vp-watchdog");
#endif
        t.detach();
    }

  private:
    Monitor()
    {
        _limits = watchdogLimitsFromEnv();
    }

    void
    loop()
    {
        std::unique_lock<std::mutex> lk(_m);
        for (;;) {
            WatchdogLimits lim = _limits;
            _cv.wait_for(lk, std::chrono::duration<double>(
                                 lim.heartbeatSeconds));
            if (!lim.enabled)
                continue;
            // Snapshot the slot list; slots themselves are immortal.
            std::vector<Slot *> slots = _slots;
            lk.unlock();
            scan(lim, slots);
            lk.lock();
        }
    }

    void
    scan(const WatchdogLimits &lim, const std::vector<Slot *> &slots)
    {
        Histogram &h = jobSecondsHistogram();
        double threshold = lim.minSeconds;
        // The percentile term needs history to mean anything; with a
        // handful of completed jobs the absolute floor governs alone.
        if (h.count() >= 8) {
            double p95 = h.quantile(0.95);
            if (p95 > 0.0) {
                threshold = std::max(threshold,
                                     lim.percentileMultiple * p95);
            }
        }
        for (Slot *s : slots) {
            int64_t start = s->startNanos.load(std::memory_order_acquire);
            if (start == 0 || s->flagged.load(std::memory_order_relaxed))
                continue;
            double elapsed =
                static_cast<double>(nowNanos() - start) * 1e-9;
            if (elapsed <= threshold)
                continue;
            s->flagged.store(true, std::memory_order_relaxed);

            std::string worker, jobKey, workload;
            {
                std::lock_guard<std::mutex> slk(s->m);
                worker = s->workerLabel;
                jobKey = s->jobKey;
                workload = s->workload;
            }
            warn("watchdog: job %s (%s) on %s running %.1fs "
                 "(threshold %.1fs = max(%.1fs floor, %.1fx p95)); "
                 "requesting pipeline/profiler dump — run continues",
                 jobKey.c_str(), workload.c_str(), worker.c_str(),
                 elapsed, threshold, lim.minSeconds,
                 lim.percentileMultiple);
            MetricsRegistry::instance()
                .counter("vpsim_watchdog_flagged_total",
                         "Jobs flagged as suspiciously slow by the "
                         "stuck-job watchdog")
                .inc();
            LedgerEvent e;
            e.kind = LedgerEventKind::Stuck;
            e.job = jobKey;
            e.workload = workload;
            e.worker = worker;
            e.outcome = "slow";
            e.wallSeconds = elapsed;
            RunLedger::global().record(std::move(e));
            s->dumpRequested.store(true, std::memory_order_release);
        }
    }

    std::mutex _m;
    std::condition_variable _cv;
    WatchdogLimits _limits;
    std::vector<Slot *> _slots;
    bool _running = false;
};

} // namespace

WatchdogLimits
watchdogLimitsFromEnv()
{
    WatchdogLimits l;
    if (const char *v = std::getenv("MTVP_WATCHDOG");
        v != nullptr && *v != '\0') {
        l.enabled = std::strtoull(v, nullptr, 0) != 0;
    }
    if (const char *v = std::getenv("MTVP_WATCHDOG_MIN_SECS");
        v != nullptr && *v != '\0') {
        double d = std::strtod(v, nullptr);
        if (d > 0.0)
            l.minSeconds = d;
    }
    if (const char *v = std::getenv("MTVP_WATCHDOG_MULT");
        v != nullptr && *v != '\0') {
        double d = std::strtod(v, nullptr);
        if (d > 0.0)
            l.percentileMultiple = d;
    }
    return l;
}

void
watchdogSetLimits(const WatchdogLimits &limits)
{
    Monitor::instance().setLimits(limits);
}

WatchdogJobScope::WatchdogJobScope(const std::string &jobKey,
                                   const std::string &workload)
{
    Monitor &mon = Monitor::instance();
    if (tlsSlot == nullptr)
        tlsSlot = &mon.registerThread();
    {
        std::lock_guard<std::mutex> lk(tlsSlot->m);
        tlsSlot->jobKey = jobKey;
        tlsSlot->workload = workload;
    }
    tlsSlot->flagged.store(false, std::memory_order_relaxed);
    tlsSlot->dumpRequested.store(false, std::memory_order_relaxed);
    tlsSlot->startNanos.store(nowNanos(), std::memory_order_release);
    if (mon.limits().enabled)
        mon.ensureRunning();
}

WatchdogJobScope::~WatchdogJobScope()
{
    tlsSlot->startNanos.store(0, std::memory_order_release);
    tlsSlot->dumpRequested.store(false, std::memory_order_relaxed);
}

WatchdogProbe::WatchdogProbe(std::function<void()> dump)
    : _prev(tlsProbe)
{
    // Nested probes (fastForward inside run) stack by replacement:
    // the innermost phase owns the dump until it unwinds, then the
    // outer probe takes over again.
    tlsProbe = new std::function<void()>(std::move(dump));
}

WatchdogProbe::~WatchdogProbe()
{
    delete tlsProbe;
    tlsProbe = _prev;
}

void
watchdogPoll()
{
    if (tlsSlot == nullptr ||
        !tlsSlot->dumpRequested.load(std::memory_order_relaxed)) {
        return;
    }
    if (!tlsSlot->dumpRequested.exchange(false,
                                         std::memory_order_acq_rel)) {
        return;
    }
    warn("watchdog: diagnostic dump of the flagged job follows");
    if (tlsProbe != nullptr && *tlsProbe)
        (*tlsProbe)();
    else
        warn("watchdog: no probe registered for this job phase");
}

uint64_t
watchdogFlaggedTotal()
{
    return MetricsRegistry::instance()
        .counter("vpsim_watchdog_flagged_total",
                 "Jobs flagged as suspiciously slow by the stuck-job "
                 "watchdog")
        .value();
}

} // namespace vpsim
