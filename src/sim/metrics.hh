/**
 * @file
 * Process-wide experiment-engine metrics registry.
 *
 * The simulator's StatGroup stats describe *simulated* behaviour and
 * are part of every result (and of the cache key schema). This registry
 * is the opposite: host-side telemetry of the experiment engine itself
 * — SimPool queue depth and job latency, result-cache hit rates,
 * checkpoint-store traffic, watchdog flags — that must never influence
 * a SimResult. Nothing in here touches simulated state, so telemetry
 * can be turned on or off without perturbing a single stat bit.
 *
 * Three metric kinds, Prometheus-flavoured:
 *
 *  - Counter:   monotonically increasing uint64 (events, totals).
 *  - Gauge:     instantaneous int64 (queue depth, in-flight jobs).
 *  - Histogram: fixed exponential buckets (per-job latency). Buckets
 *    are chosen at registration (first upper bound, growth factor,
 *    bucket count) and never resize, so observe() is lock-free.
 *
 * Metrics are identified by (name, label set) and registered on first
 * use; re-registration returns the same object, so instrumentation
 * sites simply ask the registry every time. All mutation is relaxed
 * atomics — instrumented code paths are per-job or per-phase, never
 * per-cycle, and the exposition side only ever snapshots.
 *
 * Exposition: writePrometheus() emits the text format (version 0.0.4,
 * HELP/TYPE headers, escaped label values, cumulative `_bucket{le=}`
 * series with `_sum`/`_count`), writeJson() an equivalent JSON
 * document for tooling. Both are deterministic: families sort by name,
 * series by label string.
 */

#ifndef VPSIM_SIM_METRICS_HH
#define VPSIM_SIM_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vpsim
{

/** Label set of one metric series ({{"worker", "simpool/3"}, ...}). */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { _v.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return _v.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> _v{0};
};

/** Instantaneous level (queue depth, in-flight jobs). */
class Gauge
{
  public:
    void set(int64_t v) { _v.store(v, std::memory_order_relaxed); }
    void add(int64_t n) { _v.fetch_add(n, std::memory_order_relaxed); }
    void sub(int64_t n) { _v.fetch_sub(n, std::memory_order_relaxed); }
    int64_t value() const { return _v.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> _v{0};
};

/**
 * Fixed-exponential-bucket histogram: upper bounds
 * firstBound * growth^i for i in [0, bucketCount), plus +Inf.
 */
class Histogram
{
  public:
    Histogram(double firstBound, double growth, int bucketCount);

    void observe(double v);

    uint64_t count() const { return _count.load(std::memory_order_relaxed); }
    double sum() const;

    /** Upper bounds (excluding +Inf). */
    const std::vector<double> &bounds() const { return _bounds; }

    /** Per-bucket non-cumulative counts; index bounds().size() = +Inf. */
    uint64_t bucketCount(size_t i) const
    {
        return _buckets[i].load(std::memory_order_relaxed);
    }

    /**
     * Upper bound of the bucket containing the q-quantile observation
     * (a conservative overestimate, as precise as the bucket grid).
     * Returns 0 when empty; observations above every bound report the
     * largest finite bound.
     */
    double quantile(double q) const;

  private:
    std::vector<double> _bounds;
    std::unique_ptr<std::atomic<uint64_t>[]> _buckets;
    std::atomic<uint64_t> _count{0};
    std::atomic<double> _sum{0.0};
};

/**
 * Registry of named metric families; see the file comment. One
 * process-wide instance() plus constructible instances for tests.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry every engine layer instruments. */
    static MetricsRegistry &instance();

    /** Register-or-find; panic()s if @p name exists with another kind
     *  (one family, one type — the Prometheus contract). */
    Counter &counter(const std::string &name, const std::string &help,
                     const MetricLabels &labels = {});
    Gauge &gauge(const std::string &name, const std::string &help,
                 const MetricLabels &labels = {});
    Histogram &histogram(const std::string &name, const std::string &help,
                         double firstBound, double growth, int bucketCount,
                         const MetricLabels &labels = {});

    /** Prometheus text exposition format 0.0.4. */
    void writePrometheus(std::ostream &os) const;
    std::string prometheusText() const;

    /** Equivalent JSON document (parseable by sim/json.hh). */
    void writeJson(std::ostream &os) const;
    std::string jsonText() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Family
    {
        Kind kind = Kind::Counter;
        std::string help;
        /** Canonical label string -> series. Exactly one of the
         *  pointers is non-null per the family's kind. */
        struct Series
        {
            MetricLabels labels;
            std::unique_ptr<Counter> counter;
            std::unique_ptr<Gauge> gauge;
            std::unique_ptr<Histogram> histogram;
        };
        std::map<std::string, Series> series;
    };

    Family::Series &findOrMake(const std::string &name,
                               const std::string &help, Kind kind,
                               const MetricLabels &labels);

    mutable std::mutex _m;
    std::map<std::string, Family> _families;
};

/** `{key="escaped value",...}` rendering of @p labels ("" if empty). */
std::string metricLabelString(const MetricLabels &labels);

/** Prometheus label-value escaping (backslash, quote, newline). */
std::string escapeMetricLabelValue(const std::string &v);

} // namespace vpsim

#endif // VPSIM_SIM_METRICS_HH
