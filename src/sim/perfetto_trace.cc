#include "sim/perfetto_trace.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "sim/analytics.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace vpsim
{

void
PerfettoTrace::setProcessName(int pid, const std::string &name)
{
    _events.push_back({'M', pid, 0, 0.0, 0.0, "process_name",
                       {{"name", name}}});
}

void
PerfettoTrace::setThreadName(int pid, int tid, const std::string &name)
{
    _events.push_back({'M', pid, tid, 0.0, 0.0, "thread_name",
                       {{"name", name}}});
}

void
PerfettoTrace::addSpan(int pid, int tid, const std::string &name,
                       double tsUs, double durUs, Args args)
{
    _events.push_back({'X', pid, tid, tsUs, durUs, name,
                       std::move(args)});
}

void
PerfettoTrace::addInstant(int pid, int tid, const std::string &name,
                          double tsUs, Args args)
{
    _events.push_back({'i', pid, tid, tsUs, 0.0, name,
                       std::move(args)});
}

void
PerfettoTrace::write(std::ostream &os) const
{
    os << "{\"traceEvents\": [";
    bool first = true;
    for (const Event &e : _events) {
        os << (first ? "\n" : ",\n") << "  {\"ph\": \"" << e.phase
           << "\", \"pid\": " << e.pid << ", \"tid\": " << e.tid;
        if (e.phase != 'M') {
            os << ", \"ts\": ";
            jsonNumber(os, e.ts);
        }
        if (e.phase == 'X') {
            os << ", \"dur\": ";
            jsonNumber(os, e.dur);
        }
        if (e.phase == 'i')
            os << ", \"s\": \"t\"";
        os << ", \"name\": ";
        jsonQuote(os, e.name);
        if (!e.args.empty()) {
            os << ", \"args\": {";
            bool firstArg = true;
            for (const auto &[k, v] : e.args) {
                if (!firstArg)
                    os << ", ";
                firstArg = false;
                jsonQuote(os, k);
                os << ": ";
                jsonQuote(os, v);
            }
            os << "}";
        }
        os << "}";
        first = false;
    }
    os << "\n]}\n";
}

void
writeSimTrace(std::ostream &os, const Analytics &an, int numContexts)
{
    PerfettoTrace t;
    t.setProcessName(0, "vpsim (simulated cycles)");
    for (int c = 0; c < numContexts; ++c)
        t.setThreadName(0, c, csprintf("ctx %d", c));
    t.setThreadName(0, numContexts, "time-skip");
    for (const Analytics::SpawnSpan &s : an.spawnSpans()) {
        t.addSpan(0, s.ctx, csprintf("spawn %#llx",
                                     static_cast<unsigned long long>(
                                         s.pc)),
                  static_cast<double>(s.start),
                  static_cast<double>(s.end - s.start),
                  {{"outcome", spawnOutcomeName(s.outcome)},
                   {"id", csprintf("%llu",
                                   static_cast<unsigned long long>(
                                       s.id))},
                   {"insts", csprintf("%llu",
                                      static_cast<unsigned long long>(
                                          s.insts))}});
    }
    for (const Analytics::SquashWindow &w : an.squashWindowLog()) {
        t.addInstant(0, w.ctx, csprintf("squash(%s)", w.why),
                     static_cast<double>(w.at),
                     {{"insts",
                       csprintf("%llu", static_cast<unsigned long long>(
                                            w.insts))}});
    }
    for (const Analytics::SkipJump &j : an.skipJumps()) {
        t.addSpan(0, numContexts, "time-skip",
                  static_cast<double>(j.from),
                  static_cast<double>(j.to - j.from));
    }
    const HostTraceRecorder &host = HostTraceRecorder::instance();
    if (host.anyEvents())
        host.appendTo(t);
    t.write(os);
}

// ---------------------------------------------------------------------
// Host-time recorder
// ---------------------------------------------------------------------

namespace
{

/** Monotonic host nanoseconds (this file is the sanctioned wallclock
 *  consumer for host-side tracks; see the vplint allowlist). */
uint64_t
hostNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Per-thread worker track id, assigned lazily on first span.
 *  vplint:allow(global-state) thread_local by construction */
thread_local int tlsWorkerTid = 0;

constexpr int cacheTrackTid = 999;

} // namespace

HostTraceRecorder &
HostTraceRecorder::instance()
{
    // Singleton shared by every SimPool worker; all mutable state
    // vplint:allow(global-state) behind _mu, construction thread-safe
    static HostTraceRecorder rec;
    return rec;
}

HostTraceRecorder::HostTraceRecorder()
{
    const char *path = std::getenv("MTVP_PERFETTO");
    if (path != nullptr && path[0] != '\0') {
        _enabled = true;
        _path = path;
        _originNs = hostNowNs();
    }
}

bool
HostTraceRecorder::anyEvents() const
{
    std::lock_guard<std::mutex> lk(_mu);
    return !_events.empty();
}

int
HostTraceRecorder::workerTid()
{
    if (tlsWorkerTid == 0) {
        std::lock_guard<std::mutex> lk(_mu);
        tlsWorkerTid = _nextWorker++;
    }
    return tlsWorkerTid;
}

HostTraceRecorder::JobScope::JobScope(const std::string &label)
    : _active(HostTraceRecorder::instance().enabled())
{
    if (!_active)
        return;
    HostTraceRecorder &rec = HostTraceRecorder::instance();
    _tid = rec.workerTid();
    _t0 = hostNowNs();
    _label = label;
}

HostTraceRecorder::JobScope::~JobScope()
{
    if (!_active)
        return;
    HostTraceRecorder &rec = HostTraceRecorder::instance();
    uint64_t t1 = hostNowNs();
    std::lock_guard<std::mutex> lk(rec._mu);
    rec._events.push_back(
        {true, _tid,
         static_cast<double>(_t0 - rec._originNs) / 1e3,
         static_cast<double>(t1 - _t0) / 1e3, _label});
}

void
HostTraceRecorder::recordCacheHit(const std::string &label)
{
    if (!_enabled)
        return;
    uint64_t now = hostNowNs();
    std::lock_guard<std::mutex> lk(_mu);
    _events.push_back({false, cacheTrackTid,
                       static_cast<double>(now - _originNs) / 1e3, 0.0,
                       csprintf("cache-hit %s", label.c_str())});
}

void
HostTraceRecorder::appendTo(PerfettoTrace &out) const
{
    std::lock_guard<std::mutex> lk(_mu);
    out.setProcessName(1, "host (SimPool workers)");
    int maxWorker = _nextWorker;
    for (int w = 1; w < maxWorker; ++w)
        out.setThreadName(1, w, csprintf("worker %d", w));
    out.setThreadName(1, cacheTrackTid, "result cache");
    for (const HostEvent &e : _events) {
        if (e.span)
            out.addSpan(1, e.tid, e.name, e.tsUs, e.durUs);
        else
            out.addInstant(1, e.tid, e.name, e.tsUs);
    }
}

HostTraceRecorder::~HostTraceRecorder()
{
    if (!_enabled || _events.empty())
        return;
    PerfettoTrace t;
    appendTo(t);
    std::ofstream os(_path);
    if (os)
        t.write(os);
}

} // namespace vpsim
