/**
 * @file
 * Per-hardware-thread CPI-stack cycle accounting in the gem5/top-down
 * style. Every simulated cycle, every context is attributed to exactly
 * one slot — committing (base), blocked on a memory level, squash
 * recovery, a full shared structure, fetch starvation, MTVP spawn
 * overhead, or inactive — so per-thread slot counts sum *exactly* to
 * total cycles. That invariant is what makes the stack trustworthy:
 * there are no unaccounted cycles, and a refactor that shifts time
 * between categories shows up as a reshaped stack, not a silent drift.
 *
 * The Cpu performs the attribution once per tick (Cpu::accountCpiCycle,
 * core/cpu.cc) from commit's point of view: a cycle with a commit is
 * base; otherwise the blocking reason of the ROB head (or the empty
 * front end) is charged. Counts are exported as `cpi.t<ctx>.<slot>`
 * stats plus `cpi.all.<slot>` aggregates on the Cpu's StatGroup, so
 * they flow through SimResult, statsJson=, and the stat sampler like
 * any other statistic.
 */

#ifndef VPSIM_SIM_CPI_STACK_HH
#define VPSIM_SIM_CPI_STACK_HH

#include <memory>
#include <ostream>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

/** Where one context's cycle went (exactly one slot per cycle). */
enum class CpiSlot : unsigned
{
    Base,          ///< Committed, or intrinsic execute/commit latency.
    IcacheMiss,    ///< Front end stalled on an instruction-cache fill.
    DcacheL1,      ///< Head load in flight, serviced by L1/store buffer.
    DcacheL2,      ///< Head load in flight, serviced by the L2.
    DcacheL3,      ///< Head load in flight, serviced by the L3.
    DcacheMem,     ///< Head load in flight, serviced by memory/prefetch.
    BranchSquash,  ///< Redirect pending on a mispredicted control inst.
    VpSquash,      ///< Head reissued by a value-misprediction recovery.
    WindowFull,    ///< Dispatch blocked: ROB or rename registers full.
    IqFull,        ///< Dispatch blocked: int/FP issue queue full.
    LsqFull,       ///< Dispatch blocked on MQ, or commit on store buffer.
    FetchStarved,  ///< Front end delivered nothing dispatchable.
    SpawnOverhead, ///< Spawn latency, SFP parent stall, child warm-up.
    Idle,          ///< Context inactive this cycle.
    NumSlots,
};

inline constexpr unsigned numCpiSlots =
    static_cast<unsigned>(CpiSlot::NumSlots);

/** Canonical slot name used in stat names ("base", "dcacheMem", ...). */
const char *cpiSlotName(CpiSlot s);

/** One-line description of a slot (stat descriptions, reports). */
const char *cpiSlotDesc(CpiSlot s);

/**
 * The per-context slot counters plus their stat bindings. Attribution
 * itself lives in the Cpu (it needs pipeline state); this class owns
 * storage, stat registration, the sum-to-cycles accessors, and the
 * human-readable report.
 */
class CpiStack
{
  public:
    /** Register `cpi.t<i>.*` and `cpi.all.*` stats on @p stats. */
    CpiStack(StatGroup &stats, int numContexts);

    CpiStack(const CpiStack &) = delete;
    CpiStack &operator=(const CpiStack &) = delete;

    /** Charge one cycle of @p ctx to @p slot (hot path: one add). */
    void
    attribute(CtxId ctx, CpiSlot slot)
    {
        ++_counts[static_cast<size_t>(ctx) * numCpiSlots +
                  static_cast<unsigned>(slot)];
    }

    /** Charge @p n cycles of @p ctx to @p slot in one add. The time-
     *  skip engine's bulk path: equivalent to n single-cycle calls,
     *  which keeps the sum-to-cycles invariant exact across skips. */
    void
    attribute(CtxId ctx, CpiSlot slot, uint64_t n)
    {
        _counts[static_cast<size_t>(ctx) * numCpiSlots +
                static_cast<unsigned>(slot)] += n;
    }

    int numContexts() const { return _numContexts; }
    uint64_t count(CtxId ctx, CpiSlot slot) const;
    /** Sum over every slot for @p ctx — equals cycles by construction. */
    uint64_t total(CtxId ctx) const;
    /** Sum of @p slot over every context. */
    uint64_t slotTotal(CpiSlot slot) const;

    /** Per-context stacked breakdown with percentages. */
    void printReport(std::ostream &os) const;

  private:
    int _numContexts;
    std::vector<uint64_t> _counts; ///< [ctx * numCpiSlots + slot]
    std::vector<std::unique_ptr<Formula>> _formulas;
};

} // namespace vpsim

#endif // VPSIM_SIM_CPI_STACK_HH
