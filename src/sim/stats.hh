/**
 * @file
 * A small gem5-flavoured statistics package. Statistics register
 * themselves with a StatGroup at construction; groups can be dumped,
 * reset, and queried by name (the test suite and bench harnesses read
 * stats by name rather than poking simulator internals).
 */

#ifndef VPSIM_SIM_STATS_HH
#define VPSIM_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace vpsim
{

class StatGroup;

/** Base class for all statistics: a name, a description, and a value. */
class StatBase
{
  public:
    StatBase(StatGroup &parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Current value as a double (formulas evaluate lazily). */
    virtual double value() const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Print one line in "name value # desc" format. */
    virtual void print(std::ostream &os) const;

    /** Emit this stat's JSON object ({"value": ..., "desc": ...});
     *  Distribution adds its buckets. */
    virtual void printJson(std::ostream &os) const;

  private:
    std::string _name;
    std::string _desc;
};

/** A simple 64-bit event counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator++() { ++_count; return *this; }
    Scalar &operator+=(uint64_t n) { _count += n; return *this; }

    uint64_t count() const { return _count; }
    double value() const override { return static_cast<double>(_count); }
    void reset() override { _count = 0; }

  private:
    uint64_t _count = 0;
};

/** Running average of samples (mean of sample(x) calls). */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double x) { _sum += x; ++_n; }

    uint64_t samples() const { return _n; }
    double value() const override { return _n ? _sum / _n : 0.0; }
    void reset() override { _sum = 0.0; _n = 0; }

  private:
    double _sum = 0.0;
    uint64_t _n = 0;
};

/**
 * A bucketed histogram over [min, max) plus underflow/overflow, with
 * mean tracking. value() is the mean; buckets print on dump.
 */
class Distribution : public StatBase
{
  public:
    Distribution(StatGroup &parent, std::string name, std::string desc,
                 double min, double max, int buckets);

    void sample(double x);

    uint64_t samples() const { return _n; }
    double value() const override { return _n ? _sum / _n : 0.0; }
    double minSample() const { return _min; }
    double maxSample() const { return _max; }
    double bucketLow() const { return _lo; }
    double bucketHigh() const { return _hi; }
    double bucketSize() const { return _bucketSize; }
    const std::vector<uint64_t> &buckets() const { return _counts; }
    void reset() override;
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;

  private:
    double _lo;
    double _hi;
    double _bucketSize;
    std::vector<uint64_t> _counts; // [under, b0..bN-1, over]
    uint64_t _n = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** A derived statistic computed on demand from other stats. */
class Formula : public StatBase
{
  public:
    Formula(StatGroup &parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const override { return _fn(); }
    void reset() override {}

  private:
    std::function<double()> _fn;
};

/**
 * Owner of a set of statistics. Subsystems embed a StatGroup (or accept a
 * parent group) and declare their stats as members.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "");

    /** Called by StatBase's constructor. */
    void registerStat(StatBase *stat);

    /** Find a stat by exact name; nullptr if absent. */
    const StatBase *find(const std::string &name) const;

    /** Value of a named stat; fatal() if it does not exist. */
    double get(const std::string &name) const;

    /** Dump all stats in registration order. */
    void dump(std::ostream &os) const;

    /** Dump every stat as one JSON document (Distribution buckets
     *  included); values match what dump() reports. */
    void dumpJson(std::ostream &os) const;

    /** Reset every registered stat. */
    void resetAll();

    const std::string &name() const { return _name; }
    const std::vector<StatBase *> &stats() const { return _stats; }

  private:
    std::string _name;
    std::vector<StatBase *> _stats;
    /** name -> index into _stats, so by-name reads are O(1). */
    std::unordered_map<std::string, size_t> _index;
};

/** Map a retired stat spelling to its current name, or "" when the
 *  name has no legacy form. Currently one family: the pre-v4
 *  single-digit per-thread CPI names ("cpi.t3.base" → "cpi.t03.base",
 *  zero-padded since contexts can reach 64). StatGroup lookups and
 *  SimResult::stat() accept the old spelling through this, so
 *  existing tests and scripts keep working; dumps and the manifest
 *  always use the new names. */
std::string legacyStatAlias(const std::string &name);

/** Write @p s as a quoted, escaped JSON string. */
void jsonQuote(std::ostream &os, const std::string &s);

/** Write @p v as a JSON number (integers without a fraction, full
 *  precision otherwise, non-finite values as null). */
void jsonNumber(std::ostream &os, double v);

/** Round @p v to @p digits significant decimal digits. Host-time
 *  measurements (wall seconds, profiler milliseconds) go through this
 *  before JSON output so reports diff cleanly instead of churning
 *  17-digit noise. */
double roundSig(double v, int digits);

} // namespace vpsim

#endif // VPSIM_SIM_STATS_HH
