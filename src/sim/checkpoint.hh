/**
 * @file
 * Persistent on-disk store of fast-forward checkpoints.
 *
 * A checkpoint captures the pristine post-fast-forward machine: the
 * architectural state and memory image after ffInsts emulated
 * instructions, plus the warm microarchitectural tables (cache tags,
 * branch predictor, BTB, RAS, value predictor) the fast-forward built.
 * Entries are keyed by SimConfig::warmupKey() + workload + ffInsts —
 * deliberately *not* the full canonicalKey() — so an entire sweep
 * (baseline vs STVP vs MTVP, different pipeline widths, ...) shares one
 * fast-forward instead of each point re-emulating the same prefix.
 *
 * Files live beside the result cache (same bench-cache/ directory by
 * default), named by the FNV-1a hash of the key string; the key string
 * is stored in the header and verified on load so a hash collision
 * degrades to a miss, never a wrong restore. Writes go through a
 * pid-tagged temp file + atomic rename, and loads read the whole file
 * into memory before touching any simulator state, so concurrent
 * writers/evictors can never yield a torn restore.
 */

#ifndef VPSIM_SIM_CHECKPOINT_HH
#define VPSIM_SIM_CHECKPOINT_HH

#include <string>

#include "sim/config.hh"

namespace vpsim
{

class Cpu;

/** On-disk fast-forward checkpoint store; see the file comment. */
class CheckpointStore
{
  public:
    /** Store rooted at @p dir (created on first save; empty string
     *  disables the store — loads miss, saves are dropped). */
    explicit CheckpointStore(std::string dir);

    const std::string &dir() const { return _dir; }
    bool enabled() const { return !_dir.empty(); }

    /** The canonical key string of one checkpoint identity. */
    static std::string keyString(const SimConfig &cfg,
                                 const std::string &workload);

    /** Path of the entry file for one identity (tests/tooling). */
    std::string entryPath(const SimConfig &cfg,
                          const std::string &workload) const;

    /**
     * Restore the checkpoint for @p cfg x @p workload into @p cpu.
     * Returns false on a miss (absent/truncated/mismatched file), in
     * which case @p cpu is untouched; the caller then fast-forwards
     * live. The cpu must be freshly constructed.
     */
    bool load(const SimConfig &cfg, const std::string &workload,
              Cpu &cpu) const;

    /** Persist @p cpu's post-fast-forward state (atomic rename). */
    void save(const SimConfig &cfg, const std::string &workload,
              Cpu &cpu) const;

  private:
    std::string _dir;
};

} // namespace vpsim

#endif // VPSIM_SIM_CHECKPOINT_HH
