/**
 * @file
 * A minimal JSON reader for the simulator's own machine-readable
 * outputs (stats dumps, bench row fragments, scoreboard expectations).
 * It parses the subset the repo emits — objects, arrays, strings,
 * finite numbers, booleans, and null — into an immutable value tree.
 * This is a tooling-side reader, not a general-purpose JSON library:
 * inputs are trusted files the simulator or a developer wrote.
 */

#ifndef VPSIM_SIM_JSON_HH
#define VPSIM_SIM_JSON_HH

#include <map>
#include <string>
#include <vector>

namespace vpsim
{

namespace json
{

/** One parsed JSON value. Exactly one member is meaningful per kind. */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::map<std::string, Value> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member or nullptr (also nullptr on non-objects). */
    const Value *get(const std::string &key) const;

    /** Member's number, or @p def when absent/not a number. */
    double numberOr(const std::string &key, double def) const;

    /** Member's string, or @p def when absent/not a string. */
    std::string stringOr(const std::string &key,
                         const std::string &def) const;
};

/**
 * Parse @p text into @p out. Returns true on success; on failure
 * returns false and, when @p error is non-null, describes the first
 * problem (with character offset).
 */
bool parse(const std::string &text, Value &out,
           std::string *error = nullptr);

/** Parse the file at @p path; false on unreadable file or bad JSON. */
bool parseFile(const std::string &path, Value &out,
               std::string *error = nullptr);

} // namespace json

} // namespace vpsim

#endif // VPSIM_SIM_JSON_HH
