#include "sim/trace.hh"

#include <cctype>
#include <cstdarg>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace vpsim
{

namespace trace
{

namespace detail
{
thread_local uint32_t activeMask = 0;
thread_local CtxId curCtx = invalidCtx;
} // namespace detail

namespace
{

const char *const flagNames[numFlags] = {
    "Fetch", "Dispatch", "Issue",  "Commit",
    "VPred", "MTVP",     "Cache",  "StoreBuffer",
};

// All tracer state is thread-local (one simulation per thread); a pool
// worker inherits whatever its previous job set, and every Cpu ctor
// re-applies its own config, so jobs never observe each other.
thread_local uint32_t requestedMask_ = 0;
thread_local Cycle winStart_ = 0;
thread_local Cycle winEnd_ = 0; // 0 = no end
thread_local Cycle cycle_ = 0;
thread_local std::FILE *out_ = nullptr; // nullptr = stderr
thread_local std::string outPath_;

std::FILE *
sink()
{
    return out_ != nullptr ? out_ : stderr;
}

void
applyWindow()
{
    bool inWindow = cycle_ >= winStart_ && (winEnd_ == 0 ||
                                            cycle_ < winEnd_);
    detail::activeMask = inWindow ? requestedMask_ : 0;
}

} // namespace

const char *
flagName(Flag f)
{
    vpsim_assert(f < Flag::NumFlags);
    return flagNames[static_cast<unsigned>(f)];
}

bool
globMatch(const std::string &pattern, const std::string &name)
{
    // Iterative glob with single-star backtracking; case-insensitive.
    size_t p = 0, n = 0;
    size_t starP = std::string::npos, starN = 0;
    auto lower = [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    };
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || lower(pattern[p]) == lower(name[n]))) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starN = n;
        } else if (starP != std::string::npos) {
            p = starP + 1;
            n = ++starN;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

void
setFlags(const std::string &spec)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding spaces.
        size_t b = tok.find_first_not_of(" \t");
        size_t e = tok.find_last_not_of(" \t");
        tok = b == std::string::npos ? "" : tok.substr(b, e - b + 1);
        if (tok.empty())
            continue;
        uint32_t matched = 0;
        for (unsigned f = 0; f < numFlags; ++f) {
            if (globMatch(tok, flagNames[f]))
                matched |= 1u << f;
        }
        if (matched == 0)
            fatal("unknown trace flag '%s'", tok.c_str());
        mask |= matched;
    }
    requestedMask_ = mask;
    applyWindow();
}

uint32_t
requestedMask()
{
    return requestedMask_;
}

void
setWindow(Cycle start, Cycle end)
{
    winStart_ = start;
    winEnd_ = end;
    applyWindow();
}

void
setCycle(Cycle now)
{
    cycle_ = now;
    applyWindow();
}

Cycle
currentCycle()
{
    return cycle_;
}

void
setOutputFile(const std::string &path)
{
    if (path == outPath_ && (out_ != nullptr || path.empty()))
        return;
    if (out_ != nullptr) {
        std::fclose(out_);
        out_ = nullptr;
    }
    outPath_ = path;
    if (path.empty())
        return;
    out_ = std::fopen(path.c_str(), "w");
    if (out_ == nullptr)
        fatal("cannot open trace file '%s'", path.c_str());
}

void
reset()
{
    requestedMask_ = 0;
    winStart_ = 0;
    winEnd_ = 0;
    cycle_ = 0;
    detail::curCtx = invalidCtx;
    setOutputFile("");
    applyWindow();
}

void
print(Flag f, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vcsprintf(fmt, ap);
    va_end(ap);
    if (detail::curCtx != invalidCtx) {
        std::fprintf(sink(), "%llu: t%d: %s: %s\n",
                     static_cast<unsigned long long>(cycle_),
                     detail::curCtx, flagName(f), msg.c_str());
    } else {
        std::fprintf(sink(), "%llu: %s: %s\n",
                     static_cast<unsigned long long>(cycle_), flagName(f),
                     msg.c_str());
    }
}

// ---------------------------------------------------------------------
// InstTracer
// ---------------------------------------------------------------------

InstTracer::InstTracer(const std::string &path)
    : _out(std::fopen(path.c_str(), "w"))
{
    if (_out == nullptr)
        fatal("cannot open pipeline trace file '%s'", path.c_str());
}

InstTracer::~InstTracer()
{
    if (_out != nullptr)
        std::fclose(_out);
}

std::string
InstTracer::format(const InstTraceRecord &r)
{
    // The gem5 O3PipeView line set (Konata-compatible). Timestamps are
    // cycles; a retire of 0 marks a squashed instruction.
    return csprintf("O3PipeView:fetch:%llu:0x%08llx:0:%llu:%s\n"
                    "O3PipeView:decode:%llu\n"
                    "O3PipeView:rename:%llu\n"
                    "O3PipeView:dispatch:%llu\n"
                    "O3PipeView:issue:%llu\n"
                    "O3PipeView:complete:%llu\n"
                    "O3PipeView:retire:%llu:store:0\n",
                    static_cast<unsigned long long>(r.fetch),
                    static_cast<unsigned long long>(r.pc),
                    static_cast<unsigned long long>(r.seq),
                    r.disasm.c_str(),
                    static_cast<unsigned long long>(r.decode),
                    static_cast<unsigned long long>(r.decode),
                    static_cast<unsigned long long>(r.dispatch),
                    static_cast<unsigned long long>(r.issue),
                    static_cast<unsigned long long>(r.complete),
                    static_cast<unsigned long long>(r.retire));
}

void
InstTracer::record(const InstTraceRecord &r)
{
    std::string s = format(r);
    std::fwrite(s.data(), 1, s.size(), _out);
    ++_recorded;
}

// ---------------------------------------------------------------------
// StatSampler
// ---------------------------------------------------------------------

StatSampler::StatSampler(const StatGroup &group, const std::string &spec,
                         Cycle period)
    : _period(period), _next(period)
{
    if (period == 0)
        fatal("StatSampler period must be > 0");
    std::vector<std::string> pats;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        size_t b = tok.find_first_not_of(" \t");
        size_t e = tok.find_last_not_of(" \t");
        if (b != std::string::npos)
            pats.push_back(tok.substr(b, e - b + 1));
    }
    if (pats.empty())
        pats.push_back("*");
    std::vector<bool> used(pats.size(), false);
    for (const StatBase *s : group.stats()) {
        for (size_t i = 0; i < pats.size(); ++i) {
            if (globMatch(pats[i], s->name())) {
                used[i] = true;
                _tracked.push_back(s);
                _names.push_back(s->name());
                break;
            }
        }
    }
    for (size_t i = 0; i < pats.size(); ++i) {
        if (!used[i])
            fatal("sampleStats pattern '%s' matches no stat",
                  pats[i].c_str());
    }
}

void
StatSampler::takeSample(Cycle now)
{
    _cycles.push_back(now);
    for (const StatBase *s : _tracked)
        _values.push_back(s->value());
    // One sample per crossing, even if ticks ever skip cycles.
    while (_next <= now)
        _next += _period;
}

double
StatSampler::valueAt(size_t sample, size_t stat) const
{
    vpsim_assert(sample < _cycles.size() && stat < _tracked.size());
    return _values[sample * _tracked.size() + stat];
}

void
StatSampler::dumpCsv(std::ostream &os) const
{
    os << "cycle";
    for (const std::string &n : _names)
        os << ',' << n;
    os << '\n';
    for (size_t r = 0; r < _cycles.size(); ++r) {
        os << _cycles[r];
        for (size_t c = 0; c < _tracked.size(); ++c) {
            os << ',';
            jsonNumber(os, _values[r * _tracked.size() + c]);
        }
        os << '\n';
    }
}

void
StatSampler::dumpJson(std::ostream &os) const
{
    os << "{\n  \"period\": " << _period << ",\n  \"stats\": [";
    for (size_t i = 0; i < _names.size(); ++i) {
        if (i > 0)
            os << ", ";
        jsonQuote(os, _names[i]);
    }
    os << "],\n  \"samples\": [";
    for (size_t r = 0; r < _cycles.size(); ++r) {
        os << (r == 0 ? "\n" : ",\n") << "    {\"cycle\": " << _cycles[r]
           << ", \"values\": [";
        for (size_t c = 0; c < _tracked.size(); ++c) {
            if (c > 0)
                os << ", ";
            jsonNumber(os, _values[r * _tracked.size() + c]);
        }
        os << "]}";
    }
    os << "\n  ]\n}\n";
}

void
StatSampler::dumpToFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        fatal("cannot open sample file '%s'", path.c_str());
    if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
        dumpJson(f);
    else
        dumpCsv(f);
}

} // namespace trace

} // namespace vpsim
