/**
 * @file
 * Persistent on-disk cache of simulation results.
 *
 * Every (SimConfig, workload) pair maps to a 64-bit FNV-1a hash of a
 * canonical key string: the stat-schema version tag, the workload name,
 * and SimConfig::canonicalKey() (which serializes every result-affecting
 * field, including maxInsts and seed). Results are stored one JSON file
 * per key under a cache directory (default `bench-cache/`), so re-running
 * a figure binary after an unrelated change is near-instant: each sweep
 * point is answered from disk instead of re-simulated.
 *
 * The full canonical key string is stored inside each entry and verified
 * on load, so an FNV collision degrades to a cache miss, never a wrong
 * result. Bump `statSchemaVersion` whenever the meaning or the set of
 * exported stats changes; old entries then miss by construction.
 *
 * Thread safety: lookup() and store() may be called concurrently from
 * pool workers — distinct keys touch distinct files, and store() writes
 * via a per-key temp file + atomic rename so concurrent processes (e.g.
 * two figure binaries sharing bench-cache/) never observe a torn entry.
 */

#ifndef VPSIM_SIM_RESULT_CACHE_HH
#define VPSIM_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <string>

#include "sim/config.hh"
#include "sim/metrics.hh"
#include "sim/simulation.hh"

namespace vpsim
{

/** Point-in-time counters of one ResultCache (see ResultCache::stats).
 *  Evictions also count checkpoint files: the size cap governs the
 *  whole cache directory, which the CheckpointStore shares. Backed by
 *  the process-wide MetricsRegistry (vpsim_result_cache_*_total), so
 *  `--cache-stats` output and the /metrics exposition can never
 *  disagree; stats() still reports per-instance deltas. */
struct ResultCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

/** Version tag of the exported stat schema; part of every cache key. */
extern const char *const statSchemaVersion;

/** 64-bit FNV-1a of @p s (the canonical result-cache hash). */
uint64_t fnv1a64(const std::string &s);

/** The canonical key string hashed for one (config, workload) job. */
std::string resultKeyString(const SimConfig &cfg,
                            const std::string &workload);

/** FNV-1a hash of resultKeyString() — the job identity everywhere. */
uint64_t resultKey(const SimConfig &cfg, const std::string &workload);

/** On-disk result store; see the file comment for the design. */
class ResultCache
{
  public:
    /**
     * Cache rooted at @p dir (created on first store; empty string
     * disables the cache entirely — lookups miss, stores are dropped).
     * A non-zero @p maxBytes caps the total on-disk size of the cache
     * directory: after every store the oldest entries (by mtime, i.e.
     * least-recently written) are evicted until the directory fits.
     */
    explicit ResultCache(std::string dir, uint64_t maxBytes = 0);

    const std::string &dir() const { return _dir; }
    bool enabled() const { return !_dir.empty(); }
    uint64_t maxBytes() const { return _maxBytes; }

    /** Hit/miss/eviction counters accumulated by this instance. */
    ResultCacheStats stats() const;

    /**
     * Load the entry for @p cfg x @p workload into @p out. Returns false
     * on a miss: absent file, unreadable JSON, schema or canonical
     * key mismatch.
     */
    bool lookup(const SimConfig &cfg, const std::string &workload,
                SimResult &out) const;

    /** Persist @p r for @p cfg x @p workload (atomic rename). */
    void store(const SimConfig &cfg, const std::string &workload,
               const SimResult &r) const;

    /** Path of the entry file for one job (for tests/tooling). */
    std::string entryPath(const SimConfig &cfg,
                          const std::string &workload) const;

    /**
     * The conventional cache for bench binaries: directory from
     * MTVP_CACHE_DIR (default "bench-cache"), disabled entirely when
     * MTVP_NO_CACHE is set to a non-zero value, size-capped by
     * MTVP_CACHE_MAX_MB (0 / unset = unlimited).
     */
    static ResultCache standard();

  private:
    /** Evict least-recently-written entries until the directory fits
     *  under the cap. Tolerates concurrent evictors (ENOENT races). */
    void enforceCap() const;

    std::string _dir;
    uint64_t _maxBytes = 0;
    // Counters, not state: bumped under const because lookup()/store()
    // are logically read-only and run concurrently from pool workers.
    // The Counters live in the registry (process totals); the base
    // snapshots taken at construction make stats() per-instance.
    Counter *_hits;
    Counter *_misses;
    Counter *_evictions;
    uint64_t _hitsBase;
    uint64_t _missesBase;
    uint64_t _evictionsBase;
};

} // namespace vpsim

#endif // VPSIM_SIM_RESULT_CACHE_HH
