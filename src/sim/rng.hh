/**
 * @file
 * Deterministic pseudo-random number generation for workload data-set
 * construction. A fixed, seedable generator (xoshiro256**) guarantees that
 * a given (workload, seed) pair produces bit-identical programs and data
 * on every platform, which the determinism property tests rely on.
 */

#ifndef VPSIM_SIM_RNG_HH
#define VPSIM_SIM_RNG_HH

#include <cstdint>

namespace vpsim
{

/** Small, fast, deterministic RNG (xoshiro256**). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) with rejection to avoid modulo bias. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Bernoulli trial with probability p. */
    bool nextBool(double p = 0.5);

  private:
    uint64_t s[4];
};

} // namespace vpsim

#endif // VPSIM_SIM_RNG_HH
