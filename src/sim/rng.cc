#include "sim/rng.hh"

#include "sim/logging.hh"

namespace vpsim
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    vpsim_assert(bound > 0);
    // Rejection sampling over the largest multiple of bound.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    vpsim_assert(lo <= hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace vpsim
