/**
 * @file
 * Stuck-job watchdog for the experiment engine.
 *
 * Long sweeps die silently in two ways: a job deadlocks (the simulator
 * catches that itself) or a job is merely *pathologically slow* — a
 * mis-sized configuration, a runaway fast-forward, a cold filesystem —
 * and the sweep appears healthy while one worker quietly eats hours.
 * This module watches every in-flight job from a heartbeat thread and
 * flags any job whose elapsed wall time exceeds
 *
 *     max(minSeconds, percentileMultiple * p95-so-far job latency)
 *
 * (the p95 comes from the engine's job-latency histogram in the
 * metrics registry, so early jobs — before any latency history — are
 * governed by the absolute floor alone). A flagged job is *not*
 * killed: the watchdog warns, bumps `vpsim_watchdog_flagged_total`,
 * journals a `stuck` ledger event, and requests a diagnostic dump that
 * the job's own thread performs cooperatively at its next poll point —
 * the Cpu dumps its pipeline snapshot and (if enabled) its host
 * profiler, exactly the evidence needed to diagnose the slowness
 * post-hoc. The run then continues to completion.
 *
 * Plumbing:
 *  - Workers wrap each job in a WatchdogJobScope (sim_pool.cc does
 *    this; serial/inline execution gets the same coverage).
 *  - The running simulation registers a dump callback with
 *    WatchdogProbe (Cpu::run and Cpu::fastForward) and calls
 *    watchdogPoll() at a coarse host-side cadence. Poll is a
 *    thread-local pointer test plus one relaxed atomic load — nothing
 *    simulated is touched, so stats stay bit-identical with the
 *    watchdog on or off.
 *
 * All timing is host-side wall clock by design (vplint allowlists this
 * file).
 */

#ifndef VPSIM_SIM_WATCHDOG_HH
#define VPSIM_SIM_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>

namespace vpsim
{

/** Watchdog tuning; defaults are deliberately conservative. */
struct WatchdogLimits
{
    bool enabled = true;
    /** Absolute slowness floor: no job is flagged before this. */
    double minSeconds = 30.0;
    /** Flag when elapsed exceeds this multiple of the p95-so-far. */
    double percentileMultiple = 8.0;
    /** Heartbeat period of the monitor thread. */
    double heartbeatSeconds = 0.25;
};

/** Limits from MTVP_WATCHDOG (0 disables), MTVP_WATCHDOG_MIN_SECS,
 *  and MTVP_WATCHDOG_MULT; unset keeps the defaults. */
WatchdogLimits watchdogLimitsFromEnv();

/** Override the active limits (tests; also applies env on first use). */
void watchdogSetLimits(const WatchdogLimits &limits);

/**
 * RAII: marks the calling thread as executing one engine job for the
 * monitor to watch. Job label appears in warnings and ledger events.
 */
class WatchdogJobScope
{
  public:
    WatchdogJobScope(const std::string &jobKey,
                     const std::string &workload);
    ~WatchdogJobScope();

    WatchdogJobScope(const WatchdogJobScope &) = delete;
    WatchdogJobScope &operator=(const WatchdogJobScope &) = delete;
};

/**
 * RAII: registers a thread-local diagnostic dump callback for the
 * currently running work (pipeline snapshot + profiler). Invoked from
 * the owning thread only, at a watchdogPoll() boundary.
 */
class WatchdogProbe
{
  public:
    explicit WatchdogProbe(std::function<void()> dump);
    ~WatchdogProbe();

    WatchdogProbe(const WatchdogProbe &) = delete;
    WatchdogProbe &operator=(const WatchdogProbe &) = delete;

  private:
    std::function<void()> *_prev; ///< Outer probe, restored on unwind.
};

/**
 * Cooperative poll point: if the monitor requested a dump for this
 * thread's job, run the registered probe (once per request). Called at
 * a coarse cadence from simulation loops; costs a thread-local load
 * and a relaxed atomic load when idle.
 */
void watchdogPoll();

/** Total jobs flagged so far (the metrics counter; tests). */
uint64_t watchdogFlaggedTotal();

} // namespace vpsim

#endif // VPSIM_SIM_WATCHDOG_HH
