#include "sim/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vpsim
{

namespace json
{

const Value *
Value::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

double
Value::numberOr(const std::string &key, double def) const
{
    const Value *v = get(key);
    return v != nullptr && v->isNumber() ? v->number : def;
}

std::string
Value::stringOr(const std::string &key, const std::string &def) const
{
    const Value *v = get(key);
    return v != nullptr && v->isString() ? v->str : def;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : _s(text) {}

    bool
    run(Value &out, std::string *error)
    {
        bool ok = value(out) && (skipWs(), _p == _s.size());
        if (!ok && error != nullptr) {
            std::ostringstream os;
            os << (_err.empty() ? "trailing garbage" : _err)
               << " at offset " << _p;
            *error = os.str();
        }
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (_p < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_p]))) {
            ++_p;
        }
    }

    bool
    fail(const std::string &why)
    {
        if (_err.empty())
            _err = why;
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (_s.compare(_p, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        _p += n;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (_p >= _s.size() || _s[_p] != '"')
            return fail("expected string");
        ++_p;
        out.clear();
        while (_p < _s.size() && _s[_p] != '"') {
            char c = _s[_p++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_p >= _s.size())
                return fail("truncated escape");
            char e = _s[_p++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (_p + 4 > _s.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _s[_p + static_cast<size_t>(i)];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
                    else return fail("bad \\u escape");
                }
                _p += 4;
                // The repo only escapes control characters; emit the
                // low byte (sufficient for ASCII) to round-trip them.
                out += static_cast<char>(code & 0xff);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (_p >= _s.size())
            return fail("unterminated string");
        ++_p; // Closing quote.
        return true;
    }

    bool
    value(Value &out)
    {
        skipWs();
        if (_p >= _s.size())
            return fail("unexpected end of input");
        char c = _s[_p];
        if (c == '{') {
            ++_p;
            out.kind = Value::Kind::Object;
            skipWs();
            if (_p < _s.size() && _s[_p] == '}') {
                ++_p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (_p >= _s.size() || _s[_p] != ':')
                    return fail("expected ':'");
                ++_p;
                Value member;
                if (!value(member))
                    return false;
                out.obj.emplace(std::move(key), std::move(member));
                skipWs();
                if (_p < _s.size() && _s[_p] == ',') {
                    ++_p;
                    continue;
                }
                if (_p < _s.size() && _s[_p] == '}') {
                    ++_p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++_p;
            out.kind = Value::Kind::Array;
            skipWs();
            if (_p < _s.size() && _s[_p] == ']') {
                ++_p;
                return true;
            }
            while (true) {
                Value elem;
                if (!value(elem))
                    return false;
                out.arr.push_back(std::move(elem));
                skipWs();
                if (_p < _s.size() && _s[_p] == ',') {
                    ++_p;
                    continue;
                }
                if (_p < _s.size() && _s[_p] == ']') {
                    ++_p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::String;
            return string(out.str);
        }
        if (c == 't') {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Value::Kind::Null;
            return literal("null");
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            const char *start = _s.c_str() + _p;
            char *end = nullptr;
            out.kind = Value::Kind::Number;
            out.number = std::strtod(start, &end);
            if (end == start)
                return fail("bad number");
            _p += static_cast<size_t>(end - start);
            return true;
        }
        return fail("unexpected character");
    }

    const std::string &_s;
    size_t _p = 0;
    std::string _err;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    out = Value{};
    Parser p(text);
    return p.run(out, error);
}

bool
parseFile(const std::string &path, Value &out, std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    return parse(buf.str(), out, error);
}

} // namespace json

} // namespace vpsim
