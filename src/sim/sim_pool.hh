/**
 * @file
 * Parallel simulation job engine.
 *
 * Two layers:
 *
 *  - **SimPool**: a fixed-size std::thread pool with a FIFO job queue
 *    and std::future results. No work stealing: workers pop from one
 *    shared queue in submission order, which keeps scheduling simple
 *    and (because every simulation is an independent, deterministic
 *    job) is all the figure sweeps need. A pool constructed with
 *    `threads <= 1` executes jobs inline at submit() — the serial mode
 *    the determinism tests compare against.
 *
 *  - **SimJobGraph**: dedup + caching layer for (SimConfig, workload)
 *    simulation jobs. Submitting the same job twice returns the same
 *    shared_future, so every bench series shares one baseline run
 *    instead of depending on it by re-execution. An optional persistent
 *    ResultCache is consulted before any simulation is enqueued and
 *    populated when a job completes.
 *
 * Determinism guarantee: a simulation's result depends only on its
 * (SimConfig, workload) pair — never on pool size, scheduling order, or
 * sibling jobs. Serial (jobs=1) and parallel (jobs=N) runs of the same
 * job set produce bit-identical SimResults; tests/sim_pool_test.cc
 * asserts this. The per-process state that used to make one simulation
 * unsafe with respect to another (the trace/log cycle sources) is
 * thread-local, and each Cpu owns every piece of its mutable state.
 */

#ifndef VPSIM_SIM_SIM_POOL_HH
#define VPSIM_SIM_SIM_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/result_cache.hh"
#include "sim/simulation.hh"

namespace vpsim
{

/** Fixed-size thread pool; see the file comment. */
class SimPool
{
  public:
    /**
     * @p threads worker threads; <= 1 means no workers (inline
     * execution at submit).
     */
    explicit SimPool(int threads);

    /** Drains the queue, then joins every worker. */
    ~SimPool();

    SimPool(const SimPool &) = delete;
    SimPool &operator=(const SimPool &) = delete;

    int threads() const { return _threads; }

    /**
     * Enqueue @p fn; the future carries its return value or exception.
     * Inline mode runs @p fn before returning (the future is ready).
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<decltype(fn())>
    {
        using R = decltype(fn());
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        enqueue([task] { (*task)(); });
        return fut;
    }

    /** Jobs executed so far (drained from the queue or run inline). */
    uint64_t executed() const;

    /**
     * The pool size bench binaries use: the --jobs override if parsed,
     * else MTVP_JOBS, else std::thread::hardware_concurrency().
     */
    static int defaultJobs();

    /**
     * Telemetry label of the calling thread: "simpool/N" on a pool
     * worker (also its pthread name), "main" elsewhere. The ledger and
     * watchdog stamp this on their events.
     */
    static const std::string &workerLabel();

  private:
    void enqueue(std::function<void()> job);
    void workerLoop(int index);

    const int _threads;
    std::vector<std::thread> _workers;

    mutable std::mutex _m;
    std::condition_variable _cv;
    std::deque<std::function<void()>> _queue;
    bool _stop = false;
    uint64_t _executed = 0;
};

/** Dedup/cache layer over SimPool for simulation jobs. */
class SimJobGraph
{
  public:
    /** @p cache may be nullptr (no persistence). */
    SimJobGraph(SimPool &pool, const ResultCache *cache);

    /**
     * Enqueue one (config, workload) simulation, or join the identical
     * in-flight/finished job, or answer from the persistent cache.
     * Futures from one graph may be get() in any order.
     */
    std::shared_future<SimResult> submit(const SimConfig &cfg,
                                         const std::string &workload);

    /** Jobs answered from the persistent cache. */
    uint64_t cacheHits() const;
    /** Jobs that actually simulated (graph-level dedup excluded). */
    uint64_t simulated() const;

  private:
    SimPool &_pool;
    const ResultCache *_cache;

    mutable std::mutex _m;
    /** resultKey() -> the one future for that job. */
    std::unordered_map<uint64_t, std::shared_future<SimResult>> _jobs;
    uint64_t _cacheHits = 0;
    uint64_t _simulated = 0;
};

} // namespace vpsim

#endif // VPSIM_SIM_SIM_POOL_HH
