#include "sim/sim_pool.hh"

#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"
#include "sim/perfetto_trace.hh"
#include "workloads/workload.hh"

namespace vpsim
{

SimPool::SimPool(int threads) : _threads(threads < 1 ? 1 : threads)
{
    if (_threads <= 1)
        return;
    _workers.reserve(static_cast<size_t>(_threads));
    for (int i = 0; i < _threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

SimPool::~SimPool()
{
    {
        std::lock_guard<std::mutex> lk(_m);
        _stop = true;
    }
    _cv.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
SimPool::enqueue(std::function<void()> job)
{
    if (_workers.empty()) {
        // Inline (serial) mode: run on the caller's thread right away.
        job();
        std::lock_guard<std::mutex> lk(_m);
        ++_executed;
        return;
    }
    {
        std::lock_guard<std::mutex> lk(_m);
        _queue.push_back(std::move(job));
    }
    _cv.notify_one();
}

void
SimPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(_m);
            _cv.wait(lk, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return; // _stop and drained.
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        job(); // packaged_task: exceptions land in the future.
        {
            std::lock_guard<std::mutex> lk(_m);
            ++_executed;
        }
    }
}

uint64_t
SimPool::executed() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _executed;
}

int
SimPool::defaultJobs()
{
    const char *v = std::getenv("MTVP_JOBS");
    if (v != nullptr && *v != '\0') {
        long n = std::strtol(v, nullptr, 0);
        if (n >= 1)
            return static_cast<int>(n);
        warn("ignoring invalid MTVP_JOBS='%s'", v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SimJobGraph::SimJobGraph(SimPool &pool, const ResultCache *cache)
    : _pool(pool), _cache(cache)
{
    // Force the (lazily initialized, intentionally immortal) workload
    // registry into existence before any worker races to it.
    allWorkloads();
}

std::shared_future<SimResult>
SimJobGraph::submit(const SimConfig &cfg, const std::string &workload)
{
    const uint64_t key = resultKey(cfg, workload);

    std::lock_guard<std::mutex> lk(_m);
    auto it = _jobs.find(key);
    if (it != _jobs.end())
        return it->second; // Baseline sharing: join the existing job.

    SimResult cached;
    if (_cache != nullptr && _cache->lookup(cfg, workload, cached)) {
        ++_cacheHits;
        HostTraceRecorder::instance().recordCacheHit(workload);
        std::promise<SimResult> ready;
        ready.set_value(std::move(cached));
        auto fut = ready.get_future().share();
        _jobs.emplace(key, fut);
        return fut;
    }

    ++_simulated;
    const ResultCache *cache = _cache;
    auto fut = _pool
                   .submit([cfg, workload, cache] {
                       // Host-time track: one span per simulation job
                       // on the executing worker (MTVP_PERFETTO).
                       HostTraceRecorder::JobScope span(workload);
                       SimResult r = runWorkload(cfg, workload);
                       if (cache != nullptr)
                           cache->store(cfg, workload, r);
                       return r;
                   })
                   .share();
    _jobs.emplace(key, fut);
    return fut;
}

uint64_t
SimJobGraph::cacheHits() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _cacheHits;
}

uint64_t
SimJobGraph::simulated() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _simulated;
}

} // namespace vpsim
