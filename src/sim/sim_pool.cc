#include "sim/sim_pool.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/perfetto_trace.hh"
#include "sim/run_ledger.hh"
#include "sim/watchdog.hh"
#include "workloads/workload.hh"

namespace vpsim
{

namespace
{

/** Telemetry identity of the calling thread; see SimPool::workerLabel.
 *  vplint:allow(global-state) per-thread label, telemetry only. */
thread_local std::string tlsWorkerLabel = "main";

/** The engine-side metric handles, resolved once (the registry hands
 *  back the same objects forever, so caching them is pure speed). */
struct PoolMetrics
{
    Gauge &queueDepth;
    Gauge &inflight;
    Gauge &workers;
    Counter &executedTotal;
    Counter &busyMicrosTotal;
    Histogram &jobSeconds;

    static PoolMetrics &
    instance()
    {
        // Immortal on purpose: handles into the (immortal) registry.
        // vplint:allow(global-state) metric handles, mutation is atomic
        static PoolMetrics *m = new PoolMetrics{
            MetricsRegistry::instance().gauge(
                "vpsim_pool_queue_depth",
                "Jobs waiting in the SimPool FIFO queue"),
            MetricsRegistry::instance().gauge(
                "vpsim_pool_inflight_jobs",
                "Jobs currently executing on SimPool workers"),
            MetricsRegistry::instance().gauge(
                "vpsim_pool_workers",
                "Worker threads in the SimPool (0 = inline mode)"),
            MetricsRegistry::instance().counter(
                "vpsim_pool_jobs_executed_total",
                "Jobs the SimPool has finished executing"),
            MetricsRegistry::instance().counter(
                "vpsim_pool_busy_micros_total",
                "Total microseconds SimPool workers spent executing "
                "jobs (utilization numerator)"),
            MetricsRegistry::instance().histogram(
                "vpsim_pool_job_seconds",
                "Wall-clock latency of executed simulation jobs",
                0.001, 2.0, 25),
        };
        return *m;
    }
};

/** The ledger/telemetry spelling of a job graph key. */
std::string
hexJobKey(uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** Run one pool job with latency/in-flight accounting. */
void
runTimed(const std::function<void()> &job)
{
    PoolMetrics &pm = PoolMetrics::instance();
    pm.inflight.add(1);
    auto t0 = std::chrono::steady_clock::now();
    job();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    pm.inflight.sub(1);
    pm.jobSeconds.observe(secs);
    pm.busyMicrosTotal.inc(static_cast<uint64_t>(secs * 1e6));
    pm.executedTotal.inc();
}

} // namespace

SimPool::SimPool(int threads) : _threads(threads < 1 ? 1 : threads)
{
    if (_threads <= 1)
        return;
    _workers.reserve(static_cast<size_t>(_threads));
    for (int i = 0; i < _threads; ++i) {
        _workers.emplace_back([this, i] { workerLoop(i); });
#if defined(__linux__)
        // pthread names cap at 15 chars; "simpool/NNNNNN" fits any
        // plausible worker count (the index is capped to match).
        char name[16];
        std::snprintf(name, sizeof(name), "simpool/%d",
                      i > 999999 ? 999999 : i);
        pthread_setname_np(_workers.back().native_handle(), name);
#endif
    }
    PoolMetrics::instance().workers.set(
        static_cast<int64_t>(_workers.size()));
}

SimPool::~SimPool()
{
    {
        std::lock_guard<std::mutex> lk(_m);
        _stop = true;
    }
    _cv.notify_all();
    for (std::thread &t : _workers)
        t.join();
}

void
SimPool::enqueue(std::function<void()> job)
{
    if (_workers.empty()) {
        // Inline (serial) mode: run on the caller's thread right away.
        runTimed(job);
        std::lock_guard<std::mutex> lk(_m);
        ++_executed;
        return;
    }
    {
        std::lock_guard<std::mutex> lk(_m);
        _queue.push_back(std::move(job));
    }
    PoolMetrics::instance().queueDepth.add(1);
    _cv.notify_one();
}

void
SimPool::workerLoop(int index)
{
    tlsWorkerLabel = "simpool/" + std::to_string(index);
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lk(_m);
            _cv.wait(lk, [this] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return; // _stop and drained.
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        PoolMetrics::instance().queueDepth.sub(1);
        runTimed(job); // packaged_task: exceptions land in the future.
        {
            std::lock_guard<std::mutex> lk(_m);
            ++_executed;
        }
    }
}

const std::string &
SimPool::workerLabel()
{
    return tlsWorkerLabel;
}

uint64_t
SimPool::executed() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _executed;
}

int
SimPool::defaultJobs()
{
    const char *v = std::getenv("MTVP_JOBS");
    if (v != nullptr && *v != '\0') {
        long n = std::strtol(v, nullptr, 0);
        if (n >= 1)
            return static_cast<int>(n);
        warn("ignoring invalid MTVP_JOBS='%s'", v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

SimJobGraph::SimJobGraph(SimPool &pool, const ResultCache *cache)
    : _pool(pool), _cache(cache)
{
    // Force the (lazily initialized, intentionally immortal) workload
    // registry into existence before any worker races to it.
    allWorkloads();
}

std::shared_future<SimResult>
SimJobGraph::submit(const SimConfig &cfg, const std::string &workload)
{
    const uint64_t key = resultKey(cfg, workload);

    std::lock_guard<std::mutex> lk(_m);
    auto it = _jobs.find(key);
    if (it != _jobs.end())
        return it->second; // Baseline sharing: join the existing job.

    const std::string jobKey = hexJobKey(key);
    RunLedger &ledger = RunLedger::global();
    {
        LedgerEvent e;
        e.kind = LedgerEventKind::Submit;
        e.job = jobKey;
        e.workload = workload;
        ledger.record(std::move(e));
    }

    SimResult cached;
    if (_cache != nullptr && _cache->lookup(cfg, workload, cached)) {
        ++_cacheHits;
        HostTraceRecorder::instance().recordCacheHit(workload);
        {
            LedgerEvent e;
            e.kind = LedgerEventKind::CacheHit;
            e.job = jobKey;
            e.workload = workload;
            ledger.record(std::move(e));
        }
        std::promise<SimResult> ready;
        ready.set_value(std::move(cached));
        auto fut = ready.get_future().share();
        _jobs.emplace(key, fut);
        return fut;
    }

    ++_simulated;
    const ResultCache *cache = _cache;
    auto fut = _pool
                   .submit([cfg, workload, cache, jobKey] {
                       // Host-time track: one span per simulation job
                       // on the executing worker (MTVP_PERFETTO).
                       HostTraceRecorder::JobScope span(workload);
                       RunLedger &led = RunLedger::global();
                       {
                           LedgerEvent e;
                           e.kind = LedgerEventKind::Start;
                           e.job = jobKey;
                           e.workload = workload;
                           e.worker = SimPool::workerLabel();
                           led.record(std::move(e));
                       }
                       WatchdogJobScope watched(jobKey, workload);
                       auto t0 = std::chrono::steady_clock::now();
                       LedgerEvent fin;
                       fin.kind = LedgerEventKind::Finish;
                       fin.job = jobKey;
                       fin.workload = workload;
                       fin.worker = SimPool::workerLabel();
                       try {
                           SimResult r = runWorkload(cfg, workload);
                           if (cache != nullptr)
                               cache->store(cfg, workload, r);
                           fin.outcome = "ok";
                           fin.wallSeconds =
                               std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
                           fin.insts = r.usefulInsts;
                           fin.cycles = r.cycles;
                           led.record(std::move(fin));
                           return r;
                       } catch (...) {
                           fin.outcome = "error";
                           fin.wallSeconds =
                               std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
                           led.record(std::move(fin));
                           throw; // Into the future, as before.
                       }
                   })
                   .share();
    _jobs.emplace(key, fut);
    return fut;
}

uint64_t
SimJobGraph::cacheHits() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _cacheHits;
}

uint64_t
SimJobGraph::simulated() const
{
    std::lock_guard<std::mutex> lk(_m);
    return _simulated;
}

} // namespace vpsim
