/**
 * @file
 * Host-side self-profiler: RAII scoped timers over the simulator's own
 * hot paths (pipeline stages, cache lookups, predictor work), so a perf
 * PR ships with before/after host-time evidence instead of anecdotes.
 *
 * Design constraints:
 *  - Disabled must be effectively free: Scope construction on a
 *    disabled profiler is a null-pointer store and the destructor a
 *    single branch — no clock reads, no atomics.
 *  - One HostProfiler per Cpu (per simulation run); runs execute wholly
 *    on one thread (sim/sim_pool.hh), so section accumulation is plain
 *    arithmetic. At destruction an enabled profiler folds its totals
 *    into a process-wide atomic aggregate, which bench harnesses read
 *    after fanning dozens of runs over a pool (sim/profiler.cc
 *    globalProfile()).
 */

#ifndef VPSIM_SIM_PROFILER_HH
#define VPSIM_SIM_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

namespace vpsim
{

/** Instrumented host-time sections (one counter pair per entry). */
enum class ProfSection : unsigned
{
    Fetch,        ///< Cpu::fetchStage
    Dispatch,     ///< Cpu::dispatchStage
    Issue,        ///< Cpu::issueStage
    Commit,       ///< Cpu::commitStage
    Resolve,      ///< Cpu::resolvePendingLoads
    Drain,        ///< Cpu::drainStoreBuffers
    CacheData,    ///< Hierarchy::load timing lookups
    CacheInst,    ///< Hierarchy::instFetch timing lookups
    VpredPredict, ///< ValuePredictor::predict at dispatch
    VpredTrain,   ///< ValuePredictor::train at commit
    Wakeup,       ///< WakeupTable notifications (bitmap wakeup updates)
    TimeSkip,     ///< Cpu::tryTimeSkip (event scan + bulk attribution)
    Warmup,       ///< Cpu::fastForward (emulator-only warming)
    Checkpoint,   ///< Checkpoint serialize/restore + store I/O
    Sampling,     ///< Cpu::quiesce (inter-interval pipeline drain)
    NumSections,
};

inline constexpr unsigned numProfSections =
    static_cast<unsigned>(ProfSection::NumSections);

/** Canonical section name ("fetch", "cacheData", ...). */
const char *profSectionName(ProfSection s);

/** Accumulated host time of one section. */
struct ProfEntry
{
    uint64_t nanos = 0;
    uint64_t calls = 0;
};

class HostProfiler
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit HostProfiler(bool enabled) : _enabled(enabled) {}
    ~HostProfiler();

    HostProfiler(const HostProfiler &) = delete;
    HostProfiler &operator=(const HostProfiler &) = delete;

    bool enabled() const { return _enabled; }

    /** RAII timer: charges [construction, destruction) to a section. */
    class Scope
    {
      public:
        Scope(HostProfiler &p, ProfSection s)
            : _p(p._enabled ? &p : nullptr), _s(s)
        {
            if (_p != nullptr)
                _t0 = Clock::now();
        }

        ~Scope()
        {
            if (_p != nullptr) {
                auto ns = std::chrono::duration_cast<
                    std::chrono::nanoseconds>(Clock::now() - _t0);
                ProfEntry &e =
                    _p->_entries[static_cast<unsigned>(_s)];
                e.nanos += static_cast<uint64_t>(ns.count());
                ++e.calls;
            }
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HostProfiler *_p;
        ProfSection _s;
        Clock::time_point _t0;
      };

    const ProfEntry &entry(ProfSection s) const
    {
        return _entries[static_cast<unsigned>(s)];
    }

    /** Total instrumented nanoseconds (stage sections overlap the
     *  cache/predictor sections; see printReport). */
    uint64_t totalStageNanos() const;

    /** Human-readable per-section table (ms, calls, ns/call). */
    void printReport(std::ostream &os) const;

    /** One JSON object: {"<section>": {"ms": ..., "calls": ...}, ...} */
    void dumpJson(std::ostream &os) const;

  private:
    bool _enabled;
    std::array<ProfEntry, numProfSections> _entries{};
};

/**
 * Process-wide aggregate filled by every enabled HostProfiler at
 * destruction; lets a bench binary report host-time breakdowns across
 * all the runs its pool executed. Thread-safe.
 */
struct GlobalProfile
{
    /** Snapshot of the aggregate (consistent enough for reporting). */
    static std::array<ProfEntry, numProfSections> snapshot();

    /** True once any enabled profiler contributed. */
    static bool any();

    /** JSON object of the aggregate (same shape as dumpJson). */
    static std::string snapshotJson();

    /** Zero the aggregate (tests). */
    static void reset();
};

} // namespace vpsim

#endif // VPSIM_SIM_PROFILER_HH
