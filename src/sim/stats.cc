#include "sim/stats.hh"

#include <iomanip>

#include "sim/logging.hh"

namespace vpsim
{

StatBase::StatBase(StatGroup &parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    parent.registerStat(this);
}

void
StatBase::print(std::ostream &os) const
{
    os << std::left << std::setw(44) << _name << ' '
       << std::right << std::setw(16) << value()
       << "  # " << _desc << '\n';
}

Distribution::Distribution(StatGroup &parent, std::string name,
                           std::string desc, double min, double max,
                           int buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      _lo(min), _hi(max),
      _bucketSize((max - min) / buckets),
      _counts(static_cast<size_t>(buckets) + 2, 0)
{
    vpsim_assert(buckets > 0 && max > min);
}

void
Distribution::sample(double x)
{
    if (_n == 0) {
        _min = _max = x;
    } else {
        if (x < _min) _min = x;
        if (x > _max) _max = x;
    }
    ++_n;
    _sum += x;

    size_t idx;
    if (x < _lo) {
        idx = 0;
    } else if (x >= _hi) {
        idx = _counts.size() - 1;
    } else {
        idx = 1 + static_cast<size_t>((x - _lo) / _bucketSize);
        if (idx > _counts.size() - 2)
            idx = _counts.size() - 2;
    }
    ++_counts[idx];
}

void
Distribution::reset()
{
    _n = 0;
    _sum = 0.0;
    _min = _max = 0.0;
    std::fill(_counts.begin(), _counts.end(), 0);
}

void
Distribution::print(std::ostream &os) const
{
    StatBase::print(os);
    os << "  " << name() << "::samples " << _n
       << " min " << _min << " max " << _max << '\n';
}

Formula::Formula(StatGroup &parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)), _fn(std::move(fn))
{
}

StatGroup::StatGroup(std::string name) : _name(std::move(name))
{
}

void
StatGroup::registerStat(StatBase *stat)
{
    vpsim_assert(stat != nullptr);
    if (find(stat->name()) != nullptr)
        panic("duplicate stat name '%s'", stat->name().c_str());
    _stats.push_back(stat);
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const StatBase *s : _stats) {
        if (s->name() == name)
            return s;
    }
    return nullptr;
}

double
StatGroup::get(const std::string &name) const
{
    const StatBase *s = find(name);
    if (s == nullptr)
        fatal("unknown stat '%s'", name.c_str());
    return s->value();
}

void
StatGroup::dump(std::ostream &os) const
{
    if (!_name.empty())
        os << "---------- " << _name << " ----------\n";
    for (const StatBase *s : _stats)
        s->print(os);
}

void
StatGroup::resetAll()
{
    for (StatBase *s : _stats)
        s->reset();
}

} // namespace vpsim
