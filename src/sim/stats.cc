#include "sim/stats.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>

#include "sim/logging.hh"

namespace vpsim
{

StatBase::StatBase(StatGroup &parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    parent.registerStat(this);
}

void
StatBase::print(std::ostream &os) const
{
    os << std::left << std::setw(44) << _name << ' '
       << std::right << std::setw(16) << value()
       << "  # " << _desc << '\n';
}

void
StatBase::printJson(std::ostream &os) const
{
    os << "{\"value\": ";
    jsonNumber(os, value());
    os << ", \"desc\": ";
    jsonQuote(os, _desc);
    os << '}';
}

Distribution::Distribution(StatGroup &parent, std::string name,
                           std::string desc, double min, double max,
                           int buckets)
    : StatBase(parent, std::move(name), std::move(desc)),
      _lo(min), _hi(max),
      _bucketSize((max - min) / buckets),
      _counts(static_cast<size_t>(buckets) + 2, 0)
{
    vpsim_assert(buckets > 0 && max > min);
}

void
Distribution::sample(double x)
{
    if (_n == 0) {
        _min = _max = x;
    } else {
        if (x < _min) _min = x;
        if (x > _max) _max = x;
    }
    ++_n;
    _sum += x;

    size_t idx;
    if (x < _lo) {
        idx = 0;
    } else if (x >= _hi) {
        idx = _counts.size() - 1;
    } else {
        idx = 1 + static_cast<size_t>((x - _lo) / _bucketSize);
        if (idx > _counts.size() - 2)
            idx = _counts.size() - 2;
    }
    ++_counts[idx];
}

void
Distribution::reset()
{
    _n = 0;
    _sum = 0.0;
    _min = _max = 0.0;
    std::fill(_counts.begin(), _counts.end(), 0);
}

void
Distribution::print(std::ostream &os) const
{
    StatBase::print(os);
    os << "  " << name() << "::samples " << _n
       << " min " << _min << " max " << _max << '\n';
}

void
Distribution::printJson(std::ostream &os) const
{
    os << "{\"value\": ";
    jsonNumber(os, value());
    os << ", \"desc\": ";
    jsonQuote(os, desc());
    os << ", \"samples\": " << _n << ", \"min\": ";
    jsonNumber(os, _min);
    os << ", \"max\": ";
    jsonNumber(os, _max);
    os << ", \"lo\": ";
    jsonNumber(os, _lo);
    os << ", \"hi\": ";
    jsonNumber(os, _hi);
    os << ", \"bucketSize\": ";
    jsonNumber(os, _bucketSize);
    os << ", \"buckets\": [";
    for (size_t i = 0; i < _counts.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << _counts[i];
    }
    os << "]}";
}

Formula::Formula(StatGroup &parent, std::string name, std::string desc,
                 std::function<double()> fn)
    : StatBase(parent, std::move(name), std::move(desc)), _fn(std::move(fn))
{
}

StatGroup::StatGroup(std::string name) : _name(std::move(name))
{
}

void
StatGroup::registerStat(StatBase *stat)
{
    vpsim_assert(stat != nullptr);
    auto [it, inserted] = _index.emplace(stat->name(), _stats.size());
    if (!inserted)
        panic("duplicate stat name '%s'", stat->name().c_str());
    _stats.push_back(stat);
}

std::string
legacyStatAlias(const std::string &name)
{
    // "cpi.t<d>.<slot>" (single digit) → "cpi.t0<d>.<slot>".
    static const std::string prefix = "cpi.t";
    if (name.compare(0, prefix.size(), prefix) == 0 &&
        name.size() > prefix.size() + 1 &&
        std::isdigit(static_cast<unsigned char>(name[prefix.size()])) &&
        name[prefix.size() + 1] == '.') {
        std::string fixed = name;
        fixed.insert(prefix.size(), 1, '0');
        return fixed;
    }
    return "";
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    auto it = _index.find(name);
    if (it == _index.end()) {
        std::string alias = legacyStatAlias(name);
        if (!alias.empty())
            it = _index.find(alias);
    }
    return it == _index.end() ? nullptr : _stats[it->second];
}

double
StatGroup::get(const std::string &name) const
{
    const StatBase *s = find(name);
    if (s == nullptr)
        fatal("unknown stat '%s'", name.c_str());
    return s->value();
}

void
StatGroup::dump(std::ostream &os) const
{
    if (!_name.empty())
        os << "---------- " << _name << " ----------\n";
    for (const StatBase *s : _stats)
        s->print(os);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{\n  \"group\": ";
    jsonQuote(os, _name);
    os << ",\n  \"stats\": {";
    bool first = true;
    for (const StatBase *s : _stats) {
        os << (first ? "\n" : ",\n") << "    ";
        jsonQuote(os, s->name());
        os << ": ";
        s->printJson(os);
        first = false;
    }
    os << "\n  }\n}\n";
}

void
StatGroup::resetAll()
{
    for (StatBase *s : _stats)
        s->reset();
}

void
jsonQuote(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        // Shortest decimal form that parses back to exactly v, so
        // roundSig()-treated values print as written (6.9646, not
        // 6.9645999999999999) while full-precision values lose nothing.
        for (int prec = 15; prec <= 17; ++prec) {
            std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
            if (std::strtod(buf, nullptr) == v)
                break;
        }
    }
    os << buf;
}

double
roundSig(double v, int digits)
{
    if (!std::isfinite(v) || v == 0.0)
        return v;
    // Round through the shortest decimal form: exactly what a reader
    // of the JSON sees, so repeated load/round/store cycles are stable.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
    return std::strtod(buf, nullptr);
}

} // namespace vpsim
