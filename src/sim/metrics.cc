#include "sim/metrics.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace vpsim
{

namespace
{

/** %.17g round-trips every finite double (the stats/json convention). */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Short %g for bucket bounds: "0.001", "0.016", ... */
std::string
fmtBound(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

const char *
kindName(bool isCounter, bool isGauge)
{
    return isCounter ? "counter" : isGauge ? "gauge" : "histogram";
}

/** HELP text escaping: backslash and newline only (the spec's rule). */
std::string
escapeHelp(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
escapeMetricLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
metricLabelString(const MetricLabels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out += ",";
        first = false;
        out += k;
        out += "=\"";
        out += escapeMetricLabelValue(v);
        out += "\"";
    }
    out += "}";
    return out;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(double firstBound, double growth, int bucketCount)
{
    vpsim_assert(firstBound > 0.0 && growth > 1.0 && bucketCount >= 1);
    _bounds.reserve(static_cast<size_t>(bucketCount));
    double b = firstBound;
    for (int i = 0; i < bucketCount; ++i) {
        _bounds.push_back(b);
        b *= growth;
    }
    _buckets = std::make_unique<std::atomic<uint64_t>[]>(
        _bounds.size() + 1);
    for (size_t i = 0; i <= _bounds.size(); ++i)
        _buckets[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    // Linear scan: bucket counts are small (<= a few dozen) and the
    // sites are per-job, not per-cycle.
    size_t i = 0;
    while (i < _bounds.size() && v > _bounds[i])
        ++i;
    _buckets[i].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    double cur = _sum.load(std::memory_order_relaxed);
    while (!_sum.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

double
Histogram::sum() const
{
    return _sum.load(std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    uint64_t n = count();
    if (n == 0)
        return 0.0;
    double target = q * static_cast<double>(n);
    uint64_t cum = 0;
    for (size_t i = 0; i <= _bounds.size(); ++i) {
        cum += bucketCount(i);
        if (static_cast<double>(cum) >= target) {
            return i < _bounds.size() ? _bounds[i] : _bounds.back();
        }
    }
    return _bounds.back();
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    // Intentionally immortal: engine layers hold references for the
    // process lifetime; all access is mutex/atomic-protected.
    // vplint:allow(global-state) immortal singleton, internally locked
    static MetricsRegistry *r = new MetricsRegistry;
    return *r;
}

MetricsRegistry::Family::Series &
MetricsRegistry::findOrMake(const std::string &name,
                            const std::string &help, Kind kind,
                            const MetricLabels &labels)
{
    std::lock_guard<std::mutex> lk(_m);
    Family &fam = _families[name];
    if (fam.series.empty()) {
        fam.kind = kind;
        fam.help = help;
    } else if (fam.kind != kind) {
        panic("metric family '%s' registered as %s and %s", name.c_str(),
              kindName(fam.kind == Kind::Counter, fam.kind == Kind::Gauge),
              kindName(kind == Kind::Counter, kind == Kind::Gauge));
    }
    Family::Series &s = fam.series[metricLabelString(labels)];
    if (s.labels.empty())
        s.labels = labels;
    return s;
}

Counter &
MetricsRegistry::counter(const std::string &name, const std::string &help,
                         const MetricLabels &labels)
{
    Family::Series &s = findOrMake(name, help, Kind::Counter, labels);
    if (s.counter == nullptr)
        s.counter = std::make_unique<Counter>();
    return *s.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help,
                       const MetricLabels &labels)
{
    Family::Series &s = findOrMake(name, help, Kind::Gauge, labels);
    if (s.gauge == nullptr)
        s.gauge = std::make_unique<Gauge>();
    return *s.gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name, const std::string &help,
                           double firstBound, double growth,
                           int bucketCount, const MetricLabels &labels)
{
    Family::Series &s = findOrMake(name, help, Kind::Histogram, labels);
    if (s.histogram == nullptr) {
        s.histogram = std::make_unique<Histogram>(firstBound, growth,
                                                  bucketCount);
    }
    return *s.histogram;
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(_m);
    for (const auto &[name, fam] : _families) {
        os << "# HELP " << name << " " << escapeHelp(fam.help) << "\n";
        os << "# TYPE " << name << " "
           << (fam.kind == Kind::Counter
                   ? "counter"
                   : fam.kind == Kind::Gauge ? "gauge" : "histogram")
           << "\n";
        for (const auto &[labelStr, s] : fam.series) {
            if (fam.kind == Kind::Counter) {
                os << name << labelStr << " " << s.counter->value()
                   << "\n";
            } else if (fam.kind == Kind::Gauge) {
                os << name << labelStr << " " << s.gauge->value() << "\n";
            } else {
                const Histogram &h = *s.histogram;
                // Cumulative buckets; the le label joins the series
                // labels inside one brace pair.
                std::string prefix = "{";
                if (!labelStr.empty())
                    prefix = labelStr.substr(0, labelStr.size() - 1) + ",";
                uint64_t cum = 0;
                for (size_t i = 0; i < h.bounds().size(); ++i) {
                    cum += h.bucketCount(i);
                    os << name << "_bucket" << prefix << "le=\""
                       << fmtBound(h.bounds()[i]) << "\"} " << cum
                       << "\n";
                }
                cum += h.bucketCount(h.bounds().size());
                os << name << "_bucket" << prefix << "le=\"+Inf\"} "
                   << cum << "\n";
                os << name << "_sum" << labelStr << " "
                   << fmtDouble(h.sum()) << "\n";
                os << name << "_count" << labelStr << " " << h.count()
                   << "\n";
            }
        }
    }
}

std::string
MetricsRegistry::prometheusText() const
{
    std::ostringstream os;
    writePrometheus(os);
    return os.str();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lk(_m);
    auto labelsJson = [&os](const MetricLabels &labels) {
        os << "{";
        bool first = true;
        for (const auto &[k, v] : labels) {
            if (!first)
                os << ", ";
            first = false;
            jsonQuote(os, k);
            os << ": ";
            jsonQuote(os, v);
        }
        os << "}";
    };

    os << "{\n  \"metrics\": [";
    bool first = true;
    for (const auto &[name, fam] : _families) {
        for (const auto &[labelStr, s] : fam.series) {
            os << (first ? "\n" : ",\n");
            first = false;
            os << "    {\"name\": ";
            jsonQuote(os, name);
            os << ", \"type\": \""
               << (fam.kind == Kind::Counter
                       ? "counter"
                       : fam.kind == Kind::Gauge ? "gauge" : "histogram")
               << "\", \"labels\": ";
            labelsJson(s.labels);
            if (fam.kind == Kind::Counter) {
                os << ", \"value\": " << s.counter->value();
            } else if (fam.kind == Kind::Gauge) {
                os << ", \"value\": " << s.gauge->value();
            } else {
                const Histogram &h = *s.histogram;
                os << ", \"count\": " << h.count() << ", \"sum\": ";
                jsonNumber(os, h.sum());
                os << ", \"buckets\": [";
                uint64_t cum = 0;
                for (size_t i = 0; i < h.bounds().size(); ++i) {
                    cum += h.bucketCount(i);
                    os << (i == 0 ? "" : ", ") << "{\"le\": ";
                    jsonNumber(os, h.bounds()[i]);
                    os << ", \"count\": " << cum << "}";
                }
                cum += h.bucketCount(h.bounds().size());
                os << (h.bounds().empty() ? "" : ", ")
                   << "{\"le\": null, \"count\": " << cum << "}]";
            }
            os << "}";
        }
    }
    os << "\n  ]\n}\n";
}

std::string
MetricsRegistry::jsonText() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

} // namespace vpsim
