#include "sim/result_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace vpsim
{

/**
 * Bump on any change to the set or meaning of exported stats (StatGroup
 * registrations, SimResult fields, formula semantics). Stale entries
 * keyed under an older tag then miss instead of returning numbers the
 * current code would not reproduce.
 */
const char *const statSchemaVersion = "vpsim-stats-v5";

uint64_t
fnv1a64(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
resultKeyString(const SimConfig &cfg, const std::string &workload)
{
    std::string key;
    key.reserve(1024);
    key += "schema=";
    key += statSchemaVersion;
    key += ";workload=";
    key += workload;
    key += ';';
    key += cfg.canonicalKey();
    return key;
}

uint64_t
resultKey(const SimConfig &cfg, const std::string &workload)
{
    return fnv1a64(resultKeyString(cfg, workload));
}

namespace
{

// ---------------------------------------------------------------------
// Minimal JSON reader for the flat cache-entry shape this file writes.
// Any deviation makes the entry a cache miss, so unknown constructs
// simply fail the parse.
// ---------------------------------------------------------------------

struct JsonCursor
{
    const char *p;
    const char *end;

    bool atEnd() const { return p >= end; }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r')) {
            ++p;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (atEnd() || *p != c)
            return false;
        ++p;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (atEnd() || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c == '\\') {
                if (atEnd())
                    return false;
                char e = *p++;
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  default: return false; // \uXXXX never written here.
                }
            } else {
                out += c;
            }
        }
        if (atEnd())
            return false;
        ++p; // Closing quote.
        return true;
    }

    bool
    parseNumber(double &out)
    {
        skipWs();
        char *after = nullptr;
        out = std::strtod(p, &after);
        if (after == p)
            return false;
        p = after;
        return true;
    }

    bool
    parseBool(bool &out)
    {
        skipWs();
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
            out = true;
            p += 4;
            return true;
        }
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
            out = false;
            p += 5;
            return true;
        }
        return false;
    }
};

bool
parseEntry(const std::string &text, const std::string &expectKey,
           SimResult &out)
{
    JsonCursor c{text.data(), text.data() + text.size()};
    if (!c.consume('{'))
        return false;

    bool keyOk = false;
    bool first = true;
    while (true) {
        if (c.consume('}'))
            break;
        if (!first && !c.consume(','))
            return false;
        first = false;
        std::string field;
        if (!c.parseString(field) || !c.consume(':'))
            return false;
        if (field == "schema" || field == "key" || field == "workload") {
            std::string v;
            if (!c.parseString(v))
                return false;
            if (field == "schema" && v != statSchemaVersion)
                return false;
            if (field == "key") {
                if (v != expectKey)
                    return false; // Hash collision or stale keying.
                keyOk = true;
            }
            if (field == "workload")
                out.workload = v;
        } else if (field == "halted") {
            if (!c.parseBool(out.halted))
                return false;
        } else if (field == "cycles") {
            double v;
            if (!c.parseNumber(v))
                return false;
            out.cycles = static_cast<Cycle>(v);
        } else if (field == "usefulInsts") {
            double v;
            if (!c.parseNumber(v))
                return false;
            out.usefulInsts = static_cast<uint64_t>(v);
        } else if (field == "usefulIpc") {
            if (!c.parseNumber(out.usefulIpc))
                return false;
        } else if (field == "stats") {
            if (!c.consume('{'))
                return false;
            bool firstStat = true;
            while (true) {
                if (c.consume('}'))
                    break;
                if (!firstStat && !c.consume(','))
                    return false;
                firstStat = false;
                std::string name;
                double v;
                if (!c.parseString(name) || !c.consume(':') ||
                    !c.parseNumber(v)) {
                    return false;
                }
                out.stats[name] = v;
            }
        } else {
            return false; // Unknown field: treat as a miss.
        }
    }
    return keyOk;
}

/**
 * %.17g round-trips every finite IEEE-754 double exactly, which the
 * serial-vs-parallel bit-identity guarantee extends to cache hits.
 */
void
printDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

bool
makeDir(const std::string &dir)
{
    if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    return false;
}

} // namespace

ResultCache::ResultCache(std::string dir, uint64_t maxBytes)
    : _dir(std::move(dir)), _maxBytes(maxBytes),
      _hits(&MetricsRegistry::instance().counter(
          "vpsim_result_cache_hits_total",
          "Persistent result-cache lookups answered from disk")),
      _misses(&MetricsRegistry::instance().counter(
          "vpsim_result_cache_misses_total",
          "Persistent result-cache lookups that missed (absent, "
          "unparseable, or stale entry)")),
      _evictions(&MetricsRegistry::instance().counter(
          "vpsim_result_cache_evictions_total",
          "Cache-directory entries evicted by the size cap")),
      _hitsBase(_hits->value()), _missesBase(_misses->value()),
      _evictionsBase(_evictions->value())
{
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats s;
    s.hits = _hits->value() - _hitsBase;
    s.misses = _misses->value() - _missesBase;
    s.evictions = _evictions->value() - _evictionsBase;
    return s;
}

std::string
ResultCache::entryPath(const SimConfig &cfg,
                       const std::string &workload) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016" PRIx64,
                  resultKey(cfg, workload));
    return _dir + "/" + name + ".json";
}

bool
ResultCache::lookup(const SimConfig &cfg, const std::string &workload,
                    SimResult &out) const
{
    if (!enabled())
        return false;
    std::ifstream is(entryPath(cfg, workload));
    if (!is) {
        _misses->inc();
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    SimResult parsed;
    if (!parseEntry(buf.str(), resultKeyString(cfg, workload), parsed)) {
        _misses->inc();
        return false;
    }
    out = std::move(parsed);
    _hits->inc();
    return true;
}

void
ResultCache::store(const SimConfig &cfg, const std::string &workload,
                   const SimResult &r) const
{
    if (!enabled())
        return;
    if (!makeDir(_dir)) {
        warn("result cache: cannot create '%s': %s", _dir.c_str(),
             std::strerror(errno));
        return;
    }

    std::string body;
    body.reserve(4096);
    body += "{\n  \"schema\": ";
    {
        std::ostringstream q;
        jsonQuote(q, statSchemaVersion);
        body += q.str();
        body += ",\n  \"key\": ";
        std::ostringstream qk;
        jsonQuote(qk, resultKeyString(cfg, workload));
        body += qk.str();
        body += ",\n  \"workload\": ";
        std::ostringstream qw;
        jsonQuote(qw, r.workload);
        body += qw.str();
    }
    body += ",\n  \"cycles\": ";
    printDouble(body, static_cast<double>(r.cycles));
    body += ",\n  \"usefulInsts\": ";
    printDouble(body, static_cast<double>(r.usefulInsts));
    body += ",\n  \"usefulIpc\": ";
    printDouble(body, r.usefulIpc);
    body += ",\n  \"halted\": ";
    body += r.halted ? "true" : "false";
    body += ",\n  \"stats\": {";
    bool first = true;
    for (const auto &[name, value] : r.stats) {
        body += first ? "\n" : ",\n";
        first = false;
        body += "    ";
        std::ostringstream q;
        jsonQuote(q, name);
        body += q.str();
        body += ": ";
        printDouble(body, value);
    }
    body += "\n  }\n}\n";

    // Write-to-temp + rename so a concurrent reader (other pool worker,
    // other figure process) never sees a partial entry. The temp name
    // carries the pid so concurrent writers of the same key cannot
    // clobber each other's staging file.
    const std::string path = entryPath(cfg, workload);
    char pidbuf[32];
    std::snprintf(pidbuf, sizeof(pidbuf), ".tmp.%ld",
                  static_cast<long>(::getpid()));
    const std::string tmp = path + pidbuf;
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) {
        warn("result cache: cannot write '%s': %s", tmp.c_str(),
             std::strerror(errno));
        return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    bool ok = std::fclose(f) == 0;
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result cache: cannot finalize '%s'", path.c_str());
        std::remove(tmp.c_str());
        return;
    }
    enforceCap();
}

void
ResultCache::enforceCap() const
{
    if (!enabled() || _maxBytes == 0)
        return;

    struct Entry
    {
        std::string path;
        int64_t mtime;
        uint64_t size;
    };

    // Cap the whole directory: result entries (.json) and fast-forward
    // checkpoints (.ckpt) share it. In-progress .tmp.<pid> staging
    // files are never touched.
    std::vector<Entry> entries;
    uint64_t total = 0;
    DIR *d = ::opendir(_dir.c_str());
    if (d == nullptr)
        return;
    while (struct dirent *de = ::readdir(d)) {
        const std::string name = de->d_name;
        auto endsWith = [&name](const char *suf) {
            size_t n = std::strlen(suf);
            return name.size() >= n &&
                   name.compare(name.size() - n, n, suf) == 0;
        };
        if (!endsWith(".json") && !endsWith(".ckpt"))
            continue;
        Entry e;
        e.path = _dir + "/" + name;
        struct stat st;
        if (::stat(e.path.c_str(), &st) != 0)
            continue; // Concurrently evicted: nothing to count.
        e.mtime = static_cast<int64_t>(st.st_mtime);
        e.size = static_cast<uint64_t>(st.st_size);
        total += e.size;
        entries.push_back(std::move(e));
    }
    ::closedir(d);
    if (total <= _maxBytes)
        return;

    // Least-recently-written first; path tie-break keeps the order
    // deterministic within one mtime second.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const Entry &e : entries) {
        if (total <= _maxBytes)
            break;
        if (::unlink(e.path.c_str()) != 0 && errno != ENOENT)
            continue; // Keep going: maybe a later entry is removable.
        total -= e.size;
        _evictions->inc();
    }
}

ResultCache
ResultCache::standard()
{
    const char *noCache = std::getenv("MTVP_NO_CACHE");
    if (noCache != nullptr && std::strtoull(noCache, nullptr, 0) != 0)
        return ResultCache("");
    const char *dir = std::getenv("MTVP_CACHE_DIR");
    const char *cap = std::getenv("MTVP_CACHE_MAX_MB");
    uint64_t maxBytes =
        cap != nullptr ? std::strtoull(cap, nullptr, 0) * 1024 * 1024 : 0;
    return ResultCache(dir != nullptr ? dir : "bench-cache", maxBytes);
}

} // namespace vpsim
