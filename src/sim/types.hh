/**
 * @file
 * Fundamental scalar types shared by every vpsim subsystem.
 */

#ifndef VPSIM_SIM_TYPES_HH
#define VPSIM_SIM_TYPES_HH

#include <bit>
#include <cstdint>
#include <limits>

namespace vpsim
{

/** Simulated clock cycle. Cycle 0 is the first simulated cycle. */
using Cycle = uint64_t;

/** Simulated virtual address (byte granularity). */
using Addr = uint64_t;

/** A 64-bit architectural register value (integer or raw FP bits). */
using RegVal = uint64_t;

/** Identifier of a hardware thread context on the SMT core. */
using CtxId = int;

/** Identifier of a physical register. */
using PhysReg = int32_t;

/** Monotonic per-run dynamic instruction sequence number. */
using InstSeqNum = uint64_t;

/** Sentinel for "no context". */
inline constexpr CtxId invalidCtx = -1;

/** Sentinel for "no physical register". */
inline constexpr PhysReg invalidPhysReg = -1;

/** Sentinel cycle meaning "never" / "not scheduled". */
inline constexpr Cycle neverCycle = std::numeric_limits<Cycle>::max();

/**
 * Cache level that serviced (or would service) a data access. Lives
 * here rather than in mem/ because the core records it on in-flight
 * loads (core/dyn_inst.hh) and the CPI-stack accounting consumes it
 * without needing the full hierarchy model.
 */
enum class MemLevel : int
{
    StoreBuffer = 0, ///< Fully forwarded (assigned by the core, not mem).
    L1 = 1,
    L2 = 2,
    L3 = 3,
    Memory = 4,
    Stream = 5,      ///< Stream-buffer hit.
};

/** Bit-cast helpers for moving doubles through RegVal without UB. */
inline RegVal fpToBits(double d) { return std::bit_cast<RegVal>(d); }
inline double bitsToFp(RegVal v) { return std::bit_cast<double>(v); }

} // namespace vpsim

#endif // VPSIM_SIM_TYPES_HH
