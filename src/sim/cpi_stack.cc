#include "sim/cpi_stack.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace vpsim
{

const char *
cpiSlotName(CpiSlot s)
{
    switch (s) {
      case CpiSlot::Base: return "base";
      case CpiSlot::IcacheMiss: return "icacheMiss";
      case CpiSlot::DcacheL1: return "dcacheL1";
      case CpiSlot::DcacheL2: return "dcacheL2";
      case CpiSlot::DcacheL3: return "dcacheL3";
      case CpiSlot::DcacheMem: return "dcacheMem";
      case CpiSlot::BranchSquash: return "branchSquash";
      case CpiSlot::VpSquash: return "vpSquash";
      case CpiSlot::WindowFull: return "windowFull";
      case CpiSlot::IqFull: return "iqFull";
      case CpiSlot::LsqFull: return "lsqFull";
      case CpiSlot::FetchStarved: return "fetchStarved";
      case CpiSlot::SpawnOverhead: return "spawnOverhead";
      case CpiSlot::Idle: return "idle";
      case CpiSlot::NumSlots: break;
    }
    return "?";
}

const char *
cpiSlotDesc(CpiSlot s)
{
    switch (s) {
      case CpiSlot::Base:
        return "cycles committing or on intrinsic execute latency";
      case CpiSlot::IcacheMiss:
        return "cycles stalled on instruction-cache fills";
      case CpiSlot::DcacheL1:
        return "cycles blocked on a load serviced by L1/store buffer";
      case CpiSlot::DcacheL2:
        return "cycles blocked on a load serviced by the L2";
      case CpiSlot::DcacheL3:
        return "cycles blocked on a load serviced by the L3";
      case CpiSlot::DcacheMem:
        return "cycles blocked on a load serviced by memory or an "
               "in-flight prefetch";
      case CpiSlot::BranchSquash:
        return "cycles awaiting a control-misprediction redirect";
      case CpiSlot::VpSquash:
        return "cycles re-executing after a value misprediction";
      case CpiSlot::WindowFull:
        return "cycles dispatch-blocked on ROB/rename registers";
      case CpiSlot::IqFull:
        return "cycles dispatch-blocked on a full int/FP issue queue";
      case CpiSlot::LsqFull:
        return "cycles blocked on the memory queue or store buffer";
      case CpiSlot::FetchStarved:
        return "cycles with nothing dispatchable from the front end";
      case CpiSlot::SpawnOverhead:
        return "cycles of MTVP spawn latency / SFP stall / warm-up";
      case CpiSlot::Idle:
        return "cycles with the context inactive";
      case CpiSlot::NumSlots:
        break;
    }
    return "?";
}

CpiStack::CpiStack(StatGroup &stats, int numContexts)
    : _numContexts(numContexts),
      _counts(static_cast<size_t>(numContexts) * numCpiSlots, 0)
{
    vpsim_assert(numContexts >= 1);
    for (int c = 0; c < numContexts; ++c) {
        for (unsigned s = 0; s < numCpiSlots; ++s) {
            CpiSlot slot = static_cast<CpiSlot>(s);
            const uint64_t *cell =
                &_counts[static_cast<size_t>(c) * numCpiSlots + s];
            // Zero-padded thread index: cpi.t00..cpi.t63 sorts
            // correctly for JSON/CSV consumers beyond 9 contexts
            // (numContexts is capped at 64 by SimConfig::validate).
            // The old single-digit spelling stays readable through
            // legacyStatAlias (sim/stats.hh).
            _formulas.push_back(std::make_unique<Formula>(
                stats, csprintf("cpi.t%02d.%s", c, cpiSlotName(slot)),
                cpiSlotDesc(slot),
                [cell] { return static_cast<double>(*cell); }));
        }
    }
    for (unsigned s = 0; s < numCpiSlots; ++s) {
        CpiSlot slot = static_cast<CpiSlot>(s);
        _formulas.push_back(std::make_unique<Formula>(
            stats, csprintf("cpi.all.%s", cpiSlotName(slot)),
            csprintf("all contexts: %s", cpiSlotDesc(slot)),
            [this, slot] {
                return static_cast<double>(slotTotal(slot));
            }));
    }
}

uint64_t
CpiStack::count(CtxId ctx, CpiSlot slot) const
{
    vpsim_assert(ctx >= 0 && ctx < _numContexts);
    return _counts[static_cast<size_t>(ctx) * numCpiSlots +
                   static_cast<unsigned>(slot)];
}

uint64_t
CpiStack::total(CtxId ctx) const
{
    uint64_t sum = 0;
    for (unsigned s = 0; s < numCpiSlots; ++s)
        sum += count(ctx, static_cast<CpiSlot>(s));
    return sum;
}

uint64_t
CpiStack::slotTotal(CpiSlot slot) const
{
    uint64_t sum = 0;
    for (int c = 0; c < _numContexts; ++c)
        sum += count(c, slot);
    return sum;
}

void
CpiStack::printReport(std::ostream &os) const
{
    os << "CPI stack (per hardware thread; slots sum to total "
          "cycles)\n";
    char line[160];
    std::snprintf(line, sizeof(line), "%-14s", "slot");
    os << line;
    for (int c = 0; c < _numContexts; ++c) {
        char lbl[16];
        std::snprintf(lbl, sizeof(lbl), "t%d", c);
        std::snprintf(line, sizeof(line), " %11s", lbl);
        os << line;
    }
    os << "\n";
    for (unsigned s = 0; s < numCpiSlots; ++s) {
        CpiSlot slot = static_cast<CpiSlot>(s);
        std::snprintf(line, sizeof(line), "%-14s", cpiSlotName(slot));
        os << line;
        for (int c = 0; c < _numContexts; ++c) {
            uint64_t tot = total(c);
            double pct = tot != 0 ? 100.0 *
                                        static_cast<double>(
                                            count(c, slot)) /
                                        static_cast<double>(tot)
                                  : 0.0;
            std::snprintf(line, sizeof(line), " %10.1f%%", pct);
            os << line;
        }
        os << "\n";
    }
    std::snprintf(line, sizeof(line), "%-14s", "cycles");
    os << line;
    for (int c = 0; c < _numContexts; ++c) {
        std::snprintf(line, sizeof(line), " %11llu",
                      static_cast<unsigned long long>(total(c)));
        os << line;
    }
    os << "\n";
}

} // namespace vpsim
