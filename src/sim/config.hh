/**
 * @file
 * Simulator configuration. The defaults reproduce Table 1 of Tuck &
 * Tullsen, "Multithreaded Value Prediction" (HPCA-11, 2005). Every
 * experiment knob in the paper's Section 5 (spawn latency, store-buffer
 * size, fetch policy, predictor choice, load selector, thread count,
 * multi-value spawning, idealized wide window) is a field here.
 */

#ifndef VPSIM_SIM_CONFIG_HH
#define VPSIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

namespace vpsim
{

/** How value speculation is exploited by the core. */
enum class VpMode
{
    None,      ///< No value prediction at all (baseline).
    Stvp,      ///< Single-threaded VP with selective reissue.
    Mtvp,      ///< Threaded VP: spawn a context on a predicted load.
    SpawnOnly, ///< Spawn a thread past the load w/o predicting its value.
};

/** Which value predictor produces predictions. */
enum class PredictorKind
{
    Oracle,       ///< Always correct (limit study, Section 5.1).
    WangFranklin, ///< Hybrid VHT/ValPHT predictor (Section 5.4).
    Dfcm,         ///< Order-3 DFCM with improved index (Section 5.4).
    Stride,       ///< Last-value + stride (component baseline).
    LastValue,    ///< Last value only (component baseline).
};

/** Which loads are selected for (threaded) value prediction. */
enum class SelectorKind
{
    IlpPred,      ///< Forward-progress-rate selector (the paper's default).
    CacheOracle,  ///< Oracle cache level: L3 miss => MTVP, L1 miss => STVP.
    Always,       ///< Predict every confident load.
};

/** Fetch behaviour of the spawning thread after an MTVP spawn. */
enum class FetchPolicy
{
    SingleFetchPath, ///< Parent stops fetching until the load resolves.
    NoStall,         ///< Parent keeps fetching; ICOUNT arbitration (5.5).
};

/** Simulator configuration; defaults are the paper's Table 1. */
struct SimConfig
{
    // ----- Pipeline (Table 1) -----
    int pipelineDepth = 30;     ///< Total stages (sets redirect penalty).
    int frontEndDepth = 14;     ///< Fetch-to-rename stages modeled as delay.
    int fetchWidth = 16;        ///< Instructions fetched per cycle.
    int fetchLines = 2;         ///< Max cache lines feeding one fetch.
    int fetchThreads = 2;       ///< Threads fetched per cycle (ICOUNT.2).
    int dispatchWidth = 8;      ///< Rename/dispatch bandwidth.
    int issueWidth = 8;         ///< Total issue bandwidth per cycle.
    int intIssue = 6;           ///< Integer issue slots per cycle.
    int fpIssue = 2;            ///< FP issue slots per cycle.
    int memIssue = 4;           ///< Load/store issue slots per cycle.
    int commitWidth = 8;        ///< Per-context commit bandwidth.
    int robSize = 256;          ///< Shared ROB entries.
    int renameRegs = 224;       ///< Rename registers beyond architectural.
    int iqSize = 64;            ///< Integer queue entries (shared).
    int fqSize = 64;            ///< FP queue entries (shared).
    int mqSize = 64;            ///< Memory queue entries (shared).

    // ----- Branch prediction (Table 1) -----
    uint32_t bpredMetaEntries = 64 * 1024;
    uint32_t bpredGshareEntries = 64 * 1024;
    uint32_t bpredBimodalEntries = 16 * 1024;
    uint32_t btbEntries = 4096;
    int rasEntries = 32;

    // ----- Memory hierarchy (Table 1) -----
    uint32_t lineSize = 64;
    uint32_t icacheSize = 64 * 1024;
    uint32_t icacheAssoc = 2;
    int icacheLatency = 2;
    uint32_t dcacheSize = 64 * 1024;
    uint32_t dcacheAssoc = 2;
    int dcacheLatency = 2;
    uint32_t l2Size = 512 * 1024;
    uint32_t l2Assoc = 8;
    int l2Latency = 20;
    uint32_t l3Size = 4 * 1024 * 1024;
    uint32_t l3Assoc = 16;
    int l3Latency = 50;
    int memLatency = 1000;

    // ----- Stride prefetcher (Table 1) -----
    bool prefetchEnabled = true;
    uint32_t prefetchEntries = 256;
    int streamBuffers = 8;
    int streamBufferDepth = 4;

    // ----- Value prediction / MTVP (Section 3-5 knobs) -----
    VpMode vpMode = VpMode::None;
    PredictorKind predictor = PredictorKind::WangFranklin;
    SelectorKind selector = SelectorKind::IlpPred;
    FetchPolicy fetchPolicy = FetchPolicy::SingleFetchPath;
    int numContexts = 1;        ///< Hardware thread contexts (1/2/4/8).
    int spawnLatency = 8;       ///< Cycles to flash-copy a rename map.
    int storeBufferSize = 128;  ///< Entries per context; 0 = unbounded.
    int maxValuesPerSpawn = 1;  ///< >1 enables multiple-value MTVP (5.6).
    int confidenceThreshold = 12;
    int confidenceMax = 32;
    int confidenceUp = 1;
    int confidenceDown = 8;
    /** Liberal confidence threshold used by the 5.6 multi-value study. */
    int multiValueThreshold = 4;

    // ----- Idealized machines (Section 5.7) -----
    bool wideWindow = false;    ///< 8K ROB, 8K queues, unlimited regs.

    // ----- Run control -----
    uint64_t maxInsts = 100000; ///< Useful instructions to simulate.
    uint64_t maxCycles = 0;     ///< 0 = no cycle cap.
    uint64_t seed = 1;          ///< Workload data-set seed.
    /** Instructions to fast-forward functionally (emulator-only, with
     *  structure warming) before detailed simulation begins. Counts
     *  toward maxInsts: a run with ffInsts=N and maxInsts=M simulates
     *  M-N instructions in detail. 0 = fully detailed run. */
    uint64_t ffInsts = 0;
    /** SimPoint-style interval sampling: number of measured intervals
     *  spread evenly over the post-fast-forward instruction stream.
     *  0 = no sampling (the whole detailed region is measured). */
    int sampleIntervals = 0;
    /** Measured detailed instructions per interval. */
    uint64_t sampleIntervalInsts = 50000;
    /** Unmeasured detailed warmup instructions preceding each measured
     *  interval (re-times in-flight/queue state the fast-forward warm
     *  structures cannot carry). */
    uint64_t sampleWarmupInsts = 10000;
    /** Next-event time skip: when a whole tick provably did nothing,
     *  advance straight to the earliest pending event instead of
     *  ticking idle cycles one by one. The engine is exact — every
     *  statistic is bit-identical with timeSkip=0 — so like the
     *  telemetry knobs it is excluded from canonicalKey(). It
     *  auto-disables under pipeView= (the trace wants every cycle)
     *  and inside an active DPRINTF trace window. */
    uint64_t timeSkip = 1;

    // ----- Tracing & telemetry (src/sim/trace.hh) -----
    /** Comma-separated debug-flag names/globs ("MTVP,Commit", "St*");
     *  empty disables DPRINTF tracing entirely. */
    std::string traceFlags;
    uint64_t traceStart = 0;    ///< First traced cycle.
    uint64_t traceEnd = 0;      ///< One past the last traced cycle (0 = none).
    std::string traceFile;      ///< DPRINTF sink file ("" = stderr).
    std::string pipeView;       ///< O3PipeView/Konata pipeline trace file.
    std::string statsJson;      ///< End-of-run JSON stats dump file.
    uint64_t samplePeriod = 0;  ///< Snapshot stats every N cycles (0 = off).
    std::string sampleStats;    ///< Stat names/globs to sample ("" = all).
    std::string sampleFile;     ///< Time series file (.json = JSON, else CSV).

    // ----- Observability (src/sim/cpi_stack.hh, src/sim/profiler.hh) ---
    /** End-of-run per-thread CPI-stack report sink: empty = none,
     *  "-" = stdout, otherwise a file path. (Accounting itself is
     *  always on; this only controls the human-readable report.) */
    std::string cpiStack;
    /** Enable the host self-profiler (scoped timers over pipeline
     *  stages, cache lookups, and predictor work). Costs two clock
     *  reads per instrumented scope when on; free when off. */
    bool profile = false;
    /** End-of-run Chrome trace-event JSON (Perfetto) file: simulated-
     *  time spawn/squash/time-skip tracks per hardware context (plus
     *  host worker tracks when MTVP_PERFETTO is also recording).
     *  Empty = off; also enables the analytics timeline. */
    std::string perfettoTrace;
    /** End-of-run provenance-analytics report (spawn-outcome table,
     *  per-spawn-PC and per-load-PC attribution): empty = none,
     *  "-" = stdout, otherwise a file path. */
    std::string analytics;
    /** End-of-run JSON dump of the process-wide engine MetricsRegistry
     *  (host-side telemetry: pool/cache/checkpoint/watchdog counters —
     *  *not* simulated stats; those are statsJson=). Empty = off. */
    std::string metricsJson;
    /** Directory of the persistent checkpoint store ("" = off). When
     *  set and ffInsts > 0, the post-fast-forward machine state is
     *  saved under warmupKey()+workload+ffInsts and reused by any later
     *  run sharing that warm state — restore is bit-identical to
     *  fast-forwarding live, so this is a pure wall-clock knob. */
    std::string checkpointDir;

    /** Apply one "key=value" override; fatal() on unknown key/value. */
    void set(const std::string &key, const std::string &value);

    /** Human-readable multi-line summary. */
    std::string toString() const;

    /**
     * Canonical one-line serialization of *every* result-affecting field
     * (telemetry outputs such as traceFlags/statsJson are excluded, as
     * is timeSkip: none of them change SimResult). This is the string the persistent result
     * cache and the bench runners hash; adding a result-affecting field
     * to SimConfig without extending canonicalKey() silently aliases
     * distinct configs, so config_test cross-checks it against set().
     */
    std::string canonicalKey() const;

    /**
     * Canonical serialization of only the fields that shape the warm
     * state a fast-forward produces (cache/bpred/btb/ras/prefetcher
     * geometry, predictor kind and confidence dynamics, seed). Two
     * configs with equal warmupKey() — e.g. baseline vs STVP vs MTVP
     * sweep points — can share one fast-forward checkpoint.
     */
    std::string warmupKey() const;

    /** Effective ROB/queue/register sizes after wideWindow expansion. */
    int effRobSize() const { return wideWindow ? 8192 : robSize; }
    int effIqSize() const { return wideWindow ? 8192 : iqSize; }
    int effFqSize() const { return wideWindow ? 8192 : fqSize; }
    int effMqSize() const { return wideWindow ? 8192 : mqSize; }
    int effRenameRegs() const { return wideWindow ? 1 << 20 : renameRegs; }

    /** Validate cross-field consistency; fatal() on bad combinations. */
    void validate() const;
};

/** Enum <-> string helpers (used by config parsing and bench output). */
const char *toString(VpMode m);
const char *toString(PredictorKind k);
const char *toString(SelectorKind k);
const char *toString(FetchPolicy p);

} // namespace vpsim

#endif // VPSIM_SIM_CONFIG_HH
