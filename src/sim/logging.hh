/**
 * @file
 * Error and status reporting in the gem5 idiom: panic() for internal
 * simulator bugs (aborts), fatal() for user/configuration errors (exits),
 * warn()/inform() for status messages.
 */

#ifndef VPSIM_SIM_LOGGING_HH
#define VPSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace vpsim
{

/**
 * Report an internal simulator bug and abort. Use when a condition that
 * should be impossible regardless of user input has occurred.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error (bad configuration, malformed
 * assembly, ...) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report suspicious-but-survivable conditions to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operational status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/**
 * Redirect the warn()/inform() sink to @p path (every message goes
 * through this one sink); empty restores stderr. panic()/fatal() always
 * reach stderr as well, so crashes stay visible.
 */
void setLogFile(const std::string &path);

/**
 * Register the live simulation's cycle counter; while set, every logged
 * message is prefixed with the current cycle so interleaved bench output
 * is attributable. Pass nullptr when the simulation ends. The Cpu does
 * both automatically. The registration is per-thread: a pool worker's
 * messages carry the cycle of the simulation running on that worker.
 */
void setLogCycleSource(const uint64_t *cycle);

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list flavour of csprintf (shared by the tracing layer). */
std::string vcsprintf(const char *fmt, va_list ap);

/** Implementation hook for vpsim_assert; formats and panics. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Internal assertion that is always compiled in (unlike assert()).
 * Prefer this in invariant-heavy simulator datapaths. Optional trailing
 * printf-style message: vpsim_assert(x > 0, "x=%d", x).
 */
#define vpsim_assert(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::vpsim::panicAssert(#cond, __FILE__, __LINE__,              \
                                 "" __VA_ARGS__);                        \
        }                                                                \
    } while (0)

/**
 * Debug-build-only flavour for checks too hot for release datapaths
 * (per-candidate issue-scan invariants, handle-generation checks).
 * Compiled out under NDEBUG.
 */
#ifndef NDEBUG
#define vpsim_assert_dbg(cond, ...) vpsim_assert(cond, ##__VA_ARGS__)
#else
#define vpsim_assert_dbg(cond, ...)                                      \
    do {                                                                 \
    } while (0)
#endif

} // namespace vpsim

#endif // VPSIM_SIM_LOGGING_HH
