#include "core/cpu.hh"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "isa/disasm.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/watchdog.hh"

namespace vpsim
{

namespace
{

int
poolCapacity(const SimConfig &cfg, int archRegsPerCtx)
{
    return archRegsPerCtx * cfg.numContexts + cfg.effRenameRegs();
}

/** Abort when no context commits for this long. */
constexpr Cycle watchdogCycles = 1000000;

/** Abort when nothing in the machine moves — and, in skip mode, no
 *  event is armed — for this long. Far smaller than the watchdog: a
 *  deadlocked machine has nothing to wait for. */
constexpr Cycle deadlockGuardCycles = 10000;

/** Two-sided 97.5% Student-t quantiles for 1..30 degrees of freedom;
 *  beyond 30 the normal quantile is within 2%. */
constexpr double tTable975[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048,  2.045, 2.042,
};

double
t975(size_t df)
{
    if (df == 0)
        return 0.0;
    return df <= 30 ? tTable975[df - 1] : 1.96;
}

} // namespace

Cpu::Cpu(const SimConfig &cfg, MainMemory &mem, Addr entryPc)
    : _cfg(cfg),
      _mem(mem),
      _stats("cpu"),
      _emu(mem),
      _hier(_stats, _cfg),
      _bpred(_stats, cfg.bpredBimodalEntries, cfg.bpredGshareEntries,
             cfg.bpredMetaEntries, cfg.numContexts),
      _btb(_stats, cfg.btbEntries),
      _vpred(makeValuePredictor(_cfg, _stats)),
      _selector(makeLoadSelector(_cfg)),
      _intRegs(poolCapacity(_cfg, numIntRegs)),
      _fpRegs(poolCapacity(_cfg, numFpRegs)),
      _intTaint(static_cast<size_t>(_intRegs.capacity()), 0),
      _fpTaint(static_cast<size_t>(_fpRegs.capacity()), 0),
      _iq(_stats, "iq", _cfg.effIqSize()),
      _fq(_stats, "fq", _cfg.effFqSize()),
      _mq(_stats, "mq", _cfg.effMqSize()),
      _ctxs(static_cast<size_t>(_cfg.numContexts)),
      _spawnSeq(static_cast<size_t>(_cfg.numContexts), 0),
      _inflightStores(static_cast<size_t>(_cfg.numContexts)),
      _cpi(_stats, _cfg.numContexts),
      _prof(_cfg.profile),
      _intWake(_intRegs, _fpRegs, _intRegs.capacity(), _prof),
      _fpWake(_intRegs, _fpRegs, _fpRegs.capacity(), _prof),
      _analytics(_stats, _cfg.numContexts, !_cfg.perfettoTrace.empty()),
      _vpattr(_stats),
      _commitsThisCycle(static_cast<size_t>(_cfg.numContexts), 0),
      _cpiSbBlocked(static_cast<size_t>(_cfg.numContexts), 0),
      _statCommitsTotal(_stats, "commits.total",
                        "instructions committed in any context"),
      _statDispatched(_stats, "dispatch.total", "instructions dispatched"),
      _statIssued(_stats, "issue.total", "instruction issue events"),
      _statFetched(_stats, "fetch.insts", "instructions fetched"),
      _statWrongPathFetched(_stats, "fetch.wrongPath",
                            "wrong-path instructions flushed"),
      _statVpFollowed(_stats, "vp.followed",
                      "value predictions acted upon"),
      _statVpStvp(_stats, "vp.stvp", "single-threaded value predictions"),
      _statVpMtvp(_stats, "vp.mtvp", "threaded value predictions"),
      _statVpCorrect(_stats, "vp.correct", "correct followed predictions"),
      _statVpIncorrect(_stats, "vp.incorrect",
                       "incorrect followed predictions"),
      _statVpReissued(_stats, "vp.reissues",
                      "instructions selectively reissued"),
      _statVpPrimaryWrongHadCorrect(
          _stats, "vp.primaryWrongHadCorrect",
          "followed predictions whose primary value was wrong but the "
          "correct value was in-table over threshold"),
      _statSpawns(_stats, "mtvp.spawns", "threads spawned"),
      _statSpawnExtraValues(_stats, "mtvp.extraValueSpawns",
                            "extra children from multi-value prediction"),
      _statSpawnFailNoCtx(_stats, "mtvp.spawnFailNoCtx",
                          "MTVP chosen but no free context"),
      _statPromotes(_stats, "mtvp.promotes", "speculative threads promoted"),
      _statKills(_stats, "mtvp.kills", "speculative threads killed"),
      _statSbStalls(_stats, "sb.commitStalls",
                    "store commits stalled on a full store buffer"),
      _statBranchRedirects(_stats, "fetch.redirects",
                           "fetch redirects from control mispredictions"),
      _statSelNone(_stats, "sel.none", "selector chose no prediction"),
      _statSelStvp(_stats, "sel.stvp", "selector chose STVP"),
      _statSelMtvp(_stats, "sel.mtvp", "selector chose MTVP"),
      _statSelMtvpBlocked(_stats, "sel.mtvpBlocked",
                          "MTVP unavailable at selection time"),
      _statSkippedCycles(_stats, "sim.skippedCycles",
                         "cycles bulk-advanced by the time-skip engine "
                         "(engine meta-stat: differs across timeSkip "
                         "modes by construction)"),
      _statSkipEvents(_stats, "sim.skipEvents",
                      "quiescent stretches collapsed by the time-skip "
                      "engine (engine meta-stat)")
{
    _cfg.validate();

    // Apply this run's tracing configuration (trace state is global;
    // the most recently constructed core owns it).
    trace::setFlags(_cfg.traceFlags);
    trace::setWindow(_cfg.traceStart, _cfg.traceEnd);
    trace::setOutputFile(_cfg.traceFile);
    trace::setCycle(0);
    trace::setContext(invalidCtx);
    setLogCycleSource(&_now);
    if (!_cfg.pipeView.empty())
        _tracer = std::make_unique<trace::InstTracer>(_cfg.pipeView);

    _formulas.push_back(std::make_unique<Formula>(
        _stats, "cycles", "simulated cycles",
        [this] { return static_cast<double>(_now); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "commits.useful",
        "architecturally useful committed instructions",
        [this] { return static_cast<double>(usefulInsts()); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "ipc.useful", "useful instructions per cycle",
        [this] { return usefulIpc(); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "sim.ffInsts",
        "instructions executed emulator-only by fast-forward (engine "
        "meta-stat: they cost no cycles and commit nothing)",
        [this] { return static_cast<double>(_ffInsts); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "sim.sampledIntervals",
        "measured detailed intervals recorded by the interval sampler",
        [this] { return static_cast<double>(_samples.size()); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "sample.mean.cpi",
        "mean per-interval CPI over the measured sampling intervals",
        [this] { return sampleStat(true, false); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "sample.ci95.cpi",
        "95% confidence half-width of the per-interval CPI mean",
        [this] { return sampleStat(true, true); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "sample.mean.ipc",
        "mean per-interval IPC over the measured sampling intervals",
        [this] { return sampleStat(false, false); }));
    _formulas.push_back(std::make_unique<Formula>(
        _stats, "sample.ci95.ipc",
        "95% confidence half-width of the per-interval IPC mean",
        [this] { return sampleStat(false, true); }));

    for (int i = 0; i < _cfg.numContexts; ++i) {
        _ctxs[static_cast<size_t>(i)].reset();
        _ctxs[static_cast<size_t>(i)].id = i;
        _ras.emplace_back(_cfg.rasEntries);
    }

    _vpTagLoad.resize(numVpTags);
    for (int t = numVpTags - 1; t >= 0; --t)
        _vpTagFree.push_back(t);

    // Route register-readiness changes into the issue queues' cached
    // source-ready cycles (core/wakeup.hh).
    _intRegs.setListener(&_intWake);
    _fpRegs.setListener(&_fpWake);

    // Activate context 0 as the architectural thread.
    ThreadContext &tc = _ctxs[0];
    tc.active = true;
    tc.arch.pc = entryPc;
    tc.fetchPc = entryPc;
    for (int r = 0; r < numLogicalRegs; ++r) {
        PhysReg p = poolFor(r).alloc();
        poolFor(r).setReadyAt(p, 0);
        tc.map[static_cast<size_t>(r)] = p;
    }
    tc.segment = std::make_shared<StoreSegment>(0, nullptr);
    tc.ownedSegments.push_back(tc.segment);
    _root = 0;

    // The sampler snapshots by pointer, so every stat (including the
    // formulas above) must be registered before it is built.
    if (_cfg.samplePeriod > 0) {
        _sampler = std::make_unique<trace::StatSampler>(
            _stats, _cfg.sampleStats, _cfg.samplePeriod);
    }
}

Cpu::~Cpu()
{
    setLogCycleSource(nullptr);
    // Members (ROBs, queues, pending loads) are destroyed after this
    // body runs, so live handles may still exist; the pool deletes
    // itself once the last one releases.
    _instPool->releaseOwner();
}

ThreadContext &
Cpu::ctx(CtxId id)
{
    vpsim_assert(id >= 0 && id < _cfg.numContexts);
    return _ctxs[static_cast<size_t>(id)];
}

const ThreadContext &
Cpu::ctx(CtxId id) const
{
    vpsim_assert(id >= 0 && id < _cfg.numContexts);
    return _ctxs[static_cast<size_t>(id)];
}

PhysRegFile &
Cpu::poolFor(int logicalReg)
{
    return isFpReg(logicalReg) ? _fpRegs : _intRegs;
}

const PhysRegFile &
Cpu::poolFor(int logicalReg) const
{
    return isFpReg(logicalReg) ? _fpRegs : _intRegs;
}

uint64_t &
Cpu::taintOf(int logicalReg, PhysReg reg)
{
    auto &pool = isFpReg(logicalReg) ? _fpTaint : _intTaint;
    return pool[static_cast<size_t>(reg)];
}

uint64_t
Cpu::taintOf(int logicalReg, PhysReg reg) const
{
    const auto &pool = isFpReg(logicalReg) ? _fpTaint : _intTaint;
    return pool[static_cast<size_t>(reg)];
}

int
Cpu::allocVpTag(const DynInstPtr &load)
{
    if (_vpTagFree.empty())
        return -1;
    int tag = _vpTagFree.back();
    _vpTagFree.pop_back();
    _vpTagLoad[static_cast<size_t>(tag)] = load;
    return tag;
}

void
Cpu::freeVpTag(int tag)
{
    vpsim_assert(tag >= 0 && tag < numVpTags);
    vpsim_assert(_vpTagLoad[static_cast<size_t>(tag)] != nullptr,
                 "double free of VP tag %d", tag);
    clearVpBitEverywhere(tag);
    _vpTagLoad[static_cast<size_t>(tag)].reset();
    _vpTagFree.push_back(tag);
}

void
Cpu::clearVpBitEverywhere(int tag)
{
    uint64_t clear = ~(uint64_t{1} << tag);
    for (ThreadContext &tc : _ctxs) {
        if (!tc.active)
            continue;
        for (DynInstPtr &inst : tc.rob) {
            bool open = inst->issued && inst->vpDependMask != 0;
            inst->vpDependMask &= clear;
            // An issued entry only stayed queue-resident for its open
            // vp dependences; dropping the last one frees the slot.
            if (open && inst->vpDependMask == 0)
                queueFor(inst->emu.inst).markRemovable(inst->seq);
        }
    }
    for (uint64_t &t : _intTaint)
        t &= clear;
    for (uint64_t &t : _fpTaint)
        t &= clear;
}

int
Cpu::reissueDependents(int tag, Cycle correctedReady)
{
    int reissued = 0;
    DynInstPtr load = _vpTagLoad[static_cast<size_t>(tag)];
    vpsim_assert(load != nullptr);
    ThreadContext &tc = ctx(load->ctx);
    uint64_t bit = uint64_t{1} << tag;

    // The corrected value exists at the load's completion; make the
    // load's destination honest again.
    if (load->physDest != invalidPhysReg)
        poolFor(load->emu.inst.rd).setReadyAt(load->physDest,
                                              correctedReady);

    for (DynInstPtr &inst : tc.rob) {
        if (inst->seq <= load->seq || !(inst->vpDependMask & bit))
            continue;
        if (!inst->everIssued)
            continue; // Never issued; it will simply pick up the fix.
        if (inst->issued) {
            DPRINTF(VPred, "reissue seq=%llu pc=%llx (tag %d wrong)",
                    static_cast<unsigned long long>(inst->seq),
                    static_cast<unsigned long long>(inst->emu.pc), tag);
            inst->issued = false;
            inst->readyCycle = neverCycle;
            queueFor(inst->emu.inst).markWaiting(inst->seq, _intRegs,
                                                 _fpRegs);
            // A dependent whose own value prediction is still open keeps
            // its predicted-early destination timing; everyone else's
            // result ceases to exist until re-execution.
            if (inst->physDest != invalidPhysReg && !inst->vpPredicted) {
                poolFor(inst->emu.inst.rd).setReadyAt(inst->physDest,
                                                      neverCycle);
            }
            ++_statVpReissued;
            ++reissued;
        }
    }
    return reissued;
}

namespace
{

/** Minimum ILP-pred window length: short-confirming predictions are
 *  still measured across the spawn's pipelined aftermath. */
constexpr Cycle minIlpWindow = 64;

} // namespace

int
Cpu::openIlpWindow(Addr pc, VpChoice choice)
{
    if (_cfg.selector != SelectorKind::IlpPred)
        return -1;
    int idx = -1;
    for (size_t i = 0; i < _windows.size(); ++i) {
        if (_windows[i].state == IlpWindow::State::Free) {
            idx = static_cast<int>(i);
            break;
        }
    }
    if (idx < 0) {
        _windows.emplace_back();
        idx = static_cast<int>(_windows.size()) - 1;
    }
    IlpWindow &w = _windows[static_cast<size_t>(idx)];
    w.state = IlpWindow::State::Open;
    w.pc = pc;
    w.choice = choice;
    w.startCycle = _now;
    w.startIssued = _issuedTotal;
    return idx;
}

void
Cpu::closeIlpWindow(int idx, VpChoice used)
{
    if (idx < 0)
        return;
    IlpWindow &w = _windows[static_cast<size_t>(idx)];
    vpsim_assert(w.state == IlpWindow::State::Open,
                 "closing a non-open ILP window");
    w.choice = used;
    w.closeAt = std::max(_now, w.startCycle + minIlpWindow);
    w.state = IlpWindow::State::Closing;
}

void
Cpu::cancelIlpWindow(int idx)
{
    if (idx < 0)
        return;
    _windows[static_cast<size_t>(idx)].state = IlpWindow::State::Free;
}

void
Cpu::recordMatureWindows()
{
    for (IlpWindow &w : _windows) {
        if (w.state != IlpWindow::State::Closing || _now < w.closeAt)
            continue;
        uint64_t cycles = std::max<uint64_t>(1, _now - w.startCycle);
        uint64_t issued = _issuedTotal - w.startIssued;
        _selector->recordOutcome(w.pc, w.choice, issued, cycles);
        w.state = IlpWindow::State::Free;
        ++_activity;
    }
}

void
Cpu::traceInst(const DynInst &di, Cycle retire)
{
    if (!_tracer)
        return;
    trace::InstTraceRecord r;
    r.seq = di.seq;
    r.pc = di.emu.pc;
    r.fetch = di.fetchCycle;
    // The front end is modeled as a flat delay; fold decode and rename
    // into the dispatch timestamp.
    r.decode = di.dispatchCycle;
    r.dispatch = di.dispatchCycle;
    r.issue = di.everIssued ? di.issueCycle : 0;
    r.complete = di.everIssued && di.readyCycle != neverCycle
                     ? di.readyCycle
                     : 0;
    r.retire = retire;
    r.disasm = disassemble(di.emu.inst);
    if (di.vpTraceKind == 1)
        r.disasm += " #stvp";
    else if (di.vpTraceKind == 2)
        r.disasm += " #mtvp";
    if (di.squashReason != SquashReason::None) {
        r.disasm += " #squash:";
        r.disasm += squashReasonName(di.squashReason);
    }
    _tracer->record(r);
}

int
Cpu::activeContexts() const
{
    int n = 0;
    for (const ThreadContext &tc : _ctxs)
        n += tc.active ? 1 : 0;
    return n;
}

uint64_t
Cpu::usefulInsts() const
{
    return _usefulBase + ctx(_root).committedInsts;
}

double
Cpu::usefulIpc() const
{
    return _now == 0 ? 0.0
                     : static_cast<double>(usefulInsts()) /
                           static_cast<double>(_now);
}

bool
Cpu::done() const
{
    if (_finished)
        return true;
    // Fast-forwarded instructions are part of the program stream, so
    // they count toward the maxInsts budget.
    if (_cfg.maxInsts != 0 && _ffInsts + usefulInsts() >= _cfg.maxInsts)
        return true;
    if (_cfg.maxCycles != 0 && _now >= _cfg.maxCycles)
        return true;
    return false;
}

void
Cpu::dumpPipelineState() const
{
    {
        for (const ThreadContext &tc : _ctxs) {
            if (!tc.active)
                continue;
            warn("ctx %d: rob=%zu fq=%zu fetchPc=%llx stopped=%d "
                 "halted=%d awaitInd=%d waitBr=%d stallUntil=%llu "
                 "spawnSeq=%llu parent=%d kids=%zu committed=%llu",
                 tc.id, tc.rob.size(), tc.fetchQueue.size(),
                 static_cast<unsigned long long>(tc.fetchPc),
                 tc.fetchStopped, tc.fetchHalted, tc.fetchAwaitIndirect,
                 tc.waitingBranch != nullptr,
                 static_cast<unsigned long long>(tc.fetchStallUntil),
                 static_cast<unsigned long long>(tc.activeSpawnSeq),
                 tc.parent, tc.children.size(),
                 static_cast<unsigned long long>(tc.committedInsts));
        }
        for (const ThreadContext &tc : _ctxs) {
            if (!tc.active || tc.rob.empty())
                continue;
            const DynInst &h = *tc.rob.front();
            warn("ctx %d head: seq=%llu pc=%llx op=%s issued=%d "
                 "everIssued=%d ready=%llu mask=%llx vpPred=%d tag=%d "
                 "spawned=%d",
                 tc.id, static_cast<unsigned long long>(h.seq),
                 static_cast<unsigned long long>(h.emu.pc),
                 opcodeName(h.emu.inst.op), h.issued, h.everIssued,
                 static_cast<unsigned long long>(h.readyCycle),
                 static_cast<unsigned long long>(h.vpDependMask),
                 h.vpPredicted, h.vpTag, h.spawnedThread);
            for (int i = 0; i < h.numSrcs; ++i) {
                if (h.physSrc[i] == invalidPhysReg)
                    continue;
                warn("  src%d %s preg=%d ready=%llu taint=%llx", i,
                     regName(h.srcLogical[i]).c_str(), h.physSrc[i],
                     static_cast<unsigned long long>(
                         poolFor(h.srcLogical[i]).readyAt(h.physSrc[i])),
                     static_cast<unsigned long long>(
                         taintOf(h.srcLogical[i], h.physSrc[i])));
            }
        }
        warn("pending=%zu drainQueue=%zu inFlightFills=%zu intFree=%d/%d "
             "fpFree=%d/%d iq=%d fq=%d mq=%d vpTags=%zu",
             _pending.size(), _drainQueue.size(), _hier.inFlightFills(),
             _intRegs.freeCount(), _intRegs.capacity(),
             _fpRegs.freeCount(), _fpRegs.capacity(), _iq.size(),
             _fq.size(), _mq.size(), _vpTagFree.size());
    }
}

void
Cpu::checkWatchdog()
{
    if (_now - _lastCommitCycle > watchdogCycles) {
        dumpPipelineState();
        panic("no commit in 1M cycles at cycle %llu (root=%d, rob=%d, "
              "useful=%llu)",
              static_cast<unsigned long long>(_now), _root, _robOccupancy,
              static_cast<unsigned long long>(usefulInsts()));
    }
}

void
Cpu::deadlockPanic() const
{
    dumpPipelineState();
    panic("deadlock: no pipeline activity since cycle %llu and no "
          "pending event at cycle %llu",
          static_cast<unsigned long long>(_lastActivityCycle),
          static_cast<unsigned long long>(_now));
}

/**
 * Earliest future cycle at which any machine event can fire: an
 * in-flight cache fill completes, an issued instruction's result
 * becomes ready, a waiting queue entry's sources mature, a spawned
 * context finishes its warm-up, a stalled or throttled front end
 * resumes, a fetched instruction clears the front-end delay, or an
 * ILP-measurement window closes. Thresholds at or before _now are
 * excluded: anything runnable *now* would have acted during the tick
 * that just proved itself idle, so only strictly-future times count.
 * neverCycle means nothing is armed — with no activity either, the
 * machine is provably deadlocked.
 */
Cycle
Cpu::nextEventCycle() const
{
    Cycle best = neverCycle;
    // run() calls this after tick() advanced _now, so the cycle about
    // to execute is _now itself: a threshold at exactly _now is still
    // in the future (the caller then just ticks, skipping nothing).
    // Only thresholds the idle tick already ignored (< _now) are stale.
    auto consider = [&](Cycle c) {
        if (c >= _now && c < best)
            best = c;
    };

    consider(_hier.nextEventCycle(_now));

    // Cycle at which every renamed source of @p di is ready (the issue
    // stage's sourcesReady() threshold); neverCycle when a source can
    // only be woken by another event (e.g. a vp-tagged load redo).
    auto sourcesReadyAt = [&](const DynInst &di) {
        Cycle ready = 0;
        for (int i = 0; i < di.numSrcs && ready != neverCycle; ++i) {
            PhysReg p = di.physSrc[i];
            if (p == invalidPhysReg)
                continue;
            ready = std::max(ready, poolFor(di.srcLogical[i]).readyAt(p));
        }
        return ready;
    };

    for (const ThreadContext &tc : _ctxs) {
        if (!tc.active)
            continue;
        if (!tc.rob.empty()) {
            const DynInst &h = *tc.rob.front();
            if (h.issued) {
                consider(h.readyCycle);
            } else if (!h.everIssued) {
                // Unissued head beyond the issue scan cap: its maturing
                // sources are still a CPI classification boundary.
                Cycle r = sourcesReadyAt(h);
                if (r != neverCycle)
                    consider(r);
            }
        }
        if (tc.waitingBranch != nullptr && tc.waitingBranch->issued)
            consider(tc.waitingBranch->readyCycle);
        consider(tc.spawnReadyAt);
        consider(tc.fetchStallUntil);
        if (!tc.fetchQueue.empty())
            consider(tc.fetchQueue.front().availAt);
    }

    for (const PendingLoad &pl : _pending) {
        if (pl.load->issued)
            consider(pl.load->readyCycle);
    }
    for (const IlpWindow &w : _windows) {
        if (w.state == IlpWindow::State::Closing)
            consider(w.closeAt);
    }

    // Waiting queue entries the issue stage would look at this cycle
    // (same scan cap, so an entry the per-cycle loop cannot reach does
    // not arm an event it would not act on). Entries whose sources are
    // already ready contribute nothing: either they issue during a
    // tick (activity) or they are blocked on something — an older
    // unissued store, a vp redo — that has its own event or activity.
    auto scanQueue = [&](const IssueQueue &q) {
        q.forEachWaitingReady(
            [&](Cycle r) {
                if (r != neverCycle)
                    consider(r);
            },
            issueScanCap);
    };
    scanQueue(_mq);
    scanQueue(_iq);
    scanQueue(_fq);

    return best;
}

bool
Cpu::timeSkipAllowed() const
{
    if (_cfg.traceFlags.empty())
        return true;
    // Never skip inside the DPRINTF window: traced cycles must tick one
    // by one. Before the window, tryTimeSkip caps the jump at
    // traceStart; traceEnd == 0 leaves the window open-ended.
    if (_now < _cfg.traceStart)
        return true;
    return _cfg.traceEnd != 0 && _now >= _cfg.traceEnd;
}

/**
 * The tick that just ran proved itself idle (no activity). Jump
 * straight to the earliest cycle anything can change. Between _now and
 * that target no predicate the stages or the CPI attribution evaluate
 * can flip — the target is the *minimum* future threshold — so each
 * context's CPI slot is constant across the gap and the skipped cycles
 * are charged in one add per context, exactly as the per-cycle loop
 * would have. Engine timers (sample edges, the commit watchdog,
 * maxCycles, traceStart) cap the jump so they fire on schedule.
 */
void
Cpu::tryTimeSkip()
{
    HostProfiler::Scope ps(_prof, ProfSection::TimeSkip);
    Cycle target = nextEventCycle();
    if (target == neverCycle) {
        // Nothing is armed and nothing moved: the machine can never
        // make progress again. A cycle-bounded run that ends before
        // the deadlock guard would trip is left to finish normally
        // (matching the per-cycle loop); anything else aborts now
        // instead of spinning to maxCycles.
        const Cycle guardAt = _lastActivityCycle + deadlockGuardCycles;
        if (_cfg.maxCycles == 0 || _cfg.maxCycles > guardAt)
            deadlockPanic();
        target = _cfg.maxCycles;
    }
    if (_sampler != nullptr)
        target = std::min(target, _sampler->nextSampleAt());
    target = std::min(target, _lastCommitCycle + watchdogCycles + 1);
    if (_cfg.maxCycles != 0)
        target = std::min<Cycle>(target, _cfg.maxCycles);
    if (!_cfg.traceFlags.empty() && _now < _cfg.traceStart)
        target = std::min<Cycle>(target, _cfg.traceStart);
    if (target <= _now)
        return;

    const Cycle skipped = target - _now;
    for (const ThreadContext &tc : _ctxs)
        _cpi.attribute(tc.id, cpiSlotFor(tc), skipped);
    // The commit rotor advances once per cycle whether or not anything
    // commits; keep it in phase with the per-cycle loop.
    _commitRotor = static_cast<int>(
        (static_cast<uint64_t>(_commitRotor) + skipped) %
        static_cast<uint64_t>(_cfg.numContexts));
    _now = target;
    _statSkippedCycles += skipped;
    ++_statSkipEvents;
    _analytics.recordTimeSkip(_now - skipped, _now);
    checkWatchdog();
}

/**
 * Attribute the cycle that just executed. Called once per tick after
 * every stage has run, so the per-cycle commit/stall flags the stages
 * set are final; each context is charged to exactly one slot, making
 * per-context slot sums equal total cycles by construction.
 */
void
Cpu::accountCpiCycle()
{
    for (const ThreadContext &tc : _ctxs)
        _cpi.attribute(tc.id, cpiSlotFor(tc));
}

CpiSlot
Cpu::cpiSlotFor(const ThreadContext &tc) const
{
    if (!tc.active)
        return CpiSlot::Idle;
    if (_commitsThisCycle[static_cast<size_t>(tc.id)])
        return CpiSlot::Base;

    if (!tc.rob.empty()) {
        const DynInst &h = *tc.rob.front();
        if (h.completedBy(_now)) {
            // Head done yet nothing committed: store-buffer back
            // pressure, a spawn awaiting resolution, or lost commit
            // bandwidth.
            if (_cpiSbBlocked[static_cast<size_t>(tc.id)])
                return CpiSlot::LsqFull;
            if (h.spawnedThread)
                return CpiSlot::SpawnOverhead;
            return CpiSlot::Base;
        }
        if (h.issued) {
            if (h.isLoad()) {
                switch (h.memLevel) {
                  case MemLevel::L2: return CpiSlot::DcacheL2;
                  case MemLevel::L3: return CpiSlot::DcacheL3;
                  // A stream-buffer hit is an in-flight fill from below;
                  // the remaining stall is (partially hidden) memory
                  // latency, not an L1 hit.
                  case MemLevel::Memory:
                  case MemLevel::Stream: return CpiSlot::DcacheMem;
                  default: return CpiSlot::DcacheL1;
                }
            }
            return CpiSlot::Base; // Intrinsic execute latency.
        }
        // Head dispatched but unissued.
        if (h.everIssued)
            return CpiSlot::VpSquash; // Selective-reissue recovery.
        if (_now < tc.spawnReadyAt)
            return CpiSlot::SpawnOverhead;
        if (sourcesReady(h)) {
            // Ready yet unissued: lost issue-bandwidth arbitration.
            switch (h.emu.inst.opClass()) {
              case OpClass::Load:
              case OpClass::Store:
                return CpiSlot::LsqFull;
              default:
                return CpiSlot::IqFull;
            }
        }
        return CpiSlot::Base; // Waiting on producers (data dependency).
    }

    // Empty ROB: the front end owns the stall.
    if (tc.waitingBranch != nullptr)
        return CpiSlot::BranchSquash;
    if (tc.fetchStopped)
        return CpiSlot::SpawnOverhead; // SFP parent stalled on a spawn.
    if (_now < tc.spawnReadyAt)
        return CpiSlot::SpawnOverhead; // Spawned child warming up.
    if (!tc.fetchQueue.empty()) {
        const FetchedInst &fi = tc.fetchQueue.front();
        if (fi.availAt > _now)
            return CpiSlot::FetchStarved; // Front-end depth refill.
        // Mature but undispatched: a back-end structure is full (the
        // per-context ROB cannot be, as it is empty here), or dispatch
        // bandwidth went to other contexts.
        if (fi.inst.writesReg() && !poolFor(fi.inst.rd).canAlloc(1))
            return CpiSlot::WindowFull;
        switch (fi.inst.opClass()) {
          case OpClass::Load:
          case OpClass::Store:
            if (!_mq.hasSpace())
                return CpiSlot::LsqFull;
            break;
          case OpClass::FpAdd:
          case OpClass::FpMul:
            if (!_fq.hasSpace())
                return CpiSlot::IqFull;
            break;
          default:
            if (fi.inst.op != Opcode::NOP && fi.inst.op != Opcode::HALT &&
                !_iq.hasSpace()) {
                return CpiSlot::IqFull;
            }
            break;
        }
        return CpiSlot::Base; // Lost dispatch-bandwidth arbitration.
    }
    if (tc.fetchHalted && tc.parent != invalidCtx)
        return CpiSlot::SpawnOverhead; // Halted child awaiting resolve.
    if (_now < tc.fetchStallUntil)
        return CpiSlot::IcacheMiss;
    return CpiSlot::FetchStarved;
}

void
Cpu::tick()
{
    trace::setCycle(_now);
    recordMatureWindows();
    std::fill(_commitsThisCycle.begin(), _commitsThisCycle.end(),
              uint8_t{0});
    std::fill(_cpiSbBlocked.begin(), _cpiSbBlocked.end(), uint8_t{0});
    {
        HostProfiler::Scope s(_prof, ProfSection::Resolve);
        resolvePendingLoads();
    }
    {
        HostProfiler::Scope s(_prof, ProfSection::Commit);
        commitStage();
    }
    {
        HostProfiler::Scope s(_prof, ProfSection::Drain);
        drainStoreBuffers();
    }
    {
        HostProfiler::Scope s(_prof, ProfSection::Issue);
        issueStage();
    }
    {
        HostProfiler::Scope s(_prof, ProfSection::Dispatch);
        dispatchStage();
    }
    {
        HostProfiler::Scope s(_prof, ProfSection::Fetch);
        fetchStage();
    }
    accountCpiCycle();
    if (_sampler)
        _sampler->maybeSample(_now);
    ++_now;
    checkWatchdog();
    // Stuck-job watchdog poll, on a host-side tick counter (simulated
    // cycles jump under time-skip) so it cannot perturb any stat.
    if ((++_pollTick & 0x3fff) == 0)
        watchdogPoll();
}

void
Cpu::runLoopUntil(uint64_t streamTarget)
{
    // The time-skip engine never runs under pipeView: the pipeline
    // trace wants a record of every cycle. DPRINTF windows disable it
    // only while inside the window (timeSkipAllowed). Skips never cross
    // a commit, so a stream-position target is exact under skipping.
    const bool skipConfigured = _cfg.timeSkip != 0 && _cfg.pipeView.empty();
    uint64_t lastActivity = _activity;
    auto reached = [&] {
        if (done())
            return true;
        return streamTarget != 0 &&
               _ffInsts + usefulInsts() >= streamTarget;
    };
    while (!reached()) {
        tick();
        if (_activity != lastActivity) {
            lastActivity = _activity;
            _lastActivityCycle = _now;
            continue;
        }
        if (skipConfigured && timeSkipAllowed()) {
            tryTimeSkip();
        } else if (!reached() &&
                   _now - _lastActivityCycle == deadlockGuardCycles &&
                   nextEventCycle() == neverCycle) {
            deadlockPanic();
        }
    }
}

void
Cpu::run()
{
    // If the engine watchdog flags this job, its diagnostic dump is the
    // pipeline snapshot plus the host profiler's section report.
    WatchdogProbe probe([this] {
        dumpPipelineState();
        if (_prof.enabled())
            _prof.printReport(std::cerr);
    });

    if (_cfg.sampleIntervals > 0)
        runSampled();
    else
        runLoopUntil(0);

    // Spawns still speculative at this point never reached a verdict:
    // close their provenance records as aborted-at-drain so outcome
    // counts partition mtvp.spawns exactly.
    for (ThreadContext &tc : _ctxs) {
        if (_analytics.hasOpenSpawn(tc.id))
            _analytics.recordAbortAtDrain(tc.id, _now,
                                          tc.committedInsts);
    }

    drainArchStores();
}

void
Cpu::drainArchStores()
{
    // Flush the architectural (root-chain) store state so main memory
    // reflects every usefully committed store.
    while (!_drainQueue.empty()) {
        auto seg = _drainQueue.front();
        _drainQueue.pop_front();
        while (seg->residentStores() > 0)
            _hier.storeDrain(seg->drainResidentStore(), _now);
        seg->flushTo(_mem);
    }
    for (auto &seg : ctx(_root).ownedSegments) {
        while (seg->residentStores() > 0)
            _hier.storeDrain(seg->drainResidentStore(), _now);
        seg->flushTo(_mem);
    }
}

void
Cpu::runSampled()
{
    const uint64_t base = _ffInsts;
    const uint64_t insts = static_cast<uint64_t>(
        _cfg.sampleIntervalInsts);
    const uint64_t warm = _cfg.sampleWarmupInsts;
    const uint64_t k = static_cast<uint64_t>(_cfg.sampleIntervals);
    vpsim_assert(_cfg.maxInsts > base); // validate() guarantees this.
    const uint64_t stride = (_cfg.maxInsts - base) / k;
    vpsim_assert(stride >= warm + insts);

    for (uint64_t i = 0; i < k; ++i) {
        const uint64_t measureEnd = base + (i + 1) * stride;
        const uint64_t measureStart = measureEnd - insts;
        const uint64_t warmStart = measureStart - warm;

        const uint64_t pos = _ffInsts + usefulInsts();
        if (warmStart > pos)
            fastForward(warmStart - pos);
        if (done())
            break;
        // Unmeasured detailed warmup re-times the queue/in-flight state
        // the warm structures cannot carry.
        runLoopUntil(measureStart);
        const Cycle cyclesBefore = _now;
        const uint64_t instsBefore = usefulInsts();
        runLoopUntil(measureEnd);

        IntervalSample s;
        s.cycles = _now - cyclesBefore;
        s.insts = usefulInsts() - instsBefore;
        if (s.insts > 0 && s.cycles > 0)
            _samples.push_back(s);
        if (done())
            break;
        if (i + 1 < k)
            quiesce();
    }
}

void
Cpu::quiesce()
{
    HostProfiler::Scope ps(_prof, ProfSection::Sampling);

    // Gate fetch and dispatch off and run the machine dry: everything
    // already dispatched commits (arch state is written at dispatch, so
    // after the drain the root's ArchState is exactly the committed
    // state), every pending prediction resolves, and every speculative
    // context is promoted or killed.
    _quiesceDrain = true;
    const bool skipConfigured = _cfg.timeSkip != 0 && _cfg.pipeView.empty();
    uint64_t lastActivity = _activity;
    while (_robOccupancy != 0 || !_pending.empty()) {
        tick();
        if (_activity != lastActivity) {
            lastActivity = _activity;
            _lastActivityCycle = _now;
            continue;
        }
        if (skipConfigured && timeSkipAllowed()) {
            tryTimeSkip();
        } else if (_now - _lastActivityCycle == deadlockGuardCycles &&
                   nextEventCycle() == neverCycle) {
            deadlockPanic();
        }
    }
    _quiesceDrain = false;

    ThreadContext &tc = ctx(_root);
    vpsim_assert(activeContexts() == 1 && tc.active,
                 "speculative context survived the quiesce drain");
    vpsim_assert(tc.rob.empty() &&
                 _inflightStores[static_cast<size_t>(tc.id)].empty());
    vpsim_assert(static_cast<int>(_vpTagFree.size()) == numVpTags);

    // ILP-pred windows still closing measured quiesce-distorted cycles;
    // drop them instead of training the selector on them.
    for (IlpWindow &w : _windows)
        w.state = IlpWindow::State::Free;

    // Reset the front end: fetched-but-undispatched work is discarded
    // and refetched from the architectural PC after the skip.
    tc.fetchQueue.clear();
    tc.waitingBranch.reset();
    tc.fetchAwaitIndirect = false;
    tc.fetchStopped = false;
    tc.fetchHalted = false; // A fetched-but-undispatched HALT refetches.
    tc.fetchStallUntil = 0;
    tc.preIssueCount = 0;
    tc.fetchPc = tc.arch.pc;

    // Flush architectural stores so the next fast-forward's direct
    // memory writes are ordered after every committed store, then give
    // the root a fresh segment for the next detailed region.
    drainArchStores();
    tc.ownedSegments.clear();
    tc.segment = std::make_shared<StoreSegment>(tc.id, nullptr);
    tc.ownedSegments.push_back(tc.segment);
}

uint64_t
Cpu::fastForward(uint64_t n)
{
    HostProfiler::Scope ps(_prof, ProfSection::Warmup);
    if (_finished || n == 0)
        return 0;
    // During fast-forward the pipeline is empty by invariant, so a
    // watchdog dump reports the phase instead of a pipeline snapshot.
    WatchdogProbe probe([this, n] {
        warn("watchdog: job is inside a fast-forward burst of %llu "
             "insts (emulator-only; no pipeline state to dump)",
             static_cast<unsigned long long>(n));
        if (_prof.enabled())
            _prof.printReport(std::cerr);
    });
    ThreadContext &tc = ctx(_root);
    vpsim_assert(_robOccupancy == 0 && _pending.empty() &&
                     tc.fetchQueue.empty(),
                 "fast-forward requires an empty pipeline");
    vpsim_assert(tc.segment != nullptr && tc.segment->byteCount() == 0 &&
                     tc.segment->residentStores() == 0,
                 "fast-forward requires flushed store state");

    // Each burst warms its first line unconditionally so a run restored
    // from a checkpoint (which never saw the pre-checkpoint burst)
    // behaves bit-identically to one that fast-forwarded live.
    _ffLastLine = static_cast<Addr>(-1);
    FastForwardResult r = vpsim::fastForward(_emu, tc.arch, n, this);
    _ffInsts += r.executed;
    tc.fetchPc = tc.arch.pc;
    if (r.halted) {
        tc.fetchHalted = true;
        tc.haltedCommitted = true;
        _finished = true;
    }
    return r.executed;
}

void
Cpu::warmInst(const EmuStep &s)
{
    // Instruction side: one warm access per line transition (detailed
    // fetch touches the hierarchy per line run, not per instruction).
    const Addr line = s.pc & ~static_cast<Addr>(_cfg.lineSize - 1);
    if (line != _ffLastLine) {
        _ffLastLine = line;
        _hier.warmInstFetch(s.pc);
    }

    // Mirror dispatch-time training (handleControl): direction tables
    // on conditional branches, BTB on any taken control flow. Context 0
    // is the only live context during a fast-forward.
    const DecodedInst &in = s.inst;
    if (in.isBranch())
        _bpred.warmUpdate(s.pc, 0, s.taken);
    if (in.isControl() && s.taken)
        _btb.update(s.pc, s.nextPc);

    // Mirror the fetch-time return-address stack (fetch.cc): calls push
    // the return PC, returns (jalr through r31) pop it.
    ReturnAddressStack &ras = _ras[0];
    if (in.op == Opcode::JAL) {
        if (in.rd == 31)
            ras.push(s.pc + instBytes);
    } else if (in.op == Opcode::JALR) {
        if (in.rs1 == 31 && in.rd < 0) {
            if (!ras.empty())
                ras.pop();
        } else if (in.rd == 31) {
            ras.push(s.pc + instBytes);
        }
    }

    // Data side, mirroring commit: caches + prefetcher warm on the
    // access stream, and the value predictor trains on every load.
    if (in.isLoad()) {
        _hier.warmLoad(s.effAddr, s.pc);
        _vpred->train(s.pc, s.memValue);
    } else if (in.isStore()) {
        _hier.warmStore(s.effAddr);
    }
}

void
Cpu::saveCheckpoint(CheckpointWriter &cw)
{
    HostProfiler::Scope ps(_prof, ProfSection::Checkpoint);
    vpsim_assert(_now == 0 && usefulInsts() == 0 && _robOccupancy == 0 &&
                     _pending.empty(),
                 "checkpoints are cut only on the pristine "
                 "post-fast-forward machine");
    cw.u64(_ffInsts);
    cw.b(_finished);
    ctx(_root).arch.saveState(cw);
    _mem.saveState(cw);
    _hier.saveState(cw);
    _bpred.saveState(cw);
    _btb.saveState(cw);
    _ras[0].saveState(cw);
    _vpred->saveState(cw);
}

void
Cpu::restoreCheckpoint(CheckpointReader &cr)
{
    HostProfiler::Scope ps(_prof, ProfSection::Checkpoint);
    vpsim_assert(_now == 0 && usefulInsts() == 0 && _ffInsts == 0,
                 "restore is only legal on a fresh machine");
    _ffInsts = cr.u64();
    const bool halted = cr.b();
    ThreadContext &tc = ctx(_root);
    tc.arch.restoreState(cr);
    _mem.restoreState(cr);
    _hier.restoreState(cr);
    _bpred.restoreState(cr);
    _btb.restoreState(cr);
    _ras[0].restoreState(cr);
    _vpred->restoreState(cr);
    tc.fetchPc = tc.arch.pc;
    if (halted) {
        tc.fetchHalted = true;
        tc.haltedCommitted = true;
        _finished = true;
    }
}

double
Cpu::sampleStat(bool cpi, bool ci) const
{
    const size_t n = _samples.size();
    if (n == 0)
        return 0.0;
    double sum = 0.0;
    for (const IntervalSample &s : _samples) {
        sum += cpi ? static_cast<double>(s.cycles) /
                         static_cast<double>(s.insts)
                   : static_cast<double>(s.insts) /
                         static_cast<double>(s.cycles);
    }
    const double mean = sum / static_cast<double>(n);
    if (!ci)
        return mean;
    if (n < 2)
        return 0.0;
    double ss = 0.0;
    for (const IntervalSample &s : _samples) {
        const double x = cpi ? static_cast<double>(s.cycles) /
                                   static_cast<double>(s.insts)
                             : static_cast<double>(s.insts) /
                                   static_cast<double>(s.cycles);
        ss += (x - mean) * (x - mean);
    }
    const double sd = std::sqrt(ss / static_cast<double>(n - 1));
    return t975(n - 1) * sd / std::sqrt(static_cast<double>(n));
}

} // namespace vpsim
