#include "core/issue_queue.hh"

#include "sim/logging.hh"

namespace vpsim
{

IssueQueue::IssueQueue(StatGroup &stats, const std::string &name,
                       int capacity)
    : _capacity(capacity),
      _inserted(stats, name + ".inserted", "instructions dispatched into "
                                           "the queue")
{
    vpsim_assert(capacity > 0);
    // The 8K-entry idealized machines would make a full reserve huge;
    // everyone else gets an allocation-free steady state immediately.
    const size_t reserve =
        static_cast<size_t>(capacity <= 1024 ? capacity : 1024);
    _entries.reserve(reserve);
    _seqs.reserve(reserve);
    _srcReady.reserve(reserve);
    _waitBits.reserve((reserve >> 6) + 1);
    _removeBits.reserve((reserve >> 6) + 1);
}

void
IssueQueue::insert(const DynInstPtr &inst, Cycle srcReady)
{
    vpsim_assert(hasSpace(), "issue queue overflow");
    vpsim_assert(!inst->issued && !inst->squashed);
    const size_t idx = _entries.size();
    _entries.push_back(inst);
    _seqs.push_back(inst->seq);
    _srcReady.push_back(srcReady);
    if ((idx >> 6) >= _waitBits.size()) {
        _waitBits.push_back(0);
        _removeBits.push_back(0);
    }
    setBit(_waitBits, idx, true);
    setBit(_removeBits, idx, false);
    ++_inserted;
    if (size() > _peak)
        _peak = size();
}

int
IssueQueue::findSeq(InstSeqNum seq) const
{
    size_t lo = 0, hi = _seqs.size();
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (_seqs[mid] < seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < _seqs.size() && _seqs[lo] == seq)
        return static_cast<int>(lo);
    return -1;
}

void
IssueQueue::moveSlot(size_t from, size_t to)
{
    _entries[to] = std::move(_entries[from]);
    _seqs[to] = _seqs[from];
    _srcReady[to] = _srcReady[from];
    // to <= from always: the source bits are read before the
    // destination bits are overwritten.
    setBit(_waitBits, to, testBit(_waitBits, from));
    setBit(_removeBits, to, testBit(_removeBits, from));
}

void
IssueQueue::compactSweep(int maxVisit)
{
    const size_t n = _entries.size();
    size_t r = 0, w = 0;
    int visited = 0;
    for (; r < n && visited < maxVisit; ++r) {
        if (testBit(_removeBits, r))
            continue; // Departable: the entry can finally leave.
        if (testBit(_waitBits, r))
            ++visited;
        if (w != r)
            moveSlot(r, w);
        ++w;
    }
    // The unvisited tail past maxVisit is kept verbatim, exactly like
    // the capped polling sweep this replaces stopped mid-walk.
    bool residual = false;
    for (; r < n; ++r, ++w) {
        residual = residual || testBit(_removeBits, r);
        if (w != r)
            moveSlot(r, w);
    }
    for (size_t i = w; i < n; ++i) {
        _entries[i].reset();
        setBit(_waitBits, i, false);
        setBit(_removeBits, i, false);
    }
    _entries.resize(w);
    _seqs.resize(w);
    _srcReady.resize(w);
    _removeDirty = residual;
}

void
IssueQueue::collectReady(Cycle now, int maxVisit,
                         std::vector<Candidate> &out)
{
    if (_removeDirty)
        compactSweep(maxVisit);
    int visited = 0;
    const size_t n = _entries.size();
    for (size_t w = 0; w < _waitBits.size(); ++w) {
        uint64_t bits = _waitBits[w];
        while (bits != 0) {
            size_t idx = (w << 6) +
                         static_cast<size_t>(__builtin_ctzll(bits));
            bits &= bits - 1;
            if (idx >= n)
                return;
            if (visited >= maxVisit)
                return;
            ++visited;
            vpsim_assert_dbg(!_entries[idx]->issued &&
                             !_entries[idx]->squashed);
            if (_srcReady[idx] <= now)
                out.push_back({this, static_cast<uint32_t>(idx),
                               _seqs[idx]});
        }
    }
}

void
IssueQueue::onIssued(uint32_t idx, bool removable)
{
    setBit(_waitBits, idx, false);
    if (removable) {
        setBit(_removeBits, idx, true);
        _removeDirty = true;
    }
}

void
IssueQueue::markWaiting(InstSeqNum seq, const PhysRegFile &intRegs,
                        const PhysRegFile &fpRegs)
{
    int idx = findSeq(seq);
    vpsim_assert(idx >= 0, "reissued instruction left the queue");
    const size_t i = static_cast<size_t>(idx);
    setBit(_waitBits, i, true);
    setBit(_removeBits, i, false);
    _srcReady[i] = srcReadyAt(*_entries[i], intRegs, fpRegs);
}

void
IssueQueue::markRemovable(InstSeqNum seq)
{
    int idx = findSeq(seq);
    if (idx < 0)
        return; // Already departed.
    const size_t i = static_cast<size_t>(idx);
    vpsim_assert_dbg(!testBit(_waitBits, i));
    setBit(_removeBits, i, true);
    _removeDirty = true;
}

bool
IssueQueue::refreshCached(InstSeqNum seq, const PhysRegFile &intRegs,
                          const PhysRegFile &fpRegs)
{
    int idx = findSeq(seq);
    if (idx < 0)
        return false;
    const size_t i = static_cast<size_t>(idx);
    _srcReady[i] = srcReadyAt(*_entries[i], intRegs, fpRegs);
    return true;
}

void
IssueQueue::purgeSquashed()
{
    const size_t n = _entries.size();
    size_t w = 0;
    for (size_t r = 0; r < n; ++r) {
        const DynInst &inst = *_entries[r];
        if (inst.squashed || (inst.issued && inst.vpDependMask == 0))
            continue;
        if (w != r)
            moveSlot(r, w);
        ++w;
    }
    for (size_t i = w; i < n; ++i) {
        _entries[i].reset();
        setBit(_waitBits, i, false);
        setBit(_removeBits, i, false);
    }
    _entries.resize(w);
    _seqs.resize(w);
    _srcReady.resize(w);
    _removeDirty = false;
}

} // namespace vpsim
