#include "core/issue_queue.hh"

#include "sim/logging.hh"

namespace vpsim
{

IssueQueue::IssueQueue(StatGroup &stats, const std::string &name,
                       int capacity)
    : _capacity(capacity),
      _inserted(stats, name + ".inserted", "instructions dispatched into "
                                           "the queue")
{
    vpsim_assert(capacity > 0);
}

void
IssueQueue::insert(const DynInstPtr &inst)
{
    vpsim_assert(hasSpace(), "issue queue overflow");
    _entries.push_back(inst);
    ++_inserted;
    if (size() > _peak)
        _peak = size();
}

void
IssueQueue::purgeSquashed()
{
    for (auto it = _entries.begin(); it != _entries.end();) {
        if ((*it)->squashed ||
            ((*it)->issued && (*it)->vpDependMask == 0)) {
            it = _entries.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace vpsim
