#include "core/issue_queue.hh"

#include "sim/logging.hh"

namespace vpsim
{

IssueQueue::IssueQueue(StatGroup &stats, const std::string &name,
                       int capacity)
    : _capacity(capacity),
      _inserted(stats, name + ".inserted", "instructions dispatched into "
                                           "the queue")
{
    vpsim_assert(capacity > 0);
    // The 8K-entry idealized machines would make a full reserve huge;
    // everyone else gets an allocation-free steady state immediately.
    _entries.reserve(static_cast<size_t>(capacity <= 1024 ? capacity
                                                          : 1024));
}

void
IssueQueue::insert(const DynInstPtr &inst)
{
    vpsim_assert(hasSpace(), "issue queue overflow");
    _entries.push_back(inst);
    ++_inserted;
    if (size() > _peak)
        _peak = size();
}

void
IssueQueue::purgeSquashed()
{
    size_t w = 0;
    for (size_t r = 0; r < _entries.size(); ++r) {
        const DynInst &inst = *_entries[r];
        if (inst.squashed || (inst.issued && inst.vpDependMask == 0))
            continue;
        if (w != r)
            _entries[w] = std::move(_entries[r]);
        ++w;
    }
    _entries.resize(w);
}

} // namespace vpsim
