/**
 * @file
 * Issue/execute stage: oldest-first selection from the shared issue
 * queues within the Table-1 bandwidth (8 total: 6 integer, 2 FP, 4
 * load/store). Loads are timed against the LSQ (in-flight stores), the
 * speculative store buffers, and the cache hierarchy.
 */

#include <algorithm>

#include "core/cpu.hh"
#include "sim/logging.hh"

namespace vpsim
{

namespace
{

bool
rangesOverlap(Addr a, int aBytes, Addr b, int bBytes)
{
    return a < b + static_cast<Addr>(bBytes) &&
           b < a + static_cast<Addr>(aBytes);
}

} // namespace

bool
Cpu::sourcesReady(const DynInst &di) const
{
    for (int i = 0; i < di.numSrcs; ++i) {
        PhysReg p = di.physSrc[i];
        if (p == invalidPhysReg)
            continue;
        if (!poolFor(di.srcLogical[i]).readyBy(p, _now))
            return false;
    }
    return true;
}

const DynInst *
Cpu::olderInflightStore(const DynInst &load) const
{
    InstSeqNum bound = load.seq;
    CtxId cur = load.ctx;
    while (cur != invalidCtx) {
        const auto &stores = _inflightStores[static_cast<size_t>(cur)];
        for (auto it = stores.rbegin(); it != stores.rend(); ++it) {
            const DynInst &st = **it;
            if (st.squashed || st.seq >= bound)
                continue;
            if (rangesOverlap(st.emu.effAddr, st.emu.memBytes,
                              load.emu.effAddr, load.emu.memBytes)) {
                return &st;
            }
        }
        bound = _spawnSeq[static_cast<size_t>(cur)];
        cur = ctx(cur).parent;
    }
    return nullptr;
}

Cycle
Cpu::loadTiming(const DynInstPtr &di, bool &fromStoreBuffer)
{
    fromStoreBuffer = false;
    const DynInst *older = olderInflightStore(*di);
    if (older != nullptr) {
        if (!older->issued)
            return neverCycle; // Store data not staged yet; retry later.
        fromStoreBuffer = true;
        di->memLevel = MemLevel::StoreBuffer;
        return std::max(_now + 1, older->readyCycle + 1);
    }
    if (di->emu.fullyForwarded) {
        // Satisfied by committed stores in the store-segment chain: a
        // store-buffer search, costed like an L1 hit (Section 5.3).
        fromStoreBuffer = true;
        di->memLevel = MemLevel::StoreBuffer;
        return _now + static_cast<Cycle>(_cfg.dcacheLatency);
    }
    DataAccessResult r;
    {
        HostProfiler::Scope s(_prof, ProfSection::CacheData);
        r = _hier.load(di->emu.effAddr, di->emu.pc, _now);
    }
    di->memLevel = r.level;
    return r.ready;
}

bool
Cpu::tryIssue(const DynInstPtr &di)
{
    if (!sourcesReady(*di))
        return false;

    Cycle ready;
    bool fromSb = false;
    if (di->isLoad()) {
        ready = loadTiming(di, fromSb);
        if (ready == neverCycle)
            return false;
    } else if (di->isStore()) {
        ready = _now + 1; // Address/data staged; memory effect at drain.
    } else {
        ready = _now + static_cast<Cycle>(di->emu.inst.execLatency());
    }

    di->issued = true;
    di->readyCycle = ready;
    di->issueCycle = _now;
    trace::setContext(di->ctx);
    DPRINTF(Issue, "issue seq=%llu pc=%llx ready=%llu%s%s",
            static_cast<unsigned long long>(di->seq),
            static_cast<unsigned long long>(di->emu.pc),
            static_cast<unsigned long long>(ready),
            fromSb ? " (store buffer)" : "",
            di->everIssued ? " (reissue)" : "");
    if (!di->everIssued) {
        di->everIssued = true;
        ThreadContext &tc = ctx(di->ctx);
        vpsim_assert(tc.preIssueCount > 0);
        --tc.preIssueCount;
    }
    ++_issuedTotal;
    ++_statIssued;
    ++_activity;

    // Publish the destination's readiness — except for a value-predicted
    // load, whose destination stays ready at the *predicted* time; a
    // misprediction resets it during selective reissue.
    if (di->physDest != invalidPhysReg && !di->vpPredicted)
        poolFor(di->emu.inst.rd).setReadyAt(di->physDest, ready);

    return true;
}

void
Cpu::issueStage()
{
    std::vector<IssueQueue::Candidate> &candidates = _issueCandidates;
    candidates.clear();
    // Selection scans the oldest waiting entries; the cap only matters
    // for the idealized 8K-queue machine (documented approximation).
    // The time-skip event scan uses the same cap (Cpu::issueScanCap) so
    // it arms events for exactly the entries this stage can see.
    //
    // Only entries whose cached source-ready cycle has arrived become
    // candidates: tryIssue still rechecks readiness authoritatively, a
    // failed attempt has no side effects and consumes no budget, and no
    // entry matures mid-loop (every readiness publish this cycle lands
    // at _now + 1 or later) — so pre-filtering cannot change selection.
    _mq.collectReady(_now, issueScanCap, candidates);
    _iq.collectReady(_now, issueScanCap, candidates);
    _fq.collectReady(_now, issueScanCap, candidates);
    std::sort(candidates.begin(), candidates.end(),
              [](const IssueQueue::Candidate &a,
                 const IssueQueue::Candidate &b) { return a.seq < b.seq; });

    int total = _cfg.issueWidth;
    int intBudget = _cfg.intIssue;
    int fpBudget = _cfg.fpIssue;
    int memBudget = _cfg.memIssue;

    for (const IssueQueue::Candidate &c : candidates) {
        if (total == 0)
            break;
        const DynInstPtr &di = c.queue->entry(c.idx);
        vpsim_assert_dbg(di->seq == c.seq);
        int *classBudget;
        switch (di->emu.inst.opClass()) {
          case OpClass::Load:
          case OpClass::Store:
            classBudget = &memBudget;
            break;
          case OpClass::FpAdd:
          case OpClass::FpMul:
            classBudget = &fpBudget;
            break;
          default:
            classBudget = &intBudget;
            break;
        }
        if (*classBudget == 0)
            continue;
        if (!tryIssue(di))
            continue;
        c.queue->onIssued(c.idx, di->vpDependMask == 0);
        --total;
        --*classBudget;
    }
}

} // namespace vpsim
