/**
 * @file
 * One SMT hardware context: architectural state, rename map, store
 * segment, ROB, front-end state, and the thread-tree links the MTVP
 * controller maintains (Section 3.2: "enough state per context to
 * maintain the tree of spawned threads").
 */

#ifndef VPSIM_CORE_THREAD_CONTEXT_HH
#define VPSIM_CORE_THREAD_CONTEXT_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "core/dyn_inst.hh"
#include "emu/context_state.hh"
#include "emu/store_buffer.hh"
#include "isa/isa.hh"
#include "sim/types.hh"

namespace vpsim
{

/** One statically-decoded instruction sitting in the fetch queue. */
struct FetchedInst
{
    Addr pc = 0;
    DecodedInst inst;
    Cycle fetchedAt = 0;      ///< Cycle fetch produced this instruction.
    Cycle availAt = 0;        ///< Earliest dispatch cycle (front-end depth).
    bool predictedTaken = false;
    Addr predictedTarget = 0;
    bool targetKnown = true;  ///< False for an indirect jump w/o BTB hit.
};

/** Hardware thread context. */
struct ThreadContext
{
    CtxId id = invalidCtx;
    bool active = false;

    // ----- Architectural / speculative state -----
    ArchState arch;
    std::array<PhysReg, numLogicalRegs> map{};
    std::shared_ptr<StoreSegment> segment;
    /** Segments created during this activation (capacity accounting). */
    std::vector<std::shared_ptr<StoreSegment>> ownedSegments;

    // ----- Backend -----
    std::deque<DynInstPtr> rob;

    // ----- Front end -----
    Addr fetchPc = 0;
    std::deque<FetchedInst> fetchQueue;
    Cycle fetchStallUntil = 0;      ///< I-cache fill in progress.
    bool fetchStopped = false;      ///< SFP parent stall.
    bool fetchHalted = false;       ///< HALT fetched; nothing follows.
    bool fetchAwaitIndirect = false;///< Unknown jalr target in flight.
    DynInstPtr waitingBranch;       ///< Redirect pending on this branch.
    Cycle spawnReadyAt = 0;         ///< First dispatch cycle after spawn.
    int preIssueCount = 0;          ///< For the ICOUNT fetch policy.

    // ----- Thread tree -----
    CtxId parent = invalidCtx;
    std::vector<CtxId> children;

    // ----- Value prediction / MTVP accounting -----
    int openStvp = 0;               ///< Unconfirmed STVP loads in flight.
    InstSeqNum activeSpawnSeq = 0;  ///< Seq of the outstanding spawn load.

    // ----- Progress accounting -----
    uint64_t committedInsts = 0;    ///< Since activation.
    uint64_t committedPostSpawn = 0;///< Commits younger than the spawn.
    bool haltedCommitted = false;

    /** Reset everything for (re)activation. */
    void
    reset()
    {
        active = false;
        arch = ArchState{};
        map.fill(invalidPhysReg);
        segment.reset();
        ownedSegments.clear();
        rob.clear();
        fetchPc = 0;
        fetchQueue.clear();
        fetchStallUntil = 0;
        fetchStopped = false;
        fetchHalted = false;
        fetchAwaitIndirect = false;
        waitingBranch.reset();
        spawnReadyAt = 0;
        preIssueCount = 0;
        parent = invalidCtx;
        children.clear();
        openStvp = 0;
        activeSpawnSeq = 0;
        committedInsts = 0;
        committedPostSpawn = 0;
        haltedCommitted = false;
    }

    /** Committed-but-undrained stores across this activation's segments. */
    int
    storeBufferOccupancy() const
    {
        int total = 0;
        for (const auto &seg : ownedSegments)
            total += seg->residentStores();
        return total;
    }
};

} // namespace vpsim

#endif // VPSIM_CORE_THREAD_CONTEXT_HH
