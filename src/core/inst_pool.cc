/**
 * @file
 * InstPool slab growth and slot recycling (the cold half of the
 * DynInst lifetime; the hot half — handle copies — is all inline in
 * core/dyn_inst.hh).
 */

#include "core/inst_pool.hh"

namespace vpsim
{

namespace detail
{

void
recycleInstSlot(InstSlot *slot) noexcept
{
    slot->pool->recycle(slot);
}

} // namespace detail

InstPool::~InstPool()
{
#ifdef VPSIM_POOL_ASAN
    // Freed slots are poisoned; hand the slabs back clean.
    for (auto &slab : _slabs) {
        for (size_t i = 0; i < slotsPerSlab; ++i) {
            __asan_unpoison_memory_region(slab[i].storage,
                                          sizeof(slab[i].storage));
        }
    }
#endif
}

void
InstPool::grow()
{
    auto slab = std::make_unique<detail::InstSlot[]>(slotsPerSlab);
    for (size_t i = 0; i < slotsPerSlab; ++i)
        slab[i].pool = this;
    _free.reserve(_free.size() + slotsPerSlab);
    for (size_t i = slotsPerSlab; i-- > 0;)
        _free.push_back(&slab[i]);
    _slabs.push_back(std::move(slab));
}

void
InstPool::recycle(detail::InstSlot *slot)
{
    slot->obj()->~DynInst();
    ++slot->gen; // Invalidate every handle minted against this life.
#ifdef VPSIM_POOL_ASAN
    __asan_poison_memory_region(slot->storage, sizeof(slot->storage));
#endif
    _free.push_back(slot);
    --_live;
    if (!_ownerAlive && _live == 0)
        delete this;
}

} // namespace vpsim
