/**
 * @file
 * Physical register file timing model. Values live in the functional
 * emulator; this class models *when* each physical register's value
 * exists and *who still needs it*. Use counters implement the paper's
 * Cherry-style pending counts: spawning a thread flash-copies the rename
 * map and increments the count of every mapped register so the parent
 * cannot recycle registers the child may still read (Section 3.2).
 */

#ifndef VPSIM_CORE_PHYS_REGFILE_HH
#define VPSIM_CORE_PHYS_REGFILE_HH

#include <vector>

#include "sim/types.hh"

namespace vpsim
{

/** One pool of physical registers (the core keeps an int and an FP pool). */
class PhysRegFile
{
  public:
    /**
     * Readiness observer (core/wakeup.hh WakeupTable): issue-queue
     * entries cache their source-ready cycle, and every setReadyAt /
     * re-allocation routes through here so those caches stay exact
     * instead of being re-polled each cycle.
     */
    class Listener
    {
      public:
        virtual ~Listener() = default;
        /** _readyAt[reg] just changed to @p cycle. */
        virtual void regReadyChanged(PhysReg reg, Cycle cycle) = 0;
        /** @p reg was just re-allocated (readiness reset, any stale
         *  watch records are dead). */
        virtual void regAllocated(PhysReg reg) = 0;
    };

    explicit PhysRegFile(int capacity);

    /** At most one listener; the Cpu wires its wakeup table here. */
    void setListener(Listener *l) { _listener = l; }

    /** Registers currently on the free list. */
    int freeCount() const { return static_cast<int>(_freeList.size()); }
    int capacity() const { return static_cast<int>(_readyAt.size()); }

    bool canAlloc(int n = 1) const { return freeCount() >= n; }

    /** Allocate a register (use count 1, not ready). */
    PhysReg alloc();

    /** Increment the use count (rename-map copy on spawn). */
    void addRef(PhysReg reg);

    /** Decrement the use count; frees the register when it hits zero. */
    void release(PhysReg reg);

    int refCount(PhysReg reg) const;

    void setReadyAt(PhysReg reg, Cycle cycle);
    Cycle readyAt(PhysReg reg) const;
    bool readyBy(PhysReg reg, Cycle now) const;

  private:
    std::vector<Cycle> _readyAt;
    std::vector<int> _refCount;
    std::vector<PhysReg> _freeList;
    Listener *_listener = nullptr;
};

} // namespace vpsim

#endif // VPSIM_CORE_PHYS_REGFILE_HH
