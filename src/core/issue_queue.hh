/**
 * @file
 * A shared (cross-context) issue queue. Entries wait for their source
 * registers; with selective-reissue value prediction an instruction that
 * depends on an unconfirmed prediction *stays in the queue after issuing*
 * so it can re-execute if the prediction fails — the paper's explanation
 * of why traditional value prediction pressures the queues (Sections 2
 * and 5.4).
 *
 * Wakeup model: the queue keeps structure-of-arrays state next to the
 * age-ordered entry vector — a waiting bitmap, a departable bitmap, and
 * a *cached source-ready cycle* per entry. The cache is kept exact
 * reactively: every PhysRegFile::setReadyAt routes a wakeup through
 * Cpu's WakeupTable to refreshCached(), so the per-cycle issue scan
 * never dereferences a DynInst whose sources have not matured — it
 * walks bitmap words and compares cached cycles. Selection stays
 * age-ordered and bit-identical with the earlier per-entry polling
 * sweep: the same entries depart at the same stage boundaries (the
 * compaction sweep replicates the old forEachWaiting drop rules,
 * including the scan-cap tail that is kept verbatim), and the same
 * waiting entries are visited in the same order under the same cap.
 */

#ifndef VPSIM_CORE_ISSUE_QUEUE_HH
#define VPSIM_CORE_ISSUE_QUEUE_HH

#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "core/phys_regfile.hh"
#include "isa/isa.hh"
#include "sim/stats.hh"

namespace vpsim
{

/** One of IQ / FQ / MQ. */
class IssueQueue
{
  public:
    IssueQueue(StatGroup &stats, const std::string &name, int capacity);

    int capacity() const { return _capacity; }
    int size() const { return static_cast<int>(_entries.size()); }
    bool hasSpace() const { return size() < _capacity; }

    /** One issue-eligible entry (sources matured by the scan cycle). */
    struct Candidate
    {
        IssueQueue *queue;
        uint32_t idx;
        InstSeqNum seq;
    };

    /** Cycle every renamed source of @p di is ready (the issue stage's
     *  sourcesReady() threshold); neverCycle when a source can only be
     *  woken by another event (e.g. a vp-tagged load redo). */
    static Cycle
    srcReadyAt(const DynInst &di, const PhysRegFile &intRegs,
               const PhysRegFile &fpRegs)
    {
        Cycle ready = 0;
        for (int i = 0; i < di.numSrcs && ready != neverCycle; ++i) {
            PhysReg p = di.physSrc[i];
            if (p == invalidPhysReg)
                continue;
            const PhysRegFile &pool =
                isFpReg(di.srcLogical[i]) ? fpRegs : intRegs;
            ready = std::max(ready, pool.readyAt(p));
        }
        return ready;
    }

    /** Insert at dispatch (caller checked hasSpace()); @p srcReady is
     *  the exact source-ready cycle at insert time (the caller also
     *  registers the entry's sources with the wakeup tables). */
    void insert(const DynInstPtr &inst, Cycle srcReady);

    const DynInstPtr &entry(uint32_t idx) const { return _entries[idx]; }

    /**
     * One issue-stage scan: first compact departable entries (only when
     * one exists — the bitmap knows), then append every waiting entry
     * whose cached source-ready cycle has arrived to @p out, oldest
     * first.
     *
     * @param maxVisit bound on *waiting* entries visited (ready or
     *        not), preserving the legacy scan-cap semantics that keep
     *        the 8K-entry idealized wide-window machine tractable; the
     *        oldest entries are always visited first.
     */
    void collectReady(Cycle now, int maxVisit, std::vector<Candidate> &out);

    /** The candidate at @p idx issued this cycle. @p removable: its
     *  vp-dependence mask is clear, so the entry departs at the next
     *  sweep (exactly when the polling sweep would have dropped it). */
    void onIssued(uint32_t idx, bool removable);

    /** Selective reissue flipped @p seq back to unissued (its open
     *  vp-dependence kept it resident); it waits again. */
    void markWaiting(InstSeqNum seq, const PhysRegFile &intRegs,
                     const PhysRegFile &fpRegs);

    /** @p seq (issued, still resident) lost its last open vp
     *  dependence (commit or confirmation); it may depart. No-op when
     *  the entry already left. */
    void markRemovable(InstSeqNum seq);

    /** A source register's readiness changed: refresh the cached
     *  source-ready cycle. Returns false when @p seq is no longer
     *  resident (the caller drops its wakeup registration). */
    bool refreshCached(InstSeqNum seq, const PhysRegFile &intRegs,
                       const PhysRegFile &fpRegs);

    /** Waiting entries' cached source-ready cycles, oldest first, same
     *  cap semantics as collectReady; read-only (the time-skip event
     *  scan must not disturb queue state). */
    template <typename Fn>
    void
    forEachWaitingReady(Fn &&fn, int maxVisit) const
    {
        int visited = 0;
        const size_t n = _entries.size();
        for (size_t w = 0; w < _waitBits.size(); ++w) {
            uint64_t bits = _waitBits[w];
            while (bits != 0) {
                size_t idx = (w << 6) +
                             static_cast<size_t>(__builtin_ctzll(bits));
                bits &= bits - 1;
                if (idx >= n)
                    return;
                if (visited >= maxVisit)
                    return;
                ++visited;
                fn(_srcReady[idx]);
            }
        }
    }

    /** Drop entries whose instructions were squashed, plus any
     *  departable ones (full sweep, no cap — matching the legacy
     *  purge). */
    void purgeSquashed();

    /** Max occupancy ever seen (for the stats report). */
    int peakSize() const { return _peak; }

  private:
    static bool
    testBit(const std::vector<uint64_t> &bits, size_t i)
    {
        return (bits[i >> 6] >> (i & 63)) & 1;
    }

    static void
    setBit(std::vector<uint64_t> &bits, size_t i, bool v)
    {
        uint64_t mask = uint64_t{1} << (i & 63);
        if (v)
            bits[i >> 6] |= mask;
        else
            bits[i >> 6] &= ~mask;
    }

    /** Slot of @p seq, or -1 when it already departed (entries are
     *  inserted in dispatch order and compaction keeps that order, so
     *  _seqs is always sorted). */
    int findSeq(InstSeqNum seq) const;

    /** Replicate the legacy per-cycle sweep: drop departable entries
     *  among (up to) the first @p maxVisit waiting ones, keep the tail
     *  verbatim. Runs only when the departable bitmap is non-empty. */
    void compactSweep(int maxVisit);

    void moveSlot(size_t from, size_t to);

    /** Dispatch (age) order, dense. Slots are recycled by the
     *  compaction sweeps, so steady-state operation allocates
     *  nothing. */
    std::vector<DynInstPtr> _entries;
    /** Parallel to _entries: sequence numbers (sorted; binary-search
     *  index for wakeups). */
    std::vector<InstSeqNum> _seqs;
    /** Parallel: exact cached source-ready cycle, maintained by wakeup
     *  notifications. */
    std::vector<Cycle> _srcReady;
    /** Bit per slot: waiting to issue (!issued && !squashed). */
    std::vector<uint64_t> _waitBits;
    /** Bit per slot: issued with no open vp dependence — departable at
     *  the next sweep. */
    std::vector<uint64_t> _removeBits;
    /** A departable entry exists (skip the sweep entirely when not). */
    bool _removeDirty = false;
    int _capacity;
    int _peak = 0;
    Scalar _inserted;
};

} // namespace vpsim

#endif // VPSIM_CORE_ISSUE_QUEUE_HH
