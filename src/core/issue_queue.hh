/**
 * @file
 * A shared (cross-context) issue queue. Entries wait for their source
 * registers; with selective-reissue value prediction an instruction that
 * depends on an unconfirmed prediction *stays in the queue after issuing*
 * so it can re-execute if the prediction fails — the paper's explanation
 * of why traditional value prediction pressures the queues (Sections 2
 * and 5.4).
 */

#ifndef VPSIM_CORE_ISSUE_QUEUE_HH
#define VPSIM_CORE_ISSUE_QUEUE_HH

#include <string>
#include <vector>

#include "core/dyn_inst.hh"
#include "sim/stats.hh"

namespace vpsim
{

/** One of IQ / FQ / MQ. */
class IssueQueue
{
  public:
    IssueQueue(StatGroup &stats, const std::string &name, int capacity);

    int capacity() const { return _capacity; }
    int size() const { return static_cast<int>(_entries.size()); }
    bool hasSpace() const { return size() < _capacity; }

    /** Insert at dispatch (caller checked hasSpace()). */
    void insert(const DynInstPtr &inst);

    /**
     * Entries eligible to (re)issue this cycle, oldest first. An entry is
     * eligible when not yet issued (or reset for reissue) and not
     * squashed; source-readiness is the caller's check.
     *
     * @param maxVisit bound on waiting entries visited per call (keeps
     *        the 8K-entry idealized wide-window machine tractable; the
     *        oldest entries are always visited first).
     */
    template <typename Fn>
    void
    forEachWaiting(Fn &&fn, int maxVisit = 1 << 30)
    {
        // Single compacting sweep over a dense, age-ordered vector (no
        // per-node heap allocation, sequential cache traffic): entries
        // that can leave are dropped by not copying them forward; the
        // unvisited tail past maxVisit is kept verbatim, exactly like
        // the pre-vector std::list implementation stopped mid-walk.
        const size_t n = _entries.size();
        size_t r = 0, w = 0;
        int visited = 0;
        for (; r < n && visited < maxVisit; ++r) {
            DynInst &inst = *_entries[r];
            if (inst.squashed)
                continue;
            if (inst.issued && inst.vpDependMask == 0) {
                // Confirmed and issued: the entry can finally leave.
                continue;
            }
            if (!inst.issued) {
                fn(_entries[r]);
                ++visited;
            }
            if (w != r)
                _entries[w] = std::move(_entries[r]);
            ++w;
        }
        for (; r < n; ++r, ++w) {
            if (w != r)
                _entries[w] = std::move(_entries[r]);
        }
        _entries.resize(w);
    }

    /** Read-only variant of the sweep above: visits exactly the same
     *  waiting entries in the same order with the same @p maxVisit
     *  semantics, but never compacts (the time-skip event scan must
     *  not disturb queue state). */
    template <typename Fn>
    void
    forEachWaiting(Fn &&fn, int maxVisit = 1 << 30) const
    {
        int visited = 0;
        for (const DynInstPtr &p : _entries) {
            if (visited >= maxVisit)
                break;
            const DynInst &inst = *p;
            if (inst.squashed)
                continue;
            if (!inst.issued) {
                fn(p);
                ++visited;
            }
        }
    }

    /** Drop entries whose instructions were squashed (lazy cleanup). */
    void purgeSquashed();

    /** Max occupancy ever seen (for the stats report). */
    int peakSize() const { return _peak; }

  private:
    /** Dispatch (age) order, dense. Slots are recycled by compaction
     *  during forEachWaiting()/purgeSquashed() sweeps, so steady-state
     *  operation allocates nothing. */
    std::vector<DynInstPtr> _entries;
    int _capacity;
    int _peak = 0;
    Scalar _inserted;
};

} // namespace vpsim

#endif // VPSIM_CORE_ISSUE_QUEUE_HH
