/**
 * @file
 * A shared (cross-context) issue queue. Entries wait for their source
 * registers; with selective-reissue value prediction an instruction that
 * depends on an unconfirmed prediction *stays in the queue after issuing*
 * so it can re-execute if the prediction fails — the paper's explanation
 * of why traditional value prediction pressures the queues (Sections 2
 * and 5.4).
 */

#ifndef VPSIM_CORE_ISSUE_QUEUE_HH
#define VPSIM_CORE_ISSUE_QUEUE_HH

#include <list>
#include <string>

#include "core/dyn_inst.hh"
#include "sim/stats.hh"

namespace vpsim
{

/** One of IQ / FQ / MQ. */
class IssueQueue
{
  public:
    IssueQueue(StatGroup &stats, const std::string &name, int capacity);

    int capacity() const { return _capacity; }
    int size() const { return static_cast<int>(_entries.size()); }
    bool hasSpace() const { return size() < _capacity; }

    /** Insert at dispatch (caller checked hasSpace()). */
    void insert(const DynInstPtr &inst);

    /**
     * Entries eligible to (re)issue this cycle, oldest first. An entry is
     * eligible when not yet issued (or reset for reissue) and not
     * squashed; source-readiness is the caller's check.
     *
     * @param maxVisit bound on waiting entries visited per call (keeps
     *        the 8K-entry idealized wide-window machine tractable; the
     *        oldest entries are always visited first).
     */
    template <typename Fn>
    void
    forEachWaiting(Fn &&fn, int maxVisit = 1 << 30)
    {
        int visited = 0;
        for (auto it = _entries.begin();
             it != _entries.end() && visited < maxVisit;) {
            DynInst &inst = **it;
            if (inst.squashed) {
                it = _entries.erase(it);
                continue;
            }
            if (inst.issued && inst.vpDependMask == 0) {
                // Confirmed and issued: the entry can finally leave.
                it = _entries.erase(it);
                continue;
            }
            if (!inst.issued) {
                fn(*it);
                ++visited;
            }
            ++it;
        }
    }

    /** Drop entries whose instructions were squashed (lazy cleanup). */
    void purgeSquashed();

    /** Max occupancy ever seen (for the stats report). */
    int peakSize() const { return _peak; }

  private:
    std::list<DynInstPtr> _entries; // Dispatch (age) order.
    int _capacity;
    int _peak = 0;
    Scalar _inserted;
};

} // namespace vpsim

#endif // VPSIM_CORE_ISSUE_QUEUE_HH
