#include "core/phys_regfile.hh"

#include "sim/logging.hh"

namespace vpsim
{

PhysRegFile::PhysRegFile(int capacity)
    : _readyAt(static_cast<size_t>(capacity), neverCycle),
      _refCount(static_cast<size_t>(capacity), 0)
{
    vpsim_assert(capacity > 0);
    _freeList.reserve(static_cast<size_t>(capacity));
    for (int i = capacity - 1; i >= 0; --i)
        _freeList.push_back(i);
}

PhysReg
PhysRegFile::alloc()
{
    vpsim_assert(!_freeList.empty(), "physical register file exhausted");
    PhysReg reg = _freeList.back();
    _freeList.pop_back();
    _refCount[static_cast<size_t>(reg)] = 1;
    _readyAt[static_cast<size_t>(reg)] = neverCycle;
    if (_listener != nullptr)
        _listener->regAllocated(reg);
    return reg;
}

void
PhysRegFile::addRef(PhysReg reg)
{
    vpsim_assert(reg >= 0 && reg < capacity());
    vpsim_assert(_refCount[static_cast<size_t>(reg)] > 0,
                 "addRef on free register %d", reg);
    ++_refCount[static_cast<size_t>(reg)];
}

void
PhysRegFile::release(PhysReg reg)
{
    vpsim_assert(reg >= 0 && reg < capacity());
    int &count = _refCount[static_cast<size_t>(reg)];
    vpsim_assert(count > 0, "release of free register %d", reg);
    if (--count == 0)
        _freeList.push_back(reg);
}

int
PhysRegFile::refCount(PhysReg reg) const
{
    vpsim_assert(reg >= 0 && reg < capacity());
    return _refCount[static_cast<size_t>(reg)];
}

void
PhysRegFile::setReadyAt(PhysReg reg, Cycle cycle)
{
    vpsim_assert(reg >= 0 && reg < capacity());
    _readyAt[static_cast<size_t>(reg)] = cycle;
    if (_listener != nullptr)
        _listener->regReadyChanged(reg, cycle);
}

Cycle
PhysRegFile::readyAt(PhysReg reg) const
{
    if (reg == invalidPhysReg)
        return 0;
    vpsim_assert(reg >= 0 && reg < capacity());
    return _readyAt[static_cast<size_t>(reg)];
}

bool
PhysRegFile::readyBy(PhysReg reg, Cycle now) const
{
    return readyAt(reg) <= now;
}

} // namespace vpsim
