/**
 * @file
 * Dispatch stage: in-order per context. Instructions are functionally
 * executed here, renamed onto the shared physical register files, and
 * inserted into the ROB and issue queues. This is also where value
 * prediction decisions are made and MTVP threads are spawned (the load
 * has just been renamed; the spawned context receives a flash-copied
 * rename map with the destination bound to the predicted value —
 * Section 3.2 of the paper).
 */

#include "core/cpu.hh"
#include "isa/disasm.hh"
#include "sim/logging.hh"

namespace vpsim
{

void
Cpu::dispatchStage()
{
    if (_quiesceDrain)
        return; // Sampling drain: run the pipeline dry, feed nothing.

    // Resume contexts whose redirecting control instruction resolved.
    for (ThreadContext &tc : _ctxs) {
        if (!tc.active || tc.waitingBranch == nullptr)
            continue;
        if (tc.waitingBranch->completedBy(_now)) {
            tc.fetchPc = tc.waitingBranch->emu.nextPc;
            tc.waitingBranch.reset();
            ++_activity;
        }
    }

    int budget = _cfg.dispatchWidth;
    int n = _cfg.numContexts;
    for (int i = 0; i < n && budget > 0; ++i) {
        ThreadContext &tc = _ctxs[static_cast<size_t>((_commitRotor + i) %
                                                      n)];
        if (!tc.active)
            continue;
        while (budget > 0 && dispatchOne(tc))
            --budget;
    }
}

bool
Cpu::resourcesAvailable(const ThreadContext &tc, const DecodedInst &inst)
    const
{
    // SMTSIM-style per-thread active list: each context owns a full
    // ROB's worth of window (the decoupling MTVP exploits).
    if (static_cast<int>(tc.rob.size()) >= _cfg.effRobSize())
        return false;
    if (inst.writesReg() && !poolFor(inst.rd).canAlloc(1))
        return false;
    switch (inst.opClass()) {
      case OpClass::Load:
      case OpClass::Store:
        return _mq.hasSpace();
      case OpClass::FpAdd:
      case OpClass::FpMul:
        return _fq.hasSpace();
      default:
        // NOP/HALT skip the queues but cost a ROB slot only.
        if (inst.op == Opcode::NOP || inst.op == Opcode::HALT)
            return true;
        return _iq.hasSpace();
    }
}

IssueQueue &
Cpu::queueFor(const DecodedInst &inst)
{
    switch (inst.opClass()) {
      case OpClass::Load:
      case OpClass::Store:
        return _mq;
      case OpClass::FpAdd:
      case OpClass::FpMul:
        return _fq;
      default:
        return _iq;
    }
}

void
Cpu::watchSources(const DynInstPtr &di, IssueQueue &q)
{
    for (int i = 0; i < di->numSrcs; ++i) {
        PhysReg p = di->physSrc[i];
        if (p == invalidPhysReg)
            continue;
        // A physical register index is only unique within its class.
        bool fp = isFpReg(di->srcLogical[i]);
        bool dup = false;
        for (int j = 0; j < i && !dup; ++j) {
            dup = di->physSrc[j] == p &&
                  isFpReg(di->srcLogical[j]) == fp;
        }
        if (dup)
            continue;
        (fp ? _fpWake : _intWake).watch(p, &q, di->seq);
    }
}

void
Cpu::renameSources(DynInst &di, ThreadContext &tc)
{
    const DecodedInst &in = di.emu.inst;
    int srcs[3] = {in.rs1, in.rs2, in.rs3};
    di.numSrcs = 0;
    for (int logical : srcs) {
        if (logical < 0)
            continue;
        if (logical == 0) {
            di.srcLogical[di.numSrcs] = 0;
            di.physSrc[di.numSrcs++] = invalidPhysReg; // r0: always ready.
            continue;
        }
        PhysReg p = tc.map[static_cast<size_t>(logical)];
        vpsim_assert(p != invalidPhysReg, "unmapped source %s",
                     regName(logical).c_str());
        di.srcLogical[di.numSrcs] = logical;
        di.physSrc[di.numSrcs++] = p;
        di.vpDependMask |= taintOf(logical, p);
    }
}

void
Cpu::renameDest(DynInst &di, ThreadContext &tc)
{
    const DecodedInst &in = di.emu.inst;
    if (!in.writesReg())
        return;
    PhysRegFile &pool = poolFor(in.rd);
    PhysReg p = pool.alloc();
    di.prevDest = tc.map[static_cast<size_t>(in.rd)];
    di.physDest = p;
    tc.map[static_cast<size_t>(in.rd)] = p;
    taintOf(in.rd, p) = di.vpDependMask;
}

bool
Cpu::dispatchOne(ThreadContext &tc)
{
    if (!tc.active || tc.waitingBranch != nullptr)
        return false;
    if (tc.fetchQueue.empty())
        return false;
    if (_now < tc.spawnReadyAt)
        return false;
    const FetchedInst fi = tc.fetchQueue.front();
    if (fi.availAt > _now)
        return false;
    if (!resourcesAvailable(tc, fi.inst))
        return false;

    tc.fetchQueue.pop_front();
    ++_activity;
    trace::setContext(tc.id);

    auto di = allocInst();
    di->seq = _nextSeq++;
    di->ctx = tc.id;
    di->dispatchCycle = _now;
    di->fetchCycle = fi.fetchedAt;
    di->predictedTaken = fi.predictedTaken;
    di->predictedTarget = fi.predictedTarget;

    di->emu = _emu.step(tc.arch, tc.segment.get());
    vpsim_assert(di->emu.pc == fi.pc,
                 "fetch/dispatch desync: fetched %llx, executing %llx",
                 static_cast<unsigned long long>(fi.pc),
                 static_cast<unsigned long long>(di->emu.pc));

    renameSources(*di, tc);

    if (di->isStore()) {
        di->targetSegment = tc.segment;
        tc.segment->addPendingCommit();
        _inflightStores[static_cast<size_t>(tc.id)].push_back(di);
    }

    renameDest(*di, tc);

    tc.rob.push_back(di);
    ++_robOccupancy;
    ++_statDispatched;
    DPRINTF(Dispatch, "seq=%llu pc=%llx %s",
            static_cast<unsigned long long>(di->seq),
            static_cast<unsigned long long>(di->emu.pc),
            disassemble(di->emu.inst).c_str());

    const DecodedInst &in = di->emu.inst;
    if (in.op == Opcode::NOP || in.op == Opcode::HALT) {
        di->issued = true;
        di->everIssued = true;
        di->readyCycle = _now;
    } else {
        IssueQueue &q = queueFor(in);
        q.insert(di, IssueQueue::srcReadyAt(*di, _intRegs, _fpRegs));
        watchSources(di, q);
        ++tc.preIssueCount;
    }

    if (in.isControl())
        handleControl(di, tc, fi);

    if (in.isLoad())
        handleLoadVp(di, tc);

    return true;
}

void
Cpu::handleControl(const DynInstPtr &di, ThreadContext &tc,
                   const FetchedInst &fi)
{
    const DecodedInst &in = di->emu.inst;
    if (in.isBranch())
        _bpred.update(di->emu.pc, tc.id, di->emu.taken);
    if (di->emu.taken)
        _btb.update(di->emu.pc, di->emu.nextPc);

    bool correct = fi.targetKnown && fi.predictedTarget == di->emu.nextPc;
    if (correct)
        return;

    // Redirect: flush the wrong-path fetch stream; fetch resumes (with
    // front-end refill) when this instruction resolves.
    di->mispredicted = true;
    DPRINTF(Fetch,
            "redirect at seq=%llu pc=%llx: predicted %llx, actual %llx "
            "(%zu wrong-path insts flushed)",
            static_cast<unsigned long long>(di->seq),
            static_cast<unsigned long long>(di->emu.pc),
            static_cast<unsigned long long>(fi.predictedTarget),
            static_cast<unsigned long long>(di->emu.nextPc),
            tc.fetchQueue.size());
    ++_statBranchRedirects;
    _statWrongPathFetched += tc.fetchQueue.size();
    tc.fetchQueue.clear();
    tc.waitingBranch = di;
    tc.fetchAwaitIndirect = false;
    tc.fetchHalted = false;
    tc.fetchStallUntil = 0;
}

CtxId
Cpu::allocContext()
{
    for (ThreadContext &tc : _ctxs) {
        if (!tc.active) {
            CtxId id = tc.id;
            tc.reset();
            tc.id = id;
            tc.active = true;
            return id;
        }
    }
    return invalidCtx;
}

void
Cpu::handleLoadVp(const DynInstPtr &di, ThreadContext &tc)
{
    if (_cfg.vpMode == VpMode::None)
        return;
    const DecodedInst &in = di->emu.inst;
    if (!in.writesReg())
        return;

    Addr pc = di->emu.pc;
    RegVal actual = di->emu.memValue;
    bool ctxFree = false;
    for (const ThreadContext &c : _ctxs)
        ctxFree = ctxFree || !c.active;
    bool mayMtvp = (_cfg.vpMode == VpMode::Mtvp ||
                    _cfg.vpMode == VpMode::SpawnOnly) &&
                   tc.activeSpawnSeq == 0 && !tc.fetchHalted &&
                   poolFor(in.rd).canAlloc(1);
    MemLevel probed = _hier.probeLevel(di->emu.effAddr);

    if (_cfg.vpMode == VpMode::SpawnOnly) {
        if (!mayMtvp)
            return;
        if (!ctxFree) {
            ++_statSpawnFailNoCtx;
            return;
        }
        VpChoice choice = _selector->select(pc, true, false, probed);
        di->ilpWindow = openIlpWindow(pc, choice);
        if (choice != VpChoice::Mtvp) {
            if (di->ilpWindow >= 0) {
                PendingLoad pl;
                pl.load = di;
                pl.choice = VpChoice::None;
                _pending.push_back(std::move(pl));
            }
            return;
        }
        PendingLoad pl;
        pl.load = di;
        pl.choice = VpChoice::Mtvp;
        pl.spawnOnly = true;
        _pending.push_back(std::move(pl));
        spawnThreads(di, tc, {actual}, true);
        return;
    }

    ValuePrediction pred;
    {
        HostProfiler::Scope s(_prof, ProfSection::VpredPredict);
        pred = _vpred->predict(pc, actual);
    }
    if (!pred.valid || !pred.confident)
        return;

    bool stvpAllowed = !_vpTagFree.empty();
    bool mtvpAllowed = _cfg.vpMode == VpMode::Mtvp && mayMtvp && ctxFree;
    if (_cfg.vpMode == VpMode::Mtvp && mayMtvp && !ctxFree)
        ++_statSpawnFailNoCtx;

    VpChoice choice =
        _selector->select(pc, mtvpAllowed, stvpAllowed, probed);
    vpsim_assert(choice != VpChoice::Mtvp || mtvpAllowed);
    vpsim_assert(choice != VpChoice::Stvp || stvpAllowed);
    DPRINTF(VPred,
            "load seq=%llu pc=%llx predicted value=%llx conf=%d "
            "choice=%s",
            static_cast<unsigned long long>(di->seq),
            static_cast<unsigned long long>(pc),
            static_cast<unsigned long long>(pred.value), pred.confidence,
            choice == VpChoice::Mtvp   ? "mtvp"
            : choice == VpChoice::Stvp ? "stvp"
                                       : "none");
    if (!mtvpAllowed)
        ++_statSelMtvpBlocked;
    switch (choice) {
      case VpChoice::None: ++_statSelNone; break;
      case VpChoice::Stvp: ++_statSelStvp; break;
      case VpChoice::Mtvp: ++_statSelMtvp; break;
    }

    di->ilpWindow = openIlpWindow(pc, choice);

    if (choice == VpChoice::None) {
        if (di->ilpWindow >= 0) {
            PendingLoad pl;
            pl.load = di;
            pl.choice = VpChoice::None;
            _pending.push_back(std::move(pl));
        }
        return;
    }

    ++_statVpFollowed;
    _vpattr.recordFollowed(pc, choice, pred.confidence);
    RegVal primary = pred.value;

    // Figure 5 bookkeeping: primary wrong, but the correct value was in
    // the predictor and over threshold.
    if (primary != actual) {
        auto over = _vpred->predictMulti(pc, 8, _cfg.confidenceThreshold,
                                         actual);
        for (RegVal v : over) {
            if (v == actual) {
                ++_statVpPrimaryWrongHadCorrect;
                break;
            }
        }
    }

    if (choice == VpChoice::Stvp) {
        int tag = allocVpTag(di);
        vpsim_assert(tag >= 0);
        ++_statVpStvp;
        di->vpPredicted = true;
        di->vpTraceKind = 1;
        di->vpTag = tag;
        di->vpValue = primary;
        ++tc.openStvp;
        _vpred->notePredictionUsed(pc, primary);
        // Dependents may consume the predicted value next cycle.
        poolFor(in.rd).setReadyAt(di->physDest, _now + 1);
        taintOf(in.rd, di->physDest) |= uint64_t{1} << tag;

        PendingLoad pl;
        pl.load = di;
        pl.choice = VpChoice::Stvp;
        _pending.push_back(std::move(pl));
        return;
    }

    // MTVP: gather the value set (multi-value spawning, Section 5.6).
    std::vector<RegVal> values;
    if (_cfg.maxValuesPerSpawn > 1) {
        values = _vpred->predictMulti(pc, _cfg.maxValuesPerSpawn,
                                      _cfg.multiValueThreshold, actual);
    }
    if (values.empty())
        values.push_back(primary);
    ++_statVpMtvp;
    _vpred->notePredictionUsed(pc, values.front());

    PendingLoad pl;
    pl.load = di;
    pl.choice = VpChoice::Mtvp;
    _pending.push_back(std::move(pl));
    spawnThreads(di, tc, values, false);
}

void
Cpu::spawnThreads(const DynInstPtr &load, ThreadContext &parent,
                  const std::vector<RegVal> &values, bool spawnOnly)
{
    vpsim_assert(!values.empty());
    vpsim_assert(!_pending.empty() && _pending.back().load == load,
                 "spawnThreads expects its pending entry on top");
    PendingLoad &pl = _pending.back();

    int rd = load->emu.inst.rd;

    // Freeze the parent's segment: everything older than the spawn point
    // is shared with the children; everything younger goes to fresh
    // segments on each side.
    auto frozen = parent.segment;
    frozen->freeze();
    if (parent.id == _root && !frozen->drainQueued()) {
        frozen->markDrainQueued();
        _drainQueue.push_back(frozen);
    }
    parent.segment = std::make_shared<StoreSegment>(parent.id, frozen);
    parent.ownedSegments.push_back(parent.segment);

    bool first = true;
    for (RegVal value : values) {
        // Each child needs a context and a destination register.
        if (rd > 0 && !poolFor(rd).canAlloc(1))
            break;
        CtxId cid = allocContext();
        if (cid == invalidCtx)
            break;
        ThreadContext &child = ctx(cid);

        child.arch = parent.arch;
        if (!spawnOnly && rd > 0)
            child.arch.writeReg(rd, value);

        for (int r = 0; r < numLogicalRegs; ++r) {
            PhysReg p = parent.map[static_cast<size_t>(r)];
            poolFor(r).addRef(p);
            child.map[static_cast<size_t>(r)] = p;
        }
        PhysReg destPreg = invalidPhysReg;
        if (rd > 0) {
            PhysRegFile &pool = poolFor(rd);
            destPreg = pool.alloc();
            pool.release(child.map[static_cast<size_t>(rd)]);
            child.map[static_cast<size_t>(rd)] = destPreg;
            taintOf(rd, destPreg) = 0;
            pool.setReadyAt(destPreg, spawnOnly
                                          ? neverCycle
                                          : _now + static_cast<Cycle>(
                                                       _cfg.spawnLatency));
        }

        child.segment = std::make_shared<StoreSegment>(cid, frozen);
        child.ownedSegments.push_back(child.segment);

        if (first) {
            // Single fetch path: the child inherits the already-fetched
            // post-load stream; rename and below simply deliver to the
            // new context (Section 3.3).
            child.fetchQueue = std::move(parent.fetchQueue);
            parent.fetchQueue.clear();
            child.fetchPc = parent.fetchPc;
            child.fetchHalted = parent.fetchHalted;
            child.fetchAwaitIndirect = parent.fetchAwaitIndirect;
            child.fetchStallUntil = parent.fetchStallUntil;
        } else {
            child.fetchPc = load->emu.nextPc;
            ++_statSpawnExtraValues;
        }
        child.spawnReadyAt = _now + static_cast<Cycle>(_cfg.spawnLatency);
        child.parent = parent.id;
        DPRINTF(MTVP,
                "spawn child ctx=%d value=%llx off load seq=%llu "
                "pc=%llx (ready at %llu)",
                cid, static_cast<unsigned long long>(value),
                static_cast<unsigned long long>(load->seq),
                static_cast<unsigned long long>(load->emu.pc),
                static_cast<unsigned long long>(child.spawnReadyAt));
        parent.children.push_back(cid);
        _spawnSeq[static_cast<size_t>(cid)] = load->seq;
        _bpred.copyHistory(parent.id, cid);
        _ras[static_cast<size_t>(cid)] = _ras[static_cast<size_t>(
            parent.id)];

        pl.children.push_back({cid, value, destPreg, rd});
        ++_statSpawns;
        _analytics.recordSpawn(cid, parent.id, load->emu.pc, _now);
        first = false;
    }

    vpsim_assert(!pl.children.empty(),
                 "spawn requested with no context available");

    load->spawnedThread = true;
    load->vpTraceKind = 2;
    parent.activeSpawnSeq = load->seq;
    parent.fetchHalted = false;
    parent.fetchAwaitIndirect = false;
    parent.fetchStallUntil = 0;
    if (_cfg.fetchPolicy == FetchPolicy::SingleFetchPath) {
        parent.fetchStopped = true;
    } else {
        // No-stall: the parent refetches the post-load path itself and
        // competes for fetch via ICOUNT (Section 5.5).
        parent.fetchPc = load->emu.nextPc;
    }
}

} // namespace vpsim
