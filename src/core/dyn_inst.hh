/**
 * @file
 * The in-flight (dynamic) instruction record shared by the ROB, the
 * issue queues, and the MTVP machinery.
 */

#ifndef VPSIM_CORE_DYN_INST_HH
#define VPSIM_CORE_DYN_INST_HH

#include <memory>

#include "emu/emulator.hh"
#include "sim/types.hh"

namespace vpsim
{

class StoreSegment;

/** One renamed, in-flight instruction. */
struct DynInst
{
    InstSeqNum seq = 0;
    CtxId ctx = invalidCtx;
    EmuStep emu;

    // ----- Rename -----
    PhysReg physDest = invalidPhysReg;
    /** Previous mapping of the destination (released at commit). */
    PhysReg prevDest = invalidPhysReg;
    PhysReg physSrc[3] = {invalidPhysReg, invalidPhysReg, invalidPhysReg};
    /** Logical register of each source (selects the int vs FP pool). */
    int srcLogical[3] = {-1, -1, -1};
    int numSrcs = 0;

    // ----- Status -----
    bool issued = false;
    bool everIssued = false;  ///< Has issued at least once (reissue aware).
    bool squashed = false;    ///< Context killed / wrong path; ignore.
    Cycle dispatchCycle = 0;
    Cycle readyCycle = neverCycle; ///< When the result exists.

    /** Result produced by @p now. */
    bool completedBy(Cycle now) const { return issued && readyCycle <= now; }

    // ----- Value prediction -----
    /** Bitmask of outstanding value-predicted loads this inst depends
     *  on (transitively); used for selective reissue. */
    uint64_t vpDependMask = 0;
    bool vpPredicted = false;  ///< This load consumed a value prediction.
    int vpTag = -1;            ///< Tag slot while the prediction is open.
    RegVal vpValue = 0;        ///< The predicted value.
    bool spawnedThread = false;///< An MTVP spawn hangs off this load.
    int ilpWindow = -1;        ///< Open ILP-pred measurement window.

    // ----- Branch bookkeeping -----
    bool predictedTaken = false;
    Addr predictedTarget = 0;
    bool mispredicted = false;

    // ----- Store bookkeeping -----
    /** Segment this store's bytes went to (capacity accounting). */
    std::shared_ptr<StoreSegment> targetSegment;

    bool isLoad() const { return emu.inst.isLoad(); }
    bool isStore() const { return emu.inst.isStore(); }
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace vpsim

#endif // VPSIM_CORE_DYN_INST_HH
