/**
 * @file
 * The in-flight (dynamic) instruction record shared by the ROB, the
 * issue queues, and the MTVP machinery.
 */

#ifndef VPSIM_CORE_DYN_INST_HH
#define VPSIM_CORE_DYN_INST_HH

#include <memory>

#include "emu/emulator.hh"
#include "sim/types.hh"

namespace vpsim
{

class StoreSegment;

/** Why an in-flight instruction was squashed (pipeline-trace label). */
enum class SquashReason : uint8_t
{
    None,        ///< Not squashed.
    Promote,     ///< Parent's losing post-spawn path discarded.
    ThreadKill,  ///< Whole speculative context killed.
};

inline const char *
squashReasonName(SquashReason r)
{
    switch (r) {
      case SquashReason::None: return "none";
      case SquashReason::Promote: return "promote";
      case SquashReason::ThreadKill: return "kill";
    }
    return "?";
}

/** One renamed, in-flight instruction. */
struct DynInst
{
    InstSeqNum seq = 0;
    CtxId ctx = invalidCtx;
    EmuStep emu;

    // ----- Rename -----
    PhysReg physDest = invalidPhysReg;
    /** Previous mapping of the destination (released at commit). */
    PhysReg prevDest = invalidPhysReg;
    PhysReg physSrc[3] = {invalidPhysReg, invalidPhysReg, invalidPhysReg};
    /** Logical register of each source (selects the int vs FP pool). */
    int srcLogical[3] = {-1, -1, -1};
    int numSrcs = 0;

    // ----- Status -----
    bool issued = false;
    bool everIssued = false;  ///< Has issued at least once (reissue aware).
    bool squashed = false;    ///< Context killed / wrong path; ignore.
    Cycle dispatchCycle = 0;
    Cycle readyCycle = neverCycle; ///< When the result exists.

    // ----- Pipeline-trace bookkeeping (sim/trace.hh InstTracer) -----
    Cycle fetchCycle = 0;     ///< When fetch put it in the fetch queue.
    Cycle issueCycle = 0;     ///< Most recent issue (reissues re-stamp).
    SquashReason squashReason = SquashReason::None;
    /** VP flavour applied at dispatch: 0 none, 1 STVP, 2 MTVP spawn.
     *  Survives resolution (unlike vpPredicted/spawnedThread). */
    uint8_t vpTraceKind = 0;

    /** Level that serviced this load's most recent issue (CPI stack). */
    MemLevel memLevel = MemLevel::L1;

    /** Result produced by @p now. */
    bool completedBy(Cycle now) const { return issued && readyCycle <= now; }

    // ----- Value prediction -----
    /** Bitmask of outstanding value-predicted loads this inst depends
     *  on (transitively); used for selective reissue. */
    uint64_t vpDependMask = 0;
    bool vpPredicted = false;  ///< This load consumed a value prediction.
    int vpTag = -1;            ///< Tag slot while the prediction is open.
    RegVal vpValue = 0;        ///< The predicted value.
    bool spawnedThread = false;///< An MTVP spawn hangs off this load.
    int ilpWindow = -1;        ///< Open ILP-pred measurement window.

    // ----- Branch bookkeeping -----
    bool predictedTaken = false;
    Addr predictedTarget = 0;
    bool mispredicted = false;

    // ----- Store bookkeeping -----
    /** Segment this store's bytes went to (capacity accounting). */
    std::shared_ptr<StoreSegment> targetSegment;

    bool isLoad() const { return emu.inst.isLoad(); }
    bool isStore() const { return emu.inst.isStore(); }
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace vpsim

#endif // VPSIM_CORE_DYN_INST_HH
