/**
 * @file
 * The in-flight (dynamic) instruction record shared by the ROB, the
 * issue queues, and the MTVP machinery.
 */

#ifndef VPSIM_CORE_DYN_INST_HH
#define VPSIM_CORE_DYN_INST_HH

#include <cstdint>
#include <memory>
#include <new>

#include "emu/emulator.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace vpsim
{

class StoreSegment;

/** Why an in-flight instruction was squashed (pipeline-trace label). */
enum class SquashReason : uint8_t
{
    None,        ///< Not squashed.
    Promote,     ///< Parent's losing post-spawn path discarded.
    ThreadKill,  ///< Whole speculative context killed.
};

inline const char *
squashReasonName(SquashReason r)
{
    switch (r) {
      case SquashReason::None: return "none";
      case SquashReason::Promote: return "promote";
      case SquashReason::ThreadKill: return "kill";
    }
    return "?";
}

/** One renamed, in-flight instruction. */
struct DynInst
{
    InstSeqNum seq = 0;
    CtxId ctx = invalidCtx;
    EmuStep emu;

    // ----- Rename -----
    PhysReg physDest = invalidPhysReg;
    /** Previous mapping of the destination (released at commit). */
    PhysReg prevDest = invalidPhysReg;
    PhysReg physSrc[3] = {invalidPhysReg, invalidPhysReg, invalidPhysReg};
    /** Logical register of each source (selects the int vs FP pool). */
    int srcLogical[3] = {-1, -1, -1};
    int numSrcs = 0;

    // ----- Status -----
    bool issued = false;
    bool everIssued = false;  ///< Has issued at least once (reissue aware).
    bool squashed = false;    ///< Context killed / wrong path; ignore.
    Cycle dispatchCycle = 0;
    Cycle readyCycle = neverCycle; ///< When the result exists.

    // ----- Pipeline-trace bookkeeping (sim/trace.hh InstTracer) -----
    Cycle fetchCycle = 0;     ///< When fetch put it in the fetch queue.
    Cycle issueCycle = 0;     ///< Most recent issue (reissues re-stamp).
    SquashReason squashReason = SquashReason::None;
    /** VP flavour applied at dispatch: 0 none, 1 STVP, 2 MTVP spawn.
     *  Survives resolution (unlike vpPredicted/spawnedThread). */
    uint8_t vpTraceKind = 0;

    /** Level that serviced this load's most recent issue (CPI stack). */
    MemLevel memLevel = MemLevel::L1;

    /** Result produced by @p now. */
    bool completedBy(Cycle now) const { return issued && readyCycle <= now; }

    // ----- Value prediction -----
    /** Bitmask of outstanding value-predicted loads this inst depends
     *  on (transitively); used for selective reissue. */
    uint64_t vpDependMask = 0;
    bool vpPredicted = false;  ///< This load consumed a value prediction.
    int vpTag = -1;            ///< Tag slot while the prediction is open.
    RegVal vpValue = 0;        ///< The predicted value.
    bool spawnedThread = false;///< An MTVP spawn hangs off this load.
    int ilpWindow = -1;        ///< Open ILP-pred measurement window.

    // ----- Branch bookkeeping -----
    bool predictedTaken = false;
    Addr predictedTarget = 0;
    bool mispredicted = false;

    // ----- Store bookkeeping -----
    /** Segment this store's bytes went to (capacity accounting). */
    std::shared_ptr<StoreSegment> targetSegment;

    bool isLoad() const { return emu.inst.isLoad(); }
    bool isStore() const { return emu.inst.isStore(); }
};

class InstPool;

namespace detail
{

/**
 * One recycled pool slot: an intrusive refcount and a reuse generation
 * in front of raw DynInst storage. The count is deliberately
 * **non-atomic** — a simulation runs wholly on one SimPool worker
 * thread and DynInsts never cross simulations, so the atomic RMWs a
 * shared_ptr control block would pay on every handle copy are pure
 * waste (see docs/DESIGN.md "Instruction ownership").
 */
struct InstSlot
{
    uint32_t refs = 0;
    /** Bumped every recycle; stale handles notice the mismatch. */
    uint32_t gen = 0;
    InstPool *pool = nullptr;
    alignas(DynInst) unsigned char storage[sizeof(DynInst)];

    DynInst *
    obj()
    {
        return std::launder(reinterpret_cast<DynInst *>(storage));
    }
};

/** Out-of-line cold path: destroy the DynInst, bump the generation,
 *  push the slot back on its pool's free list (inst_pool.cc). */
void recycleInstSlot(InstSlot *slot) noexcept;

} // namespace detail

/**
 * Intrusive, non-atomic refcounted handle to a pool-slot DynInst —
 * the drop-in replacement for the former std::shared_ptr<DynInst>.
 * Same 16-byte footprint, but copies are a plain ++/-- instead of two
 * lock-prefixed RMWs, and destruction returns the slot to the owning
 * Cpu's InstPool free list instead of the heap.
 *
 * Every handle carries the slot generation it was created against; in
 * debug builds (!NDEBUG) each dereference checks it, so a handle that
 * outlives its instruction's recycling dies loudly instead of reading
 * a recycled slot. checkedGet() performs the same check in all build
 * types (the stale-handle death test uses it).
 */
class DynInstPtr
{
  public:
    DynInstPtr() = default;
    DynInstPtr(std::nullptr_t) {}

    DynInstPtr(const DynInstPtr &o) : _slot(o._slot), _gen(o._gen)
    {
        if (_slot != nullptr)
            ++_slot->refs;
    }

    DynInstPtr(DynInstPtr &&o) noexcept : _slot(o._slot), _gen(o._gen)
    {
        o._slot = nullptr;
    }

    DynInstPtr &
    operator=(const DynInstPtr &o)
    {
        if (o._slot != nullptr)
            ++o._slot->refs;
        release();
        _slot = o._slot;
        _gen = o._gen;
        return *this;
    }

    DynInstPtr &
    operator=(DynInstPtr &&o) noexcept
    {
        if (this != &o) {
            release();
            _slot = o._slot;
            _gen = o._gen;
            o._slot = nullptr;
        }
        return *this;
    }

    DynInstPtr &
    operator=(std::nullptr_t)
    {
        release();
        _slot = nullptr;
        return *this;
    }

    ~DynInstPtr() { release(); }

    DynInst *
    get() const
    {
#ifndef NDEBUG
        checkGen();
#endif
        return _slot != nullptr ? _slot->obj() : nullptr;
    }

    DynInst &operator*() const { return *get(); }
    DynInst *operator->() const { return get(); }
    explicit operator bool() const { return _slot != nullptr; }

    void
    reset()
    {
        release();
        _slot = nullptr;
    }

    /** get() with the generation check in *every* build type: a stale
     *  handle (slot recycled since this handle was made) panics. */
    DynInst *
    checkedGet() const
    {
        checkGen();
        return _slot != nullptr ? _slot->obj() : nullptr;
    }

    /** True when the slot was recycled out from under this handle. */
    bool
    stale() const
    {
        return _slot != nullptr && _slot->gen != _gen;
    }

    /**
     * Test-only hook: drop this handle's reference WITHOUT forgetting
     * the slot, leaving a deliberately dangling handle behind. Exists
     * solely so the stale-handle death test can manufacture the bug
     * the generation check guards against.
     */
    void
    testOnlyLeakRef()
    {
        release();
    }

    friend bool
    operator==(const DynInstPtr &a, const DynInstPtr &b)
    {
        return a._slot == b._slot;
    }
    friend bool
    operator!=(const DynInstPtr &a, const DynInstPtr &b)
    {
        return a._slot != b._slot;
    }
    friend bool
    operator==(const DynInstPtr &a, std::nullptr_t)
    {
        return a._slot == nullptr;
    }
    friend bool
    operator!=(const DynInstPtr &a, std::nullptr_t)
    {
        return a._slot != nullptr;
    }
    friend bool
    operator==(std::nullptr_t, const DynInstPtr &a)
    {
        return a._slot == nullptr;
    }
    friend bool
    operator!=(std::nullptr_t, const DynInstPtr &a)
    {
        return a._slot != nullptr;
    }

  private:
    friend class InstPool;

    /** Adopting constructor used by InstPool::alloc (refcount already
     *  counts this handle). */
    DynInstPtr(detail::InstSlot *slot, uint32_t gen) : _slot(slot), _gen(gen)
    {
    }

    void
    release()
    {
        if (_slot != nullptr && --_slot->refs == 0)
            detail::recycleInstSlot(_slot);
    }

    void
    checkGen() const
    {
        vpsim_assert(_slot == nullptr || _slot->gen == _gen,
                     "stale DynInst handle: slot recycled "
                     "(handle gen %u, slot gen %u)",
                     _gen, _slot->gen);
    }

    detail::InstSlot *_slot = nullptr;
    uint32_t _gen = 0;
};

} // namespace vpsim

#endif // VPSIM_CORE_DYN_INST_HH
