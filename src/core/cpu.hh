/**
 * @file
 * The SMT out-of-order core with threaded value prediction.
 *
 * Pipeline model (execution-driven, emulate-at-dispatch):
 *  - fetch:    ICOUNT thread choice, up to 16 instructions from 2 cache
 *              lines per cycle, branch direction/target prediction;
 *              fetched instructions mature after the front-end depth.
 *  - dispatch: in-order per context; the instruction is functionally
 *              executed here (the timing model decides when its effects
 *              would exist), renamed onto the shared physical register
 *              files, and inserted into ROB + issue queue. Value
 *              prediction, load selection, and MTVP spawning happen here.
 *  - issue:    oldest-first from the shared IQ/FQ/MQ within the 8-wide
 *              (6 int / 2 FP / 4 mem) issue bandwidth; loads access the
 *              store-segment chain, LSQ, and cache hierarchy.
 *  - commit:   in-order per context; speculative (spawned) contexts
 *              commit into their store segments — the decoupling that
 *              gives MTVP its window (paper Section 3.2).
 *
 * Branch mispredictions charge a fetch redirect at branch resolution
 * plus front-end refill; wrong-path instructions consume fetch slots but
 * are not executed (see DESIGN.md for this substitution).
 */

#ifndef VPSIM_CORE_CPU_HH
#define VPSIM_CORE_CPU_HH

#include <memory>
#include <vector>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"
#include "core/inst_pool.hh"
#include "core/issue_queue.hh"
#include "core/phys_regfile.hh"
#include "core/wakeup.hh"
#include "core/thread_context.hh"
#include "emu/emulator.hh"
#include "emu/fastfwd.hh"
#include "emu/memory.hh"
#include "mem/hierarchy.hh"
#include "sim/analytics.hh"
#include "sim/config.hh"
#include "sim/cpi_stack.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "vpred/load_selector.hh"
#include "vpred/value_predictor.hh"
#include "vpred/vp_attribution.hh"

namespace vpsim
{

class CheckpointWriter;
class CheckpointReader;

/** The simulated CPU. One instance per simulation run. (Privately a
 *  WarmupSink: fast-forwarded instructions warm its caches and
 *  predictors through warmInst.) */
class Cpu : private WarmupSink
{
  public:
    /** Construct with context 0 active at @p entryPc. */
    Cpu(const SimConfig &cfg, MainMemory &mem, Addr entryPc);
    ~Cpu();

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /** Simulate until HALT commits usefully, maxInsts, or maxCycles.
     *  With cfg.sampleIntervals > 0 this runs the interval-sampling
     *  schedule (fast-forward / warmup / measure per interval) instead
     *  of measuring the whole detailed region. */
    void run();

    /** Single-step one cycle (exposed for tests). */
    void tick();

    /**
     * Execute up to @p n instructions emulator-only (no fetch/dispatch/
     * issue/ROB; stores write straight to memory) while warming caches,
     * branch predictors, and the value predictor. Requires an empty
     * pipeline; costs zero simulated cycles. Fast-forwarded instructions
     * count toward the maxInsts stream position. Returns instructions
     * actually executed (short on HALT).
     */
    uint64_t fastForward(uint64_t n);

    /** Instructions executed by fastForward() so far. */
    uint64_t ffInsts() const { return _ffInsts; }

    /** Serialize the post-fast-forward machine state (architectural
     *  state, memory, warm cache/predictor tables). Only legal on a
     *  pristine machine: zero cycles, zero commits, nothing in flight. */
    void saveCheckpoint(CheckpointWriter &cw);

    /** Inverse of saveCheckpoint; only legal before any simulation or
     *  fast-forward has happened. Restoring is bit-identical to having
     *  fast-forwarded the same region live. */
    void restoreCheckpoint(CheckpointReader &cr);

    bool done() const;

    Cycle cycles() const { return _now; }
    /** Architecturally-useful committed instructions. */
    uint64_t usefulInsts() const;
    double usefulIpc() const;
    /** Measured (cycles, insts) pairs recorded by the interval sampler. */
    size_t sampledIntervals() const { return _samples.size(); }

    StatGroup &stats() { return _stats; }
    const StatGroup &stats() const { return _stats; }

    /** Periodic stat sampler (nullptr unless cfg.samplePeriod > 0). */
    trace::StatSampler *sampler() { return _sampler.get(); }
    /** Pipeline tracer (nullptr unless cfg.pipeView is set). */
    trace::InstTracer *pipeTracer() { return _tracer.get(); }
    /** Per-thread CPI-stack accounting (always on). */
    const CpiStack &cpiStack() const { return _cpi; }
    /** Host self-profiler (recording only when cfg.profile is set). */
    const HostProfiler &profiler() const { return _prof; }
    /** Spawn-lifecycle provenance aggregates (always on). */
    const Analytics &analytics() const { return _analytics; }
    /** Per-load-PC value-prediction attribution (always on). */
    const VpAttribution &vpAttribution() const { return _vpattr; }

    // ----- Introspection for invariant tests -----
    int freeIntRegs() const { return _intRegs.freeCount(); }
    int freeFpRegs() const { return _fpRegs.freeCount(); }
    int activeContexts() const;
    int robOccupancy() const { return _robOccupancy; }
    bool haltedUsefully() const { return _finished; }
    int pendingLoads() const { return static_cast<int>(_pending.size()); }
    int freeVpTags() const { return static_cast<int>(_vpTagFree.size()); }
    /** Instruction slot pool (allocation-audit tests read counters). */
    const InstPool &instPool() const { return *_instPool; }
    int drainQueueDepth() const
    {
        return static_cast<int>(_drainQueue.size());
    }

  private:
    friend class CpuTestPeer;

    static constexpr int numVpTags = 64;
    /** Issue-stage waiting-entry scan cap, shared with the time-skip
     *  event scan so both consider exactly the same entries. */
    static constexpr int issueScanCap = 256;

    /** One spawned speculative thread hanging off a load. */
    struct ChildRec
    {
        CtxId ctx = invalidCtx;
        RegVal value = 0;       ///< The value this child speculates on.
        PhysReg destPreg = invalidPhysReg;
        int destLogical = -1;
    };

    /** Outstanding value-predicted / spawned / measured load. */
    struct PendingLoad
    {
        DynInstPtr load;
        VpChoice choice = VpChoice::None;
        std::vector<ChildRec> children;
        bool spawnOnly = false;
        /** Resolution chose this child; promote when the load commits. */
        CtxId winner = invalidCtx;
        bool resolved = false;
    };

    /** ILP-pred measurement window. Windows have a minimum duration so
     *  the post-confirmation benefit of a spawn (the child's run-ahead)
     *  is part of what the selector measures. */
    struct IlpWindow
    {
        enum class State { Free, Open, Closing };
        State state = State::Free;
        Addr pc = 0;
        VpChoice choice = VpChoice::None;
        Cycle startCycle = 0;
        Cycle closeAt = 0;
        uint64_t startIssued = 0;
    };

    // ----- Cycle stages (definitions spread over core/*.cc) -----
    void commitStage();                        // commit.cc
    void resolvePendingLoads();                // commit.cc
    void drainStoreBuffers();                  // commit.cc
    void issueStage();                         // execute.cc
    void dispatchStage();                      // dispatch.cc
    void fetchStage();                         // fetch.cc

    // ----- Fetch helpers (fetch.cc) -----
    bool fetchEligible(const ThreadContext &tc) const;
    int icountKey(const ThreadContext &tc) const;
    /** Fetch one line-run for @p tc; returns instructions fetched. */
    int fetchLineRun(ThreadContext &tc, int maxInsts);

    // ----- Dispatch helpers (dispatch.cc) -----
    bool dispatchOne(ThreadContext &tc);
    bool resourcesAvailable(const ThreadContext &tc,
                            const DecodedInst &inst) const;
    IssueQueue &queueFor(const DecodedInst &inst);
    /** Register @p di's renamed sources with the wakeup tables so its
     *  queue entry's cached source-ready cycle stays exact. */
    void watchSources(const DynInstPtr &di, IssueQueue &q);
    void renameSources(DynInst &di, ThreadContext &tc);
    void renameDest(DynInst &di, ThreadContext &tc);
    void handleControl(const DynInstPtr &di, ThreadContext &tc,
                       const FetchedInst &fi);
    void handleLoadVp(const DynInstPtr &di, ThreadContext &tc);
    void spawnThreads(const DynInstPtr &load, ThreadContext &parent,
                      const std::vector<RegVal> &values, bool spawnOnly);
    CtxId allocContext();

    // ----- Execute helpers (execute.cc) -----
    bool tryIssue(const DynInstPtr &di);
    bool sourcesReady(const DynInst &di) const;
    Cycle loadTiming(const DynInstPtr &di, bool &fromStoreBuffer);
    const DynInst *olderInflightStore(const DynInst &load) const;

    // ----- Commit / MTVP helpers (commit.cc) -----
    bool commitOne(ThreadContext &tc);
    void resolveOne(PendingLoad &pl);
    void promoteChild(PendingLoad &pl, CtxId winner);
    /** Kill @p id and its descendants; @p why is the provenance
     *  outcome for @p id itself (descendants die as upstream
     *  squashes). Returns @p id's spawn-lifetime cycles. */
    uint64_t killSubtree(CtxId id, SpawnOutcome why);
    void killChildrenSpawnedAfter(ThreadContext &tc, InstSeqNum seq);
    void squashYoungerThan(ThreadContext &tc, InstSeqNum seq,
                           SquashReason why);
    void releaseContextRegs(ThreadContext &tc);
    void deactivateContext(ThreadContext &tc);
    void enqueueDrainable(ThreadContext &tc);
    void detachChildFromParent(ThreadContext &child);

    // ----- Shared helpers (cpu.cc) -----
    /** Pool-allocated DynInst (recycled slots; see core/inst_pool.hh). */
    DynInstPtr allocInst() { return _instPool->alloc(); }
    PhysRegFile &poolFor(int logicalReg);
    const PhysRegFile &poolFor(int logicalReg) const;
    uint64_t &taintOf(int logicalReg, PhysReg reg);
    uint64_t taintOf(int logicalReg, PhysReg reg) const;
    int allocVpTag(const DynInstPtr &load);
    void freeVpTag(int tag);
    void clearVpBitEverywhere(int tag);
    /** Returns how many dependents were selectively reissued. */
    int reissueDependents(int tag, Cycle correctedReady);
    int openIlpWindow(Addr pc, VpChoice choice);
    void closeIlpWindow(int idx, VpChoice used);
    void cancelIlpWindow(int idx);
    void recordMatureWindows();
    ThreadContext &ctx(CtxId id);
    const ThreadContext &ctx(CtxId id) const;
    CtxId rootCtx() const { return _root; }
    void checkWatchdog();

    // ----- Fast-forward / interval sampling (cpu.cc) -----
    /** One measured sampling interval. */
    struct IntervalSample
    {
        uint64_t cycles = 0;
        uint64_t insts = 0;
    };

    /** WarmupSink: one fast-forwarded instruction's warm updates. */
    void warmInst(const EmuStep &step) override;
    /** The run() while-loop; additionally stops once the instruction
     *  stream position (ffInsts + usefulInsts) reaches @p streamTarget
     *  (0 = no stream target, run to done()). */
    void runLoopUntil(uint64_t streamTarget);
    /** The sampling schedule: per interval fast-forward, detailed
     *  warmup, measured detail, quiesce. */
    void runSampled();
    /** Run the pipeline dry between intervals (fetch/dispatch gated
     *  off), then reset the front end and flush architectural stores so
     *  the next fast-forward starts from a clean machine. */
    void quiesce();
    /** Drain + flush the root chain's store segments to main memory
     *  (run() epilogue and quiesce share this). */
    void drainArchStores();
    /** Mean (or, with @p ci, CI95 half-width) over the recorded
     *  interval samples of per-interval CPI (@p cpi) or IPC. */
    double sampleStat(bool cpi, bool ci) const;

    // ----- Time-skip engine (cpu.cc) -----
    /** Earliest future cycle any machine event can fire (fill
     *  completion, result ready, queue-entry sources maturing, spawn
     *  warm-up, fetch resume, ILP window close); neverCycle = none. */
    Cycle nextEventCycle() const;
    /** Skipping permitted right now (outside active trace windows)? */
    bool timeSkipAllowed() const;
    /** After a provably idle tick: jump _now to the next event and
     *  bulk-charge the skipped cycles to the CPI stack. */
    void tryTimeSkip();
    /** Per-context pipeline dump shared by the watchdog and deadlock
     *  diagnostics. */
    void dumpPipelineState() const;
    [[noreturn]] void deadlockPanic() const;
    /** Charge the cycle that just executed to one CpiSlot per context. */
    void accountCpiCycle();
    CpiSlot cpiSlotFor(const ThreadContext &tc) const;
    /** Emit an O3PipeView record (retire == 0 marks a squash). */
    void traceInst(const DynInst &di, Cycle retire);

    // ----- Construction-time wiring -----
    const SimConfig _cfg;
    MainMemory &_mem;
    StatGroup _stats;
    std::vector<std::unique_ptr<Formula>> _formulas;
    Emulator _emu;
    Hierarchy _hier;
    BranchPredictor _bpred;
    Btb _btb;
    std::vector<ReturnAddressStack> _ras;
    std::unique_ptr<ValuePredictor> _vpred;
    std::unique_ptr<LoadSelector> _selector;
    std::unique_ptr<trace::InstTracer> _tracer;
    std::unique_ptr<trace::StatSampler> _sampler;

    PhysRegFile _intRegs;
    PhysRegFile _fpRegs;
    std::vector<uint64_t> _intTaint;
    std::vector<uint64_t> _fpTaint;

    IssueQueue _iq;
    IssueQueue _fq;
    IssueQueue _mq;

    std::vector<ThreadContext> _ctxs;
    std::vector<InstSeqNum> _spawnSeq; ///< Per ctx: seq of spawning load.

    // ----- Run state -----
    Cycle _now = 0;
    InstSeqNum _nextSeq = 1;
    int _robOccupancy = 0;
    CtxId _root = 0;
    uint64_t _usefulBase = 0;
    uint64_t _issuedTotal = 0;
    bool _finished = false;
    Cycle _lastCommitCycle = 0;
    int _commitRotor = 0;
    /** Bumped by every state-mutating stage action; a tick that leaves
     *  it unchanged provably did nothing, so run() may time-skip. */
    uint64_t _activity = 0;
    Cycle _lastActivityCycle = 0;
    /** Instructions executed emulator-only by fastForward(). */
    uint64_t _ffInsts = 0;
    /** quiesce() in progress: fetch and dispatch are gated off so the
     *  pipeline runs dry between sampling intervals. */
    bool _quiesceDrain = false;
    /** Last I-cache line warmed during fast-forward (fetch touches the
     *  hierarchy per line run, not per instruction). */
    Addr _ffLastLine = static_cast<Addr>(-1);
    /** Host-side tick counter pacing watchdogPoll(); never serialized,
     *  never a stat (simulated cycles jump under time-skip). */
    uint64_t _pollTick = 0;
    /** Per-interval measurements feeding the sample.* formulas. */
    std::vector<IntervalSample> _samples;

    /** Slot pool behind allocInst(). Heap-born on purpose: the Cpu
     *  destructor only releases ownership, and the pool survives until
     *  the last live DynInst handle (e.g. a test peek) lets go. */
    InstPool *_instPool = InstPool::create();
    /** Per-cycle issue-candidate scratch (issueStage); reused so the
     *  per-cycle hot path stays allocation-free after warmup. */
    std::vector<IssueQueue::Candidate> _issueCandidates;

    std::vector<PendingLoad> _pending;
    std::vector<IlpWindow> _windows;
    std::vector<DynInstPtr> _vpTagLoad;
    std::vector<int> _vpTagFree;
    std::deque<std::shared_ptr<StoreSegment>> _drainQueue;
    /** Per ctx: uncommitted stores in dispatch order (LSQ view). */
    std::vector<std::deque<DynInstPtr>> _inflightStores;

    // ----- Observability -----
    CpiStack _cpi;
    HostProfiler _prof;
    /** Wakeup tables (one per register class), declared after _prof so
     *  their construction can reference it; the ctor body registers them
     *  as the register files' listeners. */
    WakeupTable _intWake;
    WakeupTable _fpWake;
    Analytics _analytics;
    VpAttribution _vpattr;
    /** Per ctx: committed at least one instruction this cycle. */
    std::vector<uint8_t> _commitsThisCycle;
    /** Per ctx: commit stalled on a full store buffer this cycle. */
    std::vector<uint8_t> _cpiSbBlocked;

    // ----- Statistics -----
    Scalar _statCommitsTotal;
    Scalar _statDispatched;
    Scalar _statIssued;
    Scalar _statFetched;
    Scalar _statWrongPathFetched;
    Scalar _statVpFollowed;
    Scalar _statVpStvp;
    Scalar _statVpMtvp;
    Scalar _statVpCorrect;
    Scalar _statVpIncorrect;
    Scalar _statVpReissued;
    Scalar _statVpPrimaryWrongHadCorrect;
    Scalar _statSpawns;
    Scalar _statSpawnExtraValues;
    Scalar _statSpawnFailNoCtx;
    Scalar _statPromotes;
    Scalar _statKills;
    Scalar _statSbStalls;
    Scalar _statBranchRedirects;
    Scalar _statSelNone;
    Scalar _statSelStvp;
    Scalar _statSelMtvp;
    Scalar _statSelMtvpBlocked;
    Scalar _statSkippedCycles;
    Scalar _statSkipEvents;
};

} // namespace vpsim

#endif // VPSIM_CORE_CPU_HH
