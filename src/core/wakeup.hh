/**
 * @file
 * Dependency-satisfaction wakeup: one table per physical register file
 * mapping each register to the issue-queue entries waiting on it.
 *
 * Dispatch registers every renamed source of an inserted entry; from
 * then on each PhysRegFile::setReadyAt pushes the change to the
 * registered entries' cached source-ready cycles (IssueQueue::
 * refreshCached recomputes the exact max over the entry's sources, so
 * ordering of notifications never matters). Entries stay registered
 * for as long as they are queue-resident — an issued entry kept by an
 * open vp dependence keeps receiving updates, which is what makes the
 * cache exact across selective reissue. Watch records whose entry has
 * departed are dropped lazily at the next notification, and a register
 * re-allocation clears its list outright (the use counters guarantee a
 * register reachable from any live entry's sources is never recycled,
 * so everything cleared is stale).
 *
 * Host cost attribution: notifications run under the profiler's
 * Wakeup section (null-store when profiling is disabled).
 */

#ifndef VPSIM_CORE_WAKEUP_HH
#define VPSIM_CORE_WAKEUP_HH

#include <vector>

#include "core/issue_queue.hh"
#include "core/phys_regfile.hh"
#include "sim/profiler.hh"

namespace vpsim
{

/** Per-register waiter lists for one register class. */
class WakeupTable final : public PhysRegFile::Listener
{
  public:
    WakeupTable(const PhysRegFile &intRegs, const PhysRegFile &fpRegs,
                int capacity, HostProfiler &prof)
        : _intRegs(intRegs), _fpRegs(fpRegs), _prof(prof),
          _waiters(static_cast<size_t>(capacity))
    {
    }

    /** @p seq (resident in @p q) waits on @p reg of this class. */
    void
    watch(PhysReg reg, IssueQueue *q, InstSeqNum seq)
    {
        _waiters[static_cast<size_t>(reg)].push_back({q, seq});
    }

    void
    regReadyChanged(PhysReg reg, Cycle) override
    {
        HostProfiler::Scope s(_prof, ProfSection::Wakeup);
        auto &ws = _waiters[static_cast<size_t>(reg)];
        size_t w = 0;
        for (size_t r = 0; r < ws.size(); ++r) {
            if (ws[r].queue->refreshCached(ws[r].seq, _intRegs, _fpRegs))
                ws[w++] = ws[r]; // Still resident: keep watching.
        }
        ws.resize(w);
    }

    void
    regAllocated(PhysReg reg) override
    {
        _waiters[static_cast<size_t>(reg)].clear();
    }

  private:
    struct Waiter
    {
        IssueQueue *queue;
        InstSeqNum seq;
    };

    const PhysRegFile &_intRegs;
    const PhysRegFile &_fpRegs;
    HostProfiler &_prof;
    std::vector<std::vector<Waiter>> _waiters;
};

} // namespace vpsim

#endif // VPSIM_CORE_WAKEUP_HH
