/**
 * @file
 * Commit stage plus the MTVP controller: in-order per-context commit
 * (speculative contexts commit into their store segments), value
 * prediction confirmation, selective reissue on STVP mispredictions,
 * thread promotion/kill on MTVP resolutions, and the store-buffer drain
 * engine.
 */

#include <algorithm>

#include "core/cpu.hh"
#include "sim/logging.hh"

namespace vpsim
{

namespace
{

/** Store-buffer drain bandwidth (entries per cycle). */
constexpr int drainRate = 8;

} // namespace

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
Cpu::commitStage()
{
    int n = _cfg.numContexts;
    _commitRotor = (_commitRotor + 1) % n;
    int budget = _cfg.commitWidth;
    for (int i = 0; i < n && budget > 0; ++i) {
        ThreadContext &tc = _ctxs[static_cast<size_t>((_commitRotor + i) %
                                                      n)];
        while (budget > 0 && tc.active && commitOne(tc))
            --budget;
    }
}

bool
Cpu::commitOne(ThreadContext &tc)
{
    if (tc.rob.empty())
        return false;
    DynInstPtr head = tc.rob.front();
    if (!head->completedBy(_now))
        return false;
    trace::setContext(tc.id);

    // A load with an open prediction / spawn / measurement entry may not
    // commit until the entry resolves.
    int pendingIdx = -1;
    if (head->isLoad()) {
        for (size_t i = 0; i < _pending.size(); ++i) {
            if (_pending[i].load == head) {
                pendingIdx = static_cast<int>(i);
                break;
            }
        }
        if (pendingIdx >= 0 &&
            !_pending[static_cast<size_t>(pendingIdx)].resolved) {
            return false;
        }
    }

    if (head->isStore()) {
        int cap = _cfg.storeBufferSize;
        if (cap > 0 && tc.storeBufferOccupancy() >= cap) {
            // No forward progress, but the stall mutates per-cycle
            // stats, so the cycle must not be treated as skippable.
            ++_activity;
            ++_statSbStalls;
            _cpiSbBlocked[static_cast<size_t>(tc.id)] = 1;
            DPRINTF(StoreBuffer,
                    "commit stalled: store buffer full (%d/%d) at "
                    "seq=%llu",
                    tc.storeBufferOccupancy(), cap,
                    static_cast<unsigned long long>(head->seq));
            return false;
        }
        DPRINTF(StoreBuffer,
                "store seq=%llu addr=%llx commits into segment "
                "(occupancy %d)",
                static_cast<unsigned long long>(head->seq),
                static_cast<unsigned long long>(head->emu.effAddr),
                tc.storeBufferOccupancy() + 1);
        head->targetSegment->addResidentStore(head->emu.effAddr);
        head->targetSegment->removePendingCommit();
        auto &infl = _inflightStores[static_cast<size_t>(tc.id)];
        vpsim_assert(!infl.empty() && infl.front() == head,
                     "inflight-store list out of sync");
        infl.pop_front();
    }

    if (head->isLoad()) {
        HostProfiler::Scope s(_prof, ProfSection::VpredTrain);
        _vpred->train(head->emu.pc, head->emu.memValue);
    }

    if (head->prevDest != invalidPhysReg)
        poolFor(head->emu.inst.rd).release(head->prevDest);

    // A committed instruction can never be reissued; drop any still-open
    // prediction dependence so its issue-queue entry is reclaimed (a
    // speculative child can commit past its parent's open predictions).
    if (head->issued && head->vpDependMask != 0)
        queueFor(head->emu.inst).markRemovable(head->seq);
    head->vpDependMask = 0;

    tc.rob.pop_front();
    --_robOccupancy;
    ++tc.committedInsts;
    _commitsThisCycle[static_cast<size_t>(tc.id)] = 1;
    if (tc.activeSpawnSeq != 0 && head->seq > tc.activeSpawnSeq)
        ++tc.committedPostSpawn;
    ++_statCommitsTotal;
    ++_activity;
    _lastCommitCycle = _now;
    DPRINTF(Commit, "commit seq=%llu pc=%llx",
            static_cast<unsigned long long>(head->seq),
            static_cast<unsigned long long>(head->emu.pc));
    if (_tracer)
        traceInst(*head, _now);

    if (head->emu.inst.isHalt()) {
        tc.haltedCommitted = true;
        if (tc.id == _root)
            _finished = true;
    }

    if (pendingIdx >= 0) {
        PendingLoad pl = std::move(_pending[static_cast<size_t>(
            pendingIdx)]);
        _pending.erase(_pending.begin() + pendingIdx);
        vpsim_assert(pl.resolved && pl.winner != invalidCtx);
        promoteChild(pl, pl.winner);
    }

    return true;
}

// ---------------------------------------------------------------------
// Prediction resolution
// ---------------------------------------------------------------------

void
Cpu::resolvePendingLoads()
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < _pending.size(); ++i) {
            PendingLoad &pl = _pending[i];
            vpsim_assert(!pl.load->squashed,
                         "squashed load left in pending list");
            if (pl.resolved)
                continue;
            if (!pl.load->issued || _now < pl.load->readyCycle)
                continue;
            // Move the entry out first: resolveOne can kill subtrees,
            // which erases other _pending entries and would invalidate
            // a reference into the vector.
            PendingLoad moved = std::move(pl);
            _pending.erase(_pending.begin() + static_cast<long>(i));
            resolveOne(moved);
            if (moved.resolved) {
                // A winner is waiting for the load to commit.
                _pending.push_back(std::move(moved));
            }
            changed = true;
            ++_activity;
            break;
        }
    }
}

void
Cpu::resolveOne(PendingLoad &pl)
{
    DynInstPtr load = pl.load;
    RegVal actual = load->emu.memValue;
    ThreadContext &tc = ctx(load->ctx);

    switch (pl.choice) {
      case VpChoice::None:
        closeIlpWindow(load->ilpWindow, VpChoice::None);
        load->ilpWindow = -1;
        return;

      case VpChoice::Stvp: {
        bool correct = load->vpValue == actual;
        trace::setContext(load->ctx);
        DPRINTF(VPred,
                "stvp resolve seq=%llu pc=%llx predicted=%llx "
                "actual=%llx (%s)",
                static_cast<unsigned long long>(load->seq),
                static_cast<unsigned long long>(load->emu.pc),
                static_cast<unsigned long long>(load->vpValue),
                static_cast<unsigned long long>(actual),
                correct ? "correct" : "incorrect");
        if (correct) {
            ++_statVpCorrect;
            _vpattr.recordHit(load->emu.pc);
        } else {
            ++_statVpIncorrect;
            int reissued = reissueDependents(load->vpTag,
                                             load->readyCycle);
            _vpattr.recordMiss(load->emu.pc,
                               static_cast<uint64_t>(reissued));
            // Any thread spawned downstream of this load received a
            // flash-copied map containing the bad value: kill it (the
            // parent resumes past its spawn load with the true values).
            killChildrenSpawnedAfter(tc, load->seq);
        }
        freeVpTag(load->vpTag);
        load->vpTag = -1;
        // From here on the load behaves like an ordinary one: later
        // reissues (from other mispredictions) retime its destination.
        load->vpPredicted = false;
        vpsim_assert(tc.openStvp > 0);
        --tc.openStvp;
        closeIlpWindow(load->ilpWindow, VpChoice::Stvp);
        load->ilpWindow = -1;
        return;
      }

      case VpChoice::Mtvp:
        break;
    }

    // MTVP resolution: promote the child whose value matched (if any),
    // kill everything else.
    int winnerIdx = -1;
    for (size_t c = 0; c < pl.children.size(); ++c) {
        if (pl.spawnOnly || pl.children[c].value == actual) {
            winnerIdx = static_cast<int>(c);
            break;
        }
    }

    for (size_t c = 0; c < pl.children.size(); ++c) {
        if (static_cast<int>(c) != winnerIdx) {
            uint64_t life = killSubtree(pl.children[c].ctx,
                                        SpawnOutcome::ValueMispredict);
            _vpattr.recordSquashCycles(load->emu.pc, life);
        }
    }

    trace::setContext(load->ctx);
    if (winnerIdx >= 0) {
        ChildRec &w = pl.children[static_cast<size_t>(winnerIdx)];
        DPRINTF(MTVP,
                "resolve load seq=%llu pc=%llx actual=%llx: child "
                "ctx=%d wins%s",
                static_cast<unsigned long long>(load->seq),
                static_cast<unsigned long long>(load->emu.pc),
                static_cast<unsigned long long>(actual), w.ctx,
                pl.spawnOnly ? " (spawn-only)" : "");
        if (pl.spawnOnly && w.destPreg != invalidPhysReg) {
            // The real value arrives now; un-block the child's consumers.
            poolFor(w.destLogical).setReadyAt(w.destPreg,
                                              load->readyCycle);
        }
        if (!pl.spawnOnly) {
            ++_statVpCorrect;
            _vpattr.recordHit(load->emu.pc);
        }
        pl.winner = w.ctx;
        pl.resolved = true;
        closeIlpWindow(load->ilpWindow, VpChoice::Mtvp);
        load->ilpWindow = -1;
        return;
    }

    // Every speculated value was wrong: the parent carries on with the
    // true value and resumes fetching past the load.
    DPRINTF(MTVP,
            "resolve load seq=%llu pc=%llx actual=%llx: all %zu "
            "speculated values wrong, parent resumes",
            static_cast<unsigned long long>(load->seq),
            static_cast<unsigned long long>(load->emu.pc),
            static_cast<unsigned long long>(actual),
            pl.children.size());
    ++_statVpIncorrect;
    _vpattr.recordMiss(load->emu.pc, 0);
    pl.children.clear();
    tc.activeSpawnSeq = 0;
    tc.committedPostSpawn = 0;
    load->spawnedThread = false;
    if (_cfg.fetchPolicy == FetchPolicy::SingleFetchPath) {
        vpsim_assert(tc.fetchQueue.empty());
        tc.fetchStopped = false;
        tc.fetchPc = load->emu.nextPc;
    }
    closeIlpWindow(load->ilpWindow, VpChoice::Mtvp);
    load->ilpWindow = -1;
}

// ---------------------------------------------------------------------
// Thread promotion and kill
// ---------------------------------------------------------------------

void
Cpu::detachChildFromParent(ThreadContext &child)
{
    if (child.parent == invalidCtx)
        return;
    ThreadContext &p = ctx(child.parent);
    auto it = std::find(p.children.begin(), p.children.end(), child.id);
    if (it != p.children.end())
        p.children.erase(it);
}

void
Cpu::promoteChild(PendingLoad &pl, CtxId winner)
{
    ThreadContext &parent = ctx(pl.load->ctx);
    ThreadContext &child = ctx(winner);
    vpsim_assert(parent.active && child.active);

    trace::setContext(parent.id);
    DPRINTF(MTVP,
            "promote child ctx=%d over parent ctx=%d at load seq=%llu "
            "(child committed %llu insts)",
            winner, parent.id,
            static_cast<unsigned long long>(pl.load->seq),
            static_cast<unsigned long long>(child.committedInsts));

    // Provenance: the winner's own spawn closes as promoted (with its
    // own commits, before it inherits the parent's), and — because the
    // winner takes over the parent's identity below — a speculative
    // parent's still-open spawn record follows the rename.
    _analytics.recordPromote(winner, _now, child.committedInsts);
    _analytics.transferSpawn(parent.id, winner);

    // Discard the parent's losing post-spawn future (no-stall mode) —
    // instructions and stores younger than the spawn point.
    squashYoungerThan(parent, pl.load->seq, SquashReason::Promote);

    // The parent's post-spawn segment is the losing alternative; it must
    // never reach memory.
    vpsim_assert(parent.segment->residentStores() == 0,
                 "post-spawn stores committed before resolution");
    vpsim_assert(!parent.ownedSegments.empty() &&
                 parent.ownedSegments.back() == parent.segment);
    parent.ownedSegments.pop_back();

    // The winner inherits the thread's past: the parent's position in
    // the tree, its useful-work count, and its undrained segments.
    uint64_t contribution = parent.committedInsts -
                            parent.committedPostSpawn;
    child.parent = parent.parent;
    if (parent.parent != invalidCtx) {
        ThreadContext &gp = ctx(parent.parent);
        std::replace(gp.children.begin(), gp.children.end(), parent.id,
                     winner);
    }
    // Reparent any *other* children the parent still has (none under the
    // one-outstanding-spawn rule, but keep the tree consistent).
    for (CtxId other : parent.children) {
        if (other != winner) {
            ctx(other).parent = winner;
            child.children.push_back(other);
        }
    }
    child.ownedSegments.insert(
        child.ownedSegments.begin(),
        std::make_move_iterator(parent.ownedSegments.begin()),
        std::make_move_iterator(parent.ownedSegments.end()));
    parent.ownedSegments.clear();

    bool wasRoot = _root == parent.id;
    if (wasRoot) {
        _usefulBase += contribution;
        _root = winner;
    } else {
        child.committedInsts += contribution;
    }

    // The winner takes over the parent's identity: any outer pending
    // spawn that listed the parent as a speculative child now owns the
    // winner instead (chains of spawns resolve out of order).
    for (PendingLoad &other : _pending) {
        for (ChildRec &cr : other.children) {
            if (cr.ctx == parent.id)
                cr.ctx = winner;
        }
        if (other.winner == parent.id)
            other.winner = winner;
    }

    deactivateContext(parent);

    if (_root == winner) {
        enqueueDrainable(child);
        if (child.haltedCommitted)
            _finished = true;
    }
    ++_statPromotes;
}

void
Cpu::killChildrenSpawnedAfter(ThreadContext &tc, InstSeqNum seq)
{
    if (tc.activeSpawnSeq == 0 || tc.activeSpawnSeq <= seq)
        return;
    for (size_t i = 0; i < _pending.size(); ++i) {
        PendingLoad &pl = _pending[i];
        if (pl.load->ctx != tc.id || pl.load->seq != tc.activeSpawnSeq ||
            !pl.load->spawnedThread) {
            continue;
        }
        PendingLoad moved = std::move(pl);
        _pending.erase(_pending.begin() + static_cast<long>(i));
        for (const ChildRec &cr : moved.children) {
            if (ctx(cr.ctx).active)
                killSubtree(cr.ctx, SpawnOutcome::UpstreamSquash);
        }
        if (moved.load->ilpWindow >= 0) {
            cancelIlpWindow(moved.load->ilpWindow);
            moved.load->ilpWindow = -1;
        }
        moved.load->spawnedThread = false;
        tc.activeSpawnSeq = 0;
        tc.committedPostSpawn = 0;
        if (_cfg.fetchPolicy == FetchPolicy::SingleFetchPath) {
            tc.fetchStopped = false;
            tc.fetchQueue.clear();
            tc.fetchPc = moved.load->emu.nextPc;
        }
        return;
    }
}

void
Cpu::enqueueDrainable(ThreadContext &tc)
{
    for (auto &seg : tc.ownedSegments) {
        if (seg->frozen() && !seg->drainQueued()) {
            seg->markDrainQueued();
            _drainQueue.push_back(seg);
        }
    }
}

void
Cpu::squashYoungerThan(ThreadContext &tc, InstSeqNum seq,
                       SquashReason why)
{
    auto &infl = _inflightStores[static_cast<size_t>(tc.id)];
    uint64_t squashed = 0;
    while (!tc.rob.empty() && tc.rob.back()->seq > seq) {
        DynInstPtr di = tc.rob.back();
        ++squashed;

        // Cancel anything hanging off this instruction.
        if (di->spawnedThread || di->vpPredicted || di->ilpWindow >= 0) {
            for (size_t i = 0; i < _pending.size(); ++i) {
                if (_pending[i].load != di)
                    continue;
                PendingLoad pl = std::move(_pending[i]);
                _pending.erase(_pending.begin() + static_cast<long>(i));
                for (const ChildRec &cr : pl.children) {
                    // Children may already be dead when the squash came
                    // from killSubtree (they are killed before the ROB
                    // walk reaches the spawning load).
                    if (ctx(cr.ctx).active)
                        killSubtree(cr.ctx, SpawnOutcome::UpstreamSquash);
                }
                break;
            }
            if (di->vpPredicted && di->vpTag >= 0) {
                freeVpTag(di->vpTag);
                di->vpTag = -1;
                vpsim_assert(tc.openStvp > 0);
                --tc.openStvp;
            }
            if (di->spawnedThread && tc.activeSpawnSeq == di->seq) {
                tc.activeSpawnSeq = 0;
                tc.committedPostSpawn = 0;
            }
            if (di->ilpWindow >= 0) {
                // Cancel without training the selector.
                cancelIlpWindow(di->ilpWindow);
                di->ilpWindow = -1;
            }
        }

        if (di->isStore()) {
            di->targetSegment->removePendingCommit();
            auto it = std::find(infl.rbegin(), infl.rend(), di);
            vpsim_assert(it != infl.rend());
            infl.erase(std::next(it).base());
        }

        if (di->physDest != invalidPhysReg) {
            tc.map[static_cast<size_t>(di->emu.inst.rd)] = di->prevDest;
            poolFor(di->emu.inst.rd).release(di->physDest);
        }

        if (!di->everIssued) {
            vpsim_assert(tc.preIssueCount > 0);
            --tc.preIssueCount;
        }
        di->squashed = true;
        di->squashReason = why;
        if (_tracer)
            traceInst(*di, 0);
        tc.rob.pop_back();
        --_robOccupancy;
    }
    if (squashed != 0) {
        _analytics.recordSquash(tc.id, _now, squashed,
                                why == SquashReason::Promote
                                    ? "promote"
                                    : "threadKill");
    }
    _iq.purgeSquashed();
    _fq.purgeSquashed();
    _mq.purgeSquashed();
}

void
Cpu::releaseContextRegs(ThreadContext &tc)
{
    for (int r = 0; r < numLogicalRegs; ++r) {
        PhysReg p = tc.map[static_cast<size_t>(r)];
        if (p != invalidPhysReg)
            poolFor(r).release(p);
    }
}

void
Cpu::deactivateContext(ThreadContext &tc)
{
    vpsim_assert(tc.rob.empty(), "deactivating a context with a live ROB");
    vpsim_assert(_inflightStores[static_cast<size_t>(tc.id)].empty());
    releaseContextRegs(tc);
    CtxId id = tc.id;
    tc.reset();
    tc.id = id;
}

uint64_t
Cpu::killSubtree(CtxId id, SpawnOutcome why)
{
    ThreadContext &tc = ctx(id);
    vpsim_assert(tc.active, "killing an inactive context %d", id);
    vpsim_assert(id != _root, "attempt to kill the architectural thread");

    // Children first (their pending entries hang off this ROB, but their
    // state is independent). Their own values were never judged — they
    // die because their lineage did.
    std::vector<CtxId> kids = tc.children;
    for (CtxId c : kids)
        killSubtree(c, SpawnOutcome::UpstreamSquash);

    if (tc.waitingBranch)
        tc.waitingBranch.reset();

    trace::setContext(id);
    DPRINTF(MTVP, "kill ctx=%d (%zu rob entries squashed)", id,
            tc.rob.size());
    squashYoungerThan(tc, 0, SquashReason::ThreadKill);
    vpsim_assert(tc.rob.empty());
    // Close the provenance record while the context still knows how
    // much it committed (deactivateContext resets it).
    uint64_t life = _analytics.recordKill(id, why, _now,
                                          tc.committedInsts);
    detachChildFromParent(tc);
    deactivateContext(tc);
    ++_statKills;
    return life;
}

// ---------------------------------------------------------------------
// Store-buffer drain engine
// ---------------------------------------------------------------------

void
Cpu::drainStoreBuffers()
{
    int budget = drainRate;
    while (budget > 0) {
        StoreSegment *target = nullptr;
        if (!_drainQueue.empty()) {
            auto &front = _drainQueue.front();
            if (front->flushable()) {
                front->flushTo(_mem);
                _drainQueue.pop_front();
                ++_activity;
                continue; // Retirement is free; keep going.
            }
            if (front->residentStores() == 0)
                break; // Waiting on in-flight commits.
            target = front.get();
        } else {
            ThreadContext &root = ctx(_root);
            if (root.segment && root.segment->residentStores() > 0)
                target = root.segment.get();
        }
        if (target == nullptr)
            break;
        Addr addr = target->drainResidentStore();
        DPRINTF(StoreBuffer, "drain store addr=%llx to memory hierarchy",
                static_cast<unsigned long long>(addr));
        _hier.storeDrain(addr, _now);
        --budget;
        ++_activity;
    }
}

} // namespace vpsim
