/**
 * @file
 * Fetch stage: ICOUNT thread selection, up to fetchWidth instructions
 * from fetchLines cache lines per cycle, branch direction and target
 * prediction. Fetch follows the *predicted* path; the divergence from
 * the true path is discovered when the mispredicted control instruction
 * dispatches, and the redirect penalty is charged at its resolution.
 */

#include <algorithm>

#include "core/cpu.hh"
#include "sim/logging.hh"

namespace vpsim
{

namespace
{

/** Fetch queue depth per context (front-end buffering). */
constexpr size_t fetchQueueCap = 48;

} // namespace

bool
Cpu::fetchEligible(const ThreadContext &tc) const
{
    return tc.active && !tc.fetchStopped && !tc.fetchHalted &&
           !tc.fetchAwaitIndirect && tc.waitingBranch == nullptr &&
           _now >= tc.fetchStallUntil &&
           tc.fetchQueue.size() < fetchQueueCap;
}

int
Cpu::icountKey(const ThreadContext &tc) const
{
    return static_cast<int>(tc.fetchQueue.size()) + tc.preIssueCount;
}

/**
 * Fetch one run of sequential instructions (at most one cache line, at
 * most @p maxInsts) for @p tc; stops at taken control flow.
 */
int
Cpu::fetchLineRun(ThreadContext &tc, int maxInsts)
{
    trace::setContext(tc.id);
    Addr lineMask = ~static_cast<Addr>(_cfg.lineSize - 1);
    Addr line = tc.fetchPc & lineMask;

    Cycle ready;
    {
        HostProfiler::Scope s(_prof, ProfSection::CacheInst);
        ready = _hier.instFetch(tc.fetchPc, _now);
    }
    if (ready > _now + static_cast<Cycle>(_cfg.icacheLatency)) {
        // I-cache miss: this context stalls until the fill completes.
        DPRINTF(Fetch, "icache miss pc=%llx, stalled until %llu",
                static_cast<unsigned long long>(tc.fetchPc),
                static_cast<unsigned long long>(ready));
        tc.fetchStallUntil = ready;
        return 0;
    }

    int fetched = 0;
    while (fetched < maxInsts &&
           tc.fetchQueue.size() < fetchQueueCap &&
           (tc.fetchPc & lineMask) == line) {
        FetchedInst fi;
        fi.pc = tc.fetchPc;
        fi.inst = decode(_mem.read32(tc.fetchPc));
        fi.fetchedAt = _now;
        fi.availAt = _now + static_cast<Cycle>(_cfg.frontEndDepth);

        bool endRun = false;
        const DecodedInst &in = fi.inst;
        if (in.isBranch()) {
            fi.predictedTaken = _bpred.predict(fi.pc, tc.id);
            fi.predictedTarget =
                fi.predictedTaken
                    ? fi.pc + instBytes +
                          static_cast<Addr>(in.imm *
                                            int64_t{instBytes})
                    : fi.pc + instBytes;
            tc.fetchPc = fi.predictedTarget;
            endRun = fi.predictedTaken;
        } else if (in.op == Opcode::JAL) {
            fi.predictedTaken = true;
            fi.predictedTarget = fi.pc + instBytes +
                                 static_cast<Addr>(in.imm *
                                                   int64_t{instBytes});
            if (in.rd == 31)
                _ras[static_cast<size_t>(tc.id)].push(fi.pc + instBytes);
            tc.fetchPc = fi.predictedTarget;
            endRun = true;
        } else if (in.op == Opcode::JALR) {
            fi.predictedTaken = true;
            auto &ras = _ras[static_cast<size_t>(tc.id)];
            if (in.rs1 == 31 && in.rd < 0 && !ras.empty()) {
                fi.predictedTarget = ras.pop();
            } else if (auto target = _btb.lookup(fi.pc)) {
                fi.predictedTarget = *target;
                if (in.rd == 31)
                    ras.push(fi.pc + instBytes);
            } else {
                // Unknown indirect target: fetch must wait for resolve.
                fi.targetKnown = false;
                tc.fetchAwaitIndirect = true;
            }
            if (fi.targetKnown)
                tc.fetchPc = fi.predictedTarget;
            endRun = true;
        } else if (in.isHalt()) {
            tc.fetchHalted = true;
            tc.fetchPc += instBytes;
            endRun = true;
        } else {
            fi.predictedTarget = fi.pc + instBytes;
            tc.fetchPc += instBytes;
        }

        tc.fetchQueue.push_back(fi);
        ++fetched;
        ++_statFetched;
        if (endRun)
            break;
    }
    if (fetched > 0) {
        DPRINTF(Fetch, "fetched %d insts from line %llx, next pc=%llx",
                fetched, static_cast<unsigned long long>(line),
                static_cast<unsigned long long>(tc.fetchPc));
    }
    return fetched;
}

void
Cpu::fetchStage()
{
    if (_quiesceDrain)
        return; // Sampling drain: run the pipeline dry, feed nothing.

    // Pick up to fetchThreads contexts by ICOUNT (fewest in-flight
    // pre-issue instructions first).
    std::vector<CtxId> eligible;
    for (const ThreadContext &tc : _ctxs) {
        if (fetchEligible(tc))
            eligible.push_back(tc.id);
    }
    if (eligible.empty())
        return;
    std::stable_sort(eligible.begin(), eligible.end(),
                     [this](CtxId a, CtxId b) {
                         return icountKey(ctx(a)) < icountKey(ctx(b));
                     });
    if (static_cast<int>(eligible.size()) > _cfg.fetchThreads)
        eligible.resize(static_cast<size_t>(_cfg.fetchThreads));

    int instBudget = _cfg.fetchWidth;
    int lineBudget = _cfg.fetchLines;
    size_t turn = 0;
    while (instBudget > 0 && lineBudget > 0 && !eligible.empty()) {
        CtxId id = eligible[turn % eligible.size()];
        ThreadContext &tc = ctx(id);
        --lineBudget;
        if (fetchEligible(tc)) {
            // A line run always does work: it fetches at least one
            // instruction or arms fetchStallUntil for an icache miss.
            ++_activity;
            instBudget -= fetchLineRun(tc, instBudget);
        }
        ++turn;
        if (turn >= eligible.size() * 2u)
            break; // Each chosen context had its chance at a line.
    }
}

} // namespace vpsim
