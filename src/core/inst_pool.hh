/**
 * @file
 * Fixed-chunk object pool backing DynInst allocation.
 *
 * Dispatch allocates one shared_ptr<DynInst> per dispatched instruction
 * — tens of millions per figure sweep — and the default make_shared
 * round-trips every one through the global heap. The pool hands
 * allocate_shared same-sized chunks off a recycled free list backed by
 * slab storage, so after warmup the per-instruction hot path performs
 * no heap allocation at all (and no heap *deallocation* on release,
 * which is the more expensive half under a multithreaded allocator).
 *
 * Each Cpu owns one pool and every DynInstPtr it creates carries a
 * shared_ptr to the pool state in its control block (via the allocator
 * copy stored there), so instructions that outlive the Cpu — e.g. test
 * peeks — keep the slabs alive. The pool is single-threaded by design:
 * a simulation runs wholly on one sim_pool worker, and DynInsts never
 * cross simulations.
 */

#ifndef VPSIM_CORE_INST_POOL_HH
#define VPSIM_CORE_INST_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace vpsim
{

/** Slab-backed free list of same-sized chunks; see the file comment. */
class InstPoolStorage
{
  public:
    InstPoolStorage() = default;

    InstPoolStorage(const InstPoolStorage &) = delete;
    InstPoolStorage &operator=(const InstPoolStorage &) = delete;

    void *
    alloc(size_t bytes)
    {
        bytes = roundUp(bytes);
        if (_chunkBytes == 0)
            _chunkBytes = bytes; // First caller fixes the chunk size.
        if (bytes != _chunkBytes)
            return ::operator new(bytes); // Foreign size: plain heap.
        if (_free.empty())
            grow();
        void *p = _free.back();
        _free.pop_back();
        return p;
    }

    void
    dealloc(void *p, size_t bytes)
    {
        if (roundUp(bytes) != _chunkBytes) {
            ::operator delete(p);
            return;
        }
        _free.push_back(p);
    }

    size_t chunkBytes() const { return _chunkBytes; }
    size_t freeChunks() const { return _free.size(); }
    size_t slabCount() const { return _slabs.size(); }

  private:
    static constexpr size_t chunksPerSlab = 256;

    static size_t
    roundUp(size_t bytes)
    {
        constexpr size_t a = alignof(std::max_align_t);
        return (bytes + a - 1) / a * a;
    }

    void
    grow()
    {
        // operator new returns max_align_t-aligned storage and every
        // chunk size is a multiple of that alignment, so chunk starts
        // stay suitably aligned.
        char *slab = static_cast<char *>(
            ::operator new(_chunkBytes * chunksPerSlab));
        _slabs.emplace_back(slab);
        _free.reserve(_free.size() + chunksPerSlab);
        for (size_t i = chunksPerSlab; i-- > 0;)
            _free.push_back(slab + i * _chunkBytes);
    }

    struct OpDelete
    {
        void operator()(char *p) const { ::operator delete(p); }
    };

    size_t _chunkBytes = 0;
    std::vector<std::unique_ptr<char[], OpDelete>> _slabs;
    std::vector<void *> _free;
};

/**
 * Minimal std::allocator_traits-compatible allocator over a shared
 * InstPoolStorage; pass to std::allocate_shared. Copies (including the
 * one the shared_ptr control block keeps for destruction) share the
 * storage via shared_ptr, so deallocation always reaches the pool that
 * produced the chunk.
 */
template <typename T>
struct InstPoolAllocator
{
    using value_type = T;

    std::shared_ptr<InstPoolStorage> state;

    explicit InstPoolAllocator(std::shared_ptr<InstPoolStorage> s)
        : state(std::move(s))
    {
    }

    template <typename U>
    InstPoolAllocator(const InstPoolAllocator<U> &o) : state(o.state)
    {
    }

    T *
    allocate(size_t n)
    {
        return static_cast<T *>(state->alloc(n * sizeof(T)));
    }

    void
    deallocate(T *p, size_t n)
    {
        state->dealloc(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const InstPoolAllocator<U> &o) const
    {
        return state == o.state;
    }
};

} // namespace vpsim

#endif // VPSIM_CORE_INST_POOL_HH
