/**
 * @file
 * Typed slab pool behind DynInst allocation.
 *
 * Dispatch allocates one DynInst per dispatched instruction — tens of
 * millions per figure sweep. Earlier revisions routed that through
 * std::allocate_shared over a byte pool, which recycled the storage
 * but still paid for an atomic control block on every handle copy.
 * The pool now hands out intrusive slots (core/dyn_inst.hh InstSlot):
 * a non-atomic refcount and a reuse generation in front of the DynInst
 * itself, one placement-new per allocation, zero heap traffic after
 * slab warmup, and plain ++/-- on handle copies.
 *
 * Lifetime: each Cpu owns one pool (created with InstPool::create();
 * the Cpu destructor calls releaseOwner()). The pool self-destructs
 * only when the owner is gone AND no instruction is live, so handles
 * that outlive the Cpu — e.g. test peeks — keep the slabs valid, the
 * property the shared_ptr control block used to provide. The pool is
 * single-threaded by design: a simulation runs wholly on one SimPool
 * worker, and DynInsts never cross simulations (which is exactly why
 * the refcounts can be non-atomic; docs/DESIGN.md "Instruction
 * ownership").
 *
 * Under AddressSanitizer the storage bytes of every free slot are
 * poisoned, so a raw pointer into a recycled instruction trips ASan
 * even before the handle-generation check would fire.
 */

#ifndef VPSIM_CORE_INST_POOL_HH
#define VPSIM_CORE_INST_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "core/dyn_inst.hh"

#if defined(__SANITIZE_ADDRESS__)
#define VPSIM_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VPSIM_POOL_ASAN 1
#endif
#endif

#ifdef VPSIM_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace vpsim
{

/** Slab-backed free list of DynInst slots; see the file comment. */
class InstPool
{
  public:
    /** Pools are always heap-born so releaseOwner()/recycle() can
     *  delete-this when the last dependent disappears. */
    static InstPool *create() { return new InstPool; }

    InstPool(const InstPool &) = delete;
    InstPool &operator=(const InstPool &) = delete;

    /** Default-constructed DynInst in a recycled slot, refcount 1. */
    DynInstPtr
    alloc()
    {
        if (_free.empty())
            grow();
        detail::InstSlot *s = _free.back();
        _free.pop_back();
#ifdef VPSIM_POOL_ASAN
        __asan_unpoison_memory_region(s->storage, sizeof(s->storage));
#endif
        new (s->storage) DynInst();
        s->refs = 1;
        ++_allocs;
        ++_live;
        if (_live > _peakLive)
            _peakLive = _live;
        return DynInstPtr(s, s->gen);
    }

    /** The owning Cpu is going away; self-destruct once idle. */
    void
    releaseOwner()
    {
        _ownerAlive = false;
        if (_live == 0)
            delete this;
    }

    // Allocation counters (tests assert steady-state slab reuse).
    uint64_t allocCount() const { return _allocs; }
    uint64_t liveCount() const { return _live; }
    uint64_t peakLive() const { return _peakLive; }
    size_t slabCount() const { return _slabs.size(); }
    size_t freeSlots() const { return _free.size(); }

  private:
    friend void detail::recycleInstSlot(detail::InstSlot *) noexcept;

    InstPool() = default;
    ~InstPool();

    void grow();
    void recycle(detail::InstSlot *slot);

    static constexpr size_t slotsPerSlab = 256;

    std::vector<std::unique_ptr<detail::InstSlot[]>> _slabs;
    std::vector<detail::InstSlot *> _free;
    uint64_t _allocs = 0;
    uint64_t _live = 0;
    uint64_t _peakLive = 0;
    bool _ownerAlive = true;
};

} // namespace vpsim

#endif // VPSIM_CORE_INST_POOL_HH
