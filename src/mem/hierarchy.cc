#include "mem/hierarchy.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/trace.hh"

namespace vpsim
{

namespace
{

const char *
memLevelName(MemLevel l)
{
    switch (l) {
      case MemLevel::StoreBuffer: return "store-buffer";
      case MemLevel::L1:          return "L1";
      case MemLevel::L2:          return "L2";
      case MemLevel::L3:          return "L3";
      case MemLevel::Memory:      return "memory";
      case MemLevel::Stream:      return "stream-buffer";
    }
    return "?";
}

} // namespace

Hierarchy::Hierarchy(StatGroup &stats, const SimConfig &cfg)
    : _cfg(cfg),
      _l1i(stats, "l1i", cfg.icacheSize, cfg.icacheAssoc, cfg.lineSize),
      _l1d(stats, "l1d", cfg.dcacheSize, cfg.dcacheAssoc, cfg.lineSize),
      _l2(stats, "l2", cfg.l2Size, cfg.l2Assoc, cfg.lineSize),
      _l3(stats, "l3", cfg.l3Size, cfg.l3Assoc, cfg.lineSize),
      _loads(stats, "mem.loads", "demand loads"),
      _loadsL1(stats, "mem.loadsL1", "loads serviced by L1"),
      _loadsL2(stats, "mem.loadsL2", "loads serviced by L2"),
      _loadsL3(stats, "mem.loadsL3", "loads serviced by L3"),
      _loadsMem(stats, "mem.loadsMem", "loads serviced by main memory"),
      _loadsStream(stats, "mem.loadsStream",
                   "loads serviced by stream buffers"),
      _mshrMerges(stats, "mem.mshrMerges",
                  "loads merged into an in-flight fill")
{
    _prefetcher = std::make_unique<StridePrefetcher>(
        stats, cfg.prefetchEntries, cfg.streamBuffers,
        cfg.streamBufferDepth, cfg.lineSize,
        [this](Addr line, Cycle now) {
            return fillFromL2(line, now, false);
        });
}

Cycle
Hierarchy::fillFromL2(Addr addr, Cycle now, bool countDemand)
{
    CacheAccess a2 = _l2.access(addr, false);
    if (a2.hit) {
        if (countDemand)
            ++_loadsL2;
        return now + static_cast<Cycle>(_cfg.l2Latency);
    }
    if (a2.writeback)
        _l3.access(a2.victimLine, true);

    CacheAccess a3 = _l3.access(addr, false);
    if (a3.hit) {
        if (countDemand)
            ++_loadsL3;
        return now + static_cast<Cycle>(_cfg.l3Latency);
    }
    if (countDemand)
        ++_loadsMem;
    return now + static_cast<Cycle>(_cfg.memLatency);
}

DataAccessResult
Hierarchy::load(Addr addr, Addr pc, Cycle now)
{
    ++_loads;
    Addr line = _l1d.lineAddr(addr);

    // L1-hit fast path: with no fill outstanding anywhere (the common
    // case in high-locality phases) the in-flight probe is a guaranteed
    // miss, so skip the hash lookup and go straight at the L1 tags.
    if (!_dataInFlight.empty()) [[unlikely]] {
        auto it = _dataInFlight.find(line);
        if (it != _dataInFlight.end()) {
            if (it->second > now) {
                ++_mshrMerges;
                _l1d.access(addr, false); // Refresh LRU; line is resident.
                return {it->second, MemLevel::L1};
            }
            _dataInFlight.erase(it);
        }
    }

    CacheAccess a = _l1d.access(addr, false);
    if (a.hit) [[likely]] {
        ++_loadsL1;
        return {now + static_cast<Cycle>(_cfg.dcacheLatency), MemLevel::L1};
    }
    if (a.writeback)
        _l2.access(a.victimLine, true);

    if (_cfg.prefetchEnabled) {
        if (auto ready = _prefetcher->lookup(line, now)) {
            ++_loadsStream;
            Cycle r = std::max(*ready,
                               now + static_cast<Cycle>(_cfg.dcacheLatency));
            if (r > now)
                _dataInFlight[line] = r;
            return {r, MemLevel::Stream};
        }
        _prefetcher->onL1Miss(pc, addr, now);
    }

    MemLevel level = MemLevel::L2;
    Cycle preL2 = _l2.hits();
    Cycle preL3 = _l3.hits();
    Cycle r = fillFromL2(addr, now, true);
    if (_l2.hits() > preL2)
        level = MemLevel::L2;
    else if (_l3.hits() > preL3)
        level = MemLevel::L3;
    else
        level = MemLevel::Memory;
    _dataInFlight[line] = r;
    DPRINTF(Cache, "load addr=%llx miss L1, serviced by %s, ready=%llu",
            static_cast<unsigned long long>(addr), memLevelName(level),
            static_cast<unsigned long long>(r));
    return {r, level};
}

void
Hierarchy::storeDrain(Addr addr, Cycle)
{
    CacheAccess a = _l1d.access(addr, true);
    if (a.hit)
        return;
    if (a.writeback)
        _l2.access(a.victimLine, true);
    // Write-allocate: pull the line through the lower levels (tag
    // housekeeping only; the store buffer absorbed the latency).
    CacheAccess a2 = _l2.access(addr, false);
    if (a2.writeback)
        _l3.access(a2.victimLine, true);
    if (!a2.hit)
        _l3.access(addr, false);
}

Cycle
Hierarchy::instFetch(Addr addr, Cycle now)
{
    Addr line = _l1i.lineAddr(addr);

    // Sequential (next-line) instruction prefetch: code streams are
    // almost always sequential, so fetching a line starts fills for the
    // two that follow.
    if (_cfg.prefetchEnabled) {
        for (int d = 1; d <= 2; ++d) {
            Addr nl = line + static_cast<Addr>(d) * _cfg.lineSize;
            if (!_l1i.probe(nl) &&
                (_instInFlight.empty() ||
                 _instInFlight.find(nl) == _instInFlight.end())) {
                _instInFlight[nl] = fillFromL2(nl, now, false);
                _l1i.insert(nl);
            }
        }
    }

    // Same L1-hit fast path as load(): no outstanding instruction fill
    // means the in-flight probe cannot hit.
    if (!_instInFlight.empty()) [[unlikely]] {
        auto it = _instInFlight.find(line);
        if (it != _instInFlight.end()) {
            if (it->second > now) {
                _l1i.access(addr, false);
                return it->second;
            }
            _instInFlight.erase(it);
        }
    }

    CacheAccess a = _l1i.access(addr, false);
    if (a.hit) [[likely]]
        return now + static_cast<Cycle>(_cfg.icacheLatency);

    Cycle r = fillFromL2(addr, now, false);
    _instInFlight[line] = r;
    DPRINTF(Cache, "ifetch addr=%llx miss L1I, fill ready=%llu",
            static_cast<unsigned long long>(addr),
            static_cast<unsigned long long>(r));
    return r;
}

void
Hierarchy::warmFillFromL2(Addr addr)
{
    CacheAccess a2 = _l2.warmAccess(addr, false);
    if (a2.hit)
        return;
    // Copy before the next warmAccess call: GCC 13's -Wdangling-pointer
    // otherwise misfires on the NRVO return slot of the first call.
    const Addr victim = a2.victimLine;
    if (a2.writeback)
        _l3.warmAccess(victim, true);
    _l3.warmAccess(addr, false);
}

void
Hierarchy::warmLoad(Addr addr, Addr pc)
{
    CacheAccess a = _l1d.warmAccess(addr, false);
    if (a.hit)
        return;
    if (a.writeback)
        _l2.warmAccess(a.victimLine, true);
    if (_cfg.prefetchEnabled)
        _prefetcher->warmTrain(pc, addr);
    warmFillFromL2(addr);
}

void
Hierarchy::warmStore(Addr addr)
{
    CacheAccess a = _l1d.warmAccess(addr, true);
    if (a.hit)
        return;
    if (a.writeback)
        _l2.warmAccess(a.victimLine, true);
    CacheAccess a2 = _l2.warmAccess(addr, false);
    if (a2.writeback)
        _l3.warmAccess(a2.victimLine, true);
    if (!a2.hit)
        _l3.warmAccess(addr, false);
}

void
Hierarchy::warmInstFetch(Addr addr)
{
    Addr line = _l1i.lineAddr(addr);

    // Mirror the sequential next-line instruction prefetch so the L1I
    // holds the same lines a detailed fetch stream would have pulled.
    if (_cfg.prefetchEnabled) {
        for (int d = 1; d <= 2; ++d) {
            Addr nl = line + static_cast<Addr>(d) * _cfg.lineSize;
            if (!_l1i.probe(nl)) {
                warmFillFromL2(nl);
                _l1i.warmInsert(nl);
            }
        }
    }

    CacheAccess a = _l1i.warmAccess(addr, false);
    if (a.hit)
        return;
    warmFillFromL2(addr);
}

void
Hierarchy::saveState(CheckpointWriter &cw) const
{
    vpsim_assert(_dataInFlight.empty() && _instInFlight.empty(),
                 "checkpoint with in-flight fills outstanding");
    _l1i.saveState(cw);
    _l1d.saveState(cw);
    _l2.saveState(cw);
    _l3.saveState(cw);
    _prefetcher->saveState(cw);
}

void
Hierarchy::restoreState(CheckpointReader &cr)
{
    _dataInFlight.clear();
    _instInFlight.clear();
    _l1i.restoreState(cr);
    _l1d.restoreState(cr);
    _l2.restoreState(cr);
    _l3.restoreState(cr);
    _prefetcher->restoreState(cr);
}

MemLevel
Hierarchy::probeLevel(Addr addr) const
{
    // A line with an outstanding fill reports "near" (L2): its data is
    // already on the way, so it is not a threading candidate.
    auto it = _dataInFlight.find(addr & ~static_cast<Addr>(_cfg.lineSize -
                                                           1));
    if (it != _dataInFlight.end())
        return MemLevel::L2;
    if (_l1d.probe(addr))
        return MemLevel::L1;
    if (_l2.probe(addr))
        return MemLevel::L2;
    if (_l3.probe(addr))
        return MemLevel::L3;
    return MemLevel::Memory;
}

Cycle
Hierarchy::nextEventCycle(Cycle now) const
{
    Cycle best = neverCycle;
    // vplint:allow(unordered-iter) pure min-reduction, order-independent
    for (const auto &kv : _dataInFlight) {
        if (kv.second >= now && kv.second < best)
            best = kv.second;
    }
    // vplint:allow(unordered-iter) pure min-reduction, order-independent
    for (const auto &kv : _instInFlight) {
        if (kv.second >= now && kv.second < best)
            best = kv.second;
    }
    return best;
}

} // namespace vpsim
