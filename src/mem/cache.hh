/**
 * @file
 * A set-associative, write-back/write-allocate cache tag model with true
 * LRU replacement. The model tracks tags and dirtiness only (data lives
 * in the functional memory); timing comes from the owning Hierarchy.
 */

#ifndef VPSIM_MEM_CACHE_HH
#define VPSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

class CheckpointWriter;
class CheckpointReader;

/** Result of a cache access. */
struct CacheAccess
{
    bool hit = false;
    /** A dirty line was evicted (victimLine holds its address). */
    bool writeback = false;
    Addr victimLine = 0;
};

/** Tag array of one cache level. */
class Cache
{
  public:
    /**
     * @param name     stat prefix, e.g. "l2"
     * @param size     capacity in bytes
     * @param assoc    ways per set
     * @param lineSize line size in bytes (power of two)
     */
    Cache(StatGroup &stats, const std::string &name, uint32_t size,
          uint32_t assoc, uint32_t lineSize);

    /**
     * Look up @p addr; on hit refresh LRU (and set dirty for writes).
     * On miss the line is inserted, possibly evicting a victim.
     */
    CacheAccess access(Addr addr, bool isWrite);

    /** Tag check with no state change. */
    bool probe(Addr addr) const;

    /** Insert a line without charging a demand access (prefetch fill). */
    CacheAccess insert(Addr addr);

    /** Invalidate a line if present; returns true if it was dirty. */
    bool invalidate(Addr addr);

    /**
     * access()/insert() with identical tag movements but no stat
     * counting: fast-forward warming must leave the demand counters at
     * zero so a restored checkpoint is bit-identical to a live one.
     */
    CacheAccess warmAccess(Addr addr, bool isWrite);
    CacheAccess warmInsert(Addr addr);

    /** Serialize/restore the full tag-array state (checkpointing). */
    void saveState(CheckpointWriter &cw) const;
    void restoreState(CheckpointReader &cr);

    Addr lineAddr(Addr addr) const { return addr & ~_lineMask; }
    uint32_t lineSize() const { return _lineMask + 1; }
    uint32_t numSets() const { return _numSets; }
    uint32_t assoc() const { return _assoc; }

    uint64_t hits() const { return _hits.count(); }
    uint64_t misses() const { return _misses.count(); }

  private:
    struct Line
    {
        Addr tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    uint32_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    CacheAccess accessImpl(Addr addr, bool isWrite, bool countStats);
    CacheAccess insertImpl(Addr addr, bool countStats);

    Addr _lineMask;
    uint32_t _numSets;
    uint32_t _assoc;
    int _lineShift;
    std::vector<Line> _lines; // _numSets * _assoc, set-major
    uint64_t _useClock = 0;

    Scalar _hits;
    Scalar _misses;
    Scalar _writebacks;
};

} // namespace vpsim

#endif // VPSIM_MEM_CACHE_HH
