/**
 * @file
 * The paper's Table-1 prefetcher: a PC-indexed 256-entry stride table
 * feeding 8 stream buffers. Training happens when an issued load misses
 * the L1 data cache — in *issue* order, so out-of-order issue (aggravated
 * by value speculation) can mistrain it, the interaction Section 5.1 of
 * the paper highlights.
 */

#ifndef VPSIM_MEM_PREFETCHER_HH
#define VPSIM_MEM_PREFETCHER_HH

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

class CheckpointWriter;
class CheckpointReader;

/** PC-indexed stride detector plus stream buffers. */
class StridePrefetcher
{
  public:
    /**
     * @param fillLatency callback that charges a prefetch fill through
     *        the L2/L3/memory path and returns the fill-complete cycle.
     */
    StridePrefetcher(StatGroup &stats, uint32_t tableEntries,
                     int numStreams, int streamDepth, uint32_t lineSize,
                     std::function<Cycle(Addr line, Cycle now)> fillLatency);

    /**
     * Train on an L1 demand miss and possibly allocate a stream.
     * Call in issue order (that is the paper's training point).
     */
    void onL1Miss(Addr pc, Addr addr, Cycle now);

    /**
     * Check the stream buffers for @p lineAddr. On a hit the entry is
     * consumed, the stream advances (a new prefetch is issued), and the
     * fill-ready cycle of the consumed entry is returned.
     */
    std::optional<Cycle> lookup(Addr lineAddr, Cycle now);

    uint64_t streamHits() const { return _streamHits.count(); }
    uint64_t prefetchesIssued() const { return _issued.count(); }

    /**
     * Stride-table-only training used during fast-forward: keeps the
     * PC/stride/confidence state warm without counting stats or
     * allocating stream buffers (streams hold timed in-flight lines,
     * which have no meaning outside the detailed pipeline; the detailed
     * warmup interval re-establishes them).
     */
    void warmTrain(Addr pc, Addr addr);

    /** Serialize/restore table + stream state (checkpointing). */
    void saveState(CheckpointWriter &cw) const;
    void restoreState(CheckpointReader &cr);

  private:
    struct TableEntry
    {
        Addr pcTag = 0;
        Addr lastAddr = 0;
        int64_t stride = 0;
        int confidence = 0; // 0..3
        bool valid = false;
    };

    struct PrefetchedLine
    {
        Addr line = 0;
        Cycle ready = 0;
    };

    struct StreamBuffer
    {
        bool valid = false;
        Addr nextAddr = 0;     ///< Next byte address the stream will fetch.
        int64_t stride = 0;    ///< Byte stride.
        uint64_t lastUse = 0;
        std::deque<PrefetchedLine> lines;
    };

    void issueInto(StreamBuffer &sb, Cycle now);
    bool anyStreamHolds(Addr line) const;

    std::vector<TableEntry> _table;
    std::vector<StreamBuffer> _streams;
    int _streamDepth;
    Addr _lineMask;
    uint64_t _useClock = 0;
    std::function<Cycle(Addr, Cycle)> _fillLatency;

    Scalar _trains;
    Scalar _streamAllocs;
    Scalar _issued;
    Scalar _streamHits;
};

} // namespace vpsim

#endif // VPSIM_MEM_PREFETCHER_HH
