#include "mem/cache.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

Cache::Cache(StatGroup &stats, const std::string &name, uint32_t size,
             uint32_t assoc, uint32_t lineSize)
    : _lineMask(lineSize - 1),
      _numSets(size / (assoc * lineSize)),
      _assoc(assoc),
      _lineShift(std::countr_zero(lineSize)),
      _lines(static_cast<size_t>(_numSets) * assoc),
      _hits(stats, name + ".hits", "demand hits"),
      _misses(stats, name + ".misses", "demand misses"),
      _writebacks(stats, name + ".writebacks", "dirty evictions")
{
    vpsim_assert(std::has_single_bit(lineSize));
    vpsim_assert(_numSets > 0 && std::has_single_bit(_numSets),
                 "cache %s: sets=%u", name.c_str(), _numSets);
}

uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<uint32_t>(addr >> _lineShift) & (_numSets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> _lineShift;
}

CacheAccess
Cache::accessImpl(Addr addr, bool isWrite, bool countStats)
{
    CacheAccess result;
    Line *set = &_lines[static_cast<size_t>(setIndex(addr)) * _assoc];
    Addr tag = tagOf(addr);
    ++_useClock;

    for (uint32_t w = 0; w < _assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].lastUse = _useClock;
            set[w].dirty = set[w].dirty || isWrite;
            result.hit = true;
            if (countStats)
                ++_hits;
            return result;
        }
    }

    if (countStats)
        ++_misses;
    // Victim selection: invalid first, else true LRU.
    Line *victim = &set[0];
    for (uint32_t w = 0; w < _assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimLine = victim->tag << _lineShift;
        if (countStats)
            ++_writebacks;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = isWrite;
    victim->lastUse = _useClock;
    return result;
}

CacheAccess
Cache::access(Addr addr, bool isWrite)
{
    return accessImpl(addr, isWrite, true);
}

CacheAccess
Cache::warmAccess(Addr addr, bool isWrite)
{
    return accessImpl(addr, isWrite, false);
}

bool
Cache::probe(Addr addr) const
{
    const Line *set = &_lines[static_cast<size_t>(setIndex(addr)) * _assoc];
    Addr tag = tagOf(addr);
    for (uint32_t w = 0; w < _assoc; ++w) {
        if (set[w].valid && set[w].tag == tag)
            return true;
    }
    return false;
}

CacheAccess
Cache::insertImpl(Addr addr, bool countStats)
{
    CacheAccess result;
    Line *set = &_lines[static_cast<size_t>(setIndex(addr)) * _assoc];
    Addr tag = tagOf(addr);
    ++_useClock;

    for (uint32_t w = 0; w < _assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            result.hit = true;
            return result; // Already present; do not count as demand hit.
        }
    }
    Line *victim = &set[0];
    for (uint32_t w = 0; w < _assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.victimLine = victim->tag << _lineShift;
        if (countStats)
            ++_writebacks;
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = false;
    victim->lastUse = _useClock;
    return result;
}

CacheAccess
Cache::insert(Addr addr)
{
    return insertImpl(addr, true);
}

CacheAccess
Cache::warmInsert(Addr addr)
{
    return insertImpl(addr, false);
}

void
Cache::saveState(CheckpointWriter &cw) const
{
    cw.u64(_useClock);
    cw.u64(_lines.size());
    for (const Line &l : _lines) {
        cw.u64(l.tag);
        cw.u64(l.lastUse);
        cw.b(l.valid);
        cw.b(l.dirty);
    }
}

void
Cache::restoreState(CheckpointReader &cr)
{
    _useClock = cr.u64();
    uint64_t n = cr.u64();
    vpsim_assert(n == _lines.size(),
                 "checkpoint cache geometry mismatch: %llu vs %zu lines",
                 static_cast<unsigned long long>(n), _lines.size());
    for (Line &l : _lines) {
        l.tag = cr.u64();
        l.lastUse = cr.u64();
        l.valid = cr.b();
        l.dirty = cr.b();
    }
}

bool
Cache::invalidate(Addr addr)
{
    Line *set = &_lines[static_cast<size_t>(setIndex(addr)) * _assoc];
    Addr tag = tagOf(addr);
    for (uint32_t w = 0; w < _assoc; ++w) {
        if (set[w].valid && set[w].tag == tag) {
            set[w].valid = false;
            return set[w].dirty;
        }
    }
    return false;
}

} // namespace vpsim
