#include "mem/prefetcher.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

StridePrefetcher::StridePrefetcher(
    StatGroup &stats, uint32_t tableEntries, int numStreams,
    int streamDepth, uint32_t lineSize,
    std::function<Cycle(Addr, Cycle)> fillLatency)
    : _table(tableEntries),
      _streams(static_cast<size_t>(numStreams)),
      _streamDepth(streamDepth),
      _lineMask(~static_cast<Addr>(lineSize - 1)),
      _fillLatency(std::move(fillLatency)),
      _trains(stats, "pf.trains", "stride table training events"),
      _streamAllocs(stats, "pf.streamAllocs", "stream buffers allocated"),
      _issued(stats, "pf.issued", "prefetch requests issued"),
      _streamHits(stats, "pf.streamHits", "loads served by stream buffers")
{
    vpsim_assert(tableEntries > 0 && numStreams > 0 && streamDepth > 0);
}

void
StridePrefetcher::issueInto(StreamBuffer &sb, Cycle now)
{
    while (static_cast<int>(sb.lines.size()) < _streamDepth) {
        Addr line = sb.nextAddr & _lineMask;
        sb.nextAddr += static_cast<Addr>(sb.stride);
        // Avoid duplicate prefetches of a line we already hold.
        if (anyStreamHolds(line))
            continue;
        Cycle ready = _fillLatency(line, now);
        sb.lines.push_back({line, ready});
        ++_issued;
    }
}

bool
StridePrefetcher::anyStreamHolds(Addr line) const
{
    for (const StreamBuffer &sb : _streams) {
        if (!sb.valid)
            continue;
        for (const PrefetchedLine &pl : sb.lines) {
            if (pl.line == line)
                return true;
        }
    }
    return false;
}

void
StridePrefetcher::onL1Miss(Addr pc, Addr addr, Cycle now)
{
    size_t idx = (pc >> 2) % _table.size();
    TableEntry &e = _table[idx];
    ++_trains;

    if (!e.valid || e.pcTag != pc) {
        e = TableEntry{pc, addr, 0, 0, true};
        return;
    }

    int64_t delta = static_cast<int64_t>(addr) -
                    static_cast<int64_t>(e.lastAddr);
    if (delta == e.stride && delta != 0) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = delta;
        e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
    }
    e.lastAddr = addr;

    if (e.confidence < 2 || e.stride == 0)
        return;

    // Already streaming nearby? Refresh rather than re-allocate.
    Addr expectNext = addr + static_cast<Addr>(e.stride);
    for (StreamBuffer &sb : _streams) {
        if (sb.valid && sb.stride == e.stride) {
            int64_t gap = static_cast<int64_t>(sb.nextAddr) -
                          static_cast<int64_t>(expectNext);
            int64_t window = e.stride * (_streamDepth + 1);
            if (std::abs(gap) <= std::abs(window)) {
                sb.lastUse = ++_useClock;
                issueInto(sb, now);
                return;
            }
        }
    }

    // Allocate the LRU stream buffer to this stream.
    StreamBuffer *victim = &_streams[0];
    for (StreamBuffer &sb : _streams) {
        if (!sb.valid) {
            victim = &sb;
            break;
        }
        if (sb.lastUse < victim->lastUse)
            victim = &sb;
    }
    victim->valid = true;
    victim->stride = e.stride;
    victim->nextAddr = expectNext;
    victim->lastUse = ++_useClock;
    victim->lines.clear();
    ++_streamAllocs;
    issueInto(*victim, now);
}

void
StridePrefetcher::warmTrain(Addr pc, Addr addr)
{
    size_t idx = (pc >> 2) % _table.size();
    TableEntry &e = _table[idx];

    if (!e.valid || e.pcTag != pc) {
        e = TableEntry{pc, addr, 0, 0, true};
        return;
    }

    int64_t delta = static_cast<int64_t>(addr) -
                    static_cast<int64_t>(e.lastAddr);
    if (delta == e.stride && delta != 0) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = delta;
        e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
    }
    e.lastAddr = addr;
}

void
StridePrefetcher::saveState(CheckpointWriter &cw) const
{
    cw.u64(_useClock);
    cw.u64(_table.size());
    for (const TableEntry &e : _table) {
        cw.u64(e.pcTag);
        cw.u64(e.lastAddr);
        cw.i64(e.stride);
        cw.u32(static_cast<uint32_t>(e.confidence));
        cw.b(e.valid);
    }
    cw.u64(_streams.size());
    for (const StreamBuffer &sb : _streams) {
        cw.b(sb.valid);
        cw.u64(sb.nextAddr);
        cw.i64(sb.stride);
        cw.u64(sb.lastUse);
        cw.u64(sb.lines.size());
        for (const PrefetchedLine &pl : sb.lines) {
            cw.u64(pl.line);
            cw.u64(pl.ready);
        }
    }
}

void
StridePrefetcher::restoreState(CheckpointReader &cr)
{
    _useClock = cr.u64();
    uint64_t nt = cr.u64();
    vpsim_assert(nt == _table.size(),
                 "checkpoint prefetcher geometry mismatch");
    for (TableEntry &e : _table) {
        e.pcTag = cr.u64();
        e.lastAddr = cr.u64();
        e.stride = cr.i64();
        e.confidence = static_cast<int>(cr.u32());
        e.valid = cr.b();
    }
    uint64_t ns = cr.u64();
    vpsim_assert(ns == _streams.size(),
                 "checkpoint prefetcher stream-count mismatch");
    for (StreamBuffer &sb : _streams) {
        sb.valid = cr.b();
        sb.nextAddr = cr.u64();
        sb.stride = cr.i64();
        sb.lastUse = cr.u64();
        sb.lines.clear();
        uint64_t nl = cr.u64();
        for (uint64_t i = 0; i < nl; ++i) {
            PrefetchedLine pl;
            pl.line = cr.u64();
            pl.ready = cr.u64();
            sb.lines.push_back(pl);
        }
    }
}

std::optional<Cycle>
StridePrefetcher::lookup(Addr lineAddr, Cycle now)
{
    for (StreamBuffer &sb : _streams) {
        if (!sb.valid)
            continue;
        for (auto it = sb.lines.begin(); it != sb.lines.end(); ++it) {
            if (it->line == lineAddr) {
                Cycle ready = it->ready;
                sb.lines.erase(it);
                sb.lastUse = ++_useClock;
                ++_streamHits;
                issueInto(sb, now);
                return ready;
            }
        }
    }
    return std::nullopt;
}

} // namespace vpsim
