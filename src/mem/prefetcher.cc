#include "mem/prefetcher.hh"

#include "sim/logging.hh"

namespace vpsim
{

StridePrefetcher::StridePrefetcher(
    StatGroup &stats, uint32_t tableEntries, int numStreams,
    int streamDepth, uint32_t lineSize,
    std::function<Cycle(Addr, Cycle)> fillLatency)
    : _table(tableEntries),
      _streams(static_cast<size_t>(numStreams)),
      _streamDepth(streamDepth),
      _lineMask(~static_cast<Addr>(lineSize - 1)),
      _fillLatency(std::move(fillLatency)),
      _trains(stats, "pf.trains", "stride table training events"),
      _streamAllocs(stats, "pf.streamAllocs", "stream buffers allocated"),
      _issued(stats, "pf.issued", "prefetch requests issued"),
      _streamHits(stats, "pf.streamHits", "loads served by stream buffers")
{
    vpsim_assert(tableEntries > 0 && numStreams > 0 && streamDepth > 0);
}

void
StridePrefetcher::issueInto(StreamBuffer &sb, Cycle now)
{
    while (static_cast<int>(sb.lines.size()) < _streamDepth) {
        Addr line = sb.nextAddr & _lineMask;
        sb.nextAddr += static_cast<Addr>(sb.stride);
        // Avoid duplicate prefetches of a line we already hold.
        if (anyStreamHolds(line))
            continue;
        Cycle ready = _fillLatency(line, now);
        sb.lines.push_back({line, ready});
        ++_issued;
    }
}

bool
StridePrefetcher::anyStreamHolds(Addr line) const
{
    for (const StreamBuffer &sb : _streams) {
        if (!sb.valid)
            continue;
        for (const PrefetchedLine &pl : sb.lines) {
            if (pl.line == line)
                return true;
        }
    }
    return false;
}

void
StridePrefetcher::onL1Miss(Addr pc, Addr addr, Cycle now)
{
    size_t idx = (pc >> 2) % _table.size();
    TableEntry &e = _table[idx];
    ++_trains;

    if (!e.valid || e.pcTag != pc) {
        e = TableEntry{pc, addr, 0, 0, true};
        return;
    }

    int64_t delta = static_cast<int64_t>(addr) -
                    static_cast<int64_t>(e.lastAddr);
    if (delta == e.stride && delta != 0) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.stride = delta;
        e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
    }
    e.lastAddr = addr;

    if (e.confidence < 2 || e.stride == 0)
        return;

    // Already streaming nearby? Refresh rather than re-allocate.
    Addr expectNext = addr + static_cast<Addr>(e.stride);
    for (StreamBuffer &sb : _streams) {
        if (sb.valid && sb.stride == e.stride) {
            int64_t gap = static_cast<int64_t>(sb.nextAddr) -
                          static_cast<int64_t>(expectNext);
            int64_t window = e.stride * (_streamDepth + 1);
            if (std::abs(gap) <= std::abs(window)) {
                sb.lastUse = ++_useClock;
                issueInto(sb, now);
                return;
            }
        }
    }

    // Allocate the LRU stream buffer to this stream.
    StreamBuffer *victim = &_streams[0];
    for (StreamBuffer &sb : _streams) {
        if (!sb.valid) {
            victim = &sb;
            break;
        }
        if (sb.lastUse < victim->lastUse)
            victim = &sb;
    }
    victim->valid = true;
    victim->stride = e.stride;
    victim->nextAddr = expectNext;
    victim->lastUse = ++_useClock;
    victim->lines.clear();
    ++_streamAllocs;
    issueInto(*victim, now);
}

std::optional<Cycle>
StridePrefetcher::lookup(Addr lineAddr, Cycle now)
{
    for (StreamBuffer &sb : _streams) {
        if (!sb.valid)
            continue;
        for (auto it = sb.lines.begin(); it != sb.lines.end(); ++it) {
            if (it->line == lineAddr) {
                Cycle ready = it->ready;
                sb.lines.erase(it);
                sb.lastUse = ++_useClock;
                ++_streamHits;
                issueInto(sb, now);
                return ready;
            }
        }
    }
    return std::nullopt;
}

} // namespace vpsim
