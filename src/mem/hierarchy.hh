/**
 * @file
 * The four-level memory hierarchy of Table 1: 64KB L1I and L1D (2 cycles),
 * 512KB L2 (20 cycles), 4MB L3 (50 cycles), 1000-cycle main memory, plus
 * the stride prefetcher. Latencies are total-from-access for the level
 * that services the request. In-flight line fills are merged (MSHR-style):
 * a second access to a line already being filled completes when the fill
 * does, without re-charging the miss.
 */

#ifndef VPSIM_MEM_HIERARCHY_HH
#define VPSIM_MEM_HIERARCHY_HH

#include <memory>
#include <unordered_map>

#include "mem/cache.hh"
#include "mem/prefetcher.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

/** Timing outcome of a data-side access (MemLevel: sim/types.hh). */
struct DataAccessResult
{
    Cycle ready = 0;   ///< Cycle the data is available to consumers.
    MemLevel level = MemLevel::L1;
};

/** The full data + instruction memory system timing model. */
class Hierarchy
{
  public:
    Hierarchy(StatGroup &stats, const SimConfig &cfg);

    /** Timing of a demand load issued at @p now from PC @p pc. */
    DataAccessResult load(Addr addr, Addr pc, Cycle now);

    /** Drain one committed store into the hierarchy (tag update only;
     *  store buffers absorb the latency). */
    void storeDrain(Addr addr, Cycle now);

    /** Cycle at which an instruction-fetch line is available. */
    Cycle instFetch(Addr addr, Cycle now);

    /**
     * Fast-forward warming: the same tag/LRU movements as
     * load()/storeDrain()/instFetch() but with no stat counting, no
     * in-flight fill registration, and no stream-buffer allocation
     * (timed state is meaningless outside the detailed pipeline and is
     * rebuilt by the detailed warmup interval). Leaves the hierarchy in
     * a state a checkpoint can capture exactly.
     */
    void warmLoad(Addr addr, Addr pc);
    void warmStore(Addr addr);
    void warmInstFetch(Addr addr);

    /** Serialize/restore tags + prefetcher. In-flight fill maps must be
     *  empty (checkpoints are cut on a quiesced machine). */
    void saveState(CheckpointWriter &cw) const;
    void restoreState(CheckpointReader &cr);

    /**
     * Oracle probe (no state change): the level a load of @p addr would
     * be serviced from right now. Used by the CacheOracle load selector.
     */
    MemLevel probeLevel(Addr addr) const;

    uint64_t streamHits() const { return _prefetcher->streamHits(); }

    /**
     * Earliest in-flight fill (data or instruction) that completes at
     * or after @p now; neverCycle when none is outstanding. This
     * is the memory system's contribution to the time-skip engine's
     * next-event horizon. Completed-but-not-yet-collected entries
     * (ready <= now) are ignored: their consumers are already
     * runnable, so they are not future events.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Outstanding fill-table population (diagnostics only; may count
     *  entries whose lazy erasure has not happened yet). */
    size_t inFlightFills() const
    {
        return _dataInFlight.size() + _instInFlight.size();
    }

  private:
    /** Charge a fill that starts below L1 (L2 -> L3 -> memory). */
    Cycle fillFromL2(Addr addr, Cycle now, bool countDemand);

    /** Stat-free tag movements of a fill below L1 (fast-forward). */
    void warmFillFromL2(Addr addr);

    /** Look up / register an in-flight fill; returns merged ready time. */
    Cycle mergeInFlight(std::unordered_map<Addr, Cycle> &inflight,
                        Addr line, Cycle ready, Cycle now);

    const SimConfig &_cfg;
    Cache _l1i;
    Cache _l1d;
    Cache _l2;
    Cache _l3;
    std::unique_ptr<StridePrefetcher> _prefetcher;

    std::unordered_map<Addr, Cycle> _dataInFlight;
    std::unordered_map<Addr, Cycle> _instInFlight;

    Scalar _loads;
    Scalar _loadsL1;
    Scalar _loadsL2;
    Scalar _loadsL3;
    Scalar _loadsMem;
    Scalar _loadsStream;
    Scalar _mshrMerges;
};

} // namespace vpsim

#endif // VPSIM_MEM_HIERARCHY_HH
