/**
 * @file
 * Branch target buffer and per-context return-address stacks. The BTB
 * supplies targets for taken control flow at fetch; the RAS predicts
 * returns (jalr through r31).
 */

#ifndef VPSIM_BPRED_BTB_HH
#define VPSIM_BPRED_BTB_HH

#include <optional>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

class CheckpointWriter;
class CheckpointReader;

/** Direct-mapped tagged BTB. */
class Btb
{
  public:
    Btb(StatGroup &stats, uint32_t entries);

    /** Predicted target for the control instruction at @p pc, if known. */
    std::optional<Addr> lookup(Addr pc) const;

    /** Record the resolved target. */
    void update(Addr pc, Addr target);

    /** Serialize/restore the target array (checkpointing). */
    void saveState(CheckpointWriter &cw) const;
    void restoreState(CheckpointReader &cr);

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };

    std::vector<Entry> _entries;
    mutable Scalar _lookups;
    mutable Scalar _hits;
};

/** Fixed-depth return-address stack (wraps on overflow). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(int depth);

    void push(Addr returnPc);
    /** Pop the predicted return target (0 if empty). */
    Addr pop();
    bool empty() const { return _size == 0; }

    /** Serialize/restore stack contents (checkpointing). */
    void saveState(CheckpointWriter &cw) const;
    void restoreState(CheckpointReader &cr);

    ReturnAddressStack(const ReturnAddressStack &) = default;
    ReturnAddressStack &operator=(const ReturnAddressStack &) = default;

  private:
    std::vector<Addr> _stack;
    int _top = 0;
    int _size = 0;
};

} // namespace vpsim

#endif // VPSIM_BPRED_BTB_HH
