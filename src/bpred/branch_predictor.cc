#include "bpred/branch_predictor.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

namespace
{

// History lengths of the two skewed banks (EV8-style unequal lengths).
constexpr int g0HistLen = 13;
constexpr int g1HistLen = 21;
constexpr int metaHistLen = 13;

uint64_t
histBits(uint64_t hist, int len)
{
    return hist & ((uint64_t{1} << len) - 1);
}

} // namespace

BranchPredictor::BranchPredictor(StatGroup &stats, uint32_t bimodalEntries,
                                 uint32_t gshareEntries,
                                 uint32_t metaEntries, int maxContexts)
    : _bim(bimodalEntries, 2),
      _g0(gshareEntries, 2),
      _g1(gshareEntries, 2),
      _meta(metaEntries, 2),
      _history(static_cast<size_t>(maxContexts), 0),
      _lookups(stats, "bpred.lookups", "conditional branches predicted"),
      _mispredicts(stats, "bpred.mispredicts", "direction mispredictions")
{
    vpsim_assert(bimodalEntries > 0 && gshareEntries > 0 &&
                 metaEntries > 0);
}

uint32_t
BranchPredictor::bimIndex(Addr pc) const
{
    return static_cast<uint32_t>(pc >> 2) %
           static_cast<uint32_t>(_bim.size());
}

uint32_t
BranchPredictor::g0Index(Addr pc, uint64_t hist) const
{
    uint64_t h = histBits(hist, g0HistLen);
    return static_cast<uint32_t>((pc >> 2) ^ h) %
           static_cast<uint32_t>(_g0.size());
}

uint32_t
BranchPredictor::g1Index(Addr pc, uint64_t hist) const
{
    uint64_t h = histBits(hist, g1HistLen);
    // Skew: different pc shift and a multiplicative scramble.
    return static_cast<uint32_t>(((pc >> 3) * 0x9e3779b1u) ^ (h * 3)) %
           static_cast<uint32_t>(_g1.size());
}

uint32_t
BranchPredictor::metaIndex(Addr pc, uint64_t hist) const
{
    uint64_t h = histBits(hist, metaHistLen);
    return static_cast<uint32_t>((pc >> 2) ^ (h << 1)) %
           static_cast<uint32_t>(_meta.size());
}

bool
BranchPredictor::predict(Addr pc, CtxId ctx) const
{
    ++_lookups;
    uint64_t hist = _history[static_cast<size_t>(ctx)];
    bool bimP = counterTaken(_bim[bimIndex(pc)]);
    bool g0P = counterTaken(_g0[g0Index(pc, hist)]);
    bool g1P = counterTaken(_g1[g1Index(pc, hist)]);
    bool majority = (bimP + g0P + g1P) >= 2;
    bool useMajority = counterTaken(_meta[metaIndex(pc, hist)]);
    return useMajority ? majority : bimP;
}

void
BranchPredictor::bump(uint8_t &c, bool up)
{
    if (up) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

void
BranchPredictor::updateImpl(Addr pc, CtxId ctx, bool taken,
                            bool countStats)
{
    uint64_t &hist = _history[static_cast<size_t>(ctx)];
    uint8_t &bim = _bim[bimIndex(pc)];
    uint8_t &g0 = _g0[g0Index(pc, hist)];
    uint8_t &g1 = _g1[g1Index(pc, hist)];
    uint8_t &meta = _meta[metaIndex(pc, hist)];

    bool bimP = counterTaken(bim);
    bool g0P = counterTaken(g0);
    bool g1P = counterTaken(g1);
    bool majority = (bimP + g0P + g1P) >= 2;
    bool useMajority = counterTaken(meta);
    bool predicted = useMajority ? majority : bimP;

    if (predicted != taken && countStats)
        ++_mispredicts;

    // Meta trains toward whichever component was right when they differ.
    if (majority != bimP)
        bump(meta, majority == taken);

    // Partial update: on a correct prediction only strengthen the banks
    // that agreed; on a misprediction retrain everything.
    if (predicted == taken) {
        if (bimP == taken)
            bump(bim, taken);
        if (g0P == taken)
            bump(g0, taken);
        if (g1P == taken)
            bump(g1, taken);
    } else {
        bump(bim, taken);
        bump(g0, taken);
        bump(g1, taken);
    }

    hist = (hist << 1) | (taken ? 1 : 0);
}

void
BranchPredictor::update(Addr pc, CtxId ctx, bool taken)
{
    updateImpl(pc, ctx, taken, true);
}

void
BranchPredictor::warmUpdate(Addr pc, CtxId ctx, bool taken)
{
    updateImpl(pc, ctx, taken, false);
}

void
BranchPredictor::copyHistory(CtxId from, CtxId to)
{
    _history[static_cast<size_t>(to)] = _history[static_cast<size_t>(from)];
}

void
BranchPredictor::saveState(CheckpointWriter &cw) const
{
    auto table = [&](const std::vector<uint8_t> &t) {
        cw.u64(t.size());
        cw.bytes(t.data(), t.size());
    };
    table(_bim);
    table(_g0);
    table(_g1);
    table(_meta);
    cw.u64(_history[0]);
}

void
BranchPredictor::restoreState(CheckpointReader &cr)
{
    auto table = [&](std::vector<uint8_t> &t) {
        uint64_t n = cr.u64();
        vpsim_assert(n == t.size(),
                     "checkpoint bpred geometry mismatch");
        cr.bytes(t.data(), t.size());
    };
    table(_bim);
    table(_g0);
    table(_g1);
    table(_meta);
    _history.assign(_history.size(), 0);
    _history[0] = cr.u64();
}

} // namespace vpsim
