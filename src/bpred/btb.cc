#include "bpred/btb.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

Btb::Btb(StatGroup &stats, uint32_t entries)
    : _entries(entries),
      _lookups(stats, "btb.lookups", "BTB lookups"),
      _hits(stats, "btb.hits", "BTB hits")
{
    vpsim_assert(entries > 0);
}

std::optional<Addr>
Btb::lookup(Addr pc) const
{
    ++_lookups;
    const Entry &e = _entries[(pc >> 2) % _entries.size()];
    if (e.valid && e.pc == pc) {
        ++_hits;
        return e.target;
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    Entry &e = _entries[(pc >> 2) % _entries.size()];
    e.pc = pc;
    e.target = target;
    e.valid = true;
}

void
Btb::saveState(CheckpointWriter &cw) const
{
    cw.u64(_entries.size());
    for (const Entry &e : _entries) {
        cw.u64(e.pc);
        cw.u64(e.target);
        cw.b(e.valid);
    }
}

void
Btb::restoreState(CheckpointReader &cr)
{
    uint64_t n = cr.u64();
    vpsim_assert(n == _entries.size(), "checkpoint BTB size mismatch");
    for (Entry &e : _entries) {
        e.pc = cr.u64();
        e.target = cr.u64();
        e.valid = cr.b();
    }
}

ReturnAddressStack::ReturnAddressStack(int depth)
    : _stack(static_cast<size_t>(depth), 0)
{
    vpsim_assert(depth > 0);
}

void
ReturnAddressStack::push(Addr returnPc)
{
    _stack[static_cast<size_t>(_top)] = returnPc;
    _top = (_top + 1) % static_cast<int>(_stack.size());
    if (_size < static_cast<int>(_stack.size()))
        ++_size;
}

Addr
ReturnAddressStack::pop()
{
    if (_size == 0)
        return 0;
    _top = (_top - 1 + static_cast<int>(_stack.size())) %
           static_cast<int>(_stack.size());
    --_size;
    return _stack[static_cast<size_t>(_top)];
}

void
ReturnAddressStack::saveState(CheckpointWriter &cw) const
{
    cw.u64(_stack.size());
    for (Addr a : _stack)
        cw.u64(a);
    cw.u32(static_cast<uint32_t>(_top));
    cw.u32(static_cast<uint32_t>(_size));
}

void
ReturnAddressStack::restoreState(CheckpointReader &cr)
{
    uint64_t n = cr.u64();
    vpsim_assert(n == _stack.size(), "checkpoint RAS depth mismatch");
    for (Addr &a : _stack)
        a = cr.u64();
    _top = static_cast<int>(cr.u32());
    _size = static_cast<int>(cr.u32());
}

} // namespace vpsim
