/**
 * @file
 * Direction predictor: 2bcgskew as in Table 1 — a 16K-entry bimodal
 * table, two 64K-entry skewed gshare banks, and a 64K-entry meta table
 * choosing between the bimodal prediction and the three-bank majority
 * vote. Prediction tables are shared across SMT contexts; each context
 * keeps its own global-history register.
 */

#ifndef VPSIM_BPRED_BRANCH_PREDICTOR_HH
#define VPSIM_BPRED_BRANCH_PREDICTOR_HH

#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

class CheckpointWriter;
class CheckpointReader;

/** 2bcgskew conditional-branch direction predictor. */
class BranchPredictor
{
  public:
    BranchPredictor(StatGroup &stats, uint32_t bimodalEntries,
                    uint32_t gshareEntries, uint32_t metaEntries,
                    int maxContexts);

    /** Predict the direction of the branch at @p pc on context @p ctx. */
    bool predict(Addr pc, CtxId ctx) const;

    /** Train with the resolved outcome and advance @p ctx's history. */
    void update(Addr pc, CtxId ctx, bool taken);

    /** Copy context @p from's history register to @p to (thread spawn). */
    void copyHistory(CtxId from, CtxId to);

    /** update() without stat counting (fast-forward warming). */
    void warmUpdate(Addr pc, CtxId ctx, bool taken);

    /** Serialize/restore tables plus context 0's history register (the
     *  only context alive at a checkpoint boundary), keeping the image
     *  independent of numContexts. */
    void saveState(CheckpointWriter &cw) const;
    void restoreState(CheckpointReader &cr);

    uint64_t lookups() const { return _lookups.count(); }
    uint64_t mispredicts() const { return _mispredicts.count(); }

  private:
    void updateImpl(Addr pc, CtxId ctx, bool taken, bool countStats);

    uint32_t bimIndex(Addr pc) const;
    uint32_t g0Index(Addr pc, uint64_t hist) const;
    uint32_t g1Index(Addr pc, uint64_t hist) const;
    uint32_t metaIndex(Addr pc, uint64_t hist) const;

    static bool counterTaken(uint8_t c) { return c >= 2; }
    static void bump(uint8_t &c, bool up);

    std::vector<uint8_t> _bim;
    std::vector<uint8_t> _g0;
    std::vector<uint8_t> _g1;
    std::vector<uint8_t> _meta;
    std::vector<uint64_t> _history; // per context

    mutable Scalar _lookups;
    Scalar _mispredicts;
};

} // namespace vpsim

#endif // VPSIM_BPRED_BRANCH_PREDICTOR_HH
