/**
 * @file
 * Functional emulator for the vpsim ISA. The timing core calls step()
 * when an instruction is renamed/dispatched; the emulator computes the
 * instruction's full architectural effect (register writes, memory
 * access through the context's store-segment chain, next PC) and the
 * timing model decides *when* those effects would have been visible.
 */

#ifndef VPSIM_EMU_EMULATOR_HH
#define VPSIM_EMU_EMULATOR_HH

#include "emu/context_state.hh"
#include "emu/store_buffer.hh"
#include "isa/isa.hh"

namespace vpsim
{

class MainMemory;

/** Everything the timing model needs to know about one executed inst. */
struct EmuStep
{
    Addr pc = 0;
    Addr nextPc = 0;
    uint32_t rawWord = 0;
    DecodedInst inst;

    // Control flow.
    bool taken = false; ///< Branch taken / jump (always true for jumps).

    // Memory.
    Addr effAddr = 0;
    int memBytes = 0;
    RegVal memValue = 0;    ///< Value loaded (after forwarding) or stored.
    bool fullyForwarded = false; ///< Load satisfied by store segments.

    // Register result.
    bool wroteReg = false;
    RegVal result = 0;

    bool halted = false;
};

/** Stateless instruction interpreter over a MainMemory. */
class Emulator
{
  public:
    explicit Emulator(MainMemory &mem) : _mem(mem) {}

    /**
     * Execute the instruction at @p state.pc.
     *
     * @param state    architectural state to read and update
     * @param segment  the context's current store segment; stores write
     *                 here, loads read through its chain (may be null
     *                 for a purely architectural run that writes memory
     *                 directly)
     */
    EmuStep step(ArchState &state, StoreSegment *segment);

    /**
     * step() with the fetch/decode already done: execute @p inst
     * (decoded from @p rawWord at @p state.pc). The fast-forward
     * engine uses this with a decoded-instruction cache so a hot loop
     * skips the per-instruction memory read and decode.
     */
    EmuStep stepDecoded(ArchState &state, StoreSegment *segment,
                        uint32_t rawWord, const DecodedInst &inst);

    /**
     * Run until HALT or @p maxInsts, writing stores straight to memory.
     * Used by workload self-tests and the reference executor in the
     * architectural-equivalence tests. Returns instructions executed.
     */
    uint64_t run(ArchState &state, uint64_t maxInsts);

    /** The memory this emulator executes against. */
    MainMemory &memory() { return _mem; }

  private:
    MainMemory &_mem;
};

} // namespace vpsim

#endif // VPSIM_EMU_EMULATOR_HH
