/**
 * @file
 * Functional fast-forward: execute instructions emulator-only (no
 * fetch/dispatch/issue/ROB) while reporting every executed instruction
 * to a WarmupSink so the caller can keep caches, branch predictors, and
 * value predictors warm. Stores write straight to main memory (the
 * store-segment chain only exists inside the detailed pipeline), so a
 * fast-forwarded program region leaves exactly the architectural state
 * a detailed run of the same region would have committed.
 */

#ifndef VPSIM_EMU_FASTFWD_HH
#define VPSIM_EMU_FASTFWD_HH

#include <cstdint>

#include "emu/emulator.hh"

namespace vpsim
{

/**
 * Receives every instruction executed during fast-forward. The sink
 * decides what to warm from it; the fast-forward loop itself is
 * structure-agnostic so emu/ stays free of core/mem/bpred dependencies.
 */
class WarmupSink
{
  public:
    virtual ~WarmupSink() = default;

    /** Called once per executed instruction, after its effects apply. */
    virtual void warmInst(const EmuStep &step) = 0;
};

/** Outcome of one fast-forward burst. */
struct FastForwardResult
{
    uint64_t executed = 0; ///< Instructions actually executed.
    bool halted = false;   ///< The program's HALT was executed.
};

/**
 * Execute up to @p maxInsts instructions of @p state emulator-only,
 * stopping early at HALT. @p sink may be null for a warmup-free skip.
 */
FastForwardResult fastForward(Emulator &emu, ArchState &state,
                              uint64_t maxInsts, WarmupSink *sink);

} // namespace vpsim

#endif // VPSIM_EMU_FASTFWD_HH
