/**
 * @file
 * Architectural (ISA-visible) state of one hardware context: PC plus the
 * integer and FP register files. Spawning a value-speculative thread
 * flash-copies this state (the timing cost of the copy is modeled
 * separately by the core's spawn latency).
 */

#ifndef VPSIM_EMU_CONTEXT_STATE_HH
#define VPSIM_EMU_CONTEXT_STATE_HH

#include <array>

#include "isa/isa.hh"
#include "sim/types.hh"

namespace vpsim
{

class CheckpointWriter;
class CheckpointReader;

/** ISA-visible register + PC state. Copyable by design (thread spawn). */
class ArchState
{
  public:
    Addr pc = 0;

    /** Read logical register 0..63 (r0 reads as zero). */
    RegVal readReg(int reg) const;

    /** Write logical register (writes to r0 are discarded). */
    void writeReg(int reg, RegVal value);

    double readFpReg(int reg) const { return bitsToFp(readReg(reg)); }
    void writeFpReg(int reg, double v) { writeReg(reg, fpToBits(v)); }

    bool operator==(const ArchState &other) const = default;

    /** Serialize/restore PC + all 64 logical registers. */
    void saveState(CheckpointWriter &cw) const;
    void restoreState(CheckpointReader &cr);

  private:
    std::array<RegVal, numLogicalRegs> _regs{};
};

} // namespace vpsim

#endif // VPSIM_EMU_CONTEXT_STATE_HH
