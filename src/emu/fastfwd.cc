#include "emu/fastfwd.hh"

#include <vector>

#include "emu/memory.hh"
#include "sim/watchdog.hh"

namespace vpsim
{

namespace
{

/**
 * Decoded-instruction cache for one fast-forward burst. Covers a single
 * aligned window of code around the entry PC; instructions outside the
 * window (or misaligned PCs on a wrong path) fall back to the plain
 * fetch+decode step. Stores that land inside the window invalidate the
 * overlapped entries, so self-modifying code stays correct — during
 * fast-forward the emulator is the only writer of memory (no store
 * segments drain behind our back).
 */
class DecodeCache
{
  public:
    static constexpr size_t spanInsts = size_t{1} << 13; // 32 KB of code
    static constexpr Addr spanBytes = spanInsts * instBytes;

    struct Entry
    {
        uint32_t raw = 0;
        DecodedInst inst;
        bool valid = false;
    };

    explicit DecodeCache(Addr entryPc)
        : _lo(entryPc & ~(spanBytes - 1)), _entries(spanInsts)
    {
    }

    bool covers(Addr pc) const
    {
        return pc - _lo < spanBytes && (pc & (instBytes - 1)) == 0;
    }

    /** Fetch+decode through the cache; @p pc must satisfy covers(). */
    const Entry &fetch(Addr pc, const MainMemory &mem)
    {
        Entry &e = _entries[(pc - _lo) / instBytes];
        if (!e.valid) {
            e.raw = mem.read32(pc);
            e.inst = decode(e.raw);
            e.valid = true;
        }
        return e;
    }

    /** Drop entries overlapped by a store of @p bytes at @p addr. */
    void invalidate(Addr addr, int bytes)
    {
        for (int i = 0; i < bytes; ++i) {
            Addr a = addr + static_cast<Addr>(i);
            if (a - _lo < spanBytes)
                _entries[(a - _lo) / instBytes].valid = false;
        }
    }

  private:
    Addr _lo;
    std::vector<Entry> _entries;
};

} // namespace

FastForwardResult
fastForward(Emulator &emu, ArchState &state, uint64_t maxInsts,
            WarmupSink *sink)
{
    FastForwardResult r;
    const MainMemory &mem = emu.memory();
    DecodeCache dc(state.pc);
    while (r.executed < maxInsts) {
        EmuStep s;
        if (dc.covers(state.pc)) {
            const DecodeCache::Entry &e = dc.fetch(state.pc, mem);
            s = emu.stepDecoded(state, nullptr, e.raw, e.inst);
        } else {
            s = emu.step(state, nullptr);
        }
        ++r.executed;
        if (s.memBytes > 0 && s.inst.isStore())
            dc.invalidate(s.effAddr, s.memBytes);
        if (sink != nullptr)
            sink->warmInst(s);
        if (s.halted) {
            r.halted = true;
            break;
        }
        // Stuck-job watchdog poll point: host-side counter, touches no
        // emulated state.
        if ((r.executed & 0xffff) == 0)
            watchdogPoll();
    }
    return r;
}

} // namespace vpsim
