/**
 * @file
 * Sparse simulated main memory. Pages materialize on first write; reads
 * of unmapped addresses return zero. All accesses are safe at any
 * address — value-misspeculated threads genuinely execute down wrong
 * paths and may compute wild addresses, which must not harm the host.
 */

#ifndef VPSIM_EMU_MEMORY_HH
#define VPSIM_EMU_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace vpsim
{

struct Program;
class CheckpointWriter;
class CheckpointReader;

/** Byte-addressable sparse 64-bit memory. */
class MainMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    /** Read @p bytes (1..8) little-endian; unmapped bytes read as 0. */
    uint64_t read(Addr addr, int bytes) const;

    /** Write the low @p bytes (1..8) of @p value little-endian. */
    void write(Addr addr, int bytes, uint64_t value);

    uint64_t read64(Addr a) const { return read(a, 8); }
    uint32_t read32(Addr a) const
    {
        return static_cast<uint32_t>(read(a, 4));
    }
    uint8_t read8(Addr a) const { return static_cast<uint8_t>(read(a, 1)); }
    void write64(Addr a, uint64_t v) { write(a, 8, v); }
    void write32(Addr a, uint32_t v) { write(a, 4, v); }
    void write8(Addr a, uint8_t v) { write(a, 1, v); }

    /** Store a double's bit pattern. */
    void writeFp(Addr a, double d) { write64(a, fpToBits(d)); }
    double readFp(Addr a) const { return bitsToFp(read64(a)); }

    /** Copy an assembled program image into memory at its base. */
    void loadProgram(const Program &prog);

    /** Number of materialized pages (footprint metric for tests). */
    size_t mappedPages() const { return _pages.size(); }

    /** Equality over mapped content (zero-filled pages compare equal to
     *  unmapped ones); used by architectural-equivalence tests. */
    bool contentEquals(const MainMemory &other) const;

    /** Serialize mapped pages in address order (checkpointing). */
    void saveState(CheckpointWriter &cw) const;
    /** Replace all content with the checkpointed pages. */
    void restoreState(CheckpointReader &cr);

  private:
    using Page = std::array<uint8_t, pageBytes>;

    const Page *findPage(Addr pageAddr) const;
    Page &touchPage(Addr pageAddr);

    std::unordered_map<Addr, std::unique_ptr<Page>> _pages;

    // One-entry translation memos. Sequential access (instruction
    // fetch, the emulator's data stream) hits the same page for up to
    // 4096 consecutive bytes; memoizing the last translation skips the
    // hash lookup on those. Page storage is heap-allocated and never
    // freed before restoreState(), so the cached pointers stay valid
    // across rehashes. Mutable: a read() translation is not logical
    // state. One MainMemory is only ever accessed by one sim thread.
    mutable Addr _readMemoAddr = ~Addr{0};
    mutable const Page *_readMemoPage = nullptr;
    Addr _writeMemoAddr = ~Addr{0};
    Page *_writeMemoPage = nullptr;
};

} // namespace vpsim

#endif // VPSIM_EMU_MEMORY_HH
