#include "emu/store_buffer.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "emu/memory.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace vpsim
{

void
StoreSegment::writeBytes(Addr addr, int bytes, uint64_t value)
{
    vpsim_assert(!_frozen, "write to frozen store segment");
    for (int i = 0; i < bytes; ++i) {
        _bytes[addr + static_cast<Addr>(i)] =
            static_cast<uint8_t>(value >> (8 * i));
    }
}

bool
StoreSegment::readByte(Addr addr, uint8_t &out) const
{
    auto it = _bytes.find(addr);
    if (it == _bytes.end())
        return false;
    out = it->second;
    return true;
}

Addr
StoreSegment::drainResidentStore()
{
    vpsim_assert(!_residentAddrs.empty(), "store segment drain underflow");
    Addr addr = _residentAddrs.front();
    _residentAddrs.pop_front();
    return addr;
}

void
StoreSegment::removePendingCommit()
{
    vpsim_assert(_pendingCommits > 0, "pending-commit underflow");
    --_pendingCommits;
}

void
StoreSegment::flushTo(MainMemory &mem)
{
    DPRINTF(StoreBuffer, "flush segment (%zu bytes) to memory",
            _bytes.size());
    // Drain in ascending address order: distinct keys make the final
    // memory image order-independent, but a deterministic walk keeps
    // page-allocation order (and thus any future page-level telemetry)
    // bit-identical across runs, and write8 gets sequential locality.
    // vplint:allow(unordered-iter) snapshot is sorted before use
    std::vector<std::pair<Addr, uint8_t>> bytes(_bytes.begin(),
                                                _bytes.end());
    std::sort(bytes.begin(), bytes.end());
    for (const auto &[addr, byte] : bytes)
        mem.write8(addr, byte);
    _bytes.clear();
}

ChainReadResult
readThroughChain(const StoreSegment *leaf, const MainMemory &mem,
                 Addr addr, int bytes)
{
    vpsim_assert(bytes >= 1 && bytes <= 8);
    ChainReadResult result;
    // No chain to forward from (architectural runs, fast-forward):
    // one page-granular read instead of a map lookup per byte.
    if (leaf == nullptr) {
        result.value = mem.read(addr, bytes);
        return result;
    }
    // Chains grow one node per spawn epoch and most nodes are frozen
    // with no bytes at all (a frozen segment can never gain bytes), so
    // walk the chain once to collect the non-empty overlays instead of
    // re-walking every node per byte with a hash probe each.
    constexpr int maxInlineOverlays = 8;
    const StoreSegment *inlineLive[maxInlineOverlays];
    int nLive = 0;
    // vplint:allow(global-state) per-thread scratch; runs are
    // single-threaded within a SimPool worker.
    static thread_local std::vector<const StoreSegment *> spillLive;
    bool spilled = false;
    for (const StoreSegment *seg = leaf; seg != nullptr;
         seg = seg->parent().get()) {
        if (seg->byteCount() == 0)
            continue;
        if (nLive < maxInlineOverlays) {
            inlineLive[nLive++] = seg;
        } else {
            if (!spilled) {
                spillLive.assign(inlineLive, inlineLive + nLive);
                spilled = true;
            }
            spillLive.push_back(seg);
            ++nLive;
        }
    }
    const StoreSegment *const *live = spilled ? spillLive.data()
                                              : inlineLive;

    if (nLive == 0) {
        // Nothing to forward anywhere in the chain: one page-granular
        // read, same as the chainless path.
        result.value = mem.read(addr, bytes);
        return result;
    }

    int forwarded = 0;
    for (int i = 0; i < bytes; ++i) {
        Addr a = addr + static_cast<Addr>(i);
        uint8_t byte = 0;
        bool hit = false;
        for (int s = 0; s < nLive; ++s) {
            if (live[s]->readByte(a, byte)) {
                hit = true;
                break;
            }
        }
        if (!hit)
            byte = mem.read8(a);
        else
            ++forwarded;
        result.value |= static_cast<uint64_t>(byte) << (8 * i);
    }
    result.anyForwarded = forwarded > 0;
    result.fullyForwarded = forwarded == bytes;
    return result;
}

} // namespace vpsim
