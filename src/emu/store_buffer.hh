/**
 * @file
 * Speculative store buffering for threaded value prediction.
 *
 * Memory state of a speculative thread lives in a chain of StoreSegment
 * overlay nodes. A segment holds the bytes written by one thread during
 * one spawn epoch. On spawn the parent's segment is frozen and both the
 * parent (no-stall mode) and the child continue in fresh segments whose
 * parent pointer is the frozen one — so a child sees every store that was
 * architecturally older than the spawn point and nothing younger from an
 * alternative future. Loads resolve byte-wise through the chain and fall
 * through to main memory (the paper's "searched by every load" store
 * buffer with thread-order hit semantics, Section 3.2/3.3).
 *
 * On value-prediction confirmation the surviving chain's oldest segments
 * drain to main memory; on misprediction the losing thread's segments are
 * simply dropped.
 */

#ifndef VPSIM_EMU_STORE_BUFFER_HH
#define VPSIM_EMU_STORE_BUFFER_HH

#include <deque>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace vpsim
{

class MainMemory;

/** One spawn-epoch's worth of a thread's speculative stores. */
class StoreSegment
{
  public:
    StoreSegment(CtxId owner, std::shared_ptr<StoreSegment> parent)
        : _owner(owner), _parent(std::move(parent))
    {}

    CtxId owner() const { return _owner; }
    const std::shared_ptr<StoreSegment> &parent() const { return _parent; }

    /** Detach from the parent (after the parent drained to memory). */
    void unlinkParent() { _parent.reset(); }

    /** Record a store's bytes (newest value wins within the segment). */
    void writeBytes(Addr addr, int bytes, uint64_t value);

    /** Try to read one byte from this segment only. */
    bool readByte(Addr addr, uint8_t &out) const;

    /** Number of distinct bytes held (footprint metric). */
    size_t byteCount() const { return _bytes.size(); }

    /**
     * Committed-but-undrained store instructions resident here. The core
     * adds an entry at store commit and the drain engine retires entries
     * in order; capacity checks compare the owner's total against the
     * configured store-buffer size.
     */
    int residentStores() const
    {
        return static_cast<int>(_residentAddrs.size());
    }
    void addResidentStore(Addr addr) { _residentAddrs.push_back(addr); }
    /** Retire the oldest resident store; returns its address. */
    Addr drainResidentStore();

    /**
     * Stores dispatched toward this segment but not yet committed. The
     * segment may not flush to memory while any remain (they still need
     * resident-entry accounting).
     */
    int pendingCommits() const { return _pendingCommits; }
    void addPendingCommit() { ++_pendingCommits; }
    void removePendingCommit();

    /** True once the owning thread will never append to this segment. */
    bool frozen() const { return _frozen; }
    void freeze() { _frozen = true; }

    /** Already placed on the core's drain queue. */
    bool drainQueued() const { return _drainQueued; }
    void markDrainQueued() { _drainQueued = true; }

    /** Ready to leave the store buffer entirely. */
    bool
    flushable() const
    {
        return _frozen && _residentAddrs.empty() && _pendingCommits == 0;
    }

    /** Write all held bytes to main memory (segment becomes empty). */
    void flushTo(MainMemory &mem);

  private:
    CtxId _owner;
    std::shared_ptr<StoreSegment> _parent;
    std::unordered_map<Addr, uint8_t> _bytes;
    std::deque<Addr> _residentAddrs;
    int _pendingCommits = 0;
    bool _frozen = false;
    bool _drainQueued = false;
};

/** Outcome classification for a chain read (drives load timing). */
struct ChainReadResult
{
    uint64_t value = 0;
    /** Every requested byte came from some store segment. */
    bool fullyForwarded = false;
    /** At least one byte came from a store segment. */
    bool anyForwarded = false;
};

/**
 * Read @p bytes at @p addr through the segment chain rooted at @p leaf,
 * falling back to @p mem for bytes no segment holds.
 */
ChainReadResult readThroughChain(const StoreSegment *leaf,
                                 const MainMemory &mem, Addr addr,
                                 int bytes);

} // namespace vpsim

#endif // VPSIM_EMU_STORE_BUFFER_HH
