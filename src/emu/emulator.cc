#include "emu/emulator.hh"

#include <cmath>
#include <limits>

#include "emu/memory.hh"
#include "sim/logging.hh"

namespace vpsim
{

namespace
{

int64_t
asSigned(RegVal v)
{
    return static_cast<int64_t>(v);
}

RegVal
safeDiv(RegVal a, RegVal b)
{
    int64_t sa = asSigned(a);
    int64_t sb = asSigned(b);
    if (sb == 0)
        return 0;
    if (sa == std::numeric_limits<int64_t>::min() && sb == -1)
        return a; // Overflow wraps to the dividend, matching hardware.
    return static_cast<RegVal>(sa / sb);
}

RegVal
safeRem(RegVal a, RegVal b)
{
    int64_t sa = asSigned(a);
    int64_t sb = asSigned(b);
    if (sb == 0)
        return a;
    if (sa == std::numeric_limits<int64_t>::min() && sb == -1)
        return 0;
    return static_cast<RegVal>(sa % sb);
}

int64_t
fpToInt(double d)
{
    if (std::isnan(d))
        return 0;
    if (d >= 9.2233720368547758e18)
        return std::numeric_limits<int64_t>::max();
    if (d <= -9.2233720368547758e18)
        return std::numeric_limits<int64_t>::min();
    return static_cast<int64_t>(d);
}

} // namespace

EmuStep
Emulator::step(ArchState &state, StoreSegment *segment)
{
    uint32_t raw = _mem.read32(state.pc);
    return stepDecoded(state, segment, raw, decode(raw));
}

EmuStep
Emulator::stepDecoded(ArchState &state, StoreSegment *segment,
                      uint32_t rawWord, const DecodedInst &dinst)
{
    EmuStep s;
    s.pc = state.pc;
    s.rawWord = rawWord;
    s.inst = dinst;
    s.nextPc = state.pc + instBytes;

    const DecodedInst &inst = s.inst;
    auto rs1 = [&] { return state.readReg(inst.rs1); };
    auto rs2 = [&] { return state.readReg(inst.rs2); };
    auto frs1 = [&] { return state.readFpReg(inst.rs1); };
    auto frs2 = [&] { return state.readFpReg(inst.rs2); };

    auto writeDest = [&](RegVal value) {
        if (inst.rd > 0) {
            state.writeReg(inst.rd, value);
            s.wroteReg = true;
            s.result = value;
        }
    };
    auto writeFpDest = [&](double value) { writeDest(fpToBits(value)); };
    auto branch = [&](bool take) {
        s.taken = take;
        if (take) {
            s.nextPc = s.pc + instBytes +
                       static_cast<Addr>(inst.imm * int64_t{instBytes});
        }
    };

    switch (inst.op) {
      case Opcode::ADD: writeDest(rs1() + rs2()); break;
      case Opcode::SUB: writeDest(rs1() - rs2()); break;
      case Opcode::MUL: writeDest(rs1() * rs2()); break;
      case Opcode::DIVQ: writeDest(safeDiv(rs1(), rs2())); break;
      case Opcode::REM: writeDest(safeRem(rs1(), rs2())); break;
      case Opcode::AND: writeDest(rs1() & rs2()); break;
      case Opcode::OR: writeDest(rs1() | rs2()); break;
      case Opcode::XOR: writeDest(rs1() ^ rs2()); break;
      case Opcode::SLL: writeDest(rs1() << (rs2() & 63)); break;
      case Opcode::SRL: writeDest(rs1() >> (rs2() & 63)); break;
      case Opcode::SRA:
        writeDest(static_cast<RegVal>(asSigned(rs1()) >>
                                      (rs2() & 63)));
        break;
      case Opcode::SLT:
        writeDest(asSigned(rs1()) < asSigned(rs2()) ? 1 : 0);
        break;
      case Opcode::SLTU: writeDest(rs1() < rs2() ? 1 : 0); break;

      case Opcode::ADDI:
        writeDest(rs1() + static_cast<RegVal>(inst.imm));
        break;
      case Opcode::ANDI:
        writeDest(rs1() & static_cast<RegVal>(inst.imm));
        break;
      case Opcode::ORI:
        writeDest(rs1() | static_cast<RegVal>(inst.imm));
        break;
      case Opcode::XORI:
        writeDest(rs1() ^ static_cast<RegVal>(inst.imm));
        break;
      case Opcode::SLLI: writeDest(rs1() << (inst.imm & 63)); break;
      case Opcode::SRLI: writeDest(rs1() >> (inst.imm & 63)); break;
      case Opcode::SRAI:
        writeDest(static_cast<RegVal>(asSigned(rs1()) >> (inst.imm & 63)));
        break;
      case Opcode::SLTI:
        writeDest(asSigned(rs1()) < inst.imm ? 1 : 0);
        break;
      case Opcode::LUI:
        writeDest(static_cast<RegVal>(inst.imm) << 16);
        break;

      case Opcode::LD:
      case Opcode::LW:
      case Opcode::LBU:
      case Opcode::FLD: {
        s.effAddr = rs1() + static_cast<RegVal>(inst.imm);
        s.memBytes = inst.memBytes();
        ChainReadResult r =
            readThroughChain(segment, _mem, s.effAddr, s.memBytes);
        s.fullyForwarded = r.fullyForwarded;
        RegVal v = r.value;
        if (inst.op == Opcode::LW)
            v = static_cast<RegVal>(
                static_cast<int64_t>(static_cast<int32_t>(v)));
        s.memValue = v;
        writeDest(v);
        break;
      }

      case Opcode::SD:
      case Opcode::SW:
      case Opcode::SB:
      case Opcode::FSD: {
        s.effAddr = rs1() + static_cast<RegVal>(inst.imm);
        s.memBytes = inst.memBytes();
        s.memValue = state.readReg(inst.rs2);
        if (segment != nullptr)
            segment->writeBytes(s.effAddr, s.memBytes, s.memValue);
        else
            _mem.write(s.effAddr, s.memBytes, s.memValue);
        break;
      }

      case Opcode::BEQ: branch(rs1() == rs2()); break;
      case Opcode::BNE: branch(rs1() != rs2()); break;
      case Opcode::BLT: branch(asSigned(rs1()) < asSigned(rs2())); break;
      case Opcode::BGE: branch(asSigned(rs1()) >= asSigned(rs2())); break;
      case Opcode::BLTU: branch(rs1() < rs2()); break;
      case Opcode::BGEU: branch(rs1() >= rs2()); break;

      case Opcode::JAL:
        writeDest(s.pc + instBytes);
        s.taken = true;
        s.nextPc = s.pc + instBytes +
                   static_cast<Addr>(inst.imm * int64_t{instBytes});
        break;
      case Opcode::JALR: {
        Addr target = (rs1() + static_cast<RegVal>(inst.imm)) &
                      ~static_cast<Addr>(instBytes - 1);
        writeDest(s.pc + instBytes);
        s.taken = true;
        s.nextPc = target;
        break;
      }

      case Opcode::FADD: writeFpDest(frs1() + frs2()); break;
      case Opcode::FSUB: writeFpDest(frs1() - frs2()); break;
      case Opcode::FMUL: writeFpDest(frs1() * frs2()); break;
      case Opcode::FDIV: {
        double d = frs2();
        writeFpDest(d == 0.0 ? 0.0 : frs1() / d);
        break;
      }
      case Opcode::FSQRT: {
        double d = frs1();
        writeFpDest(d < 0.0 ? 0.0 : std::sqrt(d));
        break;
      }
      case Opcode::FMIN: writeFpDest(std::fmin(frs1(), frs2())); break;
      case Opcode::FMAX: writeFpDest(std::fmax(frs1(), frs2())); break;
      case Opcode::FMA:
        writeFpDest(state.readFpReg(inst.rd) + frs1() * frs2());
        break;
      case Opcode::FCVTDL:
        writeFpDest(static_cast<double>(asSigned(rs1())));
        break;
      case Opcode::FCVTLD:
        writeDest(static_cast<RegVal>(fpToInt(frs1())));
        break;
      case Opcode::FEQ: writeDest(frs1() == frs2() ? 1 : 0); break;
      case Opcode::FLT: writeDest(frs1() < frs2() ? 1 : 0); break;
      case Opcode::FLE: writeDest(frs1() <= frs2() ? 1 : 0); break;
      case Opcode::FMOV: writeFpDest(frs1()); break;
      case Opcode::FMVDX: writeDest(rs1()); break;
      case Opcode::FMVXD: writeDest(state.readReg(inst.rs1)); break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        s.halted = true;
        break;
      case Opcode::NUM_OPCODES:
        panic("executed NUM_OPCODES sentinel");
    }

    state.pc = s.nextPc;
    return s;
}

uint64_t
Emulator::run(ArchState &state, uint64_t maxInsts)
{
    for (uint64_t n = 0; n < maxInsts; ++n) {
        EmuStep s = step(state, nullptr);
        if (s.halted)
            return n + 1;
    }
    return maxInsts;
}

} // namespace vpsim
