#include "emu/memory.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "isa/assembler.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

const MainMemory::Page *
MainMemory::findPage(Addr pageAddr) const
{
    if (pageAddr == _readMemoAddr)
        return _readMemoPage;
    auto it = _pages.find(pageAddr);
    if (it == _pages.end())
        return nullptr; // Missing pages are not memoized: a later
                        // write may materialize them.
    _readMemoAddr = pageAddr;
    _readMemoPage = it->second.get();
    return _readMemoPage;
}

MainMemory::Page &
MainMemory::touchPage(Addr pageAddr)
{
    if (pageAddr == _writeMemoAddr)
        return *_writeMemoPage;
    auto &slot = _pages[pageAddr];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    _writeMemoAddr = pageAddr;
    _writeMemoPage = slot.get();
    return *slot;
}

uint64_t
MainMemory::read(Addr addr, int bytes) const
{
    vpsim_assert(bytes >= 1 && bytes <= 8);
    uint64_t value = 0;
    // Fast path: access within one page.
    Addr pageAddr = addr & ~(pageBytes - 1);
    Addr offset = addr - pageAddr;
    if (offset + static_cast<Addr>(bytes) <= pageBytes) {
        const Page *page = findPage(pageAddr);
        if (page == nullptr)
            return 0;
        std::memcpy(&value, page->data() + offset,
                    static_cast<size_t>(bytes));
        return value;
    }
    // Slow path: page-crossing access, byte at a time.
    for (int i = 0; i < bytes; ++i) {
        Addr a = addr + static_cast<Addr>(i);
        const Page *page = findPage(a & ~(pageBytes - 1));
        uint8_t b = page ? (*page)[a & (pageBytes - 1)] : 0;
        value |= static_cast<uint64_t>(b) << (8 * i);
    }
    return value;
}

void
MainMemory::write(Addr addr, int bytes, uint64_t value)
{
    vpsim_assert(bytes >= 1 && bytes <= 8);
    Addr pageAddr = addr & ~(pageBytes - 1);
    Addr offset = addr - pageAddr;
    if (offset + static_cast<Addr>(bytes) <= pageBytes) {
        Page &page = touchPage(pageAddr);
        std::memcpy(page.data() + offset, &value,
                    static_cast<size_t>(bytes));
        return;
    }
    for (int i = 0; i < bytes; ++i) {
        Addr a = addr + static_cast<Addr>(i);
        Page &page = touchPage(a & ~(pageBytes - 1));
        page[a & (pageBytes - 1)] =
            static_cast<uint8_t>(value >> (8 * i));
    }
}

void
MainMemory::loadProgram(const Program &prog)
{
    Addr addr = prog.base;
    for (uint32_t word : prog.words) {
        write32(addr, word);
        addr += instBytes;
    }
}

bool
MainMemory::contentEquals(const MainMemory &other) const
{
    static const Page zeroPage = [] {
        Page p;
        p.fill(0);
        return p;
    }();

    auto coveredBy = [](const MainMemory &a, const MainMemory &b) {
        // Boolean AND over all pages — order-independent:
        // vplint:allow(unordered-iter)
        for (const auto &[addr, page] : a._pages) {
            const Page *otherPage = b.findPage(addr);
            const Page &rhs = otherPage ? *otherPage : zeroPage;
            if (std::memcmp(page->data(), rhs.data(), pageBytes) != 0)
                return false;
        }
        return true;
    };
    return coveredBy(*this, other) && coveredBy(other, *this);
}

void
MainMemory::saveState(CheckpointWriter &cw) const
{
    std::vector<Addr> addrs;
    addrs.reserve(_pages.size());
    // Sorted below — iteration order cannot leak into the image:
    // vplint:allow(unordered-iter)
    for (const auto &[addr, page] : _pages)
        addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());

    cw.u64(addrs.size());
    for (Addr a : addrs) {
        cw.u64(a);
        cw.bytes(findPage(a)->data(), pageBytes);
    }
}

void
MainMemory::restoreState(CheckpointReader &cr)
{
    _pages.clear();
    _readMemoAddr = ~Addr{0};
    _readMemoPage = nullptr;
    _writeMemoAddr = ~Addr{0};
    _writeMemoPage = nullptr;
    uint64_t n = cr.u64();
    for (uint64_t i = 0; i < n && cr.good(); ++i) {
        Addr a = cr.u64();
        cr.bytes(touchPage(a).data(), pageBytes);
    }
}

} // namespace vpsim
