#include "emu/context_state.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

RegVal
ArchState::readReg(int reg) const
{
    vpsim_assert(reg >= 0 && reg < numLogicalRegs, "reg=%d", reg);
    if (reg == 0)
        return 0;
    return _regs[static_cast<size_t>(reg)];
}

void
ArchState::writeReg(int reg, RegVal value)
{
    vpsim_assert(reg >= 0 && reg < numLogicalRegs, "reg=%d", reg);
    if (reg == 0)
        return;
    _regs[static_cast<size_t>(reg)] = value;
}

void
ArchState::saveState(CheckpointWriter &cw) const
{
    cw.u64(pc);
    for (RegVal r : _regs)
        cw.u64(r);
}

void
ArchState::restoreState(CheckpointReader &cr)
{
    pc = cr.u64();
    for (RegVal &r : _regs)
        r = cr.u64();
}

} // namespace vpsim
