#include "emu/context_state.hh"

#include "sim/logging.hh"

namespace vpsim
{

RegVal
ArchState::readReg(int reg) const
{
    vpsim_assert(reg >= 0 && reg < numLogicalRegs, "reg=%d", reg);
    if (reg == 0)
        return 0;
    return _regs[static_cast<size_t>(reg)];
}

void
ArchState::writeReg(int reg, RegVal value)
{
    vpsim_assert(reg >= 0 && reg < numLogicalRegs, "reg=%d", reg);
    if (reg == 0)
        return;
    _regs[static_cast<size_t>(reg)] = value;
}

} // namespace vpsim
