/**
 * @file
 * Per-PC value-prediction attribution. The aggregate `vp.*` stats say
 * how often prediction worked; this table says *where*: for every
 * static load PC whose prediction was actually followed (STVP value
 * injection or an MTVP spawn), it tracks follows, hits, misses, the
 * confidence trajectory (first/last/min/max/mean of the counter at
 * prediction time), and the recovery cost charged back to the PC
 * (selectively reissued instructions on STVP mispredicts, killed-
 * spawn lifetime cycles on MTVP all-wrong resolutions).
 *
 * The recording sites mirror the aggregate counters exactly, so the
 * table is self-checking: summing hits over PCs equals `vp.correct`,
 * misses equal `vp.incorrect`, and follows equal `vp.followed`
 * (predictions squashed before resolution stay follows-only, on both
 * sides). tests/analytics_test.cc asserts all three.
 */

#ifndef VPSIM_VPRED_VP_ATTRIBUTION_HH
#define VPSIM_VPRED_VP_ATTRIBUTION_HH

#include <map>
#include <memory>
#include <ostream>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "vpred/load_selector.hh"

namespace vpsim
{

/** Per-load-PC prediction provenance, owned by the Cpu and fed from
 *  dispatch (follow + confidence) and commit (hit/miss + cost). */
class VpAttribution
{
  public:
    /** Register the `vp.pc.*` cross-check stats on @p stats. */
    explicit VpAttribution(StatGroup &stats);

    VpAttribution(const VpAttribution &) = delete;
    VpAttribution &operator=(const VpAttribution &) = delete;

    /** A prediction for @p pc was followed (choice is Stvp or Mtvp)
     *  with the predictor's confidence counter at @p confidence. */
    void recordFollowed(Addr pc, VpChoice choice, int confidence);

    /** @p pc's followed prediction resolved correct. */
    void recordHit(Addr pc);

    /** @p pc's followed prediction resolved wrong; @p reissuedInsts
     *  dependents were selectively reissued (STVP recovery; 0 for an
     *  MTVP all-wrong resolution). */
    void recordMiss(Addr pc, uint64_t reissuedInsts);

    /** Charge @p cycles of killed-spawn lifetime to @p pc (MTVP kill
     *  recovery cost, reported by Analytics::recordKill). */
    void recordSquashCycles(Addr pc, uint64_t cycles);

    struct PcEntry
    {
        uint64_t followed = 0;      ///< predictions actually used
        uint64_t stvp = 0;          ///< ... used as STVP injections
        uint64_t mtvp = 0;          ///< ... used as MTVP spawns
        uint64_t hits = 0;          ///< resolved correct
        uint64_t misses = 0;        ///< resolved wrong
        uint64_t reissuedInsts = 0; ///< STVP recovery reissues
        uint64_t squashCycles = 0;  ///< killed-spawn lifetime cycles
        int confFirst = 0;          ///< confidence at first follow
        int confLast = 0;           ///< ... at most recent follow
        int confMin = 0;
        int confMax = 0;
        int64_t confSum = 0;        ///< for the mean over follows
    };
    const std::map<Addr, PcEntry> &table() const { return _table; }

    uint64_t totalFollowed() const { return _followed; }
    uint64_t totalHits() const { return _hits; }
    uint64_t totalMisses() const { return _misses; }
    uint64_t totalReissuedInsts() const { return _reissuedInsts; }

    /** Predictor half of the forensics report: top-@p topN load PCs
     *  by followed predictions. */
    void printReport(std::ostream &os, size_t topN) const;

  private:
    std::map<Addr, PcEntry> _table;
    uint64_t _followed = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint64_t _reissuedInsts = 0;
    std::vector<std::unique_ptr<Formula>> _formulas;
};

} // namespace vpsim

#endif // VPSIM_VPRED_VP_ATTRIBUTION_HH
