#include "vpred/load_selector.hh"

#include <bit>

#include "sim/logging.hh"

namespace vpsim
{

IlpPredSelector::IlpPredSelector(uint32_t entries, int explorePeriod)
    : _table(entries), _explorePeriod(explorePeriod)
{
    vpsim_assert(entries > 0 && explorePeriod > 1);
}

IlpPredSelector::Entry &
IlpPredSelector::entryFor(Addr pc)
{
    Entry &e = _table[(pc >> 2) % _table.size()];
    if (!e.valid || e.tag != pc) {
        e = Entry{};
        e.tag = pc;
        e.valid = true;
    }
    return e;
}

uint64_t
IlpPredSelector::rateOf(const ModeStats &m)
{
    if (m.cycles == 0)
        return 0;
    // Forward-progress rate in 16.16 fixed point. (The paper divides by
    // shifting with the largest power of two in the cycle count; that
    // introduces up-to-2x jumps at power boundaries which would swamp
    // the comparison margin below, so the rate itself is computed
    // exactly and the paper's imprecision is modeled as the explicit
    // hysteresis margin in select().)
    return (m.insts << 16) / m.cycles;
}

uint64_t
IlpPredSelector::rate(Addr pc, VpChoice choice)
{
    return rateOf(entryFor(pc).modes[static_cast<int>(choice)]);
}

VpChoice
IlpPredSelector::select(Addr pc, bool mtvpAllowed, bool stvpAllowed,
                        MemLevel)
{
    Entry &e = entryFor(pc);
    uint32_t phase = e.encounters % samplePeriod;
    ++e.encounters;

    auto allowed = [&](VpChoice c) {
        return c == VpChoice::None ||
               (c == VpChoice::Stvp && stvpAllowed) ||
               (c == VpChoice::Mtvp && mtvpAllowed);
    };
    if (!stvpAllowed && !mtvpAllowed)
        return VpChoice::None;

    // Exploration bursts: each mode is sampled for several *consecutive*
    // encounters so compounding effects (chained spawns building up a
    // deep speculative pipeline) show up in the measured progress rate.
    if (phase < burstLen) {
        if (allowed(VpChoice::Mtvp))
            return VpChoice::Mtvp;
    } else if (phase < 2 * burstLen) {
        if (allowed(VpChoice::Stvp))
            return VpChoice::Stvp;
    } else if (phase < 3 * burstLen) {
        return VpChoice::None;
    }

    // Exploitation: the paper's rule — a prediction flavor is allowed
    // only when its measured forward-progress rate beats making no
    // prediction. The coarse shift-divide of the paper's rates gave
    // them built-in hysteresis; we reproduce it as a relative margin so
    // measurement noise doesn't flip marginal loads into prediction.
    // MTVP is preferred over STVP when both qualify.
    uint64_t noneRate = rateOf(e.modes[0]);
    uint64_t bar = noneRate + noneRate / 16;
    for (VpChoice c : {VpChoice::Mtvp, VpChoice::Stvp}) {
        if (!allowed(c))
            continue;
        const ModeStats &m = e.modes[static_cast<int>(c)];
        if (m.cycles == 0)
            return c; // Not yet measured: optimistic try.
        if (rateOf(m) > bar)
            return c;
    }
    return VpChoice::None;
}

void
IlpPredSelector::recordOutcome(Addr pc, VpChoice used, uint64_t issued,
                               uint64_t cycles)
{
    Entry &e = entryFor(pc);
    ModeStats &m = e.modes[static_cast<int>(used)];
    m.insts += issued;
    m.cycles += cycles;
    // Age the entry so behaviour changes can be tracked.
    if (m.cycles > (uint64_t{1} << 24)) {
        m.insts >>= 1;
        m.cycles >>= 1;
    }
}

VpChoice
CacheOracleSelector::select(Addr, bool mtvpAllowed, bool stvpAllowed,
                            MemLevel probed)
{
    if (probed == MemLevel::Memory && mtvpAllowed)
        return VpChoice::Mtvp;
    if (probed != MemLevel::L1 && stvpAllowed)
        return VpChoice::Stvp;
    return VpChoice::None;
}

VpChoice
AlwaysSelector::select(Addr, bool mtvpAllowed, bool stvpAllowed, MemLevel)
{
    if (mtvpAllowed)
        return VpChoice::Mtvp;
    if (stvpAllowed)
        return VpChoice::Stvp;
    return VpChoice::None;
}

std::unique_ptr<LoadSelector>
makeLoadSelector(const SimConfig &cfg)
{
    switch (cfg.selector) {
      case SelectorKind::IlpPred:
        return std::make_unique<IlpPredSelector>();
      case SelectorKind::CacheOracle:
        return std::make_unique<CacheOracleSelector>();
      case SelectorKind::Always:
        return std::make_unique<AlwaysSelector>();
    }
    panic("unknown selector kind");
}

} // namespace vpsim
