/**
 * @file
 * Last-value predictor: predicts each static load repeats its previous
 * value. The simplest point in the design space; used as a component
 * baseline in tests and benches.
 */

#ifndef VPSIM_VPRED_LAST_VALUE_HH
#define VPSIM_VPRED_LAST_VALUE_HH

#include <vector>

#include "vpred/value_predictor.hh"

namespace vpsim
{

class LastValuePredictor : public ValuePredictor
{
  public:
    LastValuePredictor(const SimConfig &cfg, uint32_t entries = 4096);

    ValuePrediction predict(Addr pc, RegVal actual) override;
    void train(Addr pc, RegVal actual) override;
    void saveState(CheckpointWriter &cw) const override;
    void restoreState(CheckpointReader &cr) override;

  private:
    struct Entry
    {
        Addr tag = 0;
        RegVal lastValue = 0;
        uint8_t confidence = 0;
        bool valid = false;
    };

    Entry &entryFor(Addr pc);

    std::vector<Entry> _table;
    ConfidenceCounter _conf;
    int _threshold;
};

} // namespace vpsim

#endif // VPSIM_VPRED_LAST_VALUE_HH
