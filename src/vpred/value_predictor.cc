#include "vpred/value_predictor.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"
#include "vpred/dfcm.hh"
#include "vpred/last_value.hh"
#include "vpred/oracle.hh"
#include "vpred/stride.hh"
#include "vpred/wang_franklin.hh"

namespace vpsim
{

std::vector<RegVal>
ValuePredictor::predictMulti(Addr pc, int maxValues, int threshold,
                             RegVal actual)
{
    if (maxValues < 1)
        return {};
    ValuePrediction p = predict(pc, actual);
    if (p.valid && p.confidence >= threshold) {
        DPRINTF(VPred, "predictMulti pc=%llx -> value=%llx conf=%d",
                static_cast<unsigned long long>(pc),
                static_cast<unsigned long long>(p.value), p.confidence);
        return {p.value};
    }
    DPRINTF(VPred, "predictMulti pc=%llx -> no confident value "
            "(valid=%d conf=%d < %d)",
            static_cast<unsigned long long>(pc), p.valid ? 1 : 0,
            p.confidence, threshold);
    return {};
}

void
ValuePredictor::notePredictionUsed(Addr, RegVal)
{
}

std::unique_ptr<ValuePredictor>
makeValuePredictor(const SimConfig &cfg, StatGroup &)
{
    switch (cfg.predictor) {
      case PredictorKind::Oracle:
        return std::make_unique<OracleValuePredictor>(cfg);
      case PredictorKind::WangFranklin:
        return std::make_unique<WangFranklinPredictor>(cfg);
      case PredictorKind::Dfcm:
        return std::make_unique<DfcmPredictor>(cfg);
      case PredictorKind::Stride:
        return std::make_unique<StridePredictor>(cfg);
      case PredictorKind::LastValue:
        return std::make_unique<LastValuePredictor>(cfg);
    }
    panic("unknown predictor kind");
}

} // namespace vpsim
