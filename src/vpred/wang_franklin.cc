#include "vpred/wang_franklin.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

namespace
{

constexpr uint32_t patternMask = 0xfff; // Four 3-bit outcome codes.

} // namespace

WangFranklinPredictor::WangFranklinPredictor(const SimConfig &cfg,
                                             uint32_t vhtEntries,
                                             uint32_t valPhtEntries)
    : _vht(vhtEntries),
      _valPht(valPhtEntries),
      _conf(cfg.confidenceUp, cfg.confidenceDown, cfg.confidenceMax),
      _threshold(cfg.confidenceThreshold)
{
    vpsim_assert(vhtEntries > 0 && valPhtEntries > 0);
}

WangFranklinPredictor::VhtEntry &
WangFranklinPredictor::vhtEntry(Addr pc)
{
    return _vht[(pc >> 2) % _vht.size()];
}

WangFranklinPredictor::ValPhtEntry &
WangFranklinPredictor::valPhtEntry(Addr pc, uint32_t pattern)
{
    uint64_t h = ((pc >> 2) * 0x9e3779b97f4a7c15ull) ^
                 (static_cast<uint64_t>(pattern) * 0x85ebca6bull);
    return _valPht[h % _valPht.size()];
}

bool
WangFranklinPredictor::candidate(const VhtEntry &e, int src,
                                 RegVal &out) const
{
    if (src < numLearned) {
        if (!e.present[static_cast<size_t>(src)])
            return false;
        out = e.values[static_cast<size_t>(src)];
        return true;
    }
    switch (src) {
      case srcZero:
        out = 0;
        return true;
      case srcOne:
        out = 1;
        return true;
      case srcStride:
        out = e.specLastValue + static_cast<RegVal>(e.stride);
        return true;
      default:
        panic("bad candidate source %d", src);
    }
}

ValuePrediction
WangFranklinPredictor::predict(Addr pc, RegVal)
{
    VhtEntry &e = vhtEntry(pc);
    if (!e.valid || e.tag != pc)
        return {};
    ValPhtEntry &ph = valPhtEntry(pc, e.pattern);

    ValuePrediction best;
    for (int src = 0; src < numSources; ++src) {
        RegVal value;
        if (!candidate(e, src, value))
            continue;
        int conf = ph.conf[static_cast<size_t>(src)];
        if (!best.valid || conf > best.confidence) {
            best.valid = true;
            best.value = value;
            best.confidence = conf;
        }
    }
    best.confident = best.valid && best.confidence >= _threshold;
    return best;
}

std::vector<RegVal>
WangFranklinPredictor::predictMulti(Addr pc, int maxValues, int threshold,
                                    RegVal)
{
    std::vector<RegVal> result;
    VhtEntry &e = vhtEntry(pc);
    if (!e.valid || e.tag != pc)
        return result;
    ValPhtEntry &ph = valPhtEntry(pc, e.pattern);

    // Collect (confidence, value) over threshold, strongest first.
    std::vector<std::pair<int, RegVal>> cands;
    for (int src = 0; src < numSources; ++src) {
        RegVal value;
        if (!candidate(e, src, value))
            continue;
        int conf = ph.conf[static_cast<size_t>(src)];
        if (conf >= threshold)
            cands.emplace_back(conf, value);
    }
    std::stable_sort(cands.begin(), cands.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (const auto &[conf, value] : cands) {
        if (std::find(result.begin(), result.end(), value) != result.end())
            continue;
        result.push_back(value);
        if (static_cast<int>(result.size()) >= maxValues)
            break;
    }
    return result;
}

void
WangFranklinPredictor::notePredictionUsed(Addr pc, RegVal predicted)
{
    VhtEntry &e = vhtEntry(pc);
    if (e.valid && e.tag == pc)
        e.specLastValue = predicted;
}

void
WangFranklinPredictor::train(Addr pc, RegVal actual)
{
    VhtEntry &e = vhtEntry(pc);
    if (!e.valid || e.tag != pc) {
        e = VhtEntry{};
        e.tag = pc;
        e.valid = true;
        e.lastValue = actual;
        e.specLastValue = actual;
        e.values[0] = actual;
        e.present[0] = true;
        return;
    }

    ValPhtEntry &ph = valPhtEntry(pc, e.pattern);
    int matchedSource = -1;
    for (int src = 0; src < numSources; ++src) {
        RegVal value;
        if (!candidate(e, src, value))
            continue;
        uint8_t &conf = ph.conf[static_cast<size_t>(src)];
        if (value == actual) {
            _conf.correct(conf);
            if (matchedSource < 0)
                matchedSource = src;
        } else {
            _conf.incorrect(conf);
        }
    }

    // Maintain the learned-value set (LRU within the entry).
    int hitSlot = -1;
    int victim = 0;
    for (int i = 0; i < numLearned; ++i) {
        auto idx = static_cast<size_t>(i);
        if (e.present[idx] && e.values[idx] == actual)
            hitSlot = i;
        if (e.age[idx] < 250)
            ++e.age[idx];
        if (!e.present[idx]) {
            victim = i;
        } else if (e.present[static_cast<size_t>(victim)] &&
                   e.age[idx] > e.age[static_cast<size_t>(victim)]) {
            victim = i;
        }
    }
    int patternCode;
    if (hitSlot >= 0) {
        e.age[static_cast<size_t>(hitSlot)] = 0;
        patternCode = matchedSource >= 0 ? matchedSource : hitSlot;
    } else if (matchedSource >= 0) {
        patternCode = matchedSource;
    } else {
        e.values[static_cast<size_t>(victim)] = actual;
        e.present[static_cast<size_t>(victim)] = true;
        e.age[static_cast<size_t>(victim)] = 0;
        patternCode = victim;
    }

    e.stride = static_cast<int64_t>(actual - e.lastValue);
    e.lastValue = actual;
    e.specLastValue = actual;
    e.pattern = ((e.pattern << 3) |
                 static_cast<uint32_t>(patternCode & 7)) & patternMask;
}

void
WangFranklinPredictor::saveState(CheckpointWriter &cw) const
{
    cw.u64(_vht.size());
    for (const VhtEntry &e : _vht) {
        cw.u64(e.tag);
        for (RegVal v : e.values)
            cw.u64(v);
        cw.bytes(e.age.data(), e.age.size());
        for (bool p : e.present)
            cw.b(p);
        cw.u64(e.lastValue);
        cw.u64(e.specLastValue);
        cw.i64(e.stride);
        cw.u32(e.pattern);
        cw.b(e.valid);
    }
    cw.u64(_valPht.size());
    for (const ValPhtEntry &e : _valPht)
        cw.bytes(e.conf.data(), e.conf.size());
}

void
WangFranklinPredictor::restoreState(CheckpointReader &cr)
{
    uint64_t nv = cr.u64();
    vpsim_assert(nv == _vht.size(), "checkpoint VHT size mismatch");
    for (VhtEntry &e : _vht) {
        e.tag = cr.u64();
        for (RegVal &v : e.values)
            v = cr.u64();
        cr.bytes(e.age.data(), e.age.size());
        for (size_t i = 0; i < e.present.size(); ++i)
            e.present[i] = cr.b();
        e.lastValue = cr.u64();
        e.specLastValue = cr.u64();
        e.stride = cr.i64();
        e.pattern = cr.u32();
        e.valid = cr.b();
    }
    uint64_t np = cr.u64();
    vpsim_assert(np == _valPht.size(), "checkpoint ValPHT size mismatch");
    for (ValPhtEntry &e : _valPht)
        cr.bytes(e.conf.data(), e.conf.size());
}

} // namespace vpsim
