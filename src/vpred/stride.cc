#include "vpred/stride.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

StridePredictor::StridePredictor(const SimConfig &cfg, uint32_t entries)
    : _table(entries),
      _conf(cfg.confidenceUp, cfg.confidenceDown, cfg.confidenceMax),
      _threshold(cfg.confidenceThreshold)
{
}

StridePredictor::Entry &
StridePredictor::entryFor(Addr pc)
{
    return _table[(pc >> 2) % _table.size()];
}

ValuePrediction
StridePredictor::predict(Addr pc, RegVal)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc)
        return {};
    RegVal value = e.specLastValue + static_cast<RegVal>(e.stride);
    return {true, value, e.confidence, e.confidence >= _threshold};
}

void
StridePredictor::notePredictionUsed(Addr pc, RegVal predicted)
{
    Entry &e = entryFor(pc);
    if (e.valid && e.tag == pc)
        e.specLastValue = predicted;
}

void
StridePredictor::train(Addr pc, RegVal actual)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc) {
        e = Entry{pc, actual, actual, 0, 0, true};
        return;
    }
    RegVal predicted = e.lastValue + static_cast<RegVal>(e.stride);
    if (predicted == actual)
        _conf.correct(e.confidence);
    else
        _conf.incorrect(e.confidence);
    e.stride = static_cast<int64_t>(actual - e.lastValue);
    e.lastValue = actual;
    e.specLastValue = actual;
}

void
StridePredictor::saveState(CheckpointWriter &cw) const
{
    cw.u64(_table.size());
    for (const Entry &e : _table) {
        cw.u64(e.tag);
        cw.u64(e.lastValue);
        cw.u64(e.specLastValue);
        cw.i64(e.stride);
        cw.u8(e.confidence);
        cw.b(e.valid);
    }
}

void
StridePredictor::restoreState(CheckpointReader &cr)
{
    uint64_t n = cr.u64();
    vpsim_assert(n == _table.size(),
                 "checkpoint stride-VP size mismatch");
    for (Entry &e : _table) {
        e.tag = cr.u64();
        e.lastValue = cr.u64();
        e.specLastValue = cr.u64();
        e.stride = cr.i64();
        e.confidence = cr.u8();
        e.valid = cr.b();
    }
}

} // namespace vpsim
