/**
 * @file
 * Oracle value predictor (Section 5.1 limit study): always predicts the
 * value the load will actually return, with full confidence. Which loads
 * get predicted remains the load selector's decision.
 */

#ifndef VPSIM_VPRED_ORACLE_HH
#define VPSIM_VPRED_ORACLE_HH

#include "vpred/value_predictor.hh"

namespace vpsim
{

class OracleValuePredictor : public ValuePredictor
{
  public:
    explicit OracleValuePredictor(const SimConfig &cfg)
        : _confidence(cfg.confidenceMax)
    {}

    ValuePrediction
    predict(Addr, RegVal actual) override
    {
        return {true, actual, _confidence, true};
    }

    std::vector<RegVal>
    predictMulti(Addr, int maxValues, int, RegVal actual) override
    {
        if (maxValues < 1)
            return {};
        return {actual};
    }

    void train(Addr, RegVal) override {}

  private:
    int _confidence;
};

} // namespace vpsim

#endif // VPSIM_VPRED_ORACLE_HH
