#include "vpred/last_value.hh"

namespace vpsim
{

LastValuePredictor::LastValuePredictor(const SimConfig &cfg,
                                       uint32_t entries)
    : _table(entries),
      _conf(cfg.confidenceUp, cfg.confidenceDown, cfg.confidenceMax),
      _threshold(cfg.confidenceThreshold)
{
}

LastValuePredictor::Entry &
LastValuePredictor::entryFor(Addr pc)
{
    return _table[(pc >> 2) % _table.size()];
}

ValuePrediction
LastValuePredictor::predict(Addr pc, RegVal)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc)
        return {};
    return {true, e.lastValue, e.confidence, e.confidence >= _threshold};
}

void
LastValuePredictor::train(Addr pc, RegVal actual)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc) {
        e = Entry{pc, actual, 0, true};
        return;
    }
    if (e.lastValue == actual)
        _conf.correct(e.confidence);
    else
        _conf.incorrect(e.confidence);
    e.lastValue = actual;
}

} // namespace vpsim
