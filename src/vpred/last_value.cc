#include "vpred/last_value.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

LastValuePredictor::LastValuePredictor(const SimConfig &cfg,
                                       uint32_t entries)
    : _table(entries),
      _conf(cfg.confidenceUp, cfg.confidenceDown, cfg.confidenceMax),
      _threshold(cfg.confidenceThreshold)
{
}

LastValuePredictor::Entry &
LastValuePredictor::entryFor(Addr pc)
{
    return _table[(pc >> 2) % _table.size()];
}

ValuePrediction
LastValuePredictor::predict(Addr pc, RegVal)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc)
        return {};
    return {true, e.lastValue, e.confidence, e.confidence >= _threshold};
}

void
LastValuePredictor::train(Addr pc, RegVal actual)
{
    Entry &e = entryFor(pc);
    if (!e.valid || e.tag != pc) {
        e = Entry{pc, actual, 0, true};
        return;
    }
    if (e.lastValue == actual)
        _conf.correct(e.confidence);
    else
        _conf.incorrect(e.confidence);
    e.lastValue = actual;
}

void
LastValuePredictor::saveState(CheckpointWriter &cw) const
{
    cw.u64(_table.size());
    for (const Entry &e : _table) {
        cw.u64(e.tag);
        cw.u64(e.lastValue);
        cw.u8(e.confidence);
        cw.b(e.valid);
    }
}

void
LastValuePredictor::restoreState(CheckpointReader &cr)
{
    uint64_t n = cr.u64();
    vpsim_assert(n == _table.size(),
                 "checkpoint last-value-VP size mismatch");
    for (Entry &e : _table) {
        e.tag = cr.u64();
        e.lastValue = cr.u64();
        e.confidence = cr.u8();
        e.valid = cr.b();
    }
}

} // namespace vpsim
