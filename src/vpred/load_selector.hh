/**
 * @file
 * Load selection ("criticality") predictors — Section 5.1 of the paper.
 * Given a confident value prediction for a load, the selector decides
 * whether to use it single-threaded (STVP), spawn a thread (MTVP), or
 * leave it alone.
 *
 * ILP-pred tracks, per load PC and per choice, the forward progress
 * (issued instructions) and elapsed cycles between making the prediction
 * and confirming it; a choice is allowed only when its progress *rate*
 * beats making no prediction. The division is approximated exactly as in
 * the paper: the instruction count is shifted right by the largest power
 * of two in the cycle count.
 */

#ifndef VPSIM_VPRED_LOAD_SELECTOR_HH
#define VPSIM_VPRED_LOAD_SELECTOR_HH

#include <memory>
#include <vector>

#include "mem/hierarchy.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

/** What to do with a confident value prediction for one dynamic load. */
enum class VpChoice
{
    None,
    Stvp,
    Mtvp,
};

/** Abstract load selector. */
class LoadSelector
{
  public:
    virtual ~LoadSelector() = default;

    /**
     * Decide the speculation flavor for the load at @p pc.
     *
     * @param mtvpAllowed a hardware context is free and mode permits it
     * @param stvpAllowed configuration permits single-threaded VP
     * @param probed      oracle cache level (for CacheOracle selectors)
     */
    virtual VpChoice select(Addr pc, bool mtvpAllowed, bool stvpAllowed,
                            MemLevel probed) = 0;

    /**
     * Close the measurement window for one decision: @p issued
     * instructions issued over @p cycles between prediction and
     * confirmation (or dispatch and completion for VpChoice::None).
     */
    virtual void recordOutcome(Addr pc, VpChoice used, uint64_t issued,
                               uint64_t cycles)
    {
        (void)pc;
        (void)used;
        (void)issued;
        (void)cycles;
    }
};

/** The paper's ILP-pred adaptive selector. */
class IlpPredSelector : public LoadSelector
{
  public:
    /** Consecutive encounters per exploration burst. */
    static constexpr uint32_t burstLen = 8;
    /** Encounters between exploration rounds. */
    static constexpr uint32_t samplePeriod = 512;

    explicit IlpPredSelector(uint32_t entries = 4096,
                             int explorePeriod = 16);

    VpChoice select(Addr pc, bool mtvpAllowed, bool stvpAllowed,
                    MemLevel probed) override;
    void recordOutcome(Addr pc, VpChoice used, uint64_t issued,
                       uint64_t cycles) override;

    /** Progress rate of @p choice at @p pc (for tests/introspection). */
    uint64_t rate(Addr pc, VpChoice choice);

  private:
    struct ModeStats
    {
        uint64_t insts = 0;
        uint64_t cycles = 0;
    };

    struct Entry
    {
        Addr tag = 0;
        ModeStats modes[3];
        uint32_t encounters = 0;
        bool valid = false;
    };

    Entry &entryFor(Addr pc);
    static uint64_t rateOf(const ModeStats &m);

    std::vector<Entry> _table;
    int _explorePeriod;
};

/** Oracle cache-level selector: L3 miss => MTVP, other miss => STVP. */
class CacheOracleSelector : public LoadSelector
{
  public:
    VpChoice select(Addr pc, bool mtvpAllowed, bool stvpAllowed,
                    MemLevel probed) override;
};

/** Speculate on every confident prediction (no criticality filter). */
class AlwaysSelector : public LoadSelector
{
  public:
    VpChoice select(Addr pc, bool mtvpAllowed, bool stvpAllowed,
                    MemLevel probed) override;
};

/** Build the selector chosen by @p cfg.selector. */
std::unique_ptr<LoadSelector> makeLoadSelector(const SimConfig &cfg);

} // namespace vpsim

#endif // VPSIM_VPRED_LOAD_SELECTOR_HH
