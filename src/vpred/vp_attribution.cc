#include "vpred/vp_attribution.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace vpsim
{

VpAttribution::VpAttribution(StatGroup &stats)
{
    _formulas.push_back(std::make_unique<Formula>(
        stats, "vp.pc.tracked",
        "distinct static load PCs with a followed value prediction",
        [this] { return static_cast<double>(_table.size()); }));
    _formulas.push_back(std::make_unique<Formula>(
        stats, "vp.pc.hits",
        "per-PC attribution cross-check: sums to vp.correct",
        [this] { return static_cast<double>(_hits); }));
    _formulas.push_back(std::make_unique<Formula>(
        stats, "vp.pc.misses",
        "per-PC attribution cross-check: sums to vp.incorrect",
        [this] { return static_cast<double>(_misses); }));
    _formulas.push_back(std::make_unique<Formula>(
        stats, "vp.pc.reissuedInsts",
        "instructions selectively reissued by STVP mispredict "
        "recovery, attributed to the mispredicting load PC",
        [this] { return static_cast<double>(_reissuedInsts); }));
}

void
VpAttribution::recordFollowed(Addr pc, VpChoice choice, int confidence)
{
    vpsim_assert(choice != VpChoice::None);
    auto [it, fresh] = _table.try_emplace(pc);
    PcEntry &e = it->second;
    if (fresh) {
        e.confFirst = confidence;
        e.confMin = confidence;
        e.confMax = confidence;
    }
    ++e.followed;
    if (choice == VpChoice::Stvp)
        ++e.stvp;
    else
        ++e.mtvp;
    e.confLast = confidence;
    e.confMin = std::min(e.confMin, confidence);
    e.confMax = std::max(e.confMax, confidence);
    e.confSum += confidence;
    ++_followed;
}

void
VpAttribution::recordHit(Addr pc)
{
    ++_table[pc].hits;
    ++_hits;
}

void
VpAttribution::recordMiss(Addr pc, uint64_t reissuedInsts)
{
    PcEntry &e = _table[pc];
    ++e.misses;
    e.reissuedInsts += reissuedInsts;
    ++_misses;
    _reissuedInsts += reissuedInsts;
}

void
VpAttribution::recordSquashCycles(Addr pc, uint64_t cycles)
{
    _table[pc].squashCycles += cycles;
}

void
VpAttribution::printReport(std::ostream &os, size_t topN) const
{
    std::vector<std::pair<Addr, PcEntry>> rows(_table.begin(),
                                               _table.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.followed > b.second.followed;
                     });
    if (rows.size() > topN)
        rows.resize(topN);
    char line[224];
    os << "Top load PCs by followed value predictions ("
       << static_cast<unsigned long long>(_table.size())
       << " tracked)\n";
    std::snprintf(line, sizeof(line),
                  "  %-12s %8s %8s %8s %6s %-17s %8s %10s\n", "pc",
                  "follow", "hits", "misses", "acc%",
                  "conf f/l/mn/mx/avg", "reissue", "squashCyc");
    os << line;
    for (const auto &[pc, e] : rows) {
        uint64_t resolved = e.hits + e.misses;
        double acc = resolved != 0
                         ? 100.0 * static_cast<double>(e.hits) /
                               static_cast<double>(resolved)
                         : 0.0;
        double avg = e.followed != 0
                         ? static_cast<double>(e.confSum) /
                               static_cast<double>(e.followed)
                         : 0.0;
        char conf[40];
        std::snprintf(conf, sizeof(conf), "%d/%d/%d/%d/%.1f",
                      e.confFirst, e.confLast, e.confMin, e.confMax,
                      avg);
        std::snprintf(line, sizeof(line),
                      "  %#-12llx %8llu %8llu %8llu %5.1f%% %-17s "
                      "%8llu %10llu\n",
                      static_cast<unsigned long long>(pc),
                      static_cast<unsigned long long>(e.followed),
                      static_cast<unsigned long long>(e.hits),
                      static_cast<unsigned long long>(e.misses), acc,
                      conf,
                      static_cast<unsigned long long>(e.reissuedInsts),
                      static_cast<unsigned long long>(e.squashCycles));
        os << line;
    }
}

} // namespace vpsim
