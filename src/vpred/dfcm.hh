/**
 * @file
 * Order-3 differential finite context method (DFCM) value predictor with
 * an improved index function in the spirit of Burtscher (CAN 2002): the
 * three history deltas are folded and combined with distinct shifts and
 * multipliers so that short strides do not collide. A level-1 table
 * keyed by PC holds the last value and delta history; a level-2 table
 * keyed by the hashed history holds the predicted next delta plus a
 * confidence counter. More aggressive than the Wang-Franklin hybrid —
 * more correct *and* more incorrect predictions (Section 5.4).
 */

#ifndef VPSIM_VPRED_DFCM_HH
#define VPSIM_VPRED_DFCM_HH

#include <array>
#include <vector>

#include "vpred/value_predictor.hh"

namespace vpsim
{

class DfcmPredictor : public ValuePredictor
{
  public:
    static constexpr int order = 3;

    DfcmPredictor(const SimConfig &cfg, uint32_t l1Entries = 4096,
                  uint32_t l2Entries = 32768);

    ValuePrediction predict(Addr pc, RegVal actual) override;
    void notePredictionUsed(Addr pc, RegVal predicted) override;
    void train(Addr pc, RegVal actual) override;
    void saveState(CheckpointWriter &cw) const override;
    void restoreState(CheckpointReader &cr) override;

  private:
    struct L1Entry
    {
        Addr tag = 0;
        RegVal lastValue = 0;
        RegVal specLastValue = 0;
        std::array<int64_t, order> deltas{}; ///< deltas[0] most recent.
        bool valid = false;
    };

    struct L2Entry
    {
        int64_t delta = 0;
        uint8_t confidence = 0;
    };

    L1Entry &l1Entry(Addr pc);
    size_t l2Index(Addr pc, const std::array<int64_t, order> &deltas) const;

    std::vector<L1Entry> _l1;
    std::vector<L2Entry> _l2;
    ConfidenceCounter _conf;
    int _threshold;
};

} // namespace vpsim

#endif // VPSIM_VPRED_DFCM_HH
