#include "vpred/dfcm.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace vpsim
{

namespace
{

/** Fold a 64-bit delta into 16 bits, keeping low-order structure. */
uint64_t
fold(int64_t delta)
{
    auto v = static_cast<uint64_t>(delta);
    return (v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48)) & 0xffffu;
}

} // namespace

DfcmPredictor::DfcmPredictor(const SimConfig &cfg, uint32_t l1Entries,
                             uint32_t l2Entries)
    : _l1(l1Entries),
      _l2(l2Entries),
      _conf(cfg.confidenceUp, cfg.confidenceDown, cfg.confidenceMax),
      _threshold(cfg.confidenceThreshold)
{
}

DfcmPredictor::L1Entry &
DfcmPredictor::l1Entry(Addr pc)
{
    return _l1[(pc >> 2) % _l1.size()];
}

size_t
DfcmPredictor::l2Index(Addr pc,
                       const std::array<int64_t, order> &deltas) const
{
    // Improved index: per-position multipliers and shifts keep distinct
    // histories apart even when the deltas are small.
    uint64_t h = (pc >> 2) * 0x9e3779b97f4a7c15ull;
    h ^= fold(deltas[0]) * 0x0101000193ull;
    h ^= (fold(deltas[1]) * 0x01000193ull) << 5;
    h ^= (fold(deltas[2]) * 0x193ull) << 11;
    return static_cast<size_t>(h % _l2.size());
}

ValuePrediction
DfcmPredictor::predict(Addr pc, RegVal)
{
    L1Entry &e = l1Entry(pc);
    if (!e.valid || e.tag != pc)
        return {};
    const L2Entry &l2 = _l2[l2Index(pc, e.deltas)];
    RegVal value = e.specLastValue + static_cast<RegVal>(l2.delta);
    return {true, value, l2.confidence, l2.confidence >= _threshold};
}

void
DfcmPredictor::notePredictionUsed(Addr pc, RegVal predicted)
{
    L1Entry &e = l1Entry(pc);
    if (e.valid && e.tag == pc)
        e.specLastValue = predicted;
}

void
DfcmPredictor::train(Addr pc, RegVal actual)
{
    L1Entry &e = l1Entry(pc);
    if (!e.valid || e.tag != pc) {
        e = L1Entry{};
        e.tag = pc;
        e.valid = true;
        e.lastValue = actual;
        e.specLastValue = actual;
        return;
    }

    int64_t trueDelta = static_cast<int64_t>(actual - e.lastValue);
    L2Entry &l2 = _l2[l2Index(pc, e.deltas)];
    if (l2.delta == trueDelta) {
        _conf.correct(l2.confidence);
    } else {
        _conf.incorrect(l2.confidence);
        if (l2.confidence == 0)
            l2.delta = trueDelta;
    }

    // Shift the delta history (most recent first).
    for (int i = order - 1; i > 0; --i)
        e.deltas[static_cast<size_t>(i)] =
            e.deltas[static_cast<size_t>(i - 1)];
    e.deltas[0] = trueDelta;
    e.lastValue = actual;
    e.specLastValue = actual;
}

void
DfcmPredictor::saveState(CheckpointWriter &cw) const
{
    cw.u64(_l1.size());
    for (const L1Entry &e : _l1) {
        cw.u64(e.tag);
        cw.u64(e.lastValue);
        cw.u64(e.specLastValue);
        for (int64_t d : e.deltas)
            cw.i64(d);
        cw.b(e.valid);
    }
    cw.u64(_l2.size());
    for (const L2Entry &e : _l2) {
        cw.i64(e.delta);
        cw.u8(e.confidence);
    }
}

void
DfcmPredictor::restoreState(CheckpointReader &cr)
{
    uint64_t n1 = cr.u64();
    vpsim_assert(n1 == _l1.size(), "checkpoint DFCM L1 size mismatch");
    for (L1Entry &e : _l1) {
        e.tag = cr.u64();
        e.lastValue = cr.u64();
        e.specLastValue = cr.u64();
        for (int64_t &d : e.deltas)
            d = cr.i64();
        e.valid = cr.b();
    }
    uint64_t n2 = cr.u64();
    vpsim_assert(n2 == _l2.size(), "checkpoint DFCM L2 size mismatch");
    for (L2Entry &e : _l2) {
        e.delta = cr.i64();
        e.confidence = cr.u8();
    }
}

} // namespace vpsim
