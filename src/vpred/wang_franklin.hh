/**
 * @file
 * Hybrid value predictor in the style of Wang & Franklin (MICRO-30),
 * configured as the paper's Section 5.4 instance: a 4K-entry value
 * history table (VHT) holding five learned values, a hardwired zero and
 * one, and a stride component; and a 32K-entry value pattern history
 * table (ValPHT) holding per-candidate confidence counters indexed by
 * the PC and the recent pattern of which candidate produced the value.
 * Confidence moves +1 on a correct candidate and -8 on an incorrect one,
 * saturating at 32 with a use threshold of 12 (all configurable).
 *
 * The predictor naturally supports multiple-value prediction: every
 * candidate over threshold can be returned (Section 5.6).
 */

#ifndef VPSIM_VPRED_WANG_FRANKLIN_HH
#define VPSIM_VPRED_WANG_FRANKLIN_HH

#include <array>
#include <vector>

#include "vpred/value_predictor.hh"

namespace vpsim
{

class WangFranklinPredictor : public ValuePredictor
{
  public:
    /** Number of candidate sources per entry. */
    static constexpr int numSources = 8;
    /** Candidate indices. */
    static constexpr int srcLearned0 = 0; ///< ..4 are the learned values.
    static constexpr int srcZero = 5;
    static constexpr int srcOne = 6;
    static constexpr int srcStride = 7;
    /** Learned values per VHT entry. */
    static constexpr int numLearned = 5;

    WangFranklinPredictor(const SimConfig &cfg, uint32_t vhtEntries = 4096,
                          uint32_t valPhtEntries = 32768);

    ValuePrediction predict(Addr pc, RegVal actual) override;
    std::vector<RegVal> predictMulti(Addr pc, int maxValues, int threshold,
                                     RegVal actual) override;
    void notePredictionUsed(Addr pc, RegVal predicted) override;
    void train(Addr pc, RegVal actual) override;
    void saveState(CheckpointWriter &cw) const override;
    void restoreState(CheckpointReader &cr) override;

  private:
    struct VhtEntry
    {
        Addr tag = 0;
        std::array<RegVal, numLearned> values{};
        std::array<uint8_t, numLearned> age{}; ///< For LRU replacement.
        std::array<bool, numLearned> present{};
        RegVal lastValue = 0;
        RegVal specLastValue = 0;
        int64_t stride = 0;
        uint32_t pattern = 0; ///< 3-bit codes of recent matching sources.
        bool valid = false;
    };

    struct ValPhtEntry
    {
        std::array<uint8_t, numSources> conf{};
    };

    VhtEntry &vhtEntry(Addr pc);
    ValPhtEntry &valPhtEntry(Addr pc, uint32_t pattern);

    /** Candidate value of source @p src; false if the source is empty. */
    bool candidate(const VhtEntry &e, int src, RegVal &out) const;

    std::vector<VhtEntry> _vht;
    std::vector<ValPhtEntry> _valPht;
    ConfidenceCounter _conf;
    int _threshold;
};

} // namespace vpsim

#endif // VPSIM_VPRED_WANG_FRANKLIN_HH
