/**
 * @file
 * Stride value predictor: predicts lastValue + stride per static load,
 * with a speculative last-value that advances when predictions are
 * consumed so chains of in-flight predictions stay coherent.
 */

#ifndef VPSIM_VPRED_STRIDE_HH
#define VPSIM_VPRED_STRIDE_HH

#include <vector>

#include "vpred/value_predictor.hh"

namespace vpsim
{

class StridePredictor : public ValuePredictor
{
  public:
    StridePredictor(const SimConfig &cfg, uint32_t entries = 4096);

    ValuePrediction predict(Addr pc, RegVal actual) override;
    void notePredictionUsed(Addr pc, RegVal predicted) override;
    void train(Addr pc, RegVal actual) override;
    void saveState(CheckpointWriter &cw) const override;
    void restoreState(CheckpointReader &cr) override;

  private:
    struct Entry
    {
        Addr tag = 0;
        RegVal lastValue = 0;
        RegVal specLastValue = 0;
        int64_t stride = 0;
        uint8_t confidence = 0;
        bool valid = false;
    };

    Entry &entryFor(Addr pc);

    std::vector<Entry> _table;
    ConfidenceCounter _conf;
    int _threshold;
};

} // namespace vpsim

#endif // VPSIM_VPRED_STRIDE_HH
