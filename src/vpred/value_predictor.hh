/**
 * @file
 * Load-value predictor interface. Only loads are predicted (Section 3.1
 * of the paper: with a 1000-cycle memory, loads are the profitable
 * targets and restricting the predictor to them raises its accuracy).
 *
 * Predictors are trained at commit with the true loaded value; the
 * stride components additionally advance speculatively when a prediction
 * is consumed (notePredictionUsed), matching Section 5.4.
 */

#ifndef VPSIM_VPRED_VALUE_PREDICTOR_HH
#define VPSIM_VPRED_VALUE_PREDICTOR_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vpsim
{

class CheckpointWriter;
class CheckpointReader;

/** One value prediction with its confidence. */
struct ValuePrediction
{
    bool valid = false;     ///< The predictor has *some* prediction.
    RegVal value = 0;
    int confidence = 0;     ///< Saturating-counter value.
    bool confident = false; ///< confidence >= configured threshold.
};

/** Abstract load-value predictor. */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /**
     * Predict the value of the load at @p pc.
     *
     * @param actual the value the load will truly return. Only the
     *        oracle predictor reads it; realistic predictors must not.
     */
    virtual ValuePrediction predict(Addr pc, RegVal actual) = 0;

    /**
     * All candidate values whose confidence is at least @p threshold,
     * strongest first, deduplicated, at most @p maxValues. Used by
     * multiple-value MTVP (Section 5.6). The default implementation
     * returns the single predict() value when confident.
     */
    virtual std::vector<RegVal> predictMulti(Addr pc, int maxValues,
                                             int threshold, RegVal actual);

    /** A confident prediction was consumed; advance speculative state. */
    virtual void notePredictionUsed(Addr pc, RegVal predicted);

    /** Commit-time training with the true value. */
    virtual void train(Addr pc, RegVal actual) = 0;

    /**
     * Serialize/restore learned tables (checkpointing). The default is
     * a no-op for stateless predictors (the oracle).
     */
    virtual void saveState(CheckpointWriter &) const {}
    virtual void restoreState(CheckpointReader &) {}
};

/** Saturating confidence-counter helper shared by the predictors. */
class ConfidenceCounter
{
  public:
    ConfidenceCounter() = default;
    ConfidenceCounter(int up, int down, int max)
        : _up(up), _down(down), _max(max)
    {}

    void correct(uint8_t &c) const
    {
        c = static_cast<uint8_t>(std::min<int>(_max, c + _up));
    }
    void incorrect(uint8_t &c) const
    {
        c = static_cast<uint8_t>(std::max<int>(0, c - _down));
    }

  private:
    int _up = 1;
    int _down = 8;
    int _max = 32;
};

/** Build the predictor selected by @p cfg.predictor. */
std::unique_ptr<ValuePredictor> makeValuePredictor(const SimConfig &cfg,
                                                   StatGroup &stats);

} // namespace vpsim

#endif // VPSIM_VPRED_VALUE_PREDICTOR_HH
