/** Integration tests: real workload kernels through the full simulator
 *  across machine modes — liveness, stat sanity, and cross-mode
 *  consistency at small instruction budgets. */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "workloads/workload.hh"

using namespace vpsim;

namespace
{

struct IntegCase
{
    const char *workload;
    VpMode mode;
};

class IntegrationTest : public ::testing::TestWithParam<IntegCase>
{
};

SimConfig
configFor(VpMode mode)
{
    SimConfig cfg;
    cfg.maxInsts = 3000;
    cfg.vpMode = mode;
    if (mode == VpMode::Mtvp || mode == VpMode::SpawnOnly)
        cfg.numContexts = 4;
    cfg.predictor = PredictorKind::WangFranklin;
    cfg.selector = SelectorKind::IlpPred;
    cfg.spawnLatency = 8;
    cfg.storeBufferSize = 128;
    return cfg;
}

std::string
paramName(const ::testing::TestParamInfo<IntegCase> &info)
{
    std::string n = std::string(info.param.workload) + "_" +
                    toString(info.param.mode);
    for (char &c : n) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

} // namespace

TEST_P(IntegrationTest, RunsAndReportsSaneStats)
{
    const IntegCase &c = GetParam();
    SimResult r = runWorkload(configFor(c.mode), c.workload);

    // Progress: the instruction budget was met.
    EXPECT_GE(r.usefulInsts, 3000u) << c.workload;
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.usefulIpc, 0.0);
    EXPECT_LE(r.usefulIpc, 8.0);

    // Structural sanity.
    EXPECT_GE(r.stat("commits.total"),
              static_cast<double>(r.usefulInsts));
    EXPECT_GE(r.stat("dispatch.total"), r.stat("commits.total"));
    EXPECT_GE(r.stat("fetch.insts"), r.stat("dispatch.total"));
    EXPECT_DOUBLE_EQ(r.stat("vp.followed"),
                     r.stat("vp.stvp") + r.stat("vp.mtvp"));
    if (c.mode == VpMode::None) {
        EXPECT_EQ(r.stat("vp.followed"), 0.0);
        EXPECT_EQ(r.stat("mtvp.spawns"), 0.0);
    }
    if (c.mode != VpMode::Mtvp && c.mode != VpMode::SpawnOnly) {
        EXPECT_EQ(r.stat("mtvp.spawns"), 0.0);
    }
}

TEST_P(IntegrationTest, DeterministicAcrossRuns)
{
    const IntegCase &c = GetParam();
    SimConfig cfg = configFor(c.mode);
    SimResult a = runWorkload(cfg, c.workload);
    SimResult b = runWorkload(cfg, c.workload);
    EXPECT_EQ(a.cycles, b.cycles) << c.workload;
    EXPECT_EQ(a.usefulInsts, b.usefulInsts);
    EXPECT_EQ(a.stats, b.stats);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntegrationTest,
    ::testing::Values(IntegCase{"gzip.g", VpMode::None},
                      IntegCase{"gzip.g", VpMode::Mtvp},
                      IntegCase{"vpr.r", VpMode::None},
                      IntegCase{"vpr.r", VpMode::Stvp},
                      IntegCase{"vpr.r", VpMode::Mtvp},
                      IntegCase{"mcf", VpMode::Mtvp},
                      IntegCase{"crafty", VpMode::Mtvp},
                      IntegCase{"parser", VpMode::Stvp},
                      IntegCase{"vortex", VpMode::Mtvp},
                      IntegCase{"twolf", VpMode::SpawnOnly},
                      IntegCase{"art.1", VpMode::Mtvp},
                      IntegCase{"swim", VpMode::Mtvp},
                      IntegCase{"equake", VpMode::Stvp},
                      IntegCase{"wupwise", VpMode::Mtvp},
                      IntegCase{"mesa", VpMode::Mtvp},
                      IntegCase{"sixtrack", VpMode::None}),
    paramName);

TEST(IntegrationSeeds, SeedChangesTimingButNotLiveness)
{
    SimConfig a = configFor(VpMode::Mtvp);
    SimConfig b = a;
    b.seed = 99;
    SimResult ra = runWorkload(a, "mcf");
    SimResult rb = runWorkload(b, "mcf");
    EXPECT_GE(ra.usefulInsts, 3000u);
    EXPECT_GE(rb.usefulInsts, 3000u);
    EXPECT_NE(ra.cycles, rb.cycles); // Different data sets.
}

TEST(IntegrationScaling, LongerRunsMakeProgressProportionally)
{
    SimConfig cfg = configFor(VpMode::None);
    cfg.maxInsts = 2000;
    SimResult small = runWorkload(cfg, "gzip.g");
    cfg.maxInsts = 8000;
    SimResult big = runWorkload(cfg, "gzip.g");
    EXPECT_GT(big.cycles, small.cycles);
    EXPECT_GE(big.usefulInsts, 4 * 2000u - 100);
}
