/** Cache tag-model tests: hits, misses, LRU replacement, write-back
 *  victims, probes, prefetch inserts, and invalidation. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

using namespace vpsim;

namespace
{

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest() : cache(stats, "t", 4096, 2, 64) {}
    // 4KB, 2-way, 64B lines => 32 sets.

    /** An address that maps to @p set with tag index @p tag. */
    Addr
    addrFor(uint32_t set, uint32_t tag)
    {
        return (static_cast<Addr>(tag) * cache.numSets() + set) * 64;
    }

    StatGroup stats;
    Cache cache;
};

} // namespace

TEST_F(CacheTest, ColdMissThenHit)
{
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1038, false).hit); // Same line.
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(CacheTest, LruReplacement)
{
    Addr a = addrFor(3, 1);
    Addr b = addrFor(3, 2);
    Addr c = addrFor(3, 3);
    cache.access(a, false);
    cache.access(b, false);
    cache.access(a, false);       // a is now MRU.
    cache.access(c, false);       // Evicts b (LRU).
    EXPECT_TRUE(cache.probe(a));
    EXPECT_FALSE(cache.probe(b));
    EXPECT_TRUE(cache.probe(c));
}

TEST_F(CacheTest, DirtyVictimReportsWriteback)
{
    Addr a = addrFor(5, 1);
    Addr b = addrFor(5, 2);
    Addr c = addrFor(5, 3);
    cache.access(a, true); // Dirty.
    cache.access(b, false);
    CacheAccess r = cache.access(c, false); // Evicts dirty a.
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimLine, a);
}

TEST_F(CacheTest, CleanVictimNoWriteback)
{
    Addr a = addrFor(6, 1);
    Addr b = addrFor(6, 2);
    Addr c = addrFor(6, 3);
    cache.access(a, false);
    cache.access(b, false);
    EXPECT_FALSE(cache.access(c, false).writeback);
}

TEST_F(CacheTest, WriteHitSetsDirty)
{
    Addr a = addrFor(7, 1);
    cache.access(a, false);
    cache.access(a, true); // Now dirty via a hit.
    cache.access(addrFor(7, 2), false);
    CacheAccess r = cache.access(addrFor(7, 3), false);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimLine, a);
}

TEST_F(CacheTest, ProbeHasNoSideEffects)
{
    Addr a = addrFor(9, 1);
    EXPECT_FALSE(cache.probe(a));
    EXPECT_EQ(cache.misses(), 0u);
    cache.access(a, false);
    uint64_t h = cache.hits();
    EXPECT_TRUE(cache.probe(a));
    EXPECT_EQ(cache.hits(), h); // Probe does not count.
}

TEST_F(CacheTest, InsertIsNotADemandAccess)
{
    Addr a = addrFor(10, 1);
    cache.insert(a);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_TRUE(cache.probe(a));
    // Inserting a present line is a no-op.
    CacheAccess r = cache.insert(a);
    EXPECT_TRUE(r.hit);
}

TEST_F(CacheTest, Invalidate)
{
    Addr a = addrFor(11, 1);
    cache.access(a, true);
    EXPECT_TRUE(cache.invalidate(a)); // Was dirty.
    EXPECT_FALSE(cache.probe(a));
    EXPECT_FALSE(cache.invalidate(a)); // Already gone.
}

TEST_F(CacheTest, SetsAreIndependent)
{
    // Fill set 0 well past its associativity; set 1 must be untouched.
    Addr inSet1 = addrFor(1, 1);
    cache.access(inSet1, false);
    for (uint32_t t = 1; t <= 8; ++t)
        cache.access(addrFor(0, t), false);
    EXPECT_TRUE(cache.probe(inSet1));
}

TEST(CacheGeometry, LineAddrMasksOffset)
{
    StatGroup stats;
    Cache cache(stats, "g", 64 * 1024, 2, 64);
    EXPECT_EQ(cache.lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(cache.lineSize(), 64u);
    EXPECT_EQ(cache.numSets(), 512u);
}

TEST(CacheGeometry, Table1Shapes)
{
    StatGroup stats;
    Cache l1(stats, "l1", 64 * 1024, 2, 64);
    EXPECT_EQ(l1.numSets(), 512u);
    Cache l2(stats, "l2", 512 * 1024, 8, 64);
    EXPECT_EQ(l2.numSets(), 1024u);
    Cache l3(stats, "l3", 4 * 1024 * 1024, 16, 64);
    EXPECT_EQ(l3.numSets(), 4096u);
}
