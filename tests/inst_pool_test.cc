/**
 * @file
 * Tests for the intrusive DynInst slot pool (core/inst_pool.hh):
 * refcount-driven recycling, slab reuse in steady state (the
 * allocation-audit contract — per-tick scratch structures must not
 * allocate), pool survival past its owning Cpu, and the stale-handle
 * generation check, which must die loudly in every build type.
 */

#include <gtest/gtest.h>

#include "core/inst_pool.hh"
#include "cpu_test_util.hh"

namespace
{

using namespace vpsim;
using namespace vptest;

TEST(InstPoolTest, AllocRecycleReusesSlots)
{
    InstPool *pool = InstPool::create();
    uint64_t firstSeq;
    {
        DynInstPtr a = pool->alloc();
        a->seq = 41;
        firstSeq = a->seq;
        EXPECT_EQ(pool->liveCount(), 1u);
        EXPECT_EQ(pool->allocCount(), 1u);
    }
    EXPECT_EQ(pool->liveCount(), 0u);
    // The slot comes back; a fresh default-constructed DynInst sits in
    // the same storage.
    DynInstPtr b = pool->alloc();
    EXPECT_EQ(pool->allocCount(), 2u);
    EXPECT_EQ(pool->slabCount(), 1u);
    EXPECT_NE(b->seq, firstSeq);
    b.reset();
    pool->releaseOwner();
}

TEST(InstPoolTest, CopiesShareOneSlotNonAtomically)
{
    InstPool *pool = InstPool::create();
    DynInstPtr a = pool->alloc();
    DynInstPtr b = a;
    DynInstPtr c = std::move(b);
    EXPECT_EQ(pool->liveCount(), 1u);
    EXPECT_EQ(a, c);
    EXPECT_EQ(b, nullptr);
    a.reset();
    EXPECT_EQ(pool->liveCount(), 1u); // c still holds the slot.
    c.reset();
    EXPECT_EQ(pool->liveCount(), 0u);
    pool->releaseOwner();
}

TEST(InstPoolTest, PoolOutlivesOwnerWhileHandlesLive)
{
    InstPool *pool = InstPool::create();
    DynInstPtr a = pool->alloc();
    a->seq = 7;
    pool->releaseOwner(); // Owner gone; slabs must stay valid...
    EXPECT_EQ(a->seq, 7u);
    a.reset(); // ...until the last handle drops (pool self-deletes).
}

TEST(InstPoolDeathTest, StaleHandleDiesLoudly)
{
    // checkedGet() runs the generation check in release builds too, so
    // this death test guards the contract even with NDEBUG set.
    EXPECT_DEATH(
        {
            InstPool *pool = InstPool::create();
            DynInstPtr live = pool->alloc();
            DynInstPtr stale = live;
            // Drop stale's refcount without forgetting the slot, then
            // recycle the instruction out from under it.
            stale.testOnlyLeakRef();
            live.reset();
            EXPECT_TRUE(stale.stale());
            stale.checkedGet();
        },
        "stale DynInst handle");
}

// ---------------------------------------------------------------------
// Allocation audit: a full detailed run allocates exactly one slot per
// dispatched instruction, slab growth is bounded by the peak live
// window (recycling works), and per-tick scratch paths (issue
// candidates, wakeup lists) never allocate instructions on the side.
// ---------------------------------------------------------------------

TEST(InstPoolAudit, SlabGrowthBoundedByPeakLiveWindow)
{
    CpuRun r = runAsm(chaseKernel(400), mtvpConfig(4), chaseData(0.9));
    const InstPool &pool = r.cpu->instPool();

    // Far more instructions flowed through than can be live at once.
    EXPECT_GT(pool.allocCount(), pool.peakLive() * 4);
    // Slabs are sized by the live window, not by total allocations:
    // ceil(peakLive / 256) slabs, +1 for growth-check slack.
    size_t needed = (pool.peakLive() + 255) / 256;
    EXPECT_LE(pool.slabCount(), needed + 1);
    // Run finished: every instruction went back to the free list.
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.freeSlots(), pool.slabCount() * 256);
}

TEST(InstPoolAudit, AllocationsMatchDispatchExactly)
{
    CpuRun r = runAsm(chaseKernel(300), mtvpConfig(4), chaseData(0.9));
    const InstPool &pool = r.cpu->instPool();
    // One pool allocation per dispatched instruction — nothing in the
    // tick loop (issue scan, wakeup refresh, commit) allocates an
    // instruction on the side.
    EXPECT_EQ(pool.allocCount(),
              static_cast<uint64_t>(r.stat("dispatch.total")));
}

} // namespace
