/** Stride-prefetcher tests: training, stream allocation, stream hits,
 *  advancement, and LRU stream replacement. */

#include <gtest/gtest.h>

#include "mem/prefetcher.hh"

using namespace vpsim;

namespace
{

class PrefetcherTest : public ::testing::Test
{
  protected:
    PrefetcherTest()
        : pf(stats, 256, 8, 4, 64,
             [this](Addr, Cycle now) {
                 ++fillsIssued;
                 return now + fillLatency;
             })
    {
    }

    StatGroup stats;
    int fillsIssued = 0;
    Cycle fillLatency = 100;
    StridePrefetcher pf;
};

} // namespace

TEST_F(PrefetcherTest, NoStreamWithoutConfidence)
{
    // Two misses establish a stride; confidence needs a third.
    pf.onL1Miss(0x1000, 0x100000, 0);
    pf.onL1Miss(0x1000, 0x100040, 1);
    EXPECT_EQ(pf.prefetchesIssued(), 0u);
}

TEST_F(PrefetcherTest, StreamAllocatesAfterConfirmedStride)
{
    for (int i = 0; i < 4; ++i)
        pf.onL1Miss(0x1000, 0x100000 + i * 64u, static_cast<Cycle>(i));
    EXPECT_GT(pf.prefetchesIssued(), 0u);
    // The stream holds the next lines of the stride.
    auto hit = pf.lookup(0x100000 + 4 * 64u, 10);
    ASSERT_TRUE(hit.has_value());
    EXPECT_GT(*hit, 0u);
}

TEST_F(PrefetcherTest, LookupConsumesAndAdvances)
{
    for (int i = 0; i < 4; ++i)
        pf.onL1Miss(0x1000, 0x100000 + i * 64u, static_cast<Cycle>(i));
    uint64_t issuedBefore = pf.prefetchesIssued();
    ASSERT_TRUE(pf.lookup(0x100000 + 4 * 64u, 20).has_value());
    // Consuming an entry tops the stream buffer back up.
    EXPECT_GT(pf.prefetchesIssued(), issuedBefore);
    // The same line is no longer present.
    EXPECT_FALSE(pf.lookup(0x100000 + 4 * 64u, 21).has_value());
    EXPECT_EQ(pf.streamHits(), 1u);
}

TEST_F(PrefetcherTest, NonUnitStrides)
{
    // Stride of 3 lines.
    for (int i = 0; i < 4; ++i)
        pf.onL1Miss(0x2000, 0x200000 + i * 192u, static_cast<Cycle>(i));
    EXPECT_TRUE(pf.lookup(0x200000 + 4 * 192u, 30).has_value());
}

TEST_F(PrefetcherTest, RandomAddressesNeverStream)
{
    Addr addrs[] = {0x100000, 0x523140, 0x0ff80, 0x881c0, 0x33000};
    for (int rep = 0; rep < 4; ++rep) {
        for (Addr a : addrs)
            pf.onL1Miss(0x3000, a + static_cast<Addr>(rep) * 8, 0);
    }
    EXPECT_EQ(pf.prefetchesIssued(), 0u);
}

TEST_F(PrefetcherTest, PerPcTraining)
{
    // Interleaved accesses from two (non-aliasing) PCs, each with its
    // own stride.
    for (int i = 0; i < 5; ++i) {
        pf.onL1Miss(0x1004, 0x100000 + i * 64u, 0);
        pf.onL1Miss(0x2008, 0x400000 + i * 128u, 0);
    }
    EXPECT_TRUE(pf.lookup(0x100000 + 5 * 64u, 40).has_value());
    EXPECT_TRUE(pf.lookup(0x400000 + 5 * 128u, 40).has_value());
}

TEST_F(PrefetcherTest, StreamsReplacedLru)
{
    // Allocate 9 streams on a machine with 8 stream buffers; the first
    // (least recently used) must be replaced.
    for (int s = 0; s < 9; ++s) {
        Addr base = 0x100000 + static_cast<Addr>(s) * 0x100000;
        Addr pc = 0x1000 + static_cast<Addr>(s) * 8;
        for (int i = 0; i < 4; ++i)
            pf.onL1Miss(pc, base + i * 64u, static_cast<Cycle>(s * 10 + i));
    }
    // Stream 0's next line is gone (its buffer was the LRU victim).
    EXPECT_FALSE(pf.lookup(0x100000 + 4 * 64u, 100).has_value());
    // Stream 8's is present.
    EXPECT_TRUE(
        pf.lookup(0x100000 + 8 * 0x100000 + 4 * 64u, 100).has_value());
}

TEST_F(PrefetcherTest, FillLatencyPropagates)
{
    fillLatency = 1000;
    for (int i = 0; i < 4; ++i)
        pf.onL1Miss(0x1000, 0x100000 + i * 64u, 50);
    auto ready = pf.lookup(0x100000 + 4 * 64u, 60);
    ASSERT_TRUE(ready.has_value());
    EXPECT_EQ(*ready, 1050u);
}
