/** Physical-register-file tests: allocation, use counting (the paper's
 *  Cherry-style pending counters for map copies), readiness tracking,
 *  and conservation. */

#include <gtest/gtest.h>

#include "core/phys_regfile.hh"
#include "sim/rng.hh"

using namespace vpsim;

TEST(PhysRegFile, AllocAndRelease)
{
    PhysRegFile prf(8);
    EXPECT_EQ(prf.freeCount(), 8);
    PhysReg r = prf.alloc();
    EXPECT_EQ(prf.freeCount(), 7);
    EXPECT_EQ(prf.refCount(r), 1);
    prf.release(r);
    EXPECT_EQ(prf.freeCount(), 8);
}

TEST(PhysRegFile, UseCountingDelaysFree)
{
    PhysRegFile prf(4);
    PhysReg r = prf.alloc();
    prf.addRef(r); // A spawned context's map copy.
    prf.addRef(r); // Another child.
    EXPECT_EQ(prf.refCount(r), 3);
    prf.release(r);
    prf.release(r);
    EXPECT_EQ(prf.freeCount(), 3); // Still held.
    prf.release(r);
    EXPECT_EQ(prf.freeCount(), 4);
}

TEST(PhysRegFile, Readiness)
{
    PhysRegFile prf(4);
    PhysReg r = prf.alloc();
    EXPECT_FALSE(prf.readyBy(r, 1000000));
    prf.setReadyAt(r, 50);
    EXPECT_FALSE(prf.readyBy(r, 49));
    EXPECT_TRUE(prf.readyBy(r, 50));
    EXPECT_EQ(prf.readyAt(r), 50u);
    // The invalid register (r0's mapping) is always ready.
    EXPECT_TRUE(prf.readyBy(invalidPhysReg, 0));
}

TEST(PhysRegFile, ReallocResetsState)
{
    PhysRegFile prf(1);
    PhysReg r = prf.alloc();
    prf.setReadyAt(r, 5);
    prf.release(r);
    PhysReg r2 = prf.alloc();
    EXPECT_EQ(r2, r);
    EXPECT_FALSE(prf.readyBy(r2, 1000)); // Not ready again.
    EXPECT_EQ(prf.refCount(r2), 1);
}

TEST(PhysRegFile, ExhaustionPanics)
{
    PhysRegFile prf(1);
    EXPECT_TRUE(prf.canAlloc(1));
    EXPECT_FALSE(prf.canAlloc(2));
    prf.alloc();
    EXPECT_FALSE(prf.canAlloc(1));
    EXPECT_DEATH(prf.alloc(), "exhausted");
}

TEST(PhysRegFile, DoubleReleasePanics)
{
    PhysRegFile prf(2);
    PhysReg r = prf.alloc();
    prf.release(r);
    EXPECT_DEATH(prf.release(r), "release of free register");
}

TEST(PhysRegFile, AddRefOnFreePanics)
{
    PhysRegFile prf(2);
    PhysReg r = prf.alloc();
    prf.release(r);
    EXPECT_DEATH(prf.addRef(r), "addRef on free register");
}

TEST(PhysRegFile, RandomizedConservation)
{
    // Property: across any interleaving of alloc/addRef/release, the
    // free list is conserved (every register released exactly as many
    // times as it was referenced).
    PhysRegFile prf(32);
    Rng rng(99);
    std::vector<std::pair<PhysReg, int>> live; // reg -> refs
    for (int step = 0; step < 20000; ++step) {
        int action = static_cast<int>(rng.nextBounded(3));
        if (action == 0 && prf.canAlloc(1)) {
            live.emplace_back(prf.alloc(), 1);
        } else if (!live.empty()) {
            size_t idx = static_cast<size_t>(
                rng.nextBounded(live.size()));
            if (action == 1) {
                prf.addRef(live[idx].first);
                ++live[idx].second;
            } else {
                prf.release(live[idx].first);
                if (--live[idx].second == 0) {
                    live[idx] = live.back();
                    live.pop_back();
                }
            }
        }
    }
    for (auto &[reg, refs] : live) {
        for (int i = 0; i < refs; ++i)
            prf.release(reg);
    }
    EXPECT_EQ(prf.freeCount(), 32);
}
