/** Threaded value prediction tests: spawning, promotion, kills, store
 *  segment isolation, the single-fetch-path and no-stall policies,
 *  spawn latency, store-buffer capacity, multi-value spawning, and
 *  spawn-only mode. */

#include <gtest/gtest.h>

#include "cpu_test_util.hh"

using namespace vptest;

TEST(CpuMtvp, SpawnsAndPromotesOnCorrectPredictions)
{
    CpuRun r = runAsm(chaseKernel(400), mtvpConfig(4), chaseData(1.0));
    EXPECT_GT(r.stat("mtvp.spawns"), 50.0);
    EXPECT_EQ(r.stat("mtvp.spawns"), r.stat("mtvp.promotes"));
    EXPECT_EQ(r.stat("mtvp.kills"), 0.0);
    EXPECT_TRUE(r.cpu->haltedUsefully());
}

TEST(CpuMtvp, SpeedsUpSerialChase)
{
    SimConfig base = haltConfig();
    CpuRun rb = runAsm(chaseKernel(400), base, chaseData(0.5));
    CpuRun rm = runAsm(chaseKernel(400), mtvpConfig(8), chaseData(0.5));
    EXPECT_LT(rm.cycles(), rb.cycles());
}

TEST(CpuMtvp, MoreContextsHelpSerialChases)
{
    CpuRun r2 = runAsm(chaseKernel(500), mtvpConfig(2), chaseData(0.5));
    CpuRun r8 = runAsm(chaseKernel(500), mtvpConfig(8), chaseData(0.5));
    EXPECT_LE(r8.cycles(), r2.cycles());
}

TEST(CpuMtvp, MispredictedSpawnsAreKilledAndStateStaysCorrect)
{
    // Loads with plateau values that switch every 50 elements: the
    // last-value predictor is confident on each plateau and spawns on a
    // wrong value at every switch.
    std::string src = R"(
        li   r1, 0x400000
        li   r9, 0x600000
        addi r2, r0, 400
        addi r8, r0, 0
        addi r4, r0, 0
    loop:
        slli r5, r8, 3
        add  r6, r1, r5
        ld   r7, 0(r6)
        add  r4, r4, r7
        sd   r4, 0(r9)
        addi r9, r9, 8
        addi r8, r8, 1
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    auto init = [](MainMemory &mem) {
        for (int i = 0; i < 400; ++i)
            mem.write64(0x400000 + i * 8, (i / 50) % 2 == 0 ? 5 : 17);
    };
    SimConfig cfg = mtvpConfig(4, PredictorKind::LastValue,
                               SelectorKind::Always);
    auto ref = referenceMemory(src, init);
    CpuRun r = runAsm(src, cfg, init);
    EXPECT_GT(r.stat("mtvp.spawns"), 0.0);
    EXPECT_GT(r.stat("mtvp.kills"), 0.0);
    EXPECT_TRUE(r.mem->contentEquals(*ref))
        << "killed threads leaked state to memory";
}

TEST(CpuMtvp, KilledChildStoresNeverReachMemory)
{
    // The predicted load feeds an address computation; a misprediction
    // sends the child storing to a decoy region which must stay zero.
    std::string src = R"(
        li   r1, 0x400000
        li   r9, 0x600000
        addi r2, r0, 60
        addi r4, r0, 0
    loop:
        andi r5, r2, 1
        slli r5, r5, 3
        add  r6, r1, r5
        ld   r7, 0(r6)       # alternates 0x0 / 0x10000: LV mispredicts
        add  r8, r9, r7
        sd   r2, 0(r8)       # store target depends on the prediction
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    auto init = [](MainMemory &m) {
        m.write64(0x400000, 0);
        m.write64(0x400008, 0x10000);
    };
    SimConfig cfg = mtvpConfig(4, PredictorKind::LastValue,
                               SelectorKind::Always);
    auto ref = referenceMemory(src, init);
    CpuRun r = runAsm(src, cfg, init);
    EXPECT_TRUE(r.mem->contentEquals(*ref));
}

TEST(CpuMtvp, SfpParentStopsFetching)
{
    // In SFP mode the parent's fetch halts at the spawn; with only two
    // contexts the chain depth is one and spawns resolve one at a time.
    SimConfig cfg = mtvpConfig(2);
    cfg.fetchPolicy = FetchPolicy::SingleFetchPath;
    CpuRun r = runAsm(chaseKernel(300), cfg, chaseData(1.0));
    EXPECT_GT(r.stat("mtvp.spawns"), 0.0);
    EXPECT_TRUE(r.cpu->haltedUsefully());
}

TEST(CpuMtvp, NoStallPolicyRunsAndStaysCorrect)
{
    SimConfig cfg = mtvpConfig(4, PredictorKind::LastValue,
                               SelectorKind::Always);
    cfg.fetchPolicy = FetchPolicy::NoStall;
    auto ref = referenceMemory(chaseKernel(350), chaseData(0.6));
    CpuRun r = runAsm(chaseKernel(350), cfg, chaseData(0.6));
    EXPECT_TRUE(r.cpu->haltedUsefully());
    EXPECT_TRUE(r.mem->contentEquals(*ref));
    EXPECT_GT(r.stat("mtvp.spawns"), 0.0);
}

TEST(CpuMtvp, SpawnLatencySlowsSpawnHeavyCode)
{
    SimConfig fast = mtvpConfig(8);
    fast.spawnLatency = 1;
    SimConfig slow = mtvpConfig(8);
    slow.spawnLatency = 16;
    CpuRun rf = runAsm(chaseKernel(400), fast, chaseData(1.0));
    CpuRun rs = runAsm(chaseKernel(400), slow, chaseData(1.0));
    EXPECT_LE(rf.cycles(), rs.cycles());
}

TEST(CpuMtvp, TinyStoreBufferStallsCommits)
{
    SimConfig tiny = mtvpConfig(4);
    tiny.storeBufferSize = 1;
    CpuRun r = runAsm(chaseKernel(300), tiny, chaseData(1.0));
    EXPECT_GT(r.stat("sb.commitStalls"), 0.0);
    EXPECT_TRUE(r.cpu->haltedUsefully());
    // And it still computes the right answer.
    auto ref = referenceMemory(chaseKernel(300), chaseData(1.0));
    EXPECT_TRUE(r.mem->contentEquals(*ref));
}

TEST(CpuMtvp, LargerStoreBufferNoSlower)
{
    SimConfig small = mtvpConfig(8);
    small.storeBufferSize = 8;
    SimConfig large = mtvpConfig(8);
    large.storeBufferSize = 512;
    CpuRun rs = runAsm(chaseKernel(400), small, chaseData(1.0));
    CpuRun rl = runAsm(chaseKernel(400), large, chaseData(1.0));
    EXPECT_LE(rl.cycles(), rs.cycles());
}

TEST(CpuMtvp, MultiValueSpawnsExtraChildren)
{
    // An alternating-value load trains two Wang-Franklin candidates;
    // multi-value MTVP spawns children for both and one always wins.
    std::string src = R"(
        li   r1, 0x400000
        li   r9, 0x600000
        addi r2, r0, 400
        addi r4, r0, 0
    loop:
        andi r5, r2, 1
        slli r5, r5, 3
        add  r6, r1, r5
        ld   r7, 0(r6)
        add  r4, r4, r7
        sd   r4, 0(r9)
        addi r9, r9, 8
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    auto init = [](MainMemory &m) {
        m.write64(0x400000, 5);
        m.write64(0x400008, 11);
    };
    SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                               SelectorKind::Always);
    cfg.maxValuesPerSpawn = 4;
    // Fully liberal: every in-table candidate gets a thread, so the
    // hardwired zero/one candidates spawn extra (usually losing)
    // children alongside the primary.
    cfg.multiValueThreshold = 0;
    CpuRun r = runAsm(src, cfg, init);
    EXPECT_GT(r.stat("mtvp.extraValueSpawns"), 0.0);
    auto ref = referenceMemory(src, init);
    EXPECT_TRUE(r.mem->contentEquals(*ref));
}

TEST(CpuMtvp, SpawnOnlyModeDecouplesWithoutPrediction)
{
    SimConfig cfg = haltConfig();
    cfg.vpMode = VpMode::SpawnOnly;
    cfg.numContexts = 8;
    cfg.selector = SelectorKind::Always;
    cfg.spawnLatency = 8;
    CpuRun r = runAsm(chaseKernel(300), cfg, chaseData(0.5));
    EXPECT_GT(r.stat("mtvp.spawns"), 0.0);
    EXPECT_EQ(r.stat("vp.followed"), 0.0); // No value predictions.
    EXPECT_TRUE(r.cpu->haltedUsefully());
    auto ref = referenceMemory(chaseKernel(300), chaseData(0.5));
    EXPECT_TRUE(r.mem->contentEquals(*ref));
}

TEST(CpuMtvp, UsefulInstsCountTheSurvivingChainOnly)
{
    // Useful commits must equal the program's actual instruction count
    // regardless of how much speculative work was discarded.
    auto countRef = [&](const std::string &src, const DataInit &init) {
        auto mem = std::make_unique<MainMemory>();
        Program p = assemble(src);
        mem->loadProgram(p);
        init(*mem);
        Emulator emu(*mem);
        ArchState st;
        st.pc = p.base;
        return emu.run(st, 50'000'000);
    };
    uint64_t ref = countRef(chaseKernel(250), chaseData(0.5));
    SimConfig cfg = mtvpConfig(4, PredictorKind::LastValue,
                               SelectorKind::Always);
    CpuRun r = runAsm(chaseKernel(250), cfg, chaseData(0.5));
    EXPECT_EQ(r.useful(), ref);
    EXPECT_GE(r.stat("commits.total"), static_cast<double>(ref));
}

TEST(CpuMtvp, DeterministicAcrossRuns)
{
    SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                               SelectorKind::IlpPred);
    CpuRun a = runAsm(chaseKernel(300), cfg, chaseData(0.7));
    CpuRun b = runAsm(chaseKernel(300), cfg, chaseData(0.7));
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.stat("mtvp.spawns"), b.stat("mtvp.spawns"));
    EXPECT_EQ(a.stat("mtvp.kills"), b.stat("mtvp.kills"));
}

TEST(CpuMtvp, Figure5StatTracksRecoverablePredictions)
{
    // Alternating values: the primary prediction is often wrong while
    // the other candidate (the correct one) is over threshold.
    std::string src = R"(
        li   r1, 0x400000
        addi r2, r0, 500
        addi r4, r0, 0
    loop:
        andi r5, r2, 1
        slli r5, r5, 3
        add  r6, r1, r5
        ld   r7, 0(r6)
        add  r4, r4, r7
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    auto init = [](MainMemory &m) {
        m.write64(0x400000, 21);
        m.write64(0x400008, 22);
    };
    SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                               SelectorKind::Always);
    CpuRun r = runAsm(src, cfg, init);
    // The recoverable fraction is bounded by the mispredictions and can
    // never go negative (structural sanity of the Figure 5 statistic).
    EXPECT_GE(r.stat("vp.primaryWrongHadCorrect"), 0.0);
    EXPECT_LE(r.stat("vp.primaryWrongHadCorrect"),
              r.stat("vp.incorrect") + r.stat("vp.correct"));
}
