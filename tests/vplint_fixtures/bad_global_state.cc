// vplint fixture: mutable namespace-scope state, violation on line 4.
#include <cstdint>

uint64_t fixtureCounter = 0;
