// vplint fixture: pointer formatted into a log, violation on line 7.
#include <cstdio>

void
fixtureDump(const void *p)
{
    std::printf("node at %p\n", p);
}
