// vplint fixture: shared_ptr ownership of DynInst, violation line 7.
#include <memory>

struct DynInst;

void
fixtureLeakyOwner(std::shared_ptr<DynInst> inst)
{
    (void)inst;
}
