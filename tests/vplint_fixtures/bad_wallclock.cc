// vplint fixture: wall-clock read, seeded violation on line 7.
#include <ctime>

long
fixtureNow()
{
    return time(nullptr);
}
