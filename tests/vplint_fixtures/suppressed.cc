// vplint fixture: same violation as bad_rand.cc, but suppressed.
#include <cstdlib>

int
fixtureSuppressedNoise()
{
    // vplint:allow(rand) fixture exercising the suppression syntax
    return rand();
}
