// vplint fixture: no violations; every rule must stay quiet here.
#include <cstdint>

namespace
{
constexpr uint64_t fixtureMask = 0xff;
}

uint64_t
fixtureApply(uint64_t v)
{
    return v & fixtureMask;
}
