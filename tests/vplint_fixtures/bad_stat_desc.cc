// vplint fixture: stat registered without a description, line 7.
#include "sim/stats.hh"

void
fixtureRegister(vpsim::StatGroup &g)
{
    vpsim::Scalar s(g, "fixture.count", "");
}
