// vplint fixture: host randomness, seeded violation on line 7.
#include <cstdlib>

int
fixtureNoise()
{
    return rand();
}
