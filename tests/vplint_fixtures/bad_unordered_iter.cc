// vplint fixture: unordered iteration, seeded violation on line 12.
#include <unordered_map>

struct FixtureTable
{
    std::unordered_map<int, int> cells;

    int
    sum() const
    {
        int total = 0;
        for (const auto &kv : cells)
            total += kv.second;
        return total;
    }
};
