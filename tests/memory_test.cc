/** Sparse main-memory tests: sizes, endianness, page crossing,
 *  unmapped reads, program loading, and content comparison. */

#include <gtest/gtest.h>

#include "emu/memory.hh"
#include "isa/assembler.hh"

using namespace vpsim;

TEST(Memory, UnmappedReadsZero)
{
    MainMemory mem;
    EXPECT_EQ(mem.read64(0xdeadbeef000), 0u);
    EXPECT_EQ(mem.read8(0), 0u);
    EXPECT_EQ(mem.mappedPages(), 0u);
}

TEST(Memory, WriteReadRoundTrip)
{
    MainMemory mem;
    mem.write64(0x1000, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(0x1000), 0x1122334455667788ull);
    EXPECT_EQ(mem.read32(0x1000), 0x55667788u);
    EXPECT_EQ(mem.read32(0x1004), 0x11223344u);
    EXPECT_EQ(mem.read8(0x1000), 0x88u);
    EXPECT_EQ(mem.read8(0x1007), 0x11u);
}

TEST(Memory, PartialWidths)
{
    MainMemory mem;
    mem.write8(0x2000, 0xab);
    mem.write32(0x2004, 0xcafebabe);
    EXPECT_EQ(mem.read64(0x2000), 0xcafebabe000000abull);
    mem.write(0x3000, 3, 0x00c0ffee);
    EXPECT_EQ(mem.read(0x3000, 3), 0xc0ffeeu);
    EXPECT_EQ(mem.read8(0x3003), 0u);
}

TEST(Memory, UnalignedAndPageCrossing)
{
    MainMemory mem;
    Addr boundary = MainMemory::pageBytes;
    mem.write64(boundary - 4, 0x0102030405060708ull);
    EXPECT_EQ(mem.read64(boundary - 4), 0x0102030405060708ull);
    EXPECT_EQ(mem.read32(boundary), 0x01020304u);
    EXPECT_EQ(mem.mappedPages(), 2u);
}

TEST(Memory, FpHelpers)
{
    MainMemory mem;
    mem.writeFp(0x4000, 3.14159);
    EXPECT_DOUBLE_EQ(mem.readFp(0x4000), 3.14159);
    mem.writeFp(0x4008, -0.0);
    EXPECT_EQ(mem.read64(0x4008), 0x8000000000000000ull);
}

TEST(Memory, LoadProgramPlacesWords)
{
    MainMemory mem;
    Program p = assemble("nop\nhalt\n", 0x1000);
    mem.loadProgram(p);
    EXPECT_EQ(mem.read32(0x1000), p.words[0]);
    EXPECT_EQ(mem.read32(0x1004), p.words[1]);
}

TEST(Memory, ContentEqualsIgnoresZeroPages)
{
    MainMemory a;
    MainMemory b;
    EXPECT_TRUE(a.contentEquals(b));

    a.write64(0x1000, 5);
    EXPECT_FALSE(a.contentEquals(b));
    b.write64(0x1000, 5);
    EXPECT_TRUE(a.contentEquals(b));

    // A page of explicit zeros equals an unmapped page.
    a.write64(0x900000, 0);
    EXPECT_TRUE(a.contentEquals(b));
    EXPECT_GT(a.mappedPages(), b.mappedPages());

    b.write8(0xfff123, 9);
    EXPECT_FALSE(a.contentEquals(b));
}
