/**
 * @file
 * Bench-history tracker tests (bench/history.hh): entry JSON
 * round-trips, JSONL append/load with corrupt-line tolerance, the
 * drift gate (relative, 1-percentage-point floor, comparable-settings
 * matching), the markdown trajectory table, and seeding an entry from
 * a BENCH_summary.json document.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "history.hh"
#include "sim/json.hh"

using namespace vpbench;

namespace
{

HistoryEntry
sampleEntry(double speedup, uint64_t when = 1000)
{
    HistoryEntry e;
    e.unixTime = when;
    e.label = "test";
    e.insts = 12000;
    e.seed = 1;
    e.fullSet = false;
    e.totalWallSeconds = 4.5;
    FigureDigest d;
    d.wallSeconds = 4.5;
    d.exitStatus = 0;
    d.hasHeadline = true;
    d.headlineConfig = "mtvp8";
    d.headlineSpeedupPct = speedup;
    e.figures.emplace("sec56_multi_value", d);
    return e;
}

/** RAII temp JSONL path. */
struct TempFile
{
    std::string path = "history_test_tmp.jsonl";
    TempFile() { std::remove(path.c_str()); }
    ~TempFile() { std::remove(path.c_str()); }
};

} // namespace

TEST(History, EntryJsonRoundTrips)
{
    HistoryEntry e = sampleEntry(16.25);
    std::string line = historyEntryJson(e);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    vpsim::json::Value v;
    std::string err;
    ASSERT_TRUE(vpsim::json::parse(line, v, &err)) << err;
    HistoryEntry back;
    ASSERT_TRUE(parseHistoryEntry(v, back, &err)) << err;
    EXPECT_EQ(back.schemaVersion, historySchemaVersion);
    EXPECT_EQ(back.unixTime, e.unixTime);
    EXPECT_EQ(back.label, e.label);
    EXPECT_EQ(back.insts, e.insts);
    EXPECT_EQ(back.seed, e.seed);
    EXPECT_EQ(back.fullSet, e.fullSet);
    ASSERT_EQ(back.figures.size(), 1u);
    const FigureDigest &d = back.figures.at("sec56_multi_value");
    EXPECT_TRUE(d.hasHeadline);
    EXPECT_EQ(d.headlineConfig, "mtvp8");
    EXPECT_DOUBLE_EQ(d.headlineSpeedupPct, 16.25);
}

TEST(History, UnknownSchemaVersionIsRejected)
{
    vpsim::json::Value v;
    std::string err;
    ASSERT_TRUE(vpsim::json::parse(
        R"({"schemaVersion": "mtvp-bench-history-v999", "figures": {}})",
        v, &err));
    HistoryEntry e;
    EXPECT_FALSE(parseHistoryEntry(v, e, &err));
    EXPECT_NE(err.find("schemaVersion"), std::string::npos);
}

TEST(History, AppendLoadSkipsCorruptLines)
{
    TempFile tmp;
    EXPECT_TRUE(loadHistory(tmp.path).empty()); // Missing file: empty.

    ASSERT_TRUE(appendHistory(tmp.path, sampleEntry(10.0, 1)));
    {
        std::FILE *f = std::fopen(tmp.path.c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fputs("this is not json\n\n", f);
        std::fclose(f);
    }
    ASSERT_TRUE(appendHistory(tmp.path, sampleEntry(11.0, 2)));

    std::vector<std::string> warnings;
    std::vector<HistoryEntry> h = loadHistory(tmp.path, &warnings);
    ASSERT_EQ(h.size(), 2u); // Oldest first, corrupt line skipped.
    EXPECT_EQ(h[0].unixTime, 1u);
    EXPECT_EQ(h[1].unixTime, 2u);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find(":2:"), std::string::npos);
}

TEST(History, DriftGateFiresAboveThresholdOnly)
{
    std::vector<HistoryEntry> prior = {sampleEntry(20.0)};

    // 4% relative movement: under the 5% default gate.
    std::vector<Drift> ok =
        computeDrift(prior, sampleEntry(20.8), historyDriftWarnPct);
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_FALSE(ok[0].exceeds);
    EXPECT_NEAR(ok[0].driftPct, 4.0, 1e-9);

    // 10% relative movement: gate fires.
    std::vector<Drift> bad =
        computeDrift(prior, sampleEntry(22.0), historyDriftWarnPct);
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_TRUE(bad[0].exceeds);
    EXPECT_NEAR(bad[0].driftPct, 10.0, 1e-9);
    EXPECT_EQ(bad[0].figure, "sec56_multi_value");
    EXPECT_DOUBLE_EQ(bad[0].prevPct, 20.0);
    EXPECT_DOUBLE_EQ(bad[0].newPct, 22.0);
}

TEST(History, DriftUsesOnePointFloorNearZero)
{
    // 0.3pp around a 0.1% headline would be 300% relative without the
    // floor; with max(1, |prev|) it is 30% — still drift, but sane.
    std::vector<HistoryEntry> prior = {sampleEntry(0.1)};
    std::vector<Drift> d = computeDrift(prior, sampleEntry(0.4), 5.0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_NEAR(d[0].driftPct, 30.0, 1e-9);

    // 0.03pp wobble stays under the gate.
    d = computeDrift(prior, sampleEntry(0.13), 5.0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_FALSE(d[0].exceeds);
}

TEST(History, DriftComparesOnlyComparableSettings)
{
    // Same figure, but measured with different insts: no baseline.
    HistoryEntry other = sampleEntry(5.0);
    other.insts = 999;
    EXPECT_TRUE(computeDrift({other}, sampleEntry(20.0), 5.0).empty());

    // The newest comparable entry wins, not the newest entry.
    std::vector<HistoryEntry> prior = {sampleEntry(10.0, 1),
                                       sampleEntry(12.0, 2), other};
    std::vector<Drift> d = computeDrift(prior, sampleEntry(12.0), 5.0);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_DOUBLE_EQ(d[0].prevPct, 12.0);
    EXPECT_FALSE(d[0].exceeds);
}

TEST(History, MarkdownShowsTrajectoryAndVerdict)
{
    std::vector<HistoryEntry> prior = {sampleEntry(10.0, 1),
                                       sampleEntry(11.0, 2)};
    HistoryEntry cur = sampleEntry(22.0, 3);
    std::vector<Drift> drifts = computeDrift(prior, cur, 5.0);
    std::string md = historyMarkdown(prior, cur, drifts, 8);
    EXPECT_NE(md.find("| figure |"), std::string::npos);
    EXPECT_NE(md.find("sec56_multi_value"), std::string::npos);
    EXPECT_NE(md.find("10.00 -> 11.00"), std::string::npos);
    EXPECT_NE(md.find("DRIFT"), std::string::npos);

    // A figure with no baseline renders as new, not as drift.
    std::string fresh = historyMarkdown({}, cur, {}, 8);
    EXPECT_NE(fresh.find("(new)"), std::string::npos);
    EXPECT_EQ(fresh.find("DRIFT"), std::string::npos);
}

TEST(History, EntryFromSummaryDocument)
{
    const char *summary = R"({
        "schemaVersion": "mtvp-bench-summary-v1",
        "insts": 12000, "seed": 1, "fullSet": false,
        "figures": {
            "table1_config": {"wallSeconds": 0.01, "exitStatus": 0},
            "sec56_multi_value": {"wallSeconds": 2.5, "exitStatus": 0,
                                  "headlineConfig": "mtvp8",
                                  "headlineSpeedupPct": 16.25}
        }
    })";
    vpsim::json::Value v;
    std::string err;
    ASSERT_TRUE(vpsim::json::parse(summary, v, &err)) << err;
    HistoryEntry e;
    ASSERT_TRUE(entryFromSummary(v, e, &err)) << err;
    EXPECT_EQ(e.unixTime, 0u);
    EXPECT_EQ(e.label, "seeded-from-summary");
    EXPECT_EQ(e.insts, 12000u);
    ASSERT_EQ(e.figures.size(), 2u);
    EXPECT_FALSE(e.figures.at("table1_config").hasHeadline);
    EXPECT_TRUE(e.figures.at("sec56_multi_value").hasHeadline);
    EXPECT_DOUBLE_EQ(e.totalWallSeconds, 2.51);

    // A seeded entry is a valid drift baseline for a matching run.
    std::vector<Drift> d =
        computeDrift({e}, sampleEntry(16.25), historyDriftWarnPct);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_FALSE(d[0].exceeds);
    EXPECT_NEAR(d[0].driftPct, 0.0, 1e-12);
}
