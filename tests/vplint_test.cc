/**
 * @file
 * Tests for tools/vplint driven as a library: every rule is exercised
 * against a fixture file seeded with exactly one violation (asserting
 * the exact rule ID and line number), plus a clean file, the
 * suppression syntax, and the config-key / stats-manifest contract
 * logic on synthetic inputs.
 */

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vplint.hh"

namespace
{

using vplint::Diag;
using vplint::FileKind;
using vplint::SourceFile;
using vplint::TreeIndex;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Prepare + index + lint one source text under the given kind. */
std::vector<Diag>
lintText(const std::string &path, const std::string &content, FileKind kind)
{
    SourceFile f = vplint::prepareSource(path, content, kind);
    TreeIndex index;
    vplint::indexSource(f, index);
    std::vector<Diag> out;
    vplint::lintSource(f, index, out);
    return out;
}

/** Lint one committed fixture file as if it lived under src/. */
std::vector<Diag>
lintFixture(const std::string &name, FileKind kind = FileKind::Src)
{
    std::string path = std::string(VPLINT_FIXTURE_DIR) + "/" + name;
    return lintText("src/fixture/" + name, readFile(path), kind);
}

// ---------------------------------------------------------------------
// One seeded violation per rule, exact rule ID and line number.
// ---------------------------------------------------------------------

TEST(VplintFixtures, BadRandFlagsLine7)
{
    std::vector<Diag> d = lintFixture("bad_rand.cc");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "rand");
    EXPECT_EQ(d[0].line, 7);
}

TEST(VplintFixtures, BadWallclockFlagsLine7)
{
    std::vector<Diag> d = lintFixture("bad_wallclock.cc");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "wallclock");
    EXPECT_EQ(d[0].line, 7);
}

TEST(VplintFixtures, BadUnorderedIterFlagsLine12)
{
    std::vector<Diag> d = lintFixture("bad_unordered_iter.cc");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "unordered-iter");
    EXPECT_EQ(d[0].line, 12);
    EXPECT_NE(d[0].message.find("cells"), std::string::npos);
}

TEST(VplintFixtures, BadPointerFormatFlagsLine7)
{
    std::vector<Diag> d = lintFixture("bad_pointer_format.cc");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "pointer-format");
    EXPECT_EQ(d[0].line, 7);
}

TEST(VplintFixtures, BadSharedInstFlagsLine7)
{
    std::vector<Diag> d = lintFixture("bad_shared_inst.cc");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "shared-inst");
    EXPECT_EQ(d[0].line, 7);
}

TEST(VplintFixtures, BadGlobalStateFlagsLine4)
{
    std::vector<Diag> d = lintFixture("bad_global_state.cc");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "global-state");
    EXPECT_EQ(d[0].line, 4);
    EXPECT_NE(d[0].message.find("fixtureCounter"), std::string::npos);
}

TEST(VplintFixtures, BadStatDescFlagsLine7)
{
    std::vector<Diag> d = lintFixture("bad_stat_desc.cc");
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "stat-desc");
    EXPECT_EQ(d[0].line, 7);
}

TEST(VplintFixtures, SuppressedFixtureIsClean)
{
    EXPECT_TRUE(lintFixture("suppressed.cc").empty());
}

TEST(VplintFixtures, CleanFixtureIsClean)
{
    EXPECT_TRUE(lintFixture("clean.cc").empty());
}

// ---------------------------------------------------------------------
// Suppression semantics.
// ---------------------------------------------------------------------

TEST(VplintSuppress, SameLineCommentSuppresses)
{
    std::vector<Diag> d = lintText(
        "src/x.cc", "int x = rand(); // vplint:allow(rand) seeded once\n",
        FileKind::Src);
    EXPECT_TRUE(d.empty());
}

TEST(VplintSuppress, AllowOnlyCoversTheNamedRule)
{
    std::vector<Diag> d = lintText(
        "src/x.cc", "int x = rand(); // vplint:allow(wallclock)\n",
        FileKind::Src);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "rand");
}

TEST(VplintSuppress, AllowCoversOnlyTheNextLine)
{
    // The allow sits two lines above the violation: still flagged.
    std::vector<Diag> d = lintText("tests/x.cc",
                                   "// vplint:allow(rand)\n"
                                   "int y = 0;\n"
                                   "int x = rand();\n",
                                   FileKind::Tests);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "rand");
    EXPECT_EQ(d[0].line, 3);
}

TEST(VplintSuppress, CommaListCoversMultipleRules)
{
    std::vector<Diag> d = lintText(
        "src/x.cc",
        "// vplint:allow(rand, wallclock) both seeded below\n"
        "long x = rand() + time(nullptr);\n",
        FileKind::Src);
    EXPECT_TRUE(d.empty());
}

// ---------------------------------------------------------------------
// Rule behavior details.
// ---------------------------------------------------------------------

TEST(VplintRules, ProfilerFilesMayReadWallclock)
{
    std::vector<Diag> d =
        lintText("src/sim/profiler.cc",
                 "long t = std::chrono::steady_clock::now()\n"
                 "             .time_since_epoch().count();\n",
                 FileKind::Src);
    EXPECT_TRUE(d.empty());
}

TEST(VplintRules, MemberCallNamedTimeIsNotWallclock)
{
    std::vector<Diag> d = lintText("src/x.cc", "long t = sim.time();\n",
                                   FileKind::Src);
    EXPECT_TRUE(d.empty());
}

TEST(VplintRules, InstPoolHeaderMayNameSharedPtrDynInst)
{
    std::vector<Diag> d = lintText(
        "src/core/inst_pool.hh",
        "using Legacy = std::shared_ptr<DynInst>;\n", FileKind::Src);
    EXPECT_TRUE(d.empty());
}

TEST(VplintRules, QualifiedAndAllocSharedDynInstAreFlagged)
{
    std::vector<Diag> d = lintText(
        "tests/x.cc",
        "auto a = std::allocate_shared<vpsim::DynInst>(alloc);\n"
        "std::weak_ptr<vpsim::DynInst> w;\n",
        FileKind::Tests);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0].rule, "shared-inst");
    EXPECT_EQ(d[1].rule, "shared-inst");
}

TEST(VplintRules, SharedPtrOfOtherTypesIsFine)
{
    std::vector<Diag> d = lintText(
        "src/x.cc",
        "void f()\n"
        "{\n"
        "    std::shared_ptr<StoreSegment> seg;\n"
        "}\n",
        FileKind::Src);
    EXPECT_TRUE(d.empty());
}

TEST(VplintRules, ExplicitBeginOnUnorderedContainerIsFlagged)
{
    std::vector<Diag> d = lintText(
        "src/x.cc",
        "void f()\n"
        "{\n"
        "    std::unordered_map<int, int> table;\n"
        "    auto it = table.begin();\n"
        "}\n",
        FileKind::Src);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "unordered-iter");
    EXPECT_EQ(d[0].line, 4);
}

TEST(VplintRules, StaticLocalIsGlobalState)
{
    std::vector<Diag> d = lintText("src/x.cc",
                                   "void f()\n"
                                   "{\n"
                                   "    static int hits;\n"
                                   "}\n",
                                   FileKind::Src);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "global-state");
    EXPECT_EQ(d[0].line, 3);
}

TEST(VplintRules, ConstAtomicAndThreadLocalGlobalsAreFine)
{
    std::vector<Diag> d = lintText(
        "src/x.cc",
        "const int kLimit = 4;\n"
        "constexpr int kWays = 2;\n"
        "std::atomic<bool> ready{false};\n"
        "thread_local int depth = 0;\n",
        FileKind::Src);
    EXPECT_TRUE(d.empty());
}

TEST(VplintRules, BraceInitializedGlobalIsStillFlagged)
{
    std::vector<Diag> d =
        lintText("src/x.cc", "int counter{0};\n", FileKind::Src);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "global-state");
    EXPECT_EQ(d[0].line, 1);
}

TEST(VplintRules, ViolationsInStringLiteralsAreIgnored)
{
    std::vector<Diag> d = lintText(
        "src/x.cc", "const char *kHelp = \"rand() and time() spin\";\n",
        FileKind::Src);
    EXPECT_TRUE(d.empty());
}

TEST(VplintRules, ConcurrencyAndStatRulesSkipTests)
{
    // The same mutable global that fails under src/ is fine in tests/.
    std::string src = "uint64_t counter = 0;\n";
    EXPECT_EQ(lintText("src/x.cc", src, FileKind::Src).size(), 1u);
    EXPECT_TRUE(lintText("tests/x.cc", src, FileKind::Tests).empty());
}

TEST(VplintRules, ClassifyPathSelectsKind)
{
    EXPECT_EQ(vplint::classifyPath("src/sim/config.cc"), FileKind::Src);
    EXPECT_EQ(vplint::classifyPath("bench/run_all.cc"), FileKind::Bench);
    EXPECT_EQ(vplint::classifyPath("tests/smoke_test.cc"),
              FileKind::Tests);
    EXPECT_EQ(vplint::classifyPath("tools/vplint/vplint.cc"),
              FileKind::Other);
}

TEST(VplintRules, DiagFormatsAsFileLineRuleMessage)
{
    Diag d{"src/x.cc", 7, "rand", "boom"};
    EXPECT_EQ(d.str(), "src/x.cc:7: rand: boom");
}

// ---------------------------------------------------------------------
// Config-key contract on a synthetic SimConfig source.
// ---------------------------------------------------------------------

namespace
{

const char *kConfigSrc =
    "void\n"                                                       // 1
    "SimConfig::set(const std::string &key, const std::string &v)\n"
    "{\n"                                                          // 3
    "    if (key == \"alpha\") {\n"                                // 4
    "        alpha = parseInt(v);\n"                               // 5
    "    } else if (key == \"beta\") {\n"                          // 6
    "        beta = parseInt(v);\n"                                // 7
    "    }\n"                                                      // 8
    "}\n"                                                          // 9
    "\n"                                                           // 10
    "std::string\n"                                                // 11
    "SimConfig::canonicalKey() const\n"                            // 12
    "{\n"                                                          // 13
    "    std::string s;\n"                                         // 14
    "    s += \"alpha=\" + std::to_string(alpha);\n"               // 15
    "    return s;\n"                                              // 16
    "}\n";                                                         // 17

std::vector<Diag>
lintConfig(const std::string &content, const std::set<std::string> &excl)
{
    SourceFile f = vplint::prepareSource("src/sim/config.cc", content,
                                         FileKind::Src);
    std::vector<Diag> out;
    vplint::lintConfigContract(f, excl, out);
    return out;
}

} // namespace

TEST(VplintConfig, UnserializedKeyIsFlaggedAtItsParseSite)
{
    std::vector<Diag> d = lintConfig(kConfigSrc, {});
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "config-key");
    EXPECT_EQ(d[0].line, 6);
    EXPECT_NE(d[0].message.find("'beta'"), std::string::npos);
}

TEST(VplintConfig, ExclusionListSilencesTheKey)
{
    EXPECT_TRUE(lintConfig(kConfigSrc, {"beta"}).empty());
}

TEST(VplintConfig, MissingCanonicalKeyFunctionIsItselfAnError)
{
    std::string noCanonical(kConfigSrc);
    noCanonical.resize(noCanonical.find("std::string\n"));
    std::vector<Diag> d = lintConfig(noCanonical, {});
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "config-key");
    EXPECT_NE(d[0].message.find("canonicalKey"), std::string::npos);
}

TEST(VplintConfig, ExclusionListParserSkipsCommentsAndBlanks)
{
    std::set<std::string> keys = vplint::parseExclusionList(
        "# header comment\n\nalpha\n  beta  # trailing comment\n");
    EXPECT_EQ(keys, (std::set<std::string>{"alpha", "beta"}));
}

// ---------------------------------------------------------------------
// Stats-manifest contract on synthetic inputs.
// ---------------------------------------------------------------------

namespace
{

const vplint::SchemaVersion kV3{"vpsim-stats-v3", 25};

std::vector<Diag>
checkManifest(const std::string &manifest,
              const std::set<std::string> &live,
              const vplint::SchemaVersion &src = kV3)
{
    std::vector<Diag> out;
    vplint::checkStatsManifest(manifest, "tools/vplint/stats_manifest.txt",
                               live, src, "src/sim/result_cache.cc", out);
    return out;
}

} // namespace

TEST(VplintManifest, FormatRoundTrips)
{
    std::set<std::string> names = {"a.hits", "b.misses"};
    std::string m = vplint::formatManifest("vpsim-stats-v3", names);
    EXPECT_EQ(vplint::manifestVersion(m), "vpsim-stats-v3");
    EXPECT_EQ(vplint::manifestNames(m), names);
}

TEST(VplintManifest, MatchingManifestIsClean)
{
    std::set<std::string> names = {"a.hits", "b.misses"};
    std::string m = vplint::formatManifest("vpsim-stats-v3", names);
    EXPECT_TRUE(checkManifest(m, names).empty());
}

TEST(VplintManifest, NewLiveStatIsDriftAgainstTheManifest)
{
    std::string m =
        vplint::formatManifest("vpsim-stats-v3", {"a.hits"});
    std::vector<Diag> d = checkManifest(m, {"a.hits", "c.new"});
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "stats-manifest");
    EXPECT_EQ(d[0].file, "tools/vplint/stats_manifest.txt");
    EXPECT_NE(d[0].message.find("c.new"), std::string::npos);
}

TEST(VplintManifest, RemovedLiveStatIsDriftToo)
{
    std::string m = vplint::formatManifest("vpsim-stats-v3",
                                           {"a.hits", "gone.stat"});
    std::vector<Diag> d = checkManifest(m, {"a.hits"});
    ASSERT_EQ(d.size(), 1u);
    EXPECT_NE(d[0].message.find("gone.stat"), std::string::npos);
}

TEST(VplintManifest, VersionMismatchPointsAtTheSourceDefinition)
{
    std::string m =
        vplint::formatManifest("vpsim-stats-v2", {"a.hits"});
    std::vector<Diag> d = checkManifest(m, {"a.hits"});
    ASSERT_EQ(d.size(), 1u);
    EXPECT_EQ(d[0].rule, "stats-manifest");
    EXPECT_EQ(d[0].file, "src/sim/result_cache.cc");
    EXPECT_EQ(d[0].line, 25);
}

TEST(VplintManifest, SchemaVersionParserFindsTheDefinition)
{
    vplint::SchemaVersion v = vplint::parseSchemaVersion(
        "// cache\n"
        "constexpr const char *statSchemaVersion = \"vpsim-stats-v9\";\n");
    EXPECT_EQ(v.version, "vpsim-stats-v9");
    EXPECT_EQ(v.line, 2);
}

} // namespace
