/**
 * @file
 * Tests for fast-forward checkpointing and SimPoint-style sampling:
 * serialization primitive round-trips, the on-disk CheckpointStore
 * (keying, sweep sharing, corruption tolerance), and the headline
 * guarantee — a run restored from a checkpoint produces stats
 * bit-identical to one that fast-forwarded live, across baseline /
 * STVP / MTVP and with the time-skip engine on or off.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>
#include <unistd.h>

#include "sim/checkpoint.hh"
#include "sim/serialize.hh"
#include "sim/simulation.hh"

namespace
{

using namespace vpsim;

// ---------------------------------------------------------------------
// Serialization primitives
// ---------------------------------------------------------------------

TEST(SerializeTest, PrimitivesRoundTrip)
{
    std::ostringstream os;
    CheckpointWriter cw(os);
    cw.u8(0xab);
    cw.u32(0xdeadbeef);
    cw.u64(0x0123456789abcdefull);
    cw.i64(-42);
    cw.b(true);
    cw.b(false);
    cw.str("hello checkpoint");
    const char raw[4] = {'V', 'P', 'C', 'K'};
    cw.bytes(raw, sizeof(raw));
    ASSERT_TRUE(cw.good());

    const std::string buf = os.str();
    CheckpointReader cr(buf);
    EXPECT_EQ(cr.u8(), 0xab);
    EXPECT_EQ(cr.u32(), 0xdeadbeefu);
    EXPECT_EQ(cr.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(cr.i64(), -42);
    EXPECT_TRUE(cr.b());
    EXPECT_FALSE(cr.b());
    EXPECT_EQ(cr.str(), "hello checkpoint");
    char back[4] = {};
    cr.bytes(back, sizeof(back));
    EXPECT_EQ(std::string(back, 4), "VPCK");
    EXPECT_TRUE(cr.good());
    EXPECT_TRUE(cr.atEnd());
}

TEST(SerializeTest, LittleEndianOnDisk)
{
    std::ostringstream os;
    CheckpointWriter cw(os);
    cw.u32(0x11223344);
    const std::string buf = os.str();
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x44);
    EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x11);
}

TEST(SerializeTest, OverrunIsStickyAndReturnsZeros)
{
    std::ostringstream os;
    CheckpointWriter cw(os);
    cw.u32(7);
    const std::string buf = os.str();

    CheckpointReader cr(buf);
    EXPECT_EQ(cr.u32(), 7u);
    EXPECT_TRUE(cr.atEnd());
    EXPECT_EQ(cr.u64(), 0u); // Past the end.
    EXPECT_FALSE(cr.good());
    EXPECT_EQ(cr.u32(), 0u); // Still failed: sticky.
    EXPECT_FALSE(cr.good());
    EXPECT_FALSE(cr.atEnd());
    char sink[8] = {1, 1, 1, 1, 1, 1, 1, 1};
    cr.bytes(sink, sizeof(sink));
    for (char c : sink)
        EXPECT_EQ(c, 0); // Zero-filled, never out-of-bounds.
}

// ---------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------

std::string
freshDir(const char *tag)
{
    return ::testing::TempDir() + "vpsim-ckpt-" + tag + "-" +
           std::to_string(::getpid());
}

SimConfig
ffConfig(VpMode mode, uint64_t timeSkip)
{
    SimConfig cfg;
    cfg.vpMode = mode;
    if (mode != VpMode::None)
        cfg.numContexts = 4;
    cfg.maxInsts = 60000;
    cfg.ffInsts = 40000;
    cfg.seed = 1;
    cfg.timeSkip = timeSkip != 0;
    return cfg;
}

/** Exact (bitwise, via ==) equality of every field and every stat. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.usefulInsts, b.usefulInsts);
    EXPECT_EQ(a.usefulIpc, b.usefulIpc); // Bit-identical double.
    EXPECT_EQ(a.halted, b.halted);
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (const auto &[name, value] : a.stats) {
        auto it = b.stats.find(name);
        ASSERT_NE(it, b.stats.end()) << "missing stat " << name;
        EXPECT_EQ(value, it->second) << "stat " << name;
    }
}

TEST(CheckpointStoreTest, DisabledStoreMissesAndDropsSaves)
{
    CheckpointStore store("");
    EXPECT_FALSE(store.enabled());
    // load() must return false without touching the cpu; exercised via
    // runWorkload: a run with no checkpointDir is the live-FF baseline
    // every other test compares against.
}

TEST(CheckpointStoreTest, KeyIgnoresDetailOnlyConfigFields)
{
    SimConfig base = ffConfig(VpMode::None, 1);
    SimConfig mtvp = ffConfig(VpMode::Mtvp, 1);
    mtvp.numContexts = 8;
    SimConfig skip = ffConfig(VpMode::None, 0);

    // vpMode / contexts / time-skip do not affect the emulated prefix
    // or the warmed tables, so all three share one checkpoint...
    EXPECT_EQ(CheckpointStore::keyString(base, "mcf"),
              CheckpointStore::keyString(mtvp, "mcf"));
    EXPECT_EQ(CheckpointStore::keyString(base, "mcf"),
              CheckpointStore::keyString(skip, "mcf"));

    // ...while anything warmup-relevant must split the key.
    SimConfig otherSeed = base;
    otherSeed.seed = 2;
    SimConfig otherFf = base;
    otherFf.ffInsts = 30000;
    EXPECT_NE(CheckpointStore::keyString(base, "mcf"),
              CheckpointStore::keyString(otherSeed, "mcf"));
    EXPECT_NE(CheckpointStore::keyString(base, "mcf"),
              CheckpointStore::keyString(otherFf, "mcf"));
    EXPECT_NE(CheckpointStore::keyString(base, "mcf"),
              CheckpointStore::keyString(base, "crafty"));
}

struct RoundTripCase
{
    const char *name;
    VpMode mode;
    uint64_t timeSkip;
};

class CheckpointRoundTrip
    : public ::testing::TestWithParam<RoundTripCase>
{
};

TEST_P(CheckpointRoundTrip, RestoreIsBitIdenticalToLiveFastForward)
{
    const RoundTripCase &c = GetParam();
    SimConfig cfg = ffConfig(c.mode, c.timeSkip);

    // A: live fast-forward, no store.
    SimResult live = runWorkload(cfg, "mcf");
    EXPECT_EQ(static_cast<uint64_t>(live.stat("sim.ffInsts")),
              cfg.ffInsts);

    // B: cold store — fast-forwards live, then publishes.
    cfg.checkpointDir = freshDir(c.name);
    SimResult cold = runWorkload(cfg, "mcf");

    // C: warm store — restores B's checkpoint.
    CheckpointStore store(cfg.checkpointDir);
    std::ifstream saved(store.entryPath(cfg, "mcf"));
    EXPECT_TRUE(saved.good()) << "checkpoint was not published";
    SimResult warm = runWorkload(cfg, "mcf");

    expectIdentical(live, cold);
    expectIdentical(live, warm);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, CheckpointRoundTrip,
    ::testing::Values(RoundTripCase{"baseline_skip", VpMode::None, 1},
                      RoundTripCase{"baseline_noskip", VpMode::None, 0},
                      RoundTripCase{"stvp_skip", VpMode::Stvp, 1},
                      RoundTripCase{"stvp_noskip", VpMode::Stvp, 0},
                      RoundTripCase{"mtvp_skip", VpMode::Mtvp, 1},
                      RoundTripCase{"mtvp_noskip", VpMode::Mtvp, 0}),
    [](const ::testing::TestParamInfo<RoundTripCase> &param) {
        return std::string(param.param.name);
    });

TEST(CheckpointStoreTest, SweepSiblingsShareOneCheckpointFile)
{
    SimConfig base = ffConfig(VpMode::None, 1);
    base.checkpointDir = freshDir("share");
    SimConfig mtvp = ffConfig(VpMode::Mtvp, 1);
    mtvp.checkpointDir = base.checkpointDir;

    CheckpointStore store(base.checkpointDir);
    EXPECT_EQ(store.entryPath(base, "mcf"), store.entryPath(mtvp, "mcf"));

    runWorkload(base, "mcf");
    runWorkload(mtvp, "mcf"); // Restores the baseline's checkpoint.

    // Exactly the shared entry exists (same path for both configs).
    std::ifstream saved(store.entryPath(mtvp, "mcf"));
    EXPECT_TRUE(saved.good());
}

TEST(CheckpointStoreTest, CorruptEntryDegradesToLiveFastForward)
{
    SimConfig cfg = ffConfig(VpMode::None, 1);
    SimResult live = runWorkload(cfg, "mcf");

    cfg.checkpointDir = freshDir("corrupt");
    CheckpointStore store(cfg.checkpointDir);
    runWorkload(cfg, "mcf"); // Publish a good entry...

    // ...then clobber it with a non-checkpoint payload. The magic check
    // must turn this into a miss, and the re-run must still match.
    {
        std::ofstream os(store.entryPath(cfg, "mcf"), std::ios::binary);
        os << "this is not a checkpoint";
    }
    SimResult rerun = runWorkload(cfg, "mcf");
    expectIdentical(live, rerun);
}

// ---------------------------------------------------------------------
// Sampled runs
// ---------------------------------------------------------------------

SimConfig
sampledConfig(VpMode mode)
{
    SimConfig cfg;
    cfg.vpMode = mode;
    if (mode != VpMode::None)
        cfg.numContexts = 4;
    cfg.maxInsts = 240000;
    cfg.ffInsts = 40000;
    cfg.sampleIntervals = 4;
    cfg.sampleIntervalInsts = 8000;
    cfg.sampleWarmupInsts = 4000;
    cfg.seed = 1;
    return cfg;
}

TEST(SampledRunTest, ReportsIntervalsAndConfidenceBounds)
{
    SimResult r = runWorkload(sampledConfig(VpMode::None), "mcf");
    EXPECT_EQ(static_cast<int>(r.stat("sim.sampledIntervals")), 4);
    EXPECT_GT(r.stat("sample.mean.cpi"), 0.0);
    EXPECT_GT(r.stat("sample.mean.ipc"), 0.0);
    EXPECT_GE(r.stat("sample.ci95.cpi"), 0.0);
    // Only the measured intervals accumulate detailed stats: 4 x 8000
    // measured plus 4 x 4000 unmeasured warmup commit instructions.
    EXPECT_GE(static_cast<uint64_t>(r.stat("sim.ffInsts")), 40000u);
    EXPECT_LT(r.usefulInsts, 60000u);
}

TEST(SampledRunTest, SampledRestoreIsBitIdentical)
{
    SimConfig cfg = sampledConfig(VpMode::Mtvp);
    SimResult live = runWorkload(cfg, "mcf");

    cfg.checkpointDir = freshDir("sampled");
    SimResult cold = runWorkload(cfg, "mcf");
    SimResult warm = runWorkload(cfg, "mcf");
    expectIdentical(live, cold);
    expectIdentical(live, warm);
}

TEST(SampledRunTest, SamplingKeysTheResultCache)
{
    // Sampling fields are result-affecting: two configs differing only
    // in sampling must never collide in the result cache.
    SimConfig a = sampledConfig(VpMode::None);
    SimConfig b = a;
    b.sampleIntervals = 8;
    SimConfig c = a;
    c.sampleIntervalInsts = 4000;
    SimConfig d = a;
    d.ffInsts = 80000;
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
    EXPECT_NE(a.canonicalKey(), c.canonicalKey());
    EXPECT_NE(a.canonicalKey(), d.canonicalKey());

    // The checkpoint directory is telemetry-like (where to publish),
    // not result-affecting: same key either way.
    SimConfig e = a;
    e.checkpointDir = "/tmp/somewhere";
    EXPECT_EQ(a.canonicalKey(), e.canonicalKey());
}

} // namespace
