/** ISA definition tests: encode/decode round trips, operand formats,
 *  instruction classification, and the opcode name table. */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/isa.hh"

using namespace vpsim;

namespace
{

DecodedInst
mk(Opcode op, int rd, int rs1, int rs2, int64_t imm = 0)
{
    DecodedInst d;
    d.op = op;
    d.rd = rd;
    d.rs1 = rs1;
    d.rs2 = rs2;
    d.imm = imm;
    if (op == Opcode::FMA)
        d.rs3 = rd;
    return d;
}

void
expectRoundTrip(const DecodedInst &in)
{
    DecodedInst out = decode(encode(in));
    EXPECT_EQ(out.op, in.op) << opcodeName(in.op);
    EXPECT_EQ(out.rd, in.rd) << opcodeName(in.op);
    EXPECT_EQ(out.rs1, in.rs1) << opcodeName(in.op);
    EXPECT_EQ(out.rs2, in.rs2) << opcodeName(in.op);
    EXPECT_EQ(out.rs3, in.rs3) << opcodeName(in.op);
    EXPECT_EQ(out.imm, in.imm) << opcodeName(in.op);
}

} // namespace

TEST(Isa, IntAluRoundTrip)
{
    for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::MUL, Opcode::DIVQ,
                      Opcode::REM, Opcode::AND, Opcode::OR, Opcode::XOR,
                      Opcode::SLL, Opcode::SRL, Opcode::SRA, Opcode::SLT,
                      Opcode::SLTU}) {
        expectRoundTrip(mk(op, 3, 7, 31));
        expectRoundTrip(mk(op, 31, 1, 2));
    }
}

TEST(Isa, ImmediateRoundTrip)
{
    expectRoundTrip(mk(Opcode::ADDI, 5, 6, -1, -32768));
    expectRoundTrip(mk(Opcode::ADDI, 5, 6, -1, 32767));
    expectRoundTrip(mk(Opcode::SLTI, 1, 2, -1, -5));
    // Logical/shift immediates are zero-extended.
    expectRoundTrip(mk(Opcode::ORI, 5, 6, -1, 0xffff));
    expectRoundTrip(mk(Opcode::ANDI, 5, 6, -1, 0x8000));
    expectRoundTrip(mk(Opcode::SLLI, 5, 6, -1, 63));
    expectRoundTrip(mk(Opcode::LUI, 7, -1, -1, -1));
}

TEST(Isa, MemoryRoundTrip)
{
    expectRoundTrip(mk(Opcode::LD, 4, 9, -1, 1024));
    expectRoundTrip(mk(Opcode::LW, 4, 9, -1, -8));
    expectRoundTrip(mk(Opcode::LBU, 4, 9, -1, 3));
    // Stores carry data in rs2, base in rs1, no destination.
    DecodedInst sd = mk(Opcode::SD, -1, 9, 4, -16);
    expectRoundTrip(sd);
    DecodedInst fld = mk(Opcode::FLD, 32 + 5, 9, -1, 8);
    expectRoundTrip(fld);
    DecodedInst fsd = mk(Opcode::FSD, -1, 9, 32 + 5, 8);
    expectRoundTrip(fsd);
}

TEST(Isa, ControlRoundTrip)
{
    for (Opcode op : {Opcode::BEQ, Opcode::BNE, Opcode::BLT, Opcode::BGE,
                      Opcode::BLTU, Opcode::BGEU}) {
        expectRoundTrip(mk(op, -1, 5, 6, -100));
        expectRoundTrip(mk(op, -1, 5, 6, 32767));
    }
    expectRoundTrip(mk(Opcode::JAL, 31, -1, -1, -1000));
    expectRoundTrip(mk(Opcode::JAL, 31, -1, -1, (1 << 20) - 1));
    expectRoundTrip(mk(Opcode::JALR, 31, 4, -1, 16));
}

TEST(Isa, FpRoundTrip)
{
    int f = numIntRegs;
    for (Opcode op : {Opcode::FADD, Opcode::FSUB, Opcode::FMUL,
                      Opcode::FDIV, Opcode::FMIN, Opcode::FMAX}) {
        expectRoundTrip(mk(op, f + 1, f + 2, f + 3));
    }
    DecodedInst fma = mk(Opcode::FMA, f + 1, f + 2, f + 3);
    expectRoundTrip(fma);
    EXPECT_EQ(decode(encode(fma)).rs3, f + 1);

    DecodedInst sq;
    sq.op = Opcode::FSQRT;
    sq.rd = f + 4;
    sq.rs1 = f + 9;
    expectRoundTrip(sq);

    DecodedInst cvt;
    cvt.op = Opcode::FCVTDL;
    cvt.rd = f + 2;
    cvt.rs1 = 7;
    expectRoundTrip(cvt);

    DecodedInst cmp = mk(Opcode::FLT, 3, f + 1, f + 2);
    expectRoundTrip(cmp);
}

TEST(Isa, WritesToR0Normalize)
{
    DecodedInst d = mk(Opcode::ADD, 0, 1, 2);
    DecodedInst out = decode(encode(d));
    EXPECT_EQ(out.rd, -1);
    EXPECT_FALSE(out.writesReg());
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(mk(Opcode::LD, 1, 2, -1).isLoad());
    EXPECT_TRUE(mk(Opcode::SD, -1, 2, 3).isStore());
    EXPECT_TRUE(mk(Opcode::SD, -1, 2, 3).isMem());
    EXPECT_TRUE(mk(Opcode::BEQ, -1, 1, 2).isBranch());
    EXPECT_TRUE(mk(Opcode::JAL, 31, -1, -1).isJump());
    EXPECT_FALSE(mk(Opcode::JAL, 31, -1, -1).isBranch());
    EXPECT_TRUE(mk(Opcode::JAL, 31, -1, -1).isControl());
    EXPECT_TRUE(mk(Opcode::FADD, 33, 34, 35).isFp());
    EXPECT_FALSE(mk(Opcode::ADD, 1, 2, 3).isFp());
    DecodedInst halt;
    halt.op = Opcode::HALT;
    EXPECT_TRUE(halt.isHalt());
}

TEST(Isa, OpClassesAndLatencies)
{
    EXPECT_EQ(mk(Opcode::ADD, 1, 2, 3).opClass(), OpClass::IntAlu);
    EXPECT_EQ(mk(Opcode::MUL, 1, 2, 3).opClass(), OpClass::IntMul);
    EXPECT_EQ(mk(Opcode::LD, 1, 2, -1).opClass(), OpClass::Load);
    EXPECT_EQ(mk(Opcode::SD, -1, 2, 3).opClass(), OpClass::Store);
    EXPECT_EQ(mk(Opcode::FADD, 33, 34, 35).opClass(), OpClass::FpAdd);
    EXPECT_EQ(mk(Opcode::FMUL, 33, 34, 35).opClass(), OpClass::FpMul);

    EXPECT_EQ(mk(Opcode::ADD, 1, 2, 3).execLatency(), 1);
    EXPECT_GT(mk(Opcode::DIVQ, 1, 2, 3).execLatency(), 1);
    EXPECT_GT(mk(Opcode::FDIV, 33, 34, 35).execLatency(),
              mk(Opcode::FADD, 33, 34, 35).execLatency());
}

TEST(Isa, MemBytes)
{
    EXPECT_EQ(mk(Opcode::LD, 1, 2, -1).memBytes(), 8);
    EXPECT_EQ(mk(Opcode::LW, 1, 2, -1).memBytes(), 4);
    EXPECT_EQ(mk(Opcode::LBU, 1, 2, -1).memBytes(), 1);
    EXPECT_EQ(mk(Opcode::SD, -1, 2, 3).memBytes(), 8);
    EXPECT_EQ(mk(Opcode::SB, -1, 2, 3).memBytes(), 1);
    EXPECT_EQ(mk(Opcode::FLD, 33, 2, -1).memBytes(), 8);
    EXPECT_EQ(mk(Opcode::ADD, 1, 2, 3).memBytes(), 0);
}

TEST(Isa, NameTableBijective)
{
    for (int i = 0; i < static_cast<int>(Opcode::NUM_OPCODES); ++i) {
        Opcode op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
    }
    EXPECT_EQ(opcodeFromName("bogus"), Opcode::NUM_OPCODES);
}

TEST(Isa, RegNames)
{
    EXPECT_EQ(regName(0), "r0");
    EXPECT_EQ(regName(31), "r31");
    EXPECT_EQ(regName(32), "f0");
    EXPECT_EQ(regName(63), "f31");
    EXPECT_EQ(regName(-1), "-");
    EXPECT_TRUE(isFpReg(40));
    EXPECT_FALSE(isFpReg(5));
}

TEST(Isa, UnknownOpcodeDecodesAsNop)
{
    uint32_t word = 63u << 26;
    EXPECT_EQ(decode(word).op, Opcode::NOP);
}

TEST(Isa, DisassembleSmoke)
{
    EXPECT_EQ(disassemble(mk(Opcode::LD, 4, 9, -1, 16)), "ld r4, 16(r9)");
    EXPECT_EQ(disassemble(mk(Opcode::SD, -1, 9, 4, -8)), "sd r4, -8(r9)");
    EXPECT_EQ(disassemble(mk(Opcode::BEQ, -1, 1, 2, 5)),
              "beq r1, r2, +5");
    std::string s = disassemble(mk(Opcode::FADD, 33, 34, 35));
    EXPECT_NE(s.find("fadd"), std::string::npos);
    EXPECT_NE(s.find("f1"), std::string::npos);
}
