/**
 * @file
 * CPI-stack accounting tests. The load-bearing property is the
 * sum-to-cycles invariant: every simulated cycle of every hardware
 * context lands in exactly one slot, so per-context slot counts sum
 * *exactly* to total cycles — across baseline, STVP, MTVP (the Figure-3
 * realistic configuration), spawn-only, and multi-value runs. The rest
 * checks stat registration and attribution plausibility.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu_test_util.hh"
#include "sim/cpi_stack.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

using namespace vpsim;
using namespace vptest;

namespace
{

/** Per-context slot sums from a SimResult's exported stats. */
double
slotSum(const SimResult &r, int ctx)
{
    double sum = 0.0;
    for (unsigned s = 0; s < numCpiSlots; ++s) {
        sum += r.stat(csprintf("cpi.t%d.%s", ctx,
                               cpiSlotName(static_cast<CpiSlot>(s))));
    }
    return sum;
}

/** Assert the invariant on every context of a finished run. */
void
expectSumsToCycles(const SimResult &r, int numContexts)
{
    ASSERT_GT(r.cycles, 0u);
    for (int ctx = 0; ctx < numContexts; ++ctx) {
        EXPECT_EQ(slotSum(r, ctx), static_cast<double>(r.cycles))
            << "context " << ctx << " of " << r.workload;
    }
    // The aggregate slots cover every context's every cycle.
    double all = 0.0;
    for (unsigned s = 0; s < numCpiSlots; ++s) {
        all += r.stat(csprintf("cpi.all.%s",
                               cpiSlotName(static_cast<CpiSlot>(s))));
    }
    EXPECT_EQ(all, static_cast<double>(r.cycles) * numContexts);
}

SimConfig
quick(uint64_t insts = 3000)
{
    SimConfig cfg;
    cfg.maxInsts = insts;
    return cfg;
}

} // namespace

TEST(CpiStack, SlotNamesAndDescsAreTotal)
{
    for (unsigned s = 0; s < numCpiSlots; ++s) {
        auto slot = static_cast<CpiSlot>(s);
        EXPECT_STRNE(cpiSlotName(slot), "?");
        EXPECT_GT(std::string(cpiSlotDesc(slot)).size(), 10u);
    }
}

TEST(CpiStack, AttributeAndAccessors)
{
    StatGroup stats;
    CpiStack cpi(stats, 2);
    cpi.attribute(0, CpiSlot::Base);
    cpi.attribute(0, CpiSlot::Base);
    cpi.attribute(0, CpiSlot::DcacheMem);
    cpi.attribute(1, CpiSlot::Idle);

    EXPECT_EQ(cpi.count(0, CpiSlot::Base), 2u);
    EXPECT_EQ(cpi.count(0, CpiSlot::DcacheMem), 1u);
    EXPECT_EQ(cpi.count(1, CpiSlot::Idle), 1u);
    EXPECT_EQ(cpi.total(0), 3u);
    EXPECT_EQ(cpi.total(1), 1u);
    EXPECT_EQ(cpi.slotTotal(CpiSlot::Base), 2u);

    // Registered as stats, per context and aggregated.
    EXPECT_EQ(stats.get("cpi.t0.base"), 2.0);
    EXPECT_EQ(stats.get("cpi.t1.idle"), 1.0);
    EXPECT_EQ(stats.get("cpi.all.base"), 2.0);

    std::ostringstream os;
    cpi.printReport(os);
    EXPECT_NE(os.str().find("dcacheMem"), std::string::npos);
    EXPECT_NE(os.str().find("cycles"), std::string::npos);
}

TEST(CpiStack, BaselineSumsToCycles)
{
    SimConfig cfg = quick();
    SimResult r = runWorkload(cfg, "mcf");
    expectSumsToCycles(r, 1);
    // A 16MB pointer chase is memory-bound: the stack must say so.
    EXPECT_GT(r.stat("cpi.t0.dcacheMem"), 0.5 * r.cycles);
}

TEST(CpiStack, MemoryBoundStacksHigherThanComputeBound)
{
    // Attribution plausibility: the pointer chase (mcf) must show a
    // larger memory-blocked share than the compute-bound crafty.
    SimConfig cfg = quick();
    SimResult mcf = runWorkload(cfg, "mcf");
    SimResult crafty = runWorkload(cfg, "crafty");
    expectSumsToCycles(crafty, 1);
    double mcfShare = mcf.stat("cpi.t0.dcacheMem") / mcf.cycles;
    double craftyShare =
        crafty.stat("cpi.t0.dcacheMem") / crafty.cycles;
    EXPECT_GT(mcfShare, craftyShare);
    EXPECT_GT(crafty.stat("cpi.t0.base"), 0.0);
}

TEST(CpiStack, StvpSumsToCycles)
{
    SimConfig cfg = quick();
    cfg.vpMode = VpMode::Stvp;
    cfg.predictor = PredictorKind::WangFranklin;
    SimResult r = runWorkload(cfg, "mcf");
    expectSumsToCycles(r, 1);
}

TEST(CpiStack, Fig3RealisticMtvpSumsToCycles)
{
    // The Figure-3 configuration: realistic Wang-Franklin predictor,
    // ILP-pred selector, MTVP over 4 and 8 contexts.
    for (int ctxs : {4, 8}) {
        SimConfig cfg = quick();
        cfg.vpMode = VpMode::Mtvp;
        cfg.numContexts = ctxs;
        cfg.predictor = PredictorKind::WangFranklin;
        cfg.selector = SelectorKind::IlpPred;
        for (const char *wl : {"mcf", "gzip.g", "equake"}) {
            SimResult r = runWorkload(cfg, wl);
            expectSumsToCycles(r, ctxs);
        }
    }
}

TEST(CpiStack, SpawnOnlyAndMultiValueSumToCycles)
{
    SimConfig cfg = quick();
    cfg.vpMode = VpMode::SpawnOnly;
    cfg.numContexts = 4;
    expectSumsToCycles(runWorkload(cfg, "mcf"), 4);

    cfg = quick();
    cfg.vpMode = VpMode::Mtvp;
    cfg.numContexts = 8;
    cfg.predictor = PredictorKind::Dfcm;
    cfg.maxValuesPerSpawn = 4;
    expectSumsToCycles(runWorkload(cfg, "mcf"), 8);
}

TEST(CpiStack, MtvpChargesSpawnAndIdleOnSpareContexts)
{
    SimConfig cfg = mtvpConfig(4);
    cfg.maxCycles = 2'000'000;
    CpuRun run = runAsm(chaseKernel(400), cfg, chaseData());
    const CpiStack &cpi = run.cpu->cpiStack();
    for (int ctx = 0; ctx < 4; ++ctx)
        EXPECT_EQ(cpi.total(ctx), run.cycles()) << "context " << ctx;
    // Spare contexts sat idle at least part of the run, and spawning
    // charged some overhead somewhere.
    EXPECT_GT(cpi.slotTotal(CpiSlot::Idle), 0u);
    EXPECT_GT(cpi.slotTotal(CpiSlot::SpawnOverhead), 0u);
}

TEST(CpiStack, ZeroPaddedNamesAvoidDoubleDigitCollisions)
{
    // With more than 9 contexts the unpadded scheme made "cpi.t1"
    // a prefix of "cpi.t1x"; per-thread stats are now zero-padded.
    StatGroup stats;
    CpiStack cpi(stats, 12);
    cpi.attribute(3, CpiSlot::Base);
    cpi.attribute(11, CpiSlot::Idle);

    // Canonical names are padded; double digits are untouched.
    EXPECT_NE(stats.find("cpi.t03.base"), nullptr);
    EXPECT_NE(stats.find("cpi.t11.idle"), nullptr);
    EXPECT_EQ(stats.get("cpi.t03.base"), 1.0);
    EXPECT_EQ(stats.get("cpi.t11.idle"), 1.0);

    // Old single-digit spellings keep working via the legacy alias...
    EXPECT_EQ(stats.find("cpi.t3.base"), stats.find("cpi.t03.base"));
    EXPECT_EQ(stats.get("cpi.t3.base"), 1.0);

    // ...but dumps export only the canonical padded names.
    std::ostringstream os;
    stats.dump(os);
    EXPECT_NE(os.str().find("cpi.t03.base"), std::string::npos);
    EXPECT_EQ(os.str().find("cpi.t3.base"), std::string::npos);
}

TEST(CpiStack, LegacyAliasRewritesSingleDigitOnly)
{
    EXPECT_EQ(legacyStatAlias("cpi.t3.base"), "cpi.t03.base");
    EXPECT_EQ(legacyStatAlias("cpi.t0.idle"), "cpi.t00.idle");
    EXPECT_EQ(legacyStatAlias("cpi.t12.base"), "");  // Already padded.
    EXPECT_EQ(legacyStatAlias("cpi.all.base"), "");
    EXPECT_EQ(legacyStatAlias("vp.followed"), "");
    EXPECT_EQ(legacyStatAlias("cpi.t3"), "");        // No slot suffix.
}

TEST(CpiStack, SimResultAcceptsLegacyNames)
{
    SimConfig cfg = quick();
    cfg.vpMode = VpMode::Mtvp;
    cfg.numContexts = 4;
    SimResult r = runWorkload(cfg, "mcf");
    for (int ctx = 0; ctx < 4; ++ctx) {
        EXPECT_EQ(r.stat(csprintf("cpi.t%d.idle", ctx)),
                  r.stat(csprintf("cpi.t%02d.idle", ctx)));
    }
}
