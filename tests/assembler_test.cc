/** Assembler tests: labels, pseudo-instructions, directives, error
 *  reporting, and functional round trips through the emulator. */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "emu/memory.hh"
#include "isa/assembler.hh"

using namespace vpsim;

namespace
{

/** Assemble + run to halt; returns the final architectural state. */
ArchState
runProgram(const std::string &src, MainMemory &mem,
           uint64_t maxInsts = 100000)
{
    Program p = assemble(src);
    mem.loadProgram(p);
    Emulator emu(mem);
    ArchState st;
    st.pc = p.base;
    emu.run(st, maxInsts);
    return st;
}

std::optional<Program>
tryAssemble(const std::string &src, std::string &err)
{
    return assembleOrError(src, 0x1000, err);
}

} // namespace

TEST(Assembler, BasicArithmetic)
{
    MainMemory mem;
    ArchState st = runProgram(R"(
        addi r1, r0, 10
        addi r2, r0, 32
        add  r3, r1, r2
        mul  r4, r1, r2
        halt
    )", mem);
    EXPECT_EQ(st.readReg(3), 42u);
    EXPECT_EQ(st.readReg(4), 320u);
}

TEST(Assembler, LabelsAndLoops)
{
    MainMemory mem;
    ArchState st = runProgram(R"(
        addi r1, r0, 0
        addi r2, r0, 10
    loop:
        addi r1, r1, 3
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )", mem);
    EXPECT_EQ(st.readReg(1), 30u);
}

TEST(Assembler, LiExpansionValues)
{
    MainMemory mem;
    ArchState st = runProgram(R"(
        li r1, 0
        li r2, 42
        li r3, -42
        li r4, 32767
        li r5, -32768
        li r6, 65536
        li r7, 0x123456789abcdef0
        li r8, -1
        li r9, 0x8000000000000000
        halt
    )", mem);
    EXPECT_EQ(st.readReg(1), 0u);
    EXPECT_EQ(st.readReg(2), 42u);
    EXPECT_EQ(st.readReg(3), static_cast<RegVal>(-42));
    EXPECT_EQ(st.readReg(4), 32767u);
    EXPECT_EQ(st.readReg(5), static_cast<RegVal>(-32768));
    EXPECT_EQ(st.readReg(6), 65536u);
    EXPECT_EQ(st.readReg(7), 0x123456789abcdef0ull);
    EXPECT_EQ(st.readReg(8), ~RegVal{0});
    EXPECT_EQ(st.readReg(9), 0x8000000000000000ull);
}

TEST(Assembler, PseudoOps)
{
    MainMemory mem;
    ArchState st = runProgram(R"(
        addi r1, r0, 7
        mv   r2, r1
        subi r3, r1, 2
        b    over
        addi r2, r0, 0     # skipped
    over:
        halt
    )", mem);
    EXPECT_EQ(st.readReg(2), 7u);
    EXPECT_EQ(st.readReg(3), 5u);
}

TEST(Assembler, CallAndRet)
{
    MainMemory mem;
    ArchState st = runProgram(R"(
        addi r1, r0, 1
        jal  r31, func
        addi r1, r1, 100
        halt
    func:
        addi r1, r1, 10
        ret
    )", mem);
    EXPECT_EQ(st.readReg(1), 111u);
}

TEST(Assembler, DataDirectives)
{
    std::string err;
    auto p = tryAssemble(R"(
        b start
    val: .dword 0x1122334455667788
    w:   .word 0xdeadbeef
    start:
        halt
    )", err);
    ASSERT_TRUE(p.has_value()) << err;
    MainMemory mem;
    mem.loadProgram(*p);
    EXPECT_EQ(mem.read64(p->symbol("val")), 0x1122334455667788ull);
    EXPECT_EQ(mem.read32(p->symbol("w")), 0xdeadbeefu);
}

TEST(Assembler, SymbolTable)
{
    std::string err;
    auto p = tryAssemble("a:\nnop\nb:\nnop\nc: halt\n", err);
    ASSERT_TRUE(p.has_value()) << err;
    EXPECT_EQ(p->symbol("a"), 0x1000u);
    EXPECT_EQ(p->symbol("b"), 0x1004u);
    EXPECT_EQ(p->symbol("c"), 0x1008u);
    EXPECT_EQ(p->end(), 0x100cu + 0); // three words total
}

TEST(Assembler, CommentsAndBlankLines)
{
    std::string err;
    auto p = tryAssemble(R"(
        # full-line comment
        nop            ; trailing comment
        ; another
        halt           # done
    )", err);
    ASSERT_TRUE(p.has_value()) << err;
    EXPECT_EQ(p->words.size(), 2u);
}

TEST(Assembler, ErrorUnknownMnemonic)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("frobnicate r1, r2\n", err).has_value());
    EXPECT_NE(err.find("unknown mnemonic"), std::string::npos);
}

TEST(Assembler, ErrorBadRegister)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("add r1, r2, r99\n", err).has_value());
    EXPECT_FALSE(tryAssemble("add r1, r2, x3\n", err).has_value());
}

TEST(Assembler, ErrorWrongRegisterClass)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("fadd f1, f2, r3\n", err).has_value());
    EXPECT_FALSE(tryAssemble("add r1, f2, r3\n", err).has_value());
}

TEST(Assembler, ErrorUndefinedLabel)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("beq r1, r2, nowhere\n", err).has_value());
    EXPECT_NE(err.find("nowhere"), std::string::npos);
}

TEST(Assembler, ErrorDuplicateLabel)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("x:\nnop\nx:\nhalt\n", err).has_value());
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(Assembler, ErrorOperandCount)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("add r1, r2\n", err).has_value());
    EXPECT_FALSE(tryAssemble("halt r1\n", err).has_value());
}

TEST(Assembler, ErrorBadMemOperand)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("ld r1, r2\n", err).has_value());
    EXPECT_FALSE(tryAssemble("ld r1, 8(f2)\n", err).has_value());
}

TEST(Assembler, ErrorLineNumbers)
{
    std::string err;
    EXPECT_FALSE(tryAssemble("nop\nnop\nbogus\n", err).has_value());
    EXPECT_NE(err.find("line 3"), std::string::npos);
}

TEST(Assembler, BranchRangeLimit)
{
    // A branch straddling more than +/-32K words must be rejected.
    std::string src = "start: nop\n";
    for (int i = 0; i < 40000; ++i)
        src += "nop\n";
    src += "b start\nhalt\n";
    std::string err;
    EXPECT_FALSE(tryAssemble(src, err).has_value());
    EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(Assembler, StoreLoadRoundTrip)
{
    MainMemory mem;
    ArchState st = runProgram(R"(
        li   r1, 0x200000
        li   r2, 0x0102030405060708
        sd   r2, 0(r1)
        ld   r3, 0(r1)
        lw   r4, 0(r1)
        lbu  r5, 7(r1)
        sb   r5, 64(r1)
        lbu  r6, 64(r1)
        halt
    )", mem);
    EXPECT_EQ(st.readReg(3), 0x0102030405060708ull);
    EXPECT_EQ(st.readReg(4), 0x05060708u);
    EXPECT_EQ(st.readReg(5), 0x01u);
    EXPECT_EQ(st.readReg(6), 0x01u);
}
