/** Workload tests (parameterized over every registered workload):
 *  assembly, functional execution to HALT, footprint expectations, and
 *  deterministic data-set construction. */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "emu/memory.hh"
#include "workloads/workload.hh"

using namespace vpsim;

namespace
{

class WorkloadTest : public ::testing::TestWithParam<const Workload *>
{
};

std::string
paramName(const ::testing::TestParamInfo<const Workload *> &info)
{
    std::string n = info.param->name();
    for (char &c : n) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

} // namespace

TEST(WorkloadRegistry, PaperBenchmarkRoster)
{
    // 17 SPECint entries and 15 SPECfp entries, matching Figure 1's
    // x-axes (per-input variants included), plus the ".long"
    // fast-forward/sampling variant (excluded from figure rosters).
    EXPECT_EQ(workloadsByCategory(BenchCategory::Int).size(), 18u);
    EXPECT_EQ(workloadsByCategory(BenchCategory::Fp).size(), 15u);
    EXPECT_EQ(allWorkloads().size(), 33u);
}

TEST(WorkloadRegistry, NamesAreUniqueAndFindable)
{
    for (const Workload *w : allWorkloads()) {
        EXPECT_EQ(findWorkload(w->name()), w);
        EXPECT_FALSE(w->description().empty());
    }
    EXPECT_EQ(findWorkload("not-a-benchmark"), nullptr);
}

TEST_P(WorkloadTest, RunsToHalt)
{
    const Workload *w = GetParam();
    MainMemory mem;
    Addr entry = w->build(mem, 1);
    Emulator emu(mem);
    ArchState st;
    st.pc = entry;
    // ".long" variants are deliberately ~13M dynamic insts.
    const std::string name = w->name();
    const bool isLong = name.size() >= 5 &&
                        name.compare(name.size() - 5, 5, ".long") == 0;
    const uint64_t bound = isLong ? 20'000'000 : 5'000'000;
    uint64_t executed = emu.run(st, bound);
    EXPECT_LT(executed, bound)
        << w->name() << " did not halt within the instruction bound";
    EXPECT_GT(executed, 10'000u)
        << w->name() << " is too short to exercise the pipeline";
}

TEST_P(WorkloadTest, BuildIsDeterministic)
{
    const Workload *w = GetParam();
    MainMemory a;
    MainMemory b;
    Addr ea = w->build(a, 7);
    Addr eb = w->build(b, 7);
    EXPECT_EQ(ea, eb);
    EXPECT_TRUE(a.contentEquals(b)) << w->name();
}

TEST_P(WorkloadTest, SeedChangesData)
{
    const Workload *w = GetParam();
    MainMemory a;
    MainMemory b;
    w->build(a, 1);
    w->build(b, 2);
    // Code is identical but generated data must differ.
    EXPECT_FALSE(a.contentEquals(b)) << w->name();
}

TEST_P(WorkloadTest, TouchesDeclaredFootprint)
{
    const Workload *w = GetParam();
    MainMemory mem;
    w->build(mem, 1);
    // Every kernel's generated data set occupies at least ~64KB; the
    // memory-bound ones build multi-MB footprints.
    EXPECT_GT(mem.mappedPages() * MainMemory::pageBytes, 64u * 1024)
        << w->name();
}

TEST(WorkloadFootprints, MemoryBoundKernelsExceedL3)
{
    for (const char *name : {"mcf", "vpr.r", "vortex", "twolf", "art.1",
                             "wupwise", "mgrid"}) {
        const Workload *w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        MainMemory mem;
        w->build(mem, 1);
        EXPECT_GT(mem.mappedPages() * MainMemory::pageBytes,
                  4u * 1024 * 1024)
            << name << " must exceed the 4MB L3";
    }
}

TEST(WorkloadFootprints, ComputeBoundKernelsFitInCaches)
{
    for (const char *name : {"crafty", "sixtrack", "mesa", "eon.r"}) {
        const Workload *w = findWorkload(name);
        ASSERT_NE(w, nullptr) << name;
        MainMemory mem;
        w->build(mem, 1);
        EXPECT_LT(mem.mappedPages() * MainMemory::pageBytes,
                  4u * 1024 * 1024)
            << name << " should be cache-resident";
    }
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest,
                         ::testing::ValuesIn(allWorkloads()), paramName);
