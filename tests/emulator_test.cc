/** Functional emulator tests: instruction semantics, memory access
 *  through store segments, control flow, FP behaviour, and edge cases
 *  (division by zero, overflow, wild addresses). */

#include <gtest/gtest.h>

#include <limits>

#include "emu/emulator.hh"
#include "emu/memory.hh"
#include "isa/assembler.hh"
#include "sim/logging.hh"

using namespace vpsim;

namespace
{

class EmulatorTest : public ::testing::Test
{
  protected:
    ArchState
    run(const std::string &src)
    {
        Program p = assemble(src);
        mem.loadProgram(p);
        Emulator emu(mem);
        ArchState st;
        st.pc = p.base;
        emu.run(st, 100000);
        return st;
    }

    MainMemory mem;
};

struct AluCase
{
    const char *body;
    int64_t a;
    int64_t b;
    uint64_t expect;
};

class AluParamTest : public ::testing::TestWithParam<AluCase>
{
};

} // namespace

TEST_P(AluParamTest, Semantics)
{
    const AluCase &c = GetParam();
    MainMemory mem;
    std::string src = csprintf(R"(
        li r1, %lld
        li r2, %lld
        %s
        halt
    )", static_cast<long long>(c.a), static_cast<long long>(c.b), c.body);
    Program p = assemble(src);
    mem.loadProgram(p);
    Emulator emu(mem);
    ArchState st;
    st.pc = p.base;
    emu.run(st, 1000);
    EXPECT_EQ(st.readReg(3), c.expect) << c.body;
}

INSTANTIATE_TEST_SUITE_P(
    IntAlu, AluParamTest,
    ::testing::Values(
        AluCase{"add r3, r1, r2", 5, 7, 12},
        AluCase{"add r3, r1, r2", -1, 1, 0},
        AluCase{"sub r3, r1, r2", 5, 7, static_cast<uint64_t>(-2)},
        AluCase{"mul r3, r1, r2", -3, 4, static_cast<uint64_t>(-12)},
        AluCase{"divq r3, r1, r2", 42, 5, 8},
        AluCase{"divq r3, r1, r2", -42, 5, static_cast<uint64_t>(-8)},
        AluCase{"divq r3, r1, r2", 42, 0, 0}, // div by zero -> 0
        AluCase{"rem r3, r1, r2", 42, 5, 2},
        AluCase{"rem r3, r1, r2", 42, 0, 42}, // rem by zero -> dividend
        AluCase{"and r3, r1, r2", 0xff, 0x0f, 0x0f},
        AluCase{"or r3, r1, r2", 0xf0, 0x0f, 0xff},
        AluCase{"xor r3, r1, r2", 0xff, 0x0f, 0xf0},
        AluCase{"sll r3, r1, r2", 1, 40, uint64_t{1} << 40},
        AluCase{"sll r3, r1, r2", 1, 64, 1}, // shift amount masked
        AluCase{"srl r3, r1, r2", -1, 60, 0xf},
        AluCase{"sra r3, r1, r2", -16, 2, static_cast<uint64_t>(-4)},
        AluCase{"slt r3, r1, r2", -1, 0, 1},
        AluCase{"slt r3, r1, r2", 0, -1, 0},
        AluCase{"sltu r3, r1, r2", -1, 0, 0}, // unsigned: -1 is huge
        AluCase{"slti r3, r1, 0", -5, 0, 1},
        AluCase{"addi r3, r1, -3", 10, 0, 7},
        AluCase{"xori r3, r1, 0xffff", 0, 0, 0xffff},
        AluCase{"srai r3, r1, 4", -256, 0, static_cast<uint64_t>(-16)}));

TEST_F(EmulatorTest, DivOverflowWraps)
{
    ArchState st = run(R"(
        li r1, 0x8000000000000000
        li r2, -1
        divq r3, r1, r2
        rem  r4, r1, r2
        halt
    )");
    EXPECT_EQ(st.readReg(3), 0x8000000000000000ull);
    EXPECT_EQ(st.readReg(4), 0u);
}

TEST_F(EmulatorTest, LuiBuildsUpperBits)
{
    ArchState st = run("lui r1, 0x1234\nhalt\n");
    EXPECT_EQ(st.readReg(1), 0x12340000ull);
}

TEST_F(EmulatorTest, BranchesTakenAndNot)
{
    ArchState st = run(R"(
        addi r1, r0, 5
        addi r2, r0, 5
        addi r3, r0, 0
        bne  r1, r2, skip1
        addi r3, r3, 1       # executed (not taken)
    skip1:
        beq  r1, r2, skip2
        addi r3, r3, 100     # skipped (taken)
    skip2:
        blt  r1, r2, skip3
        addi r3, r3, 2       # executed
    skip3:
        bge  r1, r2, done
        addi r3, r3, 100     # skipped
    done:
        halt
    )");
    EXPECT_EQ(st.readReg(3), 3u);
}

TEST_F(EmulatorTest, UnsignedBranches)
{
    ArchState st = run(R"(
        li   r1, -1          # unsigned max
        addi r2, r0, 1
        addi r3, r0, 0
        bltu r2, r1, a
        addi r3, r3, 100
    a:
        bgeu r1, r2, b
        addi r3, r3, 100
    b:
        addi r3, r3, 1
        halt
    )");
    EXPECT_EQ(st.readReg(3), 1u);
}

TEST_F(EmulatorTest, JalLinksAndJumps)
{
    Program p = assemble(R"(
        jal r5, target
        halt
    target:
        halt
    )");
    mem.loadProgram(p);
    Emulator emu(mem);
    ArchState st;
    st.pc = p.base;
    EmuStep s = emu.step(st, nullptr);
    EXPECT_TRUE(s.taken);
    EXPECT_EQ(st.pc, p.symbol("target"));
    EXPECT_EQ(st.readReg(5), p.base + instBytes);
}

TEST_F(EmulatorTest, JalrMasksTargetAlignment)
{
    ArchState st;
    st.pc = 0x1000;
    Program p = assemble("jalr r5, r1, 3\nhalt\n");
    mem.loadProgram(p);
    Emulator emu(mem);
    st.writeReg(1, 0x2000);
    EmuStep s = emu.step(st, nullptr);
    EXPECT_EQ(s.nextPc, 0x2000u); // 0x2003 masked to word alignment
}

TEST_F(EmulatorTest, FpArithmetic)
{
    ArchState st = run(R"(
        addi r1, r0, 9
        fcvtdl f1, r1
        fsqrt f2, f1        # 3.0
        addi r2, r0, 2
        fcvtdl f3, r2
        fadd f4, f2, f3     # 5.0
        fmul f5, f4, f3     # 10.0
        fdiv f6, f5, f3     # 5.0
        fsub f7, f6, f3     # 3.0
        fcvtld r3, f7
        fmin f8, f2, f3
        fmax f9, f2, f3
        fcvtld r4, f8
        fcvtld r5, f9
        feq  r6, f7, f2
        flt  r7, f3, f2
        fle  r8, f2, f2
        halt
    )");
    EXPECT_EQ(st.readReg(3), 3u);
    EXPECT_EQ(st.readReg(4), 2u);
    EXPECT_EQ(st.readReg(5), 3u);
    EXPECT_EQ(st.readReg(6), 1u);
    EXPECT_EQ(st.readReg(7), 1u);
    EXPECT_EQ(st.readReg(8), 1u);
}

TEST_F(EmulatorTest, FmaAccumulates)
{
    ArchState st = run(R"(
        addi r1, r0, 10
        fcvtdl f1, r1       # acc = 10
        addi r2, r0, 3
        fcvtdl f2, r2
        addi r3, r0, 4
        fcvtdl f3, r3
        fma  f1, f2, f3     # 10 + 12 = 22
        fcvtld r4, f1
        halt
    )");
    EXPECT_EQ(st.readReg(4), 22u);
}

TEST_F(EmulatorTest, FpMoveBitPatterns)
{
    ArchState st = run(R"(
        li    r1, 0x4045000000000000   # 42.0
        fmvdx f1, r1
        fmov  f2, f1
        fmvxd r2, f2
        fcvtld r3, f2
        halt
    )");
    EXPECT_EQ(st.readReg(2), 0x4045000000000000ull);
    EXPECT_EQ(st.readReg(3), 42u);
}

TEST_F(EmulatorTest, FpGuards)
{
    ArchState st = run(R"(
        addi r1, r0, 1
        fcvtdl f1, r1
        fcvtdl f2, r0       # 0.0
        fdiv f3, f1, f2     # div by zero -> 0
        subi r2, r0, 4
        fcvtdl f4, r2
        fsqrt f5, f4        # sqrt(-4) -> 0
        fcvtld r3, f3
        fcvtld r4, f5
        halt
    )");
    EXPECT_EQ(st.readReg(3), 0u);
    EXPECT_EQ(st.readReg(4), 0u);
}

TEST_F(EmulatorTest, LoadsReadThroughSegmentChain)
{
    Program p = assemble(R"(
        li r1, 0x300000
        ld r2, 0(r1)
        halt
    )");
    mem.loadProgram(p);
    mem.write64(0x300000, 111);

    auto parent = std::make_shared<StoreSegment>(0, nullptr);
    parent->writeBytes(0x300000, 8, 222);
    parent->freeze();
    auto child = std::make_shared<StoreSegment>(1, parent);

    Emulator emu(mem);
    ArchState st;
    st.pc = p.base;
    emu.step(st, child.get()); // li (first word of expansion)
    // Finish the li expansion then execute the load.
    while (st.pc != p.base + 3 * instBytes)
        emu.step(st, child.get());
    EmuStep s = emu.step(st, child.get());
    EXPECT_TRUE(s.inst.isLoad());
    EXPECT_EQ(s.memValue, 222u); // Segment overrides memory.
    EXPECT_TRUE(s.fullyForwarded);
}

TEST_F(EmulatorTest, StoresGoToSegmentNotMemory)
{
    Program p = assemble(R"(
        li r1, 0x300000
        li r2, 77
        sd r2, 0(r1)
        halt
    )");
    mem.loadProgram(p);
    auto seg = std::make_shared<StoreSegment>(0, nullptr);
    Emulator emu(mem);
    ArchState st;
    st.pc = p.base;
    for (int i = 0; i < 32; ++i) {
        if (emu.step(st, seg.get()).halted)
            break;
    }
    EXPECT_EQ(mem.read64(0x300000), 0u); // Memory untouched...
    seg->flushTo(mem);
    EXPECT_EQ(mem.read64(0x300000), 77u); // ...until the flush.
}

TEST_F(EmulatorTest, WildAddressesAreSafe)
{
    // A value-misspeculated thread may compute absurd addresses; loads
    // must return zero and stores must not crash.
    ArchState st = run(R"(
        li r1, 0x7fffffffffff00
        ld r2, 0(r1)
        li r3, 55
        halt
    )");
    EXPECT_EQ(st.readReg(2), 0u);
    EXPECT_EQ(st.readReg(3), 55u);
}

TEST_F(EmulatorTest, RunStopsAtHaltAndCountsInsts)
{
    Program p = assemble("nop\nnop\nnop\nhalt\n");
    mem.loadProgram(p);
    Emulator emu(mem);
    ArchState st;
    st.pc = p.base;
    EXPECT_EQ(emu.run(st, 1000), 4u);
}

TEST_F(EmulatorTest, R0AlwaysZero)
{
    ArchState st = run(R"(
        addi r0, r0, 99
        add  r1, r0, r0
        halt
    )");
    EXPECT_EQ(st.readReg(0), 0u);
    EXPECT_EQ(st.readReg(1), 0u);
}
