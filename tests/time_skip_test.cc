/**
 * Time-skip engine tests: the next-event fast-forward must be invisible
 * in every exported statistic — bit-identical stats JSON, CPI stacks,
 * sample series, and architectural memory for timeSkip=0 vs timeSkip=1
 * across baseline, STVP, MTVP, spawn-only, and multi-value machines —
 * while actually skipping cycles on memory-bound code. Also covers the
 * deadlock guard that replaces spinning to maxCycles.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "cpu_test_util.hh"
#include "sim/cpi_stack.hh"

namespace vpsim
{

/** Test-only access to Cpu internals (friend of Cpu). */
class CpuTestPeer
{
  public:
    static void
    stopFetch(Cpu &c, CtxId id)
    {
        c.ctx(id).fetchStopped = true;
    }
    static Cycle nextEvent(const Cpu &c) { return c.nextEventCycle(); }
};

} // namespace vpsim

namespace
{

using namespace vptest;

/** Every exported stat except the engine's own sim.* meta-stats
 *  (skippedCycles/skipEvents differ across modes by construction). */
std::map<std::string, double>
comparableStats(const CpuRun &run)
{
    std::map<std::string, double> m;
    for (const StatBase *s : run.cpu->stats().stats()) {
        if (s->name().rfind("sim.", 0) == 0)
            continue;
        m[s->name()] = s->value();
    }
    return m;
}

CpuRun
runChase(SimConfig cfg, uint64_t skip, double strideProb = 0.5)
{
    cfg.timeSkip = skip;
    return runAsm(chaseKernel(600), cfg, chaseData(strideProb));
}

/** Run both modes and require identical stats, CPI sums, and memory. */
void
expectBitIdentical(const SimConfig &cfg, const char *label,
                   double strideProb = 0.5)
{
    SCOPED_TRACE(label);
    CpuRun off = runChase(cfg, 0, strideProb);
    CpuRun on = runChase(cfg, 1, strideProb);

    EXPECT_EQ(off.cycles(), on.cycles());
    EXPECT_EQ(comparableStats(off), comparableStats(on));
    EXPECT_EQ(off.mem->read64(0x700000), on.mem->read64(0x700000));

    // The skipping run never ticked the skipped cycles, yet its CPI
    // stack must still sum to total cycles per context.
    const CpiStack &stack = on.cpu->cpiStack();
    for (int c = 0; c < stack.numContexts(); ++c)
        EXPECT_EQ(stack.total(c), on.cycles()) << "ctx " << c;

    // And the engine-side accounting must balance: every simulated
    // cycle was either ticked or skipped.
    EXPECT_EQ(off.stat("sim.skippedCycles"), 0.0);
    EXPECT_LE(on.stat("sim.skippedCycles"),
              static_cast<double>(on.cycles()));
}

TEST(TimeSkip, BitIdenticalBaseline)
{
    // Low stride predictability = long dependent-miss chains: the
    // config the engine exists for.
    expectBitIdentical(haltConfig(), "baseline", 0.3);
}

TEST(TimeSkip, BitIdenticalStvp)
{
    SimConfig cfg = haltConfig();
    cfg.vpMode = VpMode::Stvp;
    cfg.predictor = PredictorKind::WangFranklin;
    cfg.selector = SelectorKind::Always;
    expectBitIdentical(cfg, "stvp");
}

TEST(TimeSkip, BitIdenticalMtvpFig3)
{
    expectBitIdentical(mtvpConfig(4, PredictorKind::WangFranklin,
                                  SelectorKind::IlpPred),
                       "mtvp-fig3");
}

TEST(TimeSkip, BitIdenticalSpawnOnly)
{
    SimConfig cfg = mtvpConfig(4);
    cfg.vpMode = VpMode::SpawnOnly;
    cfg.selector = SelectorKind::CacheOracle;
    expectBitIdentical(cfg, "spawn-only");
}

TEST(TimeSkip, BitIdenticalMultiValue)
{
    SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                               SelectorKind::IlpPred);
    cfg.maxValuesPerSpawn = 4;
    expectBitIdentical(cfg, "multi-value");
}

TEST(TimeSkip, EngagesOnMemoryBoundCode)
{
    CpuRun on = runChase(haltConfig(), 1, 0.3);
    // A 0.3-stride pointer chase spends most of its time waiting on
    // DRAM; the engine must be collapsing those stretches.
    EXPECT_GT(on.stat("sim.skippedCycles"), 0.0);
    EXPECT_GT(on.stat("sim.skipEvents"), 0.0);
    EXPECT_GT(on.stat("sim.skippedCycles"),
              static_cast<double>(on.cycles()) / 2);
}

TEST(TimeSkip, SamplerSeriesIdentical)
{
    // Sample-period boundaries are skip clamps: the series a skipping
    // run records must match the per-cycle run sample for sample.
    auto series = [](uint64_t skip) {
        SimConfig cfg = haltConfig();
        cfg.samplePeriod = 256;
        cfg.sampleStats = "cpi.*,commits.*,cycles";
        CpuRun run = runChase(cfg, skip, 0.3);
        std::string path =
            ::testing::TempDir() + "ts_series_" +
            std::to_string(skip) + ".json";
        run.cpu->sampler()->dumpToFile(path);
        std::ifstream in(path);
        std::ostringstream buf;
        buf << in.rdbuf();
        std::remove(path.c_str());
        return buf.str();
    };
    std::string off = series(0);
    std::string on = series(1);
    EXPECT_FALSE(off.empty());
    EXPECT_EQ(off, on);
}

TEST(TimeSkip, MshrMergedLoadsAgreeAcrossModes)
{
    // Two loads to the same cold line, the second delayed behind a
    // dependency chain: the merged fill must resolve at the same
    // absolute cycle whether or not the stall was skipped.
    const std::string src = R"(
        li   r1, 0x200000
        ld   r2, 0(r1)         # cold miss: full memory latency
        addi r3, r2, 1         # dependent chain delays the 2nd load
        addi r3, r3, 1
        ld   r4, 8(r1)         # same line: MSHR merge
        add  r5, r2, r4
        li   r9, 0x700000
        sd   r5, 0(r9)
        halt
    )";
    auto init = [](MainMemory &mem) {
        mem.write64(0x200000, 7);
        mem.write64(0x200008, 35);
    };
    SimConfig off = haltConfig();
    off.timeSkip = 0;
    SimConfig on = haltConfig();
    on.timeSkip = 1;
    CpuRun a = runAsm(src, off, init);
    CpuRun b = runAsm(src, on, init);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.stat("mem.mshrMerges"), b.stat("mem.mshrMerges"));
    EXPECT_EQ(a.mem->read64(0x700000), 42u);
    EXPECT_EQ(b.mem->read64(0x700000), 42u);
    EXPECT_GT(b.stat("sim.skippedCycles"), 0.0);
}

TEST(TimeSkip, DisabledUnderPipeView)
{
    SimConfig cfg = haltConfig();
    cfg.timeSkip = 1;
    cfg.pipeView = ::testing::TempDir() + "ts_pipeview.out";
    CpuRun run = runChase(cfg, 1, 0.3);
    EXPECT_EQ(run.stat("sim.skippedCycles"), 0.0);
    std::remove(cfg.pipeView.c_str());
}

TEST(TimeSkip, TraceWindowSuppressesSkipping)
{
    // An open-ended trace window starting at 0 disables skipping for
    // the whole run; the results still match the per-cycle loop.
    SimConfig cfg = haltConfig();
    cfg.traceFlags = "Commit";
    cfg.traceFile = ::testing::TempDir() + "ts_trace.out";
    cfg.traceStart = 0;
    cfg.traceEnd = 0;
    CpuRun run = runChase(cfg, 1, 0.3);
    EXPECT_EQ(run.stat("sim.skippedCycles"), 0.0);
    std::remove(cfg.traceFile.c_str());
}

TEST(TimeSkipDeathTest, DeadlockAbortsInsteadOfSpinning)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // Strand the machine: let a loop get going, then stop fetch so the
    // pipeline drains to empty with no HALT and no pending event.
    const std::string src = R"(
        li   r1, 100000
    loop:
        subi r1, r1, 1
        bne  r1, r0, loop
        halt
    )";
    auto strand = [&](uint64_t skip) {
        SimConfig cfg = haltConfig();
        cfg.timeSkip = skip;
        auto mem = std::make_unique<MainMemory>();
        Program p = assemble(src);
        mem->loadProgram(p);
        auto cpu = std::make_unique<Cpu>(cfg, *mem, p.base);
        for (int i = 0; i < 200; ++i)
            cpu->tick();
        vpsim::CpuTestPeer::stopFetch(*cpu, 0);
        cpu->run();
    };
    // Skip mode detects the dead machine at the first idle tick...
    EXPECT_DEATH(strand(1), "deadlock: no pipeline activity");
    // ...and the per-cycle loop via the N-idle-cycle guard.
    EXPECT_DEATH(strand(0), "deadlock: no pipeline activity");
}

TEST(TimeSkip, NextEventSeesOutstandingFill)
{
    // Single cold load: once issued, the only machine event is its
    // fill completion; the event scan must find it.
    const std::string src = R"(
        li   r1, 0x200000
        ld   r2, 0(r1)
        li   r9, 0x700000
        sd   r2, 0(r9)
        halt
    )";
    SimConfig cfg = haltConfig();
    cfg.timeSkip = 0; // Manual ticking; engine not in play.
    auto mem = std::make_unique<MainMemory>();
    Program p = assemble(src);
    mem->loadProgram(p);
    mem->write64(0x200000, 99);
    Cpu cpu(cfg, *mem, p.base);
    // Tick until the load has issued and everything else is quiet.
    Cycle event = neverCycle;
    for (int i = 0; i < 50 && event == neverCycle; ++i) {
        cpu.tick();
        event = vpsim::CpuTestPeer::nextEvent(cpu);
    }
    ASSERT_NE(event, neverCycle);
    EXPECT_GT(event, cpu.cycles());
    // The reported event must be within the memory-latency horizon.
    EXPECT_LE(event, cpu.cycles() + static_cast<Cycle>(cfg.memLatency));
}

} // namespace
