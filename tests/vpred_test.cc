/** Value-predictor tests: learning behaviour, confidence dynamics
 *  (+1/-8, threshold 12, saturation at 32 — the paper's parameters),
 *  the Wang-Franklin candidate sources, multi-value queries, and the
 *  speculative stride advance. Includes parameterized accuracy sweeps
 *  over synthetic value sequences. */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "vpred/dfcm.hh"
#include "vpred/last_value.hh"
#include "vpred/oracle.hh"
#include "vpred/stride.hh"
#include "vpred/value_predictor.hh"
#include "vpred/wang_franklin.hh"

using namespace vpsim;

namespace
{

SimConfig
defaultCfg()
{
    SimConfig cfg;
    return cfg;
}

/** Train on a sequence, then measure confident-prediction accuracy. */
struct SweepResult
{
    int confident = 0;
    int correct = 0;
};

SweepResult
sweep(ValuePredictor &p, Addr pc, const std::function<RegVal(int)> &seq,
      int warm, int measure)
{
    for (int i = 0; i < warm; ++i)
        p.train(pc, seq(i));
    SweepResult r;
    for (int i = warm; i < warm + measure; ++i) {
        RegVal actual = seq(i);
        ValuePrediction pred = p.predict(pc, actual);
        if (pred.confident) {
            ++r.confident;
            if (pred.value == actual)
                ++r.correct;
        }
        p.train(pc, actual);
    }
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------

TEST(Oracle, AlwaysCorrectAndConfident)
{
    SimConfig cfg = defaultCfg();
    OracleValuePredictor p(cfg);
    for (RegVal v : {RegVal{0}, RegVal{42}, ~RegVal{0}}) {
        ValuePrediction pred = p.predict(0x1000, v);
        EXPECT_TRUE(pred.valid);
        EXPECT_TRUE(pred.confident);
        EXPECT_EQ(pred.value, v);
    }
    auto multi = p.predictMulti(0x1000, 4, 0, 7);
    ASSERT_EQ(multi.size(), 1u);
    EXPECT_EQ(multi[0], 7u);
}

// ---------------------------------------------------------------------
// Last value
// ---------------------------------------------------------------------

TEST(LastValue, LearnsConstant)
{
    SimConfig cfg = defaultCfg();
    LastValuePredictor p(cfg);
    auto r = sweep(p, 0x1000, [](int) { return RegVal{99}; }, 20, 50);
    EXPECT_EQ(r.confident, 50);
    EXPECT_EQ(r.correct, 50);
}

TEST(LastValue, ConfidenceNeedsThresholdCorrects)
{
    SimConfig cfg = defaultCfg();
    LastValuePredictor p(cfg);
    // First train allocates; confidence rises +1 per correct train.
    p.train(0x1000, 5);
    for (int i = 0; i < cfg.confidenceThreshold - 1; ++i) {
        EXPECT_FALSE(p.predict(0x1000, 5).confident) << i;
        p.train(0x1000, 5);
    }
    p.train(0x1000, 5);
    EXPECT_TRUE(p.predict(0x1000, 5).confident);
}

TEST(LastValue, MispredictDropsConfidenceByEight)
{
    SimConfig cfg = defaultCfg();
    LastValuePredictor p(cfg);
    for (int i = 0; i < 40; ++i)
        p.train(0x1000, 5); // Saturate at 32.
    EXPECT_EQ(p.predict(0x1000, 5).confidence, cfg.confidenceMax);
    p.train(0x1000, 6); // Wrong once: -8.
    EXPECT_EQ(p.predict(0x1000, 6).confidence,
              cfg.confidenceMax - cfg.confidenceDown);
}

TEST(LastValue, NeverPredictsRandom)
{
    SimConfig cfg = defaultCfg();
    LastValuePredictor p(cfg);
    uint64_t x = 123;
    auto next = [&x](int) {
        x = x * 6364136223846793005ull + 1;
        return x;
    };
    auto r = sweep(p, 0x1000, next, 100, 200);
    EXPECT_EQ(r.confident, 0);
}

// ---------------------------------------------------------------------
// Stride
// ---------------------------------------------------------------------

TEST(Stride, LearnsArithmeticSequence)
{
    SimConfig cfg = defaultCfg();
    StridePredictor p(cfg);
    auto r = sweep(p, 0x1000,
                   [](int i) { return RegVal{1000} + RegVal(i) * 64; },
                   20, 50);
    EXPECT_EQ(r.confident, 50);
    EXPECT_EQ(r.correct, 50);
}

TEST(Stride, NegativeStride)
{
    SimConfig cfg = defaultCfg();
    StridePredictor p(cfg);
    auto r = sweep(p, 0x1000,
                   [](int i) {
                       return static_cast<RegVal>(int64_t{100000} -
                                                  i * 8);
                   },
                   20, 50);
    EXPECT_EQ(r.correct, 50);
}

TEST(Stride, SpeculativeAdvanceChainsPredictions)
{
    SimConfig cfg = defaultCfg();
    StridePredictor p(cfg);
    for (int i = 0; i < 20; ++i)
        p.train(0x1000, RegVal(i) * 64);
    // Three back-to-back predictions before any commit training:
    // each must advance by one stride (the paper's queue-stage
    // speculative update).
    RegVal v1 = p.predict(0x1000, 0).value;
    p.notePredictionUsed(0x1000, v1);
    RegVal v2 = p.predict(0x1000, 0).value;
    p.notePredictionUsed(0x1000, v2);
    RegVal v3 = p.predict(0x1000, 0).value;
    EXPECT_EQ(v2, v1 + 64);
    EXPECT_EQ(v3, v2 + 64);
    // Commit training resets the speculative state.
    p.train(0x1000, v1);
    EXPECT_EQ(p.predict(0x1000, 0).value, v1 + 64);
}

// ---------------------------------------------------------------------
// DFCM (order 3)
// ---------------------------------------------------------------------

TEST(Dfcm, LearnsRepeatingDeltaPatternStrideCannot)
{
    // Deltas cycle 1,2,3 — a plain stride predictor fails, order-3
    // DFCM keys each delta off the previous three.
    auto seq = [](int i) {
        RegVal v = 0;
        for (int k = 0; k < i; ++k)
            v += 1 + (k % 3);
        return v;
    };
    SimConfig cfg = defaultCfg();
    DfcmPredictor dfcm(cfg);
    auto rd = sweep(dfcm, 0x1000, seq, 120, 90);
    EXPECT_GT(rd.confident, 60);
    EXPECT_EQ(rd.correct, rd.confident);

    StridePredictor stride(cfg);
    auto rs = sweep(stride, 0x1000, seq, 120, 90);
    EXPECT_EQ(rs.confident, 0);
}

TEST(Dfcm, ConstantSequence)
{
    SimConfig cfg = defaultCfg();
    DfcmPredictor p(cfg);
    auto r = sweep(p, 0x1000, [](int) { return RegVal{7}; }, 20, 50);
    EXPECT_EQ(r.correct, 50);
}

TEST(Dfcm, MoreAggressiveThanWangFranklin)
{
    // Section 5.4: DFCM makes more predictions (more correct *and* more
    // incorrect) on sequences that are only partly regular.
    auto seq = [](int i) {
        // Stride of 8 with a perturbation every 11th element.
        RegVal v = RegVal(i) * 8;
        return i % 11 == 10 ? v + 3 : v;
    };
    SimConfig cfg = defaultCfg();
    DfcmPredictor dfcm(cfg);
    WangFranklinPredictor wf(cfg);
    auto rd = sweep(dfcm, 0x1000, seq, 300, 300);
    auto rw = sweep(wf, 0x1000, seq, 300, 300);
    EXPECT_GT(rd.confident, rw.confident);
}

// ---------------------------------------------------------------------
// Wang-Franklin hybrid
// ---------------------------------------------------------------------

TEST(WangFranklin, LearnsConstant)
{
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    auto r = sweep(p, 0x1000, [](int) { return RegVal{1234}; }, 20, 50);
    EXPECT_EQ(r.correct, 50);
    EXPECT_EQ(r.confident, 50);
}

TEST(WangFranklin, HardwiredZeroAndOne)
{
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    // Zero is a hardwired candidate: an all-zero load trains quickly.
    auto r0 = sweep(p, 0x2000, [](int) { return RegVal{0}; }, 16, 30);
    EXPECT_EQ(r0.correct, 30);
    auto r1 = sweep(p, 0x3000, [](int) { return RegVal{1}; }, 16, 30);
    EXPECT_EQ(r1.correct, 30);
}

TEST(WangFranklin, StrideCandidate)
{
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    auto r = sweep(p, 0x1000,
                   [](int i) { return RegVal{500} + RegVal(i) * 16; },
                   30, 50);
    EXPECT_EQ(r.correct, 50);
}

TEST(WangFranklin, LearnedValueSetWithPattern)
{
    // Values alternate A,B,A,B: the pattern history selects the right
    // learned value each time.
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    auto seq = [](int i) { return i % 2 == 0 ? RegVal{111} : RegVal{222}; };
    auto r = sweep(p, 0x1000, seq, 200, 100);
    EXPECT_GT(r.correct, 90);
}

TEST(WangFranklin, MultiValueReturnsCandidateSet)
{
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    // Alternating values give both candidates a slot in the learned set.
    for (int i = 0; i < 400; ++i)
        p.train(0x1000, i % 2 == 0 ? 111 : 222);
    // With a liberal (zero) threshold every in-table candidate appears,
    // deduplicated.
    auto multi = p.predictMulti(0x1000, 8, 0, 0);
    ASSERT_GE(multi.size(), 2u);
    bool has111 = false;
    bool has222 = false;
    for (RegVal v : multi) {
        has111 = has111 || v == 111;
        has222 = has222 || v == 222;
    }
    EXPECT_TRUE(has111);
    EXPECT_TRUE(has222);
    for (size_t i = 0; i + 1 < multi.size(); ++i) {
        for (size_t j = i + 1; j < multi.size(); ++j)
            EXPECT_NE(multi[i], multi[j]);
    }
    // A stricter threshold returns a subset of the liberal answer.
    auto strict = p.predictMulti(0x1000, 8, 12, 0);
    for (RegVal v : strict) {
        EXPECT_NE(std::find(multi.begin(), multi.end(), v), multi.end());
    }
    EXPECT_LE(strict.size(), multi.size());
}

TEST(WangFranklin, MultiValueRespectsMaxAndThreshold)
{
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    for (int i = 0; i < 400; ++i)
        p.train(0x1000, i % 2 == 0 ? 111 : 222);
    EXPECT_LE(p.predictMulti(0x1000, 1, 4, 0).size(), 1u);
    // An absurd threshold returns nothing.
    EXPECT_TRUE(p.predictMulti(0x1000, 8, 1000, 0).empty());
}

TEST(WangFranklin, UntrainedPcHasNoPrediction)
{
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    EXPECT_FALSE(p.predict(0x7777000, 5).valid);
    EXPECT_TRUE(p.predictMulti(0x7777000, 8, 0, 5).empty());
}

TEST(WangFranklin, DistinctPcsAreIndependent)
{
    SimConfig cfg = defaultCfg();
    WangFranklinPredictor p(cfg);
    for (int i = 0; i < 40; ++i) {
        p.train(0x1000, 5);
        p.train(0x2000, 9);
    }
    EXPECT_EQ(p.predict(0x1000, 0).value, 5u);
    EXPECT_EQ(p.predict(0x2000, 0).value, 9u);
}

// ---------------------------------------------------------------------
// Factory + parameterized accuracy matrix
// ---------------------------------------------------------------------

TEST(Factory, BuildsEveryKind)
{
    StatGroup stats;
    for (PredictorKind k :
         {PredictorKind::Oracle, PredictorKind::WangFranklin,
          PredictorKind::Dfcm, PredictorKind::Stride,
          PredictorKind::LastValue}) {
        SimConfig cfg;
        cfg.predictor = k;
        auto p = makeValuePredictor(cfg, stats);
        ASSERT_NE(p, nullptr);
        ValuePrediction pred = p->predict(0x1000, 7);
        (void)pred;
        p->train(0x1000, 7);
    }
}

struct AccuracyCase
{
    const char *name;
    PredictorKind kind;
    int seqKind; // 0 constant, 1 stride, 2 repeat-pattern
    int minCorrectPct;
};

class AccuracyTest : public ::testing::TestWithParam<AccuracyCase>
{
};

TEST_P(AccuracyTest, ConfidentPredictionsAreAccurate)
{
    const AccuracyCase &c = GetParam();
    SimConfig cfg;
    cfg.predictor = c.kind;
    StatGroup stats;
    auto p = makeValuePredictor(cfg, stats);
    auto seq = [&](int i) -> RegVal {
        switch (c.seqKind) {
          case 0: return 77;
          case 1: return RegVal(i) * 24;
          default: return RegVal{100} + RegVal(i % 4);
        }
    };
    auto r = sweep(*p, 0x1000, seq, 300, 200);
    ASSERT_GT(r.confident, 0) << c.name;
    EXPECT_GE(100 * r.correct, c.minCorrectPct * r.confident) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AccuracyTest,
    ::testing::Values(
        AccuracyCase{"lv-const", PredictorKind::LastValue, 0, 99},
        AccuracyCase{"stride-const", PredictorKind::Stride, 0, 99},
        AccuracyCase{"stride-stride", PredictorKind::Stride, 1, 99},
        AccuracyCase{"dfcm-const", PredictorKind::Dfcm, 0, 99},
        AccuracyCase{"dfcm-stride", PredictorKind::Dfcm, 1, 99},
        AccuracyCase{"dfcm-pattern", PredictorKind::Dfcm, 2, 90},
        AccuracyCase{"wf-const", PredictorKind::WangFranklin, 0, 99},
        AccuracyCase{"wf-stride", PredictorKind::WangFranklin, 1, 99},
        AccuracyCase{"wf-pattern", PredictorKind::WangFranklin, 2, 85},
        AccuracyCase{"oracle-any", PredictorKind::Oracle, 2, 100}),
    [](const ::testing::TestParamInfo<AccuracyCase> &tp) {
        std::string n = tp.param.name;
        for (char &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    });
