/** Tracing & telemetry tests: debug flags, pipeline traces, sampling. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace vpsim;

namespace
{

/** Every test starts and ends with tracing fully off. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override { trace::reset(); }
    void TearDown() override { trace::reset(); }
};

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Flag registry and glob matching
// ---------------------------------------------------------------------

TEST_F(TraceTest, FlagNames)
{
    EXPECT_STREQ(trace::flagName(trace::Flag::Fetch), "Fetch");
    EXPECT_STREQ(trace::flagName(trace::Flag::MTVP), "MTVP");
    EXPECT_STREQ(trace::flagName(trace::Flag::StoreBuffer),
                 "StoreBuffer");
}

TEST_F(TraceTest, GlobMatchBasics)
{
    EXPECT_TRUE(trace::globMatch("MTVP", "MTVP"));
    EXPECT_TRUE(trace::globMatch("mtvp", "MTVP")); // case-insensitive
    EXPECT_TRUE(trace::globMatch("*", "anything"));
    EXPECT_TRUE(trace::globMatch("St*", "StoreBuffer"));
    EXPECT_TRUE(trace::globMatch("*Buffer", "StoreBuffer"));
    EXPECT_TRUE(trace::globMatch("?etch", "Fetch"));
    EXPECT_TRUE(trace::globMatch("*s*ue*", "Issue"));
    EXPECT_FALSE(trace::globMatch("Fetch", "Dispatch"));
    EXPECT_FALSE(trace::globMatch("St*x", "StoreBuffer"));
    EXPECT_FALSE(trace::globMatch("?", "ab"));
    EXPECT_TRUE(trace::globMatch("", ""));
    EXPECT_FALSE(trace::globMatch("", "a"));
}

TEST_F(TraceTest, SetFlagsByName)
{
    trace::setFlags("MTVP,Commit");
    trace::setCycle(0);
    EXPECT_TRUE(trace::enabled(trace::Flag::MTVP));
    EXPECT_TRUE(trace::enabled(trace::Flag::Commit));
    EXPECT_FALSE(trace::enabled(trace::Flag::Fetch));
    EXPECT_TRUE(trace::anyEnabled());
}

TEST_F(TraceTest, SetFlagsGlobAndSpaces)
{
    trace::setFlags(" St* , vp* ");
    EXPECT_TRUE(trace::enabled(trace::Flag::StoreBuffer));
    EXPECT_TRUE(trace::enabled(trace::Flag::VPred));
    EXPECT_FALSE(trace::enabled(trace::Flag::Commit));
}

TEST_F(TraceTest, SetFlagsStarEnablesAll)
{
    trace::setFlags("*");
    for (unsigned f = 0; f < trace::numFlags; ++f)
        EXPECT_TRUE(trace::enabled(static_cast<trace::Flag>(f)));
}

TEST_F(TraceTest, EmptySpecDisablesAll)
{
    trace::setFlags("MTVP");
    trace::setFlags("");
    EXPECT_FALSE(trace::anyEnabled());
    EXPECT_EQ(trace::requestedMask(), 0u);
}

TEST_F(TraceTest, UnknownFlagFatals)
{
    EXPECT_EXIT(trace::setFlags("Bogus"), ::testing::ExitedWithCode(1),
                "unknown trace flag");
}

// ---------------------------------------------------------------------
// Cycle windowing
// ---------------------------------------------------------------------

TEST_F(TraceTest, CycleWindowGatesFlags)
{
    trace::setFlags("MTVP");
    trace::setWindow(10, 20);
    trace::setCycle(5);
    EXPECT_FALSE(trace::enabled(trace::Flag::MTVP));
    trace::setCycle(10);
    EXPECT_TRUE(trace::enabled(trace::Flag::MTVP));
    trace::setCycle(19);
    EXPECT_TRUE(trace::enabled(trace::Flag::MTVP));
    trace::setCycle(20); // end is exclusive
    EXPECT_FALSE(trace::enabled(trace::Flag::MTVP));
}

TEST_F(TraceTest, ZeroEndMeansOpenWindow)
{
    trace::setFlags("Fetch");
    trace::setWindow(100, 0);
    trace::setCycle(99);
    EXPECT_FALSE(trace::enabled(trace::Flag::Fetch));
    trace::setCycle(1000000);
    EXPECT_TRUE(trace::enabled(trace::Flag::Fetch));
}

// ---------------------------------------------------------------------
// Message formatting
// ---------------------------------------------------------------------

TEST_F(TraceTest, PrintPrefixesCycleAndContext)
{
    std::string path = ::testing::TempDir() + "vpsim_trace_out.txt";
    trace::setFlags("MTVP");
    trace::setOutputFile(path);
    trace::setCycle(42);
    trace::setContext(3);
    trace::print(trace::Flag::MTVP, "spawn child value=%d", 7);
    trace::setContext(invalidCtx);
    trace::print(trace::Flag::MTVP, "no context line");
    trace::setOutputFile(""); // flush/close before reading
    std::string out = readFile(path);
    EXPECT_NE(out.find("42: t3: MTVP: spawn child value=7\n"),
              std::string::npos);
    EXPECT_NE(out.find("42: MTVP: no context line\n"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// InstTracer (gem5 O3PipeView format)
// ---------------------------------------------------------------------

TEST_F(TraceTest, O3PipeViewGoldenFormat)
{
    trace::InstTraceRecord r;
    r.seq = 12;
    r.pc = 0x1000;
    r.fetch = 100;
    r.decode = 103;
    r.dispatch = 103;
    r.issue = 105;
    r.complete = 109;
    r.retire = 111;
    r.disasm = "LD r3, 8(r1)";
    EXPECT_EQ(trace::InstTracer::format(r),
              "O3PipeView:fetch:100:0x00001000:0:12:LD r3, 8(r1)\n"
              "O3PipeView:decode:103\n"
              "O3PipeView:rename:103\n"
              "O3PipeView:dispatch:103\n"
              "O3PipeView:issue:105\n"
              "O3PipeView:complete:109\n"
              "O3PipeView:retire:111:store:0\n");
}

TEST_F(TraceTest, SquashedInstRetiresAtZero)
{
    trace::InstTraceRecord r;
    r.seq = 5;
    r.pc = 0x20;
    r.fetch = 1;
    r.decode = 2;
    r.dispatch = 2;
    r.retire = 0; // squashed
    std::string s = trace::InstTracer::format(r);
    EXPECT_NE(s.find("O3PipeView:retire:0:store:0\n"), std::string::npos);
}

TEST_F(TraceTest, InstTracerWritesRecords)
{
    std::string path = ::testing::TempDir() + "vpsim_pipeview.out";
    {
        trace::InstTracer t(path);
        trace::InstTraceRecord r;
        r.seq = 1;
        r.pc = 0x40;
        r.fetch = 10;
        r.decode = 12;
        r.dispatch = 12;
        r.issue = 13;
        r.complete = 14;
        r.retire = 15;
        r.disasm = "ADDI r1, r0, 1";
        t.record(r);
        r.seq = 2;
        t.record(r);
        EXPECT_EQ(t.recorded(), 2u);
    }
    std::string out = readFile(path);
    EXPECT_NE(out.find("O3PipeView:fetch:10:0x00000040:0:1:ADDI"),
              std::string::npos);
    EXPECT_NE(out.find(":0:2:ADDI"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// StatSampler
// ---------------------------------------------------------------------

TEST_F(TraceTest, SamplerTracksMatchingStats)
{
    StatGroup g("cpu");
    Scalar a(g, "commits", "");
    Scalar b(g, "mem.loads", "");
    Scalar c(g, "spawns", "");
    trace::StatSampler s(g, "commits,mem.*", 100);
    ASSERT_EQ(s.names().size(), 2u);
    EXPECT_EQ(s.names()[0], "commits");
    EXPECT_EQ(s.names()[1], "mem.loads");

    a += 5;
    b += 2;
    s.maybeSample(50); // before first edge: no sample
    EXPECT_EQ(s.sampleCount(), 0u);
    s.maybeSample(100);
    ASSERT_EQ(s.sampleCount(), 1u);
    EXPECT_DOUBLE_EQ(s.valueAt(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(s.valueAt(0, 1), 2.0);

    a += 10;
    s.maybeSample(150); // between edges
    EXPECT_EQ(s.sampleCount(), 1u);
    s.maybeSample(200);
    ASSERT_EQ(s.sampleCount(), 2u);
    EXPECT_DOUBLE_EQ(s.valueAt(1, 0), 15.0);
}

TEST_F(TraceTest, SamplerEmptySpecTracksEverything)
{
    StatGroup g;
    Scalar a(g, "x", "");
    Scalar b(g, "y", "");
    trace::StatSampler s(g, "", 10);
    EXPECT_EQ(s.names().size(), 2u);
}

TEST_F(TraceTest, SamplerUnmatchedPatternFatals)
{
    StatGroup g;
    Scalar a(g, "x", "");
    EXPECT_EXIT(trace::StatSampler(g, "nope*", 10),
                ::testing::ExitedWithCode(1), "matches no stat");
}

TEST_F(TraceTest, SamplerCsvDump)
{
    StatGroup g;
    Scalar a(g, "events", "");
    trace::StatSampler s(g, "events", 10);
    a += 3;
    s.maybeSample(10);
    a += 4;
    s.maybeSample(20);
    std::ostringstream os;
    s.dumpCsv(os);
    EXPECT_EQ(os.str(), "cycle,events\n10,3\n20,7\n");
}

TEST_F(TraceTest, SamplerJsonDump)
{
    StatGroup g;
    Scalar a(g, "events", "");
    trace::StatSampler s(g, "events", 5);
    a += 2;
    s.maybeSample(5);
    std::ostringstream os;
    s.dumpJson(os);
    std::string out = os.str();
    EXPECT_NE(out.find("\"period\": 5"), std::string::npos);
    EXPECT_NE(out.find("\"events\""), std::string::npos);
    EXPECT_NE(out.find("{\"cycle\": 5, \"values\": [2]}"),
              std::string::npos);
}

TEST_F(TraceTest, SamplerFileSuffixSelectsFormat)
{
    StatGroup g;
    Scalar a(g, "n", "");
    trace::StatSampler s(g, "n", 1);
    a += 1;
    s.maybeSample(1);

    std::string csvPath = ::testing::TempDir() + "vpsim_samples.csv";
    std::string jsonPath = ::testing::TempDir() + "vpsim_samples.json";
    s.dumpToFile(csvPath);
    s.dumpToFile(jsonPath);
    EXPECT_EQ(readFile(csvPath).substr(0, 7), "cycle,n");
    EXPECT_EQ(readFile(jsonPath).substr(0, 1), "{");
    std::remove(csvPath.c_str());
    std::remove(jsonPath.c_str());
}

// ---------------------------------------------------------------------
// DPRINTF gating
// ---------------------------------------------------------------------

TEST_F(TraceTest, DprintfDoesNotEvaluateArgsWhenOff)
{
    int evals = 0;
    auto expensive = [&evals] { ++evals; return 1; };
    DPRINTF(Fetch, "value=%d", expensive());
    EXPECT_EQ(evals, 0);

    std::string path = ::testing::TempDir() + "vpsim_dprintf.txt";
    trace::setFlags("Fetch");
    trace::setOutputFile(path);
    DPRINTF(Fetch, "value=%d", expensive());
    EXPECT_EQ(evals, 1);
    trace::setOutputFile("");
    EXPECT_NE(readFile(path).find("Fetch: value=1"), std::string::npos);
    std::remove(path.c_str());
}
