/** Statistics-package tests. */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/stats.hh"

using namespace vpsim;

TEST(Stats, ScalarCounts)
{
    StatGroup g;
    Scalar s(g, "events", "test events");
    ++s;
    s += 5;
    EXPECT_EQ(s.count(), 6u);
    EXPECT_DOUBLE_EQ(s.value(), 6.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, AverageOfSamples)
{
    StatGroup g;
    Average a(g, "avg", "test average");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Stats, DistributionBucketsAndBounds)
{
    StatGroup g;
    Distribution d(g, "dist", "test dist", 0.0, 10.0, 5);
    d.sample(-1.0); // underflow
    d.sample(0.5);  // bucket 0
    d.sample(9.9);  // bucket 4
    d.sample(15.0); // overflow
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 15.0);
    const auto &b = d.buckets();
    EXPECT_EQ(b.front(), 1u); // underflow bin
    EXPECT_EQ(b.back(), 1u);  // overflow bin
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[5], 1u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g;
    Scalar s(g, "numerator", "n");
    Formula f(g, "ratio", "n/2", [&s] { return s.value() / 2.0; });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    s += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Stats, GroupFindAndGet)
{
    StatGroup g("grp");
    Scalar s(g, "a.b", "thing");
    s += 3;
    EXPECT_NE(g.find("a.b"), nullptr);
    EXPECT_EQ(g.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(g.get("a.b"), 3.0);
}

TEST(Stats, GetUnknownFatals)
{
    StatGroup g;
    EXPECT_EXIT(g.get("nope"), ::testing::ExitedWithCode(1), "unknown");
}

TEST(Stats, DuplicateNamePanics)
{
    StatGroup g;
    Scalar a(g, "dup", "first");
    EXPECT_DEATH(Scalar(g, "dup", "second"), "duplicate");
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("cpu");
    Scalar s(g, "commits", "committed instructions");
    s += 42;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("commits"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("committed instructions"), std::string::npos);
}

TEST(Stats, ResetAll)
{
    StatGroup g;
    Scalar s(g, "x", "x");
    Average a(g, "y", "y");
    s += 7;
    a.sample(3.0);
    g.resetAll();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(Stats, RegistrationOrderPreserved)
{
    StatGroup g;
    Scalar s1(g, "first", "");
    Scalar s2(g, "second", "");
    ASSERT_EQ(g.stats().size(), 2u);
    EXPECT_EQ(g.stats()[0]->name(), "first");
    EXPECT_EQ(g.stats()[1]->name(), "second");
}

TEST(Stats, FindIsExactAfterManyStats)
{
    StatGroup g;
    std::vector<std::unique_ptr<Scalar>> owned;
    for (int i = 0; i < 100; ++i) {
        std::string name = "s";
        name += std::to_string(i);
        owned.push_back(std::make_unique<Scalar>(g, name, ""));
    }
    EXPECT_EQ(g.find("s0"), owned[0].get());
    EXPECT_EQ(g.find("s99"), owned[99].get());
    EXPECT_EQ(g.find("s100"), nullptr);
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

namespace
{

/** Minimal recursive-descent JSON parser: enough to round-trip what
 *  dumpJson emits (objects, arrays, strings, numbers, null). */
struct JsonValue
{
    enum class Kind { Null, Number, String, Array, Object } kind =
        Kind::Null;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::map<std::string, JsonValue> obj;
};

struct JsonParser
{
    std::string s;
    size_t p = 0;

    explicit JsonParser(std::string text) : s(std::move(text)) {}

    void ws() { while (p < s.size() && std::isspace(
                           static_cast<unsigned char>(s[p]))) ++p; }
    char peek() { ws(); return p < s.size() ? s[p] : '\0'; }
    void expect(char c)
    {
        ws();
        ASSERT_LT(p, s.size());
        ASSERT_EQ(s[p], c) << "at offset " << p;
        ++p;
    }

    JsonValue parse()
    {
        JsonValue v;
        char c = peek();
        if (c == '{') {
            v.kind = JsonValue::Kind::Object;
            expect('{');
            if (peek() != '}') {
                while (true) {
                    JsonValue key = parse();
                    expect(':');
                    v.obj[key.str] = parse();
                    if (peek() != ',')
                        break;
                    expect(',');
                }
            }
            expect('}');
        } else if (c == '[') {
            v.kind = JsonValue::Kind::Array;
            expect('[');
            if (peek() != ']') {
                while (true) {
                    v.arr.push_back(parse());
                    if (peek() != ',')
                        break;
                    expect(',');
                }
            }
            expect(']');
        } else if (c == '"') {
            v.kind = JsonValue::Kind::String;
            expect('"');
            while (p < s.size() && s[p] != '"') {
                if (s[p] == '\\') {
                    ++p;
                    switch (s[p]) {
                      case 'n': v.str += '\n'; break;
                      case 't': v.str += '\t'; break;
                      case 'r': v.str += '\r'; break;
                      case 'u':
                        v.str += static_cast<char>(
                            std::stoi(s.substr(p + 1, 4), nullptr, 16));
                        p += 4;
                        break;
                      default: v.str += s[p]; break;
                    }
                    ++p;
                } else {
                    v.str += s[p++];
                }
            }
            expect('"');
        } else if (c == 'n') {
            v.kind = JsonValue::Kind::Null;
            p += 4;
        } else {
            v.kind = JsonValue::Kind::Number;
            size_t start = p;
            while (p < s.size() &&
                   (std::isdigit(static_cast<unsigned char>(s[p])) ||
                    s[p] == '-' || s[p] == '+' || s[p] == '.' ||
                    s[p] == 'e' || s[p] == 'E')) {
                ++p;
            }
            v.num = std::stod(s.substr(start, p - start));
        }
        return v;
    }
};

} // namespace

TEST(StatsJson, DumpJsonRoundTripsScalars)
{
    StatGroup g("cpu");
    Scalar s(g, "commits", "committed \"useful\" instructions");
    Average a(g, "avgLat", "load latency");
    s += 42;
    a.sample(3.0);
    a.sample(4.0);

    std::ostringstream os;
    g.dumpJson(os);
    std::string text = os.str();
    JsonParser parser(text);
    JsonValue root = parser.parse();

    ASSERT_EQ(root.kind, JsonValue::Kind::Object);
    EXPECT_EQ(root.obj.at("group").str, "cpu");
    const JsonValue &stats = root.obj.at("stats");
    EXPECT_DOUBLE_EQ(stats.obj.at("commits").obj.at("value").num, 42.0);
    EXPECT_EQ(stats.obj.at("commits").obj.at("desc").str,
              "committed \"useful\" instructions");
    EXPECT_DOUBLE_EQ(stats.obj.at("avgLat").obj.at("value").num, 3.5);
}

TEST(StatsJson, JsonValuesMatchDumpForEveryStat)
{
    StatGroup g("grp");
    Scalar s1(g, "a", "");
    Scalar s2(g, "b", "");
    Formula f(g, "ratio", "", [&] { return s1.value() / 3.0; });
    s1 += 7;
    s2 += 9;

    std::ostringstream os;
    g.dumpJson(os);
    JsonParser parser(os.str());
    JsonValue root = parser.parse();
    const JsonValue &stats = root.obj.at("stats");
    ASSERT_EQ(stats.obj.size(), g.stats().size());
    for (const StatBase *st : g.stats()) {
        EXPECT_DOUBLE_EQ(stats.obj.at(st->name()).obj.at("value").num,
                         st->value())
            << st->name();
    }
}

TEST(StatsJson, DistributionBucketsExported)
{
    StatGroup g;
    Distribution d(g, "dist", "d", 0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(0.5);
    d.sample(9.9);
    d.sample(15.0);

    std::ostringstream os;
    g.dumpJson(os);
    JsonParser parser(os.str());
    JsonValue root = parser.parse();
    const JsonValue &j = root.obj.at("stats").obj.at("dist");
    EXPECT_DOUBLE_EQ(j.obj.at("samples").num, 4.0);
    EXPECT_DOUBLE_EQ(j.obj.at("min").num, -1.0);
    EXPECT_DOUBLE_EQ(j.obj.at("max").num, 15.0);
    EXPECT_DOUBLE_EQ(j.obj.at("lo").num, 0.0);
    EXPECT_DOUBLE_EQ(j.obj.at("hi").num, 10.0);
    EXPECT_DOUBLE_EQ(j.obj.at("bucketSize").num, 2.0);
    const auto &buckets = j.obj.at("buckets").arr;
    ASSERT_EQ(buckets.size(), 7u); // under + 5 + over
    EXPECT_DOUBLE_EQ(buckets.front().num, 1.0);
    EXPECT_DOUBLE_EQ(buckets.back().num, 1.0);
    EXPECT_DOUBLE_EQ(buckets[1].num, 1.0);
    EXPECT_DOUBLE_EQ(buckets[5].num, 1.0);
}

TEST(StatsJson, DistributionMinMaxAfterReset)
{
    StatGroup g;
    Distribution d(g, "dist", "d", 0.0, 10.0, 5);
    d.sample(-5.0);
    d.sample(100.0);
    d.reset();
    d.sample(3.0);
    d.sample(4.0);

    std::ostringstream os;
    g.dumpJson(os);
    JsonParser parser(os.str());
    JsonValue root = parser.parse();
    const JsonValue &j = root.obj.at("stats").obj.at("dist");
    EXPECT_DOUBLE_EQ(j.obj.at("min").num, 3.0);
    EXPECT_DOUBLE_EQ(j.obj.at("max").num, 4.0);
    EXPECT_DOUBLE_EQ(j.obj.at("samples").num, 2.0);
}

TEST(StatsJson, NonIntegralAndEscapedOutput)
{
    std::ostringstream os;
    jsonNumber(os, 2.5);
    os << ' ';
    jsonNumber(os, 1e18); // integral but beyond exact double range
    os << ' ';
    jsonQuote(os, "a\"b\\c\nd");
    std::string out = os.str();
    EXPECT_NE(out.find("2.5"), std::string::npos);
    EXPECT_NE(out.find("1e+18"), std::string::npos);
    EXPECT_NE(out.find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
}
