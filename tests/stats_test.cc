/** Statistics-package tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace vpsim;

TEST(Stats, ScalarCounts)
{
    StatGroup g;
    Scalar s(g, "events", "test events");
    ++s;
    s += 5;
    EXPECT_EQ(s.count(), 6u);
    EXPECT_DOUBLE_EQ(s.value(), 6.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, AverageOfSamples)
{
    StatGroup g;
    Average a(g, "avg", "test average");
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
}

TEST(Stats, DistributionBucketsAndBounds)
{
    StatGroup g;
    Distribution d(g, "dist", "test dist", 0.0, 10.0, 5);
    d.sample(-1.0); // underflow
    d.sample(0.5);  // bucket 0
    d.sample(9.9);  // bucket 4
    d.sample(15.0); // overflow
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 15.0);
    const auto &b = d.buckets();
    EXPECT_EQ(b.front(), 1u); // underflow bin
    EXPECT_EQ(b.back(), 1u);  // overflow bin
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[5], 1u);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    StatGroup g;
    Scalar s(g, "numerator", "n");
    Formula f(g, "ratio", "n/2", [&s] { return s.value() / 2.0; });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    s += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

TEST(Stats, GroupFindAndGet)
{
    StatGroup g("grp");
    Scalar s(g, "a.b", "thing");
    s += 3;
    EXPECT_NE(g.find("a.b"), nullptr);
    EXPECT_EQ(g.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(g.get("a.b"), 3.0);
}

TEST(Stats, GetUnknownFatals)
{
    StatGroup g;
    EXPECT_EXIT(g.get("nope"), ::testing::ExitedWithCode(1), "unknown");
}

TEST(Stats, DuplicateNamePanics)
{
    StatGroup g;
    Scalar a(g, "dup", "first");
    EXPECT_DEATH(Scalar(g, "dup", "second"), "duplicate");
}

TEST(Stats, DumpContainsNamesAndValues)
{
    StatGroup g("cpu");
    Scalar s(g, "commits", "committed instructions");
    s += 42;
    std::ostringstream os;
    g.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("commits"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("committed instructions"), std::string::npos);
}

TEST(Stats, ResetAll)
{
    StatGroup g;
    Scalar s(g, "x", "x");
    Average a(g, "y", "y");
    s += 7;
    a.sample(3.0);
    g.resetAll();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(Stats, RegistrationOrderPreserved)
{
    StatGroup g;
    Scalar s1(g, "first", "");
    Scalar s2(g, "second", "");
    ASSERT_EQ(g.stats().size(), 2u);
    EXPECT_EQ(g.stats()[0]->name(), "first");
    EXPECT_EQ(g.stats()[1]->name(), "second");
}
