/**
 * @file
 * Paper-fidelity scoreboard tests: tolerance-band classification edges,
 * default tolerances, expected-file round-trip and schema checks,
 * report scoring (including positional matching of duplicate keys), and
 * the end-to-end drift demonstration the scoreboard exists for — the
 * committed baseline passes against an identical re-run, while a
 * perturbed machine (memory latency halved) fails.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "scoreboard.hh"
#include "sim/json.hh"
#include "sim/simulation.hh"

using namespace vpbench;
using namespace vpsim;

namespace
{

ExpectedPoint
point(double expected, double warnTol, double failTol)
{
    ExpectedPoint p;
    p.category = "int";
    p.workload = "mcf";
    p.config = "mtvp4";
    p.expected = expected;
    p.warnTol = warnTol;
    p.failTol = failTol;
    return p;
}

json::Value
parseReport(const std::string &text)
{
    json::Value v;
    std::string err;
    EXPECT_TRUE(json::parse(text, v, &err)) << err;
    return v;
}

} // namespace

TEST(Scoreboard, ToleranceBandEdges)
{
    ExpectedPoint p = point(10.0, 1.0, 3.0);
    EXPECT_EQ(evaluatePoint(p, 10.0), PointStatus::Pass);
    EXPECT_EQ(evaluatePoint(p, 11.0), PointStatus::Pass);  // == warnTol
    EXPECT_EQ(evaluatePoint(p, 9.0), PointStatus::Pass);
    EXPECT_EQ(evaluatePoint(p, 11.5), PointStatus::Warn);
    EXPECT_EQ(evaluatePoint(p, 13.0), PointStatus::Warn);  // == failTol
    EXPECT_EQ(evaluatePoint(p, 7.0), PointStatus::Warn);
    EXPECT_EQ(evaluatePoint(p, 13.001), PointStatus::Fail);
    EXPECT_EQ(evaluatePoint(p, -5.0), PointStatus::Fail);
    EXPECT_EQ(evaluatePoint(p, std::nan("")), PointStatus::Fail);
    EXPECT_EQ(evaluatePoint(p, INFINITY), PointStatus::Fail);
}

TEST(Scoreboard, DefaultTolerances)
{
    // Absolute floor for small expectations...
    EXPECT_DOUBLE_EQ(defaultWarnTol(0.0), 0.5);
    EXPECT_DOUBLE_EQ(defaultFailTol(0.0), 2.0);
    EXPECT_DOUBLE_EQ(defaultWarnTol(5.0), 0.5);
    // ...relative band for large (and sign-independent).
    EXPECT_DOUBLE_EQ(defaultWarnTol(100.0), 2.0);
    EXPECT_DOUBLE_EQ(defaultFailTol(100.0), 10.0);
    EXPECT_DOUBLE_EQ(defaultWarnTol(-100.0), 2.0);
}

TEST(Scoreboard, ExpectedFileRoundTrip)
{
    ExpectedFigure fig;
    fig.figure = "fig_test";
    fig.insts = 12000;
    fig.seed = 7;
    fig.fullSet = true;
    fig.points.push_back(point(12.5, 0.5, 2.0));
    fig.points.push_back(point(-3.25, 1.0, 4.0));
    fig.points.back().workload = "swim";
    fig.points.back().category = "fp";

    std::string path = testing::TempDir() + "sb_roundtrip.json";
    {
        std::ofstream os(path);
        os << expectedFigureJson(fig);
    }
    ExpectedFigure back;
    std::string err;
    ASSERT_TRUE(loadExpectedFigure(path, back, &err)) << err;
    EXPECT_EQ(back.figure, "fig_test");
    EXPECT_EQ(back.insts, 12000u);
    EXPECT_EQ(back.seed, 7u);
    EXPECT_TRUE(back.fullSet);
    ASSERT_EQ(back.points.size(), 2u);
    EXPECT_DOUBLE_EQ(back.points[0].expected, 12.5);
    EXPECT_DOUBLE_EQ(back.points[1].expected, -3.25);
    EXPECT_EQ(back.points[1].workload, "swim");
    EXPECT_DOUBLE_EQ(back.points[1].failTol, 4.0);
}

TEST(Scoreboard, SchemaVersionMismatchRejected)
{
    std::string path = testing::TempDir() + "sb_badschema.json";
    {
        std::ofstream os(path);
        os << "{\"schemaVersion\": \"mtvp-scoreboard-v999\", "
              "\"figure\": \"x\", \"points\": []}";
    }
    ExpectedFigure fig;
    std::string err;
    EXPECT_FALSE(loadExpectedFigure(path, fig, &err));
    EXPECT_NE(err.find("mtvp-scoreboard-v999"), std::string::npos);

    ExpectedFigure fig2;
    EXPECT_FALSE(loadExpectedFigure(testing::TempDir() + "nope.json",
                                    fig2, &err));
}

TEST(Scoreboard, ScoreFigureClassifiesAndMatchesPositionally)
{
    // Two tables of the same sweep reuse the (category, workload,
    // config) key — rows and points pair up by occurrence order.
    json::Value report = parseReport(R"({
      "title": "t", "insts": 12000, "rows": [
        {"category": "int", "workload": "mcf", "config": "mtvp4",
         "speedupPct": 10.0},
        {"category": "int", "workload": "mcf", "config": "mtvp4",
         "speedupPct": 50.0},
        {"category": "int", "workload": "gzip.g", "config": "mtvp4",
         "speedupPct": null}
      ]})");

    ExpectedFigure fig;
    fig.figure = "fig_test";
    fig.insts = 12000;
    fig.seed = 1;
    fig.points.push_back(point(10.0, 1.0, 3.0));  // row 0: pass
    fig.points.push_back(point(52.0, 1.0, 3.0));  // row 1: warn
    fig.points.push_back(point(99.0, 1.0, 3.0));  // no 3rd row: missing
    ExpectedPoint gz = point(1.0, 1.0, 3.0);
    gz.workload = "gzip.g";
    fig.points.push_back(gz);                     // null metric: missing

    FigureScore s = scoreFigure(fig, report, 12000, 1, false);
    EXPECT_EQ(s.count(PointStatus::Pass), 1);
    EXPECT_EQ(s.count(PointStatus::Warn), 1);
    EXPECT_EQ(s.count(PointStatus::Missing), 2);
    EXPECT_EQ(s.worst(), PointStatus::Fail);
    EXPECT_TRUE(s.settingsNote.empty());
    // Had the duplicate matched first-wins, point 1 would compare 52
    // against 10 and fail instead of warn.
    EXPECT_DOUBLE_EQ(s.results[1].measured, 50.0);

    // Mismatched run settings are flagged.
    FigureScore s2 = scoreFigure(fig, report, 24000, 1, false);
    EXPECT_FALSE(s2.settingsNote.empty());

    std::ostringstream os;
    printScoreReport(os, {s}, false);
    EXPECT_NE(os.str().find("fig_test"), std::string::npos);
    EXPECT_NE(os.str().find("no measured row"), std::string::npos);
    std::ostringstream md;
    printScoreReport(md, {s}, true);
    EXPECT_NE(md.str().find("| fig_test |"), std::string::npos);
}

TEST(Scoreboard, BaselineFromReportUsesDefaults)
{
    json::Value report = parseReport(R"({
      "rows": [
        {"category": "int", "workload": "mcf", "config": "mtvp4",
         "speedupPct": 100.0},
        {"category": "int", "workload": "mcf", "config": "bad",
         "speedupPct": null}
      ]})");
    ExpectedFigure fig =
        baselineFromReport("f", report, 12000, 1, false);
    ASSERT_EQ(fig.points.size(), 1u);  // null metric rows are skipped
    EXPECT_DOUBLE_EQ(fig.points[0].expected, 100.0);
    EXPECT_DOUBLE_EQ(fig.points[0].warnTol, 2.0);
    EXPECT_DOUBLE_EQ(fig.points[0].failTol, 10.0);
}

TEST(Scoreboard, PerturbedMemLatencyFailsWhereRerunPasses)
{
    // The acceptance demo: the simulator is deterministic, so the same
    // settings reproduce the committed expectation exactly — while a
    // machine perturbation (memory latency halved) lands far outside
    // the fail tolerance on a memory-bound workload.
    SimConfig base;
    base.maxInsts = 3000;
    SimConfig mtvp = base;
    mtvp.vpMode = VpMode::Mtvp;
    mtvp.numContexts = 4;
    mtvp.predictor = PredictorKind::Oracle;
    mtvp.selector = SelectorKind::IlpPred;

    SimResult b = runWorkload(base, "mcf");
    SimResult m = runWorkload(mtvp, "mcf");
    double expected = percentSpeedup(b, m);
    ExpectedPoint p = point(expected, defaultWarnTol(expected),
                            defaultFailTol(expected));

    SimResult m2 = runWorkload(mtvp, "mcf");
    EXPECT_DOUBLE_EQ(percentSpeedup(b, m2), expected);
    EXPECT_EQ(evaluatePoint(p, percentSpeedup(b, m2)),
              PointStatus::Pass);

    SimConfig perturbed = mtvp;
    perturbed.memLatency = mtvp.memLatency / 2;
    SimResult mp = runWorkload(perturbed, "mcf");
    EXPECT_EQ(evaluatePoint(p, percentSpeedup(b, mp)),
              PointStatus::Fail);
}
