/**
 * @file
 * Perfetto/Chrome-trace export tests: the emitted trace-event JSON must
 * round-trip through the repo's own parser as a valid document — a
 * `traceEvents` array whose events carry the phase-appropriate fields —
 * with the simulated-time tracks on pid 0 (one named track per
 * hardware context plus the time-skip track) and host-time tracks on a
 * distinct pid, exactly what chrome://tracing / ui.perfetto.dev
 * expects.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "cpu_test_util.hh"
#include "sim/analytics.hh"
#include "sim/json.hh"
#include "sim/perfetto_trace.hh"
#include "sim/simulation.hh"

using namespace vpsim;
using namespace vptest;

namespace
{

/** Parse a trace document and return the traceEvents array. */
const json::Value &
eventsOf(const json::Value &doc)
{
    EXPECT_TRUE(doc.isObject());
    const json::Value *ev = doc.get("traceEvents");
    EXPECT_NE(ev, nullptr);
    EXPECT_TRUE(ev->isArray());
    return *ev;
}

/** Every event must be well-formed for its phase. */
void
expectValidEvents(const json::Value &events)
{
    for (const json::Value &e : events.arr) {
        ASSERT_TRUE(e.isObject());
        std::string ph = e.stringOr("ph", "");
        EXPECT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
        EXPECT_NE(e.get("pid"), nullptr);
        EXPECT_NE(e.get("tid"), nullptr);
        EXPECT_FALSE(e.stringOr("name", "").empty());
        if (ph == "X") {
            EXPECT_NE(e.get("ts"), nullptr);
            EXPECT_NE(e.get("dur"), nullptr);
            EXPECT_GE(e.numberOr("dur", -1.0), 0.0);
        } else if (ph == "i") {
            EXPECT_NE(e.get("ts"), nullptr);
            EXPECT_EQ(e.stringOr("s", ""), "t");
        }
    }
}

} // namespace

TEST(PerfettoTrace, SimTraceRoundTripsWithPerContextTracks)
{
    SimConfig cfg = mtvpConfig(4, PredictorKind::Stride,
                               SelectorKind::IlpPred);
    cfg.perfettoTrace = "unused"; // Enables the analytics timeline.
    CpuRun run = runAsm(chaseKernel(400), cfg, chaseData(0.5));
    ASSERT_GT(run.cpu->analytics().totalSpawns(), 0u);
    ASSERT_FALSE(run.cpu->analytics().spawnSpans().empty());

    std::ostringstream os;
    writeSimTrace(os, run.cpu->analytics(), cfg.numContexts);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    const json::Value &events = eventsOf(doc);
    EXPECT_FALSE(events.arr.empty());
    expectValidEvents(events);

    // One named sim track per context plus the time-skip track, all on
    // pid 0.
    std::set<int> namedTids;
    size_t spans = 0;
    for (const json::Value &e : events.arr) {
        EXPECT_EQ(e.numberOr("pid", -1.0), 0.0);
        if (e.stringOr("ph", "") == "M" &&
            e.stringOr("name", "") == "thread_name") {
            namedTids.insert(static_cast<int>(e.numberOr("tid", -1.0)));
        }
        if (e.stringOr("ph", "") == "X" &&
            e.stringOr("name", "").rfind("spawn ", 0) == 0) {
            ++spans;
            const json::Value *args = e.get("args");
            ASSERT_NE(args, nullptr);
            EXPECT_FALSE(args->stringOr("outcome", "").empty());
        }
    }
    for (int c = 0; c <= cfg.numContexts; ++c)
        EXPECT_EQ(namedTids.count(c), 1u) << "tid " << c;
    EXPECT_EQ(spans, run.cpu->analytics().spawnSpans().size());
}

TEST(PerfettoTrace, CombinedSimAndHostPidsStayDistinct)
{
    PerfettoTrace t;
    t.setProcessName(0, "vpsim (simulated cycles)");
    t.setThreadName(0, 0, "ctx 0");
    t.addSpan(0, 0, "spawn 0x1000", 10.0, 25.0,
              {{"outcome", "promoted"}});
    t.addInstant(0, 0, "squash(promote)", 40.0, {{"insts", "12"}});
    t.setProcessName(1, "host (SimPool workers)");
    t.setThreadName(1, 1, "worker 1");
    t.addSpan(1, 1, "mcf.g", 100.5, 2000.25);

    std::ostringstream os;
    t.write(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    const json::Value &events = eventsOf(doc);
    EXPECT_EQ(events.arr.size(), t.numEvents());
    expectValidEvents(events);

    std::set<int> pids;
    for (const json::Value &e : events.arr)
        pids.insert(static_cast<int>(e.numberOr("pid", -1.0)));
    EXPECT_EQ(pids, (std::set<int>{0, 1}));
}

TEST(PerfettoTrace, ConfigSinkWritesParseableFile)
{
    const char *path = "perfetto_sink_test.json";
    SimConfig cfg = mtvpConfig(4);
    cfg.maxInsts = 4000;
    cfg.maxCycles = 0;
    cfg.perfettoTrace = path;
    SimResult r = runWorkload(cfg, "mcf");
    ASSERT_GT(r.cycles, 0u);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parseFile(path, doc, &err)) << err;
    expectValidEvents(eventsOf(doc));
    EXPECT_FALSE(eventsOf(doc).arr.empty());
    std::remove(path);
}

TEST(PerfettoTrace, NamesAreEscaped)
{
    PerfettoTrace t;
    t.addSpan(0, 0, "weird \"name\"\n\\tab", 0.0, 1.0,
              {{"k\"ey", "v\"al\\ue"}});
    std::ostringstream os;
    t.write(os);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(os.str(), doc, &err)) << err;
    EXPECT_EQ(eventsOf(doc).arr[0].stringOr("name", ""),
              "weird \"name\"\n\\tab");
}
