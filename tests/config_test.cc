/** Configuration tests: Table-1 defaults, key=value overrides,
 *  validation, and the wide-window expansion. */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace vpsim;

TEST(Config, Table1Defaults)
{
    SimConfig c;
    EXPECT_EQ(c.pipelineDepth, 30);
    EXPECT_EQ(c.fetchWidth, 16);
    EXPECT_EQ(c.fetchLines, 2);
    EXPECT_EQ(c.issueWidth, 8);
    EXPECT_EQ(c.intIssue, 6);
    EXPECT_EQ(c.fpIssue, 2);
    EXPECT_EQ(c.memIssue, 4);
    EXPECT_EQ(c.robSize, 256);
    EXPECT_EQ(c.renameRegs, 224);
    EXPECT_EQ(c.iqSize, 64);
    EXPECT_EQ(c.fqSize, 64);
    EXPECT_EQ(c.mqSize, 64);
    EXPECT_EQ(c.bpredMetaEntries, 64u * 1024);
    EXPECT_EQ(c.bpredBimodalEntries, 16u * 1024);
    EXPECT_EQ(c.prefetchEntries, 256u);
    EXPECT_EQ(c.streamBuffers, 8);
    EXPECT_EQ(c.icacheSize, 64u * 1024);
    EXPECT_EQ(c.icacheLatency, 2);
    EXPECT_EQ(c.dcacheSize, 64u * 1024);
    EXPECT_EQ(c.l2Size, 512u * 1024);
    EXPECT_EQ(c.l2Latency, 20);
    EXPECT_EQ(c.l3Size, 4u * 1024 * 1024);
    EXPECT_EQ(c.l3Latency, 50);
    EXPECT_EQ(c.memLatency, 1000);
    // Paper Section 5.4 confidence parameters.
    EXPECT_EQ(c.confidenceThreshold, 12);
    EXPECT_EQ(c.confidenceMax, 32);
    EXPECT_EQ(c.confidenceUp, 1);
    EXPECT_EQ(c.confidenceDown, 8);
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(Config, SetOverrides)
{
    SimConfig c;
    c.set("vpMode", "mtvp");
    c.set("predictor", "oracle");
    c.set("selector", "cacheoracle");
    c.set("fetchPolicy", "nostall");
    c.set("numContexts", "8");
    c.set("spawnLatency", "16");
    c.set("storeBufferSize", "0");
    c.set("maxValuesPerSpawn", "4");
    c.set("maxInsts", "12345");
    c.set("seed", "0x42");
    EXPECT_EQ(c.vpMode, VpMode::Mtvp);
    EXPECT_EQ(c.predictor, PredictorKind::Oracle);
    EXPECT_EQ(c.selector, SelectorKind::CacheOracle);
    EXPECT_EQ(c.fetchPolicy, FetchPolicy::NoStall);
    EXPECT_EQ(c.numContexts, 8);
    EXPECT_EQ(c.spawnLatency, 16);
    EXPECT_EQ(c.storeBufferSize, 0);
    EXPECT_EQ(c.maxValuesPerSpawn, 4);
    EXPECT_EQ(c.maxInsts, 12345u);
    EXPECT_EQ(c.seed, 0x42u);
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(Config, TimeSkipKey)
{
    SimConfig c;
    EXPECT_EQ(c.timeSkip, 1u); // Default on.
    c.set("timeSkip", "0");
    EXPECT_EQ(c.timeSkip, 0u);
    EXPECT_NO_FATAL_FAILURE(c.validate());

    // The engine is exact, so like the telemetry knobs the mode must
    // not split the result cache: both settings share a canonical key.
    SimConfig on;
    on.timeSkip = 1;
    SimConfig off;
    off.timeSkip = 0;
    EXPECT_EQ(on.canonicalKey(), off.canonicalKey());
}

TEST(Config, SetRejectsUnknownKey)
{
    SimConfig c;
    EXPECT_EXIT(c.set("nonsense", "1"), ::testing::ExitedWithCode(1),
                "unknown config key");
}

TEST(Config, SetRejectsBadValues)
{
    SimConfig c;
    EXPECT_EXIT(c.set("vpMode", "bogus"), ::testing::ExitedWithCode(1),
                "unknown vpMode");
    EXPECT_EXIT(c.set("numContexts", "eight"),
                ::testing::ExitedWithCode(1), "bad numeric");
}

TEST(Config, ValidateCatchesBadCombos)
{
    SimConfig c;
    c.vpMode = VpMode::Mtvp;
    c.numContexts = 1;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "at least 2 contexts");

    SimConfig c2;
    c2.maxValuesPerSpawn = 3; // Without mtvp.
    EXPECT_EXIT(c2.validate(), ::testing::ExitedWithCode(1),
                "requires vpMode=mtvp");

    SimConfig c3;
    c3.dcacheSize = 60 * 1024; // Not a power-of-two set count.
    EXPECT_EXIT(c3.validate(), ::testing::ExitedWithCode(1),
                "geometry");
}

TEST(Config, WideWindowExpansion)
{
    SimConfig c;
    EXPECT_EQ(c.effRobSize(), 256);
    EXPECT_EQ(c.effIqSize(), 64);
    c.wideWindow = true;
    EXPECT_EQ(c.effRobSize(), 8192);
    EXPECT_EQ(c.effIqSize(), 8192);
    EXPECT_EQ(c.effFqSize(), 8192);
    EXPECT_EQ(c.effMqSize(), 8192);
    EXPECT_GE(c.effRenameRegs(), 1 << 20);
    EXPECT_NO_FATAL_FAILURE(c.validate());
}

TEST(Config, EnumToString)
{
    EXPECT_STREQ(toString(VpMode::Mtvp), "mtvp");
    EXPECT_STREQ(toString(VpMode::SpawnOnly), "spawnonly");
    EXPECT_STREQ(toString(PredictorKind::WangFranklin), "wf");
    EXPECT_STREQ(toString(SelectorKind::IlpPred), "ilp");
    EXPECT_STREQ(toString(FetchPolicy::SingleFetchPath), "sfp");
}

TEST(Config, ToStringMentionsKeyKnobs)
{
    SimConfig c;
    c.vpMode = VpMode::Mtvp;
    c.numContexts = 4;
    std::string s = c.toString();
    EXPECT_NE(s.find("mtvp"), std::string::npos);
    EXPECT_NE(s.find("contexts=4"), std::string::npos);
    EXPECT_NE(s.find("mem=1000"), std::string::npos);
}
