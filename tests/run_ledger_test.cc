/**
 * @file
 * Tests for the run ledger (sim/run_ledger.hh): event JSON round-trip,
 * crash tolerance (torn trailing line, mid-file corruption, unknown
 * events), replay identity — a real SimJobGraph run leaves a journal
 * whose replay reconstructs the final job-state table exactly — and
 * the ProgressModel renderer (figure-qualified job identity, ETA).
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "sim/json.hh"
#include "sim/result_cache.hh"
#include "sim/run_ledger.hh"
#include "sim/sim_pool.hh"
#include "sim/simulation.hh"

namespace
{

using namespace vpsim;

std::string
tempLedgerPath(const char *tag)
{
    std::string path = ::testing::TempDir() + "vpsim-ledger-" + tag +
                       "-" + std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());
    return path;
}

/** 16-hex job key the engine stamps on ledger events. */
std::string
hexKey(const SimConfig &cfg, const std::string &workload)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      resultKey(cfg, workload)));
    return buf;
}

// ---------------------------------------------------------------------
// Event serialization
// ---------------------------------------------------------------------

TEST(RunLedgerTest, EventJsonRoundTrips)
{
    LedgerEvent e;
    e.kind = LedgerEventKind::Finish;
    e.job = "00c0ffee00c0ffee";
    e.workload = "gzip.g";
    e.figure = "fig2";
    e.worker = "simpool/3";
    e.outcome = "ok";
    e.wallSeconds = 1.25;
    e.unixMs = 1700000000123.0;
    e.insts = 12345;
    e.cycles = 67890;

    const std::string path = tempLedgerPath("roundtrip");
    std::ofstream(path) << ledgerEventJson(e) << "\n";

    std::vector<LedgerEvent> events;
    std::vector<std::string> warnings;
    ASSERT_TRUE(loadLedger(path, events, &warnings));
    EXPECT_TRUE(warnings.empty());
    ASSERT_EQ(events.size(), 1u);
    const LedgerEvent &r = events[0];
    EXPECT_EQ(r.kind, LedgerEventKind::Finish);
    EXPECT_EQ(r.job, e.job);
    EXPECT_EQ(r.workload, e.workload);
    EXPECT_EQ(r.figure, e.figure);
    EXPECT_EQ(r.worker, e.worker);
    EXPECT_EQ(r.outcome, e.outcome);
    EXPECT_DOUBLE_EQ(r.wallSeconds, e.wallSeconds);
    EXPECT_DOUBLE_EQ(r.unixMs, e.unixMs);
    EXPECT_EQ(r.insts, e.insts);
    EXPECT_EQ(r.cycles, e.cycles);
}

TEST(RunLedgerTest, EveryEventKindRoundTripsItsName)
{
    for (LedgerEventKind k :
         {LedgerEventKind::RunStart, LedgerEventKind::Submit,
          LedgerEventKind::CacheHit, LedgerEventKind::Start,
          LedgerEventKind::Finish, LedgerEventKind::Stuck}) {
        LedgerEventKind parsed;
        ASSERT_TRUE(ledgerEventKind(toString(k), parsed)) << toString(k);
        EXPECT_EQ(parsed, k);
    }
    LedgerEventKind parsed;
    EXPECT_FALSE(ledgerEventKind("frobnicate", parsed));
}

// ---------------------------------------------------------------------
// Crash tolerance
// ---------------------------------------------------------------------

TEST(RunLedgerTest, TornTrailingLineIsSkippedWithWarning)
{
    const std::string path = tempLedgerPath("torn");
    {
        std::ofstream os(path);
        os << R"({"ev": "submit", "ms": 1000, "job": "aa"})" << "\n";
        os << R"({"ev": "start", "ms": 1001, "job": "aa"})" << "\n";
        // A crashed writer's final line: cut mid-JSON, no newline.
        os << R"({"ev": "finish", "ms": 1002, "job": ")";
    }
    std::vector<LedgerEvent> events;
    std::vector<std::string> warnings;
    ASSERT_TRUE(loadLedger(path, events, &warnings));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].kind, LedgerEventKind::Start);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find(":3"), std::string::npos) << warnings[0];

    // Replay still works on what survived.
    LedgerState st = replayLedger(events);
    EXPECT_EQ(st.jobs.size(), 1u);
    EXPECT_EQ(st.running(), 1u);
}

TEST(RunLedgerTest, MidFileCorruptionAndUnknownEventsAreSkipped)
{
    const std::string path = tempLedgerPath("corrupt");
    {
        std::ofstream os(path);
        os << R"({"ev": "submit", "ms": 1000, "job": "aa"})" << "\n";
        os << "!! binary garbage \x01\x02 !!" << "\n";
        os << R"({"ev": "mystery", "ms": 1001, "job": "aa"})" << "\n";
        os << "\n"; // Blank lines are fine, not even a warning.
        os << R"({"ev": "finish", "ms": 1002, "job": "aa",)"
           << R"( "outcome": "ok", "wallSeconds": 0.5, "insts": 10})"
           << "\n";
    }
    std::vector<LedgerEvent> events;
    std::vector<std::string> warnings;
    ASSERT_TRUE(loadLedger(path, events, &warnings));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, LedgerEventKind::Submit);
    EXPECT_EQ(events[1].kind, LedgerEventKind::Finish);
    ASSERT_EQ(warnings.size(), 2u);

    LedgerState st = replayLedger(events);
    ASSERT_EQ(st.jobs.size(), 1u);
    EXPECT_EQ(st.jobs.begin()->second.state,
              LedgerJobState::State::Finished);
    EXPECT_EQ(st.totalInsts, 10u);
}

TEST(RunLedgerTest, MissingFileIsAnError)
{
    std::vector<LedgerEvent> events;
    EXPECT_FALSE(loadLedger(tempLedgerPath("missing"), events));
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

TEST(RunLedgerTest, WriterAppendsAndStampsFigure)
{
    const std::string path = tempLedgerPath("writer");
    RunLedger ledger;
    EXPECT_FALSE(ledger.enabled());
    LedgerEvent dropped;
    dropped.kind = LedgerEventKind::Submit;
    dropped.job = "aa";
    ledger.record(std::move(dropped)); // Disabled: dropped silently.

    ledger.open(path);
    ASSERT_TRUE(ledger.enabled());
    ledger.setFigure("fig9");
    LedgerEvent e;
    e.kind = LedgerEventKind::Submit;
    e.job = "bb";
    e.unixMs = 5000.0;
    ledger.record(std::move(e));

    // Reopening the same path appends rather than truncates.
    ledger.open(path);
    LedgerEvent e2;
    e2.kind = LedgerEventKind::Start;
    e2.job = "bb";
    e2.figure = "explicit"; // Pre-set figure wins over the stamp.
    e2.unixMs = 5001.0;
    ledger.record(std::move(e2));

    std::vector<LedgerEvent> events;
    ASSERT_TRUE(loadLedger(path, events));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].figure, "fig9");
    EXPECT_EQ(events[1].figure, "explicit");
    EXPECT_DOUBLE_EQ(events[0].unixMs, 5000.0);
}

// ---------------------------------------------------------------------
// Replay identity against a real engine run
// ---------------------------------------------------------------------

TEST(RunLedgerTest, ReplayReconstructsEngineRunExactly)
{
    const std::string path = tempLedgerPath("engine");
    RunLedger::global().open(path);
    RunLedger::global().setFigure("ledger_test");

    SimConfig cfg;
    cfg.vpMode = VpMode::None;
    cfg.maxInsts = 2000;
    cfg.seed = 1;
    const std::vector<std::string> workloads = {"gzip.g", "mcf"};

    std::vector<SimResult> results;
    {
        SimPool pool(2);
        SimJobGraph graph(pool, nullptr);
        std::vector<std::shared_future<SimResult>> futs;
        for (const auto &wl : workloads)
            futs.push_back(graph.submit(cfg, wl));
        // Duplicate submit: dedup'd by the graph, no extra events.
        futs.push_back(graph.submit(cfg, workloads[0]));
        for (auto &f : futs)
            results.push_back(f.get());
    }
    RunLedger::global().open(""); // Disable before reading.

    std::vector<LedgerEvent> events;
    std::vector<std::string> warnings;
    ASSERT_TRUE(loadLedger(path, events, &warnings));
    EXPECT_TRUE(warnings.empty());
    LedgerState st = replayLedger(events);

    // The replayed table is exactly the engine's final job state:
    // one entry per unique job, all finished, with the headline
    // numbers of the SimResult the future delivered.
    ASSERT_EQ(st.jobs.size(), workloads.size());
    EXPECT_EQ(st.submitted, workloads.size());
    EXPECT_EQ(st.started, workloads.size());
    EXPECT_EQ(st.finished, workloads.size());
    EXPECT_EQ(st.done(), workloads.size());
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.cacheHits, 0u);
    EXPECT_EQ(st.queued(), 0u);
    EXPECT_EQ(st.running(), 0u);
    for (size_t i = 0; i < workloads.size(); ++i) {
        const std::string key =
            "ledger_test/" + hexKey(cfg, workloads[i]);
        auto it = st.jobs.find(key);
        ASSERT_NE(it, st.jobs.end()) << key;
        const LedgerJobState &j = it->second;
        EXPECT_EQ(j.state, LedgerJobState::State::Finished);
        EXPECT_EQ(j.job, hexKey(cfg, workloads[i]));
        EXPECT_EQ(j.workload, workloads[i]);
        EXPECT_EQ(j.figure, "ledger_test");
        EXPECT_EQ(j.outcome, "ok");
        EXPECT_FALSE(j.worker.empty());
        EXPECT_EQ(j.insts, results[i].usefulInsts);
        EXPECT_EQ(j.cycles, results[i].cycles);
        EXPECT_GE(j.wallSeconds, 0.0);
    }

    // Replay is a pure fold: replaying the same events again gives the
    // same table (idempotent reconstruction, the crash-recovery path).
    LedgerState again = replayLedger(events);
    EXPECT_EQ(again.jobs.size(), st.jobs.size());
    EXPECT_EQ(again.totalInsts, st.totalInsts);
    EXPECT_DOUBLE_EQ(again.totalBusySeconds, st.totalBusySeconds);
}

TEST(RunLedgerTest, CacheHitsJournalAsCacheHitEvents)
{
    const std::string cacheDir = ::testing::TempDir() +
                                 "vpsim-ledger-cache-" +
                                 std::to_string(::getpid());
    SimConfig cfg;
    cfg.vpMode = VpMode::None;
    cfg.maxInsts = 2000;
    cfg.seed = 42;

    ResultCache cache(cacheDir);
    SimPool pool(1);
    { // Cold run: populate the cache (ledger disabled).
        SimJobGraph graph(pool, &cache);
        graph.submit(cfg, "mcf").get();
    }

    const std::string path = tempLedgerPath("cachehit");
    RunLedger::global().open(path);
    { // Warm run: the journal must show submit + cache-hit only.
        SimJobGraph graph(pool, &cache);
        graph.submit(cfg, "mcf").get();
        EXPECT_EQ(graph.cacheHits(), 1u);
    }
    RunLedger::global().open("");

    std::vector<LedgerEvent> events;
    ASSERT_TRUE(loadLedger(path, events));
    LedgerState st = replayLedger(events);
    EXPECT_EQ(st.submitted, 1u);
    EXPECT_EQ(st.cacheHits, 1u);
    EXPECT_EQ(st.finished, 0u);
    ASSERT_EQ(st.jobs.size(), 1u);
    EXPECT_EQ(st.jobs.begin()->second.state,
              LedgerJobState::State::CacheHit);
    EXPECT_EQ(st.done(), 1u);
}

// ---------------------------------------------------------------------
// Reports and progress rendering
// ---------------------------------------------------------------------

LedgerEvent
ev(LedgerEventKind kind, const std::string &job,
   const std::string &figure, double ms)
{
    LedgerEvent e;
    e.kind = kind;
    e.job = job;
    e.figure = figure;
    e.unixMs = ms;
    return e;
}

TEST(ProgressModelTest, FigureQualifiedJobIdentity)
{
    // The same canonical job key in two figures is two sweep jobs
    // (sibling figures share baseline points); done/total must come
    // from the job table, not raw event counts.
    ProgressModel pm;
    pm.apply(ev(LedgerEventKind::Submit, "aa", "fig2", 1000));
    pm.apply(ev(LedgerEventKind::Submit, "aa", "fig4", 1001));
    LedgerEvent f1 = ev(LedgerEventKind::Finish, "aa", "fig2", 2000);
    f1.outcome = "ok";
    f1.wallSeconds = 1.0;
    f1.insts = 500;
    pm.apply(f1);

    EXPECT_EQ(pm.state().jobs.size(), 2u);
    EXPECT_EQ(pm.state().done(), 1u);
    std::string line = pm.renderLine(3000.0);
    EXPECT_NE(line.find("1/2 jobs"), std::string::npos) << line;

    LedgerEvent f2 = ev(LedgerEventKind::Finish, "aa", "fig4", 2500);
    f2.outcome = "ok";
    f2.wallSeconds = 1.5;
    f2.insts = 500;
    pm.apply(f2);
    EXPECT_NE(pm.renderLine(3000.0).find("2/2 jobs"),
              std::string::npos);
}

TEST(ProgressModelTest, RenderLineShowsRateEtaAndFailures)
{
    ProgressModel pm;
    for (int i = 0; i < 4; ++i) {
        pm.apply(ev(LedgerEventKind::Submit, "job" + std::to_string(i),
                    "fig", 1000.0 + i));
    }
    LedgerEvent s = ev(LedgerEventKind::Start, "job0", "fig", 1100);
    s.worker = "simpool/0";
    pm.apply(s);
    LedgerEvent f = ev(LedgerEventKind::Finish, "job0", "fig", 3000);
    f.outcome = "ok";
    f.wallSeconds = 1.9;
    f.insts = 2000000;
    pm.apply(f);
    LedgerEvent bad = ev(LedgerEventKind::Finish, "job1", "fig", 3500);
    bad.outcome = "error";
    pm.apply(bad);

    std::string line = pm.renderLine(3500.0);
    EXPECT_NE(line.find("2/4 jobs"), std::string::npos) << line;
    EXPECT_NE(line.find("1 FAILED"), std::string::npos) << line;
    EXPECT_NE(line.find("M insts/s"), std::string::npos) << line;
    // Two jobs still pending and latency history exists: an ETA shows.
    EXPECT_NE(line.find("ETA"), std::string::npos) << line;

    // The per-figure breakdown counts failures separately from "done".
    std::string figures = pm.renderFigures();
    EXPECT_NE(figures.find("fig: 1/4 done"), std::string::npos)
        << figures;
    EXPECT_NE(figures.find("1 FAILED"), std::string::npos) << figures;
}

TEST(LedgerReportTest, ReportAndJobsJsonAgreeWithReplay)
{
    std::vector<LedgerEvent> events;
    events.push_back(ev(LedgerEventKind::Submit, "aa", "figA", 1000));
    events.push_back(ev(LedgerEventKind::Submit, "bb", "figB", 1001));
    LedgerEvent s = ev(LedgerEventKind::Start, "aa", "figA", 1002);
    s.worker = "simpool/1";
    s.workload = "gzip.g";
    events.push_back(s);
    LedgerEvent f = ev(LedgerEventKind::Finish, "aa", "figA", 2002);
    f.outcome = "ok";
    f.worker = "simpool/1";
    f.workload = "gzip.g";
    f.wallSeconds = 1.0;
    f.insts = 777;
    events.push_back(f);
    LedgerEvent stuck = ev(LedgerEventKind::Stuck, "bb", "figB", 2500);
    stuck.outcome = "slow";
    events.push_back(stuck);

    LedgerState st = replayLedger(events);
    std::ostringstream report;
    writeLedgerReport(report, st);
    EXPECT_NE(report.str().find("2 jobs"), std::string::npos)
        << report.str();
    EXPECT_NE(report.str().find("1 watchdog flags"), std::string::npos);
    EXPECT_NE(report.str().find("figA"), std::string::npos);
    EXPECT_NE(report.str().find("figB"), std::string::npos);

    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(ledgerJobsJson(st), v, &err)) << err;
    EXPECT_EQ(v.numberOr("submitted", -1.0), 2.0);
    EXPECT_EQ(v.numberOr("finished", -1.0), 1.0);
    EXPECT_EQ(v.numberOr("queued", -1.0), 1.0);
    EXPECT_EQ(v.numberOr("stuckFlags", -1.0), 1.0);
    EXPECT_EQ(v.numberOr("totalInsts", -1.0), 777.0);
    const json::Value *jobs = v.get("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_TRUE(jobs->isArray());
    ASSERT_EQ(jobs->arr.size(), 2u);
    // Entries carry the bare job key; the figure is its own field.
    EXPECT_EQ(jobs->arr[0].stringOr("job", ""), "aa");
    EXPECT_EQ(jobs->arr[0].stringOr("figure", ""), "figA");
    EXPECT_EQ(jobs->arr[0].stringOr("state", ""), "finished");
    EXPECT_EQ(jobs->arr[1].stringOr("job", ""), "bb");
    EXPECT_EQ(jobs->arr[1].stringOr("state", ""), "queued");
}

} // namespace
