/** Load-selector tests: ILP-pred's rate bookkeeping, the
 *  greater-than-none rule, burst exploration, and the cache-level
 *  oracle / always selectors. */

#include <gtest/gtest.h>

#include "vpred/load_selector.hh"

using namespace vpsim;

namespace
{

/** Exhaust the exploration bursts so exploitation decisions dominate. */
void
burnBursts(IlpPredSelector &sel, Addr pc)
{
    for (uint32_t i = 0; i < 3 * IlpPredSelector::burstLen; ++i)
        sel.select(pc, true, true, MemLevel::Memory);
}

} // namespace

TEST(IlpPred, RateAccumulates)
{
    IlpPredSelector sel;
    Addr pc = 0x1000;
    sel.recordOutcome(pc, VpChoice::None, 100, 1000);
    sel.recordOutcome(pc, VpChoice::Mtvp, 500, 1000);
    EXPECT_GT(sel.rate(pc, VpChoice::Mtvp), sel.rate(pc, VpChoice::None));
}

TEST(IlpPred, ShiftDivisionApproximatesRatio)
{
    IlpPredSelector sel;
    Addr pc = 0x1000;
    // Same instruction count over twice the cycles => about half rate.
    sel.recordOutcome(pc, VpChoice::None, 4096, 1024);
    sel.recordOutcome(pc, VpChoice::Stvp, 4096, 2048);
    uint64_t none = sel.rate(pc, VpChoice::None);
    uint64_t stvp = sel.rate(pc, VpChoice::Stvp);
    EXPECT_GT(none, stvp);
    EXPECT_NEAR(static_cast<double>(none) / stvp, 2.0, 0.6);
}

TEST(IlpPred, PrefersMeasuredWinner)
{
    IlpPredSelector sel;
    Addr pc = 0x2000;
    burnBursts(sel, pc);
    sel.recordOutcome(pc, VpChoice::None, 100, 4096);
    sel.recordOutcome(pc, VpChoice::Stvp, 200, 4096);
    sel.recordOutcome(pc, VpChoice::Mtvp, 800, 4096);
    EXPECT_EQ(sel.select(pc, true, true, MemLevel::Memory),
              VpChoice::Mtvp);
}

TEST(IlpPred, PredictionMustBeatNone)
{
    IlpPredSelector sel;
    Addr pc = 0x3000;
    burnBursts(sel, pc);
    sel.recordOutcome(pc, VpChoice::None, 800, 4096);
    sel.recordOutcome(pc, VpChoice::Stvp, 200, 4096);
    sel.recordOutcome(pc, VpChoice::Mtvp, 100, 4096);
    EXPECT_EQ(sel.select(pc, true, true, MemLevel::Memory),
              VpChoice::None);
}

TEST(IlpPred, RespectsAvailability)
{
    IlpPredSelector sel;
    Addr pc = 0x4000;
    burnBursts(sel, pc);
    sel.recordOutcome(pc, VpChoice::None, 10, 4096);
    sel.recordOutcome(pc, VpChoice::Stvp, 400, 4096);
    sel.recordOutcome(pc, VpChoice::Mtvp, 800, 4096);
    // MTVP is measured-best but no context is free: fall back to STVP.
    EXPECT_EQ(sel.select(pc, false, true, MemLevel::Memory),
              VpChoice::Stvp);
    EXPECT_EQ(sel.select(pc, false, false, MemLevel::Memory),
              VpChoice::None);
}

TEST(IlpPred, ExplorationBurstsSampleEachMode)
{
    IlpPredSelector sel;
    Addr pc = 0x5000;
    int mtvp = 0;
    int stvp = 0;
    int none = 0;
    for (uint32_t i = 0; i < 3 * IlpPredSelector::burstLen; ++i) {
        switch (sel.select(pc, true, true, MemLevel::Memory)) {
          case VpChoice::Mtvp: ++mtvp; break;
          case VpChoice::Stvp: ++stvp; break;
          case VpChoice::None: ++none; break;
        }
    }
    EXPECT_EQ(mtvp, static_cast<int>(IlpPredSelector::burstLen));
    EXPECT_EQ(stvp, static_cast<int>(IlpPredSelector::burstLen));
    EXPECT_EQ(none, static_cast<int>(IlpPredSelector::burstLen));
}

TEST(IlpPred, DistinctPcsIndependent)
{
    IlpPredSelector sel;
    burnBursts(sel, 0x6000);
    burnBursts(sel, 0x7000);
    sel.recordOutcome(0x6000, VpChoice::None, 10, 4096);
    sel.recordOutcome(0x6000, VpChoice::Mtvp, 999, 4096);
    sel.recordOutcome(0x6000, VpChoice::Stvp, 11, 4096);
    sel.recordOutcome(0x7000, VpChoice::None, 999, 4096);
    sel.recordOutcome(0x7000, VpChoice::Mtvp, 10, 4096);
    sel.recordOutcome(0x7000, VpChoice::Stvp, 11, 4096);
    EXPECT_EQ(sel.select(0x6000, true, true, MemLevel::L1),
              VpChoice::Mtvp);
    EXPECT_EQ(sel.select(0x7000, true, true, MemLevel::L1),
              VpChoice::None);
}

TEST(IlpPred, AgingHalvesCounters)
{
    IlpPredSelector sel;
    Addr pc = 0x8000;
    // Push cycles past the aging limit; rates must stay finite and the
    // entry usable.
    for (int i = 0; i < 40; ++i)
        sel.recordOutcome(pc, VpChoice::None, 1 << 20, 1 << 20);
    EXPECT_GT(sel.rate(pc, VpChoice::None), 0u);
}

TEST(CacheOracle, MapsLevelsToChoices)
{
    CacheOracleSelector sel;
    EXPECT_EQ(sel.select(0, true, true, MemLevel::Memory), VpChoice::Mtvp);
    EXPECT_EQ(sel.select(0, false, true, MemLevel::Memory),
              VpChoice::Stvp);
    EXPECT_EQ(sel.select(0, true, true, MemLevel::L3), VpChoice::Stvp);
    EXPECT_EQ(sel.select(0, true, true, MemLevel::L2), VpChoice::Stvp);
    EXPECT_EQ(sel.select(0, true, true, MemLevel::L1), VpChoice::None);
    EXPECT_EQ(sel.select(0, false, false, MemLevel::Memory),
              VpChoice::None);
}

TEST(Always, TakesWhatItCanGet)
{
    AlwaysSelector sel;
    EXPECT_EQ(sel.select(0, true, true, MemLevel::L1), VpChoice::Mtvp);
    EXPECT_EQ(sel.select(0, false, true, MemLevel::L1), VpChoice::Stvp);
    EXPECT_EQ(sel.select(0, false, false, MemLevel::L1), VpChoice::None);
}

TEST(Factory, BuildsEverySelector)
{
    for (SelectorKind k : {SelectorKind::IlpPred, SelectorKind::CacheOracle,
                           SelectorKind::Always}) {
        SimConfig cfg;
        cfg.selector = k;
        auto sel = makeLoadSelector(cfg);
        ASSERT_NE(sel, nullptr);
        sel->select(0x1000, true, true, MemLevel::L1);
    }
}
