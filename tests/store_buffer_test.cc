/** Store-segment tests: overlay semantics, ancestor-chain search order,
 *  freezing, flushing, and resident/pending accounting — the mechanics
 *  behind the paper's per-context speculative store buffers. */

#include <gtest/gtest.h>

#include "emu/memory.hh"
#include "emu/store_buffer.hh"

using namespace vpsim;

TEST(StoreSegment, WriteAndReadBack)
{
    MainMemory mem;
    StoreSegment seg(0, nullptr);
    seg.writeBytes(0x100, 8, 0x1122334455667788ull);
    ChainReadResult r = readThroughChain(&seg, mem, 0x100, 8);
    EXPECT_EQ(r.value, 0x1122334455667788ull);
    EXPECT_TRUE(r.fullyForwarded);
    EXPECT_TRUE(r.anyForwarded);
}

TEST(StoreSegment, FallsThroughToMemory)
{
    MainMemory mem;
    mem.write64(0x200, 42);
    StoreSegment seg(0, nullptr);
    ChainReadResult r = readThroughChain(&seg, mem, 0x200, 8);
    EXPECT_EQ(r.value, 42u);
    EXPECT_FALSE(r.anyForwarded);
}

TEST(StoreSegment, PartialForwardMergesBytes)
{
    MainMemory mem;
    mem.write64(0x300, 0xffffffffffffffffull);
    StoreSegment seg(0, nullptr);
    seg.writeBytes(0x300, 4, 0xaabbccdd); // low four bytes only
    ChainReadResult r = readThroughChain(&seg, mem, 0x300, 8);
    EXPECT_EQ(r.value, 0xffffffffaabbccddull);
    EXPECT_TRUE(r.anyForwarded);
    EXPECT_FALSE(r.fullyForwarded);
}

TEST(StoreSegment, NewestWriteWinsWithinSegment)
{
    MainMemory mem;
    StoreSegment seg(0, nullptr);
    seg.writeBytes(0x400, 8, 1);
    seg.writeBytes(0x400, 8, 2);
    EXPECT_EQ(readThroughChain(&seg, mem, 0x400, 8).value, 2u);
}

TEST(StoreSegment, ChainSearchIsThreadOrdered)
{
    // The paper's rule: a search hits if the store belongs to the
    // searching thread or an *older* thread — younger segments are
    // checked first and shadow their ancestors.
    MainMemory mem;
    mem.write64(0x500, 1);
    auto oldest = std::make_shared<StoreSegment>(0, nullptr);
    oldest->writeBytes(0x500, 8, 2);
    oldest->freeze();
    auto middle = std::make_shared<StoreSegment>(1, oldest);
    auto leaf = std::make_shared<StoreSegment>(2, middle);

    EXPECT_EQ(readThroughChain(leaf.get(), mem, 0x500, 8).value, 2u);
    middle->writeBytes(0x500, 8, 3);
    EXPECT_EQ(readThroughChain(leaf.get(), mem, 0x500, 8).value, 3u);
    leaf->writeBytes(0x500, 8, 4);
    EXPECT_EQ(readThroughChain(leaf.get(), mem, 0x500, 8).value, 4u);
    // The middle segment still sees its own value, not the leaf's.
    EXPECT_EQ(readThroughChain(middle.get(), mem, 0x500, 8).value, 3u);
}

TEST(StoreSegment, SiblingsDoNotSeeEachOther)
{
    MainMemory mem;
    auto frozen = std::make_shared<StoreSegment>(0, nullptr);
    frozen->freeze();
    auto childA = std::make_shared<StoreSegment>(1, frozen);
    auto childB = std::make_shared<StoreSegment>(2, frozen);
    childA->writeBytes(0x600, 8, 111);
    EXPECT_EQ(readThroughChain(childB.get(), mem, 0x600, 8).value, 0u);
    EXPECT_EQ(readThroughChain(childA.get(), mem, 0x600, 8).value, 111u);
}

TEST(StoreSegment, FlushWritesToMemoryAndClears)
{
    MainMemory mem;
    StoreSegment seg(0, nullptr);
    seg.writeBytes(0x700, 8, 99);
    seg.writeBytes(0x708, 4, 0xabcd);
    seg.flushTo(mem);
    EXPECT_EQ(mem.read64(0x700), 99u);
    EXPECT_EQ(mem.read32(0x708), 0xabcdu);
    EXPECT_EQ(seg.byteCount(), 0u);
}

TEST(StoreSegment, ResidentAccounting)
{
    StoreSegment seg(0, nullptr);
    EXPECT_EQ(seg.residentStores(), 0);
    seg.addResidentStore(0x10);
    seg.addResidentStore(0x20);
    EXPECT_EQ(seg.residentStores(), 2);
    EXPECT_EQ(seg.drainResidentStore(), 0x10u); // FIFO
    EXPECT_EQ(seg.drainResidentStore(), 0x20u);
    EXPECT_EQ(seg.residentStores(), 0);
}

TEST(StoreSegment, FlushableConditions)
{
    StoreSegment seg(0, nullptr);
    EXPECT_FALSE(seg.flushable()); // Not frozen.
    seg.freeze();
    EXPECT_TRUE(seg.flushable());
    seg.addPendingCommit();
    EXPECT_FALSE(seg.flushable());
    seg.removePendingCommit();
    seg.addResidentStore(0x10);
    EXPECT_FALSE(seg.flushable());
    seg.drainResidentStore();
    EXPECT_TRUE(seg.flushable());
}

TEST(StoreSegment, FrozenRejectsWritesInDebug)
{
    auto seg = std::make_shared<StoreSegment>(0, nullptr);
    seg->freeze();
    EXPECT_DEATH(seg->writeBytes(0x1, 1, 1), "frozen");
}

TEST(StoreSegment, UnlinkParent)
{
    MainMemory mem;
    auto parent = std::make_shared<StoreSegment>(0, nullptr);
    parent->writeBytes(0x800, 8, 5);
    auto child = std::make_shared<StoreSegment>(1, parent);
    EXPECT_EQ(readThroughChain(child.get(), mem, 0x800, 8).value, 5u);
    parent->flushTo(mem);
    child->unlinkParent();
    EXPECT_EQ(child->parent(), nullptr);
    EXPECT_EQ(readThroughChain(child.get(), mem, 0x800, 8).value, 5u);
}
