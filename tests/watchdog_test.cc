/**
 * @file
 * Tests for the stuck-job watchdog (sim/watchdog.hh): an artificially
 * slowed job is flagged (warn + counter + ledger `stuck` event) and
 * its cooperative diagnostic dump runs — without the run being killed;
 * probe nesting restores the outer probe on unwind; a disabled
 * watchdog never flags; and the headline telemetry-inertness contract:
 * simulation results are bit-identical with the ledger and an
 * aggressive watchdog enabled versus all telemetry off.
 *
 * This file legitimately reads the wall clock (sleeps, deadlines): the
 * component under test is the engine's wall-clock supervisor. vplint
 * allowlists it.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "sim/run_ledger.hh"
#include "sim/simulation.hh"
#include "sim/watchdog.hh"

namespace
{

using namespace vpsim;

std::string
tempLedgerPath(const char *tag)
{
    std::string path = ::testing::TempDir() + "vpsim-watchdog-" + tag +
                       "-" + std::to_string(::getpid()) + ".jsonl";
    std::remove(path.c_str());
    return path;
}

/** Poll watchdogPoll() until @p pred holds or ~3s elapse. */
template <typename Pred>
bool
pollUntil(Pred pred)
{
    for (int i = 0; i < 600; ++i) {
        watchdogPoll();
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

WatchdogLimits
aggressiveLimits()
{
    WatchdogLimits lim;
    lim.enabled = true;
    lim.minSeconds = 0.05;
    lim.percentileMultiple = 1e9; // p95 path can only raise, never cut.
    lim.heartbeatSeconds = 0.01;
    return lim;
}

TEST(WatchdogTest, LimitsFromEnvironment)
{
    ::setenv("MTVP_WATCHDOG", "0", 1);
    ::setenv("MTVP_WATCHDOG_MIN_SECS", "12.5", 1);
    ::setenv("MTVP_WATCHDOG_MULT", "3", 1);
    WatchdogLimits l = watchdogLimitsFromEnv();
    EXPECT_FALSE(l.enabled);
    EXPECT_DOUBLE_EQ(l.minSeconds, 12.5);
    EXPECT_DOUBLE_EQ(l.percentileMultiple, 3.0);
    ::unsetenv("MTVP_WATCHDOG");
    ::unsetenv("MTVP_WATCHDOG_MIN_SECS");
    ::unsetenv("MTVP_WATCHDOG_MULT");
    l = watchdogLimitsFromEnv();
    EXPECT_TRUE(l.enabled);
    EXPECT_DOUBLE_EQ(l.minSeconds, 30.0);
    EXPECT_DOUBLE_EQ(l.percentileMultiple, 8.0);
}

TEST(WatchdogTest, FlagsSlowJobWithoutKillingIt)
{
    const std::string path = tempLedgerPath("flag");
    RunLedger::global().open(path);
    watchdogSetLimits(aggressiveLimits());

    const uint64_t before = watchdogFlaggedTotal();
    bool dumped = false;
    {
        WatchdogJobScope job("00000000deadbeef", "slow_workload");
        WatchdogProbe probe([&dumped] { dumped = true; });
        // The "job": sleep past the floor, polling as a simulation
        // loop would. The watchdog must flag it and request the dump,
        // and control must remain here (nothing killed).
        EXPECT_TRUE(pollUntil([&] {
            return watchdogFlaggedTotal() > before && dumped;
        }));
    }
    RunLedger::global().open("");

    EXPECT_EQ(watchdogFlaggedTotal(), before + 1);
    EXPECT_TRUE(dumped);

    // The flag left a `stuck` journal entry identifying the job.
    std::vector<LedgerEvent> events;
    ASSERT_TRUE(loadLedger(path, events));
    const LedgerEvent *stuck = nullptr;
    for (const LedgerEvent &e : events) {
        if (e.kind == LedgerEventKind::Stuck)
            stuck = &e;
    }
    ASSERT_NE(stuck, nullptr);
    EXPECT_EQ(stuck->job, "00000000deadbeef");
    EXPECT_EQ(stuck->workload, "slow_workload");
    EXPECT_EQ(stuck->outcome, "slow");
    EXPECT_GE(stuck->wallSeconds, 0.05);

    // Replay maps the flag onto the job, not a terminal state change.
    LedgerState st = replayLedger(events);
    EXPECT_EQ(st.stuckFlags, 1u);
}

TEST(WatchdogTest, NestedProbeRestoresOuterOnUnwind)
{
    watchdogSetLimits(aggressiveLimits());
    int outerRuns = 0, innerRuns = 0;
    WatchdogProbe outer([&outerRuns] { ++outerRuns; });
    {
        WatchdogJobScope job("0000000000000001", "outer_phase");
        {
            // Nested phase (e.g. fast-forward inside a run): the inner
            // probe owns the dump while it lives.
            WatchdogProbe inner([&innerRuns] { ++innerRuns; });
            EXPECT_TRUE(pollUntil([&] { return innerRuns == 1; }));
        }
        EXPECT_EQ(outerRuns, 0);
    }
    {
        // A fresh job on the same thread: the outer probe must be
        // active again after the inner one unwound.
        WatchdogJobScope job("0000000000000002", "outer_again");
        EXPECT_TRUE(pollUntil([&] { return outerRuns == 1; }));
    }
    EXPECT_EQ(innerRuns, 1);
}

TEST(WatchdogTest, DisabledWatchdogNeverFlags)
{
    WatchdogLimits lim = aggressiveLimits();
    lim.enabled = false;
    watchdogSetLimits(lim);

    const uint64_t before = watchdogFlaggedTotal();
    {
        WatchdogJobScope job("000000000000000d", "disabled_wl");
        // Sleep well past the (disabled) floor.
        for (int i = 0; i < 30; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            watchdogPoll();
        }
    }
    EXPECT_EQ(watchdogFlaggedTotal(), before);
}

// ---------------------------------------------------------------------
// The headline contract: telemetry is inert.
// ---------------------------------------------------------------------

TEST(WatchdogTest, TelemetryIsBitIdenticallyInert)
{
    SimConfig cfg;
    cfg.vpMode = VpMode::Mtvp;
    cfg.numContexts = 2;
    cfg.predictor = PredictorKind::Oracle;
    cfg.maxInsts = 5000;
    cfg.seed = 7;

    // Quiet run: no ledger, watchdog off.
    WatchdogLimits off = aggressiveLimits();
    off.enabled = false;
    watchdogSetLimits(off);
    RunLedger::global().open("");
    SimResult quiet = runWorkload(cfg, "gzip.g");

    // Noisy run: ledger journaling, watchdog aggressive enough to flag
    // mid-run (floor far below the job's wall time on any machine is
    // not guaranteed, and doesn't need to be: inertness must hold
    // whether or not a dump fires).
    const std::string path = tempLedgerPath("inert");
    RunLedger::global().open(path);
    WatchdogLimits noisy = aggressiveLimits();
    noisy.minSeconds = 0.01;
    noisy.heartbeatSeconds = 0.005;
    watchdogSetLimits(noisy);
    SimResult noisyResult;
    {
        WatchdogJobScope job("00000000000f00d5", "gzip.g");
        noisyResult = runWorkload(cfg, "gzip.g");
    }
    RunLedger::global().open("");
    watchdogSetLimits(off);

    // Every headline number and every stat: bit-identical.
    EXPECT_EQ(quiet.workload, noisyResult.workload);
    EXPECT_EQ(quiet.cycles, noisyResult.cycles);
    EXPECT_EQ(quiet.usefulInsts, noisyResult.usefulInsts);
    EXPECT_EQ(quiet.usefulIpc, noisyResult.usefulIpc);
    EXPECT_EQ(quiet.halted, noisyResult.halted);
    ASSERT_EQ(quiet.stats.size(), noisyResult.stats.size());
    for (const auto &[name, value] : quiet.stats) {
        auto it = noisyResult.stats.find(name);
        ASSERT_NE(it, noisyResult.stats.end()) << "missing stat " << name;
        EXPECT_EQ(value, it->second) << "stat " << name;
    }
}

} // namespace
