/** The repository's central property test: speculation never leaks.
 *  For a matrix of kernels x machine configurations, the final
 *  architectural memory state must be bit-identical to a pure
 *  functional execution, and the useful instruction count must equal
 *  the program's true dynamic length. */

#include <gtest/gtest.h>

#include "cpu_test_util.hh"
#include "workloads/workload.hh"

using namespace vptest;

namespace
{

struct EquivCase
{
    const char *name;
    VpMode mode;
    int contexts;
    PredictorKind predictor;
    SelectorKind selector;
    FetchPolicy policy;
    int maxValues;
    bool wideWindow;
    int storeBuffer;
};

class EquivalenceTest : public ::testing::TestWithParam<EquivCase>
{
};

SimConfig
configFor(const EquivCase &c)
{
    SimConfig cfg = haltConfig();
    cfg.vpMode = c.mode;
    cfg.numContexts = c.contexts;
    cfg.predictor = c.predictor;
    cfg.selector = c.selector;
    cfg.fetchPolicy = c.policy;
    cfg.maxValuesPerSpawn = c.maxValues;
    cfg.multiValueThreshold = 4;
    cfg.wideWindow = c.wideWindow;
    cfg.storeBufferSize = c.storeBuffer;
    cfg.spawnLatency = 1;
    return cfg;
}

} // namespace

TEST_P(EquivalenceTest, ChaseKernelMemoryIdentical)
{
    const EquivCase &c = GetParam();
    for (double strideProb : {1.0, 0.6}) {
        auto ref = referenceMemory(chaseKernel(300),
                                   chaseData(strideProb));
        CpuRun r = runAsm(chaseKernel(300), configFor(c),
                          chaseData(strideProb));
        ASSERT_TRUE(r.cpu->haltedUsefully())
            << c.name << " did not finish";
        EXPECT_TRUE(r.mem->contentEquals(*ref))
            << c.name << " diverged at strideProb=" << strideProb;
    }
}

TEST_P(EquivalenceTest, StoreHeavyKernelMemoryIdentical)
{
    // Dense stores with value-dependent addresses: exercises segment
    // chains, drains and flushes hard.
    std::string src = R"(
        li   r1, 0x400000
        li   r9, 0x600000
        addi r2, r0, 250
        addi r4, r0, 1
    loop:
        andi r5, r2, 3
        slli r5, r5, 3
        add  r6, r1, r5
        ld   r7, 0(r6)
        add  r4, r4, r7
        mul  r8, r4, r7
        andi r8, r8, 2047
        add  r8, r9, r8
        sd   r4, 0(r8)
        sb   r2, 64(r8)
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    auto init = [](MainMemory &m) {
        m.write64(0x400000, 1);
        m.write64(0x400008, 1);
        m.write64(0x400010, 5);
        m.write64(0x400018, 1);
    };
    const EquivCase &c = GetParam();
    auto ref = referenceMemory(src, init);
    CpuRun r = runAsm(src, configFor(c), init);
    ASSERT_TRUE(r.cpu->haltedUsefully()) << c.name;
    EXPECT_TRUE(r.mem->contentEquals(*ref)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Machines, EquivalenceTest,
    ::testing::Values(
        EquivCase{"baseline", VpMode::None, 1, PredictorKind::Oracle,
                  SelectorKind::Always, FetchPolicy::SingleFetchPath, 1,
                  false, 128},
        EquivCase{"wide_window", VpMode::None, 1, PredictorKind::Oracle,
                  SelectorKind::Always, FetchPolicy::SingleFetchPath, 1,
                  true, 128},
        EquivCase{"stvp_oracle", VpMode::Stvp, 1, PredictorKind::Oracle,
                  SelectorKind::Always, FetchPolicy::SingleFetchPath, 1,
                  false, 128},
        EquivCase{"stvp_lastvalue", VpMode::Stvp, 1,
                  PredictorKind::LastValue, SelectorKind::Always,
                  FetchPolicy::SingleFetchPath, 1, false, 128},
        EquivCase{"stvp_wf_ilp", VpMode::Stvp, 1,
                  PredictorKind::WangFranklin, SelectorKind::IlpPred,
                  FetchPolicy::SingleFetchPath, 1, false, 128},
        EquivCase{"mtvp2_oracle", VpMode::Mtvp, 2, PredictorKind::Oracle,
                  SelectorKind::Always, FetchPolicy::SingleFetchPath, 1,
                  false, 128},
        EquivCase{"mtvp8_oracle", VpMode::Mtvp, 8, PredictorKind::Oracle,
                  SelectorKind::Always, FetchPolicy::SingleFetchPath, 1,
                  false, 128},
        EquivCase{"mtvp8_lastvalue", VpMode::Mtvp, 8,
                  PredictorKind::LastValue, SelectorKind::Always,
                  FetchPolicy::SingleFetchPath, 1, false, 128},
        EquivCase{"mtvp8_wf_ilp", VpMode::Mtvp, 8,
                  PredictorKind::WangFranklin, SelectorKind::IlpPred,
                  FetchPolicy::SingleFetchPath, 1, false, 128},
        EquivCase{"mtvp8_dfcm", VpMode::Mtvp, 8, PredictorKind::Dfcm,
                  SelectorKind::Always, FetchPolicy::SingleFetchPath, 1,
                  false, 128},
        EquivCase{"mtvp4_nostall", VpMode::Mtvp, 4,
                  PredictorKind::LastValue, SelectorKind::Always,
                  FetchPolicy::NoStall, 1, false, 128},
        EquivCase{"mtvp8_multivalue", VpMode::Mtvp, 8,
                  PredictorKind::WangFranklin, SelectorKind::Always,
                  FetchPolicy::SingleFetchPath, 4, false, 128},
        EquivCase{"mtvp8_tiny_sb", VpMode::Mtvp, 8,
                  PredictorKind::Oracle, SelectorKind::Always,
                  FetchPolicy::SingleFetchPath, 1, false, 8},
        EquivCase{"spawn_only", VpMode::SpawnOnly, 8,
                  PredictorKind::Oracle, SelectorKind::Always,
                  FetchPolicy::SingleFetchPath, 1, false, 128},
        EquivCase{"mtvp8_cacheoracle", VpMode::Mtvp, 8,
                  PredictorKind::WangFranklin, SelectorKind::CacheOracle,
                  FetchPolicy::SingleFetchPath, 1, false, 128}),
    [](const ::testing::TestParamInfo<EquivCase> &tp) {
        return std::string(tp.param.name);
    });

TEST(EquivalenceWorkload, CraftyAllModesMatchReference)
{
    // One real (cache-resident, fast) workload through the full matrix.
    const Workload *w = findWorkload("crafty");
    ASSERT_NE(w, nullptr);

    MainMemory refMem;
    Addr entry = w->build(refMem, 3);
    Emulator emu(refMem);
    ArchState st;
    st.pc = entry;
    uint64_t len = emu.run(st, 50'000'000);
    ASSERT_LT(len, 50'000'000u);

    for (VpMode mode : {VpMode::None, VpMode::Stvp, VpMode::Mtvp}) {
        SimConfig cfg = haltConfig();
        cfg.seed = 3;
        cfg.vpMode = mode;
        cfg.numContexts = mode == VpMode::Mtvp ? 4 : 1;
        cfg.predictor = PredictorKind::WangFranklin;
        cfg.selector = SelectorKind::Always;
        MainMemory mem;
        w->build(mem, 3);
        Cpu cpu(cfg, mem, entry);
        cpu.run();
        EXPECT_TRUE(cpu.haltedUsefully()) << toString(mode);
        EXPECT_EQ(cpu.usefulInsts(), len) << toString(mode);
        EXPECT_TRUE(mem.contentEquals(refMem)) << toString(mode);
    }
}
