/** Memory-hierarchy timing tests: per-level latencies, MSHR-style
 *  in-flight merging, stream-buffer integration, store drains, and the
 *  oracle probe used by the cache-level load selector. */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "mem/hierarchy.hh"

using namespace vpsim;

namespace
{

class HierarchyTest : public ::testing::Test
{
  protected:
    HierarchyTest() : hier(stats, cfg) {}

    StatGroup stats;
    SimConfig cfg;
    Hierarchy hier{stats, cfg};
};

} // namespace

TEST_F(HierarchyTest, ColdLoadGoesToMemory)
{
    DataAccessResult r = hier.load(0x100000, 0x1000, 10);
    EXPECT_EQ(r.level, MemLevel::Memory);
    EXPECT_EQ(r.ready, 10u + static_cast<Cycle>(cfg.memLatency));
}

TEST_F(HierarchyTest, SecondAccessHitsL1)
{
    hier.load(0x100000, 0x1000, 0);
    Cycle after = static_cast<Cycle>(cfg.memLatency) + 10;
    DataAccessResult r = hier.load(0x100008, 0x1004, after);
    EXPECT_EQ(r.level, MemLevel::L1);
    EXPECT_EQ(r.ready, after + static_cast<Cycle>(cfg.dcacheLatency));
}

TEST_F(HierarchyTest, InFlightMerge)
{
    DataAccessResult first = hier.load(0x200000, 0x1000, 0);
    // A second load to the same line while the fill is outstanding
    // completes when the fill does — no second 1000-cycle charge.
    DataAccessResult second = hier.load(0x200010, 0x1004, 5);
    EXPECT_EQ(second.ready, first.ready);
    EXPECT_EQ(stats.get("mem.mshrMerges"), 1.0);
}

TEST_F(HierarchyTest, MshrMergeCompletesAtSameAbsoluteCycle)
{
    // Two loads to the same line issued K cycles apart share one fill:
    // both complete at the first miss's absolute ready cycle, for any
    // K inside the fill latency. Pins down the absolute-cycle
    // bookkeeping nextEventCycle() is built on.
    const Cycle kGaps[] = {1, 17, 250,
                           static_cast<Cycle>(cfg.memLatency) - 1};
    Addr line = 0x200000;
    for (Cycle k : kGaps) {
        DataAccessResult first = hier.load(line, 0x1000, 0);
        EXPECT_EQ(first.ready, static_cast<Cycle>(cfg.memLatency));
        DataAccessResult second = hier.load(line + 16, 0x1004, k);
        EXPECT_EQ(second.ready, first.ready) << "gap " << k;
        line += 0x10000; // Fresh line per gap (cold again).
    }
    EXPECT_EQ(stats.get("mem.mshrMerges"),
              static_cast<double>(std::size(kGaps)));
}

TEST_F(HierarchyTest, NextEventCycleTracksInFlightFills)
{
    // Nothing outstanding: no event.
    EXPECT_EQ(hier.nextEventCycle(0), neverCycle);

    DataAccessResult r = hier.load(0x200000, 0x1000, 0);
    EXPECT_EQ(hier.nextEventCycle(0), r.ready);
    EXPECT_EQ(hier.nextEventCycle(r.ready), r.ready); // At-or-after.
    // A merged access must not move the event.
    hier.load(0x200008, 0x1004, 5);
    EXPECT_EQ(hier.nextEventCycle(5), r.ready);
    // Once the fill time has passed, it is no longer a future event.
    EXPECT_EQ(hier.nextEventCycle(r.ready + 1), neverCycle);

    // The earliest of several outstanding fills wins.
    DataAccessResult a = hier.load(0x300000, 0x1000, 0);
    Cycle iready = hier.instFetch(0x9000, 10);
    EXPECT_EQ(hier.nextEventCycle(0), std::min(a.ready, iready));
}

TEST_F(HierarchyTest, StreamBufferServicesStridedLoads)
{
    cfg.prefetchEnabled = true;
    // March a stride; later lines must be served by stream buffers.
    Cycle now = 0;
    bool sawStream = false;
    for (int i = 0; i < 32; ++i) {
        DataAccessResult r =
            hier.load(0x300000 + static_cast<Addr>(i) * 64, 0x2000, now);
        sawStream = sawStream || r.level == MemLevel::Stream;
        now = r.ready + 1;
    }
    EXPECT_TRUE(sawStream);
    EXPECT_GT(hier.streamHits(), 0u);
}

TEST_F(HierarchyTest, ProbeLevelTracksContents)
{
    EXPECT_EQ(hier.probeLevel(0x400000), MemLevel::Memory);
    hier.load(0x400000, 0x1000, 0);
    // While in flight the probe reports L2 ("data on its way").
    EXPECT_EQ(hier.probeLevel(0x400000), MemLevel::L2);
}

TEST_F(HierarchyTest, StoreDrainWarmsTheCache)
{
    hier.storeDrain(0x500000, 0);
    DataAccessResult r = hier.load(0x500000, 0x1000, 5);
    EXPECT_EQ(r.level, MemLevel::L1);
}

TEST_F(HierarchyTest, InstFetchHitsAfterMiss)
{
    Cycle miss = hier.instFetch(0x1000, 0);
    EXPECT_GT(miss, static_cast<Cycle>(cfg.icacheLatency));
    Cycle hit = hier.instFetch(0x1004, miss + 1);
    EXPECT_EQ(hit, miss + 1 + static_cast<Cycle>(cfg.icacheLatency));
}

TEST_F(HierarchyTest, InstFetchMergesInFlight)
{
    Cycle a = hier.instFetch(0x2000, 0);
    Cycle b = hier.instFetch(0x2008, 3); // Same line, still filling.
    EXPECT_EQ(a, b);
}

TEST_F(HierarchyTest, L1EvictionFallsBackToL2)
{
    // Touch enough distinct lines mapping to one L1 set to evict the
    // first; it must then hit in L2 (20 cycles), not memory.
    Addr setStride = static_cast<Addr>(cfg.dcacheSize) / cfg.dcacheAssoc;
    Cycle now = 0;
    for (int i = 0; i < 4; ++i) {
        DataAccessResult r = hier.load(0x600000 + i * setStride, 0x1000,
                                       now);
        now = r.ready + 1;
    }
    DataAccessResult r = hier.load(0x600000, 0x1000, now);
    EXPECT_EQ(r.level, MemLevel::L2);
    EXPECT_EQ(r.ready, now + static_cast<Cycle>(cfg.l2Latency));
}

TEST_F(HierarchyTest, DisabledPrefetcherNeverStreams)
{
    SimConfig noPf;
    noPf.prefetchEnabled = false;
    StatGroup s2;
    Hierarchy h2(s2, noPf);
    Cycle now = 0;
    for (int i = 0; i < 32; ++i) {
        DataAccessResult r =
            h2.load(0x700000 + static_cast<Addr>(i) * 64, 0x2000, now);
        EXPECT_NE(r.level, MemLevel::Stream);
        now = r.ready + 1;
    }
    EXPECT_EQ(h2.streamHits(), 0u);
}
