/** Smoke test: every registered workload runs to maxInsts on the
 *  baseline machine and makes forward progress. */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "workloads/workload.hh"

using namespace vpsim;

TEST(Smoke, BaselineRunsMcf)
{
    SimConfig cfg;
    cfg.maxInsts = 5000;
    SimResult r = runWorkload(cfg, "mcf");
    EXPECT_GE(r.usefulInsts, 5000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.usefulIpc, 0.0);
}

TEST(Smoke, MtvpRunsMcf)
{
    SimConfig cfg;
    cfg.maxInsts = 5000;
    cfg.vpMode = VpMode::Mtvp;
    cfg.numContexts = 4;
    cfg.predictor = PredictorKind::Oracle;
    cfg.selector = SelectorKind::Always;
    cfg.spawnLatency = 1;
    SimResult r = runWorkload(cfg, "mcf");
    EXPECT_GE(r.usefulInsts, 5000u);
    EXPECT_GT(r.stat("mtvp.spawns"), 0.0);
}
