/**
 * @file
 * Provenance-analytics tests. The load-bearing properties:
 *
 *  - Outcome partition: every spawn lands in exactly one terminal
 *    outcome, so the per-outcome counts sum to mtvp.spawns, promoted
 *    equals mtvp.promotes, and the three kill outcomes sum to
 *    mtvp.kills — across MTVP, realistic-predictor MTVP, spawn-only,
 *    and multi-value machines.
 *  - CPI linkage: spawn records tile non-root context activity, so
 *    summed spawn-lifetime cycles equal total non-idle context cycles
 *    minus the architectural thread's share (see sim/analytics.hh).
 *  - Self-checking per-PC attribution: summing the vp.pc table equals
 *    the aggregate vp.followed / vp.correct / vp.incorrect counters.
 *  - Time-skip invisibility: every analytics.* aggregate is
 *    bit-identical for timeSkip=0 vs timeSkip=1.
 *
 * Plus direct unit tests of the Analytics bookkeeping (starved
 * reclassification, promote-rename record transfer, drain aborts).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu_test_util.hh"
#include "sim/analytics.hh"
#include "sim/cpi_stack.hh"
#include "vpred/vp_attribution.hh"

using namespace vpsim;
using namespace vptest;

namespace
{

uint64_t
outcomeSum(const Analytics &an)
{
    uint64_t sum = 0;
    for (unsigned o = 0; o < numSpawnOutcomes; ++o)
        sum += an.outcomeCount(static_cast<SpawnOutcome>(o));
    return sum;
}

/** The partition invariants against the mtvp.* aggregates. */
void
expectOutcomePartition(const CpuRun &run)
{
    const Analytics &an = run.cpu->analytics();
    EXPECT_EQ(static_cast<double>(an.totalSpawns()),
              run.stat("mtvp.spawns"));
    EXPECT_EQ(static_cast<double>(outcomeSum(an)),
              run.stat("mtvp.spawns"));
    EXPECT_EQ(static_cast<double>(
                  an.outcomeCount(SpawnOutcome::Promoted)),
              run.stat("mtvp.promotes"));
    uint64_t kills = an.outcomeCount(SpawnOutcome::ValueMispredict) +
                     an.outcomeCount(SpawnOutcome::UpstreamSquash) +
                     an.outcomeCount(SpawnOutcome::Starved);
    EXPECT_EQ(static_cast<double>(kills), run.stat("mtvp.kills"));

    // The per-spawn-PC table is a second partition of the same spawns.
    uint64_t pcSpawns = 0, pcClosed = 0;
    for (const auto &[pc, e] : an.spawnPcTable()) {
        EXPECT_NE(pc, 0u);
        pcSpawns += e.spawns;
        pcClosed += e.promoted + e.killed + e.aborted;
    }
    EXPECT_EQ(pcSpawns, an.totalSpawns());
    EXPECT_EQ(pcClosed, an.totalSpawns());
}

/** Spawn-lifetime cycles == non-idle context cycles - root's share. */
void
expectCpiLinkage(const CpuRun &run)
{
    const Analytics &an = run.cpu->analytics();
    uint64_t spawnCycles = 0;
    for (unsigned o = 0; o < numSpawnOutcomes; ++o)
        spawnCycles += an.outcomeCycles(static_cast<SpawnOutcome>(o));

    double nonIdle = 0.0;
    int ctxs = run.cpu->cpiStack().numContexts();
    for (int c = 0; c < ctxs; ++c) {
        nonIdle += static_cast<double>(run.cycles()) -
                   run.stat(csprintf("cpi.t%02d.idle", c));
    }
    EXPECT_EQ(static_cast<double>(spawnCycles),
              nonIdle - static_cast<double>(run.cycles()));
}

/** vp.pc.* table sums equal the aggregate vp.* counters. */
void
expectAttributionCrossCheck(const CpuRun &run)
{
    const VpAttribution &vp = run.cpu->vpAttribution();
    EXPECT_EQ(static_cast<double>(vp.totalFollowed()),
              run.stat("vp.followed"));
    EXPECT_EQ(static_cast<double>(vp.totalHits()),
              run.stat("vp.correct"));
    EXPECT_EQ(static_cast<double>(vp.totalMisses()),
              run.stat("vp.incorrect"));

    uint64_t followed = 0, hits = 0, misses = 0, stvp = 0, mtvp = 0;
    for (const auto &[pc, e] : vp.table()) {
        EXPECT_NE(pc, 0u);
        followed += e.followed;
        hits += e.hits;
        misses += e.misses;
        stvp += e.stvp;
        mtvp += e.mtvp;
        EXPECT_EQ(e.followed, e.stvp + e.mtvp);
        // A prediction can stay unresolved (squashed first), never the
        // other way around.
        EXPECT_LE(e.hits + e.misses, e.followed);
        EXPECT_GE(e.confMax, e.confMin);
    }
    EXPECT_EQ(followed, vp.totalFollowed());
    EXPECT_EQ(hits, vp.totalHits());
    EXPECT_EQ(misses, vp.totalMisses());
    EXPECT_EQ(static_cast<double>(stvp), run.stat("vp.stvp"));
    EXPECT_EQ(static_cast<double>(mtvp), run.stat("vp.mtvp"));
}

CpuRun
runChase(SimConfig cfg, double strideProb = 0.5)
{
    return runAsm(chaseKernel(500), cfg, chaseData(strideProb));
}

} // namespace

// ---------------------------------------------------------------------
// Whole-machine invariants
// ---------------------------------------------------------------------

TEST(Analytics, BaselineAndStvpSpawnNothing)
{
    for (VpMode mode : {VpMode::None, VpMode::Stvp}) {
        SimConfig cfg = haltConfig();
        cfg.vpMode = mode;
        cfg.predictor = PredictorKind::Stride;
        cfg.selector = SelectorKind::Always;
        CpuRun run = runChase(cfg);
        EXPECT_EQ(run.cpu->analytics().totalSpawns(), 0u);
        EXPECT_EQ(outcomeSum(run.cpu->analytics()), 0u);
        EXPECT_TRUE(run.cpu->analytics().spawnPcTable().empty());
        expectAttributionCrossCheck(run);
        if (mode == VpMode::Stvp) {
            EXPECT_GT(run.cpu->vpAttribution().totalFollowed(), 0u);
        }
    }
}

TEST(Analytics, MtvpOracleInvariants)
{
    CpuRun run = runChase(mtvpConfig(4));
    ASSERT_GT(run.cpu->analytics().totalSpawns(), 0u);
    expectOutcomePartition(run);
    expectCpiLinkage(run);
    expectAttributionCrossCheck(run);
}

TEST(Analytics, MtvpRealisticInvariants)
{
    SimConfig cfg = mtvpConfig(8, PredictorKind::Stride,
                               SelectorKind::IlpPred);
    CpuRun run = runChase(cfg);
    ASSERT_GT(run.cpu->analytics().totalSpawns(), 0u);
    expectOutcomePartition(run);
    expectCpiLinkage(run);
    expectAttributionCrossCheck(run);
    // A realistic predictor on 50%-stride data must miss sometimes.
    EXPECT_GT(run.cpu->vpAttribution().totalMisses(), 0u);
}

TEST(Analytics, SpawnOnlyInvariants)
{
    SimConfig cfg = mtvpConfig(4, PredictorKind::Stride,
                               SelectorKind::Always);
    cfg.vpMode = VpMode::SpawnOnly;
    CpuRun run = runChase(cfg);
    ASSERT_GT(run.cpu->analytics().totalSpawns(), 0u);
    expectOutcomePartition(run);
    expectCpiLinkage(run);
    // Spawn-only never follows a predicted value, so the attribution
    // table must agree with the zero aggregates.
    expectAttributionCrossCheck(run);
    EXPECT_EQ(run.stat("vp.followed"), 0.0);
    EXPECT_TRUE(run.cpu->vpAttribution().table().empty());
}

TEST(Analytics, MultiValueInvariants)
{
    SimConfig cfg = mtvpConfig(8, PredictorKind::Stride,
                               SelectorKind::Always);
    cfg.maxValuesPerSpawn = 2;
    CpuRun run = runChase(cfg);
    ASSERT_GT(run.cpu->analytics().totalSpawns(), 0u);
    expectOutcomePartition(run);
    expectCpiLinkage(run);
    expectAttributionCrossCheck(run);
}

TEST(Analytics, TimeSkipDoesNotChangeAggregates)
{
    SimConfig cfg = mtvpConfig(4, PredictorKind::Stride,
                               SelectorKind::IlpPred);
    cfg.timeSkip = 0;
    CpuRun off = runChase(cfg);
    cfg.timeSkip = 1;
    CpuRun on = runChase(cfg);
    ASSERT_GT(on.stat("sim.skipEvents"), 0.0);
    for (const StatBase *s : on.cpu->stats().stats()) {
        if (s->name().rfind("analytics.", 0) != 0 &&
            s->name().rfind("vp.pc.", 0) != 0) {
            continue;
        }
        EXPECT_EQ(off.stat(s->name()), s->value()) << s->name();
    }
}

TEST(Analytics, ReportMentionsEveryOutcomeAndTopPcs)
{
    CpuRun run = runChase(mtvpConfig(4));
    std::ostringstream os;
    writeAnalyticsReport(os, run.cpu->analytics(),
                         run.cpu->vpAttribution(), 5);
    std::string text = os.str();
    for (unsigned o = 0; o < numSpawnOutcomes; ++o) {
        EXPECT_NE(text.find(spawnOutcomeName(
                      static_cast<SpawnOutcome>(o))),
                  std::string::npos);
    }
    EXPECT_NE(text.find("Provenance analytics"), std::string::npos);
    EXPECT_NE(text.find("0x"), std::string::npos);
}

// ---------------------------------------------------------------------
// Analytics bookkeeping unit tests
// ---------------------------------------------------------------------

TEST(AnalyticsUnit, StarvedReclassifiesZeroInstKills)
{
    StatGroup stats;
    Analytics an(stats, 4, false);
    an.recordSpawn(1, 0, 0x1000, 10);
    an.recordSpawn(2, 0, 0x1000, 12);
    // Killed with work committed: keeps its cause.
    EXPECT_EQ(an.recordKill(1, SpawnOutcome::ValueMispredict, 30, 5),
              20u);
    // Killed with nothing committed: starved, whatever the cause.
    EXPECT_EQ(an.recordKill(2, SpawnOutcome::UpstreamSquash, 40, 0),
              28u);
    EXPECT_EQ(an.outcomeCount(SpawnOutcome::ValueMispredict), 1u);
    EXPECT_EQ(an.outcomeCount(SpawnOutcome::Starved), 1u);
    EXPECT_EQ(an.outcomeCount(SpawnOutcome::UpstreamSquash), 0u);
    EXPECT_EQ(an.outcomeCycles(SpawnOutcome::ValueMispredict), 20u);
    EXPECT_EQ(an.outcomeInsts(SpawnOutcome::ValueMispredict), 5u);
    EXPECT_EQ(stats.get("analytics.spawns.starved"), 1.0);
}

TEST(AnalyticsUnit, TransferFollowsPromoteRename)
{
    StatGroup stats;
    Analytics an(stats, 4, false);
    an.recordSpawn(1, 0, 0x2000, 100); // ctx 1: speculative parent
    an.recordSpawn(2, 1, 0x3000, 110); // ctx 2: its child
    // Ctx 2 wins: its own record closes, then ctx 1's open record
    // follows the identity rename onto ctx 2.
    an.recordPromote(2, 150, 7);
    EXPECT_FALSE(an.hasOpenSpawn(2));
    an.transferSpawn(1, 2);
    EXPECT_FALSE(an.hasOpenSpawn(1));
    EXPECT_TRUE(an.hasOpenSpawn(2));
    // The transferred record still closes exactly once.
    an.recordKill(2, SpawnOutcome::ValueMispredict, 200, 9);
    EXPECT_EQ(an.totalSpawns(), 2u);
    EXPECT_EQ(an.outcomeCount(SpawnOutcome::Promoted), 1u);
    EXPECT_EQ(an.outcomeCount(SpawnOutcome::ValueMispredict), 1u);
    EXPECT_EQ(an.outcomeCycles(SpawnOutcome::ValueMispredict), 100u);
    // The 0x2000 record kept its spawn PC across the rename.
    EXPECT_EQ(an.spawnPcTable().at(0x2000).killed, 1u);
    EXPECT_EQ(an.spawnPcTable().at(0x3000).promoted, 1u);
    // Transfer from a context with no open record is a no-op.
    an.transferSpawn(0, 3);
    EXPECT_FALSE(an.hasOpenSpawn(3));
}

TEST(AnalyticsUnit, AbortAtDrainClosesOpenRecords)
{
    StatGroup stats;
    Analytics an(stats, 2, true);
    an.recordSpawn(1, 0, 0x4000, 50);
    EXPECT_TRUE(an.hasOpenSpawn(1));
    an.recordAbortAtDrain(1, 90, 3);
    EXPECT_FALSE(an.hasOpenSpawn(1));
    EXPECT_EQ(an.outcomeCount(SpawnOutcome::AbortedAtDrain), 1u);
    EXPECT_EQ(an.outcomeCycles(SpawnOutcome::AbortedAtDrain), 40u);
    EXPECT_EQ(an.spawnPcTable().at(0x4000).aborted, 1u);
    ASSERT_EQ(an.spawnSpans().size(), 1u);
    EXPECT_EQ(an.spawnSpans()[0].outcome, SpawnOutcome::AbortedAtDrain);
}

TEST(AnalyticsUnit, TimelineGatesEventLogsOnly)
{
    StatGroup stats;
    Analytics an(stats, 2, false);
    an.recordSpawn(1, 0, 0x5000, 10);
    an.recordKill(1, SpawnOutcome::ValueMispredict, 20, 4);
    an.recordSquash(0, 25, 12, "promote");
    an.recordTimeSkip(30, 90);
    EXPECT_TRUE(an.spawnSpans().empty());
    EXPECT_TRUE(an.squashWindowLog().empty());
    EXPECT_TRUE(an.skipJumps().empty());
    // ... but the aggregates still counted.
    EXPECT_EQ(an.squashWindows(), 1u);
    EXPECT_EQ(an.squashedInsts(), 12u);
    EXPECT_EQ(an.outcomeCount(SpawnOutcome::ValueMispredict), 1u);
}
