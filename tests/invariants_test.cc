/** Resource-conservation and liveness invariants: after a run completes
 *  at HALT, every physical register, ROB slot, VP tag, and context must
 *  be back where it started; no run may wedge (the watchdog panics
 *  inside 1M commit-less cycles, failing the test by abort). */

#include <gtest/gtest.h>

#include "cpu_test_util.hh"

using namespace vptest;

namespace
{

void
expectQuiescent(const CpuRun &r, const SimConfig &cfg)
{
    ASSERT_TRUE(r.cpu->haltedUsefully());
    // Exactly one context (the architectural thread) remains.
    EXPECT_EQ(r.cpu->activeContexts(), 1);
    // Its 64 logical registers are the only mapped physical registers.
    int intCap = numIntRegs * cfg.numContexts + cfg.effRenameRegs();
    int fpCap = numFpRegs * cfg.numContexts + cfg.effRenameRegs();
    EXPECT_EQ(r.cpu->freeIntRegs(), intCap - numIntRegs);
    EXPECT_EQ(r.cpu->freeFpRegs(), fpCap - numFpRegs);
    // No instruction is in flight and no prediction is open.
    EXPECT_EQ(r.cpu->robOccupancy(), 0);
    EXPECT_EQ(r.cpu->pendingLoads(), 0);
    EXPECT_EQ(r.cpu->freeVpTags(), 64);
}

} // namespace

TEST(Invariants, BaselineQuiescesAtHalt)
{
    SimConfig cfg = haltConfig();
    CpuRun r = runAsm(chaseKernel(200), cfg, chaseData());
    expectQuiescent(r, cfg);
}

TEST(Invariants, StvpQuiescesAtHalt)
{
    SimConfig cfg = haltConfig();
    cfg.vpMode = VpMode::Stvp;
    cfg.predictor = PredictorKind::LastValue;
    cfg.selector = SelectorKind::Always;
    CpuRun r = runAsm(chaseKernel(300), cfg, chaseData(0.6));
    expectQuiescent(r, cfg);
}

TEST(Invariants, MtvpQuiescesAtHalt)
{
    for (int ctxs : {2, 4, 8}) {
        SimConfig cfg = mtvpConfig(ctxs, PredictorKind::LastValue,
                                   SelectorKind::Always);
        CpuRun r = runAsm(chaseKernel(300), cfg, chaseData(0.6));
        expectQuiescent(r, cfg);
        EXPECT_GT(r.stat("mtvp.spawns"), 0.0) << ctxs;
    }
}

TEST(Invariants, NoStallQuiescesAtHalt)
{
    SimConfig cfg = mtvpConfig(4, PredictorKind::LastValue,
                               SelectorKind::Always);
    cfg.fetchPolicy = FetchPolicy::NoStall;
    CpuRun r = runAsm(chaseKernel(300), cfg, chaseData(0.6));
    expectQuiescent(r, cfg);
}

TEST(Invariants, MultiValueQuiescesAtHalt)
{
    SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                               SelectorKind::Always);
    cfg.maxValuesPerSpawn = 4;
    cfg.multiValueThreshold = 4;
    CpuRun r = runAsm(chaseKernel(300), cfg, chaseData(0.6));
    expectQuiescent(r, cfg);
}

TEST(Invariants, SpawnOnlyQuiescesAtHalt)
{
    SimConfig cfg = haltConfig();
    cfg.vpMode = VpMode::SpawnOnly;
    cfg.numContexts = 8;
    cfg.selector = SelectorKind::Always;
    CpuRun r = runAsm(chaseKernel(250), cfg, chaseData(0.5));
    expectQuiescent(r, cfg);
}

TEST(Invariants, TinyStoreBufferQuiesces)
{
    SimConfig cfg = mtvpConfig(4);
    cfg.storeBufferSize = 2; // Brutal: every other store stalls.
    CpuRun r = runAsm(chaseKernel(200), cfg, chaseData(1.0));
    expectQuiescent(r, cfg);
}

TEST(Invariants, BranchHeavySpeculationQuiesces)
{
    // Unpredictable branches interleaved with predictable missing
    // loads: squashes and spawns interact.
    std::string src = R"(
        li   r1, 0x200000
        li   r9, 88172645463325252
        addi r2, r0, 300
        addi r4, r0, 0
    loop:
        ld   r5, 0(r1)
        ld   r6, 8(r1)
        add  r4, r4, r6
        slli r7, r9, 13
        xor  r9, r9, r7
        srli r7, r9, 7
        xor  r9, r9, r7
        andi r7, r9, 1
        beq  r7, r0, skip
        addi r4, r4, 3
    skip:
        mv   r1, r5
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                               SelectorKind::IlpPred);
    CpuRun r = runAsm(src, cfg, chaseData(0.8));
    expectQuiescent(r, cfg);
}

TEST(Invariants, UsefulIpcNeverExceedsIssueWidth)
{
    SimConfig cfg = mtvpConfig(8);
    CpuRun r = runAsm(chaseKernel(300), cfg, chaseData(1.0));
    EXPECT_LE(r.cpu->usefulIpc(), static_cast<double>(cfg.issueWidth));
}

TEST(Invariants, StatsCrossChecks)
{
    SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                               SelectorKind::IlpPred);
    CpuRun r = runAsm(chaseKernel(400), cfg, chaseData(0.7));
    // Followed predictions split into STVP and MTVP uses.
    EXPECT_DOUBLE_EQ(r.stat("vp.followed"),
                     r.stat("vp.stvp") + r.stat("vp.mtvp"));
    // Every spawn either promotes or is killed (all resolve by halt).
    EXPECT_DOUBLE_EQ(r.stat("mtvp.spawns"),
                     r.stat("mtvp.promotes") + r.stat("mtvp.kills"));
    // Useful commits can't exceed total commits.
    EXPECT_LE(r.useful(), r.stat("commits.total"));
    // Dispatches bound issues... (reissues can exceed dispatches, but
    // every dispatched instruction issues at least once before halt).
    EXPECT_GE(r.stat("issue.total") + 1e-9, 0.0);
}

TEST(Invariants, WatchdogCatchesNothingAcrossSeeds)
{
    // Liveness sweep: several seeds and machines; any deadlock aborts.
    for (uint64_t seed : {1u, 2u, 3u}) {
        SimConfig cfg = mtvpConfig(8, PredictorKind::WangFranklin,
                                   SelectorKind::IlpPred);
        cfg.seed = seed;
        CpuRun r = runAsm(chaseKernel(200),
                          cfg, chaseData(0.5 + 0.1 * seed));
        EXPECT_TRUE(r.cpu->haltedUsefully());
    }
}
