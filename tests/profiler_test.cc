/**
 * @file
 * Host self-profiler tests: a disabled profiler records nothing (and
 * contributes nothing to the process-wide aggregate), an enabled one
 * counts every scope, and the global aggregate folds per-run profiles
 * into parseable JSON — the path the bench harness reports through.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu_test_util.hh"
#include "sim/json.hh"
#include "sim/profiler.hh"

using namespace vpsim;
using namespace vptest;

TEST(Profiler, DisabledRecordsNothing)
{
    GlobalProfile::reset();
    {
        HostProfiler p(false);
        EXPECT_FALSE(p.enabled());
        for (int i = 0; i < 100; ++i)
            HostProfiler::Scope s(p, ProfSection::Fetch);
        EXPECT_EQ(p.entry(ProfSection::Fetch).calls, 0u);
        EXPECT_EQ(p.entry(ProfSection::Fetch).nanos, 0u);
    }
    // A disabled profiler must not mark the aggregate either.
    EXPECT_FALSE(GlobalProfile::any());
}

TEST(Profiler, EnabledCountsEveryScope)
{
    HostProfiler p(true);
    for (int i = 0; i < 50; ++i) {
        HostProfiler::Scope s(p, ProfSection::Issue);
    }
    {
        HostProfiler::Scope s(p, ProfSection::CacheData);
    }
    EXPECT_EQ(p.entry(ProfSection::Issue).calls, 50u);
    EXPECT_EQ(p.entry(ProfSection::CacheData).calls, 1u);
    EXPECT_EQ(p.entry(ProfSection::Fetch).calls, 0u);

    std::ostringstream os;
    p.printReport(os);
    EXPECT_NE(os.str().find("issue"), std::string::npos);
}

TEST(Profiler, GlobalAggregateFoldsAndEmitsValidJson)
{
    GlobalProfile::reset();
    {
        HostProfiler p(true);
        for (int i = 0; i < 7; ++i)
            HostProfiler::Scope s(p, ProfSection::Commit);
    } // destruction folds into the aggregate
    ASSERT_TRUE(GlobalProfile::any());
    auto snap = GlobalProfile::snapshot();
    EXPECT_EQ(snap[static_cast<unsigned>(ProfSection::Commit)].calls,
              7u);

    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(GlobalProfile::snapshotJson(), v, &err))
        << err;
    const json::Value *commit = v.get("commit");
    ASSERT_NE(commit, nullptr);
    EXPECT_DOUBLE_EQ(commit->numberOr("calls", 0), 7.0);

    GlobalProfile::reset();
    EXPECT_FALSE(GlobalProfile::any());
}

TEST(Profiler, CpuRunPopulatesStageSections)
{
    GlobalProfile::reset();
    SimConfig cfg = haltConfig();
    cfg.profile = true;
    {
        CpuRun run = runAsm(chaseKernel(100), cfg, chaseData());
        const HostProfiler &p = run.cpu->profiler();
        EXPECT_TRUE(p.enabled());
        // One scope per stage per tick; cycles the time-skip engine
        // bulk-advanced never ticked the stages.
        auto skipped = static_cast<uint64_t>(
            run.cpu->stats().get("sim.skippedCycles"));
        auto skips = static_cast<uint64_t>(
            run.cpu->stats().get("sim.skipEvents"));
        EXPECT_EQ(p.entry(ProfSection::Fetch).calls + skipped,
                  run.cycles());
        EXPECT_EQ(p.entry(ProfSection::Commit).calls + skipped,
                  run.cycles());
        // Every skip runs inside a TimeSkip scope; the scope also
        // covers idle ticks whose next event was immediate (no jump).
        EXPECT_GE(p.entry(ProfSection::TimeSkip).calls, skips);
        EXPECT_GT(skips, 0u);
        EXPECT_GT(p.entry(ProfSection::CacheData).calls, 0u);
        EXPECT_GT(p.totalStageNanos(), 0u);
    } // Cpu destruction folds into the global aggregate

    // With skipping disabled the stages tick every simulated cycle.
    GlobalProfile::reset();
    SimConfig noSkip = haltConfig();
    noSkip.profile = true;
    noSkip.timeSkip = 0;
    {
        CpuRun run = runAsm(chaseKernel(100), noSkip, chaseData());
        const HostProfiler &p = run.cpu->profiler();
        EXPECT_EQ(p.entry(ProfSection::Fetch).calls, run.cycles());
        EXPECT_EQ(p.entry(ProfSection::Commit).calls, run.cycles());
        EXPECT_EQ(p.entry(ProfSection::TimeSkip).calls, 0u);
    }
    EXPECT_TRUE(GlobalProfile::any());

    // And with the default (profiling off) nothing is measured.
    GlobalProfile::reset();
    SimConfig off = haltConfig();
    CpuRun quiet = runAsm(chaseKernel(100), off, chaseData());
    EXPECT_EQ(quiet.cpu->profiler().entry(ProfSection::Fetch).calls,
              0u);
    EXPECT_FALSE(GlobalProfile::any());
}
