/**
 * @file
 * Tests for the experiment-engine metrics registry (sim/metrics.hh):
 * register-or-find identity, label escaping, Prometheus exposition
 * shape (cumulative buckets, _sum/_count consistency, deterministic
 * ordering), histogram quantiles, JSON exposition parseability, and
 * the one-family-one-kind contract.
 */

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "sim/metrics.hh"

namespace
{

using namespace vpsim;

// ---------------------------------------------------------------------
// Registration semantics
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, RegisterOrFindReturnsSameObject)
{
    MetricsRegistry mr;
    Counter &a = mr.counter("jobs_total", "help");
    a.inc(3);
    Counter &b = mr.counter("jobs_total", "help");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);

    Gauge &g1 = mr.gauge("depth", "help", {{"pool", "sim"}});
    Gauge &g2 = mr.gauge("depth", "help", {{"pool", "sim"}});
    EXPECT_EQ(&g1, &g2);
    // A different label set is a different series of the same family.
    Gauge &g3 = mr.gauge("depth", "help", {{"pool", "other"}});
    EXPECT_NE(&g1, &g3);

    Histogram &h1 = mr.histogram("lat", "help", 0.001, 2.0, 10);
    Histogram &h2 = mr.histogram("lat", "help", 0.001, 2.0, 10);
    EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryDeathTest, KindMismatchPanics)
{
    MetricsRegistry mr;
    mr.counter("a_total", "help");
    EXPECT_DEATH(mr.gauge("a_total", "help"), "a_total");
    EXPECT_DEATH(mr.histogram("a_total", "help", 0.1, 2.0, 4), "a_total");
}

TEST(MetricsTest, GaugeAddSubSet)
{
    Gauge g;
    g.add(5);
    g.sub(2);
    EXPECT_EQ(g.value(), 3);
    g.set(-7);
    EXPECT_EQ(g.value(), -7);
}

// ---------------------------------------------------------------------
// Label escaping
// ---------------------------------------------------------------------

TEST(MetricsTest, LabelValueEscaping)
{
    EXPECT_EQ(escapeMetricLabelValue("plain"), "plain");
    EXPECT_EQ(escapeMetricLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeMetricLabelValue("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(escapeMetricLabelValue("line\nbreak"), "line\\nbreak");

    MetricLabels labels = {{"workload", "gzip.\"g\"\n"}};
    EXPECT_EQ(metricLabelString(labels),
              "{workload=\"gzip.\\\"g\\\"\\n\"}");
    EXPECT_EQ(metricLabelString({}), "");
}

TEST(MetricsTest, EscapedLabelsSurviveExposition)
{
    MetricsRegistry mr;
    mr.counter("events_total", "help", {{"tag", "a\\b\"c\nd"}}).inc();
    std::string text = mr.prometheusText();
    EXPECT_NE(text.find("events_total{tag=\"a\\\\b\\\"c\\nd\"} 1"),
              std::string::npos)
        << text;
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketsAndQuantile)
{
    // Bounds: 0.001, 0.002, 0.004, 0.008 (+Inf).
    Histogram h(0.001, 2.0, 4);
    ASSERT_EQ(h.bounds().size(), 4u);
    EXPECT_DOUBLE_EQ(h.bounds()[0], 0.001);
    EXPECT_DOUBLE_EQ(h.bounds()[3], 0.008);

    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0); // Empty.

    h.observe(0.0005); // bucket 0
    h.observe(0.003);  // bucket 2
    h.observe(0.003);  // bucket 2
    h.observe(0.1);    // +Inf
    EXPECT_EQ(h.count(), 4u);
    EXPECT_NEAR(h.sum(), 0.1065, 1e-12);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 0u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u); // +Inf overflow.

    // Quantiles report the containing bucket's upper bound; the +Inf
    // bucket reports the largest finite bound (conservative cap).
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.001);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.004);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.008);
}

TEST(MetricsTest, PrometheusHistogramCumulativeAndSumCount)
{
    MetricsRegistry mr;
    Histogram &h = mr.histogram("job_seconds", "latency", 0.01, 10.0, 3,
                                {{"pool", "p"}});
    h.observe(0.005);
    h.observe(0.5);
    h.observe(99.0);
    std::string text = mr.prometheusText();

    // Header lines.
    EXPECT_NE(text.find("# HELP job_seconds latency"), std::string::npos);
    EXPECT_NE(text.find("# TYPE job_seconds histogram"),
              std::string::npos);

    // Cumulative buckets with the label merged alongside le=.
    EXPECT_NE(text.find("job_seconds_bucket{pool=\"p\",le=\"0.01\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("job_seconds_bucket{pool=\"p\",le=\"0.1\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("job_seconds_bucket{pool=\"p\",le=\"1\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("job_seconds_bucket{pool=\"p\",le=\"+Inf\"} 3"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("job_seconds_count{pool=\"p\"} 3"),
              std::string::npos)
        << text;

    // Parse every bucket line back out: counts must be monotonically
    // non-decreasing in le order, ending at _count.
    std::istringstream is(text);
    std::string line;
    std::vector<uint64_t> counts;
    while (std::getline(is, line)) {
        if (line.rfind("job_seconds_bucket", 0) == 0)
            counts.push_back(std::stoull(
                line.substr(line.find_last_of(' ') + 1)));
    }
    ASSERT_EQ(counts.size(), 4u); // 3 finite bounds + +Inf.
    for (size_t i = 1; i < counts.size(); ++i)
        EXPECT_GE(counts[i], counts[i - 1]);
    EXPECT_EQ(counts.back(), h.count());
    EXPECT_NEAR(h.sum(), 99.505, 1e-9);
}

// ---------------------------------------------------------------------
// Exposition determinism + JSON
// ---------------------------------------------------------------------

TEST(MetricsTest, ExpositionIsDeterministicAndSorted)
{
    MetricsRegistry mr;
    // Register out of order; exposition must sort families by name and
    // series by label string.
    mr.counter("zzz_total", "help").inc();
    mr.gauge("aaa", "help", {{"k", "b"}}).set(2);
    mr.gauge("aaa", "help", {{"k", "a"}}).set(1);

    std::string t1 = mr.prometheusText();
    std::string t2 = mr.prometheusText();
    EXPECT_EQ(t1, t2);
    size_t aaaA = t1.find("aaa{k=\"a\"} 1");
    size_t aaaB = t1.find("aaa{k=\"b\"} 2");
    size_t zzz = t1.find("zzz_total 1");
    ASSERT_NE(aaaA, std::string::npos);
    ASSERT_NE(aaaB, std::string::npos);
    ASSERT_NE(zzz, std::string::npos);
    EXPECT_LT(aaaA, aaaB);
    EXPECT_LT(aaaB, zzz);
}

TEST(MetricsTest, JsonExpositionParses)
{
    MetricsRegistry mr;
    mr.counter("runs_total", "Total runs").inc(5);
    mr.gauge("depth", "Queue depth", {{"pool", "sim"}}).set(3);
    mr.histogram("lat_seconds", "Latency", 0.001, 2.0, 4).observe(0.002);

    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(mr.jsonText(), v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    const json::Value *metrics = v.get("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isArray());
    ASSERT_EQ(metrics->arr.size(), 3u);

    const json::Value *runs = nullptr, *depth = nullptr, *lat = nullptr;
    for (const json::Value &m : metrics->arr) {
        const std::string name = m.stringOr("name", "");
        if (name == "runs_total")
            runs = &m;
        else if (name == "depth")
            depth = &m;
        else if (name == "lat_seconds")
            lat = &m;
    }
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->stringOr("type", ""), "counter");
    EXPECT_EQ(runs->numberOr("value", -1.0), 5.0);

    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->stringOr("type", ""), "gauge");
    EXPECT_EQ(depth->numberOr("value", -1.0), 3.0);
    ASSERT_NE(depth->get("labels"), nullptr);
    EXPECT_EQ(depth->get("labels")->stringOr("pool", ""), "sim");

    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->stringOr("type", ""), "histogram");
    EXPECT_EQ(lat->numberOr("count", -1.0), 1.0);
    EXPECT_NEAR(lat->numberOr("sum", -1.0), 0.002, 1e-12);
    const json::Value *buckets = lat->get("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_TRUE(buckets->isArray());
    ASSERT_EQ(buckets->arr.size(), 5u); // 4 finite bounds + +Inf.
    // The final (+Inf, le null) bucket count equals the total count.
    EXPECT_EQ(buckets->arr.back().numberOr("count", -1.0), 1.0);
    EXPECT_TRUE(buckets->arr.back().get("le")->isNull());
}

} // namespace
