/**
 * @file
 * Tests for the parallel simulation job engine (sim/sim_pool.hh) and
 * the persistent result cache (sim/result_cache.hh): pool draining,
 * exception propagation, job dedup, cache round-trips and keying, and
 * the headline determinism guarantee — serial and parallel runs of the
 * same job matrix produce bit-identical SimResults.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "sim/result_cache.hh"
#include "sim/sim_pool.hh"
#include "sim/simulation.hh"

namespace
{

using namespace vpsim;

// ---------------------------------------------------------------------
// SimPool
// ---------------------------------------------------------------------

TEST(SimPoolTest, DrainsManyJobsWithCorrectResults)
{
    SimPool pool(4);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
    EXPECT_EQ(pool.executed(), 100u);
}

TEST(SimPoolTest, InlineModeRunsAtSubmit)
{
    SimPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    std::atomic<int> ran{0};
    auto fut = pool.submit([&] {
        ++ran;
        return 7;
    });
    // Inline mode executes before submit() returns.
    EXPECT_EQ(ran.load(), 1);
    EXPECT_EQ(fut.get(), 7);
}

TEST(SimPoolTest, ExceptionsPropagateThroughFutures)
{
    SimPool pool(2);
    auto ok = pool.submit([] { return 1; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);

    SimPool inlinePool(1);
    auto badInline = inlinePool.submit(
        []() -> int { throw std::runtime_error("inline boom"); });
    EXPECT_THROW(badInline.get(), std::runtime_error);
}

TEST(SimPoolTest, DestructorDrainsQueuedJobs)
{
    std::atomic<int> ran{0};
    std::vector<std::future<int>> futs;
    {
        SimPool pool(2);
        for (int i = 0; i < 32; ++i) {
            futs.push_back(pool.submit([&ran, i] {
                ++ran;
                return i;
            }));
        }
    } // Dtor joins after the queue drains.
    EXPECT_EQ(ran.load(), 32);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i);
}

// ---------------------------------------------------------------------
// Job graph + determinism
// ---------------------------------------------------------------------

SimConfig
tinyConfig(uint64_t insts = 2000)
{
    SimConfig cfg;
    cfg.vpMode = VpMode::None;
    cfg.maxInsts = insts;
    cfg.seed = 1;
    return cfg;
}

/** Exact (bitwise, via ==) equality of every field and every stat. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.usefulInsts, b.usefulInsts);
    EXPECT_EQ(a.usefulIpc, b.usefulIpc); // Bit-identical double.
    EXPECT_EQ(a.halted, b.halted);
    ASSERT_EQ(a.stats.size(), b.stats.size());
    for (const auto &[name, value] : a.stats) {
        auto it = b.stats.find(name);
        ASSERT_NE(it, b.stats.end()) << "missing stat " << name;
        EXPECT_EQ(value, it->second) << "stat " << name;
    }
}

TEST(SimJobGraphTest, DedupsIdenticalJobs)
{
    SimPool pool(2);
    SimJobGraph graph(pool, nullptr);
    SimConfig cfg = tinyConfig();

    auto f1 = graph.submit(cfg, "gzip.g");
    auto f2 = graph.submit(cfg, "gzip.g"); // Same job: same future.
    auto f3 = graph.submit(cfg, "mcf");
    f1.wait();
    f2.wait();
    f3.wait();

    EXPECT_EQ(graph.simulated(), 2u); // gzip.g once, mcf once.
    expectIdentical(f1.get(), f2.get());
    EXPECT_EQ(f1.get().workload, "gzip.g");
    EXPECT_EQ(f3.get().workload, "mcf");
}

TEST(SimJobGraphTest, SerialAndParallelRunsAreBitIdentical)
{
    const std::vector<std::string> workloads = {"gzip.g", "mcf"};
    std::vector<SimConfig> configs;
    configs.push_back(tinyConfig()); // Baseline.
    {
        SimConfig stvp = tinyConfig();
        stvp.vpMode = VpMode::Stvp;
        stvp.predictor = PredictorKind::Oracle;
        configs.push_back(stvp);
    }
    {
        SimConfig mtvp = tinyConfig();
        mtvp.vpMode = VpMode::Mtvp;
        mtvp.numContexts = 2;
        mtvp.predictor = PredictorKind::Oracle;
        mtvp.storeBufferSize = 0;
        configs.push_back(mtvp);
    }

    auto runMatrix = [&](int jobs) {
        SimPool pool(jobs);
        SimJobGraph graph(pool, nullptr);
        std::vector<std::shared_future<SimResult>> futs;
        for (const auto &wl : workloads)
            for (const auto &cfg : configs)
                futs.push_back(graph.submit(cfg, wl));
        std::vector<SimResult> out;
        for (auto &f : futs)
            out.push_back(f.get());
        return out;
    };

    std::vector<SimResult> serial = runMatrix(1);
    std::vector<SimResult> parallel = runMatrix(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

// ---------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------

std::string
freshCacheDir(const char *tag)
{
    std::string dir = ::testing::TempDir() + "vpsim-cache-" + tag + "-" +
                      std::to_string(::getpid());
    // Entries are keyed by content hash, so a leftover dir from a
    // previous identical run only makes lookups succeed sooner; tests
    // that need a cold cache use distinct tags.
    return dir;
}

TEST(ResultCacheTest, RoundTripsResultsExactly)
{
    ResultCache cache(freshCacheDir("roundtrip"));
    SimConfig cfg = tinyConfig();
    SimResult r = runWorkload(cfg, "gzip.g");

    SimResult miss;
    EXPECT_FALSE(cache.lookup(cfg, "gzip.g", miss));

    cache.store(cfg, "gzip.g", r);
    SimResult hit;
    ASSERT_TRUE(cache.lookup(cfg, "gzip.g", hit));
    expectIdentical(r, hit);
}

TEST(ResultCacheTest, EveryResultAffectingFieldChangesTheKey)
{
    SimConfig a = tinyConfig();
    SimConfig b = tinyConfig();
    EXPECT_EQ(resultKey(a, "mcf"), resultKey(b, "mcf"));
    EXPECT_NE(resultKey(a, "mcf"), resultKey(a, "crafty"));

    // The fields the old string-concatenation bench key silently
    // dropped must all change the hash now.
    b.confidenceThreshold += 1;
    EXPECT_NE(resultKey(a, "mcf"), resultKey(b, "mcf"));
    b = tinyConfig();
    b.seed += 1;
    EXPECT_NE(resultKey(a, "mcf"), resultKey(b, "mcf"));
    b = tinyConfig();
    b.maxInsts += 1;
    EXPECT_NE(resultKey(a, "mcf"), resultKey(b, "mcf"));
    b = tinyConfig();
    b.prefetchEnabled = !b.prefetchEnabled;
    EXPECT_NE(resultKey(a, "mcf"), resultKey(b, "mcf"));
    b = tinyConfig();
    b.confidenceDown += 1;
    EXPECT_NE(resultKey(a, "mcf"), resultKey(b, "mcf"));
    b = tinyConfig();
    b.streamBufferDepth += 1;
    EXPECT_NE(resultKey(a, "mcf"), resultKey(b, "mcf"));
}

TEST(ResultCacheTest, CollisionOrSchemaMismatchIsAMiss)
{
    ResultCache cache(freshCacheDir("collision"));
    SimConfig cfg = tinyConfig();
    SimResult r = runWorkload(cfg, "gzip.g");
    cache.store(cfg, "gzip.g", r);

    // Overwrite the entry with one whose canonical key string differs:
    // simulates an FNV collision / stale keying. Must read as a miss.
    SimConfig other = tinyConfig();
    other.seed = 999;
    std::ofstream(cache.entryPath(cfg, "gzip.g"))
        << "{\"schema\": \"" << statSchemaVersion << "\", \"key\": \""
        << resultKeyString(other, "gzip.g") << "\", \"usefulIpc\": 1}";
    SimResult out;
    EXPECT_FALSE(cache.lookup(cfg, "gzip.g", out));

    // Garbage file: also a miss, never a crash.
    std::ofstream(cache.entryPath(cfg, "gzip.g")) << "not json at all";
    EXPECT_FALSE(cache.lookup(cfg, "gzip.g", out));
}

TEST(ResultCacheTest, DisabledCacheNeverStoresOrHits)
{
    ResultCache cache("");
    EXPECT_FALSE(cache.enabled());
    SimConfig cfg = tinyConfig();
    SimResult r;
    r.workload = "fake";
    cache.store(cfg, "gzip.g", r); // Dropped silently.
    EXPECT_FALSE(cache.lookup(cfg, "gzip.g", r));
    // Disabled lookups are not counted: the counters describe the
    // on-disk cache, which was never consulted.
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ResultCacheTest, CountsHitsMissesAndEvictions)
{
    ResultCache cache(freshCacheDir("counters"));
    SimConfig cfg = tinyConfig();
    SimResult r = runWorkload(cfg, "gzip.g");

    SimResult out;
    EXPECT_FALSE(cache.lookup(cfg, "gzip.g", out));
    cache.store(cfg, "gzip.g", r);
    EXPECT_TRUE(cache.lookup(cfg, "gzip.g", out));
    EXPECT_TRUE(cache.lookup(cfg, "gzip.g", out));
    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.evictions, 0u); // No cap configured.
}

TEST(ResultCacheTest, SizeCapEvictsLeastRecentlyWritten)
{
    const std::string dir = freshCacheDir("cap");
    SimConfig a = tinyConfig();
    SimConfig b = tinyConfig();
    b.seed = 2;
    SimResult ra = runWorkload(a, "gzip.g");
    SimResult rb = runWorkload(b, "gzip.g");

    // Measure one entry, then cap the cache so a second entry must
    // push the directory over the limit.
    uint64_t oneEntry;
    {
        ResultCache probe(dir);
        probe.store(a, "gzip.g", ra);
        std::ifstream is(probe.entryPath(a, "gzip.g"),
                         std::ios::binary | std::ios::ate);
        ASSERT_TRUE(is.good());
        oneEntry = static_cast<uint64_t>(is.tellg());
        std::remove(probe.entryPath(a, "gzip.g").c_str());
    }

    ResultCache cache(dir, oneEntry + oneEntry / 2);
    EXPECT_EQ(cache.maxBytes(), oneEntry + oneEntry / 2);
    cache.store(a, "gzip.g", ra);
    EXPECT_EQ(cache.stats().evictions, 0u); // One entry fits.
    cache.store(b, "gzip.g", rb);
    EXPECT_EQ(cache.stats().evictions, 1u); // Two do not.

    // Exactly one entry survived (same-second mtimes tie-break by
    // path, so which one is unspecified — but never both).
    SimResult out;
    int present = 0;
    if (cache.lookup(a, "gzip.g", out))
        ++present;
    if (cache.lookup(b, "gzip.g", out))
        ++present;
    EXPECT_EQ(present, 1);
}

TEST(ResultCacheTest, StandardReadsSizeCapFromEnvironment)
{
    ::setenv("MTVP_CACHE_MAX_MB", "3", 1);
    EXPECT_EQ(ResultCache::standard().maxBytes(), 3ull * 1024 * 1024);
    ::unsetenv("MTVP_CACHE_MAX_MB");
    EXPECT_EQ(ResultCache::standard().maxBytes(), 0u);
}

TEST(SimJobGraphTest, SecondGraphAnswersFromPersistentCache)
{
    ResultCache cache(freshCacheDir("graph"));
    SimConfig cfg = tinyConfig();

    SimPool pool(2);
    SimResult cold;
    {
        SimJobGraph graph(pool, &cache);
        cold = graph.submit(cfg, "gzip.g").get();
        EXPECT_EQ(graph.simulated(), 1u);
        EXPECT_EQ(graph.cacheHits(), 0u);
    }
    {
        SimJobGraph graph(pool, &cache);
        SimResult warm = graph.submit(cfg, "gzip.g").get();
        EXPECT_EQ(graph.simulated(), 0u); // Answered from disk.
        EXPECT_EQ(graph.cacheHits(), 1u);
        expectIdentical(cold, warm);
    }
}

} // namespace
