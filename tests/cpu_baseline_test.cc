/** Baseline (no value prediction) pipeline tests: completion, timing
 *  sanity, branch-misprediction penalties, memory latencies, ICOUNT
 *  fetch and structural limits. */

#include <gtest/gtest.h>

#include "cpu_test_util.hh"

using namespace vptest;

TEST(CpuBaseline, TinyProgramHalts)
{
    CpuRun r = runAsm("addi r1, r0, 5\nhalt\n", haltConfig());
    EXPECT_TRUE(r.cpu->haltedUsefully());
    EXPECT_EQ(r.useful(), 2u);
    EXPECT_GT(r.cycles(), 0u);
}

TEST(CpuBaseline, IpcBoundedByWidth)
{
    // A hot loop of independent ALU ops (I-cache resident after the
    // first iteration).
    std::string src = "addi r9, r0, 1000\nloop:\n";
    for (int i = 0; i < 8; ++i)
        src += csprintf("addi r%d, r0, %d\n", 1 + i, i);
    src += "subi r9, r9, 1\nbne r9, r0, loop\nhalt\n";
    CpuRun r = runAsm(src, haltConfig());
    double ipc = static_cast<double>(r.useful()) / r.cycles();
    EXPECT_LE(ipc, 8.0); // Cannot exceed issue width.
    EXPECT_GT(ipc, 2.0); // Independent ALU ops should flow well.
}

TEST(CpuBaseline, SerialDependenceLimitsIpc)
{
    // A fully serial multiply chain: one result per 3-cycle latency.
    std::string src = "addi r1, r0, 3\naddi r2, r0, 1\n";
    for (int i = 0; i < 500; ++i)
        src += "mul r2, r2, r1\n";
    src += "halt\n";
    CpuRun r = runAsm(src, haltConfig());
    double ipc = static_cast<double>(r.useful()) / r.cycles();
    EXPECT_LT(ipc, 0.6);
}

TEST(CpuBaseline, ColdLoadCostsMemoryLatency)
{
    SimConfig cfg = haltConfig();
    CpuRun r = runAsm(R"(
        li r1, 0x400000
        ld r2, 0(r1)
        add r3, r2, r2
        halt
    )", cfg);
    EXPECT_GT(r.cycles(), static_cast<Cycle>(cfg.memLatency));
    EXPECT_EQ(r.stat("mem.loadsMem"), 1.0);
}

TEST(CpuBaseline, CacheHitsAreCheap)
{
    // Second pass over a small array should be L1 hits.
    std::string src = R"(
        li r1, 0x400000
        addi r2, r0, 64
    p1:
        ld r3, 0(r1)
        addi r1, r1, 8
        subi r2, r2, 1
        bne r2, r0, p1
        li r1, 0x400000
        addi r2, r0, 64
    p2:
        ld r3, 0(r1)
        addi r1, r1, 8
        subi r2, r2, 1
        bne r2, r0, p2
        halt
    )";
    CpuRun r = runAsm(src, haltConfig());
    EXPECT_GT(r.stat("mem.loadsL1"), 60.0);
}

TEST(CpuBaseline, MispredictedBranchesCostRedirects)
{
    // A data-dependent unpredictable branch pattern.
    std::string src = R"(
        li   r1, 88172645463325252
        addi r2, r0, 400
        addi r4, r0, 0
    loop:
        slli r3, r1, 13
        xor  r1, r1, r3
        srli r3, r1, 7
        xor  r1, r1, r3
        andi r3, r1, 1
        beq  r3, r0, even
        addi r4, r4, 1
    even:
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    CpuRun r = runAsm(src, haltConfig());
    EXPECT_GT(r.stat("fetch.redirects"), 50.0);
    EXPECT_GT(r.stat("bpred.mispredicts"), 50.0);
    // Redirect penalty: each mispredict costs at least the front end.
    EXPECT_GT(r.cycles(), r.stat("fetch.redirects") * 10);
}

TEST(CpuBaseline, PredictableBranchesAreCheap)
{
    std::string src = R"(
        addi r2, r0, 2000
        addi r4, r0, 0
    loop:
        addi r4, r4, 1
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    CpuRun r = runAsm(src, haltConfig());
    double mispredictRate =
        r.stat("bpred.mispredicts") / r.stat("bpred.lookups");
    EXPECT_LT(mispredictRate, 0.05);
}

TEST(CpuBaseline, CallsReturnViaRas)
{
    std::string src = R"(
        addi r2, r0, 200
        addi r4, r0, 0
    loop:
        jal  r31, fn
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    fn:
        addi r4, r4, 1
        ret
    )";
    CpuRun r = runAsm(src, haltConfig());
    EXPECT_TRUE(r.cpu->haltedUsefully());
    // Returns predicted by the RAS: few redirects.
    EXPECT_LT(r.stat("fetch.redirects"), 20.0);
}

TEST(CpuBaseline, StoresDrainToMemory)
{
    CpuRun r = runAsm(R"(
        li  r1, 0x500000
        li  r2, 0xabcdef
        sd  r2, 0(r1)
        sd  r2, 8(r1)
        halt
    )", haltConfig());
    EXPECT_EQ(r.mem->read64(0x500000), 0xabcdefu);
    EXPECT_EQ(r.mem->read64(0x500008), 0xabcdefu);
}

TEST(CpuBaseline, StoreToLoadForwarding)
{
    CpuRun r = runAsm(R"(
        li  r1, 0x500000
        li  r2, 77
        sd  r2, 0(r1)
        ld  r3, 0(r1)       # forwarded, no memory round trip
        sd  r3, 64(r1)
        halt
    )", haltConfig());
    EXPECT_EQ(r.mem->read64(0x500040), 77u);
}

TEST(CpuBaseline, MaxInstsStopsEarly)
{
    SimConfig cfg = haltConfig();
    cfg.maxInsts = 100;
    std::string src = "addi r1, r0, 1\n";
    for (int i = 0; i < 1000; ++i)
        src += "addi r1, r1, 1\n";
    src += "halt\n";
    CpuRun r = runAsm(src, cfg);
    EXPECT_FALSE(r.cpu->haltedUsefully());
    EXPECT_GE(r.useful(), 100u);
    EXPECT_LT(r.useful(), 300u);
}

TEST(CpuBaseline, MaxCyclesStopsRunawayLoops)
{
    SimConfig cfg = haltConfig();
    cfg.maxCycles = 5000;
    CpuRun r = runAsm("spin: b spin\nhalt\n", cfg);
    EXPECT_FALSE(r.cpu->haltedUsefully());
    EXPECT_GE(r.cycles(), 5000u);
}

TEST(CpuBaseline, DeterministicCycles)
{
    SimConfig cfg = haltConfig();
    CpuRun a = runAsm(chaseKernel(300), cfg, chaseData());
    CpuRun b = runAsm(chaseKernel(300), cfg, chaseData());
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.useful(), b.useful());
    EXPECT_EQ(a.stat("issue.total"), b.stat("issue.total"));
}

TEST(CpuBaseline, FpPipelineWorks)
{
    CpuRun r = runAsm(R"(
        addi r1, r0, 16
        fcvtdl f1, r1
        fsqrt f2, f1
        fcvtld r2, f2
        li   r3, 0x500000
        sd   r2, 0(r3)
        halt
    )", haltConfig());
    EXPECT_EQ(r.mem->read64(0x500000), 4u);
}

TEST(CpuBaseline, WideWindowBeatsBaselineOnMlp)
{
    // Independent cold misses: the 8K-window machine overlaps far more
    // of them than the 256-entry ROB.
    std::string src = R"(
        li   r1, 0x800000
        addi r2, r0, 120
    loop:
        ld   r3, 0(r1)
        add  r4, r4, r3
        li   r5, 16384
        add  r1, r1, r5
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    SimConfig base = haltConfig();
    base.prefetchEnabled = false;
    SimConfig wide = base;
    wide.wideWindow = true;
    CpuRun rb = runAsm(src, base);
    CpuRun rw = runAsm(src, wide);
    EXPECT_LT(rw.cycles(), rb.cycles());
}
