/** Single-threaded value prediction tests: prediction consumption,
 *  confirmation, selective reissue on mispredictions, tag management,
 *  and the performance effect on a serial miss chain. */

#include <gtest/gtest.h>

#include "cpu_test_util.hh"

using namespace vptest;

namespace
{

SimConfig
stvpConfig(PredictorKind pred = PredictorKind::Oracle)
{
    SimConfig cfg = haltConfig();
    cfg.vpMode = VpMode::Stvp;
    cfg.predictor = pred;
    cfg.selector = SelectorKind::Always;
    return cfg;
}

} // namespace

TEST(CpuStvp, OraclePredictionsAreFollowedAndCorrect)
{
    CpuRun r = runAsm(chaseKernel(400), stvpConfig(), chaseData());
    EXPECT_GT(r.stat("vp.stvp"), 100.0);
    EXPECT_EQ(r.stat("vp.incorrect"), 0.0);
    EXPECT_EQ(r.stat("vp.reissues"), 0.0);
    EXPECT_EQ(r.stat("vp.correct"), r.stat("vp.stvp"));
}

TEST(CpuStvp, OracleSpeedsUpSerialChase)
{
    SimConfig base = haltConfig();
    CpuRun rb = runAsm(chaseKernel(400), base, chaseData(0.5));
    CpuRun rs = runAsm(chaseKernel(400), stvpConfig(), chaseData(0.5));
    EXPECT_LT(rs.cycles(), rb.cycles());
    EXPECT_TRUE(rs.cpu->haltedUsefully());
}

TEST(CpuStvp, ArchitecturalStateUnchangedByStvp)
{
    auto ref = referenceMemory(chaseKernel(400), chaseData(0.6));
    CpuRun r = runAsm(chaseKernel(400), stvpConfig(), chaseData(0.6));
    EXPECT_TRUE(r.mem->contentEquals(*ref));
}

TEST(CpuStvp, RealisticPredictorMispredictsAndReissues)
{
    // A last-value predictor on a load whose value holds steady for 50
    // iterations then switches: the predictor becomes confident on each
    // plateau and mispredicts at every switch; dependents must reissue
    // and results stay correct.
    std::string src = R"(
        li   r1, 0x400000
        li   r9, 0x600000
        addi r2, r0, 400
        addi r8, r0, 0       # index
        addi r4, r0, 0
    loop:
        slli r5, r8, 3
        add  r6, r1, r5
        ld   r7, 0(r6)       # plateau values with occasional switches
        add  r4, r4, r7      # dependent chain
        mul  r4, r4, r7
        addi r8, r8, 1
        subi r2, r2, 1
        bne  r2, r0, loop
        sd   r4, 0(r9)
        halt
    )";
    auto init = [](MainMemory &mem) {
        for (int i = 0; i < 400; ++i)
            mem.write64(0x400000 + i * 8, (i / 50) % 2 == 0 ? 3 : 1000);
    };
    SimConfig cfg = stvpConfig(PredictorKind::LastValue);
    CpuRun r = runAsm(src, cfg, init);
    // Functional correctness despite mispredictions.
    auto ref = referenceMemory(src, init);
    EXPECT_TRUE(r.mem->contentEquals(*ref));
    EXPECT_GT(r.stat("vp.incorrect"), 0.0);
    EXPECT_GT(r.stat("vp.reissues"), 0.0);
}

TEST(CpuStvp, PredictionsTrainAtCommit)
{
    // A constant-value load becomes confident after about threshold
    // trainings, then predictions follow.
    std::string src = R"(
        li   r1, 0x400000
        addi r2, r0, 200
        addi r4, r0, 0
    loop:
        ld   r3, 0(r1)
        add  r4, r4, r3
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    SimConfig cfg = stvpConfig(PredictorKind::LastValue);
    CpuRun r = runAsm(src, cfg,
                      [](MainMemory &m) { m.write64(0x400000, 9); });
    EXPECT_GT(r.stat("vp.stvp"), 100.0);
    EXPECT_EQ(r.stat("vp.incorrect"), 0.0);
}

TEST(CpuStvp, ChainedPredictionsViaSpeculativeStride)
{
    // Back-to-back stride predictions on an in-flight PC: multiple
    // predictions outstanding at once (tags in use).
    CpuRun r = runAsm(chaseKernel(600), stvpConfig(), chaseData(1.0));
    EXPECT_GT(r.stat("vp.stvp"), 300.0);
    EXPECT_EQ(r.stat("vp.incorrect"), 0.0);
    EXPECT_EQ(r.cpu->freeVpTags(), 64);
}

TEST(CpuStvp, NoSpawnsInStvpMode)
{
    CpuRun r = runAsm(chaseKernel(200), stvpConfig(), chaseData());
    EXPECT_EQ(r.stat("mtvp.spawns"), 0.0);
    EXPECT_EQ(r.cpu->activeContexts(), 1);
}

TEST(CpuStvp, IlpSelectorThrottlesUselessPredictions)
{
    // Cache-resident loads gain little from prediction; ILP-pred should
    // follow fewer predictions than Always.
    std::string src = R"(
        li   r1, 0x400000
        addi r2, r0, 2000
        addi r4, r0, 0
    loop:
        andi r5, r2, 255
        slli r5, r5, 3
        add  r6, r1, r5
        ld   r7, 0(r6)
        add  r4, r4, r7
        subi r2, r2, 1
        bne  r2, r0, loop
        halt
    )";
    auto init = [](MainMemory &m) {
        for (int i = 0; i < 256; ++i)
            m.write64(0x400000 + i * 8, 1);
    };
    SimConfig always = stvpConfig(PredictorKind::LastValue);
    SimConfig ilp = always;
    ilp.selector = SelectorKind::IlpPred;
    CpuRun ra = runAsm(src, always, init);
    CpuRun ri = runAsm(src, ilp, init);
    EXPECT_LT(ri.stat("vp.stvp"), ra.stat("vp.stvp"));
}

TEST(CpuStvp, FinalChecksumMatchesReference)
{
    for (double p : {1.0, 0.9, 0.5}) {
        auto ref = referenceMemory(chaseKernel(350), chaseData(p));
        CpuRun r = runAsm(chaseKernel(350),
                          stvpConfig(PredictorKind::WangFranklin),
                          chaseData(p));
        EXPECT_EQ(r.mem->read64(0x700000), ref->read64(0x700000))
            << "stride probability " << p;
    }
}
