/** Branch-prediction tests: 2bcgskew learning behaviour, per-context
 *  history, BTB, and the return-address stack. */

#include <gtest/gtest.h>

#include "bpred/branch_predictor.hh"
#include "bpred/btb.hh"

using namespace vpsim;

namespace
{

class BpredTest : public ::testing::Test
{
  protected:
    BpredTest() : bp(stats, 16384, 65536, 65536, 4) {}

    StatGroup stats;
    BranchPredictor bp;
};

} // namespace

TEST_F(BpredTest, LearnsAlwaysTaken)
{
    Addr pc = 0x4000;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, 0, true);
    EXPECT_TRUE(bp.predict(pc, 0));
}

TEST_F(BpredTest, LearnsAlwaysNotTaken)
{
    Addr pc = 0x4100;
    for (int i = 0; i < 8; ++i)
        bp.update(pc, 0, false);
    EXPECT_FALSE(bp.predict(pc, 0));
}

TEST_F(BpredTest, LearnsAlternatingPatternViaHistory)
{
    // Bimodal alone cannot predict T,N,T,N...; the gshare banks can.
    Addr pc = 0x4200;
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        bp.update(pc, 0, taken);
        taken = !taken;
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (bp.predict(pc, 0) == taken)
            ++correct;
        bp.update(pc, 0, taken);
        taken = !taken;
    }
    EXPECT_GT(correct, 90);
}

TEST_F(BpredTest, LearnsLoopExitPattern)
{
    // Taken 7 times then not taken once (8-iteration loop).
    Addr pc = 0x4300;
    auto outcome = [](int i) { return i % 8 != 7; };
    for (int i = 0; i < 400; ++i)
        bp.update(pc, 0, outcome(i));
    int correct = 0;
    for (int i = 400; i < 600; ++i) {
        if (bp.predict(pc, 0) == outcome(i))
            ++correct;
        bp.update(pc, 0, outcome(i));
    }
    EXPECT_GT(correct, 180);
}

TEST_F(BpredTest, MispredictCounter)
{
    Addr pc = 0x4400;
    for (int i = 0; i < 20; ++i)
        bp.update(pc, 0, true);
    uint64_t before = bp.mispredicts();
    bp.update(pc, 0, false); // Surprise.
    EXPECT_EQ(bp.mispredicts(), before + 1);
}

TEST_F(BpredTest, ContextsHaveIndependentHistory)
{
    Addr pc = 0x4500;
    // Context 0 sees alternating outcomes; context 1 sees all-taken.
    bool taken = false;
    for (int i = 0; i < 300; ++i) {
        bp.update(pc, 0, taken);
        taken = !taken;
        bp.update(pc, 1, true);
    }
    EXPECT_TRUE(bp.predict(pc, 1));
}

TEST_F(BpredTest, CopyHistoryAlignsPredictions)
{
    Addr pc = 0x4600;
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        bp.update(pc, 0, taken);
        taken = !taken;
    }
    // A freshly spawned context with copied history predicts like the
    // parent at the same point in the pattern.
    bp.copyHistory(0, 2);
    EXPECT_EQ(bp.predict(pc, 2), bp.predict(pc, 0));
}

TEST(Btb, StoreAndLookup)
{
    StatGroup stats;
    Btb btb(stats, 4096);
    EXPECT_FALSE(btb.lookup(0x5000).has_value());
    btb.update(0x5000, 0x9000);
    auto t = btb.lookup(0x5000);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x9000u);
}

TEST(Btb, TagsRejectAliases)
{
    StatGroup stats;
    Btb btb(stats, 16);
    btb.update(0x5000, 0x9000);
    // Same index (16 entries * 4 bytes apart), different PC.
    EXPECT_FALSE(btb.lookup(0x5000 + 16 * 4).has_value());
}

TEST(Btb, UpdateOverwrites)
{
    StatGroup stats;
    Btb btb(stats, 4096);
    btb.update(0x5000, 0x9000);
    btb.update(0x5000, 0xa000);
    EXPECT_EQ(*btb.lookup(0x5000), 0xa000u);
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(8);
    EXPECT_TRUE(ras.empty());
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // Empty pops return 0.
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, CopySemantics)
{
    ReturnAddressStack a(8);
    a.push(0x111);
    ReturnAddressStack b = a;
    a.pop();
    EXPECT_EQ(b.pop(), 0x111u); // Copies are independent.
}
