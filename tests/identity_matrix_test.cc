/**
 * @file
 * Bit-identity gate for the data-oriented core overhaul: the full
 * {baseline, STVP, MTVP, spawn-only} x {timeSkip 0,1} x {jobs 1,4}
 * matrix must produce bit-identical statsJson content regardless of
 * SimPool parallelism. The old-vs-new core equivalence was established
 * once against the pre-overhaul binary (see EXPERIMENTS.md "Simulator
 * throughput"); this test keeps the surviving runtime half of that
 * contract — determinism across worker counts and the time-skip
 * engine — continuously enforced on the exact configuration matrix
 * the overhaul touched (intrusive instruction pool, bitmap wakeup,
 * L1 fast path).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/sim_pool.hh"
#include "sim/simulation.hh"

namespace
{

using namespace vpsim;

struct MatrixCase
{
    const char *name;
    VpMode mode;
    int contexts;
};

const std::vector<MatrixCase> &
matrixCases()
{
    static const std::vector<MatrixCase> cases = {
        {"baseline", VpMode::None, 1},
        {"stvp", VpMode::Stvp, 1},
        {"mtvp", VpMode::Mtvp, 8},
        {"spawnonly", VpMode::SpawnOnly, 8},
    };
    return cases;
}

SimConfig
matrixConfig(const MatrixCase &c, uint64_t timeSkip)
{
    SimConfig cfg;
    cfg.vpMode = c.mode;
    cfg.numContexts = c.contexts;
    cfg.maxInsts = 2500;
    cfg.seed = 1;
    cfg.timeSkip = timeSkip;
    return cfg;
}

/** Exact equality of every field and every exported stat — the same
 *  content statsJson serializes, so equality here is statsJson
 *  bit-identity. */
void
expectIdentical(const SimResult &a, const SimResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.usefulInsts, b.usefulInsts) << what;
    EXPECT_EQ(a.usefulIpc, b.usefulIpc) << what; // Bit-identical double.
    EXPECT_EQ(a.halted, b.halted) << what;
    ASSERT_EQ(a.stats.size(), b.stats.size()) << what;
    for (const auto &[name, value] : a.stats) {
        auto it = b.stats.find(name);
        ASSERT_NE(it, b.stats.end()) << what << ": missing " << name;
        EXPECT_EQ(value, it->second) << what << ": stat " << name;
    }
}

TEST(IdentityMatrixTest, JobsOneAndFourAreBitIdentical)
{
    auto runMatrix = [](int jobs) {
        SimPool pool(jobs);
        SimJobGraph graph(pool, nullptr);
        std::vector<std::shared_future<SimResult>> futs;
        for (const MatrixCase &c : matrixCases())
            for (uint64_t ts : {uint64_t{0}, uint64_t{1}})
                futs.push_back(graph.submit(matrixConfig(c, ts), "mcf"));
        std::vector<SimResult> out;
        for (auto &f : futs)
            out.push_back(f.get());
        return out;
    };

    std::vector<SimResult> serial = runMatrix(1);
    std::vector<SimResult> parallel = runMatrix(4);
    ASSERT_EQ(serial.size(), parallel.size());
    size_t i = 0;
    for (const MatrixCase &c : matrixCases()) {
        for (uint64_t ts : {uint64_t{0}, uint64_t{1}}) {
            expectIdentical(serial[i], parallel[i],
                            std::string(c.name) + " ts" +
                                std::to_string(ts));
            ++i;
        }
    }
}

TEST(IdentityMatrixTest, RepeatRunsAreBitIdentical)
{
    // Same config, fresh Cpu each time: the pool/wakeup structures
    // hold no cross-run state.
    SimConfig cfg = matrixConfig(matrixCases()[2], 0); // mtvp ts0
    SimResult a = runWorkload(cfg, "mcf");
    SimResult b = runWorkload(cfg, "mcf");
    expectIdentical(a, b, "mtvp ts0 repeat");
}

} // namespace
