/** Shared helpers for the CPU-level tests: assemble a program, run it
 *  on a Cpu under a given configuration, and expose the final memory,
 *  stats, and resource state for assertions. */

#ifndef VPSIM_TESTS_CPU_TEST_UTIL_HH
#define VPSIM_TESTS_CPU_TEST_UTIL_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/cpu.hh"
#include "emu/emulator.hh"
#include "emu/memory.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

namespace vptest
{

using namespace vpsim;

struct CpuRun
{
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<Cpu> cpu;

    Cycle cycles() const { return cpu->cycles(); }
    uint64_t useful() const { return cpu->usefulInsts(); }
    double stat(const std::string &name) const
    {
        return cpu->stats().get(name);
    }
};

using DataInit = std::function<void(MainMemory &)>;

/** Assemble @p src, apply @p init, and run to HALT (or maxInsts). */
inline CpuRun
runAsm(const std::string &src, const SimConfig &cfg,
       const DataInit &init = {})
{
    CpuRun run;
    run.mem = std::make_unique<MainMemory>();
    Program p = assemble(src);
    run.mem->loadProgram(p);
    if (init)
        init(*run.mem);
    run.cpu = std::make_unique<Cpu>(cfg, *run.mem, p.base);
    run.cpu->run();
    return run;
}

/** Functional reference: emulate @p src to HALT, returning memory. */
inline std::unique_ptr<MainMemory>
referenceMemory(const std::string &src, const DataInit &init = {})
{
    auto mem = std::make_unique<MainMemory>();
    Program p = assemble(src);
    mem->loadProgram(p);
    if (init)
        init(*mem);
    Emulator emu(*mem);
    ArchState st;
    st.pc = p.base;
    emu.run(st, 50'000'000);
    return mem;
}

/** Baseline Table-1 config that runs to HALT. */
inline SimConfig
haltConfig()
{
    SimConfig cfg;
    cfg.maxInsts = 0;          // No instruction cap...
    cfg.maxCycles = 30'000'000; // ...but a generous cycle safety net.
    return cfg;
}

/** MTVP config helper. */
inline SimConfig
mtvpConfig(int ctxs, PredictorKind pred = PredictorKind::Oracle,
           SelectorKind sel = SelectorKind::Always)
{
    SimConfig cfg = haltConfig();
    cfg.vpMode = VpMode::Mtvp;
    cfg.numContexts = ctxs;
    cfg.predictor = pred;
    cfg.selector = sel;
    cfg.spawnLatency = 1;
    cfg.storeBufferSize = 128;
    return cfg;
}

/**
 * A store-heavy pointer-chase kernel with a predictable tail: stresses
 * spawning, store segments, promotion, and kills in a few thousand
 * instructions. Writes a checksum pattern to OUT.
 */
inline std::string
chaseKernel(int iters)
{
    return csprintf(R"(
        li   r1, 0x200000      # node pointer
        li   r9, 0x600000      # output array
        li   r2, %d            # iterations
        addi r4, r0, 0         # checksum
    loop:
        ld   r5, 0(r1)         # next (mostly stride: predictable)
        ld   r6, 8(r1)         # flag (mostly 0: predictable)
        add  r4, r4, r6
        sd   r4, 0(r9)         # running checksum store
        sd   r5, 8(r9)
        addi r9, r9, 16
        mv   r1, r5
        subi r2, r2, 1
        bne  r2, r0, loop
        li   r9, 0x700000
        sd   r4, 0(r9)         # final checksum
        halt
    )", iters);
}

/** Data set for chaseKernel: 4K nodes, mostly stride-linked. */
inline DataInit
chaseData(double strideProb = 0.9)
{
    return [strideProb](MainMemory &mem) {
        uint64_t x = 12345;
        auto rnd = [&x] {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            return x;
        };
        const uint64_t count = 4096;
        for (uint64_t i = 0; i < count; ++i) {
            Addr a = 0x200000 + i * 64;
            uint64_t next;
            if ((rnd() % 100) < static_cast<uint64_t>(strideProb * 100))
                next = 0x200000 + ((i + 1) % count) * 64;
            else
                next = 0x200000 + (rnd() % count) * 64;
            mem.write64(a, next);
            mem.write64(a + 8, rnd() % 100 < 90 ? 0 : 1);
        }
    };
}

} // namespace vptest

#endif // VPSIM_TESTS_CPU_TEST_UTIL_HH
