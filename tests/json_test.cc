/**
 * @file
 * Tests for the minimal JSON reader (src/sim/json.hh) and for the
 * writer-side guarantee it depends on: every double the repo emits goes
 * through jsonNumber, which serializes non-finite values as null — so
 * everything we write, we can read back.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/json.hh"
#include "sim/stats.hh"

using namespace vpsim;
using json::Value;

namespace
{

Value
mustParse(const std::string &text)
{
    Value v;
    std::string err;
    EXPECT_TRUE(json::parse(text, v, &err)) << err;
    return v;
}

} // namespace

TEST(Json, ParsesScalarsAndContainers)
{
    Value v = mustParse(R"({
      "s": "a\"b\\c\nd", "i": -42, "f": 3.25, "e": 1.5e3,
      "t": true, "x": false, "n": null,
      "a": [1, "two", {"k": 3}], "o": {"nested": {"deep": 1}}
    })");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.stringOr("s", ""), "a\"b\\c\nd");
    EXPECT_DOUBLE_EQ(v.numberOr("i", 0), -42.0);
    EXPECT_DOUBLE_EQ(v.numberOr("f", 0), 3.25);
    EXPECT_DOUBLE_EQ(v.numberOr("e", 0), 1500.0);
    EXPECT_TRUE(v.get("t")->boolean);
    EXPECT_FALSE(v.get("x")->boolean);
    EXPECT_TRUE(v.get("n")->isNull());
    ASSERT_TRUE(v.get("a")->isArray());
    ASSERT_EQ(v.get("a")->arr.size(), 3u);
    EXPECT_EQ(v.get("a")->arr[1].str, "two");
    EXPECT_DOUBLE_EQ(v.get("a")->arr[2].numberOr("k", 0), 3.0);
    EXPECT_DOUBLE_EQ(
        v.get("o")->get("nested")->numberOr("deep", 0), 1.0);
    // Defaulting accessors on absent/mistyped members.
    EXPECT_DOUBLE_EQ(v.numberOr("missing", -1.0), -1.0);
    EXPECT_EQ(v.stringOr("i", "def"), "def");
    EXPECT_EQ(v.get("missing"), nullptr);
    EXPECT_EQ(v.get("a")->get("k"), nullptr);  // non-object
}

TEST(Json, RejectsMalformedInput)
{
    Value v;
    std::string err;
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\": }", "{\"a\": 1,}", "tru",
          "\"unterminated", "{\"a\": 1} trailing", "nan"}) {
        EXPECT_FALSE(json::parse(bad, v, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
    EXPECT_FALSE(json::parseFile("/nonexistent/file.json", v, &err));
}

TEST(Json, NonFiniteDoublesRoundTripAsNull)
{
    // The writer-side contract (satisfied by jsonNumber everywhere the
    // repo emits a raw double): NaN/Inf become null, not invalid JSON.
    auto emit = [](double d) {
        std::ostringstream os;
        jsonNumber(os, d);
        return os.str();
    };
    EXPECT_EQ(emit(std::nan("")), "null");
    EXPECT_EQ(emit(INFINITY), "null");
    EXPECT_EQ(emit(-INFINITY), "null");

    std::string doc = "{\"nan\": " + emit(std::nan("")) +
                      ", \"inf\": " + emit(INFINITY) +
                      ", \"ok\": " + emit(3.25) + "}";
    Value v = mustParse(doc);
    EXPECT_TRUE(v.get("nan")->isNull());
    EXPECT_TRUE(v.get("inf")->isNull());
    EXPECT_DOUBLE_EQ(v.numberOr("ok", 0), 3.25);
}

TEST(Json, FiniteDoublesRoundTripExactly)
{
    for (double d : {1.0 / 3.0, -0.0, 1e-300, 123456789.123456789,
                     2.2250738585072014e-308}) {
        std::ostringstream os;
        jsonNumber(os, d);
        std::string payload = "[";
        payload += os.str();
        payload += "]";
        Value v = mustParse(payload);
        ASSERT_EQ(v.arr.size(), 1u);
        EXPECT_EQ(v.arr[0].number, d) << os.str();
    }
}
