#include "vplint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace vplint
{

namespace
{

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** One lexical token of a code line: an identifier/number or a single
 *  punctuation character. */
struct Token
{
    std::string text;
    int line = 0;   ///< 1-based source line.
    size_t col = 0; ///< 0-based column in that line.

    bool ident() const { return isIdentStart(text[0]); }
};

void
tokenizeLine(const std::string &code, int lineNo, std::vector<Token> &out)
{
    size_t i = 0;
    while (i < code.size()) {
        char c = code[i];
        if (isIdentStart(c)) {
            size_t b = i;
            while (i < code.size() && isIdentChar(code[i]))
                ++i;
            out.push_back({code.substr(b, i - b), lineNo, b});
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t b = i;
            while (i < code.size() &&
                   (isIdentChar(code[i]) || code[i] == '.'))
                ++i;
            out.push_back({code.substr(b, i - b), lineNo, b});
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
            out.push_back({std::string(1, c), lineNo, i});
            ++i;
        } else {
            ++i;
        }
    }
}

std::vector<Token>
tokenizeFile(const SourceFile &f)
{
    std::vector<Token> toks;
    bool continued = false; // Inside a backslash-continued directive.
    for (size_t i = 0; i < f.code.size(); ++i) {
        const std::string &line = f.code[i];
        bool directive = continued;
        if (!continued) {
            size_t first = line.find_first_not_of(" \t");
            directive = first != std::string::npos && line[first] == '#';
        }
        continued = directive && !line.empty() && line.back() == '\\';
        // Preprocessor directives are skipped entirely: macro bodies
        // would otherwise desynchronize the brace tracker.
        if (directive)
            continue;
        tokenizeLine(line, static_cast<int>(i) + 1, toks);
    }
    return toks;
}

/** Parse "rule1,rule2" out of every vplint:allow(...) in @p comment. */
void
parseAllows(const std::string &comment, std::set<std::string> &rules)
{
    size_t pos = 0;
    while ((pos = comment.find("vplint:allow(", pos)) != std::string::npos) {
        pos += 13;
        size_t close = comment.find(')', pos);
        if (close == std::string::npos)
            return;
        std::string list = comment.substr(pos, close - pos);
        size_t b = 0;
        while (b <= list.size()) {
            size_t e = list.find(',', b);
            std::string rule =
                trim(list.substr(b, e == std::string::npos ? e : e - b));
            if (!rule.empty())
                rules.insert(rule);
            if (e == std::string::npos)
                break;
            b = e + 1;
        }
        pos = close;
    }
}

void
diag(std::vector<Diag> &out, const SourceFile &f, int line,
     const std::string &rule, const std::string &message)
{
    if (f.isAllowed(line, rule))
        return;
    out.push_back({f.path, line, rule, message});
}

} // namespace

std::string
Diag::str() const
{
    return file + ":" + std::to_string(line) + ": " + rule + ": " + message;
}

FileKind
classifyPath(const std::string &relPath)
{
    if (relPath.rfind("src/", 0) == 0)
        return FileKind::Src;
    if (relPath.rfind("bench/", 0) == 0)
        return FileKind::Bench;
    if (relPath.rfind("tests/", 0) == 0)
        return FileKind::Tests;
    return FileKind::Other;
}

bool
SourceFile::isAllowed(int line, const std::string &rule) const
{
    auto covers = [&](int l) {
        return l >= 1 && l <= static_cast<int>(allowed.size()) &&
               allowed[static_cast<size_t>(l) - 1].count(rule) != 0;
    };
    // A vplint:allow comment covers its own line and the line below it
    // (so a comment-only line suppresses the statement that follows).
    return covers(line) || covers(line - 1);
}

SourceFile
prepareSource(std::string path, const std::string &content, FileKind kind)
{
    SourceFile f;
    f.path = std::move(path);
    f.kind = kind;

    enum class St { Code, LineComment, BlockComment, Str, Chr };
    St st = St::Code;
    std::string code, codeStrings, comment;
    auto flushLine = [&] {
        f.code.push_back(code);
        f.codeStrings.push_back(codeStrings);
        std::set<std::string> allows;
        parseAllows(comment, allows);
        f.allowed.push_back(std::move(allows));
        code.clear();
        codeStrings.clear();
        comment.clear();
    };

    for (size_t i = 0; i < content.size(); ++i) {
        char c = content[i];
        char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            if (st == St::LineComment)
                st = St::Code;
            // Unterminated literals never span lines in valid C++.
            if (st == St::Str || st == St::Chr)
                st = St::Code;
            flushLine();
            continue;
        }
        switch (st) {
          case St::Code:
            if (c == '/' && next == '/') {
                st = St::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                st = St::BlockComment;
                ++i;
            } else if (c == '"') {
                st = St::Str;
                code += '"';
                codeStrings += '"';
            } else if (c == '\'') {
                st = St::Chr;
                code += '\'';
                codeStrings += '\'';
            } else {
                code += c;
                codeStrings += c;
            }
            break;
          case St::LineComment:
            comment += c;
            break;
          case St::BlockComment:
            if (c == '*' && next == '/') {
                st = St::Code;
                ++i;
            } else {
                comment += c;
            }
            break;
          case St::Str:
            // Blank literal contents with spaces (not removal) so both
            // views keep identical column positions.
            codeStrings += c;
            if (c == '\\') {
                code += ' ';
                if (next != '\0') {
                    codeStrings += next;
                    code += ' ';
                    ++i;
                }
            } else if (c == '"') {
                code += '"';
                st = St::Code;
            } else {
                code += ' ';
            }
            break;
          case St::Chr:
            codeStrings += c;
            if (c == '\\') {
                code += ' ';
                if (next != '\0') {
                    codeStrings += next;
                    code += ' ';
                    ++i;
                }
            } else if (c == '\'') {
                code += '\'';
                st = St::Code;
            } else {
                code += ' ';
            }
            break;
        }
    }
    flushLine();
    return f;
}

// ---------------------------------------------------------------------
// Tree index: declarations of unordered containers and stat objects
// ---------------------------------------------------------------------

namespace
{

const std::set<std::string> statTypes = {"Scalar", "Average",
                                         "Distribution", "Formula"};

/** After `unordered_map` / `unordered_set`, skip the <...> template
 *  argument list and return the declared identifier ("" if none). */
std::string
declaredNameAfterTemplate(const std::vector<Token> &toks, size_t i)
{
    size_t n = toks.size();
    if (i >= n || toks[i].text != "<")
        return "";
    int depth = 0;
    for (; i < n; ++i) {
        if (toks[i].text == "<")
            ++depth;
        else if (toks[i].text == ">" && --depth == 0)
            break;
    }
    for (++i; i < n; ++i) {
        const std::string &t = toks[i].text;
        if (t == "&" || t == "*" || t == "const")
            continue;
        if (isIdentStart(t[0]))
            return t;
        return "";
    }
    return "";
}

} // namespace

void
indexSource(const SourceFile &f, TreeIndex &index)
{
    std::vector<Token> toks = tokenizeFile(f);
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        if (t == "unordered_map" || t == "unordered_set") {
            std::string name = declaredNameAfterTemplate(toks, i + 1);
            if (!name.empty())
                index.unorderedNames.insert(name);
        } else if (statTypes.count(t) != 0 && toks[i + 1].ident() &&
                   i + 2 < toks.size() && toks[i + 2].text == ";") {
            // Member/variable declaration `Scalar _hits;`.
            index.statNames.insert(toks[i + 1].text);
        }
    }
}

// ---------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------

namespace
{

/** Files exempt from the wallclock rule: the self-profiler and the
 *  engine-telemetry layer (pool job latency, ledger/heartbeat
 *  timestamps) are the sanctioned consumers of host time inside src/,
 *  and the bench drivers legitimately wall-time whole runs. None of
 *  them ever feed host time into simulated state. */
const std::set<std::string> wallclockAllowedFiles = {
    "src/sim/profiler.hh",
    "src/sim/profiler.cc",
    "src/sim/perfetto_trace.cc",
    "src/sim/sim_pool.cc",     // Job-latency histogram (telemetry).
    "src/sim/run_ledger.cc",   // Journal timestamps: host-side by design.
    "src/sim/watchdog.cc",     // Heartbeat + elapsed-time thresholds.
    "tests/watchdog_test.cc",  // Tests the wall-clock watchdog itself.
    "bench/run_all.cc",
    "bench/micro_components.cc",
    "bench/throughput.cc",      // KIPS measurement is wall-timing.
};

/** Files allowed to name std::shared_ptr<DynInst>: the pool header
 *  documents the migration away from it and is the one place a
 *  shared-ownership escape hatch could legitimately live. */
const std::set<std::string> sharedInstAllowedFiles = {
    "src/core/inst_pool.hh",
};

void
ruleRand(const SourceFile &f, const std::vector<Token> &toks,
         std::vector<Diag> &out)
{
    static const std::set<std::string> banned = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
        "random_device",
    };
    for (const Token &t : toks) {
        if (banned.count(t.text) != 0) {
            diag(out, f, t.line, "rand",
                 "host randomness '" + t.text +
                     "' breaks run-to-run determinism; use the seeded "
                     "sim/rng.hh generator instead");
        }
    }
}

void
ruleWallclock(const SourceFile &f, const std::vector<Token> &toks,
              std::vector<Diag> &out)
{
    if (wallclockAllowedFiles.count(f.path) != 0)
        return;
    static const std::set<std::string> banned = {
        "chrono", "steady_clock", "system_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "localtime", "gmtime",
    };
    static const std::set<std::string> bannedCalls = {"time", "clock"};
    for (size_t i = 0; i < toks.size(); ++i) {
        const std::string &t = toks[i].text;
        bool hit = banned.count(t) != 0;
        if (!hit && bannedCalls.count(t) != 0 &&
            i + 1 < toks.size() && toks[i + 1].text == "(") {
            // Only the free functions; skip member calls `x.time()`.
            bool member = i > 0 && (toks[i - 1].text == "." ||
                                    toks[i - 1].text == ">");
            hit = !member;
        }
        if (hit) {
            diag(out, f, toks[i].line, "wallclock",
                 "wall-clock read '" + t +
                     "' in simulation code breaks bit-identity "
                     "(allowed only in sim/profiler.* and bench "
                     "wall-timing)");
        }
    }
}

void
ruleSharedInst(const SourceFile &f, const std::vector<Token> &toks,
               std::vector<Diag> &out)
{
    if (sharedInstAllowedFiles.count(f.path) != 0)
        return;
    static const std::set<std::string> owners = {
        "shared_ptr", "weak_ptr", "make_shared", "allocate_shared",
    };
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        if (owners.count(toks[i].text) == 0 ||
            toks[i + 1].text != "<") {
            continue;
        }
        // Skip namespace qualifiers inside the template argument
        // ("vpsim::DynInst" and plain "DynInst" both count).
        size_t j = i + 2;
        while (j + 1 < toks.size() && toks[j].ident() &&
               toks[j + 1].text == ":") {
            j += 2;
            while (j < toks.size() && toks[j].text == ":")
                ++j;
        }
        if (j < toks.size() && toks[j].text == "DynInst") {
            diag(out, f, toks[i].line, "shared-inst",
                 "'" + toks[i].text + "<DynInst>' reintroduces "
                 "atomic shared ownership of instructions; use the "
                 "intrusive DynInstPtr from src/core/inst_pool.hh "
                 "(non-atomic refcount, slab-pooled)");
        }
    }
}

/** Trailing identifier of an expression ("a._pages" -> "_pages"). */
std::string
lastIdent(const std::string &expr)
{
    size_t e = expr.find_last_not_of(" \t");
    if (e == std::string::npos)
        return "";
    size_t b = e + 1;
    while (b > 0 && isIdentChar(expr[b - 1]))
        --b;
    if (b > e)
        return "";
    return expr.substr(b, e - b + 1);
}

/** Join line @p i (0-based) and following lines until parens starting
 *  at @p pos balance; returns the joined text from @p pos. */
std::string
balancedFrom(const SourceFile &f, size_t i, size_t pos, bool withStrings,
             size_t maxLines = 24)
{
    const std::vector<std::string> &lines =
        withStrings ? f.codeStrings : f.code;
    std::string text;
    int depth = 0;
    for (size_t l = i; l < lines.size() && l < i + maxLines; ++l) {
        const std::string &line = lines[l];
        for (size_t p = l == i ? pos : 0; p < line.size(); ++p) {
            char c = line[p];
            text += c;
            if (c == '(')
                ++depth;
            else if (c == ')' && --depth == 0)
                return text;
        }
        text += '\n';
    }
    return text; // Unbalanced within the window; caller copes.
}

void
ruleUnorderedIter(const SourceFile &f, const TreeIndex &index,
                  const std::vector<Token> &toks, std::vector<Diag> &out)
{
    // Range-for over an unordered container.
    for (size_t i = 0; i < f.code.size(); ++i) {
        size_t forPos = 0;
        const std::string &line = f.code[i];
        while ((forPos = line.find("for", forPos)) != std::string::npos) {
            bool word = (forPos == 0 || !isIdentChar(line[forPos - 1])) &&
                        (forPos + 3 >= line.size() ||
                         !isIdentChar(line[forPos + 3]));
            size_t paren = line.find('(', forPos);
            if (!word || paren == std::string::npos) {
                forPos += 3;
                continue;
            }
            std::string head = balancedFrom(f, i, paren, false);
            if (head.find(';') == std::string::npos) {
                size_t colon = head.find(':');
                // Skip '::' qualifiers when locating the range colon.
                while (colon != std::string::npos &&
                       colon + 1 < head.size() && head[colon + 1] == ':')
                    colon = head.find(':', colon + 2);
                if (colon != std::string::npos) {
                    std::string range = head.substr(colon + 1);
                    if (!range.empty() && range.back() == ')')
                        range.pop_back();
                    std::string name = lastIdent(range);
                    if (index.unorderedNames.count(name) != 0) {
                        diag(out, f, static_cast<int>(i) + 1,
                             "unordered-iter",
                             "iteration over unordered container '" +
                                 name + "': element order varies "
                                 "between runs/platforms and breaks "
                                 "bit-identical stats");
                    }
                }
            }
            forPos += 3;
        }
    }
    // Explicit iterator walks: container.begin()/cbegin()/rbegin().
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
        const std::string &m = toks[i + 2].text;
        if (toks[i + 1].text == "." &&
            (m == "begin" || m == "cbegin" || m == "rbegin") &&
            index.unorderedNames.count(toks[i].text) != 0) {
            diag(out, f, toks[i].line, "unordered-iter",
                 "iterator over unordered container '" + toks[i].text +
                     "': element order varies between runs/platforms "
                     "and breaks bit-identical stats");
        }
    }
}

void
rulePointerFormat(const SourceFile &f, std::vector<Diag> &out)
{
    for (size_t i = 0; i < f.codeStrings.size(); ++i) {
        const std::string &line = f.codeStrings[i];
        bool inStr = false;
        for (size_t p = 0; p + 1 < line.size(); ++p) {
            char c = line[p];
            if (c == '"')
                inStr = !inStr;
            else if (c == '\\' && inStr)
                ++p;
            else if (inStr && c == '%' && line[p + 1] == 'p') {
                diag(out, f, static_cast<int>(i) + 1, "pointer-format",
                     "pointer value formatted into output (%p): "
                     "addresses change run to run under ASLR, so they "
                     "must never reach stats, traces, or logs");
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Concurrency rule: mutable global / static state
// ---------------------------------------------------------------------

const std::set<std::string> stmtSkippers = {
    "using", "typedef", "friend", "static_assert", "template", "extern",
    "const", "constexpr", "constinit", "thread_local", "operator",
};

/**
 * Internally-synchronised standard types. A namespace-scope object of
 * one of these is safe to share across SimPool workers, and std::atomic
 * is the fix this rule recommends — flagging it would be circular.
 */
const std::set<std::string> syncTypes = {
    "atomic",      "atomic_flag",     "atomic_bool",
    "mutex",       "recursive_mutex", "shared_mutex",
    "once_flag",   "condition_variable",
};

struct Stmt
{
    std::vector<const Token *> toks;

    bool
    contains(const std::string &t) const
    {
        for (const Token *tok : toks)
            if (tok->text == t)
                return true;
        return false;
    }

    bool
    skipped() const
    {
        for (const Token *tok : toks) {
            if (stmtSkippers.count(tok->text) != 0 ||
                syncTypes.count(tok->text) != 0) {
                return true;
            }
        }
        return false;
    }

    /** Declared name: last identifier before '=', '[' or ';'. */
    std::string
    declName() const
    {
        std::string name;
        for (const Token *tok : toks) {
            if (tok->text == "=" || tok->text == "[")
                break;
            if (tok->ident())
                name = tok->text;
        }
        return name;
    }
};

void
ruleGlobalState(const SourceFile &f, const std::vector<Token> &toks,
                std::vector<Diag> &out)
{
    enum class Ctx { Namespace, Type, Func, Init };
    std::vector<Ctx> stack;
    Stmt stmt;

    auto atNamespaceScope = [&] {
        for (Ctx c : stack)
            if (c != Ctx::Namespace)
                return false;
        return true;
    };

    auto evalStmt = [&] {
        if (stmt.toks.empty())
            return;
        const Token &first = *stmt.toks.front();
        if (stmt.skipped()) {
            stmt.toks.clear();
            return;
        }
        if (atNamespaceScope()) {
            static const std::set<std::string> typeIntro = {
                "class", "struct", "union", "enum", "namespace",
            };
            size_t idents = 0;
            for (const Token *t : stmt.toks)
                if (t->ident())
                    ++idents;
            if (typeIntro.count(first.text) == 0 && !stmt.contains("(") &&
                idents >= 2) {
                diag(out, f, first.line, "global-state",
                     "mutable namespace-scope state '" + stmt.declName() +
                         "' races under parallel SimPool workers; make "
                         "it const, thread_local, or std::atomic");
            }
        } else if (first.text == "static" && !stmt.contains("(")) {
            bool inType = !stack.empty() && stack.back() == Ctx::Type;
            diag(out, f, first.line, "global-state",
                 std::string("mutable ") +
                     (inType ? "static data member '"
                             : "function-local static '") +
                     stmt.declName() +
                     "' races under parallel SimPool workers; make it "
                     "const, thread_local, or std::atomic");
        }
        stmt.toks.clear();
    };

    for (const Token &t : toks) {
        if (t.text == "{") {
            Ctx kind = Ctx::Func;
            if (stmt.contains("namespace")) {
                kind = Ctx::Namespace;
            } else if ((stmt.contains("class") || stmt.contains("struct") ||
                        stmt.contains("union") || stmt.contains("enum")) &&
                       !stmt.contains("(")) {
                kind = Ctx::Type;
            } else if (stmt.contains("=")) {
                kind = Ctx::Init;
                // `X x = {...};` at namespace scope is still a mutable
                // global definition — evaluate the prefix now, because
                // the ';' after the closing brace sees an empty stmt.
                evalStmt();
            } else if (!stmt.toks.empty() && !stmt.contains("(")) {
                // `std::atomic<bool> x{false};` — direct brace-init
                // with no '='; evaluate the declaration prefix now.
                kind = Ctx::Init;
                evalStmt();
            }
            stack.push_back(kind);
            stmt.toks.clear();
        } else if (t.text == "}") {
            if (!stack.empty())
                stack.pop_back();
            stmt.toks.clear();
        } else if (t.text == ";") {
            evalStmt();
        } else {
            stmt.toks.push_back(&t);
        }
    }
}

// ---------------------------------------------------------------------
// Stats contract: every registered stat carries a description
// ---------------------------------------------------------------------

/** Split a balanced "(...)" argument text into top-level arguments. */
std::vector<std::string>
splitArgs(const std::string &parenText)
{
    std::vector<std::string> args;
    if (parenText.size() < 2 || parenText.front() != '(')
        return args;
    int depth = 0;
    bool inStr = false;
    std::string cur;
    for (size_t i = 0; i < parenText.size(); ++i) {
        char c = parenText[i];
        if (inStr) {
            cur += c;
            if (c == '\\')
                ++i;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (c == '"') {
            inStr = true;
            cur += c;
        } else if (c == '(' || c == '{' || c == '[') {
            if (depth++ > 0)
                cur += c;
        } else if (c == ')' || c == '}' || c == ']') {
            if (--depth > 0)
                cur += c;
            else if (c != ')')
                cur += c;
        } else if (c == ',' && depth == 1) {
            args.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty())
        args.push_back(trim(cur));
    return args;
}

void
checkStatCtorArgs(const SourceFile &f, int line,
                  const std::vector<std::string> &args,
                  std::vector<Diag> &out)
{
    if (args.size() < 3)
        return; // Not a (parent, name, desc) construction.
    const std::string &desc = args[2];
    if (desc == "\"\"") {
        std::string name = args[1];
        diag(out, f, line, "stat-desc",
             "stat " + name + " registered with an empty description; "
             "every stat feeds the documented JSON export schema");
    }
}

void
ruleStatDesc(const SourceFile &f, const TreeIndex &index,
             const std::vector<Token> &toks, std::vector<Diag> &out)
{
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        size_t parenIdx = std::string::npos;
        if (toks[i + 1].text == "(" &&
            (index.statNames.count(t.text) != 0 ||
             (statTypes.count(t.text) != 0 &&
              (i == 0 || toks[i - 1].text != "new")))) {
            // `_hits(...)` ctor-init or `Scalar(...)` temporary. Skip
            // declarations `Scalar x(...)`: handled by next branch via
            // the identifier x? No — direct-check here is fine either
            // way because args still follow the (parent, name, desc)
            // shape.
            parenIdx = i + 1;
        } else if (statTypes.count(t.text) != 0 && toks[i + 1].ident() &&
                   i + 2 < toks.size() && toks[i + 2].text == "(") {
            // `Scalar x(parent, "name", "desc");`
            parenIdx = i + 2;
        } else if (t.text == "make_unique" && i + 4 < toks.size() &&
                   toks[i + 1].text == "<" &&
                   statTypes.count(toks[i + 2].text) != 0 &&
                   toks[i + 3].text == ">" && toks[i + 4].text == "(") {
            parenIdx = i + 4;
        }
        if (parenIdx == std::string::npos)
            continue;
        const Token &paren = toks[parenIdx];
        std::string text =
            balancedFrom(f, static_cast<size_t>(paren.line) - 1,
                         paren.col, true);
        std::vector<std::string> args = splitArgs(text);
        checkStatCtorArgs(f, t.line, args, out);
    }
}

} // namespace

void
lintSource(const SourceFile &f, const TreeIndex &index,
           std::vector<Diag> &out)
{
    std::vector<Token> toks = tokenizeFile(f);

    // Determinism rules apply everywhere (tests must stay deterministic
    // too — they gate the bit-identity contracts).
    ruleRand(f, toks, out);
    ruleWallclock(f, toks, out);
    rulePointerFormat(f, out);
    // Instruction-ownership contract: everything that can reach a
    // DynInst (tests included) must go through the intrusive pool.
    ruleSharedInst(f, toks, out);

    bool simCode = f.kind == FileKind::Src || f.kind == FileKind::Bench;
    if (simCode) {
        ruleUnorderedIter(f, index, toks, out);
        ruleGlobalState(f, toks, out);
        ruleStatDesc(f, index, toks, out);
    }
}

// ---------------------------------------------------------------------
// Config-key contract
// ---------------------------------------------------------------------

namespace
{

/** [begin, end) line range (0-based) of the brace-delimited body that
 *  follows the first occurrence of @p marker. Returns false if absent. */
bool
functionBody(const SourceFile &f, const std::string &marker, size_t &bLine,
             size_t &eLine)
{
    for (size_t i = 0; i < f.code.size(); ++i) {
        if (f.code[i].find(marker) == std::string::npos)
            continue;
        int depth = 0;
        bool opened = false;
        for (size_t l = i; l < f.code.size(); ++l) {
            for (char c : f.code[l]) {
                if (c == '{') {
                    if (!opened) {
                        opened = true;
                        bLine = l;
                    }
                    ++depth;
                } else if (c == '}') {
                    if (opened && --depth == 0) {
                        eLine = l + 1;
                        return true;
                    }
                }
            }
        }
        return false;
    }
    return false;
}

/** Every double-quoted literal in [bLine, eLine), with line numbers. */
std::vector<std::pair<std::string, int>>
literalsIn(const SourceFile &f, size_t bLine, size_t eLine)
{
    std::vector<std::pair<std::string, int>> lits;
    for (size_t l = bLine; l < eLine && l < f.codeStrings.size(); ++l) {
        const std::string &line = f.codeStrings[l];
        bool inStr = false;
        std::string cur;
        for (size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (!inStr) {
                if (c == '"') {
                    inStr = true;
                    cur.clear();
                }
            } else if (c == '\\') {
                if (i + 1 < line.size())
                    cur += line[++i];
            } else if (c == '"') {
                inStr = false;
                lits.emplace_back(cur, static_cast<int>(l) + 1);
            } else {
                cur += c;
            }
        }
    }
    return lits;
}

} // namespace

void
lintConfigContract(const SourceFile &f,
                   const std::set<std::string> &exclusions,
                   std::vector<Diag> &out)
{
    size_t setB = 0, setE = 0, keyB = 0, keyE = 0;
    if (!functionBody(f, "SimConfig::set(", setB, setE)) {
        out.push_back({f.path, 1, "config-key",
                       "cannot locate SimConfig::set() — the config-key "
                       "contract check would be silently disabled"});
        return;
    }
    if (!functionBody(f, "SimConfig::canonicalKey(", keyB, keyE)) {
        out.push_back({f.path, 1, "config-key",
                       "cannot locate SimConfig::canonicalKey() — the "
                       "config-key contract check would be silently "
                       "disabled"});
        return;
    }

    // Keys the cache hash covers: "name=" / ";name=" literals.
    std::set<std::string> canonical;
    for (const auto &[lit, line] : literalsIn(f, keyB, keyE)) {
        std::string s = lit;
        if (!s.empty() && s.front() == ';')
            s.erase(0, 1);
        if (s.size() >= 2 && s.back() == '=')
            canonical.insert(s.substr(0, s.size() - 1));
    }

    // Keys set() parses: every `key == "name"` comparison.
    for (size_t l = setB; l < setE; ++l) {
        const std::string &line = f.codeStrings[l];
        size_t pos = 0;
        while ((pos = line.find("key == \"", pos)) != std::string::npos) {
            size_t b = pos + 8;
            size_t e = line.find('"', b);
            if (e == std::string::npos)
                break;
            std::string key = line.substr(b, e - b);
            if (canonical.count(key) == 0 && exclusions.count(key) == 0) {
                diag(out, f, static_cast<int>(l) + 1, "config-key",
                     "config key '" + key +
                         "' is parsed by SimConfig::set() but missing "
                         "from canonicalKey(): the result cache would "
                         "silently alias configs that differ in it. Add "
                         "it to canonicalKey(), or if it provably never "
                         "affects SimResult, list it in "
                         "tools/vplint/config_key_exclusions.txt");
            }
            pos = e;
        }
    }
}

std::set<std::string>
parseExclusionList(const std::string &content)
{
    std::set<std::string> keys;
    std::istringstream is(content);
    std::string line;
    while (std::getline(is, line)) {
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (!line.empty())
            keys.insert(line);
    }
    return keys;
}

// ---------------------------------------------------------------------
// Stats manifest
// ---------------------------------------------------------------------

SchemaVersion
parseSchemaVersion(const std::string &resultCacheCc)
{
    SchemaVersion v;
    std::istringstream is(resultCacheCc);
    std::string line;
    int n = 0;
    while (std::getline(is, line)) {
        ++n;
        size_t pos = line.find("statSchemaVersion");
        if (pos == std::string::npos)
            continue;
        size_t eq = line.find('=', pos);
        if (eq == std::string::npos)
            continue;
        size_t q1 = line.find('"', eq);
        size_t q2 = q1 == std::string::npos ? std::string::npos
                                            : line.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        v.version = line.substr(q1 + 1, q2 - q1 - 1);
        v.line = n;
        return v;
    }
    return v;
}

std::set<std::string>
manifestNames(const std::string &manifestContent)
{
    std::set<std::string> names;
    std::istringstream is(manifestContent);
    std::string line;
    while (std::getline(is, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#' ||
            line.rfind("schema ", 0) == 0)
            continue;
        names.insert(line);
    }
    return names;
}

std::string
manifestVersion(const std::string &manifestContent)
{
    std::istringstream is(manifestContent);
    std::string line;
    while (std::getline(is, line)) {
        line = trim(line);
        if (line.rfind("schema ", 0) == 0)
            return trim(line.substr(7));
    }
    return "";
}

std::string
formatManifest(const std::string &version,
               const std::set<std::string> &liveNames)
{
    std::ostringstream os;
    os << "# vplint stats manifest — the stat names one simulation "
          "registers.\n"
          "# Regenerate (after bumping statSchemaVersion in "
          "src/sim/result_cache.cc):\n"
          "#   build/tools/vplint/vplint-stats-manifest --update\n"
          "schema " << version << "\n";
    for (const std::string &n : liveNames)
        os << n << "\n";
    return os.str();
}

void
checkStatsManifest(const std::string &manifestContent,
                   const std::string &manifestPath,
                   const std::set<std::string> &liveNames,
                   const SchemaVersion &source,
                   const std::string &sourcePath,
                   std::vector<Diag> &out)
{
    if (source.version.empty()) {
        out.push_back({sourcePath, 1, "stats-manifest",
                       "cannot parse statSchemaVersion definition"});
        return;
    }
    std::string recorded = manifestVersion(manifestContent);
    if (recorded.empty()) {
        out.push_back({manifestPath, 1, "stats-manifest",
                       "manifest has no 'schema <version>' header; "
                       "regenerate with vplint-stats-manifest --update"});
        return;
    }
    if (recorded != source.version) {
        out.push_back(
            {sourcePath, source.line, "stats-manifest",
             "statSchemaVersion is '" + source.version +
                 "' but the committed manifest records '" + recorded +
                 "'; regenerate tools/vplint/stats_manifest.txt with "
                 "vplint-stats-manifest --update"});
    }
    std::set<std::string> committed = manifestNames(manifestContent);
    std::vector<std::string> added, removed;
    std::set_difference(liveNames.begin(), liveNames.end(),
                        committed.begin(), committed.end(),
                        std::back_inserter(added));
    std::set_difference(committed.begin(), committed.end(),
                        liveNames.begin(), liveNames.end(),
                        std::back_inserter(removed));
    auto list = [](const std::vector<std::string> &v) {
        std::string s;
        for (size_t i = 0; i < v.size() && i < 8; ++i)
            s += (i != 0 ? ", " : "") + v[i];
        if (v.size() > 8)
            s += ", ... (" + std::to_string(v.size()) + " total)";
        return s;
    };
    if (!added.empty()) {
        out.push_back({manifestPath, 1, "stats-manifest",
                       "live stat set drifted from the manifest — new "
                       "stats not committed: " + list(added) +
                       ". Bump statSchemaVersion in " + sourcePath +
                       " and regenerate with vplint-stats-manifest "
                       "--update"});
    }
    if (!removed.empty()) {
        out.push_back({manifestPath, 1, "stats-manifest",
                       "live stat set drifted from the manifest — "
                       "committed stats no longer registered: " +
                       list(removed) + ". Bump statSchemaVersion in " +
                       sourcePath + " and regenerate with "
                       "vplint-stats-manifest --update"});
    }
}

// ---------------------------------------------------------------------
// Whole-tree driver
// ---------------------------------------------------------------------

namespace
{

bool
isCppSource(const std::filesystem::path &p)
{
    std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

std::string
readFileOrEmpty(const std::filesystem::path &p)
{
    std::ifstream is(p, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace

std::vector<Diag>
lintTree(const std::string &repoRoot, const std::vector<std::string> &roots,
         const std::set<std::string> &configExclusions)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const std::string &root : roots) {
        fs::path abs = fs::path(repoRoot) / root;
        if (fs::is_regular_file(abs)) {
            files.push_back(root);
            continue;
        }
        if (!fs::is_directory(abs))
            continue;
        for (auto it = fs::recursive_directory_iterator(abs);
             it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_directory() &&
                it->path().filename() == "vplint_fixtures") {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && isCppSource(it->path())) {
                files.push_back(
                    fs::relative(it->path(), repoRoot).generic_string());
            }
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<SourceFile> sources;
    TreeIndex index;
    for (const std::string &rel : files) {
        std::string content = readFileOrEmpty(fs::path(repoRoot) / rel);
        sources.push_back(prepareSource(rel, content, classifyPath(rel)));
        indexSource(sources.back(), index);
    }

    std::vector<Diag> out;
    for (const SourceFile &f : sources) {
        lintSource(f, index, out);
        if (f.path == "src/sim/config.cc")
            lintConfigContract(f, configExclusions, out);
    }
    std::sort(out.begin(), out.end(), [](const Diag &a, const Diag &b) {
        return std::tie(a.file, a.line, a.rule) <
               std::tie(b.file, b.line, b.rule);
    });
    return out;
}

} // namespace vplint
