# Runs clang-tidy over every simulator translation unit using the
# build tree's compile_commands.json. Invoked by the `lint` target;
# WarningsAsErrors in .clang-tidy makes any diagnostic fatal.

file(GLOB_RECURSE TIDY_SOURCES ${SOURCE_DIR}/src/*.cc)
file(GLOB TIDY_EXTRA ${SOURCE_DIR}/bench/*.cc ${SOURCE_DIR}/tools/vplint/*.cc)
list(APPEND TIDY_SOURCES ${TIDY_EXTRA})
list(SORT TIDY_SOURCES)

list(LENGTH TIDY_SOURCES N)
message(STATUS "clang-tidy over ${N} translation units")
execute_process(
    COMMAND ${CLANG_TIDY} -p ${BUILD_DIR} --quiet ${TIDY_SOURCES}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "clang-tidy reported diagnostics (exit ${rc})")
endif()
