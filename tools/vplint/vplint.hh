/**
 * @file
 * vplint — the project's determinism & stats-contract static analyzer.
 *
 * A self-contained token/line-level linter (no libclang) that enforces
 * the simulator's headline contracts at lint time instead of waiting
 * for the slow differential tests to catch a violation dynamically:
 *
 *  Determinism (serial-vs-parallel and timeSkip=0/1 bit-identity):
 *   - `rand`           host randomness (rand(), std::random_device, ...)
 *                      in simulation code. Use sim/rng.hh instead.
 *   - `wallclock`      wall-clock reads (std::chrono, time(), ...)
 *                      outside the self-profiler / bench wall-timing
 *                      allowlist.
 *   - `unordered-iter` iteration over std::unordered_map/set: element
 *                      order is implementation- and run-dependent, so
 *                      any ordering leak (a dump, a trace line, even a
 *                      sequence of memory writes) breaks bit-identity.
 *   - `pointer-format` pointer values formatted into stats/logs ("%p"):
 *                      addresses differ run to run under ASLR.
 *
 *  Concurrency (races under SimPool's parallel workers):
 *   - `global-state`   mutable, non-const, non-thread_local state at
 *                      namespace scope, as a static local, or as a
 *                      static data member.
 *
 *  Stats/config contracts:
 *   - `config-key`     every key parsed by SimConfig::set() must appear
 *                      in canonicalKey() or in the committed exclusion
 *                      list (the `timeSkip` pattern) — otherwise the
 *                      result cache silently aliases distinct configs.
 *   - `stat-desc`      every registered stat must carry a non-empty
 *                      description (they feed the JSON export schema).
 *   - `stats-manifest` the live stat-name set must match the committed
 *                      tools/vplint/stats_manifest.txt, and the manifest
 *                      may only be regenerated after statSchemaVersion
 *                      was bumped.
 *
 * Any rule can be suppressed for one line with a trailing or
 * immediately-preceding comment: `// vplint:allow(<rule>[,<rule>...])`,
 * ideally with a justification after the closing parenthesis.
 *
 * Diagnostics print as `file:line: rule: message` (clickable in editors
 * and CI logs); the CLI exits nonzero when any diagnostic was emitted.
 */

#ifndef VPSIM_TOOLS_VPLINT_HH
#define VPSIM_TOOLS_VPLINT_HH

#include <set>
#include <string>
#include <vector>

namespace vplint
{

/** One `file:line: rule: message` finding. */
struct Diag
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    std::string str() const;
};

/** Which tree a file belongs to; selects the applicable rule set. */
enum class FileKind
{
    Src,   ///< src/ — full rule set.
    Bench, ///< bench/ — full set minus the wall-timing allowlist files.
    Tests, ///< tests/ — determinism rules only (fixtures use statics).
    Other, ///< Everything else — determinism rules only.
};

/** Classify @p relPath (repo-relative, '/'-separated). */
FileKind classifyPath(const std::string &relPath);

/**
 * A source file prepared for analysis: comments stripped, string
 * literal contents tracked separately, suppression comments parsed.
 */
struct SourceFile
{
    std::string path;               ///< Repo-relative path for diags.
    FileKind kind = FileKind::Other;
    /** Per line: code with comments removed and string/char literal
     *  contents blanked (quotes kept), so token scans never match
     *  inside a literal. */
    std::vector<std::string> code;
    /** Per line: code with comments removed but literals intact (the
     *  contract rules must read the literal key/desc strings). */
    std::vector<std::string> codeStrings;
    /** Per line: the rule names allowed by vplint:allow comments that
     *  cover this line (same line or the line above). */
    std::vector<std::set<std::string>> allowed;

    bool isAllowed(int line, const std::string &rule) const;
};

/** Parse @p content into a SourceFile (line numbers are 1-based). */
SourceFile prepareSource(std::string path, const std::string &content,
                         FileKind kind);

/**
 * Cross-file state the per-file rules need: names declared anywhere as
 * unordered containers, and names declared as stat objects.
 */
struct TreeIndex
{
    std::set<std::string> unorderedNames;
    std::set<std::string> statNames;
};

/** Scan @p f for declarations feeding @p index. */
void indexSource(const SourceFile &f, TreeIndex &index);

/** Run every per-file rule on @p f; appends to @p out. */
void lintSource(const SourceFile &f, const TreeIndex &index,
                std::vector<Diag> &out);

/**
 * The `config-key` contract: every `key == "X"` comparison inside
 * SimConfig::set() must have a matching "X=" serialization inside
 * canonicalKey() or be listed in @p exclusions.
 * @p f must be the prepared src/sim/config.cc.
 */
void lintConfigContract(const SourceFile &f,
                        const std::set<std::string> &exclusions,
                        std::vector<Diag> &out);

/** Parse an exclusion-list file (one key per line, '#' comments). */
std::set<std::string> parseExclusionList(const std::string &content);

/** statSchemaVersion literal parsed out of src/sim/result_cache.cc. */
struct SchemaVersion
{
    std::string version; ///< Empty when the definition was not found.
    int line = 0;        ///< Line of the definition.
};

SchemaVersion parseSchemaVersion(const std::string &resultCacheCc);

/**
 * The `stats-manifest` contract. @p manifestContent is the committed
 * tools/vplint/stats_manifest.txt ("schema <version>" header plus one
 * stat name per line); @p liveNames is the registry enumerated from a
 * running simulator. Drift in either the name set or the schema header
 * produces diagnostics against @p manifestPath / @p sourcePath.
 */
void checkStatsManifest(const std::string &manifestContent,
                        const std::string &manifestPath,
                        const std::set<std::string> &liveNames,
                        const SchemaVersion &source,
                        const std::string &sourcePath,
                        std::vector<Diag> &out);

/** Serialize a manifest ("schema <version>" + sorted names). */
std::string formatManifest(const std::string &version,
                           const std::set<std::string> &liveNames);

/** Names recorded in an existing manifest (header lines skipped). */
std::set<std::string> manifestNames(const std::string &manifestContent);

/** Version recorded in an existing manifest ("" if absent). */
std::string manifestVersion(const std::string &manifestContent);

/**
 * Whole-tree driver used by the CLI and the `lint` target: prepares and
 * lints every C++ source under @p roots (repo-relative directories or
 * files, resolved against @p repoRoot), runs the config-key contract
 * when src/sim/config.cc is in scope, and returns every diagnostic
 * sorted by file and line. Directories named "vplint_fixtures" are
 * skipped — they hold deliberately-bad test inputs.
 */
std::vector<Diag> lintTree(const std::string &repoRoot,
                           const std::vector<std::string> &roots,
                           const std::set<std::string> &configExclusions);

} // namespace vplint

#endif // VPSIM_TOOLS_VPLINT_HH
