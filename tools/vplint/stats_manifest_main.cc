/**
 * @file
 * vplint-stats-manifest — the live half of the `stats-manifest` rule.
 *
 * Enumerates the stat registry by actually constructing simulations
 * (the name set depends on numContexts, so two canonical configs are
 * run and their names unioned) and compares it against the committed
 * tools/vplint/stats_manifest.txt:
 *
 *   vplint-stats-manifest              check (CI mode; nonzero on drift)
 *   vplint-stats-manifest --update     regenerate the manifest — refuses
 *                                      unless statSchemaVersion was
 *                                      bumped since the committed one
 *   vplint-stats-manifest --print      list the live stat names
 *
 * The refusal is the contract: renaming/adding/removing an exported
 * stat invalidates every persisted result-cache entry and every
 * consumer of the JSON schema, so the schema version must move with it.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "sim/config.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "vplint.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Union of stat names over the canonical config set. Tiny runs: the
 *  registry is fully populated at Cpu construction; instruction count
 *  only affects values, never names. */
std::set<std::string>
liveStatNames()
{
    vpsim::setVerbose(false);
    std::set<std::string> names;
    auto collect = [&](const vpsim::SimConfig &cfg) {
        vpsim::SimResult r = vpsim::runWorkload(cfg, "mcf");
        for (const auto &[name, value] : r.stats) {
            (void)value;
            names.insert(name);
        }
    };
    vpsim::SimConfig base;
    base.maxInsts = 300;
    collect(base);

    vpsim::SimConfig mtvp;
    mtvp.vpMode = vpsim::VpMode::Mtvp;
    mtvp.numContexts = 8;
    mtvp.maxInsts = 300;
    collect(mtvp);
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string repoRoot = ".";
    bool update = false;
    bool print = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--repo-root" && i + 1 < argc)
            repoRoot = argv[++i];
        else if (a == "--update")
            update = true;
        else if (a == "--print")
            print = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--repo-root DIR] [--update] "
                         "[--print]\n", argv[0]);
            return 2;
        }
    }

    const std::string manifestPath =
        repoRoot + "/tools/vplint/stats_manifest.txt";
    const std::string sourcePath = repoRoot + "/src/sim/result_cache.cc";
    const std::string manifestRel = "tools/vplint/stats_manifest.txt";
    const std::string sourceRel = "src/sim/result_cache.cc";

    std::set<std::string> live = liveStatNames();
    if (print) {
        for (const std::string &n : live)
            std::printf("%s\n", n.c_str());
        return 0;
    }

    vplint::SchemaVersion source =
        vplint::parseSchemaVersion(readFile(sourcePath));
    if (source.version.empty()) {
        std::fprintf(stderr,
                     "%s:1: stats-manifest: cannot parse "
                     "statSchemaVersion definition\n", sourceRel.c_str());
        return 1;
    }

    std::string manifest = readFile(manifestPath);
    if (update) {
        std::string recordedVersion = vplint::manifestVersion(manifest);
        std::set<std::string> recorded = vplint::manifestNames(manifest);
        if (!manifest.empty() && recorded != live &&
            recordedVersion == source.version) {
            std::fprintf(
                stderr,
                "%s:%d: stats-manifest: the stat set changed but "
                "statSchemaVersion is still '%s' — old result-cache "
                "entries and JSON consumers would silently disagree "
                "with the new schema. Bump statSchemaVersion in %s, "
                "then rerun --update\n",
                sourceRel.c_str(), source.line, source.version.c_str(),
                sourceRel.c_str());
            return 1;
        }
        std::ofstream os(manifestPath, std::ios::binary);
        os << vplint::formatManifest(source.version, live);
        std::printf("vplint-stats-manifest: wrote %zu stat names "
                    "(schema %s) to %s\n",
                    live.size(), source.version.c_str(),
                    manifestRel.c_str());
        return 0;
    }

    std::vector<vplint::Diag> diags;
    vplint::checkStatsManifest(manifest, manifestRel, live, source,
                               sourceRel, diags);
    for (const vplint::Diag &d : diags)
        std::fprintf(stderr, "%s\n", d.str().c_str());
    if (!diags.empty())
        return 1;
    std::printf("vplint-stats-manifest: %zu stats match the committed "
                "manifest (schema %s)\n",
                live.size(), source.version.c_str());
    return 0;
}
