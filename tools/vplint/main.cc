/**
 * @file
 * vplint CLI. Lints the repo's C++ sources (default roots: src, bench,
 * tests, examples) plus the SimConfig canonical-key contract, printing
 * `file:line: rule: message` diagnostics and exiting nonzero when any
 * were found. Run from the repo root (or pass --repo-root).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vplint.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--repo-root DIR] [--exclusions FILE] [paths...]\n"
        "  Token/line-level determinism & contract linter (see\n"
        "  tools/vplint/vplint.hh for the rule list).\n"
        "  paths        repo-relative files/dirs to lint\n"
        "               (default: src bench tests examples)\n"
        "  --repo-root  repository root (default: .)\n"
        "  --exclusions config-key exclusion list (default:\n"
        "               tools/vplint/config_key_exclusions.txt)\n"
        "  Suppress one line with: // vplint:allow(<rule>) why...\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string repoRoot = ".";
    std::string exclusionsPath;
    std::vector<std::string> roots;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--repo-root" && i + 1 < argc) {
            repoRoot = argv[++i];
        } else if (a == "--exclusions" && i + 1 < argc) {
            exclusionsPath = argv[++i];
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "vplint: unknown option '%s'\n",
                         a.c_str());
            return 2;
        } else {
            roots.push_back(a);
        }
    }
    if (roots.empty())
        roots = {"src", "bench", "tests", "examples"};
    if (exclusionsPath.empty())
        exclusionsPath = repoRoot + "/tools/vplint/config_key_exclusions.txt";

    auto exclusions = vplint::parseExclusionList(readFile(exclusionsPath));
    std::vector<vplint::Diag> diags =
        vplint::lintTree(repoRoot, roots, exclusions);

    for (const vplint::Diag &d : diags)
        std::fprintf(stderr, "%s\n", d.str().c_str());
    if (!diags.empty()) {
        std::fprintf(stderr,
                     "vplint: %zu diagnostic%s (suppress a line with "
                     "'// vplint:allow(<rule>) why')\n",
                     diags.size(), diags.size() == 1 ? "" : "s");
        return 1;
    }
    std::printf("vplint: clean\n");
    return 0;
}
