# Empty dependencies file for vpsim.
# This may be replaced when dependencies are built.
