file(REMOVE_RECURSE
  "libvpsim.a"
)
