
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/branch_predictor.cc" "src/CMakeFiles/vpsim.dir/bpred/branch_predictor.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/bpred/branch_predictor.cc.o.d"
  "/root/repo/src/bpred/btb.cc" "src/CMakeFiles/vpsim.dir/bpred/btb.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/bpred/btb.cc.o.d"
  "/root/repo/src/core/commit.cc" "src/CMakeFiles/vpsim.dir/core/commit.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/core/commit.cc.o.d"
  "/root/repo/src/core/cpu.cc" "src/CMakeFiles/vpsim.dir/core/cpu.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/core/cpu.cc.o.d"
  "/root/repo/src/core/dispatch.cc" "src/CMakeFiles/vpsim.dir/core/dispatch.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/core/dispatch.cc.o.d"
  "/root/repo/src/core/execute.cc" "src/CMakeFiles/vpsim.dir/core/execute.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/core/execute.cc.o.d"
  "/root/repo/src/core/fetch.cc" "src/CMakeFiles/vpsim.dir/core/fetch.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/core/fetch.cc.o.d"
  "/root/repo/src/core/issue_queue.cc" "src/CMakeFiles/vpsim.dir/core/issue_queue.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/core/issue_queue.cc.o.d"
  "/root/repo/src/core/phys_regfile.cc" "src/CMakeFiles/vpsim.dir/core/phys_regfile.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/core/phys_regfile.cc.o.d"
  "/root/repo/src/emu/context_state.cc" "src/CMakeFiles/vpsim.dir/emu/context_state.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/emu/context_state.cc.o.d"
  "/root/repo/src/emu/emulator.cc" "src/CMakeFiles/vpsim.dir/emu/emulator.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/emu/emulator.cc.o.d"
  "/root/repo/src/emu/memory.cc" "src/CMakeFiles/vpsim.dir/emu/memory.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/emu/memory.cc.o.d"
  "/root/repo/src/emu/store_buffer.cc" "src/CMakeFiles/vpsim.dir/emu/store_buffer.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/emu/store_buffer.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/vpsim.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/vpsim.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/vpsim.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/isa/isa.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/vpsim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/vpsim.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/CMakeFiles/vpsim.dir/mem/prefetcher.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/mem/prefetcher.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/vpsim.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/vpsim.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/vpsim.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/vpsim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/vpsim.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/vpsim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/sim/trace.cc.o.d"
  "/root/repo/src/vpred/dfcm.cc" "src/CMakeFiles/vpsim.dir/vpred/dfcm.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/vpred/dfcm.cc.o.d"
  "/root/repo/src/vpred/last_value.cc" "src/CMakeFiles/vpsim.dir/vpred/last_value.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/vpred/last_value.cc.o.d"
  "/root/repo/src/vpred/load_selector.cc" "src/CMakeFiles/vpsim.dir/vpred/load_selector.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/vpred/load_selector.cc.o.d"
  "/root/repo/src/vpred/stride.cc" "src/CMakeFiles/vpsim.dir/vpred/stride.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/vpred/stride.cc.o.d"
  "/root/repo/src/vpred/value_predictor.cc" "src/CMakeFiles/vpsim.dir/vpred/value_predictor.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/vpred/value_predictor.cc.o.d"
  "/root/repo/src/vpred/wang_franklin.cc" "src/CMakeFiles/vpsim.dir/vpred/wang_franklin.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/vpred/wang_franklin.cc.o.d"
  "/root/repo/src/workloads/fp_workloads.cc" "src/CMakeFiles/vpsim.dir/workloads/fp_workloads.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/workloads/fp_workloads.cc.o.d"
  "/root/repo/src/workloads/int_workloads.cc" "src/CMakeFiles/vpsim.dir/workloads/int_workloads.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/workloads/int_workloads.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/vpsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/vpsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
