# Empty dependencies file for vplint.
# This may be replaced when dependencies are built.
