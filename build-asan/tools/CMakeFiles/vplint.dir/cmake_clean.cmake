file(REMOVE_RECURSE
  "CMakeFiles/vplint.dir/vplint.cc.o"
  "CMakeFiles/vplint.dir/vplint.cc.o.d"
  "vplint"
  "vplint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vplint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
