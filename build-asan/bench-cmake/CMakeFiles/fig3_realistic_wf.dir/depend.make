# Empty dependencies file for fig3_realistic_wf.
# This may be replaced when dependencies are built.
