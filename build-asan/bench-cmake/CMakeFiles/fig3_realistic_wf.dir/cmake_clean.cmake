file(REMOVE_RECURSE
  "../bench/fig3_realistic_wf"
  "../bench/fig3_realistic_wf.pdb"
  "CMakeFiles/fig3_realistic_wf.dir/fig3_realistic_wf.cc.o"
  "CMakeFiles/fig3_realistic_wf.dir/fig3_realistic_wf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_realistic_wf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
