file(REMOVE_RECURSE
  "../bench/sec56_multi_value"
  "../bench/sec56_multi_value.pdb"
  "CMakeFiles/sec56_multi_value.dir/sec56_multi_value.cc.o"
  "CMakeFiles/sec56_multi_value.dir/sec56_multi_value.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_multi_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
