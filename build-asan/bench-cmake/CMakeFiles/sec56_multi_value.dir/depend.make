# Empty dependencies file for sec56_multi_value.
# This may be replaced when dependencies are built.
