# Empty dependencies file for sec54_dfcm_ablation.
# This may be replaced when dependencies are built.
