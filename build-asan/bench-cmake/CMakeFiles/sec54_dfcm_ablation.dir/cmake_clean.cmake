file(REMOVE_RECURSE
  "../bench/sec54_dfcm_ablation"
  "../bench/sec54_dfcm_ablation.pdb"
  "CMakeFiles/sec54_dfcm_ablation.dir/sec54_dfcm_ablation.cc.o"
  "CMakeFiles/sec54_dfcm_ablation.dir/sec54_dfcm_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_dfcm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
