# Empty dependencies file for sec53_store_buffer.
# This may be replaced when dependencies are built.
