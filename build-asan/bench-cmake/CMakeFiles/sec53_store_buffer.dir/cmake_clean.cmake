file(REMOVE_RECURSE
  "../bench/sec53_store_buffer"
  "../bench/sec53_store_buffer.pdb"
  "CMakeFiles/sec53_store_buffer.dir/sec53_store_buffer.cc.o"
  "CMakeFiles/sec53_store_buffer.dir/sec53_store_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_store_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
