file(REMOVE_RECURSE
  "../bench/fig4_fetch_policy"
  "../bench/fig4_fetch_policy.pdb"
  "CMakeFiles/fig4_fetch_policy.dir/fig4_fetch_policy.cc.o"
  "CMakeFiles/fig4_fetch_policy.dir/fig4_fetch_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fetch_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
