# Empty dependencies file for fig4_fetch_policy.
# This may be replaced when dependencies are built.
