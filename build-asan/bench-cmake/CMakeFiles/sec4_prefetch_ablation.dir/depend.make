# Empty dependencies file for sec4_prefetch_ablation.
# This may be replaced when dependencies are built.
