file(REMOVE_RECURSE
  "../bench/sec4_prefetch_ablation"
  "../bench/sec4_prefetch_ablation.pdb"
  "CMakeFiles/sec4_prefetch_ablation.dir/sec4_prefetch_ablation.cc.o"
  "CMakeFiles/sec4_prefetch_ablation.dir/sec4_prefetch_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_prefetch_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
