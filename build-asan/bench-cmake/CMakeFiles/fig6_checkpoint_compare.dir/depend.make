# Empty dependencies file for fig6_checkpoint_compare.
# This may be replaced when dependencies are built.
