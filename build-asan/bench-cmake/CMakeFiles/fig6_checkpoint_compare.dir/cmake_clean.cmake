file(REMOVE_RECURSE
  "../bench/fig6_checkpoint_compare"
  "../bench/fig6_checkpoint_compare.pdb"
  "CMakeFiles/fig6_checkpoint_compare.dir/fig6_checkpoint_compare.cc.o"
  "CMakeFiles/fig6_checkpoint_compare.dir/fig6_checkpoint_compare.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_checkpoint_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
