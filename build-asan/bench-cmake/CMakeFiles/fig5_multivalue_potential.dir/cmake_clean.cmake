file(REMOVE_RECURSE
  "../bench/fig5_multivalue_potential"
  "../bench/fig5_multivalue_potential.pdb"
  "CMakeFiles/fig5_multivalue_potential.dir/fig5_multivalue_potential.cc.o"
  "CMakeFiles/fig5_multivalue_potential.dir/fig5_multivalue_potential.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_multivalue_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
