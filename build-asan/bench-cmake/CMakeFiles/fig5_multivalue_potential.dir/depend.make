# Empty dependencies file for fig5_multivalue_potential.
# This may be replaced when dependencies are built.
