# Empty dependencies file for fig2_spawn_latency.
# This may be replaced when dependencies are built.
