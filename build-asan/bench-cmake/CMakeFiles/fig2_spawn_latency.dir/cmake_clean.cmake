file(REMOVE_RECURSE
  "../bench/fig2_spawn_latency"
  "../bench/fig2_spawn_latency.pdb"
  "CMakeFiles/fig2_spawn_latency.dir/fig2_spawn_latency.cc.o"
  "CMakeFiles/fig2_spawn_latency.dir/fig2_spawn_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_spawn_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
