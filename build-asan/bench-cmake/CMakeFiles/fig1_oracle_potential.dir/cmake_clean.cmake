file(REMOVE_RECURSE
  "../bench/fig1_oracle_potential"
  "../bench/fig1_oracle_potential.pdb"
  "CMakeFiles/fig1_oracle_potential.dir/fig1_oracle_potential.cc.o"
  "CMakeFiles/fig1_oracle_potential.dir/fig1_oracle_potential.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_oracle_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
