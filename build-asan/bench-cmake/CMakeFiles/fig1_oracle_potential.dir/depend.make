# Empty dependencies file for fig1_oracle_potential.
# This may be replaced when dependencies are built.
