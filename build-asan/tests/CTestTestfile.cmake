# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_smoke[1]_include.cmake")
include("/root/repo/build-asan/tests/test_isa[1]_include.cmake")
include("/root/repo/build-asan/tests/test_assembler[1]_include.cmake")
include("/root/repo/build-asan/tests/test_emulator[1]_include.cmake")
include("/root/repo/build-asan/tests/test_memory[1]_include.cmake")
include("/root/repo/build-asan/tests/test_store_buffer[1]_include.cmake")
include("/root/repo/build-asan/tests/test_cache[1]_include.cmake")
include("/root/repo/build-asan/tests/test_prefetcher[1]_include.cmake")
include("/root/repo/build-asan/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build-asan/tests/test_bpred[1]_include.cmake")
include("/root/repo/build-asan/tests/test_vpred[1]_include.cmake")
include("/root/repo/build-asan/tests/test_selector[1]_include.cmake")
include("/root/repo/build-asan/tests/test_stats[1]_include.cmake")
include("/root/repo/build-asan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-asan/tests/test_config[1]_include.cmake")
include("/root/repo/build-asan/tests/test_phys_regfile[1]_include.cmake")
include("/root/repo/build-asan/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-asan/tests/test_cpu_baseline[1]_include.cmake")
include("/root/repo/build-asan/tests/test_cpu_stvp[1]_include.cmake")
include("/root/repo/build-asan/tests/test_cpu_mtvp[1]_include.cmake")
include("/root/repo/build-asan/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build-asan/tests/test_invariants[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
