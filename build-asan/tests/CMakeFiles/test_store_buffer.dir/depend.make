# Empty dependencies file for test_store_buffer.
# This may be replaced when dependencies are built.
