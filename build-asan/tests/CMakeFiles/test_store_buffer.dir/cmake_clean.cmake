file(REMOVE_RECURSE
  "CMakeFiles/test_store_buffer.dir/store_buffer_test.cc.o"
  "CMakeFiles/test_store_buffer.dir/store_buffer_test.cc.o.d"
  "test_store_buffer"
  "test_store_buffer.pdb"
  "test_store_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
