# Empty dependencies file for test_cpu_mtvp.
# This may be replaced when dependencies are built.
