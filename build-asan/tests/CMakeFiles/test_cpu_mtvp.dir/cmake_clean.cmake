file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_mtvp.dir/cpu_mtvp_test.cc.o"
  "CMakeFiles/test_cpu_mtvp.dir/cpu_mtvp_test.cc.o.d"
  "test_cpu_mtvp"
  "test_cpu_mtvp.pdb"
  "test_cpu_mtvp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_mtvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
