# Empty dependencies file for test_cpu_baseline.
# This may be replaced when dependencies are built.
