file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_baseline.dir/cpu_baseline_test.cc.o"
  "CMakeFiles/test_cpu_baseline.dir/cpu_baseline_test.cc.o.d"
  "test_cpu_baseline"
  "test_cpu_baseline.pdb"
  "test_cpu_baseline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
