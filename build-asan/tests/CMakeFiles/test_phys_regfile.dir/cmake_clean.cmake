file(REMOVE_RECURSE
  "CMakeFiles/test_phys_regfile.dir/phys_regfile_test.cc.o"
  "CMakeFiles/test_phys_regfile.dir/phys_regfile_test.cc.o.d"
  "test_phys_regfile"
  "test_phys_regfile.pdb"
  "test_phys_regfile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
