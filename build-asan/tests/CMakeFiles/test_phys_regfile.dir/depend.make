# Empty dependencies file for test_phys_regfile.
# This may be replaced when dependencies are built.
