file(REMOVE_RECURSE
  "CMakeFiles/test_vpred.dir/vpred_test.cc.o"
  "CMakeFiles/test_vpred.dir/vpred_test.cc.o.d"
  "test_vpred"
  "test_vpred.pdb"
  "test_vpred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
