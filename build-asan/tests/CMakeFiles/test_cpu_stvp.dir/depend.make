# Empty dependencies file for test_cpu_stvp.
# This may be replaced when dependencies are built.
