file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_stvp.dir/cpu_stvp_test.cc.o"
  "CMakeFiles/test_cpu_stvp.dir/cpu_stvp_test.cc.o.d"
  "test_cpu_stvp"
  "test_cpu_stvp.pdb"
  "test_cpu_stvp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_stvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
