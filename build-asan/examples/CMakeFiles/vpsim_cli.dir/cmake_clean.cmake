file(REMOVE_RECURSE
  "CMakeFiles/vpsim_cli.dir/vpsim_cli.cpp.o"
  "CMakeFiles/vpsim_cli.dir/vpsim_cli.cpp.o.d"
  "vpsim_cli"
  "vpsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
