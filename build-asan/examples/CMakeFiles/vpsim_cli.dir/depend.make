# Empty dependencies file for vpsim_cli.
# This may be replaced when dependencies are built.
