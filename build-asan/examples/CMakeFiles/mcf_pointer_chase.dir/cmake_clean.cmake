file(REMOVE_RECURSE
  "CMakeFiles/mcf_pointer_chase.dir/mcf_pointer_chase.cpp.o"
  "CMakeFiles/mcf_pointer_chase.dir/mcf_pointer_chase.cpp.o.d"
  "mcf_pointer_chase"
  "mcf_pointer_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcf_pointer_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
