# Empty dependencies file for mcf_pointer_chase.
# This may be replaced when dependencies are built.
