/**
 * @file
 * Section 4 (text) ablation — the paper's methodology note: "without a
 * stride prefetcher the effect of multithreaded value prediction is
 * greater and more consistent", and the two mechanisms are largely
 * complementary. This bench regenerates MTVP speedups with the
 * prefetcher enabled and disabled.
 */

#include "bench_util.hh"

using namespace vpbench;

int
main(int argc, char **argv)
{
    benchInit(argc, argv);
    setVerbose(false);
    printTitle("Section 4 ablation: MTVP with and without the stride "
               "prefetcher (oracle, mtvp8)");

    Runner runner;

    for (bool prefetch : {true, false}) {
        std::printf("-- prefetcher %s --\n", prefetch ? "on" : "off");
        SimConfig base = baseConfig();
        base.prefetchEnabled = prefetch;

        SimConfig mtvp = base;
        mtvp.vpMode = VpMode::Mtvp;
        mtvp.numContexts = 8;
        mtvp.predictor = PredictorKind::Oracle;
        mtvp.selector = SelectorKind::IlpPred;
        mtvp.spawnLatency = 8;
        mtvp.storeBufferSize = 128;

        std::vector<std::pair<std::string, SimConfig>> configs = {
            {"mtvp8", mtvp},
        };
        speedupTable(runner, "int", intSet(true), base, configs);
        speedupTable(runner, "fp", fpSet(true), base, configs);
    }
    return 0;
}
